let available = true

type outcome = {
  payload : string;
  n_nodes : int;
  domains : int;
  order : string;
  wall_s : float;
  seq_wall_s : float;
  tasks : int;
  steals : int;
  steal_attempts : int;
  overflows : int;
  parks : int;
  ok : bool;
}

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc

let run ~family ~size ~spin_us ~domains ~order ?trace_out ?metrics_out ~check ()
    =
  match
    match order with
    | "steal" -> Ok Ic_par.Runtime.Steal
    | "ic" -> Ok Ic_par.Runtime.Ic_priority
    | o -> Error (Printf.sprintf "unknown order %S (known: steal, ic)" o)
  with
  | Error _ as e -> e
  | Ok order_mode -> (
    match Ic_par.Payload.make ~spin_us ~family ~size () with
    | exception Invalid_argument msg -> Error msg
    | p ->
      let g = Ic_par.Payload.dag p in
      let domains =
        if domains > 0 then domains else Ic_par.Runtime.default_domains ()
      in
      let seq_wall_s, seq_fp =
        if check then begin
          let t0 = Ic_prof.Monotonic.now () in
          let fp = Ic_par.Payload.execute p in
          (Ic_prof.Monotonic.now () -. t0, Some fp)
        end
        else (Float.nan, None)
      in
      let sink = Option.map (fun _ -> Ic_obs.Trace.create ()) trace_out in
      let registry =
        Option.map (fun _ -> Ic_obs.Metrics.create ()) metrics_out
      in
      let stats = ref None in
      let executor =
        Ic_par.Runtime.executor ~domains ~order:order_mode
          ~priority:(Ic_par.Payload.rank p) ?metrics:registry ?sink
          ~on_stats:(fun s -> stats := Some s)
          ()
      in
      let par_fp = Ic_par.Payload.execute ~executor p in
      let s =
        match !stats with Some s -> s | None -> assert false
      in
      Option.iter
        (fun file ->
          write_file file
            (Ic_obs.Exporter.chrome_trace
               ~process_name:
                 (Printf.sprintf "ic_par: %s under %s, %d domains"
                    (Ic_par.Payload.name p) order domains)
               ~label:(Ic_dag.Dag.label g)
               (Option.get sink)))
        trace_out;
      Option.iter
        (fun file ->
          write_file file (Ic_obs.Metrics.to_json (Option.get registry)))
        metrics_out;
      let ok =
        match seq_fp with
        | None -> true
        | Some fp -> fp = par_fp && Ic_par.Payload.check p par_fp
      in
      Ok
        {
          payload = Ic_par.Payload.name p;
          n_nodes = Ic_dag.Dag.n_nodes g;
          domains;
          order;
          wall_s = s.Ic_par.Runtime.wall_s;
          seq_wall_s;
          tasks = s.Ic_par.Runtime.tasks;
          steals = s.Ic_par.Runtime.steals;
          steal_attempts = s.Ic_par.Runtime.steal_attempts;
          overflows = s.Ic_par.Runtime.overflows;
          parks = s.Ic_par.Runtime.parks;
          ok;
        })
