(* The bin executables' view of the lease-serving subsystem. Dune
   `select` plugs in served_support.served.ml when ic_served is
   available (OCaml >= 5.0) and served_support.noserved.ml otherwise,
   so ic_sched builds — with the serve and hammer subcommands degrading
   to a clear message — on 4.14 toolchains too. *)

val available : bool

type serve_outcome = {
  n_tasks : int;
  completions : int;
  leases : int;
  leased_tasks : int;
  reissues : int;
  duplicates : int;
  retry_afters : int;
  heartbeats : int;
  protocol_errors : int;
  inflight : int;  (* leased tasks still outstanding at exit (0 when done) *)
}

val serve :
  dag:Ic_dag.Dag.t ->
  port:int ->
  shards:int ->
  max_lease:int ->
  expected_s:float ->
  once:bool ->
  ?metrics_out:string ->
  ?trace_out:string ->
  unit ->
  (serve_outcome, string) result
(* Bind 127.0.0.1:[port] ([port] 0 picks a free one; the bound port is
   printed to stdout either way) and serve [dag]'s tasks until
   interrupted — or, with [once], until at least one client has come and
   every connection has closed. [metrics_out]/[trace_out] write the
   served.* metrics registry as JSON and a Chrome trace-event file with
   one track per shard after the loop exits. Errors: invalid config, a
   bind failure, or — from the stub — the subsystem not being built on
   this compiler. *)

type hammer_outcome = {
  h_workers : int;
  completes_sent : int;
  done_seen : bool;  (* the server answered Done: every task applied *)
  crashed : int;
  disconnects : int;
  h_wall_s : float;
  grant_p50_s : float;
  grant_p99_s : float;
  service_p50_s : float;
  service_p99_s : float;
}

val hammer :
  host:string ->
  port:int ->
  workers:int ->
  connections:int ->
  k:int ->
  churn:bool ->
  seed:int ->
  mean_service_s:float ->
  think_s:float ->
  unit ->
  (hammer_outcome, string) result
(* Drive [workers] simulated workers (lease batches of [k], seeded
   Pareto service latencies) against the server at [host]:[port] over
   [connections] real sockets. [churn] turns on a seeded
   crash/disconnect/rejoin plan. Errors: invalid config, connection
   refused, or — from the stub — the subsystem not being built. *)
