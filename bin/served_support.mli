(* The bin executables' view of the lease-serving subsystem. Dune
   `select` plugs in served_support.served.ml when ic_served is
   available (OCaml >= 5.0) and served_support.noserved.ml otherwise,
   so ic_sched builds — with the serve and hammer subcommands degrading
   to a clear message — on 4.14 toolchains too. *)

val available : bool

type serve_outcome = {
  n_tasks : int;
  completions : int;
  leases : int;
  leased_tasks : int;
  reissues : int;
  duplicates : int;
  retry_afters : int;
  heartbeats : int;
  protocol_errors : int;
  inflight : int;  (* leased tasks still outstanding at exit (0 when done) *)
  recovered_tasks : int;  (* completions restored from the journal *)
  recovered_reissues : int;  (* leased-but-unjournaled tasks re-issued *)
}

val serve :
  dag:Ic_dag.Dag.t ->
  port:int ->
  shards:int ->
  max_lease:int ->
  expected_s:float ->
  once:bool ->
  journal:string option ->
  checkpoint_every:int ->
  fsync:bool ->
  recover:bool ->
  telemetry_port:int option ->
  telemetry_csv:string option ->
  telemetry_every_s:float ->
  flight:string option ->
  ?metrics_out:string ->
  ?trace_out:string ->
  unit ->
  (serve_outcome, string) result
(* Bind 127.0.0.1:[port] ([port] 0 picks a free one; the bound port is
   printed to stdout either way) and serve [dag]'s tasks until
   interrupted — or, with [once], until at least one client has come,
   every connection has closed and the drain is complete.

   [journal] names a write-ahead journal file: completions and lease
   grants are appended before they are acknowledged, with a compacted
   checkpoint every [checkpoint_every] completions; [fsync] makes each
   append machine-crash durable (default is flush-per-append, which
   survives kill -9). [recover] rebuilds the server from that journal's
   replay instead of starting fresh — previously journaled completions
   are never re-leased, leased-but-unjournaled tasks are re-issued.

   [telemetry_port] opens a second loopback listener (0 picks a free
   one; the bound port is printed as "telemetry on 127.0.0.1:PORT")
   answering every request with one OpenMetrics text page of the live
   served.* registry and process gauges — what `ic_sched top` and a
   Prometheus scraper read. [telemetry_csv] appends a counters snapshot
   row every [telemetry_every_s] seconds. [flight] names an mmap'd flight-recorder
   ring: every allocation/completion/expiry lands in it and survives
   kill -9 (read it back with `ic_sched blackbox`); with [recover] an
   existing ring of the same geometry is continued, not truncated.

   [metrics_out]/[trace_out] write the served.* metrics registry as
   JSON and a Chrome trace-event file with one track per shard after
   the loop exits. Errors: invalid config, a bind failure, a journal
   that cannot be opened or does not fit the dag, a flight ring that
   cannot be created, [recover] without [journal], or — from the stub —
   the subsystem not being built on this compiler. *)

type hammer_outcome = {
  h_workers : int;
  completes_sent : int;
  done_seen : bool;  (* the server answered Done: every task applied *)
  crashed : int;
  disconnects : int;
  reconnects : int;  (* sockets successfully redialed after a loss *)
  h_wall_s : float;
  grant_p50_s : float;
  grant_p99_s : float;
  service_p50_s : float;
  service_p99_s : float;
}

val hammer :
  host:string ->
  port:int ->
  workers:int ->
  connections:int ->
  k:int ->
  churn:bool ->
  seed:int ->
  mean_service_s:float ->
  think_s:float ->
  chaos:float ->
  chaos_seed:int ->
  utilization_out:string option ->
  ?metrics_out:string ->
  unit ->
  (hammer_outcome, string) result
(* Drive [workers] simulated workers (lease batches of [k], seeded
   Pareto service latencies) against the server at [host]:[port] over
   [connections] real sockets. [churn] turns on a seeded
   crash/disconnect/rejoin plan. [chaos] > 0 mangles outgoing frames:
   dropped and bit-flipped at that rate, truncated at half of it, from
   the deterministic stream seeded by [chaos_seed] — the client heals
   by reply timeout and reconnect. [utilization_out] writes a
   per-worker busy-time CSV (worker,busy_s,utilization); [metrics_out]
   writes the client-side hammer.* registry as JSON. Both files are
   written on every exit that produced a result — including runs cut
   short by a dead server once the reconnect/reply-timeout budget is
   exhausted, which previously discarded them. Errors: invalid config,
   the initial dial refused, or — from the stub — the subsystem not
   being built. *)
