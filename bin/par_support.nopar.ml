let available = false

type outcome = {
  payload : string;
  n_nodes : int;
  domains : int;
  order : string;
  wall_s : float;
  seq_wall_s : float;
  tasks : int;
  steals : int;
  steal_attempts : int;
  overflows : int;
  parks : int;
  ok : bool;
}

let run ~family:_ ~size:_ ~spin_us:_ ~domains:_ ~order:_ ?trace_out:_
    ?metrics_out:_ ~check:_ () =
  Error
    "the parallel runtime requires OCaml >= 5.0 (ic_par is not built on this \
     compiler)"
