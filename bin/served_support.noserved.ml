let available = false

type serve_outcome = {
  n_tasks : int;
  completions : int;
  leases : int;
  leased_tasks : int;
  reissues : int;
  duplicates : int;
  retry_afters : int;
  heartbeats : int;
  protocol_errors : int;
  inflight : int;
  recovered_tasks : int;
  recovered_reissues : int;
}

type hammer_outcome = {
  h_workers : int;
  completes_sent : int;
  done_seen : bool;
  crashed : int;
  disconnects : int;
  reconnects : int;
  h_wall_s : float;
  grant_p50_s : float;
  grant_p99_s : float;
  service_p50_s : float;
  service_p99_s : float;
}

let unavailable =
  Error
    "the serving subsystem requires OCaml >= 5.0 (ic_served is not built on \
     this compiler)"

let serve ~dag:_ ~port:_ ~shards:_ ~max_lease:_ ~expected_s:_ ~once:_
    ~journal:_ ~checkpoint_every:_ ~fsync:_ ~recover:_ ~telemetry_port:_
    ~telemetry_csv:_ ~telemetry_every_s:_ ~flight:_ ?metrics_out:_
    ?trace_out:_ () =
  unavailable

let hammer ~host:_ ~port:_ ~workers:_ ~connections:_ ~k:_ ~churn:_ ~seed:_
    ~mean_service_s:_ ~think_s:_ ~chaos:_ ~chaos_seed:_ ~utilization_out:_
    ?metrics_out:_ () =
  unavailable
