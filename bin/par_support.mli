(* The bin executables' view of the parallel runtime. Dune `select`
   plugs in par_support.par.ml when ic_par is available (OCaml >= 5.0)
   and par_support.nopar.ml otherwise, so ic_sched and report build —
   with the `run` subcommand and E19 degrading to a clear message — on
   4.14 toolchains too. *)

val available : bool

type outcome = {
  payload : string;  (* payload name, e.g. "wavefront-40" *)
  n_nodes : int;
  domains : int;
  order : string;  (* "steal" | "ic" *)
  wall_s : float;  (* parallel wall-clock, seconds *)
  seq_wall_s : float;  (* sequential engine wall-clock (nan if check:false) *)
  tasks : int;
  steals : int;
  steal_attempts : int;
  overflows : int;
  parks : int;
  ok : bool;  (* fingerprint = sequential's, and the self-check passed *)
}

val run :
  family:string ->
  size:int ->
  spin_us:float ->
  domains:int ->
  order:string ->
  ?trace_out:string ->
  ?metrics_out:string ->
  check:bool ->
  unit ->
  (outcome, string) result
(* [domains = 0] means auto (IC_PAR_DOMAINS or the recommended count).
   [check:false] skips the sequential baseline run and the result
   comparison ([seq_wall_s] is nan, [ok] reflects only the self-check
   being skipped, i.e. true). Errors: unknown family/order, or — from
   the stub — the runtime not being built on this compiler. *)
