let available = true

type serve_outcome = {
  n_tasks : int;
  completions : int;
  leases : int;
  leased_tasks : int;
  reissues : int;
  duplicates : int;
  retry_afters : int;
  heartbeats : int;
  protocol_errors : int;
  inflight : int;
  recovered_tasks : int;
  recovered_reissues : int;
}

type hammer_outcome = {
  h_workers : int;
  completes_sent : int;
  done_seen : bool;
  crashed : int;
  disconnects : int;
  reconnects : int;
  h_wall_s : float;
  grant_p50_s : float;
  grant_p99_s : float;
  service_p50_s : float;
  service_p99_s : float;
}

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc

let serve ~dag ~port ~shards ~max_lease ~expected_s ~once ~journal
    ~checkpoint_every ~fsync ~recover ~telemetry_port ~telemetry_csv
    ~telemetry_every_s ~flight ?metrics_out ?trace_out () =
  match
    Ic_served.Server.config ~n_shards:shards ~max_lease ~expected_s ()
  with
  | exception Invalid_argument msg -> Error msg
  | _ when recover && journal = None ->
    Error "--recover needs --journal: the journal is what is replayed"
  | cfg -> (
    let jr =
      match journal with
      | None -> Ok None
      | Some path -> (
        match Ic_served.Journal.open_ ~fsync ~checkpoint_every path with
        | Ok j -> Ok (Some j)
        | Error e -> Error e)
    in
    match jr with
    | Error e -> Error e
    | Ok j -> (
      (* the flight ring reopens in place under --recover: same
         geometry means the pre-crash frames stay put and numbering
         continues, so blackbox shows the tail across the kill *)
      let fr =
        match flight with
        | None -> Ok None
        | Some path -> (
          match Ic_obs.Flight.create path with
          | Ok f -> Ok (Some f)
          | Error e ->
            Option.iter Ic_served.Journal.close j;
            Error e)
      in
      match fr with
      | Error e -> Error e
      | Ok fl -> (
      let sink = Option.map (fun _ -> Ic_obs.Trace.create ()) trace_out in
      let registry =
        Option.map (fun _ -> Ic_obs.Metrics.create ()) metrics_out
      in
      match
        Ic_served.Tcp.serve ?metrics:registry ?sink ?journal:j ~recover
          ~log:(fun line -> Printf.eprintf "ic_sched serve: %s\n%!" line)
          ?flight:fl ?telemetry_port ?telemetry_csv
          ~telemetry_every_s
          ?on_telemetry_listen:
            (Option.map
               (fun _ p ->
                 Format.printf "telemetry on 127.0.0.1:%d@." p;
                 flush stdout)
               telemetry_port)
          ~on_listen:(fun p ->
            Format.printf "serving %d tasks on 127.0.0.1:%d (%d shards)@."
              (Ic_dag.Dag.n_nodes dag) p shards;
            (* the port line is what scripts (and the CI smoke job) wait
               for before launching the hammer, so it must not sit in a
               buffer while the select loop blocks *)
            flush stdout)
          ~once ~port cfg dag
      with
      | exception Unix.Unix_error (e, fn, _) ->
        Option.iter Ic_served.Journal.close j;
        Option.iter Ic_obs.Flight.close fl;
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | exception Invalid_argument msg ->
        Option.iter Ic_served.Journal.close j;
        Option.iter Ic_obs.Flight.close fl;
        Error msg
      | st ->
        Option.iter Ic_served.Journal.close j;
        Option.iter Ic_obs.Flight.close fl;
        Option.iter
          (fun file ->
            write_file file
              (Ic_obs.Exporter.chrome_trace
                 ~process_name:
                   (Printf.sprintf "ic_served: %d tasks over %d shards"
                      (Ic_dag.Dag.n_nodes dag) shards)
                 ~label:(Ic_dag.Dag.label dag)
                 (Option.get sink)))
          trace_out;
        Option.iter
          (fun file ->
            write_file file (Ic_obs.Metrics.to_json (Option.get registry)))
          metrics_out;
        Ok
          {
            n_tasks = Ic_dag.Dag.n_nodes dag;
            completions = st.Ic_served.Server.completions;
            leases = st.Ic_served.Server.leases;
            leased_tasks = st.Ic_served.Server.leased_tasks;
            reissues = st.Ic_served.Server.reissues;
            duplicates = st.Ic_served.Server.duplicate_completes;
            retry_afters = st.Ic_served.Server.retry_afters;
            heartbeats = st.Ic_served.Server.heartbeats;
            protocol_errors = st.Ic_served.Server.protocol_errors;
            inflight = st.Ic_served.Server.inflight;
            recovered_tasks = st.Ic_served.Server.recovered_tasks;
            recovered_reissues = st.Ic_served.Server.recovered_reissues;
          })))

(* the client-side registry mirrors what the hammer measured; written
   via Metrics so the JSON shape matches every other artifact *)
let hammer_metrics_json (r : Ic_served.Tcp.hammer_result) =
  let m = Ic_obs.Metrics.create () in
  let c name v = Ic_obs.Metrics.incr ~by:v (Ic_obs.Metrics.counter m name) in
  let g name v = Ic_obs.Metrics.set (Ic_obs.Metrics.gauge m name) v in
  c "hammer.workers" r.Ic_served.Tcp.workers;
  c "hammer.completes_sent" r.Ic_served.Tcp.completes_sent;
  c "hammer.crashed" r.Ic_served.Tcp.crashed;
  c "hammer.disconnects" r.Ic_served.Tcp.disconnects;
  c "hammer.reconnects" r.Ic_served.Tcp.reconnects;
  c "hammer.done_seen" (if r.Ic_served.Tcp.done_seen then 1 else 0);
  g "hammer.wall_s" r.Ic_served.Tcp.wall_s;
  g "hammer.lease_grant_p50_s" r.Ic_served.Tcp.lease_grant_p50_s;
  g "hammer.lease_grant_p99_s" r.Ic_served.Tcp.lease_grant_p99_s;
  g "hammer.task_service_p50_s" r.Ic_served.Tcp.task_service_p50_s;
  g "hammer.task_service_p99_s" r.Ic_served.Tcp.task_service_p99_s;
  Ic_obs.Metrics.to_json m

let hammer ~host ~port ~workers ~connections ~k ~churn ~seed ~mean_service_s
    ~think_s ~chaos ~chaos_seed ~utilization_out ?metrics_out () =
  let plan =
    if churn then
      Ic_fault.Plan.make ~crash_rate:0.002 ~disconnect_rate:0.02
        ~mean_downtime:0.5 ~seed ()
    else Ic_fault.Plan.none
  in
  let wire =
    if chaos > 0.0 then
      match
        Ic_fault.Plan.Wire.make ~drop:chaos ~corrupt:chaos
          ~truncate:(chaos /. 2.0) ~seed:chaos_seed ()
      with
      | exception Invalid_argument msg -> Error msg
      | w -> Ok (Some w)
    else Ok None
  in
  match wire with
  | Error e -> Error e
  | Ok wire -> (
    match
      Ic_served.Hammer.config ~workers ~k ~mean_service_s ~think_s ~churn:plan
        ~seed ()
    with
    | exception Invalid_argument msg -> Error msg
    | cfg -> (
      match
        Ic_served.Tcp.hammer ~host ~connections ?chaos:wire
          ~log:(fun line -> Printf.eprintf "ic_sched hammer: %s\n%!" line)
          ~port cfg
      with
      | exception Unix.Unix_error (e, fn, _) ->
        (* only the initial dial raises now — mid-run socket losses
           finalize inside Tcp.hammer and land in the [r] branch below,
           so the CSV/JSON artifacts survive a server that died *)
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | r ->
        Option.iter
          (fun file ->
            let b = Buffer.create 1024 in
            Buffer.add_string b "worker,busy_s,utilization\n";
            Array.iteri
              (fun i busy ->
                Buffer.add_string b
                  (Printf.sprintf "%d,%.6f,%.4f\n" i busy
                     (if r.Ic_served.Tcp.wall_s > 0.0 then
                        busy /. r.Ic_served.Tcp.wall_s
                      else 0.0)))
              r.Ic_served.Tcp.busy_s;
            write_file file (Buffer.contents b))
          utilization_out;
        Option.iter (fun file -> write_file file (hammer_metrics_json r))
          metrics_out;
        Ok
          {
            h_workers = r.Ic_served.Tcp.workers;
            completes_sent = r.Ic_served.Tcp.completes_sent;
            done_seen = r.Ic_served.Tcp.done_seen;
            crashed = r.Ic_served.Tcp.crashed;
            disconnects = r.Ic_served.Tcp.disconnects;
            reconnects = r.Ic_served.Tcp.reconnects;
            h_wall_s = r.Ic_served.Tcp.wall_s;
            grant_p50_s = r.Ic_served.Tcp.lease_grant_p50_s;
            grant_p99_s = r.Ic_served.Tcp.lease_grant_p99_s;
            service_p50_s = r.Ic_served.Tcp.task_service_p50_s;
            service_p99_s = r.Ic_served.Tcp.task_service_p99_s;
          }))
