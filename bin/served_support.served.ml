let available = true

type serve_outcome = {
  n_tasks : int;
  completions : int;
  leases : int;
  leased_tasks : int;
  reissues : int;
  duplicates : int;
  retry_afters : int;
  heartbeats : int;
  protocol_errors : int;
  inflight : int;
}

type hammer_outcome = {
  h_workers : int;
  completes_sent : int;
  done_seen : bool;
  crashed : int;
  disconnects : int;
  h_wall_s : float;
  grant_p50_s : float;
  grant_p99_s : float;
  service_p50_s : float;
  service_p99_s : float;
}

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc

let serve ~dag ~port ~shards ~max_lease ~expected_s ~once ?metrics_out
    ?trace_out () =
  match
    Ic_served.Server.config ~n_shards:shards ~max_lease ~expected_s ()
  with
  | exception Invalid_argument msg -> Error msg
  | cfg -> (
    let sink = Option.map (fun _ -> Ic_obs.Trace.create ()) trace_out in
    let registry =
      Option.map (fun _ -> Ic_obs.Metrics.create ()) metrics_out
    in
    match
      Ic_served.Tcp.serve ?metrics:registry ?sink
        ~on_listen:(fun p ->
          Format.printf "serving %d tasks on 127.0.0.1:%d (%d shards)@."
            (Ic_dag.Dag.n_nodes dag) p shards;
          (* the port line is what scripts (and the CI smoke job) wait
             for before launching the hammer, so it must not sit in a
             buffer while the select loop blocks *)
          flush stdout)
        ~once ~port cfg dag
    with
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    | st ->
      Option.iter
        (fun file ->
          write_file file
            (Ic_obs.Exporter.chrome_trace
               ~process_name:
                 (Printf.sprintf "ic_served: %d tasks over %d shards"
                    (Ic_dag.Dag.n_nodes dag) shards)
               ~label:(Ic_dag.Dag.label dag)
               (Option.get sink)))
        trace_out;
      Option.iter
        (fun file ->
          write_file file (Ic_obs.Metrics.to_json (Option.get registry)))
        metrics_out;
      Ok
        {
          n_tasks = Ic_dag.Dag.n_nodes dag;
          completions = st.Ic_served.Server.completions;
          leases = st.Ic_served.Server.leases;
          leased_tasks = st.Ic_served.Server.leased_tasks;
          reissues = st.Ic_served.Server.reissues;
          duplicates = st.Ic_served.Server.duplicate_completes;
          retry_afters = st.Ic_served.Server.retry_afters;
          heartbeats = st.Ic_served.Server.heartbeats;
          protocol_errors = st.Ic_served.Server.protocol_errors;
          inflight = st.Ic_served.Server.inflight;
        })

let hammer ~host ~port ~workers ~connections ~k ~churn ~seed ~mean_service_s
    ~think_s () =
  let plan =
    if churn then
      Ic_fault.Plan.make ~crash_rate:0.002 ~disconnect_rate:0.02
        ~mean_downtime:0.5 ~seed ()
    else Ic_fault.Plan.none
  in
  match
    Ic_served.Hammer.config ~workers ~k ~mean_service_s ~think_s ~churn:plan
      ~seed ()
  with
  | exception Invalid_argument msg -> Error msg
  | cfg -> (
    match Ic_served.Tcp.hammer ~host ~connections ~port cfg with
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    | r ->
      Ok
        {
          h_workers = r.Ic_served.Tcp.workers;
          completes_sent = r.Ic_served.Tcp.completes_sent;
          done_seen = r.Ic_served.Tcp.done_seen;
          crashed = r.Ic_served.Tcp.crashed;
          disconnects = r.Ic_served.Tcp.disconnects;
          h_wall_s = r.Ic_served.Tcp.wall_s;
          grant_p50_s = r.Ic_served.Tcp.lease_grant_p50_s;
          grant_p99_s = r.Ic_served.Tcp.lease_grant_p99_s;
          service_p50_s = r.Ic_served.Tcp.task_service_p50_s;
          service_p99_s = r.Ic_served.Tcp.task_service_p99_s;
        })
