(* Regenerates every experiment of DESIGN.md's per-experiment index
   (E1..E16) and prints the measured tables recorded in EXPERIMENTS.md.

   dune exec bin/report.exe            -- all experiments
   dune exec bin/report.exe e8 e16     -- a selection *)

module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Optimal = Ic_dag.Optimal
module F = Ic_families
module G = Ic_granularity

let pf = Format.printf

let verdict g s =
  match Optimal.is_ic_optimal g s with
  | Ok true -> "IC-optimal"
  | Ok false -> "NOT optimal"
  | Error (`Too_large _) -> "too large for brute force"

let profile_string p =
  "["
  ^ String.concat ";" (Array.to_list (Array.map string_of_int p))
  ^ "]"

let header id title =
  pf "@.==== %s: %s ====@." (String.uppercase_ascii id) title

let e1 () =
  header "e1" "building blocks (Fig. 1) and the repertoire";
  pf "%-6s %6s %6s  %-24s %s@." "block" "nodes" "arcs" "nonsink profile" "verdict";
  List.iter
    (fun (b : Ic_blocks.Repertoire.t) ->
      pf "%-6s %6d %6d  %-24s %s@." b.name (Dag.n_nodes b.dag) (Dag.n_arcs b.dag)
        (profile_string (Profile.nonsink_profile b.dag b.schedule))
        (verdict b.dag b.schedule))
    Ic_blocks.Repertoire.all

let e2 () =
  header "e2" "expansion-reduction diamonds (Fig. 2)";
  List.iter
    (fun depth ->
      let d = F.Diamond.complete ~arity:2 ~depth in
      let g = F.Diamond.dag d and s = F.Diamond.schedule d in
      pf "diamond depth %d: %3d tasks, %s, profile %s@." depth (Dag.n_nodes g)
        (verdict g s)
        (profile_string (Profile.nonsink_profile g s)))
    [ 1; 2; 3 ];
  let rng = Random.State.make [| 7 |] in
  let d = F.Diamond.symmetric (F.Out_tree.random rng ~max_internal:7 ~arity:2) in
  pf "irregular diamond (random subdivision): %d tasks, %s@."
    (Dag.n_nodes (F.Diamond.dag d))
    (verdict (F.Diamond.dag d) (F.Diamond.schedule d))

let e3 () =
  header "e3" "coarsened diamonds (Fig. 3)";
  let d = F.Diamond.complete ~arity:2 ~depth:4 in
  let fine = F.Diamond.dag d in
  let partial = G.Coarsen_diamond.coarsen d ~subtree_roots:[ 2; 9 ] in
  let uniform = G.Coarsen_diamond.uniform d ~depth:2 in
  pf "fine diamond: %d tasks@." (Dag.n_nodes fine);
  pf "Fig.3-style partial coarsening (2 subtree pairs): %d tasks, admits IC-optimal: %b@."
    (Dag.n_nodes partial.G.Cluster.coarse)
    (Result.get_ok (Optimal.admits_ic_optimal partial.G.Cluster.coarse));
  pf "uniform truncation at depth 2: %d tasks, admits IC-optimal: %b@."
    (Dag.n_nodes uniform.G.Cluster.coarse)
    (Result.get_ok (Optimal.admits_ic_optimal uniform.G.Cluster.coarse))

let e4_e5 () =
  header "e4/e5" "alternating compositions (Fig. 4) and Table 1";
  let s1 = F.Out_tree.complete ~arity:2 ~depth:1 in
  let s2 = F.Out_tree.complete ~arity:2 ~depth:2 in
  List.iter
    (fun (name, items) ->
      let c = F.Alternating.build_exn items in
      let g = Ic_core.Compose.dag (fst c) in
      pf "%-34s %3d tasks  %s@." name (Dag.n_nodes g)
        (verdict g (F.Alternating.schedule c)))
    [
      ("type 1: D0 ^ D1", F.Alternating.diamond_chain [ s1; s2 ]);
      ("type 2: T0(in) ^ D1", F.Alternating.in_prefixed s1 [ s2 ]);
      ("type 3: D1 ^ T0(out)", F.Alternating.out_suffixed [ s1 ] s2);
      ("Fig 4 right: unequal leaf counts", [ F.Alternating.Out s1; F.Alternating.In s2 ]);
      ( "longer chain D0 ^ D1 ^ D2",
        F.Alternating.diamond_chain [ s1; s1; s2 ] );
    ]

let e6 () =
  header "e6" "wavefront meshes (Fig. 5)";
  List.iter
    (fun l ->
      pf "out-mesh L=%d: %3d tasks, %s | in-mesh: %s@." l
        (Dag.n_nodes (F.Mesh.out_mesh l))
        (verdict (F.Mesh.out_mesh l) (F.Mesh.out_schedule l))
        (verdict (F.Mesh.in_mesh l) (F.Mesh.in_schedule l)))
    [ 2; 4; 6 ]

let e7 () =
  header "e7" "the mesh as a W-dag composition (Fig. 6)";
  pf "W_s |> W_t matrix (rows: s, cols: t; the paper: priority iff s <= t):@.   ";
  let range = [ 1; 2; 3; 4 ] in
  List.iter (fun t -> pf "%4d" t) range;
  pf "@.";
  List.iter
    (fun s ->
      pf "%2d " s;
      List.iter
        (fun t ->
          let p =
            Ic_core.Priority.has_priority
              (Ic_core.Priority.of_block (Ic_blocks.Repertoire.w s))
              (Ic_core.Priority.of_block (Ic_blocks.Repertoire.w t))
          in
          pf "%4s" (if p then "yes" else "-"))
        range;
      pf "@.")
    range;
  let c, sigmas = F.Mesh.w_decomposition 5 in
  pf "W_1 ^ ... ^ W_5 composite isomorphic to the L=5 out-mesh: %b@."
    (Ic_dag.Iso.isomorphic (Ic_core.Compose.dag c) (F.Mesh.out_mesh 5));
  pf "|>-linear: %b; Theorem 2.1 schedule: %s@."
    (Ic_core.Linear.is_linear c sigmas)
    (verdict (Ic_core.Compose.dag c) (Ic_core.Linear.schedule_exn c sigmas))

let e8 () =
  header "e8" "mesh coarsening: quadratic work vs linear communication (Fig. 7)";
  pf "%6s %8s %10s %10s %8s@." "block" "tasks" "max work" "max comm" "cut arcs";
  List.iter
    (fun r ->
      pf "%6d %8d %10.0f %10d %8d@." r.G.Coarsen_mesh.block r.G.Coarsen_mesh.n_coarse_tasks
        r.G.Coarsen_mesh.max_task_work r.G.Coarsen_mesh.max_task_communication
        r.G.Coarsen_mesh.total_cut_arcs)
    (G.Coarsen_mesh.scaling ~levels:23 ~blocks:[ 1; 2; 3; 4; 6; 8; 12 ]);
  let t = G.Coarsen_mesh.coarsen ~levels:11 ~block:3 in
  pf "coarse dag is again an out-mesh: %b@." (G.Coarsen_mesh.is_again_out_mesh t)

let e8b () =
  header "e8b"
    "the granularity crossover, simulated (section 4's argument, closed loop)";
  let rows = Ic_sim.Granularity_study.mesh_crossover () in
  pf "L=15 out-mesh (136 cells), 8 clients, wavefront schedules; makespans:@.";
  pf "%10s %10s %10s %10s   best@." "comm price" "fine b=1" "b=2" "b=4";
  List.iter
    (fun ct ->
      let find b =
        List.find
          (fun r -> r.Ic_sim.Granularity_study.comm_time = ct && r.block = b)
          rows
      in
      pf "%10.1f %10.2f %10.2f %10.2f   b=%d@." ct
        (find 1).Ic_sim.Granularity_study.makespan (find 2).makespan
        (find 4).makespan
        (Ic_sim.Granularity_study.best_block rows ct))
    [ 0.0; 0.5; 2.0; 8.0 ]

let e9 () =
  header "e9" "butterfly networks (Figs. 8-10)";
  List.iter
    (fun d ->
      let g = F.Butterfly_net.dag d and s = F.Butterfly_net.schedule d in
      pf "B_%d: %3d tasks, pairing schedule %s (pairs consecutive: %b)@." d
        (Dag.n_nodes g) (verdict g s)
        (F.Butterfly_net.pairs_consecutive d s))
    [ 1; 2; 3 ];
  (* negative control: row-major order splits level >= 1 pairs *)
  let d = 2 in
  let g = F.Butterfly_net.dag d in
  let order =
    List.concat
      (List.init d (fun l -> List.init 4 (fun r -> F.Butterfly_net.node ~d l r)))
  in
  let s = Schedule.of_nonsink_order_exn g order in
  pf "row-major control on B_2: pairs consecutive: %b, %s@."
    (F.Butterfly_net.pairs_consecutive d s)
    (verdict g s);
  let c, sigmas = F.Butterfly_net.block_decomposition 3 in
  pf "B_3 as %d composed B blocks: isomorphic %b, |>-linear %b@."
    (List.length sigmas)
    (Ic_dag.Iso.isomorphic (Ic_core.Compose.dag c) (F.Butterfly_net.dag 3))
    (Ic_core.Linear.is_linear c sigmas);
  let tb = G.Coarsen_butterfly.two_band ~a:1 ~b:1 in
  pf "granularity: B_2 two-band-coarsens to the block B itself: %b@."
    (Ic_dag.Iso.isomorphic tb.G.Cluster.coarse (Ic_blocks.Butterfly_block.dag ()))

let e10 () =
  header "e10" "sorting and convolution through butterflies (eqs. 5.1, 5.2)";
  let rng = Random.State.make [| 99 |] in
  List.iter
    (fun d ->
      let n = 1 lsl d in
      let keys = Array.init n (fun _ -> Random.State.int rng 10_000) in
      let expected = Array.copy keys in
      Array.sort compare expected;
      pf "bitonic sort, n=%3d (%d comparator stages): sorted correctly: %b@." n
        (Ic_compute.Sorting.n_substages d)
        (Ic_compute.Sorting.sort keys = expected))
    [ 2; 4; 6 ];
  let input =
    Array.init 64 (fun _ ->
        { Complex.re = Random.State.float rng 2.0 -. 1.0;
          im = Random.State.float rng 2.0 -. 1.0 })
  in
  let fft = Ic_compute.Fft.fft input and dft = Ic_compute.Fft.dft_naive input in
  let err =
    Array.fold_left max 0.0
      (Array.mapi (fun i z -> Complex.norm (Complex.sub z dft.(i))) fft)
  in
  pf "64-point FFT through B_6 vs naive DFT: max |error| = %.2e@." err;
  let a = Array.init 100 (fun i -> float_of_int (i mod 7)) in
  let b = Array.init 80 (fun i -> float_of_int (i mod 5)) in
  let fast = Ic_compute.Convolution.poly_mul_fft a b in
  let slow = Ic_compute.Convolution.naive a b in
  let cerr =
    Array.fold_left max 0.0 (Array.mapi (fun i x -> Float.abs (x -. slow.(i))) fast)
  in
  pf "degree-99 x degree-79 polynomial product: max coefficient error = %.2e@." cerr

let e11 () =
  header "e11" "parallel-prefix dags (Figs. 11-12)";
  pf "N_s |> N_t for all s,t in 1..5: %b@."
    (List.for_all
       (fun s ->
         List.for_all
           (fun t ->
             Ic_core.Priority.has_priority
               (Ic_core.Priority.of_block (Ic_blocks.Repertoire.n s))
               (Ic_core.Priority.of_block (Ic_blocks.Repertoire.n t)))
           [ 1; 2; 3; 4; 5 ])
       [ 1; 2; 3; 4; 5 ]);
  List.iter
    (fun n ->
      pf "P_%d: %3d tasks, %s@." n
        (Dag.n_nodes (F.Prefix_dag.dag n))
        (verdict (F.Prefix_dag.dag n) (F.Prefix_dag.schedule n)))
    [ 4; 6; 8 ];
  let d = F.Prefix_dag.n_decomposition 8 in
  let sizes =
    List.map
      (fun (g, _) -> List.length (Dag.sources g))
      (Ic_core.Compose.components d.F.Prefix_dag.compose)
  in
  pf "P_8 N-dag decomposition (Fig. 12): N_%s@."
    (String.concat " ^ N_" (List.map string_of_int sizes))

let e12 () =
  header "e12" "the DLT dag L_n (Fig. 13)";
  List.iter
    (fun n ->
      let t = F.Dlt_dag.l_dag n in
      pf "L_%d: %2d tasks, %s@." n (Dag.n_nodes (F.Dlt_dag.dag t))
        (verdict (F.Dlt_dag.dag t) (F.Dlt_dag.schedule t)))
    [ 4; 8 ];
  let c = G.Coarsen_dlt.coarsen_columns 8 in
  pf "coarsened L_8 (columns collapsed, Fig. 13 right): %d tasks, admits: %b@."
    (Dag.n_nodes c.G.Cluster.coarse)
    (Result.get_ok (Optimal.admits_ic_optimal c.G.Cluster.coarse));
  let x = Array.init 8 (fun i -> { Complex.re = float_of_int (i + 1); im = 0.0 }) in
  let omega = Complex.polar 1.0 (2.0 *. Float.pi /. 8.0) in
  let max_err = ref 0.0 in
  for k = 0 to 7 do
    let e =
      Complex.norm
        (Complex.sub
           (Ic_compute.Dlt.via_prefix ~x ~omega ~k)
           (Ic_compute.Dlt.naive ~x ~omega ~k))
    in
    if e > !max_err then max_err := e
  done;
  pf "8-point DLT through L_8 vs direct evaluation: max |error| = %.2e@." !max_err

let e13 () =
  header "e13" "the ternary-tree DLT dag L'_n (Figs. 14-15)";
  pf "chain V_3 |> V_3 |> Lambda |> Lambda: %b@."
    (Ic_core.Priority.is_linear_chain
       (List.map Ic_core.Priority.of_block
          Ic_blocks.Repertoire.[ vee 3; vee 3; lambda 2; lambda 2 ]));
  List.iter
    (fun n ->
      let t = F.Dlt_dag.l_prime_dag n in
      pf "L'_%d: %2d tasks, %s@." n (Dag.n_nodes (F.Dlt_dag.dag t))
        (verdict (F.Dlt_dag.dag t) (F.Dlt_dag.schedule t)))
    [ 4; 8; 16 ];
  let x = Array.init 8 (fun i -> { Complex.re = 1.0 /. float_of_int (i + 1); im = 0.1 }) in
  let omega = Complex.polar 1.0 (2.0 *. Float.pi /. 8.0) in
  let max_err = ref 0.0 in
  for k = 0 to 7 do
    let e =
      Complex.norm
        (Complex.sub
           (Ic_compute.Dlt.via_tree ~x ~omega ~k)
           (Ic_compute.Dlt.naive ~x ~omega ~k))
    in
    if e > !max_err then max_err := e
  done;
  pf "8-point DLT through L'_8 vs direct evaluation: max |error| = %.2e@." !max_err

let e14 () =
  header "e14" "computing the paths in a graph (Fig. 16)";
  let a =
    Ic_compute.Bool_matrix.of_edges 9
      [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4); (4, 5); (5, 6); (6, 7); (7, 8); (8, 0) ]
  in
  let m = Ic_compute.Paths.compute a ~k:8 in
  pf "9-node graph, path lengths 1..8 through the L_8-shaped dag (%d tasks)@."
    (Dag.n_nodes (F.Path_dag.dag 8));
  pf "matches repeated logical multiplication: %b@."
    (m = Ic_compute.Paths.reference a ~k:8);
  pf "spot checks: 0~>0 in 4 steps: %b | in 7 steps: %b | in 3 steps: %b@."
    m.(0).(0).(3) m.(0).(0).(6) m.(0).(0).(2)

let e15 () =
  header "e15" "matrix multiplication (Fig. 17 and the boxed schedule)";
  let g = F.Matmul_dag.dag () and s = F.Matmul_dag.schedule () in
  pf "M = C_4 ^ C_4 ^ L ^ L ^ L ^ L: %d tasks, Theorem 2.1 schedule %s@."
    (Dag.n_nodes g) (verdict g s);
  pf "product tasks become ELIGIBLE in the order: %s@."
    (String.concat ", " (F.Matmul_dag.product_eligibility_order ()));
  pf "paper's boxed order:                        AE, CE, CF, AF, BG, DG, DH, BH@.";
  let rng = Random.State.make [| 4 |] in
  let a = Ic_compute.Matmul.random rng 32 and b = Ic_compute.Matmul.random rng 32 in
  pf "32x32 recursive product through M agrees with naive: %b@."
    (Ic_compute.Matmul.approx_equal
       (Ic_compute.Matmul.multiply ~threshold:4 a b)
       (Ic_compute.Matmul.naive a b))

let e16 () =
  header "e16" "simulation assessment: IC-optimal vs heuristics ([15],[19]-style)";
  let hetero i = [| 1.0; 0.5; 2.0; 0.25; 1.5; 0.75 |].(i mod 6) in
  let cases =
    [
      ("out-mesh L=20, 6 clients", F.Mesh.out_mesh 20, F.Mesh.out_schedule 20, 6);
      ("butterfly B_6, 12 clients", F.Butterfly_net.dag 6, F.Butterfly_net.schedule 6, 12);
      ("prefix P_32, 8 clients", F.Prefix_dag.dag 32, F.Prefix_dag.schedule 32, 8);
      ( "diamond depth 7, 8 clients",
        F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:7),
        F.Diamond.schedule (F.Diamond.complete ~arity:2 ~depth:7),
        8 );
    ]
  in
  List.iter
    (fun (name, g, theory, n_clients) ->
      pf "@.--- %s (%d tasks; heterogeneous speeds, jitter 0.5) ---@." name
        (Dag.n_nodes g);
      let config = Ic_sim.Simulator.config ~n_clients ~speed:hetero ~jitter:0.5 () in
      Ic_sim.Assessment.pp_rows Format.std_formatter
        (Ic_sim.Assessment.compare_policies ~config g ~theory
           ~workload:(Ic_sim.Workload.random_uniform ~seed:5 ~lo:0.5 ~hi:2.0)))
    cases

let e16c () =
  header "e16c"
    "time-resolved eligibility curves (traced simulation, Ic_obs)";
  pf "eligible-task pool over simulated time, sampled at fractions of each@.";
  pf "policy's makespan — the temporal view behind the E16 aggregates:@.";
  List.iter
    (fun (name, g, theory, n_clients) ->
      pf "@.--- %s ---@." name;
      let config = Ic_sim.Simulator.config ~n_clients ~jitter:0.5 () in
      Ic_sim.Assessment.pp_curves Format.std_formatter
        (Ic_sim.Assessment.eligibility_curves ~config g ~theory))
    [
      ("out-mesh L=20, 6 clients", F.Mesh.out_mesh 20, F.Mesh.out_schedule 20, 6);
      ( "butterfly B_5, 12 clients",
        F.Butterfly_net.dag 5,
        F.Butterfly_net.schedule 5,
        12 );
    ]

let e16b () =
  header "e16b" "batch-request service (scenario 2 of section 2.2)";
  pf "fraction of a size-r request burst served immediately, per step:@.";
  pf "%-22s %8s %8s %8s %8s@." "dag / schedule" "r=1" "r=2" "r=4" "r=8";
  let bursts = [ 1; 2; 4; 8 ] in
  let renorm g s =
    Schedule.of_nonsink_order_exn g (Schedule.nonsink_prefix g s)
  in
  let line name g s =
    let rates = Ic_sim.Burst.sweep ~bursts g s in
    pf "%-22s" name;
    List.iter (fun (_, rate) -> pf " %7.1f%%" (100.0 *. rate)) rates;
    pf "@."
  in
  let cases =
    [
      ("mesh L=14", F.Mesh.out_mesh 14, F.Mesh.out_schedule 14);
      ("butterfly B_5", F.Butterfly_net.dag 5, F.Butterfly_net.schedule 5);
      ("prefix P_16", F.Prefix_dag.dag 16, F.Prefix_dag.schedule 16);
    ]
  in
  List.iter
    (fun (name, g, theory) ->
      line (name ^ " / optimal") g theory;
      let lifo = renorm g (Ic_heuristics.Policy.(run lifo) g) in
      line (name ^ " / lifo") g lifo;
      let fifo = renorm g (Ic_heuristics.Policy.(run fifo) g) in
      line (name ^ " / fifo") g fifo)
    cases

let e17 () =
  header "e17"
    "robustness study: IC-optimal vs heuristics under fault regimes";
  pf "every policy under every fault regime (crashes, flaky transport,@.";
  pf "stragglers), with the recovery policy suited to each regime; same@.";
  pf "seed everywhere, so identical runs are byte-reproducible:@.";
  List.iter
    (fun (name, g, theory, n_clients) ->
      pf "@.--- %s (%d tasks) ---@." name (Dag.n_nodes g);
      let config = Ic_sim.Simulator.config ~n_clients ~jitter:0.5 () in
      Ic_sim.Assessment.pp_robustness Format.std_formatter
        (Ic_sim.Assessment.robustness_study ~config g ~theory
           ~workload:(Ic_sim.Workload.random_uniform ~seed:5 ~lo:0.5 ~hi:2.0)))
    [
      ("out-mesh L=12, 6 clients", F.Mesh.out_mesh 12, F.Mesh.out_schedule 12, 6);
      ( "butterfly B_4, 8 clients",
        F.Butterfly_net.dag 4,
        F.Butterfly_net.schedule 4,
        8 );
    ]

let e18 () =
  header "e18"
    "batched scheduling ([20]; a total almost-optimality notion, section 8 dir. 2)";
  let module B = Ic_batch.Batched in
  (* a dag with no IC-optimal schedule still has a lex-optimal one *)
  let g =
    Dag.make_exn ~n:7 ~arcs:[ (0, 2); (0, 4); (1, 2); (1, 4); (2, 6); (3, 5) ] ()
  in
  pf "7-node dag admitting no IC-optimal schedule (found by search):@.";
  pf "  pointwise ceiling E_opt:      %s@."
    (profile_string (Result.get_ok (Optimal.e_opt g)));
  (match B.optimal g ~batch_size:1 with
  | Ok t -> pf "  lex-optimal p=1 profile:      %s@." (profile_string (B.profile g t))
  | Error _ -> ());
  (* on admitting dags the p=1 lex optimum recovers the pointwise optimum *)
  let mesh = F.Mesh.out_mesh 4 in
  (match (B.e_opt mesh ~batch_size:1, Optimal.e_opt mesh) with
  | Ok lex, Ok opt ->
    pf "mesh L=4: p=1 lex profile equals the pointwise optimum: %b@." (lex = opt)
  | _ -> ());
  (* greedy vs exact across batch sizes *)
  pf "@.greedy vs exact batched profiles (diamond depth 3, %d tasks):@."
    (Dag.n_nodes (F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:3)));
  let dg = F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:3) in
  List.iter
    (fun p ->
      let greedy = B.profile dg (B.greedy dg ~batch_size:p) in
      match B.optimal dg ~batch_size:p with
      | Ok t ->
        let exact = B.profile dg t in
        pf "  p=%d greedy %s@.      exact  %s  (equal: %b)@." p
          (profile_string greedy) (profile_string exact) (greedy = exact)
      | Error (`Too_large _) -> pf "  p=%d exact DP too large@." p)
    [ 1; 2; 4 ]

let a1 () =
  header "a1" "ablation: exact-verifier scaling (ideal enumeration)";
  pf "%-26s %8s %10s@." "dag" "nodes" "ideals";
  List.iter
    (fun (name, g) ->
      match Optimal.analyze g with
      | Ok a -> pf "%-26s %8d %10d@." name (Dag.n_nodes g) a.Optimal.n_ideals
      | Error (`Too_large k) -> pf "%-26s %8d %10s@." name (Dag.n_nodes g)
                                  (Printf.sprintf ">%d" k))
    [
      ("mesh L=4", F.Mesh.out_mesh 4);
      ("mesh L=6", F.Mesh.out_mesh 6);
      ("mesh L=8", F.Mesh.out_mesh 8);
      ("butterfly B_2", F.Butterfly_net.dag 2);
      ("butterfly B_3", F.Butterfly_net.dag 3);
      ("prefix P_8", F.Prefix_dag.dag 8);
      ("diamond depth 4", F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:4));
      ("antichain n=20", Dag.empty 20);
    ];
  pf "@.ablation: does Theorem 2.1 need the priority condition? The phase@.";
  pf "schedule of the NON-|>-linear composition Lambda ^ V is still valid but@.";
  pf "suboptimal orderings exist for other dags; the in-tree pair-splitting@.";
  pf "and butterfly row-major controls in E9/test suites show optimality is@.";
  pf "genuinely lost when the component order or pairing is violated.@."

let a2 () =
  header "a2" "the automatic scheduler: rediscovering the paper's decompositions";
  let show name g =
    match Ic_core.Auto.schedule g with
    | Error msg -> pf "%-22s FAILED: %s@." name msg
    | Ok p ->
      let block_names = List.map (fun b -> b.Ic_core.Auto.name) p.Ic_core.Auto.blocks in
      let summary =
        (* compress runs: "K(2,2) x12" *)
        let rec compress = function
          | [] -> []
          | x :: rest ->
            let same, rest' = List.partition (( = ) x) rest in
            (x, 1 + List.length same) :: compress rest'
        in
        compress block_names
        |> List.map (fun (n, k) -> if k = 1 then n else Printf.sprintf "%s x%d" n k)
        |> String.concat ", "
      in
      pf "%-22s %-11s %s  [%s]@." name
        (match p.Ic_core.Auto.certificate with
        | `Linear -> "|>-linear"
        | `Unverified -> "unverified")
        (verdict g p.Ic_core.Auto.schedule)
        summary
  in
  show "mesh L=5" (F.Mesh.out_mesh 5);
  show "butterfly B_3" (F.Butterfly_net.dag 3);
  show "prefix P_8" (F.Prefix_dag.dag 8);
  show "matmul M" (F.Matmul_dag.dag ());
  show "diamond depth 3" (F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:3));
  show "DLT L_8" (F.Dlt_dag.dag (F.Dlt_dag.l_dag 8));
  show "sorting net n=4" (Ic_compute.Sorting.network_dag 2);
  show "in-tree depth 3" (F.In_tree.dag ~arity:2 ~depth:3)

let e19 () =
  header "e19"
    "parallel execution: IC-priority ordering vs plain work stealing (Ic_par)";
  if not Par_support.available then
    pf "skipped: the parallel runtime requires OCaml >= 5.0@."
  else begin
    pf "real payloads on domains with work-stealing deques; each row runs the@.";
    pf "same dataflow under plain stealing and under the IC-optimal priority@.";
    pf "pool, with the sequential engine as the speedup baseline:@.";
    let domain_counts = [ 1; 2; 4; 8 ] in
    let cases =
      (* family, size, spin_us: ~1 us, ~100 us and ~10 ms granularities *)
      [
        ("wavefront", 40, 1.0);
        ("wavefront", 40, 100.0);
        ("wavefront", 12, 10_000.0);
        ("matmul", 6, 0.0);
        ("quadrature", 10, 100.0);
        ("fft", 8, 100.0);
      ]
    in
    pf "@.%-18s %6s %4s %6s  %9s %8s %8s %6s@." "payload" "spin" "dom" "order"
      "wall s" "speedup" "steals" "ok";
    List.iter
      (fun (family, size, spin_us) ->
        List.iter
          (fun domains ->
            List.iter
              (fun order ->
                match
                  Par_support.run ~family ~size ~spin_us ~domains ~order
                    ~check:true ()
                with
                | Error e -> pf "%s: %s@." family e
                | Ok o ->
                  pf "%-18s %6.0f %4d %6s  %9.4f %7.2fx %8d %6b@."
                    o.Par_support.payload spin_us o.domains o.order o.wall_s
                    (o.seq_wall_s /. o.wall_s) o.steals o.ok)
              [ "steal"; "ic" ])
          domain_counts)
      cases
  end

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4_e5); ("e5", e4_e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e8b", e8b); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e16b", e16b); ("e16c", e16c); ("e17", e17); ("e18", e18); ("e19", e19);
    ("a1", a1); ("a2", a2);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> List.map String.lowercase_ascii ids
    | _ -> [ "e1"; "e2"; "e3"; "e4"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11";
             "e8b"; "e12"; "e13"; "e14"; "e15"; "e16"; "e16b"; "e16c"; "e17";
             "e18"; "e19"; "a1"; "a2" ]
  in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some run -> run ()
      | None ->
        Format.eprintf "unknown experiment %S (known: e1..e18, a1, a2)@." id;
        exit 1)
    requested
