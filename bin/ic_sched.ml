(* ic_sched: command-line front end for the IC-scheduling library.

   dune exec bin/ic_sched.exe -- info mesh:6
   dune exec bin/ic_sched.exe -- schedule butterfly:3
   dune exec bin/ic_sched.exe -- verify prefix:8
   dune exec bin/ic_sched.exe -- dot diamond:2.3
   dune exec bin/ic_sched.exe -- simulate mesh:16 --clients 8 --policy fifo
   dune exec bin/ic_sched.exe -- compare butterfly:5 --clients 8
   dune exec bin/ic_sched.exe -- trace --family mesh --n 256 --policy random -o trace.json *)

open Cmdliner
module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Optimal = Ic_dag.Optimal
module Policy = Ic_heuristics.Policy

let family_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Ic_cli.Family_spec.parse s) in
  let print ppf (f : Ic_cli.Family_spec.t) = Format.pp_print_string ppf f.spec in
  Arg.conv (parse, print)

let family_pos =
  let doc =
    "Dag family specification. Known families: "
    ^ String.concat "; "
        (List.map (fun (k, v) -> Printf.sprintf "%s (%s)" k v)
           Ic_cli.Family_spec.families_help)
  in
  Arg.(required & pos 0 (some family_conv) None & info [] ~docv:"FAMILY" ~doc)

let policy_conv =
  let all =
    ("ic-optimal", None)
    (* bare alias for the seeded random baseline, whose canonical name
       carries the seed: random(0xf00d) *)
    :: ("random", Some (Policy.random 0xF00D))
    :: List.map (fun p -> (Policy.name p, Some p)) Policy.baselines
  in
  let parse s =
    match List.assoc_opt s all with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown policy %S (known: %s)" s
              (String.concat ", " (List.map fst all))))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "ic-optimal"
    | Some p -> Format.pp_print_string ppf (Policy.name p)
  in
  Arg.conv (parse, print)

(* --- self-profiling flags, shared by every heavy subcommand --- *)

type prof = {
  prof_on : bool;
  prof_out : string option;
  prof_flame : string option;
}

let prof_term =
  let on =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Record wall-clock/allocation spans over the library's hot paths \
             and print the span tree to stderr on exit")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:"Write the span tree as JSON to FILE (implies --profile)")
  in
  let flame =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame-out" ] ~docv:"FILE"
          ~doc:
            "Write collapsed stacks to FILE for flamegraph.pl or speedscope \
             (implies --profile)")
  in
  let build prof_on prof_out prof_flame =
    {
      prof_on = prof_on || prof_out <> None || prof_flame <> None;
      prof_out;
      prof_flame;
    }
  in
  Term.(const build $ on $ out $ flame)

let prof_write file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc

(* the report is flushed from at_exit so it also survives the exit 1 paths
   (a failed verification still gets its profile) *)
let with_prof p f =
  if p.prof_on then begin
    Ic_prof.Span.enable ();
    at_exit (fun () ->
        Ic_prof.Span.disable ();
        let infos = Ic_prof.Span.capture () in
        prerr_string (Ic_prof.Report.to_text infos);
        Option.iter
          (fun file -> prof_write file (Ic_prof.Report.to_json infos))
          p.prof_out;
        Option.iter
          (fun file -> prof_write file (Ic_prof.Report.to_collapsed infos))
          p.prof_flame)
  end;
  f ()

(* --- info --- *)

let info_cmd =
  let run (f : Ic_cli.Family_spec.t) =
    let g = f.dag in
    Format.printf "%s@." f.description;
    Format.printf "nodes        %d@." (Dag.n_nodes g);
    Format.printf "arcs         %d@." (Dag.n_arcs g);
    Format.printf "sources      %d@." (List.length (Dag.sources g));
    Format.printf "sinks        %d@." (List.length (Dag.sinks g));
    Format.printf "longest path %d@." (Dag.longest_path g);
    Format.printf "connected    %b@." (Dag.is_connected g)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Show a dag family's vital statistics")
    Term.(const run $ family_pos)

(* --- dot --- *)

let dot_cmd =
  let run (f : Ic_cli.Family_spec.t) = print_string (Dag.to_dot f.dag) in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the dag in GraphViz format")
    Term.(const run $ family_pos)

(* --- schedule --- *)

let schedule_cmd =
  let run (f : Ic_cli.Family_spec.t) prof =
    with_prof prof @@ fun () ->
    Format.printf "%s@." f.description;
    Format.printf "schedule: %a@." (Schedule.pp f.dag) f.schedule;
    Format.printf "eligibility profile: %a@." Profile.pp (Profile.run f.dag f.schedule)
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Print the family's constructive IC-optimal schedule and its profile")
    Term.(const run $ family_pos $ prof_term)

(* --- verify --- *)

let verify_cmd =
  let max_ideals =
    Arg.(value & opt int 2_000_000 & info [ "max-ideals" ] ~doc:"Ideal-enumeration budget")
  in
  let run (f : Ic_cli.Family_spec.t) max_ideals prof =
    with_prof prof @@ fun () ->
    match Optimal.analyze ~max_ideals f.dag with
    | Error (`Too_large k) ->
      Format.printf
        "dag too large for exhaustive verification (%d); falling back to \
         dominance over 200 random schedules@."
        k;
      let rng = Random.State.make [| 0xC0FFEE |] in
      let p = Profile.run f.dag f.schedule in
      let dominated = ref 0 in
      for _ = 1 to 200 do
        if Profile.dominates p (Profile.run f.dag (Ic_dag.Gen.random_schedule rng f.dag))
        then incr dominated
      done;
      Format.printf "dominates %d / 200 sampled schedules@." !dominated;
      if !dominated < 200 then exit 1
    | Ok a ->
      let optimal = Profile.run f.dag f.schedule = a.Optimal.e_opt in
      Format.printf "ideals enumerated: %d@." a.Optimal.n_ideals;
      Format.printf "dag admits an IC-optimal schedule: %b@." a.Optimal.admits;
      Format.printf "constructive schedule is IC-optimal: %b@." optimal;
      if not optimal then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check the constructive schedule against the brute-force optimum")
    Term.(const run $ family_pos $ max_ideals $ prof_term)

(* --- simulate --- *)

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Number of remote clients")

let jitter_arg =
  Arg.(value & opt float 0.25 & info [ "jitter" ] ~doc:"Execution-time noise amplitude")

let seed_arg = Arg.(value & opt int 0x5EED & info [ "seed" ] ~doc:"Simulation seed")

(* --- fault-injection and recovery flags (simulate and trace) --- *)

let or_die build =
  try build () with
  | Invalid_argument msg ->
    Format.eprintf "%s@." msg;
    exit 1

let plan_term =
  let crash =
    Arg.(
      value & opt float 0.0
      & info [ "crash" ] ~docv:"RATE"
          ~doc:
            "Permanent client-crash rate (exponential arrival, per unit of \
             simulated time)")
  in
  let disconnect =
    Arg.(
      value & opt float 0.0
      & info [ "disconnect" ] ~docv:"RATE"
          ~doc:"Transient-disconnect rate per client (clients rejoin later)")
  in
  let downtime =
    Arg.(
      value & opt float 1.0
      & info [ "downtime" ] ~docv:"MEAN" ~doc:"Mean offline-episode length")
  in
  let straggle =
    Arg.(
      value & opt float 0.0
      & info [ "straggle" ] ~docv:"PROB"
          ~doc:"Per-attempt straggler (slowdown episode) probability")
  in
  let straggle_factor =
    Arg.(
      value & opt float 4.0
      & info [ "straggle-factor" ] ~docv:"F"
          ~doc:"Straggler slowdown multiplier")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"PROB"
          ~doc:
            "Probability a result is silently lost in transit (recovered \
             only by --timeout)")
  in
  let fail =
    Arg.(
      value & opt float 0.0
      & info [ "fail" ] ~docv:"PROB"
          ~doc:
            "Probability of a reported end-of-task failure (the legacy coin \
             flip)")
  in
  let fault_seed =
    Arg.(
      value & opt int 0xFA17
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Fault-injection seed")
  in
  let build crash_rate disconnect_rate mean_downtime straggler_probability
      straggler_factor loss_probability fail_probability seed =
    or_die (fun () ->
        Ic_fault.Plan.make ~crash_rate ~disconnect_rate ~mean_downtime
          ~straggler_probability ~straggler_factor ~loss_probability
          ~fail_probability ~seed ())
  in
  Term.(
    const build $ crash $ disconnect $ downtime $ straggle $ straggle_factor
    $ loss $ fail $ fault_seed)

let recovery_term =
  let timeout =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"FACTOR"
          ~doc:
            "Enable liveness timeouts: presume an attempt lost once it has \
             been out for FACTOR x its expected duration (plus --latency)")
  in
  let latency =
    Arg.(
      value & opt float 0.0
      & info [ "latency" ] ~docv:"T" ~doc:"Timeout detection latency")
  in
  let retries =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Per-task retry budget (default unbounded); exhausting it aborts \
             the run with a partial result")
  in
  let backoff =
    Arg.(
      value & opt float 0.0
      & info [ "backoff" ] ~docv:"BASE"
          ~doc:
            "Retry backoff base delay (doubles per retry, with seeded \
             jitter)")
  in
  let backoff_max =
    Arg.(
      value & opt (some float) None
      & info [ "backoff-max" ] ~docv:"T" ~doc:"Cap on the retry backoff delay")
  in
  let speculate =
    Arg.(
      value & opt ~vopt:(Some 2.0) (some float) None
      & info [ "speculate" ] ~docv:"FACTOR"
          ~doc:
            "Enable speculative replicas once an attempt exceeds FACTOR x \
             its expected duration (FACTOR defaults to 2.0)")
  in
  let replicas =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N"
          ~doc:"Max simultaneously live attempts per task")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"T"
          ~doc:
            "Abort with a partial result when the simulated clock passes T")
  in
  let build timeout_factor detection_latency max_retries backoff_base
      backoff_max speculation_factor max_replicas deadline =
    or_die (fun () ->
        Ic_fault.Recovery.make ?timeout_factor ~detection_latency ?max_retries
          ~backoff_base ~backoff_jitter:0.5 ?backoff_max ?speculation_factor
          ~max_replicas ?deadline ())
  in
  Term.(
    const build $ timeout $ latency $ retries $ backoff $ backoff_max
    $ speculate $ replicas $ deadline)

let simulate_cmd =
  let policy_arg =
    Arg.(
      value
      & opt policy_conv None
      & info [ "policy" ] ~doc:"Allocation policy (default: ic-optimal)")
  in
  let run (f : Ic_cli.Family_spec.t) clients jitter seed policy faults recovery
      prof =
    with_prof prof @@ fun () ->
    let policy =
      match policy with
      | Some p -> p
      | None -> Policy.of_schedule "ic-optimal" f.schedule
    in
    let config =
      Ic_sim.Simulator.config ~n_clients:clients ~jitter ~seed ~faults
        ~recovery ()
    in
    let r = Ic_sim.Simulator.run config policy ~workload:Ic_sim.Workload.unit f.dag in
    Format.printf "%s under %s with %d clients:@.%a@." f.description
      (Policy.name policy) clients Ic_sim.Simulator.pp_result r
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the Internet-computing simulator on a family")
    Term.(
      const run $ family_pos $ clients_arg $ jitter_arg $ seed_arg $ policy_arg
      $ plan_term $ recovery_term $ prof_term)

(* --- compare --- *)

let compare_cmd =
  let run (f : Ic_cli.Family_spec.t) clients jitter seed prof =
    with_prof prof @@ fun () ->
    let config = Ic_sim.Simulator.config ~n_clients:clients ~jitter ~seed () in
    Format.printf "%s, %d clients:@." f.description clients;
    Ic_sim.Assessment.pp_rows Format.std_formatter
      (Ic_sim.Assessment.compare_policies ~config f.dag ~theory:f.schedule)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare the IC-optimal policy against every baseline heuristic")
    Term.(const run $ family_pos $ clients_arg $ jitter_arg $ seed_arg
      $ prof_term)

(* --- trace --- *)

let trace_cmd =
  let family_arg =
    let doc =
      "Dag family name (combined with --n, e.g. --family mesh --n 256) or a \
       full FAMILY spec such as mesh:256."
    in
    Arg.(required & opt (some string) None & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let n_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Size parameter appended to --family as FAMILY:N")
  in
  let out_arg =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Chrome trace-event output file (load it in Perfetto)")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the eligibility timeline as CSV")
  in
  let metrics_arg =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print the metrics registry after the run")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the metrics registry as JSON to FILE")
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv None
      & info [ "policy" ] ~doc:"Allocation policy (default: ic-optimal)")
  in
  let write_file file contents =
    let oc = open_out file in
    output_string oc contents;
    close_out oc
  in
  let run family n clients jitter seed policy out csv metrics metrics_out
      faults recovery prof =
    with_prof prof @@ fun () ->
    let spec =
      match n with Some n -> Printf.sprintf "%s:%d" family n | None -> family
    in
    match Ic_cli.Family_spec.parse spec with
    | Error e ->
      Format.eprintf "%s@." e;
      exit 1
    | Ok f ->
      let policy =
        match policy with
        | Some p -> p
        | None -> Policy.of_schedule "ic-optimal" f.schedule
      in
      let config =
        Ic_sim.Simulator.config ~n_clients:clients ~jitter ~seed ~faults
          ~recovery ()
      in
      let trace = Ic_obs.Trace.create () in
      let registry = Ic_obs.Metrics.create () in
      let r =
        Ic_sim.Simulator.run ~sink:trace ~metrics:registry config policy
          ~workload:Ic_sim.Workload.unit f.dag
      in
      write_file out
        (Ic_obs.Exporter.chrome_trace
           ~process_name:(Printf.sprintf "ic_sched: %s under %s" f.description
                            (Policy.name policy))
           ~label:(Dag.label f.dag) trace);
      Option.iter
        (fun file -> write_file file (Ic_obs.Exporter.eligibility_csv trace))
        csv;
      Format.printf "%s under %s with %d clients:@.%a@." f.description
        (Policy.name policy) clients Ic_sim.Simulator.pp_result r;
      Format.printf "%d events -> %s (chrome://tracing or ui.perfetto.dev)@."
        (Ic_obs.Trace.length trace) out;
      Option.iter (Format.printf "eligibility timeline -> %s@.") csv;
      Option.iter
        (fun file ->
          write_file file (Ic_obs.Metrics.to_json registry);
          Format.printf "metrics -> %s@." file)
        metrics_out;
      if metrics then Ic_obs.Metrics.pp_text Format.std_formatter registry
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced simulation and export it as Chrome trace-event JSON \
          (one track per client plus an |ELIGIBLE| counter track)")
    Term.(
      const run $ family_arg $ n_arg $ clients_arg $ jitter_arg $ seed_arg
      $ policy_arg $ out_arg $ csv_arg $ metrics_arg $ metrics_out_arg
      $ plan_term $ recovery_term $ prof_term)

(* --- batch --- *)

let batch_cmd =
  let size_arg =
    Arg.(value & opt int 2 & info [ "size"; "p" ] ~doc:"Batch size")
  in
  let exact_arg =
    Arg.(value & flag & info [ "exact" ] ~doc:"Use the exact (exponential) DP")
  in
  let run (f : Ic_cli.Family_spec.t) size exact prof =
    with_prof prof @@ fun () ->
    let module B = Ic_batch.Batched in
    let t =
      if exact then
        match B.optimal f.dag ~batch_size:size with
        | Ok t -> t
        | Error (`Too_large k) ->
          Format.eprintf "dag too large for the exact DP (%d states)@." k;
          exit 1
      else B.greedy f.dag ~batch_size:size
    in
    Format.printf "%s, %s %d-batched schedule:@." f.description
      (if exact then "lex-optimal" else "greedy") size;
    List.iteri
      (fun j batch ->
        Format.printf "  batch %2d: %s@." (j + 1)
          (String.concat " " (List.map (Dag.label f.dag) batch)))
      t.B.batches;
    Format.printf "profile after each batch: %a@." Profile.pp (B.profile f.dag t)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Produce a batched schedule (the [20]-style regimen; see Ic_batch)")
    Term.(const run $ family_pos $ size_arg $ exact_arg $ prof_term)

(* --- auto --- *)

let auto_cmd =
  let run (f : Ic_cli.Family_spec.t) =
    match Ic_core.Auto.schedule f.dag with
    | Error msg ->
      Format.eprintf "cannot auto-schedule: %s@." msg;
      exit 1
    | Ok p ->
      Format.printf "%s: decomposed into %d building blocks:@." f.description
        (List.length p.Ic_core.Auto.blocks);
      List.iter
        (fun b ->
          Format.printf "  level %d: %s@." b.Ic_core.Auto.level b.Ic_core.Auto.name)
        p.Ic_core.Auto.blocks;
      Format.printf "certificate: %s@."
        (match p.Ic_core.Auto.certificate with
        | `Linear -> "|>-linear (IC-optimal by Theorem 2.1)"
        | `Unverified -> "phase schedule only (|> failed at some step)");
      Format.printf "schedule: %a@."
        (Schedule.pp f.dag) p.Ic_core.Auto.schedule
  in
  Cmd.v
    (Cmd.info "auto"
       ~doc:
         "Decompose a levelled dag into building blocks and derive its \
          IC-optimal schedule automatically (the [21] algorithm)")
    Term.(const run $ family_pos)

(* --- snapshot --- *)

let snapshot_cmd =
  let family_opt =
    let doc =
      "Dag family to snapshot (see the info subcommand for known families). \
       Mutually exclusive with --load."
    in
    Arg.(value & pos 0 (some family_conv) None & info [] ~docv:"FAMILY" ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the snapshot to FILE")
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Memory-map a snapshot written earlier and show its statistics")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Profile-replay the dag (after saving, replay from the freshly \
             mapped snapshot; with --load, replay the loaded dag) and print \
             its eligibility summary")
  in
  let file_bytes path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  let replay g =
    let order = Dag.topological_order g in
    let profile = Ic_dag.Frontier.profile g ~order in
    let n = Array.length profile - 1 in
    let widest = Array.fold_left max 0 profile in
    Format.printf "replay: %d steps, peak eligibility %d, drains to %d@." n
      widest profile.(n)
  in
  let describe what g =
    Format.printf "%s: %d nodes, %d arcs, %d sources@." what (Dag.n_nodes g)
      (Dag.n_arcs g) (Dag.n_sources g)
  in
  let run family out load do_replay prof =
    with_prof prof @@ fun () ->
    match (family, load) with
    | Some _, Some _ ->
      Format.eprintf "snapshot: give either FAMILY or --load, not both@.";
      exit 1
    | None, None ->
      Format.eprintf
        "snapshot: nothing to do — give FAMILY -o FILE to save, or --load \
         FILE to inspect@.";
      exit 1
    | None, Some path -> (
      (* a missing, truncated or corrupt file must be a one-line diagnostic
         naming the path and exit 2 — never a raw exception or a message
         that leaves the operator guessing which file was bad *)
      match (try Dag.load path with e -> Error (Printexc.to_string e)) with
      | Error e ->
        let named =
          let lp = String.length path in
          if String.length e >= lp && String.sub e 0 lp = path then e
          else path ^ ": " ^ e
        in
        Format.eprintf "snapshot: %s@." named;
        exit 2
      | Ok g ->
        describe path g;
        if do_replay then replay g)
    | Some (f : Ic_cli.Family_spec.t), None -> (
      match out with
      | None ->
        Format.eprintf "snapshot: -o FILE is required to save a family@.";
        exit 1
      | Some path -> (
        match Dag.save f.dag path with
        | Error e ->
          Format.eprintf "snapshot: %s@." e;
          exit 1
        | Ok () ->
          describe f.description f.dag;
          Format.printf "saved -> %s (%d bytes)@." path (file_bytes path);
          if do_replay then (
            (* replay from the file, proving the snapshot stands alone *)
            match Dag.load path with
            | Error e ->
              Format.eprintf "snapshot: reload failed: %s@." e;
              exit 1
            | Ok g -> replay g)))
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Save a dag family as a binary snapshot, or memory-map one back \
          (O(1) reload) and optionally profile-replay it")
    Term.(
      const run $ family_opt $ out_arg $ load_arg $ replay_arg $ prof_term)

(* --- run: the OCaml 5 parallel runtime --- *)

let run_cmd =
  let payload_arg =
    let doc =
      "Payload family: wavefront (edit distance on a SIZE x SIZE grid), fft \
       (the 2^SIZE-point FFT on B_SIZE), matmul (the 20-node dag M over \
       2^SIZE blocks), or quadrature (midpoint rule through the depth-SIZE \
       in-tree)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PAYLOAD" ~doc)
  in
  let size_arg =
    Arg.(value & opt int 20 & info [ "size" ] ~docv:"SIZE" ~doc:"Payload size knob")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains (default: IC_PAR_DOMAINS or the recommended \
             count)")
  in
  let order_arg =
    Arg.(
      value
      & opt (enum [ ("steal", "steal"); ("ic", "ic") ]) "steal"
      & info [ "order" ] ~docv:"ORDER"
          ~doc:
            "Ready-task ordering: steal (plain Chase-Lev work stealing) or \
             ic (sharded priority pool over the IC-optimal order)")
  in
  let spin_arg =
    Arg.(
      value & opt float 0.0
      & info [ "spin-us" ] ~docv:"US"
          ~doc:"Calibrated busy-work added to every task, in microseconds")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file with one track per domain \
             (load it in Perfetto)")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the run's metrics registry (steal counters etc.) as JSON")
  in
  let no_check_arg =
    Arg.(
      value & flag
      & info [ "no-check" ]
          ~doc:
            "Skip the sequential baseline run and the parallel-vs-sequential \
             result comparison")
  in
  let run payload size domains order spin_us trace_out metrics_out no_check =
    match
      Par_support.run ~family:payload ~size ~spin_us ~domains ~order
        ?trace_out ?metrics_out ~check:(not no_check) ()
    with
    | Error e ->
      Format.eprintf "run: %s@." e;
      exit 1
    | Ok o ->
      Format.printf "%s: %d tasks on %d domains, order %s@." o.Par_support.payload
        o.tasks o.domains o.order;
      Format.printf "wall %.4fs" o.wall_s;
      if not (Float.is_nan o.seq_wall_s) then
        Format.printf " (sequential %.4fs, speedup %.2fx)" o.seq_wall_s
          (o.seq_wall_s /. o.wall_s);
      Format.printf "@.";
      Format.printf "steals %d/%d attempts, overflows %d, parks %d@." o.steals
        o.steal_attempts o.overflows o.parks;
      Option.iter (Format.printf "trace -> %s@.") trace_out;
      Option.iter (Format.printf "metrics -> %s@.") metrics_out;
      if not no_check then begin
        Format.printf "results match sequential engine: %b@." o.ok;
        if not o.ok then exit 1
      end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a real payload on the OCaml 5 domains-based parallel \
          runtime (work-stealing deques over the dag's frontier)")
    Term.(
      const run $ payload_arg $ size_arg $ domains_arg $ order_arg $ spin_arg
      $ trace_arg $ metrics_out_arg $ no_check_arg)

(* --- serve / hammer: the lease-serving subsystem over loopback TCP --- *)

let port_arg =
  Arg.(
    value & opt int 0
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port on 127.0.0.1 (serve: 0 picks a free one)")

let serve_cmd =
  let family_opt =
    let doc =
      "Dag family to serve (see the info subcommand for known families). \
       Mutually exclusive with --load."
    in
    Arg.(value & pos 0 (some family_conv) None & info [] ~docv:"FAMILY" ~doc)
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Serve a memory-mapped snapshot written by the snapshot command")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Frontier shards (disjoint lease pools, one lock each)")
  in
  let max_lease_arg =
    Arg.(
      value & opt int 64
      & info [ "max-lease" ] ~docv:"K" ~doc:"Cap on tasks handed per lease")
  in
  let expected_arg =
    Arg.(
      value & opt float 1.0
      & info [ "expected-s" ] ~docv:"S"
          ~doc:
            "Expected task service time in seconds; leases expire and \
             re-issue after 4x this")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Exit once at least one client has connected and every \
             connection has closed (for scripted runs)")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal: append every completion and lease grant \
             before acknowledging it, so a killed server can be restarted \
             with --recover")
  in
  let checkpoint_arg =
    Arg.(
      value & opt int 1024
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Compact the journal to a checkpoint after every N journaled \
             completions")
  in
  let fsync_arg =
    Arg.(
      value & flag
      & info [ "fsync" ]
          ~doc:
            "fsync the journal after every record (machine-crash durable; \
             default flushes per record, which survives kill -9)")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Rebuild server state by replaying --journal before serving: \
             journaled completions are never re-leased, \
             leased-but-unjournaled tasks re-issue")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the served.* metrics registry as JSON on exit")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file with one track per shard (load \
             it in Perfetto)")
  in
  let telemetry_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "telemetry-port" ] ~docv:"PORT"
          ~doc:
            "Serve live served.* metrics and process gauges in OpenMetrics \
             text format from a second loopback listener (0 picks a free \
             port; scrape it with curl, Prometheus or ic_sched top)")
  in
  let telemetry_csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-csv" ] ~docv:"FILE"
          ~doc:
            "Append a counters snapshot row to FILE on the telemetry \
             cadence while serving")
  in
  let telemetry_every_arg =
    Arg.(
      value & opt float 1.0
      & info [ "telemetry-every-s" ] ~docv:"S"
          ~doc:"Seconds between telemetry CSV snapshot rows (default 1.0)")
  in
  let flight_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Record recent lease/completion/expiry events into a fixed-size \
             mmap'd flight-recorder ring that survives kill -9 (inspect it \
             with ic_sched blackbox; --recover continues an existing ring)")
  in
  let run family load port shards max_lease expected_s once journal
      checkpoint_every fsync recover telemetry_port telemetry_csv
      telemetry_every_s flight metrics_out trace_out prof =
    with_prof prof @@ fun () ->
    let dag =
      match (family, load) with
      | Some _, Some _ ->
        Format.eprintf "serve: give either FAMILY or --load, not both@.";
        exit 1
      | None, None ->
        Format.eprintf "serve: give a FAMILY or --load FILE@.";
        exit 1
      | Some (f : Ic_cli.Family_spec.t), None -> f.dag
      | None, Some path -> (
        match
          (try Dag.load path with e -> Error (Printexc.to_string e))
        with
        | Ok g -> g
        | Error e ->
          let named =
            let lp = String.length path in
            if String.length e >= lp && String.sub e 0 lp = path then e
            else path ^ ": " ^ e
          in
          Format.eprintf "serve: %s@." named;
          exit 2)
    in
    match
      Served_support.serve ~dag ~port ~shards ~max_lease ~expected_s ~once
        ~journal ~checkpoint_every ~fsync ~recover ~telemetry_port
        ~telemetry_csv ~telemetry_every_s ~flight ?metrics_out ?trace_out ()
    with
    | Error e ->
      Format.eprintf "serve: %s@." e;
      exit 1
    | Ok o ->
      if recover then
        Format.printf "recovered %d completions from journal, %d re-issues@."
          o.Served_support.recovered_tasks o.recovered_reissues;
      Format.printf
        "served %d/%d tasks: %d leases (%d tasks), %d reissues, %d \
         duplicates, %d retry-afters, %d protocol errors@."
        o.Served_support.completions o.n_tasks o.leases o.leased_tasks
        o.reissues o.duplicates o.retry_afters o.protocol_errors;
      Option.iter (Format.printf "trace -> %s@.") trace_out;
      Option.iter (Format.printf "metrics -> %s@.") metrics_out;
      Option.iter (Format.printf "telemetry csv -> %s@.") telemetry_csv;
      Option.iter (Format.printf "flight ring -> %s@.") flight;
      if o.completions <> o.n_tasks || o.inflight <> 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Lease a dag's eligible tasks to remote workers over loopback TCP \
          (length-prefixed binary frames, sharded frontier, lease expiry \
          and re-issue; optional write-ahead journal, crash recovery, \
          OpenMetrics telemetry endpoint and flight recorder)")
    Term.(
      const run $ family_opt $ load_arg $ port_arg $ shards_arg
      $ max_lease_arg $ expected_arg $ once_arg $ journal_arg
      $ checkpoint_arg $ fsync_arg $ recover_arg $ telemetry_port_arg
      $ telemetry_csv_arg $ telemetry_every_arg $ flight_arg $ metrics_out_arg
      $ trace_out_arg $ prof_term)

let hammer_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server address")
  in
  let workers_arg =
    Arg.(
      value & opt int 1024
      & info [ "workers" ] ~docv:"N" ~doc:"Simulated workers to drive")
  in
  let connections_arg =
    Arg.(
      value & opt int 4
      & info [ "connections" ] ~docv:"N"
          ~doc:"Real TCP connections the workers are multiplexed over")
  in
  let k_arg =
    Arg.(
      value & opt int 8
      & info [ "k" ] ~docv:"K" ~doc:"Tasks requested per lease")
  in
  let churn_arg =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:
            "Subject the fleet to a seeded crash/disconnect/rejoin plan \
             (exercises lease expiry and re-issue)")
  in
  let seed_arg =
    Arg.(
      value & opt int 0x5E4D
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Seed for service latencies and the churn plan")
  in
  let service_arg =
    Arg.(
      value & opt float 0.01
      & info [ "mean-service-s" ] ~docv:"S"
          ~doc:"Mean simulated task service time (bounded Pareto)")
  in
  let think_arg =
    Arg.(
      value & opt float 0.001
      & info [ "think-s" ] ~docv:"S"
          ~doc:"Pause between finishing a batch and requesting the next")
  in
  let chaos_arg =
    Arg.(
      value & opt float 0.0
      & info [ "chaos" ] ~docv:"RATE"
          ~doc:
            "Mangle outgoing frames at this rate (drop and bit-flip at RATE, \
             truncate at RATE/2) from a deterministic seeded stream; the \
             client heals by reply timeout and reconnect")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 0xC4A0
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed for the wire-chaos decision stream")
  in
  let utilization_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "utilization-out" ] ~docv:"FILE"
          ~doc:
            "Write a per-worker busy-time CSV (worker,busy_s,utilization) on \
             exit")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the client-side hammer.* metrics registry as JSON on exit \
             (written even when the run ends by reconnect/reply timeout)")
  in
  let run host port workers connections k churn seed mean_service_s think_s
      chaos chaos_seed utilization_out metrics_out =
    match
      Served_support.hammer ~host ~port ~workers ~connections ~k ~churn ~seed
        ~mean_service_s ~think_s ~chaos ~chaos_seed ~utilization_out
        ?metrics_out ()
    with
    | Error e ->
      Format.eprintf "hammer: %s@." e;
      exit 1
    | Ok r ->
      Format.printf
        "%d workers over %d connections: %d completes, %d crashed, %d \
         disconnects, %d reconnects, dag done %b, wall %.3fs@."
        r.Served_support.h_workers connections r.completes_sent r.crashed
        r.disconnects r.reconnects r.done_seen r.h_wall_s;
      Format.printf "lease grant p50 %.6fs p99 %.6fs@." r.grant_p50_s
        r.grant_p99_s;
      Format.printf "task service p50 %.6fs p99 %.6fs@." r.service_p50_s
        r.service_p99_s;
      Option.iter (Format.printf "utilization -> %s@.") utilization_out;
      Option.iter (Format.printf "metrics -> %s@.") metrics_out;
      if not r.done_seen then exit 1
  in
  Cmd.v
    (Cmd.info "hammer"
       ~doc:
         "Load-test a running serve instance: simulated workers with \
          heavy-tailed service latencies and optional churn, multiplexed \
          over a few real connections")
    Term.(
      const run $ host_arg $ port_arg $ workers_arg $ connections_arg $ k_arg
      $ churn_arg $ seed_arg $ service_arg $ think_arg $ chaos_arg
      $ chaos_seed_arg $ utilization_arg $ metrics_out_arg)

(* --- blackbox: read a flight-recorder ring back --- *)

let blackbox_cmd =
  let ring_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RING"
          ~doc:"Flight-recorder ring file written by serve --flight")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the recovered event tail as Chrome trace-event JSON (load \
             it in Perfetto)")
  in
  let run ring out =
    match Ic_obs.Flight.load ring with
    | Error e ->
      Format.eprintf "blackbox: %s@." e;
      exit 2
    | Ok d ->
      let events = d.Ic_obs.Flight.events in
      let n = Array.length events in
      Format.printf "%s: %d of %d slots hold valid frames@." ring
        d.Ic_obs.Flight.d_valid d.Ic_obs.Flight.d_slots;
      if n > 0 then begin
        let first = events.(0) and last = events.(n - 1) in
        Format.printf "seq %d..%d, time %.6fs..%.6fs@."
          first.Ic_obs.Flight.seq last.Ic_obs.Flight.seq
          first.Ic_obs.Flight.time last.Ic_obs.Flight.time;
        (* per-kind histogram of the surviving tail, stable order *)
        let counts = Hashtbl.create 8 in
        Array.iter
          (fun (e : Ic_obs.Flight.event) ->
            let k = Ic_obs.Trace.kind_name e.kind in
            Hashtbl.replace counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          events;
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
        |> List.sort compare
        |> List.iter (fun (k, v) -> Format.printf "  %-16s %d@." k v)
      end;
      Option.iter
        (fun file ->
          let oc = open_out file in
          output_string oc
            (Ic_obs.Exporter.chrome_trace
               ~process_name:(Printf.sprintf "ic_sched blackbox: %s" ring)
               (Ic_obs.Flight.to_trace d));
          close_out oc;
          Format.printf "%d events -> %s (chrome://tracing or \
                         ui.perfetto.dev)@."
            n file)
        out
  in
  Cmd.v
    (Cmd.info "blackbox"
       ~doc:
         "Recover the event tail from a flight-recorder ring (CRC-framed, \
          mmap'd, survives kill -9) and summarize or export it to Perfetto")
    Term.(const run $ ring_pos $ out_arg)

(* --- top: a terminal dashboard over the telemetry endpoint --- *)

let top_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Telemetry endpoint address")
  in
  let tport_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Telemetry port printed by serve --telemetry-port")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"S" ~doc:"Seconds between refreshes")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after N refreshes (0 = run until interrupted)")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print a single plain sample and exit (for scripts)")
  in
  let scrape host port =
    let addr =
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (ip, port)
    in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd addr;
    let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
    ignore (Unix.write fd req 0 (Bytes.length req));
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec drain () =
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
      end
    in
    drain ();
    Buffer.contents buf
  in
  (* keep `name value` samples in exposition order; histogram bucket
     lines (the only labelled ones) are folded out *)
  let parse page =
    let body =
      (* skip the HTTP header block if one is present *)
      let sep = "\r\n\r\n" in
      let n = String.length page and sn = String.length sep in
      let rec find i =
        if i + sn > n then None
        else if String.sub page i sn = sep then Some (i + sn)
        else find (i + 1)
      in
      match find 0 with
      | Some i -> String.sub page i (n - i)
      | None -> page
    in
    String.split_on_char '\n' body
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' || String.contains line '{' then
             None
           else
             match String.index_opt line ' ' with
             | None -> None
             | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)) ))
  in
  let ends_with_total name =
    let n = String.length name in
    n >= 6 && String.sub name (n - 6) 6 = "_total"
  in
  let run host port interval iterations once =
    let iterations = if once then 1 else iterations in
    let prev = ref [] in
    let t_prev = ref 0.0 in
    let i = ref 0 in
    try
      while iterations = 0 || !i < iterations do
        if !i > 0 then Unix.sleepf interval;
        incr i;
        let t = Unix.gettimeofday () in
        let sample = parse (scrape host port) in
        if not once then print_string "\027[H\027[2J";
        Format.printf "ic_sched top — %s:%d — sample %d@." host port !i;
        List.iter
          (fun (name, v) ->
            let rate =
              if !i > 1 && ends_with_total name then
                match
                  (List.assoc_opt name !prev, float_of_string_opt v)
                with
                | Some pv, Some fv -> (
                  match float_of_string_opt pv with
                  | Some fpv when t > !t_prev ->
                    Some ((fv -. fpv) /. (t -. !t_prev))
                  | _ -> None)
                | _ -> None
              else None
            in
            match rate with
            | Some r -> Format.printf "  %-44s %16s %12.1f/s@." name v r
            | None -> Format.printf "  %-44s %16s@." name v)
          sample;
        flush stdout;
        prev := sample;
        t_prev := t
      done
    with Unix.Unix_error (e, fn, _) ->
      Format.eprintf "top: %s: %s@." fn (Unix.error_message e);
      exit 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a serve --telemetry-port endpoint and render the live \
          counters (with per-second rates) as a refreshing terminal \
          dashboard")
    Term.(
      const run $ host_arg $ tport_arg $ interval_arg $ iterations_arg
      $ once_arg)

(* --- prio --- *)

let prio_cmd =
  (* the PRIO-tool idea of the paper's reference [19]: turn the IC-optimal
     schedule into static per-task priorities for a Condor-DAGMan-style
     engine (higher priority = allocate earlier) *)
  let run (f : Ic_cli.Family_spec.t) =
    let n = Dag.n_nodes f.dag in
    let order = Schedule.order f.schedule in
    Array.iteri
      (fun rank v ->
        Format.printf "JOB %s PRIORITY %d@." (Dag.label f.dag v) (n - rank))
      order
  in
  Cmd.v
    (Cmd.info "prio"
       ~doc:
         "Export the IC-optimal schedule as static task priorities \
          (DAGMan-style, after the PRIO tool of [19])")
    Term.(const run $ family_pos)

let main =
  Cmd.group
    (Cmd.info "ic_sched" ~version:"1.0.0"
       ~doc:"IC-Scheduling Theory: dags, IC-optimal schedules, and simulation")
    [ info_cmd; dot_cmd; schedule_cmd; verify_cmd; simulate_cmd; compare_cmd;
      trace_cmd; batch_cmd; auto_cmd; prio_cmd; snapshot_cmd; run_cmd;
      serve_cmd; hammer_cmd; blackbox_cmd; top_cmd ]

(* cmdliner only knows single-char names as short options, but the trace
   subcommand documents the GNU-ish spelling --n for its size parameter,
   and hammer likewise --k for its batch size *)
let argv =
  Array.map
    (fun a -> match a with "--n" -> "-n" | "--k" -> "-k" | _ -> a)
    Sys.argv
let () = exit (Cmd.eval ~argv main)
