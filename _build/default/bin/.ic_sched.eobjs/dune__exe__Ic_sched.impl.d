bin/ic_sched.ml: Arg Array Cmd Cmdliner Format Ic_batch Ic_cli Ic_core Ic_dag Ic_heuristics Ic_sim List Printf Random Result String Term
