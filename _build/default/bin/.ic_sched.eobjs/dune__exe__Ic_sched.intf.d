bin/ic_sched.mli:
