bin/report.mli:
