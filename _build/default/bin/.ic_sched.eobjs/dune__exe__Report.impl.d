bin/report.ml: Array Complex Float Format Ic_batch Ic_blocks Ic_compute Ic_core Ic_dag Ic_families Ic_granularity Ic_heuristics Ic_sim List Printf Random Result String Sys
