(* Section 8, research direction 2: "rigorous notions of 'almost' optimal
   scheduling that apply to ALL dags (important since the strong demands of
   IC optimality preclude the IC-optimal scheduling of many dags)".

   This example shows a 7-task dag that provably admits NO IC-optimal
   schedule, then schedules it anyway with the batched/lexicographic
   machinery of Ic_batch (after the paper's reference [20]).

   Run with: dune exec examples/almost_optimal.exe *)

module Dag = Ic_dag.Dag
module Profile = Ic_dag.Profile
module Optimal = Ic_dag.Optimal
module B = Ic_batch.Batched

let () =
  let g =
    Dag.make_exn
      ~labels:[| "a"; "b"; "c"; "d"; "e"; "f"; "g" |]
      ~n:7
      ~arcs:[ (0, 2); (0, 4); (1, 2); (1, 4); (2, 6); (3, 5) ]
      ()
  in
  Format.printf "%a@." Dag.pp g;
  let a = Result.get_ok (Optimal.analyze g) in
  Format.printf "pointwise-best profile over all schedules: %a@." Profile.pp
    a.Optimal.e_opt;
  Format.printf "some single schedule attains it everywhere: %b@."
    a.Optimal.admits;
  Format.printf
    "@.Why: reaching E=3 at step 1 requires executing d (freeing f while \
     keeping a, b@.eligible), but then at step 2 no move keeps three tasks \
     eligible; conversely@.any prefix that stays optimal later must spend \
     step 1 differently. The exact@.verifier enumerates all %d ideals to \
     prove no pointwise winner exists.@."
    a.Optimal.n_ideals;

  (* the lexicographic (batched, p = 1) optimum always exists *)
  let t = Result.get_ok (B.optimal g ~batch_size:1) in
  Format.printf "@.lex-optimal schedule (batch size 1): %s@."
    (String.concat " "
       (List.map (fun batch -> Dag.label g (List.hd batch)) t.B.batches));
  Format.printf "its profile:  %a@." Profile.pp (B.profile g t);
  Format.printf "the ceiling:  %a  (unattainable at one step)@." Profile.pp
    a.Optimal.e_opt;

  (* batches of two: the server hands out pairs *)
  let t2 = Result.get_ok (B.optimal g ~batch_size:2) in
  Format.printf "@.lex-optimal batches of size 2:@.";
  List.iteri
    (fun j batch ->
      Format.printf "  batch %d: %s@." (j + 1)
        (String.concat ", " (List.map (Dag.label g) batch)))
    t2.B.batches;
  Format.printf "profile after each batch: %a@." Profile.pp (B.profile g t2)
