(* Section 5.2: convolutions through the butterfly network. Multiplies two
   polynomials with the FFT dag under its IC-optimal pairing schedule and
   compares against the naive O(n^2) convolution.

   Run with: dune exec examples/polynomial_product.exe *)

module Conv = Ic_compute.Convolution
module Bf = Ic_families.Butterfly_net

let pp_poly ppf coeffs =
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf " + ";
      if i = 0 then Format.fprintf ppf "%.3g" c
      else Format.fprintf ppf "%.3g x^%d" c i)
    coeffs

let () =
  let f = [| 1.0; 2.0; 0.0; 1.0 |] in
  let g = [| 3.0; 0.0; 1.0 |] in
  Format.printf "f(x) = %a@." pp_poly f;
  Format.printf "g(x) = %a@." pp_poly g;
  let product = Conv.poly_mul_fft f g in
  Format.printf "f*g  = %a@.@." pp_poly product;
  let reference = Conv.naive f g in
  let agree =
    Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) product reference
  in
  Format.printf "matches the naive convolution sum A_k = sum a_i b_(k-i): %b@.@."
    agree;

  (* the dependency structure really is the butterfly network B_d, and its
     IC-optimal schedules execute the two sources of each block back to
     back *)
  let d = 3 in
  let s = Bf.schedule d in
  Format.printf "FFT over 2^%d points runs on the butterfly dag B_%d (%d tasks)@." d d
    (Ic_dag.Dag.n_nodes (Bf.dag d));
  Format.printf "pairing schedule IC-optimal: %b, pairs consecutive: %b@."
    (Result.get_ok (Ic_dag.Optimal.is_ic_optimal (Bf.dag d) s))
    (Bf.pairs_consecutive d s);

  (* bigger stress: random polynomials of degree 255 *)
  let rng = Random.State.make [| 2024 |] in
  let coeffs n = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let a = coeffs 256 and b = coeffs 256 in
  let fast = Conv.poly_mul_fft a b in
  let slow = Conv.naive a b in
  let max_err =
    Array.fold_left max 0.0
      (Array.mapi (fun i x -> Float.abs (x -. slow.(i))) fast)
  in
  Format.printf
    "@.degree-255 product through three 512-point butterfly executions: max \
     coefficient error %.2e@."
    max_err
