(* Section 7: recursive matrix multiplication through the 20-task dag M,
   with the paper's boxed allocation order reproduced.

   Run with: dune exec examples/matrix_blocks.exe *)

module M = Ic_families.Matmul_dag
module Mat = Ic_compute.Matmul

let () =
  let g = M.dag () in
  Format.printf "the dag M = C4 ^ C4 ^ L ^ L ^ L ^ L (%d tasks):@.%a@."
    (Ic_dag.Dag.n_nodes g) Ic_dag.Dag.pp g;
  let s = M.schedule () in
  Format.printf "Theorem 2.1 schedule: %a@." (Ic_dag.Schedule.pp g) s;
  Format.printf "IC-optimal: %b@."
    (Result.get_ok (Ic_dag.Optimal.is_ic_optimal g s));
  Format.printf
    "products become ELIGIBLE in the paper's boxed order:@.  %s@."
    (String.concat ", " (M.product_eligibility_order ()));

  (* use it: multiply 64x64 matrices by quadrant recursion, every level
     driven through M *)
  let rng = Random.State.make [| 31337 |] in
  let a = Mat.random rng 64 and b = Mat.random rng 64 in
  let fast = Mat.multiply ~threshold:8 a b in
  let slow = Mat.naive a b in
  Format.printf
    "@.64x64 product via recursive M executions agrees with the naive \
     algorithm: %b@."
    (Mat.approx_equal fast slow)
