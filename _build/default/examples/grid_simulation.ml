(* The assessment experiment (E16): simulate an Internet-computing server
   allocating a wavefront computation to heterogeneous remote clients, and
   compare the IC-optimal allocation order against the classic heuristics
   ([15], [19] compare against Condor's FIFO the same way).

   Run with: dune exec examples/grid_simulation.exe *)

module Sim = Ic_sim.Simulator
module Assessment = Ic_sim.Assessment
module F = Ic_families

let heterogeneous i = [| 1.0; 0.5; 2.0; 0.25; 1.5; 0.75 |].(i mod 6)

let run_case name g theory ~n_clients =
  let config = Sim.config ~n_clients ~speed:heterogeneous ~jitter:0.5 () in
  Format.printf "@.=== %s (%d tasks, %d clients, heterogeneous speeds) ===@." name
    (Ic_dag.Dag.n_nodes g) n_clients;
  Assessment.pp_rows Format.std_formatter
    (Assessment.compare_policies ~config g ~theory
       ~workload:(Ic_sim.Workload.random_uniform ~seed:5 ~lo:0.5 ~hi:2.0))

let () =
  Format.printf
    "Columns: sim makespan / utilization / gridlock stalls, then the pure@.\
     eligibility comparison (wins = steps where the IC-optimal profile is@.\
     strictly higher; losses = the converse, always 0).@.";
  run_case "out-mesh L=20 wavefront" (F.Mesh.out_mesh 20) (F.Mesh.out_schedule 20)
    ~n_clients:6;
  run_case "butterfly B_6 (FFT shape)" (F.Butterfly_net.dag 6)
    (F.Butterfly_net.schedule 6) ~n_clients:12;
  run_case "parallel prefix P_32" (F.Prefix_dag.dag 32) (F.Prefix_dag.schedule 32)
    ~n_clients:8;
  let d = F.Diamond.complete ~arity:2 ~depth:7 in
  run_case "diamond depth 7 (divide and conquer)" (F.Diamond.dag d)
    (F.Diamond.schedule d) ~n_clients:8
