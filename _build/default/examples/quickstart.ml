(* Quickstart: build a dag, give it an IC-optimal schedule, check it.

   Run with: dune exec examples/quickstart.exe *)

module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Optimal = Ic_dag.Optimal

let () =
  (* 1. A hand-made computation-dag: a small fork-join. *)
  let g =
    Dag.make_exn
      ~labels:[| "load"; "left"; "right"; "join" |]
      ~n:4
      ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
      ()
  in
  Format.printf "A hand-made dag:@.%a@." Dag.pp g;

  (* 2. Schedules are validated execution orders; the engine scores them by
     the number of ELIGIBLE tasks after each step (more = better). *)
  let s = Schedule.of_order_exn g [ 0; 1; 2; 3 ] in
  Format.printf "profile of [load; left; right; join]: %a@." Profile.pp
    (Profile.run g s);

  (* 3. The brute-force verifier tells us this is IC-optimal. *)
  (match Optimal.analyze g with
  | Ok a ->
    Format.printf "pointwise-best profile:               %a@." Profile.pp
      a.Optimal.e_opt;
    Format.printf "our schedule is IC-optimal: %b@."
      (Profile.run g s = a.Optimal.e_opt)
  | Error (`Too_large _) -> assert false);

  (* 4. Real dags come from the family generators. The paper's machinery
     (composition + the priority relation |>) builds their IC-optimal
     schedules constructively - no search involved. *)
  let diamond = Ic_families.Diamond.complete ~arity:2 ~depth:3 in
  let dg = Ic_families.Diamond.dag diamond in
  let ds = Ic_families.Diamond.schedule diamond in
  Format.printf
    "@.A depth-3 diamond dag (%d tasks): out-tree phase then in-tree phase@."
    (Dag.n_nodes dg);
  Format.printf "profile: %a@." Profile.pp (Profile.run dg ds);
  Format.printf "IC-optimal: %b@."
    (Result.get_ok (Optimal.is_ic_optimal dg ds));

  (* 5. And schedules drive real computations through the engine. *)
  let r =
    Ic_compute.Quadrature.integrate ~f:sin ~lo:0.0 ~hi:Float.pi ~tol:1e-6 ()
  in
  Format.printf
    "@.integral of sin over [0, pi] computed through its own diamond dag: \
     %.6f (%d tasks)@."
    r.Ic_compute.Quadrature.value r.Ic_compute.Quadrature.n_tasks
