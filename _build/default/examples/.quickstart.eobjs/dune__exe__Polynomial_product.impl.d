examples/polynomial_product.ml: Array Float Format Ic_compute Ic_dag Ic_families Random Result
