examples/polynomial_product.mli:
