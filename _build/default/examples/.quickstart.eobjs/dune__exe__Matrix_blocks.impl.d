examples/matrix_blocks.ml: Format Ic_compute Ic_dag Ic_families Random Result String
