examples/adaptive_quadrature.mli:
