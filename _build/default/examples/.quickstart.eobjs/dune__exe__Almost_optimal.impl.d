examples/almost_optimal.ml: Format Ic_batch Ic_dag List Result String
