examples/quickstart.ml: Float Format Ic_compute Ic_dag Ic_families Result
