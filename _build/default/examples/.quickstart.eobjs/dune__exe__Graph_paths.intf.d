examples/graph_paths.mli:
