examples/adaptive_quadrature.ml: Array Float Format Ic_compute Ic_dag Ic_families Ic_heuristics
