examples/grid_simulation.ml: Array Format Ic_dag Ic_families Ic_sim
