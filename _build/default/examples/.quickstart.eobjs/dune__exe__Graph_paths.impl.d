examples/graph_paths.ml: Array Format Ic_compute Ic_dag Ic_families List Printf String
