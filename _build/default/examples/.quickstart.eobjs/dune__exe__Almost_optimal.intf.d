examples/almost_optimal.mli:
