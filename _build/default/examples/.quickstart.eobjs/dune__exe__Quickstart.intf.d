examples/quickstart.mli:
