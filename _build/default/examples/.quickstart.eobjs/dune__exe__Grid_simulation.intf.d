examples/grid_simulation.mli:
