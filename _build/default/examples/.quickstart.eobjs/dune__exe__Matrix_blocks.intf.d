examples/matrix_blocks.mli:
