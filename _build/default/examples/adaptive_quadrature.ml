(* Section 3.2: adaptive numerical integration as an expansion-reduction
   computation. The subdivision builds an irregular out-tree; its dual
   in-tree accumulates the areas; the resulting diamond dag is scheduled
   IC-optimally and the integral is computed through it.

   Run with: dune exec examples/adaptive_quadrature.exe *)

module Q = Ic_compute.Quadrature
module Profile = Ic_dag.Profile
module Policy = Ic_heuristics.Policy

let integrate_and_report name rule f lo hi tol exact =
  let r = Q.integrate ~rule ~f ~lo ~hi ~tol () in
  let g = Ic_families.Diamond.dag r.Q.diamond in
  Format.printf "%-28s value %.8f  (exact %.8f, error %.2e)  tasks %d@." name
    r.Q.value exact
    (Float.abs (r.Q.value -. exact))
    r.Q.n_tasks;
  (* how much better is the IC-optimal order at producing eligible work
     than LIFO (depth-first) on the same dag? *)
  let theory = Profile.run g r.Q.schedule in
  let lifo = Profile.run g (Policy.run Policy.lifo g) in
  let avg p =
    float_of_int (Array.fold_left ( + ) 0 p) /. float_of_int (Array.length p)
  in
  Format.printf "%-28s mean eligible: ic-optimal %.2f vs lifo %.2f@." "" (avg theory)
    (avg lifo)

let () =
  Format.printf "Adaptive quadrature through expansion-reduction dags@.@.";
  integrate_and_report "sin, trapezoid, tol 1e-6" Q.Trapezoid sin 0.0 Float.pi 1e-6 2.0;
  integrate_and_report "sin, Simpson, tol 1e-8" Q.Simpson sin 0.0 Float.pi 1e-8 2.0;
  integrate_and_report "sqrt (endpoint singularity)" Q.Trapezoid sqrt 0.0 1.0 1e-6
    (2.0 /. 3.0);
  integrate_and_report "exp on [0,1]" Q.Simpson exp 0.0 1.0 1e-10 (Float.exp 1.0 -. 1.0);
  let wiggly x = sin (10.0 *. x) /. (1.0 +. x) in
  (* reference value computed with very fine tolerance *)
  let exact = Q.reference ~rule:Q.Simpson ~max_depth:20 ~f:wiggly ~lo:0.0 ~hi:3.0 ~tol:1e-13 () in
  integrate_and_report "sin(10x)/(1+x) on [0,3]" Q.Simpson wiggly 0.0 3.0 1e-9 exact;
  Format.printf
    "@.The sqrt case shows the point of adaptivity: the subdivision tree is@.\
     deep near 0 and shallow elsewhere, yet the diamond dag still admits an@.\
     IC-optimal schedule (out-tree phase, then in-tree phase).@."
