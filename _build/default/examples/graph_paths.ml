(* Section 6.2.2, Fig. 16: computing the paths in a 9-node graph with an
   8-input parallel prefix over logical matrix multiplication feeding an
   accumulating in-tree.

   Run with: dune exec examples/graph_paths.exe *)

module BM = Ic_compute.Bool_matrix
module Paths = Ic_compute.Paths

let () =
  (* the same flavour of example as the paper: 9 nodes, path lengths 1..8 *)
  let edges =
    [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4); (4, 5); (5, 6); (6, 7); (7, 8); (8, 0) ]
  in
  let a = BM.of_edges 9 edges in
  Format.printf "graph arcs: %s@.@."
    (String.concat " " (List.map (fun (i, j) -> Printf.sprintf "%d->%d" i j) edges));
  let m = Paths.compute a ~k:8 in
  Format.printf
    "path-length vectors (rows: source; one bit per length 1..8):@.@.";
  Format.printf "      to:  ";
  for j = 0 to 8 do
    Format.printf "%-10d" j
  done;
  Format.printf "@.";
  for i = 0 to 8 do
    Format.printf "from %d:    " i;
    for j = 0 to 8 do
      let vec =
        String.init 8 (fun len -> if m.(i).(j).(len) then '1' else '0')
      in
      Format.printf "%-10s" vec
    done;
    Format.printf "@."
  done;
  Format.printf
    "@.e.g. the 0-1-2-3 cycle gives 0 ~> 0 walks of every length divisible \
     by 4;@.the long way round (0-1-4-5-6-7-8-0) closes in 7 steps.@.";
  Format.printf "@.consistent with direct repeated multiplication: %b@."
    (m = Paths.reference a ~k:8);
  let dag = Ic_families.Path_dag.dag 8 in
  Format.printf
    "the whole computation ran through the 39-task L_8-shaped dag under its \
     IC-optimal schedule@.(dag has %d tasks; schedule verified IC-optimal in \
     the test suite).@."
    (Ic_dag.Dag.n_nodes dag)
