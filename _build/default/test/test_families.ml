module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Optimal = Ic_dag.Optimal
module F = Ic_families

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let assert_optimal name g s =
  match Optimal.is_ic_optimal g s with
  | Ok true -> ()
  | Ok false -> Alcotest.failf "%s: schedule not IC-optimal" name
  | Error (`Too_large k) -> Alcotest.failf "%s: too large for brute force (%d)" name k

(* --- out-trees / in-trees (Section 3.1) --- *)

let test_out_tree_structure () =
  let g = F.Out_tree.dag ~arity:2 ~depth:3 in
  check_int "15 nodes" 15 (Dag.n_nodes g);
  check "recognized" true (F.Out_tree.is_out_tree g);
  check "counts" true
    (F.Out_tree.n_nodes (F.Out_tree.complete ~arity:2 ~depth:3) = 15
    && F.Out_tree.n_leaves (F.Out_tree.complete ~arity:2 ~depth:3) = 8);
  check "mesh is not an out-tree" false (F.Out_tree.is_out_tree (F.Mesh.out_mesh 2))

let test_out_tree_all_schedules_optimal () =
  (* "easily, every schedule for an out-tree is IC optimal!" *)
  let g = F.Out_tree.dag ~arity:2 ~depth:3 in
  check "bfs/dfs/random share one profile" true (F.Out_tree.schedules_all_optimal g);
  assert_optimal "bfs schedule" g (F.Out_tree.schedule g);
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 5 do
    assert_optimal "random schedule" g (Ic_dag.Gen.random_nonsinks_first_schedule rng g)
  done

let test_irregular_out_tree () =
  let rng = Random.State.make [| 11 |] in
  let shape = F.Out_tree.random rng ~max_internal:8 ~arity:2 in
  let g = F.Out_tree.dag_of_shape shape in
  check "random shape is an out-tree" true (F.Out_tree.is_out_tree g);
  check_int "internal count honoured" 17 (Dag.n_nodes g);
  assert_optimal "irregular out-tree" g (F.Out_tree.schedule g)

let test_in_tree_characterization () =
  (* [23]: IC-optimal iff the two sources of each Lambda run consecutively *)
  let g = F.In_tree.dag ~arity:2 ~depth:3 in
  let s = F.In_tree.schedule g in
  check "our schedule pairs" true (F.In_tree.lambda_runs_consecutive g s);
  assert_optimal "in-tree schedule" g s;
  (* a perturbed schedule that splits one pair fails both *)
  let order = Array.copy (Schedule.order s) in
  let tmp = order.(1) in
  order.(1) <- order.(2);
  order.(2) <- tmp;
  match Schedule.of_order g (Array.to_list order) with
  | Error _ -> () (* swap broke validity: fine, nothing to check *)
  | Ok bad ->
    check "split pair detected" false (F.In_tree.lambda_runs_consecutive g bad);
    check "split pair not optimal" false
      (Result.get_ok (Optimal.is_ic_optimal g bad))

let test_ternary_in_tree () =
  let g = F.In_tree.dag ~arity:3 ~depth:2 in
  check "is in-tree" true (F.In_tree.is_in_tree g);
  assert_optimal "ternary in-tree" g (F.In_tree.schedule g)

(* --- diamonds (Fig. 2) --- *)

let test_diamond_complete () =
  let d = F.Diamond.complete ~arity:2 ~depth:3 in
  let g = F.Diamond.dag d in
  check_int "15 + 15 - 8 merged nodes" 22 (Dag.n_nodes g);
  check_int "single source" 1 (List.length (Dag.sources g));
  check_int "single sink" 1 (List.length (Dag.sinks g));
  assert_optimal "diamond schedule" g (F.Diamond.schedule d)

let test_diamond_irregular () =
  let rng = Random.State.make [| 21 |] in
  let shape = F.Out_tree.random rng ~max_internal:6 ~arity:2 in
  let d = F.Diamond.symmetric shape in
  assert_optimal "irregular diamond" (F.Diamond.dag d) (F.Diamond.schedule d)

let test_diamond_mismatch () =
  match F.Diamond.make (F.Out_tree.dag ~arity:2 ~depth:2) (F.In_tree.dag ~arity:2 ~depth:3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected leaf-count mismatch"

(* --- alternating compositions, Fig. 4 / Table 1 --- *)

let small = F.Out_tree.complete ~arity:2 ~depth:1
let mid = F.Out_tree.complete ~arity:2 ~depth:2

let test_table1_type1 () =
  let c = F.Alternating.build_exn (F.Alternating.diamond_chain [ small; mid ]) in
  assert_optimal "D0 ^ D1" (Ic_core.Compose.dag (fst c)) (F.Alternating.schedule c)

let test_table1_type2 () =
  let c = F.Alternating.build_exn (F.Alternating.in_prefixed small [ mid ]) in
  assert_optimal "Tin ^ D1" (Ic_core.Compose.dag (fst c)) (F.Alternating.schedule c)

let test_table1_type3 () =
  let c = F.Alternating.build_exn (F.Alternating.out_suffixed [ small ] mid) in
  assert_optimal "D1 ^ Tout" (Ic_core.Compose.dag (fst c)) (F.Alternating.schedule c)

let test_fig4_unequal_counts () =
  (* out-tree with 2 leaves into in-tree with 4 sources: partial merge *)
  let c = F.Alternating.build_exn [ F.Alternating.Out small; F.Alternating.In mid ] in
  let g = Ic_core.Compose.dag (fst c) in
  check_int "two free sources remain" 3 (List.length (Dag.sources g));
  assert_optimal "unequal out^in" g (F.Alternating.schedule c)

(* --- meshes (Section 4) --- *)

let test_mesh_structure () =
  let g = F.Mesh.out_mesh 4 in
  check_int "15 nodes" 15 (Dag.n_nodes g);
  check_int "two arcs per non-final node" 20 (Dag.n_arcs g);
  check "last-level nodes are sinks" true (Dag.is_sink g (F.Mesh.node 4 2));
  check "dual relation" true (Dag.equal (F.Mesh.in_mesh 4) (Dag.dual g))

let test_mesh_schedules () =
  List.iter
    (fun l ->
      assert_optimal "out-mesh" (F.Mesh.out_mesh l) (F.Mesh.out_schedule l);
      assert_optimal "in-mesh" (F.Mesh.in_mesh l) (F.Mesh.in_schedule l))
    [ 0; 1; 2; 3; 5; 7 ]

let test_mesh_non_wavefront_suboptimal () =
  (* depth-first into the mesh instead of wavefront order *)
  let g = F.Mesh.out_mesh 3 in
  let bad =
    Schedule.of_nonsink_order_exn g
      [ F.Mesh.node 0 0; F.Mesh.node 1 0; F.Mesh.node 2 0; F.Mesh.node 1 1;
        F.Mesh.node 2 1; F.Mesh.node 2 2 ]
  in
  check "depth-first not optimal" false (Result.get_ok (Optimal.is_ic_optimal g bad))

(* --- butterflies (Section 5) --- *)

let test_butterfly_structure () =
  let g = F.Butterfly_net.dag 3 in
  check_int "32 nodes" 32 (Dag.n_nodes g);
  check_int "48 arcs" 48 (Dag.n_arcs g);
  check "self-dual" true (Ic_dag.Iso.isomorphic g (Dag.dual g))

let test_butterfly_schedules () =
  List.iter
    (fun d ->
      let g = F.Butterfly_net.dag d in
      let s = F.Butterfly_net.schedule d in
      check "pairs consecutive" true (F.Butterfly_net.pairs_consecutive d s);
      assert_optimal "butterfly" g s)
    [ 1; 2; 3 ]

let test_butterfly_characterization_negative () =
  (* row-major level order breaks pairs for d >= 2 and loses optimality *)
  let d = 2 in
  let g = F.Butterfly_net.dag d in
  let order =
    List.concat
      (List.init d (fun l ->
           List.init 4 (fun r -> F.Butterfly_net.node ~d l r)))
  in
  let s = Schedule.of_nonsink_order_exn g order in
  check "row-major splits pairs at level 1" false (F.Butterfly_net.pairs_consecutive d s);
  check "row-major not optimal" false (Result.get_ok (Optimal.is_ic_optimal g s))

(* --- parallel-prefix (Section 6.1) --- *)

let test_prefix_structure () =
  check_int "levels of P_8" 3 (F.Prefix_dag.levels 8);
  check_int "levels of P_5" 3 (F.Prefix_dag.levels 5);
  check_int "P_8 nodes" 32 (Dag.n_nodes (F.Prefix_dag.dag 8));
  check_int "P_8 combines" 17 (List.length (F.Prefix_dag.combines 8))

let test_prefix_schedules () =
  List.iter
    (fun n -> assert_optimal "prefix" (F.Prefix_dag.dag n) (F.Prefix_dag.schedule n))
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_prefix_decomposition_blocks () =
  (* the N-dag components of P_8 are N_8, N_4, N_4, N_2 x4 (Fig. 12) *)
  let d = F.Prefix_dag.n_decomposition 8 in
  let sizes =
    List.map
      (fun (g, _) -> List.length (Dag.sources g))
      (Ic_core.Compose.components d.F.Prefix_dag.compose)
  in
  Alcotest.(check (list int)) "N-dag sizes" [ 8; 4; 4; 2; 2; 2; 2 ] sizes

(* --- DLT dags (Section 6.2.1) --- *)

let test_l_dag () =
  let t = F.Dlt_dag.l_dag 8 in
  let g = F.Dlt_dag.dag t in
  check_int "L_8 nodes" 39 (Dag.n_nodes g);
  assert_optimal "L_4" (F.Dlt_dag.dag (F.Dlt_dag.l_dag 4)) (F.Dlt_dag.schedule (F.Dlt_dag.l_dag 4));
  assert_optimal "L_8" g (F.Dlt_dag.schedule t)

let test_l_prime_dag () =
  let t = F.Dlt_dag.l_prime_dag 8 in
  let g = F.Dlt_dag.dag t in
  (* ternary tree: 10 nodes; in-tree: 15; merged: 7 *)
  check_int "L'_8 nodes" 18 (Dag.n_nodes g);
  assert_optimal "L'_4" (F.Dlt_dag.dag (F.Dlt_dag.l_prime_dag 4)) (F.Dlt_dag.schedule (F.Dlt_dag.l_prime_dag 4));
  assert_optimal "L'_8" g (F.Dlt_dag.schedule t)

let test_ternary_tree () =
  let g = F.Dlt_dag.ternary_tree 7 in
  check "is out-tree" true (F.Out_tree.is_out_tree g);
  check_int "7 leaves" 7 (List.length (Dag.sinks g));
  check_int "10 nodes" 10 (Dag.n_nodes g);
  match F.Dlt_dag.ternary_tree 4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "even leaf count should be rejected"

(* --- matmul dag (Section 7) --- *)

let test_matmul_dag () =
  let g = F.Matmul_dag.dag () in
  check_int "20 nodes" 20 (Dag.n_nodes g);
  check_int "8 sources" 8 (List.length (Dag.sources g));
  check_int "4 sinks" 4 (List.length (Dag.sinks g));
  Alcotest.(check string) "labels" "AE+BG" (Dag.label g 16);
  assert_optimal "M" g (F.Matmul_dag.schedule ())

let test_matmul_boxed_order () =
  (* the paper's boxed schedule: products become eligible in this order *)
  Alcotest.(check (list string)) "boxed product order"
    [ "AE"; "CE"; "CF"; "AF"; "BG"; "DG"; "DH"; "BH" ]
    (F.Matmul_dag.product_eligibility_order ())

let test_matmul_products_wired_right () =
  let g = F.Matmul_dag.dag () in
  let parents_of label =
    match Dag.find_label g label with
    | Some v -> List.sort compare (List.map (Dag.label g) (Array.to_list (Dag.pred g v)))
    | None -> Alcotest.failf "missing node %s" label
  in
  Alcotest.(check (list string)) "AE" [ "A"; "E" ] (parents_of "AE");
  Alcotest.(check (list string)) "DH" [ "D"; "H" ] (parents_of "DH");
  Alcotest.(check (list string)) "AE+BG" [ "AE"; "BG" ] (parents_of "AE+BG");
  Alcotest.(check (list string)) "CF+DH" [ "CF"; "DH" ] (parents_of "CF+DH")

(* --- the iff-characterizations, both directions, randomized --- *)

let prop_in_tree_iff =
  (* [23]: a schedule for an in-tree is IC-optimal IFF it executes the
     sources of each Lambda copy consecutively. Sample random schedules of
     a random in-tree and check the equivalence both ways. *)
  QCheck2.Test.make ~name:"in-tree: pairing <=> IC-optimal" ~count:80
    QCheck2.Gen.(pair (int_range 1 5) (int_bound 10_000))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let shape = F.Out_tree.random rng ~max_internal:k ~arity:2 in
      let g = F.In_tree.dag_of_shape shape in
      match Optimal.e_opt g with
      | Error _ -> true
      | Ok opt ->
        List.for_all
          (fun _ ->
            let s = Ic_dag.Gen.random_nonsinks_first_schedule rng g in
            let pairing = F.In_tree.lambda_runs_consecutive g s in
            let optimal = Profile.run g s = opt in
            pairing = optimal)
          (List.init 8 Fun.id))

let prop_butterfly_iff =
  (* Section 5.1: for iterated compositions of B, IC-optimal IFF the two
     sources of every copy run consecutively (checked on B_2) *)
  QCheck2.Test.make ~name:"butterfly: pairs-consecutive <=> IC-optimal" ~count:60
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let d = 2 in
      let g = F.Butterfly_net.dag d in
      let opt = Result.get_ok (Optimal.e_opt g) in
      let s = Ic_dag.Gen.random_nonsinks_first_schedule rng g in
      F.Butterfly_net.pairs_consecutive d s = (Profile.run g s = opt))

(* --- the path dag (Fig. 16) --- *)

let test_path_dag () =
  let g = F.Path_dag.dag 8 in
  check "same shape as L_8" true (Dag.equal g (F.Dlt_dag.dag (F.Dlt_dag.l_dag 8)));
  assert_optimal "path dag k=4" (F.Path_dag.dag 4) (F.Path_dag.schedule 4)

let () =
  Alcotest.run "ic_families"
    [
      ( "trees",
        [
          Alcotest.test_case "out-tree structure" `Quick test_out_tree_structure;
          Alcotest.test_case "all out-tree schedules optimal" `Quick
            test_out_tree_all_schedules_optimal;
          Alcotest.test_case "irregular out-tree" `Quick test_irregular_out_tree;
          Alcotest.test_case "in-tree iff characterization" `Quick
            test_in_tree_characterization;
          Alcotest.test_case "ternary in-tree" `Quick test_ternary_in_tree;
        ] );
      ( "diamonds & alternations",
        [
          Alcotest.test_case "complete diamond" `Quick test_diamond_complete;
          Alcotest.test_case "irregular diamond" `Quick test_diamond_irregular;
          Alcotest.test_case "mismatched diamond rejected" `Quick test_diamond_mismatch;
          Alcotest.test_case "Table 1 type 1" `Quick test_table1_type1;
          Alcotest.test_case "Table 1 type 2" `Quick test_table1_type2;
          Alcotest.test_case "Table 1 type 3" `Quick test_table1_type3;
          Alcotest.test_case "Fig 4 unequal counts" `Quick test_fig4_unequal_counts;
        ] );
      ( "meshes",
        [
          Alcotest.test_case "structure" `Quick test_mesh_structure;
          Alcotest.test_case "wavefront schedules optimal" `Quick test_mesh_schedules;
          Alcotest.test_case "non-wavefront suboptimal" `Quick
            test_mesh_non_wavefront_suboptimal;
        ] );
      ( "butterflies",
        [
          Alcotest.test_case "structure" `Quick test_butterfly_structure;
          Alcotest.test_case "pairing schedules optimal" `Quick test_butterfly_schedules;
          Alcotest.test_case "characterization negative" `Quick
            test_butterfly_characterization_negative;
        ] );
      ( "parallel prefix",
        [
          Alcotest.test_case "structure" `Quick test_prefix_structure;
          Alcotest.test_case "schedules optimal" `Quick test_prefix_schedules;
          Alcotest.test_case "Fig 12 N-dag sizes" `Quick test_prefix_decomposition_blocks;
        ] );
      ( "DLT",
        [
          Alcotest.test_case "L_n" `Quick test_l_dag;
          Alcotest.test_case "L'_n" `Quick test_l_prime_dag;
          Alcotest.test_case "ternary tree" `Quick test_ternary_tree;
        ] );
      ( "matrix multiplication",
        [
          Alcotest.test_case "M dag" `Quick test_matmul_dag;
          Alcotest.test_case "boxed product order" `Quick test_matmul_boxed_order;
          Alcotest.test_case "wiring" `Quick test_matmul_products_wired_right;
        ] );
      ("paths", [ Alcotest.test_case "Fig 16 dag" `Quick test_path_dag ]);
      ( "iff characterizations",
        List.map QCheck_alcotest.to_alcotest [ prop_in_tree_iff; prop_butterfly_iff ] );
    ]
