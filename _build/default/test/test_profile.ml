module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile

let check = Alcotest.(check bool)
let check_profile = Alcotest.(check (array int))

(* hand-computed profiles for the paper's smallest blocks *)

let test_vee_profile () =
  let g = Ic_blocks.Vee.dag 2 in
  let s = Ic_blocks.Vee.schedule 2 in
  check_profile "V: [1;2;1;0]" [| 1; 2; 1; 0 |] (Profile.run g s);
  check_profile "V nonsink: [1;2]" [| 1; 2 |] (Profile.nonsink_profile g s)

let test_lambda_profile () =
  let g = Ic_blocks.Lambda.dag 2 in
  let s = Ic_blocks.Lambda.schedule 2 in
  check_profile "Lambda: [2;1;1;0]" [| 2; 1; 1; 0 |] (Profile.run g s);
  check_profile "Lambda nonsink: [2;1;1]" [| 2; 1; 1 |] (Profile.nonsink_profile g s)

let test_w_profile () =
  (* W_3 executing sources left to right: E stays 3 then jumps to 4 *)
  let g = Ic_blocks.W_dag.dag 3 in
  let s = Ic_blocks.W_dag.schedule 3 in
  check_profile "W_3 nonsink" [| 3; 3; 3; 4 |] (Profile.nonsink_profile g s)

let test_n_profile () =
  (* N_3 from the anchor: each execution immediately releases one sink *)
  let g = Ic_blocks.N_dag.dag 3 in
  let s = Ic_blocks.N_dag.schedule 3 in
  check_profile "N_3 nonsink" [| 3; 3; 3; 3 |] (Profile.nonsink_profile g s)

let test_cycle_profile () =
  let g = Ic_blocks.Cycle_dag.dag 4 in
  let s = Ic_blocks.Cycle_dag.schedule 4 in
  check_profile "C_4 nonsink" [| 4; 3; 3; 3; 4 |] (Profile.nonsink_profile g s)

let test_butterfly_profile () =
  let g = Ic_blocks.Butterfly_block.dag () in
  let s = Ic_blocks.Butterfly_block.schedule () in
  check_profile "B nonsink" [| 2; 1; 2 |] (Profile.nonsink_profile g s)

let test_of_set () =
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] () in
  Alcotest.(check int) "initially: just the source" 1
    (Profile.of_set g ~executed:[| false; false; false; false |]);
  Alcotest.(check int) "after the root: both middles" 2
    (Profile.of_set g ~executed:[| true; false; false; false |]);
  Alcotest.(check int) "non-ideal executed set handled" 1
    (Profile.of_set g ~executed:[| false; true; false; false |])

let test_packets () =
  let g = Ic_blocks.Lambda.dag 2 in
  let s = Ic_blocks.Lambda.schedule 2 in
  let packets = Profile.packets g s in
  Alcotest.(check int) "one packet per nonsink" 2 (Array.length packets);
  Alcotest.(check (list int)) "first empty" [] packets.(0);
  Alcotest.(check (list int)) "second releases the sink" [ 2 ] packets.(1)

let test_dominates () =
  check "reflexive" true (Profile.dominates [| 1; 2 |] [| 1; 2 |]);
  check "pointwise" true (Profile.dominates [| 2; 2 |] [| 1; 2 |]);
  check "fails" false (Profile.dominates [| 2; 1 |] [| 1; 2 |]);
  check "length mismatch" false (Profile.dominates [| 1 |] [| 1; 2 |]);
  check "strict" true (Profile.strictly_dominates [| 2; 2 |] [| 1; 2 |]);
  check "not strict when equal" false (Profile.strictly_dominates [| 1; 2 |] [| 1; 2 |])

let test_rejects_non_normal_form () =
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (2, 3) ] () in
  let s = Schedule.of_order_exn g [ 0; 1; 2; 3 ] in
  match Profile.nonsink_profile g s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of sink-interleaved schedule"

let prop_profile_endpoints =
  QCheck2.Test.make ~name:"profile starts at #sources, ends at 0" ~count:200
    QCheck2.Gen.(pair (int_range 1 25) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      let s = Ic_dag.Gen.random_schedule rng g in
      let p = Profile.run g s in
      p.(0) = List.length (Dag.sources g) && p.(n) = 0)

let prop_profile_set_consistency =
  QCheck2.Test.make ~name:"profile matches of_set on every prefix" ~count:100
    QCheck2.Gen.(pair (int_range 1 15) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      let s = Ic_dag.Gen.random_schedule rng g in
      let p = Profile.run g s in
      List.for_all
        (fun t -> p.(t) = Profile.of_set g ~executed:(Schedule.prefix_set s t))
        (List.init (n + 1) Fun.id))

let prop_packets_partition_nonsources =
  QCheck2.Test.make ~name:"packets partition the nonsources" ~count:100
    QCheck2.Gen.(pair (int_range 1 20) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      let s = Ic_dag.Gen.random_nonsinks_first_schedule rng g in
      let released = List.concat (Array.to_list (Profile.packets g s)) in
      List.sort compare released = Dag.nonsources g)

let () =
  Alcotest.run "ic_dag.Profile"
    [
      ( "block profiles",
        [
          Alcotest.test_case "Vee" `Quick test_vee_profile;
          Alcotest.test_case "Lambda" `Quick test_lambda_profile;
          Alcotest.test_case "W_3" `Quick test_w_profile;
          Alcotest.test_case "N_3" `Quick test_n_profile;
          Alcotest.test_case "C_4" `Quick test_cycle_profile;
          Alcotest.test_case "B" `Quick test_butterfly_profile;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "of_set" `Quick test_of_set;
          Alcotest.test_case "packets" `Quick test_packets;
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "normal form required" `Quick test_rejects_non_normal_form;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_profile_endpoints;
            prop_profile_set_consistency;
            prop_packets_partition_nonsources;
          ] );
    ]
