module Spec = Ic_cli.Family_spec
module Dag = Ic_dag.Dag

let check = Alcotest.(check bool)

let parse_exn spec =
  match Spec.parse spec with
  | Ok f -> f
  | Error msg -> Alcotest.failf "parse %S: %s" spec msg

let test_known_families () =
  List.iter
    (fun (spec, nodes) ->
      let f = parse_exn spec in
      Alcotest.(check int) spec nodes (Dag.n_nodes f.Spec.dag);
      check (spec ^ " schedule valid") true
        (Ic_dag.Schedule.is_valid f.Spec.dag (Ic_dag.Schedule.order f.Spec.schedule)))
    [
      ("outtree:2.3", 15);
      ("intree:2.2", 7);
      ("diamond:2.2", 10);
      ("mesh:4", 15);
      ("inmesh:4", 15);
      ("butterfly:3", 32);
      ("prefix:8", 32);
      ("ldag:8", 39);
      ("lprime:8", 18);
      ("paths:4", 15);
      ("matmul", 20);
      ("sortnet:2", 16);
      ("random:10.3", 10);
    ]

let test_schedules_are_optimal_where_checkable () =
  List.iter
    (fun spec ->
      let f = parse_exn spec in
      match Ic_dag.Optimal.is_ic_optimal f.Spec.dag f.Spec.schedule with
      | Ok true -> ()
      | Ok false -> Alcotest.failf "%s: CLI schedule not IC-optimal" spec
      | Error _ -> ())
    [ "mesh:5"; "butterfly:2"; "prefix:6"; "matmul"; "diamond:2.2"; "ldag:4" ]

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Spec.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" spec)
    [
      "unknown:3"; "mesh:x"; "mesh:-1"; "diamond:2"; "outtree:2"; "butterfly:0";
      "ldag:6" (* not a power of two *); "file:/nonexistent/path.dag";
    ]

let test_file_family () =
  let path = Filename.temp_file "icsched" ".dag" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "nodes 4\narc 0 1\narc 0 2\narc 1 3\narc 2 3\n");
  let f = parse_exn ("file:" ^ path) in
  Alcotest.(check int) "nodes" 4 (Dag.n_nodes f.Spec.dag);
  (* small dags get the exact witness, which is IC-optimal *)
  check "witness optimal" true
    (Result.get_ok (Ic_dag.Optimal.is_ic_optimal f.Spec.dag f.Spec.schedule));
  Sys.remove path

let test_help_covers_parsers () =
  (* every advertised family prefix actually parses with a sample argument *)
  let sample = function
    | "outtree:A.D" | "intree:A.D" | "diamond:A.D" -> Some "2.2"
    | "mesh:L" | "inmesh:L" -> Some "3"
    | "butterfly:D" | "sortnet:D" -> Some "2"
    | "prefix:N" -> Some "4"
    | "ldag:N" | "lprime:N" | "paths:K" -> Some "4"
    | "matmul" -> None
    | "random:N.S" -> Some "6.1"
    | "file:PATH" -> raise Exit (* needs a real file; covered above *)
    | other -> Alcotest.failf "unknown help entry %s" other
  in
  List.iter
    (fun (key, _) ->
      match
        let prefix = List.hd (String.split_on_char ':' key) in
        match sample key with
        | Some arg -> Some (prefix ^ ":" ^ arg)
        | None -> Some prefix
      with
      | exception Exit -> ()
      | Some spec -> ignore (parse_exn spec)
      | None -> ())
    Spec.families_help

let () =
  Alcotest.run "ic_cli.Family_spec"
    [
      ( "parsing",
        [
          Alcotest.test_case "known families" `Quick test_known_families;
          Alcotest.test_case "schedules optimal" `Quick
            test_schedules_are_optimal_where_checkable;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "file family" `Quick test_file_family;
          Alcotest.test_case "help entries all parse" `Quick test_help_covers_parsers;
        ] );
    ]
