module C = Ic_compute
module Dag = Ic_dag.Dag

let check = Alcotest.(check bool)
let close ?(eps = 1e-6) a b = Float.abs (a -. b) < eps

let cclose (a : Complex.t) (b : Complex.t) =
  Float.abs (a.re -. b.re) < 1e-6 && Float.abs (a.im -. b.im) < 1e-6

(* --- engine --- *)

let test_engine_basic () =
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] () in
  let compute v parents =
    if v = 0 then 1 else Array.fold_left ( + ) v parents
  in
  let values = C.Engine.execute { C.Engine.dag = g; compute } in
  Alcotest.(check (array int)) "values" [| 1; 2; 3; 8 |] values

let test_engine_schedule_agnostic () =
  (* any schedule computes the same values *)
  let g = Ic_families.Mesh.out_mesh 5 in
  let compute _v parents =
    if Array.length parents = 0 then 1 else Array.fold_left ( + ) 0 parents
  in
  let e = { C.Engine.dag = g; compute } in
  let a = C.Engine.execute e in
  let rng = Random.State.make [| 17 |] in
  let s = Ic_dag.Gen.random_schedule rng g in
  Alcotest.(check (array int)) "same values" a (C.Engine.execute ~schedule:s e)

let test_engine_rejects_misfit () =
  let g = Dag.empty 2 in
  let s = Ic_dag.Schedule.natural (Dag.empty 3) in
  match C.Engine.execute ~schedule:s { C.Engine.dag = g; compute = (fun _ _ -> 0) } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected schedule-size rejection"

(* --- quadrature (Section 3.2) --- *)

let test_quadrature_known_integrals () =
  let cases =
    [
      ("sin on [0,pi]", sin, 0.0, Float.pi, 2.0);
      ("x^2 on [0,3]", (fun x -> x *. x), 0.0, 3.0, 9.0);
      ("exp on [0,1]", exp, 0.0, 1.0, Float.exp 1.0 -. 1.0);
      ("1/(1+x^2) on [0,1]", (fun x -> 1.0 /. (1.0 +. (x *. x))), 0.0, 1.0, Float.pi /. 4.0);
    ]
  in
  List.iter
    (fun (name, f, lo, hi, expected) ->
      let r = C.Quadrature.integrate ~f ~lo ~hi ~tol:1e-8 () in
      if not (close ~eps:1e-3 r.C.Quadrature.value expected) then
        Alcotest.failf "%s: got %.6f, expected %.6f" name r.C.Quadrature.value expected)
    cases

let test_quadrature_dag_equals_reference () =
  let f x = sin (3.0 *. x) +. (0.5 *. x) in
  let r = C.Quadrature.integrate ~f ~lo:0.0 ~hi:2.0 ~tol:1e-7 () in
  let reference = C.Quadrature.reference ~f ~lo:0.0 ~hi:2.0 ~tol:1e-7 () in
  check "bitwise equal to plain recursion" true (r.C.Quadrature.value = reference)

let test_quadrature_simpson_exact_on_cubics () =
  let r =
    C.Quadrature.integrate ~rule:C.Quadrature.Simpson
      ~f:(fun x -> (x *. x *. x) -. x) ~lo:(-1.0) ~hi:3.0 ~tol:1e-10 ()
  in
  check "single task suffices" true (r.C.Quadrature.n_tasks = 1);
  check "exact" true (close ~eps:1e-9 r.C.Quadrature.value 16.0)

let test_quadrature_schedule_is_optimal_shape () =
  (* the adaptive diamond's schedule really is the Thm 2.1 schedule *)
  let r = C.Quadrature.integrate ~f:sqrt ~lo:0.0 ~hi:1.0 ~tol:1e-3 () in
  check "irregular subdivision happened" true (r.C.Quadrature.n_tasks > 3);
  match Ic_dag.Optimal.is_ic_optimal (Ic_families.Diamond.dag r.C.Quadrature.diamond) r.C.Quadrature.schedule with
  | Ok b -> check "IC-optimal" true b
  | Error (`Too_large _) -> () (* fine for big subdivisions *)

(* --- FFT / convolution (Section 5.2) --- *)

let prop_fft_matches_naive =
  QCheck2.Test.make ~name:"fft = naive dft" ~count:40
    QCheck2.Gen.(pair (int_range 1 6) (int_bound 10_000))
    (fun (d, seed) ->
      let n = 1 lsl d in
      let rng = Random.State.make [| seed |] in
      let input =
        Array.init n (fun _ ->
            { Complex.re = Random.State.float rng 2.0 -. 1.0;
              im = Random.State.float rng 2.0 -. 1.0 })
      in
      Array.for_all2 cclose (C.Fft.fft input) (C.Fft.dft_naive input))

let prop_fft_roundtrip =
  QCheck2.Test.make ~name:"ifft inverts fft" ~count:40
    QCheck2.Gen.(pair (int_range 1 7) (int_bound 10_000))
    (fun (d, seed) ->
      let n = 1 lsl d in
      let rng = Random.State.make [| seed |] in
      let input =
        Array.init n (fun _ ->
            { Complex.re = Random.State.float rng 2.0 -. 1.0;
              im = Random.State.float rng 2.0 -. 1.0 })
      in
      Array.for_all2 cclose (C.Fft.ifft (C.Fft.fft input)) input)

let test_fft_rejects_bad_length () =
  match C.Fft.fft [| Complex.one; Complex.zero; Complex.one |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected power-of-two check"

let test_bit_reverse () =
  Alcotest.(check int) "rev 3 bits of 0b110" 0b011 (C.Fft.bit_reverse ~bits:3 0b110);
  Alcotest.(check int) "rev 4 bits of 1" 8 (C.Fft.bit_reverse ~bits:4 1)

let test_parseval () =
  (* energy conservation distinguishes a true DFT from a lookalike *)
  let input = Array.init 8 (fun i -> { Complex.re = float_of_int i; im = 0.0 }) in
  let out = C.Fft.fft input in
  let energy a = Array.fold_left (fun acc z -> acc +. Complex.norm2 z) 0.0 a in
  check "Parseval" true (close ~eps:1e-6 (energy out) (8.0 *. energy input))

let prop_convolution =
  QCheck2.Test.make ~name:"fft polynomial product = naive convolution" ~count:40
    QCheck2.Gen.(
      pair
        (pair (int_range 1 12) (int_range 1 12))
        (int_bound 10_000))
    (fun ((la, lb), seed) ->
      let rng = Random.State.make [| seed |] in
      let coeffs l = Array.init l (fun _ -> Random.State.float rng 4.0 -. 2.0) in
      let a = coeffs la and b = coeffs lb in
      Array.for_all2 (fun x y -> close ~eps:1e-6 x y) (C.Convolution.naive a b)
        (C.Convolution.poly_mul_fft a b))

let test_convolution_formula () =
  (* A_k = sum a_i b_{k-i}: (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2 *)
  Alcotest.(check (array (float 1e-9))) "by hand" [| 3.0; 10.0; 8.0 |]
    (C.Convolution.naive [| 1.0; 2.0 |] [| 3.0; 4.0 |])

(* --- sorting (eq. 5.1) --- *)

let prop_bitonic_sorts =
  QCheck2.Test.make ~name:"bitonic network sorts" ~count:60
    QCheck2.Gen.(pair (int_range 1 6) (int_bound 10_000))
    (fun (d, seed) ->
      let n = 1 lsl d in
      let rng = Random.State.make [| seed |] in
      let keys = Array.init n (fun _ -> Random.State.int rng 1000) in
      let expected = Array.copy keys in
      Array.sort compare expected;
      C.Sorting.sort keys = expected)

let test_sorting_duplicates_and_extremes () =
  let keys = [| 5; 5; 5; 5; min_int; max_int; 0; -1 |] in
  let expected = Array.copy keys in
  Array.sort compare expected;
  check "duplicates/extremes" true (C.Sorting.sort keys = expected)

let test_sorting_network_schedule_optimal () =
  (* the network is an iterated composition of B: pairing is IC-optimal *)
  let g = C.Sorting.network_dag 2 in
  match Ic_dag.Optimal.is_ic_optimal g (C.Sorting.schedule 2) with
  | Ok b -> check "IC-optimal" true b
  | Error (`Too_large _) -> Alcotest.fail "n=4 network should be brute-forceable"

let prop_oddeven_sorts =
  QCheck2.Test.make ~name:"odd-even merge network sorts" ~count:60
    QCheck2.Gen.(pair (int_range 1 6) (int_bound 10_000))
    (fun (d, seed) ->
      let n = 1 lsl d in
      let rng = Random.State.make [| seed |] in
      let keys = Array.init n (fun _ -> Random.State.int rng 1000) in
      let expected = Array.copy keys in
      Array.sort compare expected;
      C.Sorting.sort_oddeven keys = expected)

let test_oddeven_admits_no_optimum () =
  (* a striking contrast found by the exact verifier: the bitonic network
     (a pure iterated composition of B) admits an IC-optimal schedule, but
     Batcher's more comparator-efficient odd-even network does NOT - its
     pass-through chains are |>-incomparable with the comparator blocks.
     Efficiency in comparators trades away IC-optimality. *)
  let oe = C.Sorting.oddeven_dag 2 in
  let a = Result.get_ok (Ic_dag.Optimal.analyze oe) in
  check "odd-even admits no IC-optimal schedule" false a.Ic_dag.Optimal.admits;
  check "bitonic does" true
    (Result.get_ok (Ic_dag.Optimal.admits_ic_optimal (C.Sorting.network_dag 2)));
  (* our phase schedule is still near the (unattainable) ceiling *)
  let p = Ic_dag.Profile.run oe (C.Sorting.oddeven_schedule 2) in
  check "dominated by the ceiling" true (Ic_dag.Profile.dominates a.Ic_dag.Optimal.e_opt p);
  let off_by =
    Array.to_list (Array.mapi (fun i e -> e - p.(i)) a.Ic_dag.Optimal.e_opt)
    |> List.fold_left ( + ) 0
  in
  check "within 2 eligibility units of the ceiling overall" true (off_by <= 2)

let test_oddeven_fewer_comparators () =
  (* the efficiency claim behind the paper's reference [11] *)
  List.iter
    (fun d ->
      let bitonic, oddeven = C.Sorting.n_comparators d in
      check (Printf.sprintf "d=%d" d) true (oddeven < bitonic))
    [ 2; 3; 4; 5; 6 ]

let test_sort_floats () =
  let keys = [| 3.5; -1.0; 0.0; 2.25 |] in
  Alcotest.(check (array (float 0.0))) "floats" [| -1.0; 0.0; 2.25; 3.5 |]
    (C.Sorting.sort_floats keys)

(* --- scans (Section 6.1) --- *)

let prop_scan_matches_fold =
  QCheck2.Test.make ~name:"dag scan = sequential scan (non-commutative op)" ~count:60
    QCheck2.Gen.(pair (int_range 1 33) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      (* string concatenation: associative but NOT commutative, so order
         bugs cannot hide *)
      let xs = Array.init n (fun _ -> String.make 1 (Char.chr (97 + Random.State.int rng 26))) in
      C.Scan.scan ~op:( ^ ) xs = C.Scan.scan_seq ~op:( ^ ) xs)

let test_int_powers () =
  Alcotest.(check (array int)) "3^i mod 1000" [| 3; 9; 27; 81; 243; 729; 187; 561 |]
    (C.Scan.int_powers ~base:3 ~modulus:1000 8)

let test_complex_powers () =
  let omega = Complex.polar 1.0 (Float.pi /. 2.0) in
  let p = C.Scan.complex_powers omega 4 in
  check "i^4 = 1" true (cclose p.(3) Complex.one);
  check "i^2 = -1" true (cclose p.(1) { Complex.re = -1.0; im = 0.0 })

let test_matrix_powers () =
  (* a 3-cycle: A^3 = I *)
  let a = C.Bool_matrix.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  let p = C.Scan.matrix_powers a 3 in
  check "A^3 = I" true (C.Bool_matrix.equal p.(2) (C.Bool_matrix.identity 3))

(* --- paths (Fig. 16) --- *)

let prop_paths_match_reference =
  QCheck2.Test.make ~name:"path vectors = reference on random graphs" ~count:25
    QCheck2.Gen.(pair (int_range 2 8) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a = C.Bool_matrix.random rng n ~density:0.3 in
      C.Paths.compute a ~k:4 = C.Paths.reference a ~k:4)

let test_paths_nine_node_example () =
  (* the paper's 9-node, k = 8 instance *)
  let a =
    C.Bool_matrix.of_edges 9
      [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4); (4, 5); (5, 6); (6, 7); (7, 8); (8, 0) ]
  in
  let m = C.Paths.compute a ~k:8 in
  check "matches reference" true (m = C.Paths.reference a ~k:8);
  (* cycle 0-1-2-3: a length-4 walk 0 -> 0 exists *)
  check "0 to 0 in 4" true m.(0).(0).(3);
  check "no 0 to 0 in 3" false m.(0).(0).(2)

(* --- matrix multiplication (Section 7) --- *)

let prop_matmul =
  QCheck2.Test.make ~name:"recursive dag matmul = naive" ~count:25
    QCheck2.Gen.(pair (int_range 0 4) (int_bound 10_000))
    (fun (p, seed) ->
      let n = 1 lsl p in
      let rng = Random.State.make [| seed |] in
      let a = C.Matmul.random rng n and b = C.Matmul.random rng n in
      C.Matmul.approx_equal (C.Matmul.multiply ~threshold:2 a b) (C.Matmul.naive a b))

let test_matmul_identity () =
  let n = 8 in
  let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  let rng = Random.State.make [| 12 |] in
  let a = C.Matmul.random rng n in
  check "A * I = A" true
    (C.Matmul.approx_equal (C.Matmul.multiply ~threshold:1 a id) a)

let test_matmul_noncommutative_order () =
  (* catches swapped operands in product tasks *)
  let a = [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let b = [| [| 0.0; 0.0 |]; [| 1.0; 0.0 |] |] in
  let ab = C.Matmul.multiply ~threshold:1 a b in
  let ba = C.Matmul.multiply ~threshold:1 b a in
  check "AB has top-left 1" true (close ab.(0).(0) 1.0);
  check "BA has top-left 0" true (close ba.(0).(0) 0.0)

let test_matmul_rejects_non_power () =
  let m = [| [| 1.0; 0.0; 0.0 |]; [| 0.0; 1.0; 0.0 |]; [| 0.0; 0.0; 1.0 |] |] in
  match C.Matmul.multiply m m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected power-of-two rejection"

(* --- wavefront (Section 4) --- *)

let test_pascal () =
  Alcotest.(check (array int)) "C(6, k)" [| 1; 6; 15; 20; 15; 6; 1 |] (C.Wavefront.pascal 6)

let prop_edit_distance =
  QCheck2.Test.make ~name:"dag edit distance = classic DP" ~count:60
    QCheck2.Gen.(pair (pair (string_size (int_range 1 8)) (string_size (int_range 1 8)))
                   unit)
    (fun ((s, t), ()) ->
      C.Wavefront.edit_distance s t = C.Wavefront.edit_distance_reference s t)

let test_edit_distance_known () =
  Alcotest.(check int) "kitten/sitting" 3 (C.Wavefront.edit_distance "kitten" "sitting");
  Alcotest.(check int) "same" 0 (C.Wavefront.edit_distance "abc" "abc");
  Alcotest.(check int) "to empty-ish" 3 (C.Wavefront.edit_distance "abc" "xyz")

let test_pyramid_reduce () =
  (* max pyramid = global max; sum pyramid = weighted (binomial) sum *)
  Alcotest.(check int) "max pooling" 9
    (C.Wavefront.pyramid_reduce ~op:max [| 3; 1; 9; 2; 5 |]);
  Alcotest.(check int) "single cell" 7 (C.Wavefront.pyramid_reduce ~op:max [| 7 |]);
  (* with (+), entry j is weighted by C(n-1, j) *)
  Alcotest.(check int) "binomial sum" (1 + (3 * 2) + (3 * 3) + 4)
    (C.Wavefront.pyramid_reduce ~op:( + ) [| 1; 2; 3; 4 |])

let prop_pyramid_max =
  QCheck2.Test.make ~name:"max pyramid computes the maximum" ~count:80
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let xs = Array.init n (fun _ -> Random.State.int rng 1000) in
      C.Wavefront.pyramid_reduce ~op:max xs = Array.fold_left max min_int xs)

let test_grid_wavefront_schedule_valid () =
  let s = C.Wavefront.grid_schedule ~rows:4 ~cols:6 in
  check "valid" true
    (Ic_dag.Schedule.is_valid (C.Wavefront.grid ~rows:4 ~cols:6) (Ic_dag.Schedule.order s))

(* --- DLT (Section 6.2.1) --- *)

let prop_dlt_both_algorithms =
  QCheck2.Test.make ~name:"L_n and L'_n agree with direct evaluation" ~count:20
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 0 7))
    (fun (seed, k) ->
      let rng = Random.State.make [| seed |] in
      let x =
        Array.init 8 (fun _ ->
            { Complex.re = Random.State.float rng 2.0 -. 1.0;
              im = Random.State.float rng 2.0 -. 1.0 })
      in
      let omega = Complex.polar 1.0 (2.0 *. Float.pi /. 8.0) in
      let expected = C.Dlt.naive ~x ~omega ~k in
      cclose expected (C.Dlt.via_prefix ~x ~omega ~k)
      && cclose expected (C.Dlt.via_tree ~x ~omega ~k))

let test_dlt_transform () =
  let x = Array.init 4 (fun i -> { Complex.re = float_of_int i; im = 0.0 }) in
  let omega = Complex.polar 1.0 (2.0 *. Float.pi /. 4.0) in
  let ys = C.Dlt.transform C.Dlt.via_prefix ~x ~omega ~m:4 in
  (* with omega a root of unity the DLT is the DFT with positive sign:
     compare against naive evaluation *)
  Array.iteri
    (fun k y -> check "coefficient" true (cclose y (C.Dlt.naive ~x ~omega ~k)))
    ys

(* --- carry-lookahead addition (Section 6.1) --- *)

let test_carry_lookahead_by_hand () =
  (* 3 + 1 with 2-bit operands: 11 + 10? LSB-first: 3 = [1;1], 1 = [1;0];
     sum 4 = [0;0;1] *)
  Alcotest.(check (array bool)) "3 + 1 = 4"
    [| false; false; true |]
    (C.Carry_lookahead.add [| true; true |] [| true; false |]);
  Alcotest.(check int) "add_ints" 4 (C.Carry_lookahead.add_ints ~width:2 3 1)

let prop_carry_lookahead =
  QCheck2.Test.make ~name:"carry-lookahead = integer addition" ~count:120
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (x, y) -> C.Carry_lookahead.add_ints ~width:17 x y = x + y)

let test_bits_roundtrip () =
  Alcotest.(check int) "roundtrip" 0b101101
    (C.Carry_lookahead.int_of_bits (C.Carry_lookahead.bits_of_int ~width:8 0b101101))

let test_bool_matrix_ops () =
  let a = C.Bool_matrix.of_edges 3 [ (0, 1); (1, 2) ] in
  let a2 = C.Bool_matrix.mult a a in
  check "composition of steps" true (C.Bool_matrix.get a2 0 2);
  check "no self path" false (C.Bool_matrix.get a2 0 1);
  let s = C.Bool_matrix.add a a2 in
  check "union" true (C.Bool_matrix.get s 0 1 && C.Bool_matrix.get s 0 2);
  check "identity neutral" true
    (C.Bool_matrix.equal (C.Bool_matrix.mult a (C.Bool_matrix.identity 3)) a)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ic_compute"
    [
      ( "engine",
        [
          Alcotest.test_case "basic" `Quick test_engine_basic;
          Alcotest.test_case "schedule agnostic" `Quick test_engine_schedule_agnostic;
          Alcotest.test_case "rejects misfit" `Quick test_engine_rejects_misfit;
        ] );
      ( "quadrature",
        [
          Alcotest.test_case "known integrals" `Quick test_quadrature_known_integrals;
          Alcotest.test_case "dag equals reference" `Quick
            test_quadrature_dag_equals_reference;
          Alcotest.test_case "Simpson exact on cubics" `Quick
            test_quadrature_simpson_exact_on_cubics;
          Alcotest.test_case "schedule optimal" `Quick
            test_quadrature_schedule_is_optimal_shape;
        ] );
      ( "fft & convolution",
        Alcotest.test_case "rejects bad length" `Quick test_fft_rejects_bad_length
        :: Alcotest.test_case "bit reverse" `Quick test_bit_reverse
        :: Alcotest.test_case "Parseval" `Quick test_parseval
        :: Alcotest.test_case "convolution by hand" `Quick test_convolution_formula
        :: qcheck [ prop_fft_matches_naive; prop_fft_roundtrip; prop_convolution ] );
      ( "sorting",
        Alcotest.test_case "duplicates/extremes" `Quick test_sorting_duplicates_and_extremes
        :: Alcotest.test_case "network schedule optimal" `Quick
             test_sorting_network_schedule_optimal
        :: Alcotest.test_case "floats" `Quick test_sort_floats
        :: Alcotest.test_case "odd-even admits no optimum" `Quick
             test_oddeven_admits_no_optimum
        :: Alcotest.test_case "odd-even fewer comparators" `Quick
             test_oddeven_fewer_comparators
        :: qcheck [ prop_bitonic_sorts; prop_oddeven_sorts ] );
      ( "scans",
        Alcotest.test_case "integer powers" `Quick test_int_powers
        :: Alcotest.test_case "complex powers" `Quick test_complex_powers
        :: Alcotest.test_case "matrix powers" `Quick test_matrix_powers
        :: Alcotest.test_case "bool matrices" `Quick test_bool_matrix_ops
        :: Alcotest.test_case "carry-lookahead by hand" `Quick
             test_carry_lookahead_by_hand
        :: Alcotest.test_case "bit roundtrip" `Quick test_bits_roundtrip
        :: qcheck [ prop_scan_matches_fold; prop_carry_lookahead ] );
      ( "paths",
        Alcotest.test_case "nine-node example" `Quick test_paths_nine_node_example
        :: qcheck [ prop_paths_match_reference ] );
      ( "matmul",
        Alcotest.test_case "identity" `Quick test_matmul_identity
        :: Alcotest.test_case "noncommutative order" `Quick
             test_matmul_noncommutative_order
        :: Alcotest.test_case "rejects non-power" `Quick test_matmul_rejects_non_power
        :: qcheck [ prop_matmul ] );
      ( "wavefront",
        Alcotest.test_case "pascal" `Quick test_pascal
        :: Alcotest.test_case "edit distance known" `Quick test_edit_distance_known
        :: Alcotest.test_case "wavefront schedule valid" `Quick
             test_grid_wavefront_schedule_valid
        :: Alcotest.test_case "pyramid reduce" `Quick test_pyramid_reduce
        :: qcheck [ prop_edit_distance; prop_pyramid_max ] );
      ( "DLT",
        Alcotest.test_case "transform" `Quick test_dlt_transform
        :: qcheck [ prop_dlt_both_algorithms ] );
    ]
