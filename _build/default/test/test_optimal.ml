module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Optimal = Ic_dag.Optimal

let check = Alcotest.(check bool)

let analyze_exn g =
  match Optimal.analyze g with
  | Ok a -> a
  | Error (`Too_large k) -> Alcotest.failf "unexpectedly too large (%d)" k

let test_lambda () =
  let a = analyze_exn (Ic_blocks.Lambda.dag 2) in
  Alcotest.(check (array int)) "e_opt" [| 2; 1; 1; 0 |] a.Optimal.e_opt;
  check "admits" true a.Optimal.admits;
  match a.Optimal.witness with
  | Some w ->
    check "witness optimal" true
      (Profile.run (Ic_blocks.Lambda.dag 2) w = a.Optimal.e_opt)
  | None -> Alcotest.fail "expected a witness"

let test_vee () =
  let a = analyze_exn (Ic_blocks.Vee.dag 2) in
  Alcotest.(check (array int)) "e_opt" [| 1; 2; 1; 0 |] a.Optimal.e_opt

let test_ideal_count () =
  (* the 4-node diamond has ideals: {}, {0}, {01}, {02}, {012}, {0123} *)
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] () in
  let a = analyze_exn g in
  Alcotest.(check int) "6 ideals" 6 a.Optimal.n_ideals

let test_antichain_ideals () =
  (* n isolated nodes have 2^n ideals *)
  let a = analyze_exn (Dag.empty 10) in
  Alcotest.(check int) "2^10 ideals" 1024 a.Optimal.n_ideals

let test_is_ic_optimal () =
  let g = Ic_blocks.Lambda.dag 2 in
  check "block schedule optimal" true
    (Result.get_ok (Optimal.is_ic_optimal g (Ic_blocks.Lambda.schedule 2)));
  (* an in-tree schedule that splits a Lambda pair is NOT optimal *)
  let t = Ic_families.In_tree.dag ~arity:2 ~depth:2 in
  let bad =
    (* execute one source of each bottom Lambda before pairing: ids are the
       duals of the pre-order out-tree; find four leaves and interleave *)
    let leaves = Dag.sources t in
    match leaves with
    | [ a; b; c; d ] ->
      let internals =
        List.filter (fun v -> not (Dag.is_source t v)) (Dag.nonsinks t)
      in
      Schedule.of_nonsink_order_exn t ([ a; c; b; d ] @ internals)
    | _ -> Alcotest.fail "expected 4 leaves"
  in
  check "split pairs not optimal" false (Result.get_ok (Optimal.is_ic_optimal t bad))

let test_non_admitting () =
  (* found by random search; no single schedule is pointwise optimal *)
  let g =
    Dag.make_exn ~n:7 ~arcs:[ (0, 2); (0, 4); (1, 2); (1, 4); (2, 6); (3, 5) ] ()
  in
  let a = analyze_exn g in
  check "does not admit" false a.Optimal.admits;
  check "no witness" true (a.Optimal.witness = None);
  (* yet every schedule is dominated by e_opt *)
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 50 do
    let s = Ic_dag.Gen.random_schedule rng g in
    check "e_opt dominates all schedules" true
      (Profile.dominates a.Optimal.e_opt (Profile.run g s))
  done

let test_too_large () =
  match Optimal.analyze (Dag.empty 62) with
  | Error (`Too_large _) -> ()
  | Ok _ -> Alcotest.fail "expected Too_large for 62 nodes"

let test_max_ideals_guard () =
  match Optimal.analyze ~max_ideals:100 (Dag.empty 20) with
  | Error (`Too_large k) -> check "guard triggered" true (k > 100)
  | Ok _ -> Alcotest.fail "expected the ideal-count guard to trigger"

let test_empty_dag () =
  let a = analyze_exn (Dag.empty 0) in
  check "empty admits" true a.Optimal.admits;
  Alcotest.(check (array int)) "trivial profile" [| 0 |] a.Optimal.e_opt

let prop_e_opt_dominates_everything =
  QCheck2.Test.make ~name:"e_opt dominates random schedules" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      match Optimal.e_opt g with
      | Error _ -> false
      | Ok opt ->
        List.for_all
          (fun _ -> Profile.dominates opt (Profile.run g (Ic_dag.Gen.random_schedule rng g)))
          (List.init 10 Fun.id))

let prop_witness_is_optimal =
  QCheck2.Test.make ~name:"witness achieves e_opt whenever admits" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      match Optimal.analyze g with
      | Error _ -> false
      | Ok a -> (
        match a.Optimal.witness with
        | Some w -> a.Optimal.admits && Profile.run g w = a.Optimal.e_opt
        | None -> not a.Optimal.admits))

let prop_out_trees_admit =
  QCheck2.Test.make ~name:"every random out-tree admits (indeed any schedule)" ~count:60
    QCheck2.Gen.(pair (int_range 0 7) (int_bound 10_000))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let shape = Ic_families.Out_tree.random rng ~max_internal:k ~arity:2 in
      let g = Ic_families.Out_tree.dag_of_shape shape in
      match Optimal.analyze g with
      | Error _ -> true (* skip oversized *)
      | Ok a ->
        a.Optimal.admits
        && Result.get_ok
             (Optimal.is_ic_optimal g (Ic_dag.Gen.random_nonsinks_first_schedule rng g)))

let () =
  Alcotest.run "ic_dag.Optimal"
    [
      ( "exact analysis",
        [
          Alcotest.test_case "Lambda" `Quick test_lambda;
          Alcotest.test_case "Vee" `Quick test_vee;
          Alcotest.test_case "ideal count (diamond)" `Quick test_ideal_count;
          Alcotest.test_case "ideal count (antichain)" `Quick test_antichain_ideals;
          Alcotest.test_case "is_ic_optimal" `Quick test_is_ic_optimal;
          Alcotest.test_case "non-admitting dag" `Quick test_non_admitting;
          Alcotest.test_case "empty dag" `Quick test_empty_dag;
        ] );
      ( "guards",
        [
          Alcotest.test_case "too many nodes" `Quick test_too_large;
          Alcotest.test_case "ideal budget" `Quick test_max_ideals_guard;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_e_opt_dominates_everything;
            prop_witness_is_optimal;
            prop_out_trees_admit;
          ] );
    ]
