module Dag = Ic_dag.Dag
module Serial = Ic_dag.Serial

let check = Alcotest.(check bool)

let test_roundtrip_basic () =
  let g =
    Dag.make_exn ~labels:[| "a"; "b"; "c"; "d" |] ~n:4
      ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ()
  in
  match Serial.of_string (Serial.to_string g) with
  | Ok g' ->
    check "structure preserved" true (Dag.equal g g');
    Alcotest.(check string) "labels preserved" "c" (Dag.label g' 2)
  | Error e -> Alcotest.fail e

let test_parse_with_comments () =
  let text =
    "# fork-join\nnodes 3\n\narc 0 1   # first\narc 0 2\nlabel 0 the root\n"
  in
  match Serial.of_string text with
  | Ok g ->
    Alcotest.(check int) "nodes" 3 (Dag.n_nodes g);
    Alcotest.(check string) "multi-word label" "the root" (Dag.label g 0)
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  let expect_err name text =
    match Serial.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected parse error" name
  in
  expect_err "no nodes line" "arc 0 1\n";
  expect_err "garbage" "nodes 2\nfoo bar\n";
  expect_err "bad arc" "nodes 2\narc 0 x\n";
  expect_err "cycle" "nodes 2\narc 0 1\narc 1 0\n";
  expect_err "duplicate nodes decl" "nodes 2\nnodes 3\n";
  expect_err "label out of range" "nodes 1\nlabel 5 x\n"

let test_schedule_roundtrip () =
  let g = Dag.make_exn ~n:3 ~arcs:[ (0, 1); (0, 2) ] () in
  let s = Ic_dag.Schedule.of_order_exn g [ 0; 2; 1 ] in
  match Serial.schedule_of_string g (Serial.schedule_to_string s) with
  | Ok s' ->
    Alcotest.(check (array int)) "order" (Ic_dag.Schedule.order s)
      (Ic_dag.Schedule.order s')
  | Error e -> Alcotest.fail e

let test_schedule_parse_rejects () =
  let g = Dag.make_exn ~n:3 ~arcs:[ (0, 1); (0, 2) ] () in
  (match Serial.schedule_of_string g "1 0 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "child-before-parent accepted");
  match Serial.schedule_of_string g "0 1 zzz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_file_io () =
  let g = Ic_families.Mesh.out_mesh 4 in
  let path = Filename.temp_file "icsched" ".dag" in
  (match Serial.save_file path g with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Serial.load_file path with
  | Ok g' -> check "file roundtrip" true (Dag.equal g g')
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  match Serial.load_file path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-file error"

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"serialization roundtrips random dags" ~count:100
    QCheck2.Gen.(pair (int_range 0 25) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      match Serial.of_string (Serial.to_string g) with
      | Ok g' -> Dag.equal g g'
      | Error _ -> false)

let () =
  Alcotest.run "ic_dag.Serial"
    [
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_basic;
          Alcotest.test_case "comments and labels" `Quick test_parse_with_comments;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "schedule rejects" `Quick test_schedule_parse_rejects;
          Alcotest.test_case "file io" `Quick test_file_io;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random ] );
    ]
