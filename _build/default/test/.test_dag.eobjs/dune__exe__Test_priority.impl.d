test/test_priority.ml: Alcotest Array Ic_blocks Ic_core Ic_dag Ic_families List
