test/test_serial.ml: Alcotest Filename Ic_dag Ic_families List QCheck2 QCheck_alcotest Random Sys
