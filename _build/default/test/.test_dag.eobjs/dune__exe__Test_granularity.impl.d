test/test_granularity.ml: Alcotest Array Ic_blocks Ic_dag Ic_families Ic_granularity List QCheck2 QCheck_alcotest Random
