test/test_granularity.mli:
