test/test_compose.ml: Alcotest Array Ic_blocks Ic_core Ic_dag List
