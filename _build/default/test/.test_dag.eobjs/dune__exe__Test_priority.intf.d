test/test_priority.mli:
