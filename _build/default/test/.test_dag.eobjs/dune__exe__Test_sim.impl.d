test/test_sim.ml: Alcotest Array Float Fun Hashtbl Ic_dag Ic_families Ic_heuristics Ic_sim List Printf QCheck2 QCheck_alcotest Random
