test/test_linear.ml: Alcotest Array Hashtbl Ic_blocks Ic_core Ic_dag Ic_families List Option QCheck2 QCheck_alcotest Random Result
