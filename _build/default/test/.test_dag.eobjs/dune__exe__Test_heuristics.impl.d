test/test_heuristics.ml: Alcotest Array Ic_dag Ic_families Ic_heuristics List QCheck2 QCheck_alcotest Random
