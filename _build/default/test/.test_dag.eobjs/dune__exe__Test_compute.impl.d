test/test_compute.ml: Alcotest Array Char Complex Float Ic_compute Ic_dag Ic_families List Printf QCheck2 QCheck_alcotest Random Result String
