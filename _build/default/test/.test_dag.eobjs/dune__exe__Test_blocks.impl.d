test/test_blocks.ml: Alcotest Ic_blocks Ic_core Ic_dag Ic_families List Result
