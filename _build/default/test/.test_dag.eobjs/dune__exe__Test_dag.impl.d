test/test_dag.ml: Alcotest Array Fun Ic_dag List QCheck2 QCheck_alcotest Random String
