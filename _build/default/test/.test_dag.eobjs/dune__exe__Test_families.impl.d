test/test_families.ml: Alcotest Array Fun Ic_core Ic_dag Ic_families List QCheck2 QCheck_alcotest Random Result
