test/test_duality.ml: Alcotest Array Ic_blocks Ic_dag List QCheck2 QCheck_alcotest Random
