test/test_schedule.ml: Alcotest Ic_dag List QCheck2 QCheck_alcotest Random
