test/test_auto.ml: Alcotest Ic_compute Ic_core Ic_dag Ic_families List QCheck2 QCheck_alcotest Random Result
