test/test_integration.ml: Alcotest Array Float Ic_batch Ic_blocks Ic_compute Ic_core Ic_dag Ic_families Ic_granularity Ic_heuristics Ic_sim List Printf Result
