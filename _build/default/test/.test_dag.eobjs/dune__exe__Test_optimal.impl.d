test/test_optimal.ml: Alcotest Fun Ic_blocks Ic_dag Ic_families List QCheck2 QCheck_alcotest Random Result
