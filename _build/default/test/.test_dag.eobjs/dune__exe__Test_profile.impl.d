test/test_profile.ml: Alcotest Array Fun Ic_blocks Ic_dag List QCheck2 QCheck_alcotest Random
