test/test_cli.ml: Alcotest Filename Ic_cli Ic_dag List Out_channel Result String Sys
