test/test_batch.ml: Alcotest Array Fun Ic_batch Ic_blocks Ic_dag Ic_families List Printf QCheck2 QCheck_alcotest Random Result
