module Priority = Ic_core.Priority
module Repertoire = Ic_blocks.Repertoire
module Dag = Ic_dag.Dag
module Duality = Ic_dag.Duality

let check = Alcotest.(check bool)
let ep = Priority.of_block
let ( |> ) a b = Priority.has_priority (ep a) (ep b)

(* Every ▷ fact the paper asserts, plus the matching negatives. *)

let test_vee_lambda_facts () =
  check "V |> V" true Repertoire.(vee 2 |> vee 2);
  check "V |> Lambda" true Repertoire.(vee 2 |> lambda 2);
  check "Lambda |> Lambda" true Repertoire.(lambda 2 |> lambda 2);
  check "NOT Lambda |> V" false Repertoire.(lambda 2 |> vee 2)

let test_v3_chain () =
  (* Section 6.2.1: V_3 |> V_3 |> Lambda |> Lambda *)
  check "V3 |> V3" true Repertoire.(vee 3 |> vee 3);
  check "V3 |> Lambda" true Repertoire.(vee 3 |> lambda 2);
  check "chain" true
    (Priority.is_linear_chain
       (List.map ep Repertoire.[ vee 3; vee 3; lambda 2; lambda 2 ]))

let test_w_monotone () =
  (* Section 4: smaller W-dags have priority over larger ones, not conversely *)
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          let expected = s <= t in
          if Repertoire.(w s |> w t) <> expected then
            Alcotest.failf "W_%d |> W_%d should be %b" s t expected)
        [ 1; 2; 3; 4; 5 ])
    [ 1; 2; 3; 4; 5 ]

let test_n_universal () =
  (* Section 6.1: N_s |> N_t for ALL s and t *)
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          if not Repertoire.(n s |> n t) then Alcotest.failf "N_%d |> N_%d" s t)
        [ 1; 2; 3; 4; 5 ])
    [ 1; 2; 3; 4; 5 ];
  check "N_s |> Lambda" true Repertoire.(n 4 |> lambda 2)

let test_matmul_chain () =
  (* Section 7.2: C_4 |> C_4 |> Lambda |> Lambda *)
  check "chain" true
    (Priority.is_linear_chain
       (List.map ep Repertoire.[ cycle 4; cycle 4; lambda 2; lambda 2 ]));
  check "NOT Lambda |> C4" false Repertoire.(lambda 2 |> cycle 4)

let test_butterfly_self () =
  check "B |> B" true Repertoire.(butterfly |> butterfly)

let test_out_tree_over_in_tree () =
  (* Section 3.1: T |> T' for any out-tree T and in-tree T', converse fails *)
  let shape = Ic_families.Out_tree.complete ~arity:2 ~depth:2 in
  let t = Ic_families.Out_tree.dag_of_shape shape in
  let t' = Ic_families.In_tree.dag_of_shape shape in
  let out_ep = (t, Ic_families.Out_tree.schedule t) in
  let in_ep = (t', Ic_families.In_tree.schedule t') in
  check "out-tree |> in-tree" true (Priority.has_priority out_ep in_ep);
  check "NOT in-tree |> out-tree" false (Priority.has_priority in_ep out_ep)

let test_violation_witness () =
  match Priority.violation (ep (Repertoire.lambda 2)) (ep (Repertoire.vee 2)) with
  | Some (x, y) ->
    check "witness in range" true (x >= 0 && x <= 2 && y >= 0 && y <= 1)
  | None -> Alcotest.fail "expected a violation witness"

let test_is_linear_chain_negative () =
  check "broken chain detected" false
    (Priority.is_linear_chain (List.map ep Repertoire.[ lambda 2; vee 2 ]))

(* Theorem 2.3 exhaustively over the repertoire:
   G1 |> G2 iff dual G2 |> dual G1 *)
let test_theorem_2_3_exhaustive () =
  let dual_ep (b : Repertoire.t) =
    (Dag.dual b.dag, Duality.dual_schedule b.dag b.schedule)
  in
  List.iter
    (fun b1 ->
      List.iter
        (fun b2 ->
          let forward = Priority.has_priority (ep b1) (ep b2) in
          let backward = Priority.has_priority (dual_ep b2) (dual_ep b1) in
          if forward <> backward then
            Alcotest.failf "Thm 2.3 violated for %s, %s"
              b1.Repertoire.name b2.Repertoire.name)
        Repertoire.all)
    Repertoire.all

(* the operational meaning of |>: if G1 |> G2, the schedule of the
   disjoint sum G1 + G2 that runs G1's nonsinks first (each part under its
   own IC-optimal schedule) is IC-optimal for the sum *)
let test_priority_governs_sums () =
  let module Compose = Ic_core.Compose in
  let module Linear = Ic_core.Linear in
  let blocks = Repertoire.all in
  let checked = ref 0 in
  List.iter
    (fun (b1 : Repertoire.t) ->
      List.iter
        (fun (b2 : Repertoire.t) ->
          if
            Dag.n_nodes b1.dag + Dag.n_nodes b2.dag <= 14
            && Priority.has_priority (ep b1) (ep b2)
          then begin
            incr checked;
            let c =
              Compose.compose_exn (Compose.of_dag b1.dag)
                (Compose.of_dag b2.dag) ~pairs:[]
            in
            let s = Linear.schedule_exn c [ b1.schedule; b2.schedule ] in
            match Ic_dag.Optimal.is_ic_optimal (Compose.dag c) s with
            | Ok true -> ()
            | Ok false ->
              Alcotest.failf "%s |> %s but %s-first sum schedule not optimal"
                b1.name b2.name b1.name
            | Error _ -> ()
          end)
        blocks)
    blocks;
  check "checked a nontrivial number of pairs" true (!checked > 50)

(* ▷ should be transitive on the repertoire (it is an ordering tool);
   check no counterexample among all triples *)
let test_transitivity_on_repertoire () =
  let blocks = Array.of_list Repertoire.all in
  let n = Array.length blocks in
  let rel = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      rel.(i).(j) <- Priority.has_priority (ep blocks.(i)) (ep blocks.(j))
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        if rel.(i).(j) && rel.(j).(k) && not rel.(i).(k) then
          Alcotest.failf "transitivity fails: %s |> %s |> %s"
            blocks.(i).Repertoire.name blocks.(j).Repertoire.name
            blocks.(k).Repertoire.name
      done
    done
  done

let () =
  Alcotest.run "ic_core.Priority"
    [
      ( "paper facts",
        [
          Alcotest.test_case "V and Lambda" `Quick test_vee_lambda_facts;
          Alcotest.test_case "V_3 chain" `Quick test_v3_chain;
          Alcotest.test_case "W monotone" `Quick test_w_monotone;
          Alcotest.test_case "N universal" `Quick test_n_universal;
          Alcotest.test_case "matmul chain" `Quick test_matmul_chain;
          Alcotest.test_case "butterfly" `Quick test_butterfly_self;
          Alcotest.test_case "out-tree over in-tree" `Quick test_out_tree_over_in_tree;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "violation witness" `Quick test_violation_witness;
          Alcotest.test_case "linear chain negative" `Quick test_is_linear_chain_negative;
          Alcotest.test_case "Theorem 2.3 exhaustive" `Quick test_theorem_2_3_exhaustive;
          Alcotest.test_case "priority governs sums" `Slow test_priority_governs_sums;
          Alcotest.test_case "transitivity" `Slow test_transitivity_on_repertoire;
        ] );
    ]
