module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module B = Ic_batch.Batched

let check = Alcotest.(check bool)

let diamond4 () = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ()

let test_profile_and_validity () =
  let g = diamond4 () in
  let t = { B.batch_size = 1; batches = [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] } in
  check "valid" true (B.is_valid g t);
  Alcotest.(check (array int)) "profile" [| 1; 2; 1; 1; 0 |] (B.profile g t);
  (* parent and child in one batch: invalid *)
  check "intra-batch dependency" false
    (B.is_valid g { B.batch_size = 2; batches = [ [ 0; 1 ]; [ 2; 3 ] ] });
  (* batch smaller than the eligible count: not work-conserving *)
  check "lazy batch" false
    (B.is_valid g { B.batch_size = 2; batches = [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] });
  (* not a partition *)
  check "missing node" false
    (B.is_valid g { B.batch_size = 1; batches = [ [ 0 ]; [ 1 ]; [ 2 ] ] });
  check "duplicated node" false
    (B.is_valid g { B.batch_size = 1; batches = [ [ 0 ]; [ 1 ]; [ 1 ]; [ 3 ] ] })

let test_valid_two_batching () =
  let g = diamond4 () in
  (* batch 1 can only hold the root (one eligible task), then {1,2}, then 3 *)
  let t = { B.batch_size = 2; batches = [ [ 0 ]; [ 1; 2 ]; [ 3 ] ] } in
  check "work-conserving two-batching is valid" true (B.is_valid g t);
  Alcotest.(check (array int)) "profile" [| 1; 2; 1; 0 |] (B.profile g t)

let test_of_schedule () =
  let g = diamond4 () in
  let s = Schedule.of_order_exn g [ 0; 1; 2; 3 ] in
  (match B.of_schedule g s ~batch_size:1 with
  | Ok t -> check "p=1 chop always valid" true (B.is_valid g t)
  | Error e -> Alcotest.fail e);
  match B.of_schedule g s ~batch_size:2 with
  | Error _ -> () (* 0 and 1 land in one batch: 1 depends on 0 *)
  | Ok _ -> Alcotest.fail "expected intra-batch dependency error"

let test_to_schedule_roundtrip () =
  let g = diamond4 () in
  let t = { B.batch_size = 2; batches = [ [ 0 ]; [ 2; 1 ]; [ 3 ] ] } in
  let s = B.to_schedule g t in
  check "flattened schedule valid" true (Schedule.is_valid g (Schedule.order s))

let test_greedy_valid () =
  let g = Ic_families.Mesh.out_mesh 6 in
  List.iter
    (fun p ->
      let t = B.greedy g ~batch_size:p in
      check (Printf.sprintf "greedy p=%d valid" p) true (B.is_valid g t))
    [ 1; 2; 3; 7 ]

let test_optimal_valid_and_dominant () =
  let g = diamond4 () in
  match B.optimal g ~batch_size:2 with
  | Error _ -> Alcotest.fail "too large?"
  | Ok t ->
    check "optimal valid" true (B.is_valid g t);
    let p = B.profile g t in
    (* it must dominate greedy lexicographically; here also pointwise *)
    let gp = B.profile g (B.greedy g ~batch_size:2) in
    check "dominates greedy" true (Profile.dominates p gp || p = gp)

let test_p1_lex_equals_ic_optimal_when_admitting () =
  (* on dags that admit an IC-optimal schedule, the p=1 lex optimum attains
     the pointwise optimum *)
  List.iter
    (fun (name, g) ->
      match (B.e_opt g ~batch_size:1, Ic_dag.Optimal.e_opt g) with
      | Ok lex, Ok opt ->
        if lex <> opt then Alcotest.failf "%s: lex %s <> opt" name "profile"
      | _ -> Alcotest.failf "%s: analysis failed" name)
    [
      ("lambda", Ic_blocks.Lambda.dag 2);
      ("C4", Ic_blocks.Cycle_dag.dag 4);
      ("mesh3", Ic_families.Mesh.out_mesh 3);
      ("butterfly2", Ic_families.Butterfly_net.dag 2);
    ]

let test_p1_on_non_admitting_dag () =
  (* the lex optimum exists even where no IC-optimal schedule does -
     direction 2 of the paper's Section 8 *)
  let g =
    Dag.make_exn ~n:7 ~arcs:[ (0, 2); (0, 4); (1, 2); (1, 4); (2, 6); (3, 5) ] ()
  in
  check "no pointwise optimum" false
    (Result.get_ok (Ic_dag.Optimal.admits_ic_optimal g));
  match B.optimal g ~batch_size:1 with
  | Ok t ->
    check "lex optimum exists and is valid" true (B.is_valid g t);
    let lex = B.profile g t in
    let opt = Result.get_ok (Ic_dag.Optimal.e_opt g) in
    check "lex below the (unattainable) pointwise ceiling" true
      (Profile.dominates opt lex);
    check "lex matches the ceiling at step 1" true (lex.(1) = opt.(1))
  | Error _ -> Alcotest.fail "optimal failed"

let test_greedy_not_always_optimal () =
  (* search a small pool of random dags for a case where greedy's batched
     profile is lexicographically worse; at least one must exist *)
  let rng = Random.State.make [| 2718 |] in
  let lex_less a b =
    (* a <lex b *)
    let rec go i =
      if i >= Array.length a then false
      else if a.(i) < b.(i) then true
      else if a.(i) > b.(i) then false
      else go (i + 1)
    in
    go 0
  in
  let found = ref false in
  for _ = 1 to 120 do
    if not !found then begin
      let g = Ic_dag.Gen.random_dag rng ~n:8 ~arc_probability:0.3 in
      match B.optimal g ~batch_size:2 with
      | Ok t ->
        let go = B.profile g t and gg = B.profile g (B.greedy g ~batch_size:2) in
        if lex_less gg go then found := true
      | Error _ -> ()
    end
  done;
  check "greedy is suboptimal somewhere" true !found

let prop_optimal_dominates_random_batchings =
  QCheck2.Test.make ~name:"lex optimum >=lex any chopped random schedule" ~count:50
    QCheck2.Gen.(pair (int_range 1 10) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      match B.optimal g ~batch_size:2 with
      | Error _ -> true
      | Ok t ->
        let opt = B.profile g t in
        let lex_ge a b =
          let rec go i =
            if i >= Array.length a || i >= Array.length b then true
            else if a.(i) > b.(i) then true
            else if a.(i) < b.(i) then false
            else go (i + 1)
          in
          go 0
        in
        List.for_all
          (fun _ ->
            let s = Ic_dag.Gen.random_schedule rng g in
            match B.of_schedule g s ~batch_size:2 with
            | Error _ -> true
            | Ok other -> lex_ge opt (B.profile g other))
          (List.init 10 Fun.id))

let prop_greedy_valid_random =
  QCheck2.Test.make ~name:"greedy batchings are always valid" ~count:80
    QCheck2.Gen.(pair (int_range 1 20) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      List.for_all (fun p -> B.is_valid g (B.greedy g ~batch_size:p)) [ 1; 2; 4 ])

let () =
  Alcotest.run "ic_batch"
    [
      ( "framework",
        [
          Alcotest.test_case "profile and validity" `Quick test_profile_and_validity;
          Alcotest.test_case "two-batching" `Quick test_valid_two_batching;
          Alcotest.test_case "of_schedule" `Quick test_of_schedule;
          Alcotest.test_case "to_schedule" `Quick test_to_schedule_roundtrip;
          Alcotest.test_case "greedy valid" `Quick test_greedy_valid;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "optimal dominates greedy" `Quick
            test_optimal_valid_and_dominant;
          Alcotest.test_case "p=1 lex = pointwise where admitted" `Quick
            test_p1_lex_equals_ic_optimal_when_admitting;
          Alcotest.test_case "p=1 on a non-admitting dag" `Quick
            test_p1_on_non_admitting_dag;
          Alcotest.test_case "greedy suboptimal somewhere" `Quick
            test_greedy_not_always_optimal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_optimal_dominates_random_batchings; prop_greedy_valid_random ] );
    ]
