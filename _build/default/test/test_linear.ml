module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Optimal = Ic_dag.Optimal
module Compose = Ic_core.Compose
module Linear = Ic_core.Linear
module Blocks = Ic_blocks

let check = Alcotest.(check bool)

let diamond_vl () =
  ( Compose.full_merge_exn
      (Compose.of_dag (Blocks.Vee.dag 2))
      (Compose.of_dag (Blocks.Lambda.dag 2)),
    [ Blocks.Vee.schedule 2; Blocks.Lambda.schedule 2 ] )

let test_theorem_2_1_diamond () =
  let c, sigmas = diamond_vl () in
  let s = Linear.schedule_exn c sigmas in
  (* root, then the two merged middles, then the sink *)
  Alcotest.(check (array int)) "phase order" [| 0; 1; 2; 3 |] (Schedule.order s);
  check "IC-optimal" true (Result.get_ok (Optimal.is_ic_optimal (Compose.dag c) s))

let test_is_linear () =
  let c, sigmas = diamond_vl () in
  check "V |> Lambda chain" true (Linear.is_linear c sigmas);
  (* the reversed composition Lambda ^ V is not |>-linear *)
  let c' =
    Compose.full_merge_exn
      (Compose.of_dag (Blocks.Lambda.dag 2))
      (Compose.of_dag (Blocks.Vee.dag 1))
  in
  check "Lambda |> V fails" false
    (Linear.is_linear c' [ Blocks.Lambda.schedule 2; Blocks.Vee.schedule 1 ])

let test_schedule_checked () =
  let c, sigmas = diamond_vl () in
  (match Linear.schedule_checked c sigmas with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let c' =
    Compose.full_merge_exn
      (Compose.of_dag (Blocks.Lambda.dag 2))
      (Compose.of_dag (Blocks.Vee.dag 1))
  in
  match Linear.schedule_checked c' [ Blocks.Lambda.schedule 2; Blocks.Vee.schedule 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected priority failure"

let test_count_mismatch () =
  let c, _ = diamond_vl () in
  match Linear.schedule c [ Blocks.Vee.schedule 2 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected component count mismatch"

(* The three big decompositions: composite = direct dag, Thm 2.1 schedule is
   IC-optimal, and the chains really are |>-linear. *)

let test_mesh_decomposition () =
  let c, sigmas = Ic_families.Mesh.w_decomposition 5 in
  check "isomorphic to direct mesh" true
    (Ic_dag.Iso.isomorphic (Compose.dag c) (Ic_families.Mesh.out_mesh 5));
  check "|>-linear" true (Linear.is_linear c sigmas);
  let s = Linear.schedule_exn c sigmas in
  check "IC-optimal" true (Result.get_ok (Optimal.is_ic_optimal (Compose.dag c) s))

let test_butterfly_decomposition () =
  let c, sigmas = Ic_families.Butterfly_net.block_decomposition 3 in
  check "isomorphic to direct B_3" true
    (Ic_dag.Iso.isomorphic (Compose.dag c) (Ic_families.Butterfly_net.dag 3));
  check "|>-linear" true (Linear.is_linear c sigmas);
  let s = Linear.schedule_exn c sigmas in
  check "IC-optimal" true (Result.get_ok (Optimal.is_ic_optimal (Compose.dag c) s))

let test_prefix_decomposition () =
  let d = Ic_families.Prefix_dag.n_decomposition 8 in
  let c = d.Ic_families.Prefix_dag.compose in
  let sigmas = d.Ic_families.Prefix_dag.schedules in
  check "isomorphic to direct P_8" true
    (Ic_dag.Iso.isomorphic (Compose.dag c) (Ic_families.Prefix_dag.dag 8));
  check "|>-linear" true (Linear.is_linear c sigmas);
  let s = Linear.schedule_exn c sigmas in
  check "IC-optimal" true (Result.get_ok (Optimal.is_ic_optimal (Compose.dag c) s))

let test_matmul_decomposition () =
  let c = Ic_families.Matmul_dag.compose () in
  let sigmas = Ic_families.Matmul_dag.component_schedules () in
  check "|>-linear (C4 |> C4 |> L |> L |> L |> L)" true (Linear.is_linear c sigmas);
  let s = Linear.schedule_exn c sigmas in
  check "IC-optimal" true (Result.get_ok (Optimal.is_ic_optimal (Compose.dag c) s))

(* The strongest check: Theorem 2.1 on RANDOM |>-linear compositions.
   N-dags satisfy N_s |> N_t for all s and t, so any chain of N-dags with
   any sink-to-source merges is a |>-linear composition; its phase schedule
   must be brute-force IC-optimal every time. *)
let prop_theorem_2_1_random_n_chains =
  QCheck2.Test.make ~name:"Thm 2.1 on random N-dag compositions" ~count:80
    QCheck2.Gen.(pair (int_range 2 4) (int_bound 100_000))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let sizes = List.init k (fun _ -> 1 + Random.State.int rng 3) in
      let composite =
        List.fold_left
          (fun acc s ->
            let next = Compose.of_dag (Blocks.N_dag.dag s) in
            match acc with
            | None -> Some next
            | Some c ->
              let sinks = Dag.sinks (Compose.dag c) in
              let sources = Dag.sources (Compose.dag next) in
              let max_pairs = min (List.length sinks) (List.length sources) in
              let n_pairs = 1 + Random.State.int rng max_pairs in
              (* random distinct picks from both sides *)
              let pick xs n =
                let arr = Array.of_list xs in
                for i = Array.length arr - 1 downto 1 do
                  let j = Random.State.int rng (i + 1) in
                  let tmp = arr.(i) in
                  arr.(i) <- arr.(j);
                  arr.(j) <- tmp
                done;
                Array.to_list (Array.sub arr 0 n)
              in
              let pairs = List.combine (pick sinks n_pairs) (pick sources n_pairs) in
              Some (Compose.compose_exn c next ~pairs))
          None sizes
      in
      let c = Option.get composite in
      let sigmas = List.map (fun s -> Blocks.N_dag.schedule s) sizes in
      if not (Linear.is_linear c sigmas) then false
      else
        let s = Linear.schedule_exn c sigmas in
        match Optimal.is_ic_optimal (Compose.dag c) s with
        | Ok ok -> ok
        | Error (`Too_large _) -> true)

(* merged nodes must be executed exactly once, in the later component's
   phase *)
let test_merged_node_single_execution () =
  let c, sigmas = diamond_vl () in
  let s = Linear.schedule_exn c sigmas in
  let order = Schedule.order s in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then Alcotest.fail "node executed twice";
      Hashtbl.add seen v ())
    order;
  Alcotest.(check int) "everything executed" (Dag.n_nodes (Compose.dag c))
    (Hashtbl.length seen)

let () =
  Alcotest.run "ic_core.Linear"
    [
      ( "Theorem 2.1",
        [
          Alcotest.test_case "diamond schedule" `Quick test_theorem_2_1_diamond;
          Alcotest.test_case "is_linear" `Quick test_is_linear;
          Alcotest.test_case "schedule_checked" `Quick test_schedule_checked;
          Alcotest.test_case "count mismatch" `Quick test_count_mismatch;
          Alcotest.test_case "merged nodes once" `Quick test_merged_node_single_execution;
        ] );
      ( "paper decompositions",
        [
          Alcotest.test_case "mesh = W-dag chain (Fig 6)" `Quick test_mesh_decomposition;
          Alcotest.test_case "butterfly = B blocks (Fig 10)" `Quick
            test_butterfly_decomposition;
          Alcotest.test_case "prefix = N-dag chain (Fig 12)" `Quick
            test_prefix_decomposition;
          Alcotest.test_case "matmul = C4,C4,Lambdas (Fig 17)" `Quick
            test_matmul_decomposition;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_theorem_2_1_random_n_chains ] );
    ]
