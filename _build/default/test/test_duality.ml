module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Duality = Ic_dag.Duality
module Optimal = Ic_dag.Optimal
module Repertoire = Ic_blocks.Repertoire

let check = Alcotest.(check bool)

let test_dual_schedule_lambda () =
  (* dual of Lambda's schedule is a schedule of Vee *)
  let g = Ic_blocks.Lambda.dag 2 in
  let s = Duality.dual_schedule g (Ic_blocks.Lambda.schedule 2) in
  check "valid for the dual" true (Schedule.is_valid (Dag.dual g) (Schedule.order s));
  check "dual relation" true
    (Duality.is_dual_to g ~original:(Ic_blocks.Lambda.schedule 2) ~candidate:s)

let test_is_dual_to_negative () =
  (* W_2's dual (an M-dag): executing the wrong packet order is not dual *)
  let g = Ic_blocks.W_dag.dag 2 in
  let original = Ic_blocks.W_dag.schedule 2 in
  let dual = Dag.dual g in
  (* packets of W_2 under left-to-right: [sink 2]; [sinks 3,4]. A dual
     schedule must run {3,4} (in some order) before 2. *)
  let wrong = Schedule.of_nonsink_order_exn dual [ 2; 3; 4 ] in
  check "wrong packet order rejected" false
    (Duality.is_dual_to g ~original ~candidate:wrong);
  let right = Schedule.of_nonsink_order_exn dual [ 4; 3; 2 ] in
  check "right packet order accepted" true
    (Duality.is_dual_to g ~original ~candidate:right)

(* Theorem 2.2 over the whole repertoire: the dual of each block's
   IC-optimal schedule is IC-optimal for the dual dag *)
let test_theorem_2_2_repertoire () =
  List.iter
    (fun (b : Repertoire.t) ->
      let dual_s = Duality.dual_schedule b.dag b.schedule in
      match Optimal.is_ic_optimal (Dag.dual b.dag) dual_s with
      | Ok true -> ()
      | Ok false -> Alcotest.failf "dual schedule of %s not IC-optimal" b.name
      | Error (`Too_large _) -> Alcotest.failf "%s too large" b.name)
    Repertoire.all

let prop_theorem_2_2_random_admitting =
  (* for random dags that admit an IC-optimal schedule, the dual of the
     witness is IC-optimal for the dual *)
  QCheck2.Test.make ~name:"Thm 2.2 on random admitting dags" ~count:120
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      match Optimal.analyze g with
      | Error _ -> true
      | Ok a -> (
        match a.Optimal.witness with
        | None -> true
        | Some w ->
          (* normalize to nonsinks-first form, which packets require; the
             witness may interleave sinks *)
          let w' =
            Schedule.of_nonsink_order_exn g
              (List.filter
                 (fun v -> not (Dag.is_sink g v))
                 (Array.to_list (Schedule.order w)))
          in
          if Profile.run g w' <> a.Optimal.e_opt then true (* skip: renormalized schedule lost optimality *)
          else
            let dual_s = Duality.dual_schedule g w' in
            (match Optimal.is_ic_optimal (Dag.dual g) dual_s with
            | Ok b -> b
            | Error _ -> true)))

let prop_dual_schedule_valid =
  QCheck2.Test.make ~name:"dual schedule is always a schedule of the dual" ~count:200
    QCheck2.Gen.(pair (int_range 1 20) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      let s = Ic_dag.Gen.random_nonsinks_first_schedule rng g in
      let d = Duality.dual_schedule g s in
      Schedule.is_valid (Dag.dual g) (Schedule.order d)
      && Duality.is_dual_to g ~original:s ~candidate:d)

let () =
  Alcotest.run "ic_dag.Duality"
    [
      ( "dual schedules",
        [
          Alcotest.test_case "Lambda to Vee" `Quick test_dual_schedule_lambda;
          Alcotest.test_case "is_dual_to negative" `Quick test_is_dual_to_negative;
          Alcotest.test_case "Theorem 2.2 over repertoire" `Quick test_theorem_2_2_repertoire;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_theorem_2_2_random_admitting; prop_dual_schedule_valid ] );
    ]
