module Dag = Ic_dag.Dag
module Optimal = Ic_dag.Optimal
module Blocks = Ic_blocks
module Repertoire = Ic_blocks.Repertoire

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_vee_structure () =
  let g = Blocks.Vee.dag 3 in
  check_int "nodes" 4 (Dag.n_nodes g);
  check_int "arcs" 3 (Dag.n_arcs g);
  Alcotest.(check (list int)) "one source" [ 0 ] (Dag.sources g);
  check_int "three sinks" 3 (List.length (Dag.sinks g));
  Alcotest.(check string) "root label" "w" (Dag.label g 0)

let test_lambda_structure () =
  let g = Blocks.Lambda.dag 3 in
  check_int "nodes" 4 (Dag.n_nodes g);
  check_int "three sources" 3 (List.length (Dag.sources g));
  Alcotest.(check (list int)) "one sink" [ 3 ] (Dag.sinks g)

let test_vee_lambda_duality () =
  (* Fig. 1: V and Lambda are dual to one another *)
  check "Lambda = dual V" true
    (Ic_dag.Iso.isomorphic (Blocks.Lambda.dag 2) (Dag.dual (Blocks.Vee.dag 2)));
  check "V_3 dual" true
    (Ic_dag.Iso.isomorphic (Blocks.Lambda.dag 3) (Dag.dual (Blocks.Vee.dag 3)))

let test_w_structure () =
  let g = Blocks.W_dag.dag 3 in
  check_int "sources" 3 (List.length (Dag.sources g));
  check_int "sinks" 4 (List.length (Dag.sinks g));
  check_int "arcs" 6 (Dag.n_arcs g);
  (* shared sinks: sink s+i+1 has parents i and i+1 *)
  check "shared sink" true (Dag.has_arc g 0 4 && Dag.has_arc g 1 4)

let test_m_is_dual_w () =
  check "M_3 = dual W_3" true
    (Ic_dag.Iso.isomorphic (Blocks.M_dag.dag 3) (Dag.dual (Blocks.W_dag.dag 3)))

let test_n_structure () =
  let g = Blocks.N_dag.dag 4 in
  check_int "arcs = 2s-1" 7 (Dag.n_arcs g);
  (* the anchor's first sink has no other parent *)
  check_int "anchor child indegree" 1 (Dag.in_degree g 4);
  check_int "other sinks have two parents" 2 (Dag.in_degree g 5)

let test_cycle_structure () =
  let g = Blocks.Cycle_dag.dag 4 in
  check_int "arcs = 2s" 8 (Dag.n_arcs g);
  List.iter (fun v -> check_int "every sink has 2 parents" 2 (Dag.in_degree g v)) (Dag.sinks g);
  (* the wraparound arc distinguishes C_s from N_s *)
  check "wraparound" true (Dag.has_arc g 3 4)

let test_butterfly_structure () =
  let g = Blocks.Butterfly_block.dag () in
  check_int "nodes" 4 (Dag.n_nodes g);
  check_int "arcs" 4 (Dag.n_arcs g);
  check "B_1 = building block" true
    (Ic_dag.Iso.isomorphic g (Ic_families.Butterfly_net.dag 1));
  check "B self-dual" true (Ic_dag.Iso.isomorphic g (Dag.dual g))

let test_all_block_schedules_optimal () =
  List.iter
    (fun (b : Repertoire.t) ->
      match Optimal.is_ic_optimal b.dag b.schedule with
      | Ok true -> ()
      | Ok false -> Alcotest.failf "%s: schedule not IC-optimal" b.name
      | Error (`Too_large _) -> Alcotest.failf "%s: too large" b.name)
    Repertoire.all

let test_all_blocks_connected () =
  List.iter
    (fun (b : Repertoire.t) ->
      if not (Dag.is_connected b.dag) then Alcotest.failf "%s disconnected" b.name)
    Repertoire.all

let test_w_fanout () =
  (* (1,3)-W-dag: s sources, 2s+1 sinks, consecutive sources share a sink *)
  let g = Blocks.W_dag.dag_fanout ~fanout:3 3 in
  check_int "sources" 3 (List.length (Dag.sources g));
  check_int "sinks" 7 (List.length (Dag.sinks g));
  check_int "arcs" 9 (Dag.n_arcs g);
  (* the shared sink between sources 0 and 1 is sink position 2 *)
  check "shared sink" true (Dag.has_arc g 0 5 && Dag.has_arc g 1 5);
  check "d=2 recovers W_s" true
    (Dag.equal (Blocks.W_dag.dag_fanout ~fanout:2 4) (Blocks.W_dag.dag 4))

let test_w_fanout_priority_monotone () =
  (* the analogue of W_s |> W_t iff s <= t holds at fan-out 3 *)
  let ep s = Ic_core.Priority.of_block (Blocks.Repertoire.w_fanout 3 s) in
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          let expected = s <= t in
          if Ic_core.Priority.has_priority (ep s) (ep t) <> expected then
            Alcotest.failf "W^3_%d |> W^3_%d should be %b" s t expected)
        [ 1; 2; 3; 4 ])
    [ 1; 2; 3; 4 ]

let test_bipartite () =
  let g = Blocks.Bipartite.dag 2 2 in
  check "K(2,2) = B" true (Ic_dag.Iso.isomorphic g (Blocks.Butterfly_block.dag ()));
  let g32 = Blocks.Bipartite.dag 3 2 in
  check_int "arcs" 6 (Dag.n_arcs g32);
  check "K(s,t) dual of K(t,s)" true
    (Ic_dag.Iso.isomorphic (Dag.dual g32) (Blocks.Bipartite.dag 2 3))

let test_degenerate_params () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "V_0" (fun () -> Blocks.Vee.dag 0);
  expect_invalid "Lambda_0" (fun () -> Blocks.Lambda.dag 0);
  expect_invalid "W_0" (fun () -> Blocks.W_dag.dag 0);
  expect_invalid "N_0" (fun () -> Blocks.N_dag.dag 0);
  expect_invalid "C_1" (fun () -> Blocks.Cycle_dag.dag 1)

(* W-dag sources-consecutive characterization: left-to-right is optimal,
   but a middle-first order is not (for s >= 3) *)
let test_w_middle_first_suboptimal () =
  let g = Blocks.W_dag.dag 3 in
  let bad = Ic_dag.Schedule.of_nonsink_order_exn g [ 1; 0; 2 ] in
  check "middle-first suboptimal" false (Result.get_ok (Optimal.is_ic_optimal g bad));
  let reversed = Ic_dag.Schedule.of_nonsink_order_exn g [ 2; 1; 0 ] in
  check "right-to-left also optimal" true
    (Result.get_ok (Optimal.is_ic_optimal g reversed))

let test_n_anchor_matters () =
  (* starting anywhere but the anchor is suboptimal for N_s, s >= 2 *)
  let g = Blocks.N_dag.dag 3 in
  let bad = Ic_dag.Schedule.of_nonsink_order_exn g [ 1; 0; 2 ] in
  check "non-anchor start suboptimal" false
    (Result.get_ok (Optimal.is_ic_optimal g bad))

let () =
  Alcotest.run "ic_blocks"
    [
      ( "structure",
        [
          Alcotest.test_case "Vee" `Quick test_vee_structure;
          Alcotest.test_case "Lambda" `Quick test_lambda_structure;
          Alcotest.test_case "V/Lambda duality" `Quick test_vee_lambda_duality;
          Alcotest.test_case "W-dag" `Quick test_w_structure;
          Alcotest.test_case "M = dual W" `Quick test_m_is_dual_w;
          Alcotest.test_case "N-dag" `Quick test_n_structure;
          Alcotest.test_case "cycle-dag" `Quick test_cycle_structure;
          Alcotest.test_case "butterfly block" `Quick test_butterfly_structure;
          Alcotest.test_case "degenerate parameters" `Quick test_degenerate_params;
          Alcotest.test_case "(1,d)-W-dags" `Quick test_w_fanout;
          Alcotest.test_case "(1,3)-W priority monotone" `Quick
            test_w_fanout_priority_monotone;
          Alcotest.test_case "bipartite blocks" `Quick test_bipartite;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "all repertoire schedules IC-optimal" `Quick
            test_all_block_schedules_optimal;
          Alcotest.test_case "all blocks connected" `Quick test_all_blocks_connected;
          Alcotest.test_case "W middle-first suboptimal" `Quick
            test_w_middle_first_suboptimal;
          Alcotest.test_case "N anchor matters" `Quick test_n_anchor_matters;
        ] );
    ]
