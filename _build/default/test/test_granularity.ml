module Dag = Ic_dag.Dag
module Optimal = Ic_dag.Optimal
module G = Ic_granularity
module Cluster = Ic_granularity.Cluster

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let assert_admits name g =
  match Optimal.admits_ic_optimal g with
  | Ok true -> ()
  | Ok false -> Alcotest.failf "%s: coarse dag admits no IC-optimal schedule" name
  | Error (`Too_large k) -> Alcotest.failf "%s: too large (%d)" name k

(* --- generic clustering --- *)

let test_cluster_basic () =
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] () in
  let t = Cluster.make_exn g ~cluster_of:[| 0; 1; 1; 3 |] in
  check_int "3 coarse nodes" 3 (Dag.n_nodes t.Cluster.coarse);
  check_int "cut arcs" 4 (Cluster.cut_arcs t);
  Alcotest.(check (array int)) "ids compacted" [| 0; 1; 1; 2 |] t.Cluster.cluster_of

let test_cluster_rejects_cycle () =
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] () in
  match Cluster.make g ~cluster_of:[| 0; 1; 2; 0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a cyclic-quotient rejection"

let test_trivial_cluster () =
  let g = Ic_families.Mesh.out_mesh 3 in
  let t = Cluster.trivial g in
  check "coarse = fine" true (Dag.equal g t.Cluster.coarse);
  check_int "all arcs cut" (Dag.n_arcs g) (Cluster.cut_arcs t)

let test_cost_model () =
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] () in
  let t = Cluster.make_exn g ~cluster_of:[| 0; 1; 1; 3 |] in
  Alcotest.(check (array (float 1e-9))) "work" [| 1.0; 2.0; 1.0 |] (Cluster.work t);
  Alcotest.(check (array int)) "out comm" [| 2; 2; 0 |]
    (Cluster.cluster_out_communication t);
  check "max work" true (Cluster.max_work t = 2.0);
  check_int "max comm" 2 (Cluster.max_out_communication t);
  check "weighted work" true
    (Cluster.max_work ~task_work:(fun v -> float_of_int (v + 1)) t = 5.0)

(* --- diamond coarsening (Fig. 3) --- *)

let test_diamond_uniform () =
  let d = Ic_families.Diamond.complete ~arity:2 ~depth:4 in
  let t = G.Coarsen_diamond.uniform d ~depth:2 in
  check "coarse = depth-2 diamond" true
    (Ic_dag.Iso.isomorphic t.Cluster.coarse
       (Ic_families.Diamond.dag (Ic_families.Diamond.complete ~arity:2 ~depth:2)));
  assert_admits "uniform coarse diamond" t.Cluster.coarse

let test_diamond_partial () =
  (* Fig. 3 collapses two subtree pairs; the result is irregular but still
     admits an IC-optimal schedule *)
  let d = Ic_families.Diamond.complete ~arity:2 ~depth:4 in
  let t = G.Coarsen_diamond.coarsen d ~subtree_roots:[ 2; 9 ] in
  check "strictly smaller" true
    (Dag.n_nodes t.Cluster.coarse < Dag.n_nodes t.Cluster.fine);
  assert_admits "partial coarse diamond" t.Cluster.coarse

let test_diamond_overlapping_roots_rejected () =
  let d = Ic_families.Diamond.complete ~arity:2 ~depth:4 in
  match G.Coarsen_diamond.coarsen d ~subtree_roots:[ 1; 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ancestral roots must be rejected"

(* --- mesh coarsening (Fig. 7) --- *)

let test_mesh_coarse_is_mesh () =
  let t = G.Coarsen_mesh.coarsen ~levels:11 ~block:3 in
  check "again an out-mesh" true (G.Coarsen_mesh.is_again_out_mesh t);
  check_int "depth 3 triangle" 10 (Dag.n_nodes t.Cluster.coarse)

let test_mesh_scaling_quadratic_vs_linear () =
  (* the paper's claim: work ~ b², communication ~ b *)
  let rows = G.Coarsen_mesh.scaling ~levels:23 ~blocks:[ 1; 2; 4; 8 ] in
  let work b =
    (List.find (fun r -> r.G.Coarsen_mesh.block = b) rows).G.Coarsen_mesh.max_task_work
  in
  let comm b =
    (List.find (fun r -> r.G.Coarsen_mesh.block = b) rows)
      .G.Coarsen_mesh.max_task_communication
  in
  check "work quadruples when b doubles" true
    (work 2 = 4.0 *. work 1 && work 4 = 4.0 *. work 2 && work 8 = 4.0 *. work 4);
  check "comm doubles when b doubles" true
    (comm 2 = 2 * comm 1 && comm 4 = 2 * comm 2 && comm 8 = 2 * comm 4)

let test_mesh_uneven () =
  (* sliding the dashed lines of Fig. 7 to uneven positions: still a valid
     clustering, but the blocks now carry unequal work *)
  let t = G.Coarsen_mesh.uneven ~levels:9 ~cuts:[ 2; 3; 7 ] in
  check "partition covers the mesh" true
    (Array.length t.Cluster.cluster_of = Dag.n_nodes t.Cluster.fine);
  let works = Cluster.work t in
  let min_w = Array.fold_left min infinity works in
  let max_w = Array.fold_left max 0.0 works in
  check "unequal granularities" true (max_w > min_w);
  (* invalid cuts rejected *)
  (match G.Coarsen_mesh.uneven ~levels:5 ~cuts:[ 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cut at 0 should be rejected");
  match G.Coarsen_mesh.uneven ~levels:5 ~cuts:[ 2; 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate cuts should be rejected"

let test_mesh_coarse_admits () =
  let t = G.Coarsen_mesh.coarsen ~levels:7 ~block:2 in
  assert_admits "coarse mesh" t.Cluster.coarse

(* --- butterfly granularity (Section 5.1) --- *)

let test_butterfly_copies () =
  let lows = G.Coarsen_butterfly.low_copies ~a:2 ~b:1 in
  check_int "2^a low copies" 4 (List.length lows);
  List.iter
    (fun (g, _) ->
      check "low copy iso B_b" true
        (Ic_dag.Iso.isomorphic g (Ic_families.Butterfly_net.dag 1)))
    lows;
  let highs = G.Coarsen_butterfly.high_copies ~a:2 ~b:1 in
  check_int "2^b high copies" 2 (List.length highs);
  List.iter
    (fun (g, _) ->
      check "high copy iso B_a" true
        (Ic_dag.Iso.isomorphic g (Ic_families.Butterfly_net.dag 2)))
    highs

let test_butterfly_two_band () =
  let t = G.Coarsen_butterfly.two_band ~a:1 ~b:1 in
  check "B_2 coarsens to B" true
    (Ic_dag.Iso.isomorphic t.Cluster.coarse (Ic_blocks.Butterfly_block.dag ()));
  let t2 = G.Coarsen_butterfly.two_band ~a:2 ~b:3 in
  check "B_5 coarsens to K(4,8)" true
    (Ic_dag.Iso.isomorphic t2.Cluster.coarse
       (G.Coarsen_butterfly.complete_bipartite 4 8));
  assert_admits "coarse butterfly" t2.Cluster.coarse

let test_complete_bipartite () =
  let g = G.Coarsen_butterfly.complete_bipartite 3 2 in
  check_int "nodes" 5 (Dag.n_nodes g);
  check_int "arcs" 6 (Dag.n_arcs g);
  assert_admits "K(3,2)" g

(* --- DLT coarsening (Fig. 13 right) --- *)

let test_dlt_columns () =
  let t = G.Coarsen_dlt.coarsen_columns 8 in
  check_int "8 columns + 7 in-tree internals" 15 (Dag.n_nodes t.Cluster.coarse);
  assert_admits "coarse L_8" t.Cluster.coarse

let prop_random_tree_uniform_coarsen_admits =
  QCheck2.Test.make ~name:"uniformly coarsened random diamonds admit" ~count:30
    QCheck2.Gen.(pair (int_range 0 5) (int_bound 10_000))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let shape = Ic_families.Out_tree.random rng ~max_internal:(k + 3) ~arity:2 in
      let d = Ic_families.Diamond.symmetric shape in
      let t = G.Coarsen_diamond.uniform d ~depth:1 in
      match Optimal.admits_ic_optimal t.Cluster.coarse with
      | Ok b -> b
      | Error _ -> true)

let () =
  Alcotest.run "ic_granularity"
    [
      ( "clustering",
        [
          Alcotest.test_case "basic" `Quick test_cluster_basic;
          Alcotest.test_case "rejects cycles" `Quick test_cluster_rejects_cycle;
          Alcotest.test_case "trivial" `Quick test_trivial_cluster;
          Alcotest.test_case "cost model" `Quick test_cost_model;
        ] );
      ( "diamonds",
        [
          Alcotest.test_case "uniform (truncate)" `Quick test_diamond_uniform;
          Alcotest.test_case "partial (Fig 3)" `Quick test_diamond_partial;
          Alcotest.test_case "overlap rejected" `Quick
            test_diamond_overlapping_roots_rejected;
        ] );
      ( "meshes",
        [
          Alcotest.test_case "coarse mesh is a mesh" `Quick test_mesh_coarse_is_mesh;
          Alcotest.test_case "uneven cuts" `Quick test_mesh_uneven;
          Alcotest.test_case "quadratic work vs linear comm" `Quick
            test_mesh_scaling_quadratic_vs_linear;
          Alcotest.test_case "coarse mesh admits" `Quick test_mesh_coarse_admits;
        ] );
      ( "butterflies",
        [
          Alcotest.test_case "copies" `Quick test_butterfly_copies;
          Alcotest.test_case "two-band" `Quick test_butterfly_two_band;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
        ] );
      ("DLT", [ Alcotest.test_case "column clustering" `Quick test_dlt_columns ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_tree_uniform_coarsen_admits ] );
    ]
