module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let check = Alcotest.(check bool)

let diamond4 () = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ()

let expect_error name result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

let test_of_order () =
  let g = diamond4 () in
  (match Schedule.of_order g [ 0; 2; 1; 3 ] with
  | Ok s -> Alcotest.(check (array int)) "order kept" [| 0; 2; 1; 3 |] (Schedule.order s)
  | Error e -> Alcotest.fail e);
  expect_error "child before parent" (Schedule.of_order g [ 1; 0; 2; 3 ]);
  expect_error "missing node" (Schedule.of_order g [ 0; 1; 2 ]);
  expect_error "duplicate node" (Schedule.of_order g [ 0; 1; 1; 3 ]);
  expect_error "out of range" (Schedule.of_order g [ 0; 1; 2; 7 ])

let test_of_nonsink_order () =
  let g = diamond4 () in
  match Schedule.of_nonsink_order g [ 0; 2; 1 ] with
  | Ok s ->
    Alcotest.(check (array int)) "sinks appended" [| 0; 2; 1; 3 |] (Schedule.order s);
    check "nonsinks first" true (Schedule.nonsinks_first g s)
  | Error e -> Alcotest.fail e

let test_nonsink_prefix () =
  let g = diamond4 () in
  let s = Schedule.of_order_exn g [ 0; 2; 1; 3 ] in
  Alcotest.(check (list int)) "prefix" [ 0; 2; 1 ] (Schedule.nonsink_prefix g s)

let test_prefix_set () =
  let g = diamond4 () in
  let s = Schedule.of_order_exn g [ 0; 2; 1; 3 ] in
  Alcotest.(check (array bool)) "prefix 2"
    [| true; false; true; false |]
    (Schedule.prefix_set s 2)

let test_natural () =
  let g = diamond4 () in
  check "natural is valid" true (Schedule.is_valid g (Schedule.order (Schedule.natural g)))

let test_nonsinks_first_negative () =
  (* two disjoint arcs: 0->1, 2->3; executing sink 1 before nonsink 2 *)
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (2, 3) ] () in
  let s = Schedule.of_order_exn g [ 0; 1; 2; 3 ] in
  check "sink before nonsink detected" false (Schedule.nonsinks_first g s)

let prop_random_schedule_valid =
  QCheck2.Test.make ~name:"Gen.random_schedule is always a schedule" ~count:200
    QCheck2.Gen.(pair (int_range 1 25) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      let s = Ic_dag.Gen.random_schedule rng g in
      Schedule.is_valid g (Schedule.order s))

let prop_nonsinks_first_generator =
  QCheck2.Test.make ~name:"Gen.random_nonsinks_first_schedule normal form" ~count:200
    QCheck2.Gen.(pair (int_range 1 25) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.3 in
      let s = Ic_dag.Gen.random_nonsinks_first_schedule rng g in
      Schedule.is_valid g (Schedule.order s) && Schedule.nonsinks_first g s)

let () =
  Alcotest.run "ic_dag.Schedule"
    [
      ( "validation",
        [
          Alcotest.test_case "of_order" `Quick test_of_order;
          Alcotest.test_case "of_nonsink_order" `Quick test_of_nonsink_order;
          Alcotest.test_case "nonsink_prefix" `Quick test_nonsink_prefix;
          Alcotest.test_case "prefix_set" `Quick test_prefix_set;
          Alcotest.test_case "natural" `Quick test_natural;
          Alcotest.test_case "nonsinks_first negative" `Quick test_nonsinks_first_negative;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_schedule_valid; prop_nonsinks_first_generator ] );
    ]
