module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Policy = Ic_heuristics.Policy
module Heap = Ic_heuristics.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5; 1; 4; 1; 3; 9; 2 ];
  check_int "size" 7 (Heap.size h);
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain []);
  check "empty after drain" true (Heap.is_empty h)

let test_heap_peek () =
  let h = Heap.create () in
  check "peek empty" true (Heap.peek h = None);
  Heap.push h 2 "b";
  Heap.push h 1 "a";
  check "peek min" true (Heap.peek h = Some (1, "a"));
  check_int "peek does not remove" 2 (Heap.size h)

let test_heap_float_keys () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k ()) [ 3.5; 0.1; 2.2 ];
  check "float min" true (Heap.pop h = Some (0.1, ()))

(* --- policies --- *)

let mesh = Ic_families.Mesh.out_mesh 6

let test_policies_produce_schedules () =
  List.iter
    (fun p ->
      let s = Policy.run p mesh in
      if not (Schedule.is_valid mesh (Schedule.order s)) then
        Alcotest.failf "%s produced an invalid schedule" (Policy.name p))
    Policy.baselines

let test_fifo_is_discovery_order () =
  (* on the mesh, FIFO discovers level by level: it equals wavefront order *)
  let fifo = Policy.run Policy.fifo mesh in
  let wavefront = Ic_families.Mesh.out_schedule 6 in
  Alcotest.(check (array int)) "fifo = wavefront on mesh"
    (Schedule.order wavefront) (Schedule.order fifo)

let test_of_schedule_reproduces () =
  let s = Ic_families.Mesh.out_schedule 6 in
  let again = Policy.run (Policy.of_schedule "theory" s) mesh in
  Alcotest.(check (array int)) "same order" (Schedule.order s) (Schedule.order again)

let test_random_deterministic () =
  let a = Policy.run (Policy.random 42) mesh in
  let b = Policy.run (Policy.random 42) mesh in
  let c = Policy.run (Policy.random 43) mesh in
  Alcotest.(check (array int)) "same seed, same order" (Schedule.order a)
    (Schedule.order b);
  check "different seed differs" true (Schedule.order a <> Schedule.order c)

let test_lifo_differs_from_fifo () =
  let f = Policy.run Policy.fifo mesh and l = Policy.run Policy.lifo mesh in
  check "differ" true (Schedule.order f <> Schedule.order l)

let test_critical_path_prefers_deep () =
  (* on a dag with a long chain and a short branch, critical-path starts
     with the chain's head *)
  let g =
    Dag.make_exn ~n:5 ~arcs:[ (0, 2); (2, 3); (3, 4); (1, 4) ] ()
    (* chain 0-2-3-4 plus source 1 *)
  in
  let s = Policy.run Policy.critical_path g in
  check_int "chain head first" 0 (Schedule.order s).(0)

let test_max_out_degree_greedy () =
  let g = Dag.make_exn ~n:5 ~arcs:[ (0, 2); (1, 2); (1, 3); (1, 4) ] () in
  let s = Policy.run Policy.max_out_degree g in
  check_int "fan-out source first" 1 (Schedule.order s).(0)

let test_min_depth_breadth_first () =
  let g = Ic_families.Out_tree.dag ~arity:2 ~depth:3 in
  let s = Policy.run Policy.min_depth g in
  let depth = Dag.depth g in
  let order = Schedule.order s in
  let ok = ref true in
  for i = 0 to Array.length order - 2 do
    if depth.(order.(i)) > depth.(order.(i + 1)) then ok := false
  done;
  check "depth never decreases" true !ok

let test_of_schedule_mismatch () =
  let s = Ic_families.Mesh.out_schedule 3 in
  match Policy.run (Policy.of_schedule "bad" s) mesh with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size mismatch rejection"

let prop_policies_always_valid =
  QCheck2.Test.make ~name:"all baselines yield valid schedules on random dags"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 30) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.25 in
      List.for_all
        (fun p -> Schedule.is_valid g (Schedule.order (Policy.run p g)))
        Policy.baselines)

let () =
  Alcotest.run "ic_heuristics"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "float keys" `Quick test_heap_float_keys;
        ] );
      ( "policies",
        [
          Alcotest.test_case "produce schedules" `Quick test_policies_produce_schedules;
          Alcotest.test_case "fifo = discovery order" `Quick test_fifo_is_discovery_order;
          Alcotest.test_case "of_schedule reproduces" `Quick test_of_schedule_reproduces;
          Alcotest.test_case "random is seeded" `Quick test_random_deterministic;
          Alcotest.test_case "lifo differs" `Quick test_lifo_differs_from_fifo;
          Alcotest.test_case "critical path" `Quick test_critical_path_prefers_deep;
          Alcotest.test_case "max out-degree" `Quick test_max_out_degree_greedy;
          Alcotest.test_case "min depth" `Quick test_min_depth_breadth_first;
          Alcotest.test_case "of_schedule size mismatch" `Quick test_of_schedule_mismatch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_policies_always_valid ] );
    ]
