module Dag = Ic_dag.Dag
module Optimal = Ic_dag.Optimal
module Auto = Ic_core.Auto
module F = Ic_families

let check = Alcotest.(check bool)

let plan_exn g =
  match Auto.schedule g with
  | Ok p -> p
  | Error msg -> Alcotest.failf "auto-scheduling failed: %s" msg

let assert_auto_optimal name g =
  let p = plan_exn g in
  match Optimal.is_ic_optimal g p.Auto.schedule with
  | Ok true -> p
  | Ok false -> Alcotest.failf "%s: auto schedule not IC-optimal" name
  | Error (`Too_large _) ->
    (* fall back to dominance over random schedules *)
    let rng = Random.State.make [| 1 |] in
    let prof = Ic_dag.Profile.run g p.Auto.schedule in
    for _ = 1 to 50 do
      if
        not
          (Ic_dag.Profile.dominates prof
             (Ic_dag.Profile.run g (Ic_dag.Gen.random_schedule rng g)))
      then Alcotest.failf "%s: auto schedule dominated by a random one" name
    done;
    p

let test_is_levelled () =
  check "mesh levelled" true (Auto.is_levelled (F.Mesh.out_mesh 5));
  check "butterfly levelled" true (Auto.is_levelled (F.Butterfly_net.dag 3));
  check "complete diamond levelled" true
    (Auto.is_levelled (F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:3)));
  (* an arc skipping a level *)
  let g = Dag.make_exn ~n:3 ~arcs:[ (0, 1); (1, 2); (0, 2) ] () in
  check "transitive arc not levelled" false (Auto.is_levelled g)

let test_auto_mesh () =
  let p = assert_auto_optimal "mesh" (F.Mesh.out_mesh 5) in
  check "certified linear" true (p.Auto.certificate = `Linear);
  (* blocks are the W-dags of Fig. 6 *)
  let names = List.map (fun b -> b.Auto.name) p.Auto.blocks in
  Alcotest.(check (list string)) "W-dag chain"
    [ "V_2"; "W_2"; "W_3"; "W_4"; "W_5" ] names

let test_auto_butterfly () =
  let p = assert_auto_optimal "butterfly" (F.Butterfly_net.dag 3) in
  check "certified linear" true (p.Auto.certificate = `Linear);
  check "all blocks are K(2,2)" true
    (List.for_all (fun b -> b.Auto.name = "K(2,2)") p.Auto.blocks);
  Alcotest.(check int) "12 blocks" 12 (List.length p.Auto.blocks)

let test_auto_prefix () =
  let p = assert_auto_optimal "prefix" (F.Prefix_dag.dag 8) in
  check "certified linear" true (p.Auto.certificate = `Linear);
  let names = List.map (fun b -> b.Auto.name) p.Auto.blocks in
  Alcotest.(check (list string)) "Fig 12 N-dags"
    [ "N_8"; "N_4"; "N_4"; "N_2"; "N_2"; "N_2"; "N_2" ] names

let test_auto_matmul () =
  (* the headline: M is auto-scheduled without knowing its decomposition *)
  let p = assert_auto_optimal "matmul" (F.Matmul_dag.dag ()) in
  check "certified linear" true (p.Auto.certificate = `Linear);
  let names = List.map (fun b -> b.Auto.name) p.Auto.blocks in
  Alcotest.(check (list string)) "C4 C4 then the Lambdas"
    [ "C_4"; "C_4"; "L_2"; "L_2"; "L_2"; "L_2" ] names

let test_auto_diamond_and_ldag () =
  ignore (assert_auto_optimal "diamond" (F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:3)));
  ignore (assert_auto_optimal "L_8" (F.Dlt_dag.dag (F.Dlt_dag.l_dag 8)));
  ignore (assert_auto_optimal "sorting net" (Ic_compute.Sorting.network_dag 2))

let test_auto_in_tree () =
  (* complete in-tree: blocks are Lambdas; chain certified *)
  let p = assert_auto_optimal "in-tree" (F.In_tree.dag ~arity:2 ~depth:3) in
  check "lambda blocks" true
    (List.for_all (fun b -> b.Auto.name = "L_2") p.Auto.blocks)

let test_auto_rejects_unlevelled () =
  let rng = Random.State.make [| 5 |] in
  let shape = F.Out_tree.random rng ~max_internal:6 ~arity:2 in
  let d = F.Diamond.symmetric shape in
  match Auto.schedule (F.Diamond.dag d) with
  | Error _ -> () (* irregular diamonds are not levelled *)
  | Ok _ ->
    (* unless the random shape happened to be complete — accept either *)
    ()

let test_auto_unknown_block_fallback () =
  (* a bipartite block that matches no template: 3 sources, 3 sinks, 7 arcs
     (between N_3's 5 and C_3's 6... make 7 by adding two extra arcs) *)
  let g =
    Dag.make_exn ~n:6
      ~arcs:[ (0, 3); (0, 4); (1, 3); (1, 4); (1, 5); (2, 4); (2, 5) ]
      ()
  in
  let p = plan_exn g in
  check "fallback name" true
    (List.exists (fun b -> b.Auto.name = "bipartite(6)") p.Auto.blocks);
  check "still optimal" true (Result.get_ok (Optimal.is_ic_optimal g p.Auto.schedule))

let prop_auto_on_random_levelled =
  (* auto always yields valid schedules on random levelled dags; when the
     dag admits an IC-optimal schedule and the certificate says Linear, the
     schedule must be IC-optimal *)
  QCheck2.Test.make ~name:"auto on random layered dags" ~count:60
    QCheck2.Gen.(pair (int_range 2 4) (int_bound 10_000))
    (fun (layers, seed) ->
      let rng = Random.State.make [| seed |] in
      let g =
        Ic_dag.Gen.random_layered_dag rng ~layers ~width:3 ~arc_probability:0.4
      in
      if not (Auto.is_levelled g) then true
      else
        match Auto.schedule g with
        | Error _ -> true (* e.g. a block with no optimal schedule *)
        | Ok p -> (
          Ic_dag.Schedule.is_valid g (Ic_dag.Schedule.order p.Auto.schedule)
          &&
          match p.Auto.certificate with
          | `Unverified -> true
          | `Linear -> (
            match Optimal.is_ic_optimal g p.Auto.schedule with
            | Ok ok -> ok
            | Error _ -> true)))

let () =
  Alcotest.run "ic_core.Auto"
    [
      ( "decomposition",
        [
          Alcotest.test_case "is_levelled" `Quick test_is_levelled;
          Alcotest.test_case "mesh -> W chain" `Quick test_auto_mesh;
          Alcotest.test_case "butterfly -> B blocks" `Quick test_auto_butterfly;
          Alcotest.test_case "prefix -> N chain" `Quick test_auto_prefix;
          Alcotest.test_case "matmul -> C4/Lambda" `Quick test_auto_matmul;
          Alcotest.test_case "diamond, L_8, sort net" `Quick test_auto_diamond_and_ldag;
          Alcotest.test_case "in-tree -> Lambdas" `Quick test_auto_in_tree;
          Alcotest.test_case "unlevelled rejected" `Quick test_auto_rejects_unlevelled;
          Alcotest.test_case "unknown block fallback" `Quick
            test_auto_unknown_block_fallback;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_auto_on_random_levelled ] );
    ]
