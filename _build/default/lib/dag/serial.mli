(** Plain-text serialization of dags and schedules, so the CLI can operate
    on user-supplied computations.

    Format (line-oriented, ['#'] comments, blank lines ignored):

    {v
    # a 4-node fork-join
    nodes 4
    label 0 load      # optional
    arc 0 1
    arc 0 2
    arc 1 3
    arc 2 3
    v} *)

val to_string : Dag.t -> string
val of_string : string -> (Dag.t, string) result

val schedule_to_string : Schedule.t -> string
(** Space-separated node ids on one line. *)

val schedule_of_string : Dag.t -> string -> (Schedule.t, string) result

val load_file : string -> (Dag.t, string) result
val save_file : string -> Dag.t -> (unit, string) result
