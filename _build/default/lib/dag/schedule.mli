(** Schedules for computation-dags.

    A schedule is a rule for selecting which ELIGIBLE node to execute at each
    step (Section 2.2). Since eligibility only requires all parents to have
    been executed, the schedules of a dag are exactly its topological orders.
    A value of type {!t} is a validated execution order of {e all} nodes of a
    particular dag. *)

type t

val order : t -> int array
(** The execution order. Do not mutate. *)

val length : t -> int

val of_order : Dag.t -> int list -> (t, string) result
(** [of_order g nodes] validates that [nodes] is a permutation of [g]'s nodes
    in which every node appears after all of its parents. *)

val of_order_exn : Dag.t -> int list -> t
val of_array_exn : Dag.t -> int array -> t

val of_nonsink_order : Dag.t -> int list -> (t, string) result
(** [of_nonsink_order g nonsinks] builds a full schedule from an order on the
    nonsinks of [g] by appending the sinks (in ascending node order, which is
    always valid once every nonsink has been executed). This is the form in
    which the theory states its schedules: "finally execute all sinks in any
    order" (Theorem 2.1). *)

val of_nonsink_order_exn : Dag.t -> int list -> t

val natural : Dag.t -> t
(** The topological order returned by {!Dag.topological_order}. *)

val nonsink_prefix : Dag.t -> t -> int list
(** Nonsinks of the dag in the order the schedule executes them. *)

val prefix_set : t -> int -> bool array
(** [prefix_set s t] marks the first [t] executed nodes. *)

val nonsinks_first : Dag.t -> t -> bool
(** Does the schedule execute every nonsink before any sink (the normal form
    the theory works in)? *)

val is_valid : Dag.t -> int array -> bool
(** Does this array denote a schedule of the dag? *)

val pp : Dag.t -> Format.formatter -> t -> unit
