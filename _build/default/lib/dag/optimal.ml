type analysis = {
  e_opt : int array;
  n_ideals : int;
  admits : bool;
  witness : Schedule.t option;
}

exception Too_large of int

(* Per-node parent bitmasks: node v is eligible in ideal [s] iff v is not in
   [s] and all its parents are. *)
let pred_masks g =
  Array.init (Dag.n_nodes g) (fun v ->
      Array.fold_left (fun m p -> m lor (1 lsl p)) 0 (Dag.pred g v))

let eligible_nodes g pmask s =
  let n = Dag.n_nodes g in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if s land (1 lsl v) = 0 && s land pmask.(v) = pmask.(v) then acc := v :: !acc
  done;
  !acc

let eligible_count g pmask s =
  let n = Dag.n_nodes g in
  let c = ref 0 in
  for v = 0 to n - 1 do
    if s land (1 lsl v) = 0 && s land pmask.(v) = pmask.(v) then incr c
  done;
  !c

(* Enumerate ideals level by level (level t = ideals of size t), calling
   [f t s e] on each, keeping only one level in memory. *)
let iter_levels g pmask ~max_ideals f =
  let n = Dag.n_nodes g in
  let seen_total = ref 0 in
  let current = ref (Hashtbl.create 64) in
  Hashtbl.replace !current 0 ();
  for t = 0 to n do
    let next = Hashtbl.create (Hashtbl.length !current * 2) in
    Hashtbl.iter
      (fun s () ->
        incr seen_total;
        if !seen_total > max_ideals then raise (Too_large !seen_total);
        f t s (eligible_count g pmask s);
        if t < n then
          List.iter
            (fun v -> Hashtbl.replace next (s lor (1 lsl v)) ())
            (eligible_nodes g pmask s))
      !current;
    current := next
  done

let analyze ?(max_ideals = 2_000_000) g =
  let n = Dag.n_nodes g in
  if n > 61 then Error (`Too_large n)
  else
    let pmask = pred_masks g in
    try
      (* Pass 1: E_opt per level. *)
      let e_opt = Array.make (n + 1) min_int in
      let n_ideals = ref 0 in
      iter_levels g pmask ~max_ideals (fun t _s e ->
          incr n_ideals;
          if e > e_opt.(t) then e_opt.(t) <- e);
      (* Pass 2: forward-filtered chain of pointwise-optimal ideals. Each
         level keeps the optimal ideals reachable from the previous level's
         survivors, with a back-pointer for witness reconstruction. *)
      let levels = Array.make (n + 1) (Hashtbl.create 1) in
      let start = Hashtbl.create 1 in
      if Profile.of_set g ~executed:(Array.make n false) = e_opt.(0) then
        Hashtbl.replace start 0 (-1, -1);
      levels.(0) <- start;
      for t = 0 to n - 1 do
        let next = Hashtbl.create (Hashtbl.length levels.(t) * 2) in
        Hashtbl.iter
          (fun s (_, _) ->
            List.iter
              (fun v ->
                let s' = s lor (1 lsl v) in
                if
                  (not (Hashtbl.mem next s'))
                  && eligible_count g pmask s' = e_opt.(t + 1)
                then Hashtbl.replace next s' (s, v))
              (eligible_nodes g pmask s))
          levels.(t);
        levels.(t + 1) <- next
      done;
      let admits = Hashtbl.length levels.(n) > 0 in
      let witness =
        if not admits then None
        else begin
          (* walk back-pointers from the (unique) full ideal *)
          let order = Array.make n (-1) in
          let s = ref ((1 lsl n) - 1) in
          (try
             for t = n downto 1 do
               let prev, v = Hashtbl.find levels.(t) !s in
               order.(t - 1) <- v;
               s := prev
             done
           with Not_found -> assert false);
          Some (Schedule.of_array_exn g order)
        end
      in
      Ok { e_opt; n_ideals = !n_ideals; admits; witness }
    with Too_large k -> Error (`Too_large k)

let e_opt ?max_ideals g =
  Result.map (fun a -> a.e_opt) (analyze ?max_ideals g)

let is_ic_optimal ?max_ideals g s =
  Result.map
    (fun opt -> Profile.run g s = opt)
    (e_opt ?max_ideals g)

let admits_ic_optimal ?max_ideals g =
  Result.map (fun a -> a.admits) (analyze ?max_ideals g)
