let run g s =
  let n = Dag.n_nodes g in
  let order = Schedule.order s in
  let remaining = Array.init n (fun v -> Dag.in_degree g v) in
  let profile = Array.make (n + 1) 0 in
  (* initially the eligible nodes are exactly the sources *)
  let eligible = ref 0 in
  for v = 0 to n - 1 do
    if remaining.(v) = 0 then incr eligible
  done;
  profile.(0) <- !eligible;
  Array.iteri
    (fun t v ->
      decr eligible;
      Array.iter
        (fun w ->
          remaining.(w) <- remaining.(w) - 1;
          if remaining.(w) = 0 then incr eligible)
        (Dag.succ g v);
      profile.(t + 1) <- !eligible)
    order;
  profile

let check_nonsinks_first g s =
  let order = Schedule.order s in
  let seen_sink = ref false in
  Array.iter
    (fun v ->
      if Dag.is_sink g v then seen_sink := true
      else if !seen_sink then
        invalid_arg "Profile: schedule does not execute all nonsinks before sinks")
    order

let nonsink_profile g s =
  check_nonsinks_first g s;
  let full = run g s in
  Array.sub full 0 (Dag.n_nonsinks g + 1)

let of_set g ~executed =
  let n = Dag.n_nodes g in
  if Array.length executed <> n then invalid_arg "Profile.of_set: length mismatch";
  let count = ref 0 in
  for v = 0 to n - 1 do
    if (not executed.(v)) && Array.for_all (fun p -> executed.(p)) (Dag.pred g v)
    then incr count
  done;
  !count

let packets g s =
  check_nonsinks_first g s;
  let n = Dag.n_nodes g in
  let k = Dag.n_nonsinks g in
  let order = Schedule.order s in
  let remaining = Array.init n (fun v -> Dag.in_degree g v) in
  let packets = Array.make k [] in
  for t = 0 to k - 1 do
    let v = order.(t) in
    let made = ref [] in
    Array.iter
      (fun w ->
        remaining.(w) <- remaining.(w) - 1;
        if remaining.(w) = 0 then made := w :: !made)
      (Dag.succ g v);
    packets.(t) <- List.rev !made
  done;
  packets

let dominates p q =
  Array.length p = Array.length q
  && (let ok = ref true in
      Array.iteri (fun t x -> if x < q.(t) then ok := false) p;
      !ok)

let strictly_dominates p q =
  dominates p q
  && (let strict = ref false in
      Array.iteri (fun t x -> if x > q.(t) then strict := true) p;
      !strict)

let pp ppf p =
  Format.fprintf ppf "@[<hov 2>[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.pp_print_int ppf x)
    p;
  Format.fprintf ppf "]@]"
