(** Exact IC-optimality analysis by exhaustive ideal enumeration.

    The executable prefixes of a dag's schedules are exactly its {e ideals}
    (predecessor-closed node sets), and the eligibility count after executing
    a prefix depends only on the prefix as a set. Hence the pointwise-best
    profile any schedule can achieve is

    [E_opt(t) = max { E(S) : S ideal, |S| = t }],

    a schedule [Σ] is IC-optimal iff its profile equals [E_opt] everywhere,
    and the dag admits an IC-optimal schedule iff some chain of ideals
    [∅ = S_0 ⊂ S_1 ⊂ ... ⊂ S_N] is pointwise optimal. This module computes
    all three by explicit enumeration, suitable for dags of up to roughly 30
    nodes (and far larger for narrow dags); it is the ground truth against
    which every constructive schedule in this library is tested.

    Dags of more than 61 nodes are rejected with [`Too_large] (ideals are
    represented as native-int bitmasks), as are enumerations that would visit
    more than [max_ideals] ideals. *)

type analysis = {
  e_opt : int array;  (** length [n_nodes + 1] *)
  n_ideals : int;  (** total ideals enumerated *)
  admits : bool;  (** does the dag admit an IC-optimal schedule? *)
  witness : Schedule.t option;  (** an IC-optimal schedule, when [admits] *)
}

val analyze : ?max_ideals:int -> Dag.t -> (analysis, [ `Too_large of int ]) result
(** Full analysis. [max_ideals] defaults to [2_000_000]. *)

val e_opt : ?max_ideals:int -> Dag.t -> (int array, [ `Too_large of int ]) result

val is_ic_optimal :
  ?max_ideals:int -> Dag.t -> Schedule.t -> (bool, [ `Too_large of int ]) result
(** Does this schedule's profile meet [E_opt] at every step? *)

val admits_ic_optimal :
  ?max_ideals:int -> Dag.t -> (bool, [ `Too_large of int ]) result
