(** Duality-based scheduling tools (Section 2.3.2).

    The dual of a dag [G] is obtained by reversing all arcs ({!Dag.dual}).
    Each nonsink execution of a schedule [Σ] for [G] renders a "packet" of
    nonsources eligible; a schedule for the dual is {e dual to} [Σ] when it
    executes those packets in reverse order (in any within-packet order),
    followed by the dual's sinks. Theorem 2.2: if [Σ] is IC-optimal for [G],
    every schedule dual to [Σ] is IC-optimal for [dual G]. *)

val dual_schedule : Dag.t -> Schedule.t -> Schedule.t
(** [dual_schedule g s] is a schedule for [Dag.dual g] that is dual to [s]
    (within-packet order: ascending node id; trailing sinks of the dual in
    ascending order). [s] must execute all nonsinks of [g] before any sink. *)

val is_dual_to : Dag.t -> original:Schedule.t -> candidate:Schedule.t -> bool
(** Does [candidate] (a schedule of [Dag.dual g]) execute the packets of
    [original] in reverse packet order, sinks last? *)
