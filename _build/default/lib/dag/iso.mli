(** Backtracking dag-isomorphism test (small dags only).

    Used by tests that check structural claims such as "the coarsened
    butterfly [B_{a+b}] is a copy of [B_a]" (Section 5.1) or that a
    composition has the expected shape. Exponential in the worst case but
    fast in practice on the paper's families thanks to degree/depth
    signatures. *)

val isomorphic : Dag.t -> Dag.t -> bool

val find_isomorphism : Dag.t -> Dag.t -> int array option
(** A node bijection [phi] with [u -> v] in [g1] iff [phi u -> phi v] in
    [g2], when one exists. *)
