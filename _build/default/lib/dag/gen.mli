(** Seeded random generators for dags and schedules.

    Used by the property-based tests and the sampled optimality checks. All
    randomness is drawn from an explicit [Random.State.t] so experiments are
    reproducible. *)

val random_dag :
  Random.State.t -> n:int -> arc_probability:float -> Dag.t
(** Erdős–Rényi-style layered dag: every pair [(u, v)] with [u < v] becomes
    an arc with the given probability (so node order is a topological
    order). *)

val random_layered_dag :
  Random.State.t -> layers:int -> width:int -> arc_probability:float -> Dag.t
(** Nodes arranged in [layers] layers of [width] nodes; candidate arcs go
    from each layer to the next, kept with the given probability; every
    non-first-layer node is guaranteed at least one parent, so the dag is
    "levelled" like the paper's families. *)

val random_schedule : Random.State.t -> Dag.t -> Schedule.t
(** Uniform greedy schedule: repeatedly executes a uniformly-random eligible
    node. (Not uniform over topological orders, but covers them all.) *)

val random_nonsinks_first_schedule : Random.State.t -> Dag.t -> Schedule.t
(** Like {!random_schedule} but never executes a sink while a nonsink is
    eligible — the normal form used by the theory. *)
