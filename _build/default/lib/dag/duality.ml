let dual_schedule g s =
  let packets = Profile.packets g s in
  let dual = Dag.dual g in
  let reversed =
    Array.fold_left (fun acc packet -> packet :: acc) [] packets
    |> List.concat
  in
  Schedule.of_nonsink_order_exn dual reversed

let is_dual_to g ~original ~candidate =
  let dual = Dag.dual g in
  let packets = Profile.packets g original in
  (* expected nonsink order of the dual: packets reversed, any order within
     a packet *)
  let candidate_nonsinks = Schedule.nonsink_prefix dual candidate in
  let rec consume packets_rev order =
    match packets_rev with
    | [] -> order = []
    | packet :: rest ->
      let k = List.length packet in
      let taken = List.filteri (fun i _ -> i < k) order in
      let remaining = List.filteri (fun i _ -> i >= k) order in
      List.sort compare taken = List.sort compare packet
      && consume rest remaining
  in
  let packets_rev = Array.fold_left (fun acc p -> p :: acc) [] packets in
  Schedule.nonsinks_first dual candidate && consume packets_rev candidate_nonsinks
