lib/dag/serial.ml: Array Buffer Dag In_channel List Out_channel Printf Result Schedule String
