lib/dag/iso.mli: Dag
