lib/dag/profile.ml: Array Dag Format List Schedule
