lib/dag/dag.ml: Array Buffer Format Hashtbl List Option Printf Queue Stack
