lib/dag/schedule.mli: Dag Format
