lib/dag/profile.mli: Dag Format Schedule
