lib/dag/optimal.ml: Array Dag Hashtbl List Profile Result Schedule
