lib/dag/gen.ml: Array Dag Fun List Random Schedule
