lib/dag/iso.ml: Array Dag Hashtbl List Option
