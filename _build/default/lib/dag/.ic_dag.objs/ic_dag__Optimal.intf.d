lib/dag/optimal.mli: Dag Schedule
