lib/dag/serial.mli: Dag Schedule
