lib/dag/duality.ml: Array Dag List Profile Schedule
