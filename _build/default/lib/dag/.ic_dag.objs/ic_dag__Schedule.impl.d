lib/dag/schedule.ml: Array Dag Format List Printf
