lib/dag/gen.mli: Dag Random Schedule
