lib/dag/duality.mli: Dag Schedule
