(** Eligibility profiles: the quality measure of IC-Scheduling Theory.

    The quality of an execution is the number of ELIGIBLE nodes after each
    node-execution — the more, the better (Section 2.2). For a schedule [Σ]
    of a dag with [N] nodes, the profile is the vector
    [E_Σ(0), E_Σ(1), ..., E_Σ(N)] where [E_Σ(t)] counts the nodes that are
    eligible (all parents executed, itself unexecuted) after the first [t]
    executions. *)

val run : Dag.t -> Schedule.t -> int array
(** Full profile, length [n_nodes + 1]. [O(n + m)]. *)

val nonsink_profile : Dag.t -> Schedule.t -> int array
(** Profile restricted to the nonsink prefix of the schedule: entry [x] is
    the eligibility count after the first [x] {e nonsink} executions of the
    schedule, for [x] in [0 .. n_nonsinks]. This is the quantity used by the
    priority relation (eq. 2.1); it requires (and checks) that the schedule
    executes all nonsinks before any sink, the normal form used throughout
    the theory. Raises [Invalid_argument] otherwise. *)

val of_set : Dag.t -> executed:bool array -> int
(** Eligibility count of an executed set (which need not be an ideal; nodes
    with unexecuted parents are simply not eligible). *)

val packets : Dag.t -> Schedule.t -> int list array
(** [packets g s] has one entry per execution step [j] of the schedule's
    {e nonsink} prefix: the list of nonsources rendered eligible by that
    execution (the "packets" of Section 2.3.2; possibly empty). Nonsources
    that are eligible from the start do not occur (there are none: a
    nonsource has a parent). Requires nonsinks-first normal form. *)

val dominates : int array -> int array -> bool
(** [dominates p q] iff the profiles have equal length and [p.(t) >= q.(t)]
    for every [t]. *)

val strictly_dominates : int array -> int array -> bool
(** {!dominates} and strictly greater at some step. *)

val pp : Format.formatter -> int array -> unit
