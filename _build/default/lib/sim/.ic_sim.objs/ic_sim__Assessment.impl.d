lib/sim/assessment.ml: Array Format Ic_dag Ic_heuristics List Simulator Workload
