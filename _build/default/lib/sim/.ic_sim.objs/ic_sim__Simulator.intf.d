lib/sim/simulator.mli: Format Ic_dag Ic_heuristics Workload
