lib/sim/workload.ml: Array Ic_dag Random
