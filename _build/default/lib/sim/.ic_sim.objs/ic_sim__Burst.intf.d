lib/sim/burst.mli: Ic_dag
