lib/sim/simulator.ml: Array Float Format Ic_dag Ic_heuristics List Queue Random
