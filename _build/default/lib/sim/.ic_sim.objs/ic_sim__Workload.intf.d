lib/sim/workload.mli: Ic_dag
