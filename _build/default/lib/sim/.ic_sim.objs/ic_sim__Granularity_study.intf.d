lib/sim/granularity_study.mli:
