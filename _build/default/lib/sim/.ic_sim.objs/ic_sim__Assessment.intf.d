lib/sim/assessment.mli: Format Ic_dag Ic_heuristics Simulator Workload
