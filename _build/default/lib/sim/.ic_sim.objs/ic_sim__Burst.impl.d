lib/sim/burst.ml: Array Ic_dag List
