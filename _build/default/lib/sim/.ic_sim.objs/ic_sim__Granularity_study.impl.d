lib/sim/granularity_study.ml: Array Ic_core Ic_dag Ic_families Ic_granularity Ic_heuristics List Simulator Workload
