type t = Ic_dag.Dag.t -> int -> float

let unit _g _v = 1.0
let constant c _g _v = c

let random_uniform ~seed ~lo ~hi _g v =
  let rng = Random.State.make [| seed; v |] in
  lo +. Random.State.float rng (hi -. lo)

let by_height scale g =
  let height = Ic_dag.Dag.height g in
  fun v -> 1.0 +. (scale *. float_of_int height.(v))
