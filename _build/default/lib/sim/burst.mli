(** Batch-request service: scenario (2) of Section 2.2.

    "If the IC Server receives a batch of requests for tasks at (roughly)
    the same time, then having more ELIGIBLE tasks available allows the
    Server to satisfy more requests, thereby increasing parallelism."

    This module quantifies that directly from eligibility profiles: if a
    burst of [r] requests arrives after each execution step, the server can
    serve [min(r, E(t))] of them immediately. Schedules with pointwise
    higher profiles serve pointwise more requests — so an IC-optimal
    schedule maximizes burst service against {e every} burst size
    simultaneously. *)

type t = {
  burst : int;
  served : int;  (** [Σ_t min(burst, E(t))] over the nonsink steps *)
  offered : int;  (** [burst * (#steps)] *)
  service_rate : float;  (** [served / offered] *)
}

val of_profile : burst:int -> int array -> t
(** Evaluate a profile (as produced by {!Ic_dag.Profile.run} or
    [nonsink_profile]). *)

val of_schedule : burst:int -> Ic_dag.Dag.t -> Ic_dag.Schedule.t -> t
(** Over the nonsink prefix of the schedule (the phase during which the
    server is still producing work). *)

val sweep :
  bursts:int list -> Ic_dag.Dag.t -> Ic_dag.Schedule.t -> (int * float) list
(** [(burst, service_rate)] pairs. *)
