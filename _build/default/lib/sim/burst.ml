type t = {
  burst : int;
  served : int;
  offered : int;
  service_rate : float;
}

let of_profile ~burst profile =
  if burst < 1 then invalid_arg "Burst.of_profile: burst must be positive";
  let served = Array.fold_left (fun acc e -> acc + min burst e) 0 profile in
  let offered = burst * Array.length profile in
  {
    burst;
    served;
    offered;
    service_rate =
      (if offered = 0 then 1.0 else float_of_int served /. float_of_int offered);
  }

let of_schedule ~burst g s =
  of_profile ~burst (Ic_dag.Profile.nonsink_profile g s)

let sweep ~bursts g s =
  List.map (fun burst -> (burst, (of_schedule ~burst g s).service_rate)) bursts
