(** Task-size models for the Internet-computing simulator. *)

type t = Ic_dag.Dag.t -> int -> float
(** [w g v] is the computational work of task [v] (in abstract work units;
    a client of speed [s] executes it in [w/s] time, before jitter). *)

val unit : t
(** Every task costs 1. *)

val constant : float -> t

val random_uniform : seed:int -> lo:float -> hi:float -> t
(** Independent per-task work, uniform in [lo, hi] (deterministic in the
    seed and the task id, so the same task always has the same size). *)

val by_height : float -> t
(** [1 + scale * height(v)]: tasks near the sources are heavier — a crude
    model of divide-and-conquer costs. *)
