module Dag = Ic_dag.Dag
module Profile = Ic_dag.Profile
module Policy = Ic_heuristics.Policy

type row = {
  policy : string;
  sim : Simulator.result;
  profile_wins : int;
  profile_losses : int;
  mean_profile : float;
}

let mean p =
  if Array.length p = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 p) /. float_of_int (Array.length p)

let compare_policies ?config ?(workload = Workload.unit) ?(extra = []) g
    ~theory =
  let config =
    match config with Some c -> c | None -> Simulator.config ()
  in
  let theory_policy = Policy.of_schedule "ic-optimal" theory in
  let theory_profile = Profile.run g (Policy.run theory_policy g) in
  let row policy =
    let sim = Simulator.run config policy ~workload g in
    let profile = Profile.run g (Policy.run policy g) in
    let wins = ref 0 and losses = ref 0 in
    Array.iteri
      (fun t e ->
        if theory_profile.(t) > e then incr wins
        else if theory_profile.(t) < e then incr losses)
      profile;
    {
      policy = Policy.name policy;
      sim;
      profile_wins = !wins;
      profile_losses = !losses;
      mean_profile = mean profile;
    }
  in
  row theory_policy :: List.map row (Policy.baselines @ extra)

let pp_rows ppf rows =
  Format.fprintf ppf "%-16s %9s %6s %7s %8s %7s %7s@."
    "policy" "makespan" "util%" "stalls" "mean-E" "wins" "losses";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %9.3f %6.1f %7d %8.2f %7d %7d@."
        r.policy r.sim.Simulator.makespan
        (100.0 *. r.sim.Simulator.utilization)
        r.sim.Simulator.stalls r.mean_profile r.profile_wins r.profile_losses)
    rows
