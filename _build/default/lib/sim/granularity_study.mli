(** The granularity/communication crossover, simulated (experiment E8b).

    Section 4 argues that coarsening a wavefront mesh is attractive for IC
    because per-task work grows quadratically with the block sidelength
    while communication grows only linearly. This module closes the loop by
    {e simulating} both: the fine mesh and its coarsenings run through the
    Internet-computing simulator with an explicit per-arc transfer cost, so
    the fine-grained dag pays communication on its many cut arcs while the
    coarse one pays larger task times. As the communication price grows, a
    crossover appears: fine wins when transfers are free (more
    parallelism), coarse wins when they are dear. *)

type row = {
  comm_time : float;
  block : int;  (** coarsening sidelength; 1 = the fine mesh *)
  n_tasks : int;
  makespan : float;
  comm_total : float;
}

val mesh_crossover :
  ?levels:int -> ?blocks:int list -> ?comm_times:float list ->
  ?n_clients:int -> unit -> row list
(** For every (comm price, coarsening) combination, simulate the
    (possibly coarsened) depth-[levels] out-mesh under its wavefront
    schedule with unit work per fine cell (a coarse task's work is its
    cell count). Defaults: levels 15, blocks [1; 2; 4], comm_times
    [0; 0.5; 2; 8], 8 clients. *)

val best_block : row list -> float -> int
(** The block size with the smallest makespan at a given comm price. *)
