(** Policy comparison harness: the [15]/[19]-style assessment (experiment
    E16). Runs the theory's IC-optimal-priority policy and the baseline
    heuristics over a dag, both as pure list schedules (eligibility-profile
    dominance) and through the simulator (stalls, utilization). *)

type row = {
  policy : string;
  sim : Simulator.result;
  profile_wins : int;
      (** steps where the theory's profile strictly exceeds this policy's *)
  profile_losses : int;
      (** steps where this policy's profile strictly exceeds the theory's
          (0 whenever the theory's schedule is IC-optimal) *)
  mean_profile : float;  (** average eligibility over the list schedule *)
}

val compare_policies :
  ?config:Simulator.config ->
  ?workload:Workload.t ->
  ?extra:Ic_heuristics.Policy.t list ->
  Ic_dag.Dag.t ->
  theory:Ic_dag.Schedule.t ->
  row list
(** First row is the theory policy (built from [theory] via
    {!Ic_heuristics.Policy.of_schedule}), then the baselines and [extra].
    [profile_wins]/[profile_losses] for the theory row are 0 by
    definition. *)

val pp_rows : Format.formatter -> row list -> unit
(** An aligned text table. *)
