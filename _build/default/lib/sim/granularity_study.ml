module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Policy = Ic_heuristics.Policy
module Cluster = Ic_granularity.Cluster

type row = {
  comm_time : float;
  block : int;
  n_tasks : int;
  makespan : float;
  comm_total : float;
}

let ic_optimal_schedule g =
  match Ic_core.Auto.schedule g with
  | Ok p -> p.Ic_core.Auto.schedule
  | Error _ -> Schedule.of_array_exn g (Dag.topological_order g)

let mesh_crossover ?(levels = 15) ?(blocks = [ 1; 2; 4 ])
    ?(comm_times = [ 0.0; 0.5; 2.0; 8.0 ]) ?(n_clients = 8) () =
  let variants =
    List.map
      (fun block ->
        if block = 1 then begin
          let g = Ic_families.Mesh.out_mesh levels in
          (block, g, Workload.unit)
        end
        else begin
          let t = Ic_granularity.Coarsen_mesh.coarsen ~levels ~block in
          let works = Cluster.work t in
          let workload _g v = works.(v) in
          (block, t.Cluster.coarse, workload)
        end)
      blocks
  in
  List.concat_map
    (fun comm_time ->
      List.map
        (fun (block, g, workload) ->
          let config =
            Simulator.config ~n_clients ~jitter:0.0 ~comm_time ()
          in
          let policy = Policy.of_schedule "ic-optimal" (ic_optimal_schedule g) in
          let r = Simulator.run config policy ~workload g in
          {
            comm_time;
            block;
            n_tasks = Dag.n_nodes g;
            makespan = r.Simulator.makespan;
            comm_total = r.Simulator.comm_total;
          })
        variants)
    comm_times

let best_block rows comm_time =
  let candidates = List.filter (fun r -> r.comm_time = comm_time) rows in
  match candidates with
  | [] -> invalid_arg "Granularity_study.best_block: no rows at that price"
  | first :: rest ->
    (List.fold_left (fun best r -> if r.makespan < best.makespan then r else best)
       first rest)
      .block
