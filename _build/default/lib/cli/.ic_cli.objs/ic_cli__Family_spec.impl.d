lib/cli/family_spec.ml: Ic_compute Ic_dag Ic_families Ic_heuristics Printf Random Result String
