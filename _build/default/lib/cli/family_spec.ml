(* Parsing of dag-family specifications for the CLI, e.g. "mesh:12",
   "butterfly:4", "diamond:2x4", "matmul". *)

module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module F = Ic_families

type t = {
  spec : string;
  description : string;
  dag : Dag.t;
  schedule : Schedule.t;  (* the constructive IC-optimal schedule *)
}

let families_help =
  [
    ("outtree:A.D", "complete out-tree of arity A, depth D");
    ("intree:A.D", "complete in-tree of arity A, depth D");
    ("diamond:A.D", "symmetric diamond of a complete arity-A depth-D tree");
    ("mesh:L", "out-mesh (wavefront) with levels 0..L");
    ("inmesh:L", "in-mesh (pyramid) with levels 0..L");
    ("butterfly:D", "D-dimensional butterfly network (FFT shape)");
    ("prefix:N", "N-input parallel-prefix (scan) dag");
    ("ldag:N", "DLT dag L_N = P_N composed with an in-tree (N = 2^k)");
    ("lprime:N", "DLT dag L'_N built from a ternary V_3 out-tree (N = 2^k)");
    ("paths:K", "Fig. 16 path-computation dag for K logical powers (K = 2^k)");
    ("matmul", "the 20-task matrix-multiplication dag M");
    ("sortnet:D", "bitonic sorting network on 2^D keys");
    ("random:N.S", "random dag with N nodes from seed S (no optimal schedule known)");
    ("file:PATH", "dag loaded from a text file (see Ic_dag.Serial for the format)");
  ]

let int_of ~spec s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: %S is not an integer" spec s)

let two_ints ~spec s =
  match String.split_on_char '.' s with
  | [ a; b ] ->
    Result.bind (int_of ~spec a) (fun a ->
        Result.map (fun b -> (a, b)) (int_of ~spec b))
  | _ -> Error (Printf.sprintf "%s: expected A.D" spec)

let parse spec =
  let made description dag schedule = Ok { spec; description; dag; schedule } in
  let name, arg =
    match String.index_opt spec ':' with
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (spec, "")
  in
  try
    match name with
    | "outtree" ->
      Result.bind (two_ints ~spec arg) (fun (arity, depth) ->
          let g = F.Out_tree.dag ~arity ~depth in
          made
            (Printf.sprintf "complete %d-ary out-tree of depth %d" arity depth)
            g (F.Out_tree.schedule g))
    | "intree" ->
      Result.bind (two_ints ~spec arg) (fun (arity, depth) ->
          let g = F.In_tree.dag ~arity ~depth in
          made
            (Printf.sprintf "complete %d-ary in-tree of depth %d" arity depth)
            g (F.In_tree.schedule g))
    | "diamond" ->
      Result.bind (two_ints ~spec arg) (fun (arity, depth) ->
          let d = F.Diamond.complete ~arity ~depth in
          made
            (Printf.sprintf "symmetric diamond, arity %d, depth %d" arity depth)
            (F.Diamond.dag d) (F.Diamond.schedule d))
    | "mesh" ->
      Result.bind (int_of ~spec arg) (fun l ->
          made (Printf.sprintf "out-mesh with %d levels" (l + 1)) (F.Mesh.out_mesh l)
            (F.Mesh.out_schedule l))
    | "inmesh" ->
      Result.bind (int_of ~spec arg) (fun l ->
          made (Printf.sprintf "in-mesh with %d levels" (l + 1)) (F.Mesh.in_mesh l)
            (F.Mesh.in_schedule l))
    | "butterfly" ->
      Result.bind (int_of ~spec arg) (fun d ->
          made (Printf.sprintf "%d-dimensional butterfly network" d)
            (F.Butterfly_net.dag d) (F.Butterfly_net.schedule d))
    | "prefix" ->
      Result.bind (int_of ~spec arg) (fun n ->
          made (Printf.sprintf "%d-input parallel-prefix dag" n) (F.Prefix_dag.dag n)
            (F.Prefix_dag.schedule n))
    | "ldag" ->
      Result.bind (int_of ~spec arg) (fun n ->
          let t = F.Dlt_dag.l_dag n in
          made (Printf.sprintf "DLT dag L_%d" n) (F.Dlt_dag.dag t) (F.Dlt_dag.schedule t))
    | "lprime" ->
      Result.bind (int_of ~spec arg) (fun n ->
          let t = F.Dlt_dag.l_prime_dag n in
          made (Printf.sprintf "DLT dag L'_%d" n) (F.Dlt_dag.dag t) (F.Dlt_dag.schedule t))
    | "paths" ->
      Result.bind (int_of ~spec arg) (fun k ->
          made
            (Printf.sprintf "path-computation dag for %d powers" k)
            (F.Path_dag.dag k) (F.Path_dag.schedule k))
    | "matmul" ->
      made "matrix-multiplication dag M" (F.Matmul_dag.dag ()) (F.Matmul_dag.schedule ())
    | "sortnet" ->
      Result.bind (int_of ~spec arg) (fun d ->
          made
            (Printf.sprintf "bitonic sorting network on %d keys" (1 lsl d))
            (Ic_compute.Sorting.network_dag d) (Ic_compute.Sorting.schedule d))
    | "random" ->
      Result.bind (two_ints ~spec arg) (fun (n, seed) ->
          let rng = Random.State.make [| seed |] in
          let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.25 in
          made
            (Printf.sprintf "random dag, %d nodes, seed %d" n seed)
            g (Ic_dag.Gen.random_nonsinks_first_schedule rng g))
    | "file" ->
      Result.bind (Ic_dag.Serial.load_file arg) (fun g ->
          (* no constructive schedule is known for arbitrary dags: use the
             exact witness when the dag is small enough, else fall back to
             the critical-path heuristic *)
          let schedule =
            match Ic_dag.Optimal.analyze ~max_ideals:200_000 g with
            | Ok { Ic_dag.Optimal.witness = Some w; _ } -> w
            | _ -> Ic_heuristics.Policy.(run critical_path g)
          in
          made (Printf.sprintf "dag from %s" arg) g schedule)
    | _ -> Error (Printf.sprintf "unknown family %S" name)
  with Invalid_argument msg -> Error msg
