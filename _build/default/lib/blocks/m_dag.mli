(** M-dags: duals of W-dags, the building blocks of in-meshes (pyramid
    dags). [M_s] has [s+1] sources and [s] sinks; sink [i] has the two
    parents [i] and [i+1]. Its IC-optimal schedule is dual to the W-dag's
    (Theorem 2.2): sources left to right, which executes the two parents of
    each sink in consecutive steps. *)

val dag : int -> Ic_dag.Dag.t
(** [dag s]: sources [0..s], sinks [s+1..2s]; sink [s+1+i] has parents [i]
    and [i+1]. Requires [s >= 1]. *)

val schedule : int -> Ic_dag.Schedule.t
