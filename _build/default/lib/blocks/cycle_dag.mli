(** Bipartite cycle-dags (Section 7.2): the building blocks of the
    matrix-multiplication dag.

    The [s]-source cycle-dag [C_s] is the N-dag [N_s] plus an arc from the
    rightmost source to the leftmost sink, so source [v] feeds sinks [v] and
    [(v+1) mod s], and every sink has exactly two parents. From [21]:
    executing the sources in cyclic order is IC-optimal, and
    [C_4 ▷ C_4 ▷ Λ ▷ Λ]. *)

val dag : int -> Ic_dag.Dag.t
(** [dag s]: sources [0..s-1], sinks [s..2s-1]; source [i] feeds sinks
    [s+i] and [s + ((i+1) mod s)]. Requires [s >= 2]. *)

val schedule : int -> Ic_dag.Schedule.t
(** IC-optimal: sources in cyclic order [0, 1, ..., s-1]. *)
