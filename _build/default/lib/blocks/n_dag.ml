module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag s =
  if s < 1 then invalid_arg "N_dag.dag: need at least one source";
  let arcs =
    List.concat
      (List.init s (fun i ->
           if i + 1 < s then [ (i, s + i); (i, s + i + 1) ] else [ (i, s + i) ]))
  in
  Dag.make_exn ~n:(2 * s) ~arcs ()

let schedule s = Schedule.of_nonsink_order_exn (dag s) (List.init s Fun.id)
