module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag s t =
  if s < 1 || t < 1 then invalid_arg "Bipartite.dag: need sources and sinks";
  let arcs = List.concat (List.init s (fun i -> List.init t (fun j -> (i, s + j)))) in
  Dag.make_exn ~n:(s + t) ~arcs ()

let schedule s t = Schedule.of_nonsink_order_exn (dag s t) (List.init s Fun.id)
