(** The Vee dag [V] (Fig. 1) and its degree-[d] analogues.

    [V_d] has one source (the root) and [d] sinks — the typical building
    block of "expansive" computations such as the divide phase of
    divide-and-conquer. The paper uses [V = V_2] (Fig. 1) and the 3-prong
    [V_3] (Fig. 14, for the ternary-tree DLT algorithm). Every schedule of a
    Vee dag is IC-optimal (it has a single nonsink). *)

val dag : int -> Ic_dag.Dag.t
(** [dag d] is [V_d]: node 0 is the root, nodes [1..d] the sinks. Requires
    [d >= 1]. *)

val schedule : int -> Ic_dag.Schedule.t
(** The (unique up to sink order) IC-optimal schedule: root first. *)
