module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag d =
  if d < 1 then invalid_arg "Vee.dag: need at least one prong";
  let labels = Array.init (d + 1) (fun v -> if v = 0 then "w" else Printf.sprintf "x%d" (v - 1)) in
  Dag.make_exn ~labels ~n:(d + 1) ~arcs:(List.init d (fun i -> (0, i + 1))) ()

let schedule d = Schedule.of_nonsink_order_exn (dag d) [ 0 ]
