(** The butterfly building block [B] (Fig. 8): two sources, two sinks, and
    all four arcs between them. Iterated compositions of [B] yield the
    [d]-dimensional butterfly networks, comparator-based sorting networks
    (eq. 5.1) and the FFT/convolution dag (eq. 5.2). [B ▷ B], and a schedule
    of an iterated composition of [B] is IC-optimal iff it executes the two
    sources of each copy of [B] in consecutive steps (Section 5.1). *)

val dag : unit -> Ic_dag.Dag.t
(** Sources 0 ([x0]) and 1 ([x1]); sinks 2 ([y0]) and 3 ([y1]). *)

val schedule : unit -> Ic_dag.Schedule.t
(** IC-optimal: the two sources consecutively. *)
