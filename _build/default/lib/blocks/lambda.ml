module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag d =
  if d < 1 then invalid_arg "Lambda.dag: need at least one source";
  let labels = Array.init (d + 1) (fun v -> if v = d then "z" else Printf.sprintf "y%d" v) in
  Dag.make_exn ~labels ~n:(d + 1) ~arcs:(List.init d (fun i -> (i, d))) ()

let schedule d = Schedule.of_nonsink_order_exn (dag d) (List.init d Fun.id)
