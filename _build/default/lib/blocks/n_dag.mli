(** N-dags (Section 6.1): the building blocks of parallel-prefix dags.

    The [s]-source N-dag [N_s] has [s] sources and [s] sinks; its [2s-1]
    arcs connect source [v] to sink [v], and to sink [v+1] when it exists.
    The leftmost source — the {e anchor} — has a child with no other parent.
    From [21]: (a) executing the sources sequentially starting with the
    anchor is IC-optimal; (b) [N_s ▷ N_t] for {e all} [s] and [t]. *)

val dag : int -> Ic_dag.Dag.t
(** [dag s]: sources [0..s-1] (anchor 0), sinks [s..2s-1]; source [i] feeds
    sink [s+i] and sink [s+i+1] when [i+1 < s]. Requires [s >= 1]. *)

val schedule : int -> Ic_dag.Schedule.t
(** IC-optimal: sources from the anchor rightward. *)
