module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag s =
  if s < 2 then invalid_arg "Cycle_dag.dag: need at least two sources";
  let arcs =
    List.concat
      (List.init s (fun i -> [ (i, s + i); (i, s + ((i + 1) mod s)) ]))
  in
  Dag.make_exn ~n:(2 * s) ~arcs ()

let schedule s = Schedule.of_nonsink_order_exn (dag s) (List.init s Fun.id)
