type t = {
  name : string;
  dag : Ic_dag.Dag.t;
  schedule : Ic_dag.Schedule.t;
}

let vee d = { name = Printf.sprintf "V_%d" d; dag = Vee.dag d; schedule = Vee.schedule d }

let lambda d =
  { name = Printf.sprintf "L_%d" d; dag = Lambda.dag d; schedule = Lambda.schedule d }

let w s = { name = Printf.sprintf "W_%d" s; dag = W_dag.dag s; schedule = W_dag.schedule s }
let m s = { name = Printf.sprintf "M_%d" s; dag = M_dag.dag s; schedule = M_dag.schedule s }
let n s = { name = Printf.sprintf "N_%d" s; dag = N_dag.dag s; schedule = N_dag.schedule s }

let cycle s =
  { name = Printf.sprintf "C_%d" s; dag = Cycle_dag.dag s; schedule = Cycle_dag.schedule s }

let butterfly =
  { name = "B"; dag = Butterfly_block.dag (); schedule = Butterfly_block.schedule () }

let w_fanout d s =
  {
    name = Printf.sprintf "W^%d_%d" d s;
    dag = W_dag.dag_fanout ~fanout:d s;
    schedule = W_dag.schedule_fanout ~fanout:d s;
  }

let bipartite s t =
  {
    name = Printf.sprintf "K(%d,%d)" s t;
    dag = Bipartite.dag s t;
    schedule = Bipartite.schedule s t;
  }

let all =
  [ vee 2; vee 3; vee 4; lambda 2; lambda 3; lambda 4 ]
  @ List.map w [ 1; 2; 3; 4 ]
  @ List.map m [ 1; 2; 3 ]
  @ List.map n [ 1; 2; 3; 4 ]
  @ List.map cycle [ 2; 3; 4; 5 ]
  @ [ butterfly; w_fanout 3 2; w_fanout 3 3; bipartite 2 3; bipartite 3 2 ]
