lib/blocks/lambda.ml: Array Fun Ic_dag List Printf
