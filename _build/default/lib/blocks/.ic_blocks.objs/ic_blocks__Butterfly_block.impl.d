lib/blocks/butterfly_block.ml: Ic_dag
