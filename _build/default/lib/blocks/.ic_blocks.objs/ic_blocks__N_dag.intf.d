lib/blocks/n_dag.mli: Ic_dag
