lib/blocks/bipartite.mli: Ic_dag
