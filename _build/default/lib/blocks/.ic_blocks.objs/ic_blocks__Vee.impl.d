lib/blocks/vee.ml: Array Ic_dag List Printf
