lib/blocks/lambda.mli: Ic_dag
