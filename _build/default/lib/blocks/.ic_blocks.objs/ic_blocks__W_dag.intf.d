lib/blocks/w_dag.mli: Ic_dag
