lib/blocks/m_dag.mli: Ic_dag
