lib/blocks/repertoire.mli: Ic_dag
