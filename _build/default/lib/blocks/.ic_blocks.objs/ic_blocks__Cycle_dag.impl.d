lib/blocks/cycle_dag.ml: Fun Ic_dag List
