lib/blocks/bipartite.ml: Fun Ic_dag List
