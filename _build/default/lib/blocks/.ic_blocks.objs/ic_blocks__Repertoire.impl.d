lib/blocks/repertoire.ml: Bipartite Butterfly_block Cycle_dag Ic_dag Lambda List M_dag N_dag Printf Vee W_dag
