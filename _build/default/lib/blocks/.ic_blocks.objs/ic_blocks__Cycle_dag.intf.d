lib/blocks/cycle_dag.mli: Ic_dag
