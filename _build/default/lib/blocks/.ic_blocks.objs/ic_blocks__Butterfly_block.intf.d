lib/blocks/butterfly_block.mli: Ic_dag
