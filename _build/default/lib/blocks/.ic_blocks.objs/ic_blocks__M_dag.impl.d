lib/blocks/m_dag.ml: Fun Ic_dag List
