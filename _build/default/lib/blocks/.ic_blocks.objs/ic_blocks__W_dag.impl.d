lib/blocks/w_dag.ml: Fun Ic_dag List
