lib/blocks/n_dag.ml: Fun Ic_dag List
