lib/blocks/vee.mli: Ic_dag
