(** Complete-bipartite blocks [K(s,t)]: the generalized butterfly building
    block. [K(2,2) = B]; coarsening a butterfly network two-band-wise yields
    [K(2^a, 2^b)] (Section 5.1 granularity). Every source order is
    IC-optimal for a single block. *)

val dag : int -> int -> Ic_dag.Dag.t
(** [dag s t]: sources [0..s-1], sinks [s..s+t-1], all [s*t] arcs. Requires
    [s, t >= 1]. *)

val schedule : int -> int -> Ic_dag.Schedule.t
