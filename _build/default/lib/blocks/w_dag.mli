(** W-dags (Fig. 6): the building blocks of out-meshes.

    The (1,2)-W-dag [W_s] has [s] sources and [s+1] sinks; source [i] has
    arcs to sinks [i] and [i+1], so consecutive sources share a sink — the
    shape of one wavefront step of a 2-dimensional mesh. From [21]: the
    schedule that executes a W-dag's sources consecutively (left to right) is
    IC-optimal, and smaller W-dags have ▷-priority over larger ones. *)

val dag : int -> Ic_dag.Dag.t
(** [dag s] is [W_s]: sources [0..s-1], sinks [s..2s]; source [i] feeds
    sinks [s+i] and [s+i+1]. Requires [s >= 1]. *)

val schedule : int -> Ic_dag.Schedule.t
(** IC-optimal: sources left to right. *)

(** {1 The (1,d) generalization}

    [21] defines (1,d)-W-dags for any fan-out [d >= 2]: [s] sources and
    [(d-1)s + 1] sinks, source [i] feeding the [d] consecutive sinks
    starting at position [(d-1)i], so neighbouring sources share exactly
    one sink. [d = 2] recovers [W_s]. *)

val dag_fanout : fanout:int -> int -> Ic_dag.Dag.t
val schedule_fanout : fanout:int -> int -> Ic_dag.Schedule.t
