(** The block repertoire: every building block of the paper bundled with its
    IC-optimal schedule, for table-driven tests and priority computations. *)

type t = {
  name : string;
  dag : Ic_dag.Dag.t;
  schedule : Ic_dag.Schedule.t;  (** an IC-optimal schedule of [dag] *)
}

val vee : int -> t
val lambda : int -> t
val w : int -> t
val m : int -> t
val n : int -> t
val cycle : int -> t
val butterfly : t
val w_fanout : int -> int -> t
(** [w_fanout d s]: the (1,d)-W-dag with [s] sources. *)

val bipartite : int -> int -> t
(** [bipartite s t]: the generalized butterfly block [K(s,t)]. *)

val all : t list
(** A representative sample of small instances of every block family (used
    by the exhaustive pairwise-priority tests). *)
