module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag s =
  if s < 1 then invalid_arg "M_dag.dag: need at least one sink";
  let arcs =
    List.concat (List.init s (fun i -> [ (i, s + 1 + i); (i + 1, s + 1 + i) ]))
  in
  Dag.make_exn ~n:((2 * s) + 1) ~arcs ()

let schedule s =
  Schedule.of_nonsink_order_exn (dag s) (List.init (s + 1) Fun.id)
