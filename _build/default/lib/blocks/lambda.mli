(** The Lambda dag [Λ] (Fig. 1) and its degree-[d] analogues.

    [Λ_d] has [d] sources and one sink — the typical building block of
    "reductive" computations such as the recombination phase of
    divide-and-conquer. [Λ = Λ_2] is the dual of [V = V_2]. A schedule of an
    in-tree built from [Λ] blocks is IC-optimal iff it executes the two
    sources of each copy of [Λ] in consecutive steps (Section 3.1). *)

val dag : int -> Ic_dag.Dag.t
(** [dag d] is [Λ_d]: nodes [0..d-1] are the sources, node [d] the sink.
    Requires [d >= 1]. *)

val schedule : int -> Ic_dag.Schedule.t
(** IC-optimal schedule: sources in ascending order (any source order is
    IC-optimal for a single block). *)
