module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag () =
  Dag.make_exn
    ~labels:[| "x0"; "x1"; "y0"; "y1" |]
    ~n:4
    ~arcs:[ (0, 2); (0, 3); (1, 2); (1, 3) ]
    ()

let schedule () = Schedule.of_nonsink_order_exn (dag ()) [ 0; 1 ]
