module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let dag s =
  if s < 1 then invalid_arg "W_dag.dag: need at least one source";
  let arcs =
    List.concat (List.init s (fun i -> [ (i, s + i); (i, s + i + 1) ]))
  in
  Dag.make_exn ~n:((2 * s) + 1) ~arcs ()

let schedule s = Schedule.of_nonsink_order_exn (dag s) (List.init s Fun.id)

let dag_fanout ~fanout s =
  if fanout < 2 then invalid_arg "W_dag.dag_fanout: fan-out >= 2";
  if s < 1 then invalid_arg "W_dag.dag_fanout: need at least one source";
  let sinks = ((fanout - 1) * s) + 1 in
  let arcs =
    List.concat
      (List.init s (fun i ->
           List.init fanout (fun j -> (i, s + ((fanout - 1) * i) + j))))
  in
  Dag.make_exn ~n:(s + sinks) ~arcs ()

let schedule_fanout ~fanout s =
  Schedule.of_nonsink_order_exn (dag_fanout ~fanout s) (List.init s Fun.id)
