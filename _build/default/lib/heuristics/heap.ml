type ('k, 'v) t = {
  mutable data : ('k * 'v) array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }
let is_empty h = h.size = 0
let size h = h.size

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let data = Array.make (max 8 (2 * cap)) entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst h.data.(i) < fst h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
  if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h k v =
  grow h (k, v);
  h.data.(h.size) <- (k, v);
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    sift_down h 0;
    Some top
  end

let peek h = if h.size = 0 then None else Some h.data.(0)
