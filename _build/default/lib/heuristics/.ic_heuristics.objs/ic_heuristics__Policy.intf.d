lib/heuristics/policy.mli: Ic_dag
