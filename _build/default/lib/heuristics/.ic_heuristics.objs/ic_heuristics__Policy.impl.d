lib/heuristics/policy.ml: Array Heap Ic_dag Lazy List Option Printf Queue Random
