lib/heuristics/heap.ml: Array
