lib/heuristics/heap.mli:
