(** A minimal binary min-heap, used by rank-based policies and by the
    event queue of the simulator. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t
val is_empty : ('k, 'v) t -> bool
val size : ('k, 'v) t -> int
val push : ('k, 'v) t -> 'k -> 'v -> unit
val pop : ('k, 'v) t -> ('k * 'v) option
(** Smallest key (ties broken arbitrarily but deterministically). *)

val peek : ('k, 'v) t -> ('k * 'v) option
