lib/batch/batched.ml: Array Hashtbl Ic_dag List Result
