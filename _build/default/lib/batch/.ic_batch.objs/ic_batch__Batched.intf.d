lib/batch/batched.mli: Ic_dag
