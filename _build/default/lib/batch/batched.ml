module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile

type t = {
  batch_size : int;
  batches : int list list;
}

exception Too_large of int

let executed_sets g batches =
  (* cumulative executed-set list, empty set first *)
  let n = Dag.n_nodes g in
  let current = Array.make n false in
  let snapshots = ref [ Array.copy current ] in
  List.iter
    (fun batch ->
      List.iter (fun v -> current.(v) <- true) batch;
      snapshots := Array.copy current :: !snapshots)
    batches;
  List.rev !snapshots

let profile g t =
  executed_sets g t.batches
  |> List.map (fun executed -> Profile.of_set g ~executed)
  |> Array.of_list

let is_valid g t =
  let n = Dag.n_nodes g in
  let batch_index = Array.make n (-1) in
  let ok = ref (t.batch_size >= 1) in
  List.iteri
    (fun j batch ->
      List.iter
        (fun v ->
          if v < 0 || v >= n || batch_index.(v) >= 0 then ok := false
          else batch_index.(v) <- j)
        batch)
    t.batches;
  (* partition *)
  Array.iter (fun j -> if j < 0 then ok := false) batch_index;
  if !ok then begin
    (* parents strictly earlier *)
    for v = 0 to n - 1 do
      Array.iter
        (fun p -> if batch_index.(p) >= batch_index.(v) then ok := false)
        (Dag.pred g v)
    done;
    (* work conservation: each batch takes min(p, #eligible) tasks *)
    let sets = Array.of_list (executed_sets g t.batches) in
    List.iteri
      (fun j batch ->
        let eligible = Profile.of_set g ~executed:sets.(j) in
        if List.length batch <> min t.batch_size eligible then ok := false)
      t.batches
  end;
  !ok

let of_schedule g s ~batch_size =
  if batch_size < 1 then Error "batch size must be positive"
  else begin
    let order = Array.to_list (Schedule.order s) in
    let rec chop acc current k = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | v :: rest ->
        if k = batch_size then chop (List.rev current :: acc) [ v ] 1 rest
        else chop acc (v :: current) (k + 1) rest
    in
    let batches = chop [] [] 0 order in
    let t = { batch_size; batches } in
    if is_valid g t then Ok t
    else Error "schedule cannot be chopped into simultaneously-eligible batches"
  end

let to_schedule g t =
  Schedule.of_order_exn g (List.concat_map (List.sort compare) t.batches)

let eligible_list g executed =
  let n = Dag.n_nodes g in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if (not executed.(v)) && Array.for_all (fun p -> executed.(p)) (Dag.pred g v)
    then acc := v :: !acc
  done;
  !acc

let greedy g ~batch_size =
  if batch_size < 1 then invalid_arg "Batched.greedy: batch size must be positive";
  let n = Dag.n_nodes g in
  let executed = Array.make n false in
  let remaining = Array.init n (fun v -> Dag.in_degree g v) in
  let done_count = ref 0 in
  let batches = ref [] in
  while !done_count < n do
    let eligible = eligible_list g executed in
    let want = min batch_size (List.length eligible) in
    (* pick greedily: each pick maximizes the number of tasks the batch so
       far would newly release *)
    let in_batch = Array.make n false in
    let batch = ref [] in
    for _ = 1 to want do
      let gain v =
        (* children released if v joins the batch *)
        Array.fold_left
          (fun acc w ->
            let unmet =
              Array.exists
                (fun p -> not (executed.(p) || in_batch.(p) || p = v))
                (Dag.pred g w)
            in
            if unmet || in_batch.(w) then acc else acc + 1)
          0 (Dag.succ g v)
      in
      let best =
        List.fold_left
          (fun best v ->
            if in_batch.(v) then best
            else
              match best with
              | None -> Some (v, gain v)
              | Some (_, bg) ->
                let gv = gain v in
                if gv > bg then Some (v, gv) else best)
          None eligible
      in
      match best with
      | Some (v, _) ->
        in_batch.(v) <- true;
        batch := v :: !batch
      | None -> ()
    done;
    let batch = List.rev !batch in
    List.iter
      (fun v ->
        executed.(v) <- true;
        incr done_count;
        Array.iter (fun w -> remaining.(w) <- remaining.(w) - 1) (Dag.succ g v))
      batch;
    batches := batch :: !batches
  done;
  { batch_size; batches = List.rev !batches }

(* lexicographic optimum by levelled DP over ideals *)
let optimal ?(max_ideals = 2_000_000) g ~batch_size =
  if batch_size < 1 then invalid_arg "Batched.optimal: batch size must be positive";
  let n = Dag.n_nodes g in
  if n > 61 then Error (`Too_large n)
  else begin
    let pmask =
      Array.init n (fun v ->
          Array.fold_left (fun m p -> m lor (1 lsl p)) 0 (Dag.pred g v))
    in
    let eligible_of s =
      let acc = ref [] in
      for v = n - 1 downto 0 do
        if s land (1 lsl v) = 0 && s land pmask.(v) = pmask.(v) then acc := v :: !acc
      done;
      !acc
    in
    let count_eligible s = List.length (eligible_of s) in
    let full = (1 lsl n) - 1 in
    let visited = ref 0 in
    try
      (* per level: table mask -> (previous mask, batch) *)
      let levels = ref [] in
      let frontier = ref (Hashtbl.create 16) in
      Hashtbl.replace !frontier 0 (0, []);
      let finished = ref (n = 0) in
      while not !finished do
        let next = Hashtbl.create (Hashtbl.length !frontier * 2) in
        let best = ref (-1) in
        let consider s' prev batch =
          incr visited;
          if !visited > max_ideals then raise (Too_large !visited);
          let e = count_eligible s' in
          if e > !best then begin
            Hashtbl.reset next;
            best := e
          end;
          if e = !best && not (Hashtbl.mem next s') then
            Hashtbl.replace next s' (prev, batch)
        in
        Hashtbl.iter
          (fun s _ ->
            let eligible = eligible_of s in
            let want = min batch_size (List.length eligible) in
            (* enumerate size-[want] subsets of the eligible list *)
            let rec subsets chosen k pool =
              if k = 0 then
                consider
                  (List.fold_left (fun m v -> m lor (1 lsl v)) s chosen)
                  s (List.rev chosen)
              else
                match pool with
                | [] -> ()
                | v :: rest ->
                  if List.length rest >= k - 1 then subsets (v :: chosen) (k - 1) rest;
                  if List.length rest >= k then subsets chosen k rest
            in
            subsets [] want eligible)
          !frontier;
        levels := !frontier :: !levels;
        frontier := next;
        if Hashtbl.mem next full then begin
          levels := next :: !levels;
          finished := true
        end
        else if Hashtbl.length next = 0 then finished := true (* n = 0 *)
      done;
      (* walk back the witness from the full ideal *)
      if n = 0 then Ok { batch_size; batches = [] }
      else begin
        let rec walk s tables acc =
          match tables with
          | [] -> acc
          | table :: rest ->
            let prev, batch = Hashtbl.find table s in
            if s = 0 then acc else walk prev rest (batch :: acc)
        in
        let batches = walk full !levels [] in
        Ok { batch_size; batches }
      end
    with Too_large k -> Error (`Too_large k)
  end

let e_opt ?max_ideals g ~batch_size =
  Result.map (fun t -> profile g t) (optimal ?max_ideals g ~batch_size)
