(** DLT-dag coarsening (Fig. 13, right).

    The coarsened [L_n]: each column of the parallel-prefix part collapses
    into one task that carries its value through all levels locally (the
    accumulating in-tree stays fine-grained). The coarse dag keeps the
    prefix communication pattern (column [i] feeds columns [i + 2^j]) on
    top of the in-tree; it still admits an IC-optimal schedule, which the
    tests confirm by brute force for small [n]. *)

val coarsen_columns : int -> Cluster.t
(** [coarsen_columns n] clusters [L_n] ([n] a power of two). *)
