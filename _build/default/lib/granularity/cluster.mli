(** Generic task clustering: the mechanism behind every multi-granularity
    transformation in the paper.

    A clustering maps each fine-grained task to a cluster id; the coarse dag
    is the quotient (one node per cluster, deduplicated inter-cluster arcs),
    valid only when it stays acyclic. Coarsening trades per-task work
    (cluster sizes) against inter-client communication (arcs that cross
    clusters) — the quantities the paper's granularity discussions are
    about. *)

type t = {
  fine : Ic_dag.Dag.t;
  cluster_of : int array;
  coarse : Ic_dag.Dag.t;
}

val make : Ic_dag.Dag.t -> cluster_of:int array -> (t, string) result
(** Cluster ids may be any subset of [0 .. n-1]; they are compacted to
    [0 .. n_clusters-1] preserving order. Fails if the quotient is cyclic. *)

val make_exn : Ic_dag.Dag.t -> cluster_of:int array -> t

val trivial : Ic_dag.Dag.t -> t
(** Every node its own cluster. *)

(** {1 Cost model} *)

val work : ?task_work:(int -> float) -> t -> float array
(** Per-cluster computational work (default: one unit per fine task). *)

val cut_arcs : t -> int
(** Number of fine arcs whose endpoints lie in different clusters — the
    total inter-client communication volume. *)

val cluster_out_communication : t -> int array
(** Per-cluster count of outgoing fine arcs crossing to other clusters. *)

val max_work : ?task_work:(int -> float) -> t -> float
val max_out_communication : t -> int
