lib/granularity/cluster.mli: Ic_dag
