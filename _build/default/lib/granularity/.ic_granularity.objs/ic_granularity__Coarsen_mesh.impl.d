lib/granularity/coarsen_mesh.ml: Array Cluster Ic_dag Ic_families List
