lib/granularity/coarsen_diamond.ml: Array Cluster Fun Ic_core Ic_dag Ic_families List
