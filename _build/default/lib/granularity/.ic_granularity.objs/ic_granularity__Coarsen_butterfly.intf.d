lib/granularity/coarsen_butterfly.mli: Cluster Ic_dag
