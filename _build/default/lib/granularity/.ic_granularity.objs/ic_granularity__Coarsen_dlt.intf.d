lib/granularity/coarsen_dlt.mli: Cluster
