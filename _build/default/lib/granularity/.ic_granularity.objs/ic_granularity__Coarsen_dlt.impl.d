lib/granularity/coarsen_dlt.ml: Array Cluster Fun Ic_dag Ic_families Option
