lib/granularity/coarsen_mesh.mli: Cluster
