lib/granularity/coarsen_butterfly.ml: Array Cluster Fun Hashtbl Ic_dag Ic_families List Option
