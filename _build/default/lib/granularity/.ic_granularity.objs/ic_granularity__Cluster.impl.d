lib/granularity/cluster.ml: Array Fun Hashtbl Ic_dag List Result
