lib/granularity/coarsen_diamond.mli: Cluster Ic_families
