module Dag = Ic_dag.Dag
module Mesh = Ic_families.Mesh

let coarsen ~levels ~block =
  if block < 1 then invalid_arg "Coarsen_mesh.coarsen: block >= 1";
  let fine = Mesh.out_mesh levels in
  let cluster_of = Array.make (Dag.n_nodes fine) 0 in
  (* Blocks live in the mesh's grid coordinates [(x, y) = (j, k - j)], where
     the arcs run right and up: axis-aligned [b × b] blocks there are the
     "rectangles" of Fig. 7 (diagonal-truncated ones its "triangles"), and
     the quotient is again an out-mesh. *)
  for k = 0 to levels do
    for j = 0 to k do
      let bx = j / block and by = (k - j) / block in
      cluster_of.(Mesh.node k j) <- Mesh.node (bx + by) bx
    done
  done;
  Cluster.make_exn fine ~cluster_of

let uneven ~levels ~cuts =
  if List.exists (fun c -> c <= 0 || c > levels) cuts then
    invalid_arg "Coarsen_mesh.uneven: cuts must lie in 1..levels";
  let sorted = List.sort_uniq compare cuts in
  if List.length sorted <> List.length cuts then
    invalid_arg "Coarsen_mesh.uneven: cuts must be distinct";
  let block_of x =
    let rec go i = function
      | [] -> i
      | c :: rest -> if x < c then i else go (i + 1) rest
    in
    go 0 sorted
  in
  let fine = Mesh.out_mesh levels in
  let cluster_of = Array.make (Dag.n_nodes fine) 0 in
  for k = 0 to levels do
    for j = 0 to k do
      let bx = block_of j and by = block_of (k - j) in
      cluster_of.(Mesh.node k j) <- Mesh.node (bx + by) bx
    done
  done;
  Cluster.make_exn fine ~cluster_of

let is_again_out_mesh t =
  let coarse = t.Cluster.coarse in
  (* the coarse node count determines the candidate depth *)
  let n = Dag.n_nodes coarse in
  let rec find l = if (l + 1) * (l + 2) / 2 >= n then l else find (l + 1) in
  let l = find 0 in
  (l + 1) * (l + 2) / 2 = n && Ic_dag.Iso.isomorphic coarse (Mesh.out_mesh l)

type scaling_row = {
  block : int;
  n_coarse_tasks : int;
  max_task_work : float;
  max_task_communication : int;
  total_cut_arcs : int;
}

let scaling ~levels ~blocks =
  List.map
    (fun block ->
      let t = coarsen ~levels ~block in
      {
        block;
        n_coarse_tasks = Dag.n_nodes t.Cluster.coarse;
        max_task_work = Cluster.max_work t;
        max_task_communication = Cluster.max_out_communication t;
        total_cut_arcs = Cluster.cut_arcs t;
      })
    blocks
