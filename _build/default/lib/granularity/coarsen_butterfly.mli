(** Butterfly coarsening (Section 5.1).

    The [(a+b)]-dimensional butterfly decomposes into granularity bands:
    levels [0..b] restricted to a fixed value of the high [a] address bits
    form a copy of [B_b] (there are [2^a] of them), and levels [b..a+b]
    restricted to a fixed value of the low [b] bits form a copy of [B_a]
    ([2^b] of them) — cf. the layout result [1] the paper cites. Collapsing
    each low copy (boundary level [b] included) into one supertask and each
    high copy (minus the shared boundary) into another yields the coarse dag
    [K(2^a, 2^b)], the complete-bipartite generalized butterfly block; for
    [a = b = 1] it is exactly the building block [B]. This is how one
    adjusts task granularity while retaining butterfly-structured
    dependencies. *)

val low_copies : a:int -> b:int -> (Ic_dag.Dag.t * int list) list
(** The [2^a] copies of [B_b] spanned by levels [0..b]: each copy's induced
    sub-dag and its node ids within [B_{a+b}]. Every copy is isomorphic to
    [Butterfly_net.dag b]. *)

val high_copies : a:int -> b:int -> (Ic_dag.Dag.t * int list) list
(** The [2^b] copies of [B_a] spanned by levels [b..a+b]. *)

val two_band : a:int -> b:int -> Cluster.t
(** The two-band clustering described above: coarse dag = [K(2^a, 2^b)]. *)

val complete_bipartite : int -> int -> Ic_dag.Dag.t
(** [complete_bipartite s t]: [s] sources, [t] sinks, all arcs. *)
