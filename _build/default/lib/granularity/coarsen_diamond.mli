(** Diamond-dag coarsening (Section 3.1, Fig. 3).

    A diamond built from an out-tree and its dual in-tree is coarsened by
    truncating selected branches: the out-subtree below a chosen node,
    together with the mated portion of the in-tree, collapses into a single
    coarse task that performs that whole sub-computation locally. The coarse
    dag is again a (possibly irregular) diamond, hence still admits an
    IC-optimal schedule. *)

val coarsen : Ic_families.Diamond.t -> subtree_roots:int list -> Cluster.t
(** [coarsen d ~subtree_roots] collapses, for each listed out-tree node
    [x] (out-tree node ids of the symmetric diamond), the out-subtree of
    [x] and its mated in-subtree into one cluster. Roots must be out-tree
    node ids and pairwise non-ancestral. The diamond must be symmetric
    (in-tree = dual of out-tree, as produced by
    {!Ic_families.Diamond.symmetric}). *)

val uniform : Ic_families.Diamond.t -> depth:int -> Cluster.t
(** Collapse every subtree pair rooted at the given out-tree depth: the
    coarse dag is the symmetric diamond of the truncated tree. *)
