module Dag = Ic_dag.Dag
module Bf = Ic_families.Butterfly_net

let copies_of ~d ~levels ~key_of_row =
  let rows = 1 lsl d in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun l ->
      for r = 0 to rows - 1 do
        let key = key_of_row r in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (Bf.node ~d l r :: prev)
      done)
    levels;
  let full = Bf.dag d in
  Hashtbl.fold
    (fun _key nodes acc ->
      let keep = Array.make (Dag.n_nodes full) false in
      List.iter (fun v -> keep.(v) <- true) nodes;
      let sub, _ = Dag.induced full ~keep in
      (sub, List.sort compare nodes) :: acc)
    groups []
  |> List.sort compare

let low_copies ~a ~b =
  let d = a + b in
  copies_of ~d
    ~levels:(List.init (b + 1) Fun.id)
    ~key_of_row:(fun r -> r lsr b)

let high_copies ~a ~b =
  let d = a + b in
  copies_of ~d
    ~levels:(List.init (a + 1) (fun i -> b + i))
    ~key_of_row:(fun r -> r land ((1 lsl b) - 1))

let two_band ~a ~b =
  let d = a + b in
  let fine = Bf.dag d in
  let rows = 1 lsl d in
  let cluster_of = Array.make (Dag.n_nodes fine) 0 in
  for l = 0 to d do
    for r = 0 to rows - 1 do
      let c =
        if l <= b then r lsr b (* low copy id: high bits *)
        else (1 lsl a) + (r land ((1 lsl b) - 1)) (* high copy id: low bits *)
      in
      cluster_of.(Bf.node ~d l r) <- c
    done
  done;
  Cluster.make_exn fine ~cluster_of

let complete_bipartite s t =
  let arcs = List.concat (List.init s (fun i -> List.init t (fun j -> (i, s + j)))) in
  Dag.make_exn ~n:(s + t) ~arcs ()
