module Dag = Ic_dag.Dag
module Dlt = Ic_families.Dlt_dag

let coarsen_columns n =
  let t = Dlt.l_dag n in
  let g = Dlt.dag t in
  let pos = Option.get t.Dlt.prefix_pos in
  let levels = Array.length pos - 1 in
  let cluster_of = Array.init (Dag.n_nodes g) Fun.id in
  (* every level of prefix column [i] joins the cluster of its level-0
     node; in-tree internals keep singleton clusters *)
  for j = 1 to levels do
    for i = 0 to n - 1 do
      cluster_of.(pos.(j).(i)) <- pos.(0).(i)
    done
  done;
  Cluster.make_exn g ~cluster_of
