(** Mesh coarsening (Section 4, Fig. 7).

    Clusters the out-mesh into [b × b] blocks: cell [(k, j)] joins block
    [(k/b, j/b)]. Diagonal blocks are "triangles" (themselves small
    out-meshes), interior blocks are "rectangles" (compositions of an
    out-mesh and an in-mesh); the coarse dag of an evenly-divided mesh is
    again an out-mesh. The paper's key quantitative claim: a coarsened
    task's computation grows {e quadratically} with its sidelength [b],
    while its communication grows only {e linearly} — the tradeoff that
    makes wavefront computations attractive for IC. *)

val coarsen : levels:int -> block:int -> Cluster.t
(** Cluster the depth-[levels] out-mesh with sidelength-[block] blocks. *)

val is_again_out_mesh : Cluster.t -> bool
(** When [block] divides [levels + 1], the coarse dag is the out-mesh of
    depth [(levels + 1) / block - 1]. *)

val uneven : levels:int -> cuts:int list -> Cluster.t
(** Coarsen with {e unequal} granularities: [cuts] are the strictly
    increasing grid-coordinate boundaries (applied to both grid axes), i.e.
    Fig. 7 with the dashed lines slid to uneven positions. The coarse dag
    loses the fine mesh's regularity (blocks now have different work), but
    stays acyclic and mesh-shaped; the cost model quantifies the skew. *)

type scaling_row = {
  block : int;
  n_coarse_tasks : int;
  max_task_work : float;  (** grows ~ b² *)
  max_task_communication : int;  (** grows ~ b *)
  total_cut_arcs : int;
}

val scaling : levels:int -> blocks:int list -> scaling_row list
(** The Fig. 7 experiment (E8): work/communication of the largest task as
    the coarsening factor grows. *)
