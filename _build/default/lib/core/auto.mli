(** Automatic scheduling of arbitrary levelled dags — a working version of
    the main scheduling algorithm of [21] that Theorem 2.1 underlies.

    The paper derives each family's schedule by hand, by recognizing the
    dag as a ▷-linear composition of building blocks. This module mechanizes
    that derivation for {e levelled} dags (every arc runs between
    consecutive depth levels — true of meshes, butterflies, sorting
    networks, parallel-prefix dags, the DLT dags, the matmul dag [M], and
    complete trees/diamonds):

    1. each inter-level boundary is split into its connected bipartite
       components — the candidate building blocks;
    2. every block is given an IC-optimal schedule: by recognizing it (up
       to isomorphism, transporting the canonical schedule through the
       isomorphism) as a known block — [V_d], [Λ_d], [W^{1,d}_s], [M_s],
       [N_s], [C_s], [K(s,t)] — or, failing that, by the exact verifier on
       small blocks;
    3. blocks are ordered level by level (within a level, greedily so that
       each chosen block has ▷-priority over the rest);
    4. the Theorem 2.1 phase schedule is emitted. If every consecutive
       pair in the block order satisfies ▷, the result is certified
       IC-optimal ([`Linear]); otherwise the schedule is still valid and
       returned as [`Unverified] (e.g. in-tree ⇑ out-tree boundaries, where
       optimality holds for topological reasons the certificate does not
       capture). *)

type block = {
  nodes : int list;  (** block node ids within the original dag *)
  level : int;  (** depth of the block's sources *)
  name : string;  (** "W_4", "N_2", "K(2,2)", "bipartite(7)", ... *)
  dag : Ic_dag.Dag.t;  (** the induced bipartite dag *)
  schedule : Ic_dag.Schedule.t;  (** IC-optimal for [dag] *)
}

type certificate =
  [ `Linear  (** the block chain is ▷-linear: IC-optimal by Theorem 2.1 *)
  | `Unverified  (** valid phase schedule; ▷ failed somewhere *) ]

type plan = {
  schedule : Ic_dag.Schedule.t;
  blocks : block list;  (** in execution order *)
  certificate : certificate;
}

val is_levelled : Ic_dag.Dag.t -> bool
(** Does every arc join consecutive depth levels? *)

val schedule : Ic_dag.Dag.t -> (plan, string) Stdlib.result
(** Fails when the dag is not levelled, or some unrecognized block is too
    large for the exact verifier (or admits no IC-optimal schedule). *)
