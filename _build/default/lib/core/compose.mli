(** The composition operation ⇑ (Section 2.3.1).

    [G_1 ⇑ G_2] starts from the disjoint sum [G_1 + G_2], selects equal-size
    sets of sinks of [G_1] and sources of [G_2], and pairwise identifies
    them. A {!t} remembers the components and how their nodes embed into the
    composite, which is what the Theorem 2.1 scheduler needs to replay each
    component's schedule inside the composite. Composition is associative
    [21], so a chain built by left-nested {!compose} calls represents
    [G_1 ⇑ G_2 ⇑ ... ⇑ G_k]. *)

type t

val dag : t -> Ic_dag.Dag.t
(** The composite dag. *)

val components : t -> (Ic_dag.Dag.t * int array) list
(** The components in composition order, each with its embedding: entry
    [(g_i, embed_i)] maps node [v] of [g_i] to node [embed_i.(v)] of the
    composite. *)

val of_dag : Ic_dag.Dag.t -> t
(** The trivial composition with a single component. *)

val compose : t -> t -> pairs:(int * int) list -> (t, string) result
(** [compose c1 c2 ~pairs] merges, for each [(u, v)] in [pairs], sink [u] of
    [dag c1] with source [v] of [dag c2]. The [u]s (resp. [v]s) must be
    distinct; [u] must be a sink of [dag c1] and [v] a source of [dag c2].
    Composite node numbering: nodes of [c1] keep their ids; unmerged nodes
    of [c2] follow in ascending order; a merged source takes the id of its
    mate. The component lists are concatenated. *)

val compose_exn : t -> t -> pairs:(int * int) list -> t

val full_merge : t -> t -> (t, string) result
(** Merge {e all} sinks of [c1] with {e all} sources of [c2], both in
    ascending node order (they must be equinumerous) — the composition used
    by diamond dags, [L_n], etc. *)

val full_merge_exn : t -> t -> t

val chain_full : t list -> (t, string) result
(** Left fold of {!full_merge} over a nonempty list. *)

val pp : Format.formatter -> t -> unit
