(** The main scheduling tool: Theorem 2.1.

    Let [G] be a ▷-linear composition of [G_1, ..., G_n] (i.e., composite of
    type [G_1 ⇑ ... ⇑ G_n] with [G_i ▷ G_{i+1}]), each [G_i] admitting an
    IC-optimal schedule [Σ_i]. Then the schedule that executes, for
    [i = 1..n] in turn, the nodes of [G] corresponding to nonsinks of [G_i]
    in [Σ_i]'s order, and finally all sinks of [G], is IC-optimal. *)

val schedule :
  Compose.t -> Ic_dag.Schedule.t list -> (Ic_dag.Schedule.t, string) result
(** [schedule c sigmas] builds the Theorem 2.1 schedule from one component
    schedule per component of [c] (in order). A composite node that is a
    nonsink image for several components is executed at its first mandate.
    Fails if the counts mismatch, a [Σ_i] does not fit [G_i], or the
    resulting order is not a valid schedule of the composite (which cannot
    happen for genuine sink-to-source compositions). *)

val schedule_exn : Compose.t -> Ic_dag.Schedule.t list -> Ic_dag.Schedule.t

val is_linear : Compose.t -> Ic_dag.Schedule.t list -> bool
(** Condition (b) of ▷-linearity for the components of [c] under the given
    (IC-optimal) component schedules: [G_i ▷ G_{i+1}] for all [i]. *)

val schedule_checked :
  Compose.t -> Ic_dag.Schedule.t list -> (Ic_dag.Schedule.t, string) result
(** Like {!schedule} but first verifies ▷-linearity, failing with the index
    of the first violated priority. *)
