module Profile = Ic_dag.Profile

type endpoint = Ic_dag.Dag.t * Ic_dag.Schedule.t

let violation (g1, s1) (g2, s2) =
  let e1 = Profile.nonsink_profile g1 s1 in
  let e2 = Profile.nonsink_profile g2 s2 in
  let n1 = Array.length e1 - 1 and n2 = Array.length e2 - 1 in
  let found = ref None in
  (try
     for x = 0 to n1 do
       for y = 0 to n2 do
         let d = min (n1 - x) y in
         if e1.(x) + e2.(y) > e1.(x + d) + e2.(y - d) then begin
           found := Some (x, y);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let has_priority p1 p2 = Option.is_none (violation p1 p2)

let rec is_linear_chain = function
  | [] | [ _ ] -> true
  | p1 :: (p2 :: _ as rest) -> has_priority p1 p2 && is_linear_chain rest

let of_block (b : Ic_blocks.Repertoire.t) = (b.dag, b.schedule)
