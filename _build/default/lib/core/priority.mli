(** The priority relation ▷ (Section 2.3.1, eq. 2.1).

    For dags [G_1], [G_2] admitting IC-optimal schedules [Σ_1], [Σ_2] with
    [n_1], [n_2] nonsinks, [G_1 ▷ G_2] ("G_1 has priority over G_2") holds
    when one never decreases IC quality by executing a nonsink of [G_1]
    whenever possible; formally (reconstructed from [MRY06], see DESIGN.md),
    for all [x ∈ [0,n_1]], [y ∈ [0,n_2]], with [δ = min(n_1 - x, y)]:

    {v E_Σ1(x) + E_Σ2(y) <= E_Σ1(x + δ) + E_Σ2(y − δ) v}

    The supplied schedules must be IC-optimal for the relation to have its
    theoretical meaning; this module evaluates the inequalities for whatever
    schedules are given (they must at least execute nonsinks before sinks). *)

type endpoint = Ic_dag.Dag.t * Ic_dag.Schedule.t
(** A dag together with an IC-optimal schedule for it. *)

val has_priority : endpoint -> endpoint -> bool
(** [has_priority (g1, s1) (g2, s2)] decides [G_1 ▷ G_2]. O(n₁·n₂). *)

val is_linear_chain : endpoint list -> bool
(** Condition (b) of ▷-linearity: [G_i ▷ G_{i+1}] for consecutive pairs. *)

val of_block : Ic_blocks.Repertoire.t -> endpoint

val violation :
  endpoint -> endpoint -> (int * int) option
(** The lexicographically-first [(x, y)] violating the inequality, if any —
    used by tests and the CLI to explain failures. *)
