module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let schedule c sigmas =
  let comps = Compose.components c in
  if List.length comps <> List.length sigmas then
    Error
      (Printf.sprintf "%d component schedules supplied for %d components"
         (List.length sigmas) (List.length comps))
  else begin
    let g = Compose.dag c in
    let executed = Array.make (Dag.n_nodes g) false in
    let order = ref [] in
    let bad = ref None in
    List.iter2
      (fun (gi, embed) sigma ->
        if Schedule.length sigma <> Dag.n_nodes gi then
          bad := Some "component schedule does not fit its component"
        else
          List.iter
            (fun v ->
              let w = embed.(v) in
              if not executed.(w) then begin
                executed.(w) <- true;
                order := w :: !order
              end)
            (Schedule.nonsink_prefix gi sigma))
      comps sigmas;
    match !bad with
    | Some msg -> Error msg
    | None -> Schedule.of_nonsink_order g (List.rev !order)
  end

let schedule_exn c sigmas =
  match schedule c sigmas with
  | Ok s -> s
  | Error msg -> invalid_arg ("Linear.schedule_exn: " ^ msg)

let is_linear c sigmas =
  let endpoints =
    List.map2 (fun (g, _) s -> (g, s)) (Compose.components c) sigmas
  in
  Priority.is_linear_chain endpoints

let schedule_checked c sigmas =
  let endpoints =
    try Some (List.map2 (fun (g, _) s -> (g, s)) (Compose.components c) sigmas)
    with Invalid_argument _ -> None
  in
  match endpoints with
  | None -> Error "component/schedule count mismatch"
  | Some eps ->
    let rec check i = function
      | [] | [ _ ] -> None
      | p1 :: (p2 :: _ as rest) ->
        if Priority.has_priority p1 p2 then check (i + 1) rest
        else Some i
    in
    (match check 0 eps with
    | Some i ->
      Error (Printf.sprintf "priority G_%d |> G_%d does not hold" i (i + 1))
    | None -> schedule c sigmas)
