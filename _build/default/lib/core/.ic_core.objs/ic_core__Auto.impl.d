lib/core/auto.ml: Array Ic_blocks Ic_dag List Printf Priority Queue
