lib/core/priority.mli: Ic_blocks Ic_dag
