lib/core/linear.ml: Array Compose Ic_dag List Printf Priority
