lib/core/priority.ml: Array Ic_blocks Ic_dag Option
