lib/core/compose.mli: Format Ic_dag
