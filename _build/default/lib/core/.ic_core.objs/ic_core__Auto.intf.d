lib/core/auto.mli: Ic_dag Stdlib
