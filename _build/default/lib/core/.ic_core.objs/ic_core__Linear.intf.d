lib/core/linear.mli: Compose Ic_dag
