lib/core/compose.ml: Array Format Fun Ic_dag List Printf Result
