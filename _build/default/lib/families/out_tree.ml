module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile

type shape = Leaf | Node of shape list

let complete ~arity ~depth =
  if arity < 1 then invalid_arg "Out_tree.complete: arity < 1";
  if depth < 0 then invalid_arg "Out_tree.complete: negative depth";
  let rec go d = if d = 0 then Leaf else Node (List.init arity (fun _ -> go (d - 1))) in
  go depth

let random rng ~max_internal ~arity =
  if arity < 1 then invalid_arg "Out_tree.random: arity < 1";
  (* grow by expanding a uniformly random leaf *)
  let rec expand shape target =
    (* [target] indexes leaves left to right; returns the new shape and
       either the remaining index (Error) or the result (Ok) *)
    match shape with
    | Leaf ->
      if target = 0 then Ok (Node (List.init arity (fun _ -> Leaf))) else Error 1
    | Node children ->
      let rec over acc skipped = function
        | [] -> Error skipped
        | c :: rest -> (
          match expand c (target - skipped) with
          | Ok c' -> Ok (Node (List.rev_append acc (c' :: rest)))
          | Error k -> over (c :: acc) (skipped + k) rest)
      in
      over [] 0 children
  in
  let rec n_leaves = function
    | Leaf -> 1
    | Node cs -> List.fold_left (fun acc c -> acc + n_leaves c) 0 cs
  in
  let rec go shape k =
    if k = 0 then shape
    else
      let leaves = n_leaves shape in
      match expand shape (Random.State.int rng leaves) with
      | Ok shape' -> go shape' (k - 1)
      | Error _ -> assert false
  in
  go Leaf max_internal

let rec n_nodes = function
  | Leaf -> 1
  | Node cs -> 1 + List.fold_left (fun acc c -> acc + n_nodes c) 0 cs

let rec n_leaves = function
  | Leaf -> 1
  | Node cs -> List.fold_left (fun acc c -> acc + n_leaves c) 0 cs

let dag_of_shape shape =
  let arcs = ref [] in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let rec go shape =
    let id = fresh () in
    (match shape with
    | Leaf -> ()
    | Node children ->
      List.iter
        (fun c ->
          let cid = go c in
          arcs := (id, cid) :: !arcs)
        children);
    id
  in
  let _root = go shape in
  Dag.make_exn ~n:!next ~arcs:!arcs ()

let dag ~arity ~depth = dag_of_shape (complete ~arity ~depth)

let is_out_tree g =
  let n = Dag.n_nodes g in
  n > 0
  && Dag.is_connected g
  && List.length (Dag.sources g) = 1
  && List.for_all (fun v -> Dag.in_degree g v <= 1) (List.init n Fun.id)

let schedule g =
  if not (is_out_tree g) then invalid_arg "Out_tree.schedule: not an out-tree";
  (* breadth-first from the root, nonsinks only *)
  let root = List.hd (Dag.sources g) in
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not (Dag.is_sink g v) then begin
      order := v :: !order;
      Array.iter (fun w -> Queue.add w queue) (Dag.succ g v)
    end
  done;
  Schedule.of_nonsink_order_exn g (List.rev !order)

let schedules_all_optimal g =
  let bfs = schedule g in
  let dfs =
    (* depth-first nonsink order *)
    let order = ref [] in
    let rec go v =
      if not (Dag.is_sink g v) then begin
        order := v :: !order;
        Array.iter go (Dag.succ g v)
      end
    in
    go (List.hd (Dag.sources g));
    Schedule.of_nonsink_order_exn g (List.rev !order)
  in
  let rng = Random.State.make [| 0x1C0DE |] in
  let rand = Ic_dag.Gen.random_nonsinks_first_schedule rng g in
  let p = Profile.run g bfs in
  p = Profile.run g dfs && p = Profile.run g rand
