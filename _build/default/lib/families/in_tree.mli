(** In-trees: the "reductive" computations of Section 3.

    An in-tree is an iterated composition of Lambda dags: a rooted tree with
    arcs oriented toward the root, accumulating previously computed results
    (e.g. the recombination phase of divide-and-conquer). From [23]: a
    schedule for an in-tree is IC-optimal iff it executes the sources of
    each copy of [Λ] in consecutive steps. *)

val of_out_tree : Ic_dag.Dag.t -> Ic_dag.Dag.t
(** The dual of an out-tree (node numbering preserved; the out-tree's root
    becomes the sink). Raises if the argument is not an out-tree. *)

val dag_of_shape : Out_tree.shape -> Ic_dag.Dag.t
val dag : arity:int -> depth:int -> Ic_dag.Dag.t

val is_in_tree : Ic_dag.Dag.t -> bool

val schedule : Ic_dag.Dag.t -> Ic_dag.Schedule.t
(** An IC-optimal schedule: a post-order traversal of the internal nodes,
    each emitting its tree-children as one consecutive run (so the sources
    of every [Λ] copy are executed in consecutive steps). *)

val lambda_runs_consecutive : Ic_dag.Dag.t -> Ic_dag.Schedule.t -> bool
(** The iff-characterization from [23]: for every non-source node [u], are
    [u]'s parents executed in consecutive steps of the schedule? Tests use
    this both positively (our schedules) and negatively (perturbed ones). *)
