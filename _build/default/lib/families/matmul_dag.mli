(** The matrix-multiplication dag [M] (Section 7, Fig. 17).

    Multiplying 2×2 (block) matrices [(A B; C D) × (E F; G H)] takes eight
    products and four sums. [M] is composite of type
    [C_4 ⇑ C_4 ⇑ Λ ⇑ Λ ⇑ Λ ⇑ Λ]: the first cycle-dag's sources prepare the
    operands A, E, C, F and its sinks are the products AF, AE, CE, CF; the
    second handles B, G, D, H and BH, BG, DG, DH; the four Λs sum the pairs
    {AE,BG}, {CE,DG}, {CF,DH}, {AF,BH}. Since [C_4 ▷ C_4 ▷ Λ ▷ Λ], [M] is a
    ▷-linear composition and Theorem 2.1 yields an IC-optimal schedule.
    Under it, the eight product tasks become ELIGIBLE in exactly the order
    the paper's boxed schedule lists: AE, CE, CF, AF, BG, DG, DH, BH
    (see DESIGN.md for this reading of the box). *)

val compose : unit -> Ic_core.Compose.t
val component_schedules : unit -> Ic_dag.Schedule.t list

val dag : unit -> Ic_dag.Dag.t
(** 20 nodes, labelled: operands "A".."H", products "AE" etc., sums
    "AE+BG" etc. *)

val schedule : unit -> Ic_dag.Schedule.t
(** The Theorem 2.1 IC-optimal schedule: operands A, E, C, F, B, G, D, H,
    then the Λ source-pairs (AE,BG), (CE,DG), (CF,DH), (AF,BH), then the
    four sums. *)

val product_eligibility_order : unit -> string list
(** Labels of the product tasks in the order {!schedule} renders them
    ELIGIBLE — the paper's boxed order. *)
