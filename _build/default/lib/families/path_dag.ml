let make k = Dlt_dag.l_dag k
let dag k = Dlt_dag.dag (make k)
let schedule k = Dlt_dag.schedule (make k)
