lib/families/alternating.ml: Ic_core Ic_dag In_tree List Out_tree Result
