lib/families/in_tree.mli: Ic_dag Out_tree
