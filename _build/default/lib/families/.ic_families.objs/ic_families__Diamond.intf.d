lib/families/diamond.mli: Ic_core Ic_dag Out_tree
