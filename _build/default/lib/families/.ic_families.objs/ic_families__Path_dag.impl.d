lib/families/path_dag.ml: Dlt_dag
