lib/families/alternating.mli: Ic_core Ic_dag Out_tree
