lib/families/prefix_dag.ml: Array Ic_blocks Ic_core Ic_dag List Option
