lib/families/out_tree.ml: Array Fun Ic_dag List Queue Random
