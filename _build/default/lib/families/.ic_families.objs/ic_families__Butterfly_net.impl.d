lib/families/butterfly_net.ml: Array Ic_blocks Ic_core Ic_dag List Option
