lib/families/out_tree.mli: Ic_dag Random
