lib/families/mesh.ml: Ic_blocks Ic_core Ic_dag List
