lib/families/path_dag.mli: Dlt_dag Ic_dag
