lib/families/dlt_dag.mli: Ic_core Ic_dag
