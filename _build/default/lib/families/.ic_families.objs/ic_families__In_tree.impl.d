lib/families/in_tree.ml: Array Ic_dag List Out_tree
