lib/families/butterfly_net.mli: Ic_core Ic_dag
