lib/families/diamond.ml: Ic_core Ic_dag In_tree Out_tree Result
