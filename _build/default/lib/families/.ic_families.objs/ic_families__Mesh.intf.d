lib/families/mesh.mli: Ic_core Ic_dag
