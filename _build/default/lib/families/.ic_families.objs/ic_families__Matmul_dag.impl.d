lib/families/matmul_dag.ml: Array Ic_blocks Ic_core Ic_dag List
