lib/families/prefix_dag.mli: Ic_core Ic_dag
