lib/families/matmul_dag.mli: Ic_core Ic_dag
