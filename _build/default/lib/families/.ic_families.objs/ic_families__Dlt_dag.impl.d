lib/families/dlt_dag.ml: Array Fun Ic_core Ic_dag In_tree List Out_tree Prefix_dag Queue
