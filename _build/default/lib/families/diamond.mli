(** Diamond dags (Section 3.1, Fig. 2): expansion followed by reduction.

    A diamond dag composes an out-tree [T] with an in-tree [T'] by merging
    (all, in the basic form) sinks of [T] with sources of [T']. Since
    [V ▷ V], [V ▷ Λ] and [Λ ▷ Λ], every diamond dag is a ▷-linear
    composition; any schedule that runs all of [T] IC-optimally and then all
    of [T'] IC-optimally is IC-optimal for the diamond. *)

type t = {
  compose : Ic_core.Compose.t;  (** components: [T] then [T'] *)
  out_schedule : Ic_dag.Schedule.t;
  in_schedule : Ic_dag.Schedule.t;
}

val make : Ic_dag.Dag.t -> Ic_dag.Dag.t -> (t, string) result
(** [make out_tree in_tree] merges all [n] sinks of the out-tree with all
    [n] sources of the in-tree (counts must match). *)

val make_exn : Ic_dag.Dag.t -> Ic_dag.Dag.t -> t

val symmetric : Out_tree.shape -> t
(** The diamond built from a shape's out-tree and its dual in-tree (the
    simplified form of Fig. 3). *)

val complete : arity:int -> depth:int -> t

val dag : t -> Ic_dag.Dag.t
val schedule : t -> Ic_dag.Schedule.t
(** The IC-optimal Theorem 2.1 schedule: out-tree phase, then in-tree
    phase, then the sink. *)
