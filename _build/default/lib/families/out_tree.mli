(** Out-trees: the "expansive" computations of Section 3.

    An out-tree is an iterated composition of Vee dags: a rooted tree with
    arcs oriented away from the root (e.g. the divide phase of
    divide-and-conquer, or the task tree of adaptive numerical integration).
    Since [V ▷ V], every out-tree is a ▷-linear composition; indeed {e every}
    schedule of an out-tree is IC-optimal. *)

type shape = Leaf | Node of shape list
(** Abstract tree shapes, used to build regular and irregular out-trees. A
    [Node] must have at least one child. *)

val complete : arity:int -> depth:int -> shape
(** The complete [arity]-ary tree of the given depth ([depth = 0] is a
    leaf). *)

val random : Random.State.t -> max_internal:int -> arity:int -> shape
(** An irregular shape grown by repeatedly expanding a random leaf into a
    [Node] with [arity] children, [max_internal] times — the kind of
    irregular tree adaptive quadrature produces. *)

val n_nodes : shape -> int
val n_leaves : shape -> int

val dag_of_shape : shape -> Ic_dag.Dag.t
(** Pre-order numbering: node 0 is the root; leaves are the sinks. Leaves
    get ascending ids in left-to-right order among all nodes. *)

val dag : arity:int -> depth:int -> Ic_dag.Dag.t
(** [dag_of_shape (complete ~arity ~depth)]. *)

val is_out_tree : Ic_dag.Dag.t -> bool
(** Connected, single source, every other node of in-degree exactly 1. *)

val schedule : Ic_dag.Dag.t -> Ic_dag.Schedule.t
(** An IC-optimal schedule (breadth-first; any valid order would do). The
    dag must be an out-tree. *)

val schedules_all_optimal : Ic_dag.Dag.t -> bool
(** Sanity helper used in tests: do a handful of structurally different
    schedules of this out-tree share the same profile? *)
