(** Wavefront (mesh-like) dags (Section 4, Fig. 5).

    The depth-[L] {e out-mesh} is the 2-dimensional mesh truncated along its
    diagonal: levels [0..L], level [k] holding [k+1] nodes, node [(k, j)]
    feeding [(k+1, j)] and [(k+1, j+1)]. It models wavefront computations
    (finite elements, dynamic programming, computer vision arrays). The
    {e in-mesh} (the pyramid dag of [8]) is its dual. Every out-mesh is a
    ▷-linear composition of W-dags of increasing size (Fig. 6), hence admits
    an IC-optimal schedule: the wavefront order, level by level. *)

val node : int -> int -> int
(** [node k j] is the id of position [j] of level [k] (row-major triangular
    numbering, [node 0 0 = 0]). *)

val out_mesh : int -> Ic_dag.Dag.t
(** [out_mesh levels]: the out-mesh with levels [0..levels]. [levels >= 0];
    [(levels+1)(levels+2)/2] nodes. *)

val in_mesh : int -> Ic_dag.Dag.t
(** The dual (pyramid) dag. *)

val out_schedule : int -> Ic_dag.Schedule.t
(** IC-optimal: levels in order, left to right within a level. *)

val in_schedule : int -> Ic_dag.Schedule.t
(** IC-optimal for the in-mesh, obtained by duality from {!out_schedule}. *)

val w_decomposition : int -> Ic_core.Compose.t * Ic_dag.Schedule.t list
(** Fig. 6: the out-mesh as the ▷-linear composition
    [W_1 ⇑ W_2 ⇑ ... ⇑ W_L] together with the blocks' IC-optimal schedules.
    The composite is isomorphic to [out_mesh levels] (tests verify this) and
    the Theorem 2.1 schedule coincides with the wavefront order. Requires
    [levels >= 1]. *)
