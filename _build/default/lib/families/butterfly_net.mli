(** Butterfly networks [B_d] (Section 5, Figs. 9–10).

    The [d]-dimensional butterfly network has [d+1] levels of [2^d] rows;
    node [(l, r)] (level [l], row [r]) feeds [(l+1, r)] and
    [(l+1, r XOR 2^l)] for [l < d]. [B_1] is the butterfly building block
    [B]; [B_d] is an iterated composition of copies of [B] (Fig. 10), hence
    — since [B ▷ B] — a ▷-linear composition. From [23]: a schedule of such
    a composition is IC-optimal iff it executes the two sources of each copy
    of [B] in consecutive steps. The FFT dag is exactly [B_d] (Section 5.2),
    and comparator-based sorting networks are iterated compositions of [B]
    too. *)

val node : d:int -> int -> int -> int
(** [node ~d l r] is the id of row [r] of level [l]: [l * 2^d + r]. *)

val dag : int -> Ic_dag.Dag.t
(** [dag d] is [B_d]; requires [d >= 1]. [(d+1) * 2^d] nodes. *)

val schedule : int -> Ic_dag.Schedule.t
(** IC-optimal: level by level; within level [l], the two sources
    [(l, r)] and [(l, r + 2^l)] of each block consecutively. *)

val pairs_consecutive : int -> Ic_dag.Schedule.t -> bool
(** The iff-characterization: does the schedule execute the two sources of
    every [B]-copy of [B_d] in consecutive steps? *)

val block_decomposition : int -> Ic_core.Compose.t * Ic_dag.Schedule.t list
(** Fig. 10: [B_d] as an iterated composition of [d * 2^(d-1)] copies of the
    building block [B], level by level, with their IC-optimal schedules. The
    composite is isomorphic to [dag d]. *)
