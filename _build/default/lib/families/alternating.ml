module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Compose = Ic_core.Compose
module Linear = Ic_core.Linear

type item = Out of Out_tree.shape | In of Out_tree.shape

let realize = function
  | Out shape ->
    let g = Out_tree.dag_of_shape shape in
    (g, Out_tree.schedule g)
  | In shape ->
    let g = In_tree.dag_of_shape shape in
    (g, In_tree.schedule g)

let take k xs = List.filteri (fun i _ -> i < k) xs

let build items =
  match items with
  | [] -> Error "empty alternating composition"
  | first :: rest ->
    let g0, s0 = realize first in
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun (c, scheds) ->
            let g, s = realize item in
            let sinks = Dag.sinks (Compose.dag c) in
            let sources = Dag.sources g in
            let k = min (List.length sinks) (List.length sources) in
            let pairs = List.combine (take k sinks) (take k sources) in
            Result.map
              (fun c' -> (c', scheds @ [ s ]))
              (Compose.compose c (Compose.of_dag g) ~pairs)))
      (Ok (Compose.of_dag g0, [ s0 ]))
      rest

let build_exn items =
  match build items with
  | Ok r -> r
  | Error msg -> invalid_arg ("Alternating.build_exn: " ^ msg)

let schedule (c, scheds) = Linear.schedule_exn c scheds

let diamond_chain shapes =
  List.concat_map (fun shape -> [ Out shape; In shape ]) shapes

let in_prefixed t0 shapes = In t0 :: diamond_chain shapes

let out_suffixed shapes t0 = diamond_chain shapes @ [ Out t0 ]
