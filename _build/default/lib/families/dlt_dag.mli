(** Discrete Laplace Transform dags (Section 6.2.1, Figs. 13–15).

    Both DLT algorithms accumulate the terms of
    [y_k(ω) = Σ_i x_i ω^{ik}] with an [n]-source in-tree; they differ in how
    the powers [ω^{ik}] are generated:

    - [L_n] (Fig. 13) generates them with the parallel-prefix dag:
      [L_n = P_n ⇑ T_n] where [T_n] is the [n]-source complete binary
      in-tree. Since [N_s ▷ N_t], [N_s ▷ Λ] and [Λ ▷ Λ], [L_n] is a
      ▷-linear composition.
    - [L'_n] (Fig. 15) generates them with a ternary out-tree built from
      3-prong Vee dags [V_3] (Fig. 14), whose [n−1] leaves merge with
      in-tree sources [1..n−1] (source 0 — the [x_0·ω^0] term — stays
      free). The chain [V_3 ▷ V_3 ▷ Λ ▷ Λ] makes it a ▷-linear composition;
      the IC-optimal schedule runs the out-tree, then the leftmost source,
      then the in-tree.

    [n] must be a power of two (the form in which the paper analyses
    [L_n]). *)

type t = {
  compose : Ic_core.Compose.t;
  schedules : Ic_dag.Schedule.t list;  (** component IC-optimal schedules *)
  n_inputs : int;
  prefix_pos : int array array option;
      (** for [L_n]: [pos.(j).(i)] is the composite id of prefix column [i]
          at level [j] (level 0 = the inputs) *)
  generator_dag : Ic_dag.Dag.t;
      (** the power-generating component ([P_n] or the ternary tree) *)
  generator_embed : int array;
      (** generator node -> composite id. For the ternary tree, node ids are
          BFS order (root 0); tree node [i] generates the power [ω^{k(i+1)}] *)
  tree_dag : Ic_dag.Dag.t;  (** the accumulating in-tree *)
  tree_embed : int array;  (** in-tree node -> composite id *)
}

val dag : t -> Ic_dag.Dag.t
val schedule : t -> Ic_dag.Schedule.t
(** The Theorem 2.1 schedule of the composition. *)

val l_dag : int -> t
(** [L_n]; requires [n] a power of two, [n >= 2]. *)

val l_prime_dag : int -> t
(** [L'_n]; requires [n] a power of two, [n >= 4] (so the ternary tree has
    at least one internal node: [n − 1 = 2k + 1] leaves needs [n] even). *)

val ternary_tree : int -> Ic_dag.Dag.t
(** The ternary out-tree with the given number of leaves (must be odd and
    >= 3): a chain of [V_3] expansions, leftmost-leaf-first. *)
