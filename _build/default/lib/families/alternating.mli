(** Alternating expansion–reduction compositions (Section 3.1, Fig. 4 and
    Table 1).

    Chains of out-trees and in-trees composed in sequence. When an in-tree's
    sink meets an out-tree's source the merge is a single node; when an
    out-tree's leaves meet an in-tree's sources the counts need not match
    (Fig. 4, rightmost): the first [min] sinks/sources are merged and the
    rest stay free. All three composition types of Table 1 admit IC-optimal
    schedules; the Theorem 2.1 phase order remains IC-optimal even across
    the in-tree ⇑ out-tree boundaries where ▷ fails, because the topology
    forces every schedule to finish the in-tree first. *)

type item = Out of Out_tree.shape | In of Out_tree.shape

val build : item list -> (Ic_core.Compose.t * Ic_dag.Schedule.t list, string) result
(** Compose the trees left to right (first-[min] partial merges) and return
    the composition with each tree's IC-optimal schedule. *)

val build_exn : item list -> Ic_core.Compose.t * Ic_dag.Schedule.t list

val schedule : Ic_core.Compose.t * Ic_dag.Schedule.t list -> Ic_dag.Schedule.t
(** The phase-order (Theorem 2.1) schedule. *)

(** {1 The three Table 1 composition types} *)

val diamond_chain : Out_tree.shape list -> item list
(** [D_0 ⇑ D_1 ⇑ ... ⇑ D_n] with [D_i] the symmetric diamond of shape [i]. *)

val in_prefixed : Out_tree.shape -> Out_tree.shape list -> item list
(** [T_0^(in) ⇑ D_1 ⇑ ... ⇑ D_n]. *)

val out_suffixed : Out_tree.shape list -> Out_tree.shape -> item list
(** [D_1 ⇑ ... ⇑ D_n ⇑ T_0^(out)]. *)
