(** Parallel-prefix (scan) dags [P_n] (Section 6.1, Figs. 11–12).

    For an associative operation [*], the [n]-input parallel-prefix dag
    implements [y_i = x_1 * ... * x_i] in [⌈log₂ n⌉] combining levels:
    level [j+1] computes [x_i ← x_{i-2^j} * x_i] for [i ≥ 2^j] and copies
    [x_i] through for [i < 2^j]. Copy steps are tasks too (see DESIGN.md):
    with them, the boundary between consecutive levels decomposes into
    interleaved N-dags (columns grouped by residue mod [2^j]), giving the
    Fig. 12 decomposition [P_8 = N_8 ⇑ N_4 ⇑ N_4 ⇑ N_2 ⇑ N_2 ⇑ N_2 ⇑ N_2].
    Since [N_s ▷ N_t] for all [s, t], every [P_n] is a ▷-linear composition;
    executing the constituent N-dags one after another (anchor first within
    each) is IC-optimal. *)

val levels : int -> int
(** [⌈log₂ n⌉]: number of combining levels. *)

val node : n:int -> int -> int -> int
(** [node ~n j i] is the id of column [i] at level [j]: [j * n + i]. Level 0
    holds the inputs; level [levels n] the outputs. *)

val dag : int -> Ic_dag.Dag.t
(** [dag n] is [P_n]; requires [n >= 1]. [(levels n + 1) * n] nodes. *)

val schedule : int -> Ic_dag.Schedule.t
(** IC-optimal: for each level [j] in order, the N-dags of boundary [j]
    (column-residues [0 .. 2^j − 1]) one after another, each N-dag's
    sources from its anchor (smallest column) rightward. *)

type decomposition = {
  compose : Ic_core.Compose.t;
  schedules : Ic_dag.Schedule.t list;
  pos : int array array;
      (** [pos.(j).(i)]: composite id of column [i] at level [j] *)
}

val n_decomposition : int -> decomposition
(** Fig. 12: [P_n] as the ▷-linear composition of its boundary N-dags, with
    their IC-optimal schedules. Isomorphic to [dag n]. Requires [n >= 2]. *)

val combines : int -> (int * int * int) list
(** [(target, left, right)] triples: at each combining node [target],
    [value(target) = value(left) * value(right)] where [left] is the column
    [2^j] to the left. Copy nodes are not listed; payload execution treats
    them as identity. Used by the compute layer. *)
