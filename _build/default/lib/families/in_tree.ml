module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let of_out_tree g =
  if not (Out_tree.is_out_tree g) then
    invalid_arg "In_tree.of_out_tree: not an out-tree";
  Dag.dual g

let dag_of_shape shape = of_out_tree (Out_tree.dag_of_shape shape)
let dag ~arity ~depth = dag_of_shape (Out_tree.complete ~arity ~depth)

let is_in_tree g = Out_tree.is_out_tree (Dag.dual g)

let schedule g =
  if not (is_in_tree g) then invalid_arg "In_tree.schedule: not an in-tree";
  let order = ref [] in
  (* internal node = non-source; its Λ-sources are its dag-parents *)
  let rec emit_run u =
    (* make each internal parent ready first (post-order on Λ blocks) *)
    Array.iter (fun p -> if not (Dag.is_source g p) then emit_run p) (Dag.pred g u);
    Array.iter (fun p -> order := p :: !order) (Dag.pred g u)
  in
  let root = List.hd (Dag.sinks g) in
  emit_run root;
  Schedule.of_nonsink_order_exn g (List.rev !order)

let lambda_runs_consecutive g s =
  let n = Dag.n_nodes g in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) (Schedule.order s)
  ;
  let ok = ref true in
  for u = 0 to n - 1 do
    let parents = Dag.pred g u in
    if Array.length parents > 1 then begin
      let ps = Array.map (fun p -> pos.(p)) parents in
      Array.sort compare ps;
      for i = 0 to Array.length ps - 2 do
        if ps.(i + 1) <> ps.(i) + 1 then ok := false
      done
    end
  done;
  !ok
