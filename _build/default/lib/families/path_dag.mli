(** The path-computation dag (Section 6.2.2, Fig. 16).

    To compute, for a graph given by its boolean adjacency matrix [A], the
    vectors telling for each node pair which path lengths [1..k] connect
    them: a [k]-input parallel-prefix dag over {e logical matrix
    multiplication} computes the powers [A, A², ..., A^k], and an in-tree
    accumulates them into the matrix of path-length vectors. Structurally
    this is the DLT dag [L_k] with a coarse (matrix-valued) payload — an
    exemplar of the multi-granular nature of the parallel-prefix operator.
    The payload lives in [Ic_compute.Paths]. *)

val make : int -> Dlt_dag.t
(** [make k]: the dag for accumulating [k] logical powers; [k] a power of
    two [>= 2]. *)

val dag : int -> Ic_dag.Dag.t
val schedule : int -> Ic_dag.Schedule.t
