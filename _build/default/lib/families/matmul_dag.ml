module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Compose = Ic_core.Compose
module Linear = Ic_core.Linear
module Cycle = Ic_blocks.Cycle_dag
module Lambda = Ic_blocks.Lambda

(* composite ids, per the composition order below:
   0..3   operands A E C F        (sources of the first C_4)
   4..7   products AF AE CE CF    (its sinks: sink 4+w has parents w, w-1 mod 4)
   8..11  operands B G D H
   12..15 products BH BG DG DH
   16..19 sums AE+BG, CE+DG, CF+DH, AF+BH *)
let labels =
  [|
    "A"; "E"; "C"; "F";
    "AF"; "AE"; "CE"; "CF";
    "B"; "G"; "D"; "H";
    "BH"; "BG"; "DG"; "DH";
    "AE+BG"; "CE+DG"; "CF+DH"; "AF+BH";
  |]

let compose () =
  let c4 () = Compose.of_dag (Cycle.dag 4) in
  let lam () = Compose.of_dag (Lambda.dag 2) in
  let c = Compose.compose_exn (c4 ()) (c4 ()) ~pairs:[] in
  let c = Compose.compose_exn c (lam ()) ~pairs:[ (5, 0); (13, 1) ] in
  let c = Compose.compose_exn c (lam ()) ~pairs:[ (6, 0); (14, 1) ] in
  let c = Compose.compose_exn c (lam ()) ~pairs:[ (7, 0); (15, 1) ] in
  Compose.compose_exn c (lam ()) ~pairs:[ (4, 0); (12, 1) ]

let component_schedules () =
  [ Cycle.schedule 4; Cycle.schedule 4 ]
  @ List.init 4 (fun _ -> Lambda.schedule 2)

let dag () = Dag.relabel (Compose.dag (compose ())) labels

let schedule () = Linear.schedule_exn (compose ()) (component_schedules ())

let product_eligibility_order () =
  let g = dag () in
  let s = schedule () in
  let pos = Array.make (Dag.n_nodes g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) (Schedule.order s);
  let is_product v = (v >= 4 && v <= 7) || (v >= 12 && v <= 15) in
  (* nodes of one packet become eligible simultaneously; list them in the
     order the schedule goes on to allocate them *)
  let sort_packet p = List.sort (fun a b -> compare pos.(a) pos.(b)) p in
  Ic_dag.Profile.packets g s
  |> Array.to_list
  |> List.concat_map sort_packet
  |> List.filter is_product
  |> List.map (Dag.label g)
