(** Comparator-based sorting through iterated butterfly blocks (Section
    5.2, eq. 5.1).

    Batcher's bitonic sorting network on [n = 2^d] keys is an iterated
    composition of comparator blocks — each a butterfly building block
    applying [y0 = min(x0,x1)], [y1 = max(x0,x1)] with a direction bit — so
    it is scheduled IC-optimally by executing the two inputs of each
    comparator in consecutive steps. *)

val n_substages : int -> int
(** [d(d+1)/2] compare-exchange rounds for [2^d] keys. *)

val network_dag : int -> Ic_dag.Dag.t
(** [network_dag d]: levels [0 .. n_substages d] of [2^d] rows; the arcs of
    substage [t] connect rows [r] and [r XOR j_t] to the next level. *)

val schedule : int -> Ic_dag.Schedule.t
(** IC-optimal: per substage, the two sources of each comparator block in
    consecutive steps. *)

val sort : ?schedule:Ic_dag.Schedule.t -> int array -> int array
(** Sort through the network under the given schedule (default: the
    IC-optimal one). Length must be [2^d], [d >= 1]. *)

val sort_floats : float array -> float array

(** {1 Batcher's odd-even merge network}

    The paper notes that the most efficient known comparator networks
    "require a more complicated iterated composition of comparators [11]":
    odd-even merge uses fewer comparators than the bitonic network (rows
    that are already ordered pass through untouched), at the cost of
    irregular stages. Each substage is a partial matching, so the dag mixes
    [K(2,2)] comparator blocks with pass-through chains — and those two are
    ▷-incomparable. Indeed the exact verifier shows the odd-even dag admits
    {e no} IC-optimal schedule (already at [d = 2]), in contrast to the
    bitonic network: comparator efficiency trades away IC-optimality. The
    {!oddeven_schedule} phase order is a near-optimal schedule (pointwise
    within the unattainable ceiling; see the tests and EXPERIMENTS.md). *)

val oddeven_substages : int -> (int * int) list list
(** The compare-exchange pairs of each substage, for [2^d] keys. *)

val oddeven_dag : int -> Ic_dag.Dag.t
val oddeven_schedule : int -> Ic_dag.Schedule.t
val sort_oddeven : int array -> int array

val n_comparators : int -> int * int
(** [(bitonic, odd-even)] comparator counts for [2^d] keys. *)
