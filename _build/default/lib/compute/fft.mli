(** The Fast Fourier Transform through the butterfly network (Section 5.2).

    The data dependencies of the [2^d]-point FFT are exactly the butterfly
    network [B_d]; each building block applies the convolution
    transformation (eq. 5.2) [y0 = x0 + ω·x1], [y1 = x0 − ω·x1] with [ω] a
    twiddle factor derived from the complex roots of unity. {!engine} builds
    the [B_d]-shaped computation so it can be executed under the IC-optimal
    pairing schedule; {!fft} is the convenience wrapper. *)

val engine : Complex.t array -> Complex.t Engine.t
(** Input length must be a power of two [>= 2]. Level 0 of
    [Butterfly_net.dag d] holds the input in bit-reversed order; level [d]
    holds the DFT in natural order. *)

val fft : ?schedule:Ic_dag.Schedule.t -> Complex.t array -> Complex.t array
(** DFT (negative-exponent convention), default schedule = the IC-optimal
    [Butterfly_net.schedule]. *)

val ifft : Complex.t array -> Complex.t array

val dft_naive : Complex.t array -> Complex.t array
(** O(n²) reference. *)

val bit_reverse : bits:int -> int -> int
