module Dag = Ic_dag.Dag
module Prefix = Ic_families.Prefix_dag

let scan ?schedule ~op input =
  let n = Array.length input in
  if n < 1 then invalid_arg "Scan.scan: empty input";
  if n = 1 then Array.copy input
  else begin
    let g = Prefix.dag n in
    let p = Prefix.levels n in
    let compute v parents =
      let j = v / n and i = v mod n in
      if j = 0 then input.(i)
      else begin
        let stride = 1 lsl (j - 1) in
        if i < stride then parents.(0) (* copy task *)
        else
          (* parents ascending: (j-1, i-stride) then (j-1, i) *)
          op parents.(0) parents.(1)
      end
    in
    let schedule =
      match schedule with Some s -> s | None -> Prefix.schedule n
    in
    let values = Engine.execute ~schedule { Engine.dag = g; compute } in
    Array.init n (fun i -> values.(Prefix.node ~n p i))
  end

let scan_seq ~op input =
  let out = Array.copy input in
  for i = 1 to Array.length input - 1 do
    out.(i) <- op out.(i - 1) input.(i)
  done;
  out

let int_powers ~base ~modulus n =
  if modulus <= 1 then invalid_arg "Scan.int_powers: modulus must exceed 1";
  scan ~op:(fun a b -> a * b mod modulus) (Array.make n (base mod modulus))

let complex_powers omega n = scan ~op:Complex.mul (Array.make n omega)

let matrix_powers a n = scan ~op:Bool_matrix.mult (Array.make n a)
