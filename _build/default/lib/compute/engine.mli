(** Generic dag-execution engine: attaches a value semantics to a
    computation-dag and executes it under a given schedule. Every "familiar
    computation" of the paper runs through this engine, demonstrating that
    the IC-optimal schedules really drive the computations they model. *)

type 'a t = {
  dag : Ic_dag.Dag.t;
  compute : int -> 'a array -> 'a;
      (** [compute v parents] produces task [v]'s value from its parents'
          values, listed in ascending parent-id order ([[||]] for a
          source). *)
}

val execute : ?schedule:Ic_dag.Schedule.t -> 'a t -> 'a array
(** All node values, computed in schedule order (default: a topological
    order). Raises [Invalid_argument] if the schedule does not fit. *)

val value_at : ?schedule:Ic_dag.Schedule.t -> 'a t -> int -> 'a
