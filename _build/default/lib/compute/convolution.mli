(** Convolutions and polynomial products (Section 5.2, eq. 5.2).

    The coefficients of a polynomial product are convolutions
    [A_k = Σ_i a_i·b_{k−i}]; computing them through the FFT dag gives the
    [Θ(n log n)] algorithm the paper points to, every FFT pass running under
    the butterfly network's IC-optimal schedule. *)

val naive : float array -> float array -> float array
(** Direct [O(n²)] convolution of coefficient vectors; result length
    [len a + len b − 1]. *)

val poly_mul_fft : float array -> float array -> float array
(** FFT-based polynomial product (three [B_d] executions: two forward, one
    inverse, plus a pointwise pass). Same length convention as {!naive}. *)

val convolve_complex : Complex.t array -> Complex.t array -> Complex.t array
