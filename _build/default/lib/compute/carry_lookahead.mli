(** Carry-lookahead addition — the paper's "microscopic" parallel-prefix
    example (Section 6.1 cites [3, 18]: scans compute carries).

    Per bit position: generate [g = a AND b] and propagate [p = a XOR b];
    the carry into position [i+1] is the generate component of the scan of
    [(g, p)] pairs under the (associative, non-commutative) carry operator
    [(gL, pL) ∘ (gR, pR) = (gR OR (pR AND gL), pL AND pR)]. The scan runs
    through the parallel-prefix dag [P_n] under its IC-optimal schedule. *)

val add : bool array -> bool array -> bool array
(** [add a b]: bit vectors LSB-first, equal lengths [n >= 1]; result has
    [n + 1] bits (the final carry). *)

val bits_of_int : width:int -> int -> bool array
val int_of_bits : bool array -> int
(** Little-endian; [int_of_bits] requires the value to fit in an [int]. *)

val add_ints : width:int -> int -> int -> int
(** Convenience wrapper: add two nonnegative ints through the dag. *)
