module Dag = Ic_dag.Dag
module Dlt = Ic_families.Dlt_dag

type t = bool array array array

type value =
  | Power of int * Bool_matrix.t  (** [A^power] *)
  | Table of t

let to_table n k = function
  | Table t -> t
  | Power (power, m) ->
    Array.init n (fun i ->
        Array.init n (fun j ->
            Array.init k (fun len -> len + 1 = power && Bool_matrix.get m i j)))

let or_tables a b =
  Array.map2 (Array.map2 (Array.map2 ( || ))) a b

let compute ?schedule a ~k =
  let dlt = Ic_families.Path_dag.make k in
  let g = Dlt.dag dlt in
  let n = Bool_matrix.dim a in
  let pos = Option.get dlt.Dlt.prefix_pos in
  (* classify composite nodes: prefix position or in-tree internal *)
  let coord = Array.make (Dag.n_nodes g) None in
  Array.iteri
    (fun j row -> Array.iteri (fun i id -> coord.(id) <- Some (j, i)) row)
    pos;
  let compute v parents =
    match coord.(v) with
    | Some (0, _) -> Power (1, a)
    | Some (j, i) ->
      let stride = 1 lsl (j - 1) in
      if i < stride then parents.(0)
      else begin
        match (parents.(0), parents.(1)) with
        | Power (p1, m1), Power (p2, m2) ->
          Power (p1 + p2, Bool_matrix.mult m1 m2)
        | _ -> invalid_arg "Paths: table among prefix tasks"
      end
    | None ->
      (* in-tree internal: OR the accumulated tables *)
      Table
        (Array.fold_left
           (fun acc p -> or_tables acc (to_table n k p))
           (to_table n k parents.(0))
           (Array.sub parents 1 (Array.length parents - 1)))
  in
  let schedule = match schedule with Some s -> s | None -> Dlt.schedule dlt in
  let values = Engine.execute ~schedule { Engine.dag = g; compute } in
  let sink = List.hd (Dag.sinks g) in
  match values.(sink) with
  | Table t -> t
  | Power _ -> assert false

let reference a ~k =
  let n = Bool_matrix.dim a in
  let out = Array.init n (fun _ -> Array.init n (fun _ -> Array.make k false)) in
  let power = ref a in
  for len = 1 to k do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if Bool_matrix.get !power i j then out.(i).(j).(len - 1) <- true
      done
    done;
    power := Bool_matrix.mult !power a
  done;
  out
