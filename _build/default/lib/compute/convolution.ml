let naive a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb - 1) 0.0 in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        out.(i + j) <- out.(i + j) +. (a.(i) *. b.(j))
      done
    done;
    out
  end

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let convolve_complex a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out_len = la + lb - 1 in
    let m = max 2 (next_pow2 out_len) in
    let pad x =
      Array.init m (fun i -> if i < Array.length x then x.(i) else Complex.zero)
    in
    let fa = Fft.fft (pad a) and fb = Fft.fft (pad b) in
    let product = Array.init m (fun i -> Complex.mul fa.(i) fb.(i)) in
    Array.sub (Fft.ifft product) 0 out_len
  end

let poly_mul_fft a b =
  let lift = Array.map (fun re -> { Complex.re; im = 0.0 }) in
  Array.map (fun z -> z.Complex.re) (convolve_complex (lift a) (lift b))
