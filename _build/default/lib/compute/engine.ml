module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

type 'a t = {
  dag : Dag.t;
  compute : int -> 'a array -> 'a;
}

let execute ?schedule t =
  let g = t.dag in
  let order =
    match schedule with
    | Some s ->
      if Schedule.length s <> Dag.n_nodes g then
        invalid_arg "Engine.execute: schedule does not fit the dag";
      Schedule.order s
    | None -> Dag.topological_order g
  in
  let values = Array.make (Dag.n_nodes g) None in
  Array.iter
    (fun v ->
      let parents =
        Array.map
          (fun p ->
            match values.(p) with
            | Some x -> x
            | None -> invalid_arg "Engine.execute: invalid schedule order")
          (Dag.pred g v)
      in
      values.(v) <- Some (t.compute v parents))
    order;
  Array.map Option.get values

let value_at ?schedule t v = (execute ?schedule t).(v)
