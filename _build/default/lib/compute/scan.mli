(** Parallel-prefix (scan) computations through the [P_n] dag (Section
    6.1).

    The operator only needs associativity, so the same dag hosts operations
    of widely varying granularity — the paper's examples: powers of an
    integer, powers of a complex number, and logical powers of an adjacency
    matrix. *)

val scan :
  ?schedule:Ic_dag.Schedule.t -> op:('a -> 'a -> 'a) -> 'a array -> 'a array
(** Inclusive scan: output [i] is [x_0 * ... * x_i]. Executed through
    [Prefix_dag.dag n] (combines and copy tasks) under the given schedule
    (default: the IC-optimal N-dag order). Input length >= 1. *)

val scan_seq : op:('a -> 'a -> 'a) -> 'a array -> 'a array
(** Sequential reference. *)

val int_powers : base:int -> modulus:int -> int -> int array
(** First [n] powers [N, N², ..., N^n (mod m)], via {!scan} over modular
    multiplication. *)

val complex_powers : Complex.t -> int -> Complex.t array
(** First [n] powers [ω, ω², ..., ω^n]. *)

val matrix_powers : Bool_matrix.t -> int -> Bool_matrix.t array
(** First [n] logical powers [A, A², ..., A^n]. *)
