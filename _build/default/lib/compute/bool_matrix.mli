(** Square boolean matrices under (OR, AND) — the "logical matrix
    multiplication" of Section 6.1, used for computing paths in a graph. *)

type t

val dim : t -> int
val get : t -> int -> int -> bool
val of_fun : int -> (int -> int -> bool) -> t
val identity : int -> t
val zero : int -> t
val mult : t -> t -> t
(** Logical product: OR of ANDs. *)

val add : t -> t -> t
(** Elementwise OR. *)

val equal : t -> t -> bool
val random : Random.State.t -> int -> density:float -> t
val of_edges : int -> (int * int) list -> t
val pp : Format.formatter -> t -> unit
