lib/compute/scan.mli: Bool_matrix Complex Ic_dag
