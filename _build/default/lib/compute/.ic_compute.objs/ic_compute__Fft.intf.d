lib/compute/fft.mli: Complex Engine Ic_dag
