lib/compute/bool_matrix.ml: Array Format List Random
