lib/compute/scan.ml: Array Bool_matrix Complex Engine Ic_dag Ic_families
