lib/compute/engine.mli: Ic_dag
