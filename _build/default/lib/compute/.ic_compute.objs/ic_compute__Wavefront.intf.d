lib/compute/wavefront.mli: Ic_dag
