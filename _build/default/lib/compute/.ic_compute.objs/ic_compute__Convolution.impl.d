lib/compute/convolution.ml: Array Complex Fft
