lib/compute/paths.mli: Bool_matrix Ic_dag
