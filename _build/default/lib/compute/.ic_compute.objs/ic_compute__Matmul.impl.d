lib/compute/matmul.ml: Array Engine Float Ic_dag Ic_families Random
