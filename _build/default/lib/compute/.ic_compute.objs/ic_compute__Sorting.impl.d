lib/compute/sorting.ml: Array Engine Ic_dag List
