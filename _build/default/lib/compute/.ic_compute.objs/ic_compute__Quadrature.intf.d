lib/compute/quadrature.mli: Ic_dag Ic_families
