lib/compute/matmul.mli: Random
