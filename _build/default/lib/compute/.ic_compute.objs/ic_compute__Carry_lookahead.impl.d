lib/compute/carry_lookahead.ml: Array List Scan
