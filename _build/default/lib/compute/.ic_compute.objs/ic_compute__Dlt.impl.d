lib/compute/dlt.ml: Array Complex Engine Ic_dag Ic_families List Option
