lib/compute/carry_lookahead.mli:
