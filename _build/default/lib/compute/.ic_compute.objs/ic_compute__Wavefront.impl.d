lib/compute/wavefront.ml: Array Engine Ic_dag Ic_families String
