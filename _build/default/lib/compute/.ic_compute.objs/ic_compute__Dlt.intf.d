lib/compute/dlt.mli: Complex
