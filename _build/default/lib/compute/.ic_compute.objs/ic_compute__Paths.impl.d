lib/compute/paths.ml: Array Bool_matrix Engine Ic_dag Ic_families List Option
