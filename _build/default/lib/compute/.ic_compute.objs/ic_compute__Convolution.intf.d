lib/compute/convolution.mli: Complex
