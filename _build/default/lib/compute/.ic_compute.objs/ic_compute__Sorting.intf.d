lib/compute/sorting.mli: Ic_dag
