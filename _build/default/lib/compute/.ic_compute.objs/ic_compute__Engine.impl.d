lib/compute/engine.ml: Array Ic_dag Option
