lib/compute/quadrature.ml: Array Engine Float Ic_dag Ic_families List
