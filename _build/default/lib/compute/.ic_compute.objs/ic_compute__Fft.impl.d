lib/compute/fft.ml: Array Complex Engine Float Ic_dag Ic_families
