lib/compute/bool_matrix.mli: Format Random
