type t = bool array array

let dim m = Array.length m
let get m i j = m.(i).(j)
let of_fun n f = Array.init n (fun i -> Array.init n (fun j -> f i j))
let identity n = of_fun n ( = )
let zero n = of_fun n (fun _ _ -> false)

let mult a b =
  let n = dim a in
  if dim b <> n then invalid_arg "Bool_matrix.mult: dimension mismatch";
  of_fun n (fun i j ->
      let rec go k = k < n && ((a.(i).(k) && b.(k).(j)) || go (k + 1)) in
      go 0)

let add a b =
  let n = dim a in
  if dim b <> n then invalid_arg "Bool_matrix.add: dimension mismatch";
  of_fun n (fun i j -> a.(i).(j) || b.(i).(j))

let equal a b = a = b

let random rng n ~density =
  of_fun n (fun _ _ -> Random.State.float rng 1.0 < density)

let of_edges n edges =
  let m = Array.make_matrix n n false in
  List.iter (fun (i, j) -> m.(i).(j) <- true) edges;
  m

let pp ppf m =
  Array.iter
    (fun row ->
      Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) row;
      Format.pp_print_cut ppf ())
    m
