(** Recursive matrix multiplication through the dag [M] (Section 7).

    Equation (7.1) does not invoke commutativity, so the 2×2 scheme
    multiplies [n×n] matrices by recursing on quadrants. Each recursion
    level executes the 20-node dag [M] under its IC-optimal schedule; the
    eight product tasks recurse (down to a naive base case). *)

type mat = float array array

val naive : mat -> mat -> mat
(** Reference [O(n³)] product; operands must be square and equal-size. *)

val multiply : ?threshold:int -> mat -> mat -> mat
(** Recursive multiplication through [M]; dimensions must be a power of
    two. [threshold] (default 32): switch to {!naive} below this size. *)

val random : Random.State.t -> int -> mat
val approx_equal : ?eps:float -> mat -> mat -> bool
