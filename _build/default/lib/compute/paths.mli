(** Computing the paths in a graph (Section 6.2.2, Fig. 16).

    Given the boolean adjacency matrix [A] of a graph, compute the matrix
    [M] whose [(i,j)] entry is the vector [⟨β¹, ..., β^k⟩] with [β^len = 1]
    iff a length-[len] walk connects [i] to [j]. An 8-input parallel prefix
    over logical matrix multiplication produces the powers [A^1..A^k]; an
    in-tree ORs them into [M]. The whole thing executes through the
    [L_k]-shaped composite under its IC-optimal schedule — the paper's
    exemplar of a {e coarse-grained} prefix computation. *)

type t = bool array array array
(** [m.(i).(j).(len-1)]: is there a walk of length [len] from [i] to [j]? *)

val compute : ?schedule:Ic_dag.Schedule.t -> Bool_matrix.t -> k:int -> t
(** [compute a ~k]: path-length vectors for lengths [1..k]; [k] a power of
    two [>= 2]. Default schedule: the IC-optimal one of the [L_k] dag. *)

val reference : Bool_matrix.t -> k:int -> t
(** Sequential reference (repeated multiplication). *)
