(** Adaptive numerical integration (Section 3.2): the paper's exemplar of an
    expansion–reduction computation.

    The expansive phase subdivides the integration interval wherever the
    local error estimate exceeds the tolerance, producing a (possibly quite
    irregular) binary out-tree whose leaves hold areas over subintervals;
    the dual in-tree accumulates them. We build that diamond dag and then
    {e actually integrate through it} with the engine, under the IC-optimal
    diamond schedule. *)

type rule =
  | Trapezoid  (** linear approximation: [A(X,Y) = ½(F(X)+F(Y))(Y−X)] *)
  | Simpson  (** quadratic approximation *)

type result = {
  value : float;  (** the integral, computed through the dag *)
  shape : Ic_families.Out_tree.shape;  (** the adaptive subdivision tree *)
  diamond : Ic_families.Diamond.t;
  n_tasks : int;
  schedule : Ic_dag.Schedule.t;  (** the IC-optimal schedule that drove it *)
}

val integrate :
  ?rule:rule -> ?max_depth:int ->
  f:(float -> float) -> lo:float -> hi:float -> tol:float -> unit -> result
(** [max_depth] (default 12) caps the subdivision. *)

val reference :
  ?rule:rule -> ?max_depth:int ->
  f:(float -> float) -> lo:float -> hi:float -> tol:float -> unit -> float
(** The same adaptive algorithm run as a plain recursion — bitwise equal to
    [result.value] (same leaves, same summation tree). *)
