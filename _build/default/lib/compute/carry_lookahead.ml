(* carry operator over (generate, propagate) pairs; left argument is the
   less-significant prefix *)
let combine (g_low, p_low) (g_high, p_high) =
  (g_high || (p_high && g_low), p_low && p_high)

let add a b =
  let n = Array.length a in
  if n < 1 || Array.length b <> n then
    invalid_arg "Carry_lookahead.add: equal nonzero lengths required";
  let gp = Array.init n (fun i -> (a.(i) && b.(i), a.(i) <> b.(i))) in
  let prefixes = Scan.scan ~op:combine gp in
  Array.init (n + 1) (fun i ->
      if i = 0 then a.(0) <> b.(0)
      else if i = n then fst prefixes.(n - 1)
      else
        let carry_in = fst prefixes.(i - 1) in
        a.(i) <> b.(i) <> carry_in)

let bits_of_int ~width v =
  if v < 0 then invalid_arg "Carry_lookahead.bits_of_int: negative";
  Array.init width (fun i -> v land (1 lsl i) <> 0)

let int_of_bits bits =
  if Array.length bits > 62 then invalid_arg "Carry_lookahead.int_of_bits: too wide";
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( lor ) 0

let add_ints ~width x y = int_of_bits (add (bits_of_int ~width x) (bits_of_int ~width y))
