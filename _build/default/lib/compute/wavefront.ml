module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Mesh = Ic_families.Mesh

let pascal levels =
  let g = Mesh.out_mesh levels in
  (* node (k, j) has parents (k-1, j-1) and/or (k-1, j): their sum is the
     binomial C(k, j) *)
  let compute _v parents =
    if Array.length parents = 0 then 1
    else Array.fold_left ( + ) 0 parents
  in
  let values =
    Engine.execute ~schedule:(Mesh.out_schedule levels) { Engine.dag = g; compute }
  in
  Array.init (levels + 1) (fun j -> values.(Mesh.node levels j))

let grid ~rows ~cols =
  let w = cols + 1 in
  let node i j = (i * w) + j in
  let arcs = ref [] in
  for i = 0 to rows do
    for j = 0 to cols do
      if i < rows then arcs := (node i j, node (i + 1) j) :: !arcs;
      if j < cols then arcs := (node i j, node i (j + 1)) :: !arcs;
      if i < rows && j < cols then arcs := (node i j, node (i + 1) (j + 1)) :: !arcs
    done
  done;
  Dag.make_exn ~n:((rows + 1) * w) ~arcs:!arcs ()

let grid_schedule ~rows ~cols =
  let w = cols + 1 in
  let order = ref [] in
  for diag = rows + cols downto 0 do
    for i = min rows diag downto max 0 (diag - cols) do
      let j = diag - i in
      order := ((i * w) + j) :: !order
    done
  done;
  Schedule.of_array_exn (grid ~rows ~cols) (Array.of_list !order)

let edit_distance s t =
  let rows = String.length s and cols = String.length t in
  let g = grid ~rows ~cols in
  let w = cols + 1 in
  let compute v parents =
    let i = v / w and j = v mod w in
    if i = 0 then j
    else if j = 0 then i
    else begin
      (* parents ascending: (i-1, j-1), (i-1, j), (i, j-1) *)
      let diag = parents.(0) and up = parents.(1) and left = parents.(2) in
      let cost = if s.[i - 1] = t.[j - 1] then 0 else 1 in
      min (diag + cost) (min (up + 1) (left + 1))
    end
  in
  let values =
    Engine.execute ~schedule:(grid_schedule ~rows ~cols) { Engine.dag = g; compute }
  in
  values.((rows * w) + cols)

let pyramid_reduce ~op input =
  let n = Array.length input in
  if n < 1 then invalid_arg "Wavefront.pyramid_reduce: empty input";
  let levels = n - 1 in
  let g = Mesh.in_mesh levels in
  let base = Mesh.node levels 0 in
  let compute v parents =
    if v >= base then input.(v - base)
    else op parents.(0) parents.(1)
  in
  let values =
    Engine.execute ~schedule:(Mesh.in_schedule levels) { Engine.dag = g; compute }
  in
  values.(Mesh.node 0 0)

let edit_distance_reference s t =
  let m = String.length s and n = String.length t in
  let dp = Array.make_matrix (m + 1) (n + 1) 0 in
  for i = 0 to m do
    dp.(i).(0) <- i
  done;
  for j = 0 to n do
    dp.(0).(j) <- j
  done;
  for i = 1 to m do
    for j = 1 to n do
      let cost = if s.[i - 1] = t.[j - 1] then 0 else 1 in
      dp.(i).(j) <-
        min (dp.(i - 1).(j - 1) + cost) (min (dp.(i - 1).(j) + 1) (dp.(i).(j - 1) + 1))
    done
  done;
  dp.(m).(n)
