(** The Discrete Laplace (Z-) Transform (Section 6.2.1).

    [y_k(ω) = Σ_{i<n} x_i ω^{ik}] computed two ways, as in the paper:

    - {!via_prefix} runs the [L_n] dag: the parallel-prefix part turns the
      input vector [⟨1, ω^k, ..., ω^k⟩] into the powers [⟨1, ω^k, ...,
      ω^{(n-1)k}⟩]; each top task also multiplies in its [x_i]; the in-tree
      sums the terms.
    - {!via_tree} runs the [L'_n] dag: a ternary out-tree of [V_3] tasks
      generates the powers (leaf [i] — left to right — carries [ω^{ik}],
      each task deriving its power from its parent's with local
      multiplications; internal tasks carry the power of their leftmost
      leaf); the same in-tree accumulates.

    Both run under the Theorem 2.1 IC-optimal schedules of their dags. *)

val naive : x:Complex.t array -> omega:Complex.t -> k:int -> Complex.t
(** Direct evaluation of [y_k]. *)

val via_prefix : x:Complex.t array -> omega:Complex.t -> k:int -> Complex.t
(** [n = length x] must be a power of two >= 2. *)

val via_tree : x:Complex.t array -> omega:Complex.t -> k:int -> Complex.t
(** [n = length x] must be a power of two >= 4. *)

val transform :
  (x:Complex.t array -> omega:Complex.t -> k:int -> Complex.t) ->
  x:Complex.t array -> omega:Complex.t -> m:int -> Complex.t array
(** The full [m]-dimensional DLT [⟨y_0, ..., y_{m-1}⟩] using the given
    single-coefficient algorithm. *)
