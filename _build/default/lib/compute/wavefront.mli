(** Wavefront computations on mesh dags (Section 4).

    Two payloads: Pascal's triangle — whose dependency structure {e is} the
    out-mesh, executed under the mesh's IC-optimal wavefront schedule — and
    a classic dynamic-programming wavefront (edit distance on a rectangular
    grid with diagonal dependencies), the finite-element/vision-style
    workload family the paper motivates meshes with. *)

val pascal : int -> int array
(** [pascal levels]: the binomials [C(levels, 0..levels)], computed through
    the out-mesh under {!Ic_families.Mesh.out_schedule}. *)

(** {1 Rectangular wavefront DP} *)

val grid : rows:int -> cols:int -> Ic_dag.Dag.t
(** [(rows+1) × (cols+1)] grid; cell [(i,j)] depends on its left, upper and
    upper-left neighbours — the edit-distance table. *)

val grid_schedule : rows:int -> cols:int -> Ic_dag.Schedule.t
(** Antidiagonal wavefront order. *)

val edit_distance : string -> string -> int
(** Levenshtein distance computed through {!grid} under the wavefront
    schedule. *)

val edit_distance_reference : string -> string -> int

val pyramid_reduce : op:(int -> int -> int) -> int array -> int
(** The in-mesh (pyramid-dag) payload — "the arrays that arise in computer
    vision" (Section 4): each interior node combines its two parents, so
    the apex holds the fold of every length-2 window chain; with [op = max]
    this is the max-pooling pyramid. The input row has [n] entries
    ([n >= 1]); runs on {!Ic_families.Mesh.in_mesh} under its IC-optimal
    (duality-derived) schedule. *)
