module Dag = Ic_dag.Dag
module Bf = Ic_families.Butterfly_net

let bit_reverse ~bits x =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if x land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

let log2_exact n =
  let rec go p m =
    if m = 1 then Some p else if m land 1 = 1 then None else go (p + 1) (m / 2)
  in
  if n < 1 then None else go 0 n

let engine input =
  let n = Array.length input in
  let d =
    match log2_exact n with
    | Some d when d >= 1 -> d
    | _ -> invalid_arg "Fft.engine: input length must be a power of two >= 2"
  in
  let g = Bf.dag d in
  let compute v parents =
    let l = v lsr d and r = v land (n - 1) in
    if l = 0 then input.(bit_reverse ~bits:d r)
    else begin
      (* combining level l-1 -> l: blocks of len = 2^l, half = 2^(l-1) *)
      let len = 1 lsl l in
      let half = len / 2 in
      let j = r land (len - 1) in
      (* parents in ascending id order: row (r with the half-bit clear)
         first, then (r with it set) *)
      let u = parents.(0) and w = parents.(1) in
      let angle = -2.0 *. Float.pi *. float_of_int (j land (half - 1)) /. float_of_int len in
      let tw = Complex.polar 1.0 angle in
      if j < half then Complex.add u (Complex.mul tw w)
      else Complex.sub u (Complex.mul tw w)
    end
  in
  { Engine.dag = g; compute }

let fft ?schedule input =
  let n = Array.length input in
  let d =
    match log2_exact n with
    | Some d when d >= 1 -> d
    | _ -> invalid_arg "Fft.fft: input length must be a power of two >= 2"
  in
  let schedule =
    match schedule with Some s -> s | None -> Bf.schedule d
  in
  let values = Engine.execute ~schedule (engine input) in
  Array.init n (fun r -> values.(Bf.node ~d d r))

let ifft output =
  let n = Array.length output in
  let conj = Array.map Complex.conj output in
  let back = fft conj in
  Array.map
    (fun z -> Complex.div (Complex.conj z) { Complex.re = float_of_int n; im = 0.0 })
    back

let dft_naive input =
  let n = Array.length input in
  Array.init n (fun k ->
      let acc = ref Complex.zero in
      for i = 0 to n - 1 do
        let angle = -2.0 *. Float.pi *. float_of_int (i * k) /. float_of_int n in
        acc := Complex.add !acc (Complex.mul input.(i) (Complex.polar 1.0 angle))
      done;
      !acc)
