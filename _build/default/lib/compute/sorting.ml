module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let n_substages d = d * (d + 1) / 2

(* substage list for 2^d keys: (block_size, stride) pairs in network order *)
let substages d =
  List.concat
    (List.init d (fun pk ->
         let k = 1 lsl (pk + 1) in
         List.init (pk + 1) (fun i -> (k, 1 lsl (pk - i)))))

let network_dag d =
  if d < 1 then invalid_arg "Sorting.network_dag: need d >= 1";
  let n = 1 lsl d in
  let stages = substages d in
  let arcs = ref [] in
  List.iteri
    (fun t (_k, j) ->
      for r = 0 to n - 1 do
        arcs :=
          ((t * n) + r, ((t + 1) * n) + r)
          :: ((t * n) + r, ((t + 1) * n) + (r lxor j))
          :: !arcs
      done)
    stages;
  Dag.make_exn ~n:((n_substages d + 1) * n) ~arcs:!arcs ()

let schedule d =
  let n = 1 lsl d in
  let order = ref [] in
  List.iteri
    (fun t (_k, j) ->
      for r = 0 to n - 1 do
        if r land j = 0 then
          order := ((t * n) + (r lor j)) :: ((t * n) + r) :: !order
      done)
    (substages d);
  Schedule.of_nonsink_order_exn (network_dag d) (List.rev !order)

let sort_generic : type a. ?schedule:Schedule.t -> (a -> a -> int) -> a array -> a array =
 fun ?schedule:sched cmp keys ->
  let n = Array.length keys in
  let d =
    let rec go p m =
      if m = 1 then p
      else if m land 1 = 1 then invalid_arg "Sorting.sort: length must be 2^d"
      else go (p + 1) (m / 2)
    in
    if n < 2 then invalid_arg "Sorting.sort: length must be 2^d, d >= 1"
    else go 0 n
  in
  let stages = Array.of_list (substages d) in
  let g = network_dag d in
  let compute v parents =
    let t = v / n and r = v mod n in
    if t = 0 then keys.(r)
    else begin
      let k, j = stages.(t - 1) in
      let low = r land lnot j in
      (* ascending blocks have the k-bit of the row clear (Batcher) *)
      let ascending = low land k = 0 in
      let u = parents.(0) and w = parents.(1) in
      (* parents.(0) is the low row (bit j clear), parents.(1) the high *)
      let small, large = if cmp u w <= 0 then (u, w) else (w, u) in
      if r land j = 0 then if ascending then small else large
      else if ascending then large
      else small
    end
  in
  let values = Engine.execute ?schedule:sched { Engine.dag = g; compute } in
  let top = n_substages d * n in
  Array.init n (fun r -> values.(top + r))

(* Batcher's odd-even merge sort: the classic iterative formulation; each
   substage is a partial matching of compare-exchanges *)
let oddeven_substages d =
  if d < 1 then invalid_arg "Sorting.oddeven_substages: need d >= 1";
  let n = 1 lsl d in
  let stages = ref [] in
  let p = ref 1 in
  while !p < n do
    let k = ref !p in
    while !k >= 1 do
      let pairs = ref [] in
      let j = ref (!k mod !p) in
      while !j <= n - 1 - !k do
        for i = 0 to min (!k - 1) (n - !j - !k - 1) do
          if (i + !j) / (2 * !p) = (i + !j + !k) / (2 * !p) then
            pairs := (i + !j, i + !j + !k) :: !pairs
        done;
        j := !j + (2 * !k)
      done;
      stages := List.rev !pairs :: !stages;
      k := !k / 2
    done;
    p := !p * 2
  done;
  List.rev !stages

let oddeven_dag d =
  let n = 1 lsl d in
  let stages = oddeven_substages d in
  let arcs = ref [] in
  List.iteri
    (fun t pairs ->
      let paired = Array.make n false in
      List.iter
        (fun (a, b) ->
          paired.(a) <- true;
          paired.(b) <- true;
          arcs :=
            ((t * n) + a, ((t + 1) * n) + a)
            :: ((t * n) + a, ((t + 1) * n) + b)
            :: ((t * n) + b, ((t + 1) * n) + a)
            :: ((t * n) + b, ((t + 1) * n) + b)
            :: !arcs)
        pairs;
      for r = 0 to n - 1 do
        if not paired.(r) then arcs := ((t * n) + r, ((t + 1) * n) + r) :: !arcs
      done)
    stages;
  Dag.make_exn ~n:((List.length stages + 1) * n) ~arcs:!arcs ()

let oddeven_schedule d =
  let n = 1 lsl d in
  let stages = oddeven_substages d in
  let order = ref [] in
  List.iteri
    (fun t pairs ->
      let paired = Array.make n false in
      List.iter
        (fun (a, b) ->
          paired.(a) <- true;
          paired.(b) <- true;
          order := ((t * n) + b) :: ((t * n) + a) :: !order)
        pairs;
      for r = n - 1 downto 0 do
        if not paired.(r) then order := ((t * n) + r) :: !order
      done)
    stages;
  Schedule.of_nonsink_order_exn (oddeven_dag d) (List.rev !order)

let sort_oddeven keys =
  let n = Array.length keys in
  let d =
    let rec go p m =
      if m = 1 then p
      else if m land 1 = 1 then invalid_arg "Sorting.sort_oddeven: length must be 2^d"
      else go (p + 1) (m / 2)
    in
    if n < 2 then invalid_arg "Sorting.sort_oddeven: length must be 2^d, d >= 1"
    else go 0 n
  in
  let stages = Array.of_list (List.map Array.of_list (oddeven_substages d)) in
  let g = oddeven_dag d in
  let compute v parents =
    let t = v / n and r = v mod n in
    if t = 0 then keys.(r)
    else begin
      match
        Array.find_opt (fun (a, b) -> a = r || b = r) stages.(t - 1)
      with
      | None -> parents.(0) (* pass-through *)
      | Some (a, _b) ->
        let u = parents.(0) and w = parents.(1) in
        (* parents ascending: row a then row b; a < b always *)
        if r = a then min u w else max u w
    end
  in
  let values =
    Engine.execute ~schedule:(oddeven_schedule d) { Engine.dag = g; compute }
  in
  let top = Array.length stages * n in
  Array.init n (fun r -> values.(top + r))

let n_comparators d =
  let bitonic =
    List.fold_left (fun acc (_k, _j) -> acc + (1 lsl (d - 1))) 0 (substages d)
  in
  let oddeven =
    List.fold_left (fun acc pairs -> acc + List.length pairs) 0 (oddeven_substages d)
  in
  (bitonic, oddeven)

let default_schedule n =
  let rec log2 p m = if m <= 1 then p else log2 (p + 1) (m / 2) in
  if n >= 2 && n land (n - 1) = 0 then schedule (log2 0 n)
  else invalid_arg "Sorting.sort: length must be 2^d, d >= 1"

let sort ?schedule keys =
  let schedule =
    match schedule with
    | Some s -> s
    | None -> default_schedule (Array.length keys)
  in
  sort_generic ~schedule compare keys

let sort_floats keys =
  sort_generic ~schedule:(default_schedule (Array.length keys)) compare keys
