(* Stub selected on compilers without ic_par (OCaml < 5.0): the par
   group degrades to a notice instead of breaking the whole binary. *)

let run ~quick:_ ~emit:_ =
  prerr_endline
    "bench group par skipped: the parallel runtime requires OCaml >= 5.0"
