(* Real runner for the [par] bench group (OCaml >= 5.0 only).

   Every configuration is validated against the sequential engine's
   fingerprint before its record is emitted, so a timing record with
   "ok": false flags a correctness bug, not just a slow run. Timings
   here are machine-dependent (they scale with the core count), which
   is why the gate group never includes this one. *)

module Runtime = Ic_par.Runtime
module Payload = Ic_par.Payload

let now = Ic_prof.Monotonic.now

let order_name = function
  | Runtime.Steal -> "steal"
  | Runtime.Ic_priority -> "ic"

(* (family, size, spin_us): sizes chosen so the full sweep stays in the
   hundreds-of-ms range per configuration on a laptop core *)
let cases ~quick =
  if quick then
    [ ("wavefront", 24, 20.0); ("matmul", 5, 0.0); ("quadrature", 9, 50.0) ]
  else
    [
      ("wavefront", 40, 20.0);
      ("matmul", 6, 0.0);
      ("quadrature", 10, 50.0);
      ("fft", 8, 50.0);
    ]

let domain_counts ~quick = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ]
let orders = [ Runtime.Steal; Runtime.Ic_priority ]

let bench_payload ~emit ~quick (family, size, spin_us) =
  let p = Payload.make ~spin_us ~family ~size () in
  let g = Payload.dag p in
  let t0 = now () in
  let seq_fp = Payload.execute p in
  let seq_s = now () -. t0 in
  List.iter
    (fun domains ->
      List.iter
        (fun order ->
          let stats = ref None in
          let executor =
            Runtime.executor ~domains ~order ~priority:(Payload.rank p)
              ~on_stats:(fun s -> stats := Some s)
              ()
          in
          let fp = Payload.execute ~executor p in
          let s = Option.get !stats in
          let ok = fp = seq_fp && Payload.check p fp in
          emit
            (Printf.sprintf
               "{\"phase\": \"par\", \"bench\": \"par_%s%d_%s_d%d\", \
                \"n_nodes\": %d, \"tasks\": %d, \"time_ms\": %.3f, \
                \"seq_time_ms\": %.3f, \"speedup\": %.2f, \"steals\": %d, \
                \"steal_attempts\": %d, \"overflows\": %d, \"parks\": %d, \
                \"ok\": %b}"
               family size (order_name order) domains (Ic_dag.Dag.n_nodes g)
               s.Runtime.tasks
               (s.Runtime.wall_s *. 1000.)
               (seq_s *. 1000.)
               (seq_s /. s.Runtime.wall_s)
               s.Runtime.steals s.Runtime.steal_attempts s.Runtime.overflows
               s.Runtime.parks ok))
        orders)
    (domain_counts ~quick)

(* single-domain push/pop throughput of the work-stealing deque: the
   per-task floor the runtime adds before any payload work runs *)
let bench_deque ~emit ~quick =
  let ops = if quick then 1 lsl 18 else 1 lsl 21 in
  let d = Ic_par.Deque.create ~capacity:1024 in
  let t0 = now () in
  for i = 0 to ops - 1 do
    ignore (Ic_par.Deque.push d i);
    ignore (Ic_par.Deque.pop d)
  done;
  let el = now () -. t0 in
  emit
    (Printf.sprintf
       "{\"phase\": \"par\", \"bench\": \"par_deque_pushpop\", \"ops\": %d, \
        \"time_ms\": %.3f, \"ns_per_op\": %.1f}"
       ops (el *. 1000.)
       (el /. float_of_int ops *. 1e9))

let run ~quick ~emit =
  List.iter (bench_payload ~emit ~quick) (cases ~quick);
  bench_deque ~emit ~quick
