(* Stub selected on compilers without ic_served (OCaml < 5.0): the
   served group degrades to a notice instead of breaking the binary. *)

let run ~quick:_ ~emit:_ =
  prerr_endline
    "bench group served skipped: the serving subsystem requires OCaml >= 5.0"
