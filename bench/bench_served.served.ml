(* The real served bench runner, selected where ic_served builds
   (OCaml >= 5.0). Three scenes, all emitting the same record shape:

   - virtual_k1 / virtual_k16: the lock-amortization comparison. The
     deterministic virtual hammer drives a 3-shard server with 10^4
     workers; the only difference between the two records is the lease
     batch size, so the leased-tasks/sec ratio isolates the cost of a
     per-task vs per-batch lock acquisition and reply.
   - virtual_churn: the same fleet under a seeded crash/disconnect plan,
     to price lease expiry, re-issue and duplicate handling.
   - tcp_loopback: a real socket round trip — server in a domain, the
     real-time hammer multiplexing workers over a few connections.

   leases/sec here is leased tasks per second of harness wall time: the
   virtual clock prices no work, so wall time is exactly the server +
   harness CPU cost of serving the run. *)

module Wire = Ic_served.Wire
module Server = Ic_served.Server
module Hammer = Ic_served.Hammer
module Tcp = Ic_served.Tcp
module Plan = Ic_fault.Plan
module Recovery = Ic_fault.Recovery
module Mesh = Ic_families.Mesh
module Dag = Ic_dag.Dag

let pf = Printf.sprintf

let fin x = if Float.is_finite x then x else 0.0

let record ~bench ~n_tasks ~workers ~k ~wall_s ~(server : Server.stats)
    ~grant_p50 ~grant_p99 ~service_p50 ~service_p99 =
  pf
    "{\"phase\": \"served\", \"bench\": \"%s\", \"n_tasks\": %d, \
     \"workers\": %d, \"k\": %d, \"wall_s\": %.6f, \"leases\": %d, \
     \"leased_tasks\": %d, \"leased_tasks_per_s\": %.1f, \
     \"leases_per_s\": %.1f, \"completions\": %d, \"reissues\": %d, \
     \"duplicates\": %d, \"retry_afters\": %d, \"grant_p50_s\": %.6f, \
     \"grant_p99_s\": %.6f, \"service_p50_s\": %.6f, \"service_p99_s\": \
     %.6f}"
    bench n_tasks workers k wall_s server.Server.leases
    server.Server.leased_tasks
    (float_of_int server.Server.leased_tasks /. wall_s)
    (float_of_int server.Server.leases /. wall_s)
    server.Server.completions server.Server.reissues
    server.Server.duplicate_completes server.Server.retry_afters
    (fin grant_p50) (fin grant_p99) (fin service_p50) (fin service_p99)

(* The lock-amortization measurement proper: the lease-grant hot path in
   isolation. The pools are prefilled (pushes are inherently per-task —
   they happen on completion — so they are kept out of the timed
   region), then drained through [pop_batch] with max = k: per granted
   task the path pays 1/k of a lock acquisition plus one array copy.
   The k = 16 vs k = 1 grants/sec ratio is the claim "one lock
   acquisition amortizes over a batch of k" measured directly. *)
let pool_scene ~emit ~bench ~n ~k =
  let pools = Ic_served.Shards.create ~n_shards:3 () in
  for v = 0 to n - 1 do
    Ic_served.Shards.push pools ~shard:(v mod 3) v
  done;
  let out = Array.make k 0 in
  let t0 = Ic_prof.Monotonic.now () in
  let got = ref 0 in
  let shard = ref 0 in
  while !got < n do
    let b = Ic_served.Shards.pop_batch pools ~shard:!shard ~max:k out in
    if b = 0 then shard := (!shard + 1) mod 3 else got := !got + b
  done;
  let wall_s = Ic_prof.Monotonic.now () -. t0 in
  emit
    (pf
       "{\"phase\": \"served\", \"bench\": \"%s\", \"n_tasks\": %d, \
        \"workers\": 1, \"k\": %d, \"wall_s\": %.6f, \
        \"leased_tasks_per_s\": %.1f}"
       bench n k wall_s
       (float_of_int n /. wall_s))

(* End-to-end k sweep: a greedy driver drains an edgeless dag (every
   task eligible up front — the embarrassingly parallel extreme),
   completing each lease synchronously. Per task the server pays one
   Complete plus 1/k of a Lease_req; per-task bookkeeping (state flips,
   expiry tracking) is shared, so this ratio shows what batching buys
   across the whole request path, not just the lock. With [journal] the
   same drain runs against a write-ahead journal on a temp file —
   [Some false] flush-per-append, [Some true] fsync-per-append — so the
   journal-off / fsync-off / fsync-on triple prices durability per
   completion. With [live] the same drain mirrors every meter into an
   {!Ic_obs.Live} registry and samples the frontier/inflight gauges
   after each handle — the drain_k16 / drain_k16_live ratio is the
   whole-path price of live telemetry (acceptance: within 5%). *)
let drain_scene ~emit ~bench ~n ~k ?journal ?live () =
  let g = Dag.empty n in
  let j =
    Option.map
      (fun fsync ->
        let path = Filename.temp_file "ic_bench_journal" ".wal" in
        match Ic_served.Journal.open_ ~fsync ~checkpoint_every:4096 path with
        | Ok j -> (j, path)
        | Error e -> failwith ("bench journal: " ^ e))
      journal
  in
  let srv =
    Server.create
      ?journal:(Option.map fst j)
      ?live
      (Server.config ~n_shards:3 ~max_lease:64 ())
      g
  in
  let t0 = Ic_prof.Monotonic.now () in
  let now = ref 0.0 in
  let continue = ref true in
  while !continue do
    now := !now +. 1e-6;
    match Server.handle srv ~now:!now (Wire.Lease_req { worker = 0; k }) with
    | Wire.Lease { tasks; _ } ->
      Array.iter
        (fun task ->
          ignore
            (Server.handle srv ~now:!now (Wire.Complete { worker = 0; task })))
        tasks
    | Wire.Done _ -> continue := false
    | _ -> continue := false
  done;
  let wall_s = Ic_prof.Monotonic.now () -. t0 in
  let st = Server.stats srv in
  Option.iter
    (fun (j, path) ->
      Ic_served.Journal.close j;
      try Sys.remove path with Sys_error _ -> ())
    j;
  emit
    (record ~bench ~n_tasks:n ~workers:1 ~k ~wall_s ~server:st ~grant_p50:0.0
       ~grant_p99:0.0 ~service_p50:0.0 ~service_p99:0.0)

(* one registry shared across --repeat iterations; [run] resets it so
   every iteration's counters start from zero and a two-repeat run emits
   byte-identical registry state *)
let registry = Ic_obs.Metrics.create ()

let virtual_scene ~emit ~bench ~levels ~workers ~k ~churn =
  let g = Mesh.out_mesh levels in
  let scfg =
    Server.config ~n_shards:3 ~max_lease:64 ~expected_s:0.2 ~retry_after_s:0.2
      ~recovery:(Recovery.make ~timeout_factor:4.0 ())
      ()
  in
  let cfg =
    Hammer.config ~workers ~k ~mean_service_s:0.01 ~think_s:0.001 ~churn
      ~seed:0xBE7 ()
  in
  let r = Hammer.run_virtual ~metrics:registry ~server:scfg cfg g in
  emit
    (record ~bench ~n_tasks:r.Hammer.n_tasks ~workers ~k ~wall_s:r.Hammer.wall_s
       ~server:r.Hammer.server ~grant_p50:r.Hammer.lease_grant_p50_s
       ~grant_p99:r.Hammer.lease_grant_p99_s
       ~service_p50:r.Hammer.task_service_p50_s
       ~service_p99:r.Hammer.task_service_p99_s)

let tcp_scene ~emit ~levels ~workers ~k =
  let g = Mesh.out_mesh levels in
  let port = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Tcp.serve
          ~on_listen:(fun p -> Atomic.set port p)
          ~once:true ~port:0
          (Server.config ~n_shards:3 ~expected_s:0.5 ())
          g)
  in
  while Atomic.get port = 0 do
    Unix.sleepf 0.001
  done;
  let cfg =
    Hammer.config ~workers ~k ~mean_service_s:0.0005 ~think_s:0.0001 ()
  in
  let hr = Tcp.hammer ~connections:4 ~port:(Atomic.get port) cfg in
  let st = Domain.join server in
  emit
    (record ~bench:"tcp_loopback" ~n_tasks:(Dag.n_nodes g) ~workers ~k
       ~wall_s:hr.Tcp.wall_s ~server:st ~grant_p50:hr.Tcp.lease_grant_p50_s
       ~grant_p99:hr.Tcp.lease_grant_p99_s
       ~service_p50:hr.Tcp.task_service_p50_s
       ~service_p99:hr.Tcp.task_service_p99_s)

let run ~quick ~emit =
  (* the registry persists across --repeat iterations: reset it so each
     iteration accumulates from zero instead of stacking onto the last *)
  Ic_obs.Metrics.reset registry;
  let levels = if quick then 64 else 256 in
  let workers = if quick then 2_000 else 10_000 in
  let n_pool = if quick then 200_000 else 2_000_000 in
  let n_drain = if quick then 50_000 else 400_000 in
  let n_fsync = if quick then 5_000 else 20_000 in
  pool_scene ~emit ~bench:"pool_pop_k1" ~n:n_pool ~k:1;
  pool_scene ~emit ~bench:"pool_pop_k16" ~n:n_pool ~k:16;
  drain_scene ~emit ~bench:"drain_k1" ~n:n_drain ~k:1 ();
  drain_scene ~emit ~bench:"drain_k16" ~n:n_drain ~k:16 ();
  (* live-telemetry pricing: the same drain with every meter mirrored
     into a Live registry (sharded atomics + gauge sampling per handle);
     compare leased_tasks_per_s against drain_k16 *)
  drain_scene ~emit ~bench:"drain_k16_live" ~n:n_drain ~k:16
    ~live:(Ic_obs.Live.create ()) ();
  (* durability pricing: same drain, journal flushed per append, then
     fsynced per append (smaller n — each record is a disk barrier) *)
  drain_scene ~emit ~bench:"drain_k16_journal" ~n:n_drain ~k:16 ~journal:false
    ();
  drain_scene ~emit ~bench:"drain_k16_journal_fsync" ~n:n_fsync ~k:16
    ~journal:true ();
  virtual_scene ~emit ~bench:"virtual_10k_workers" ~levels ~workers ~k:8
    ~churn:Plan.none;
  virtual_scene ~emit ~bench:"virtual_churn" ~levels ~workers ~k:8
    ~churn:
      (Plan.make ~crash_rate:0.002 ~disconnect_rate:0.02 ~mean_downtime:0.5
         ~seed:11 ());
  tcp_scene ~emit ~levels:(if quick then 10 else 20)
    ~workers:(if quick then 100 else 200)
    ~k:4
