(** The [served] bench group: throughput and latency records for the
    lease-serving subsystem ([Ic_served]).

    This module is a dune [select]: on OCaml >= 5.0 the real runner
    ([bench_served.served.ml]) drives the sans-IO server with the
    deterministic virtual hammer — a 3-shard server against 10^4
    simulated workers, once per lease batch size (k = 1 vs k = 16, the
    lock-amortization comparison), once under seeded churn — prices the
    write-ahead journal (journal-off vs flush-per-append vs
    fsync-per-append drains), and then runs over real loopback TCP,
    emitting one JSON record per configuration with leases/sec and
    p50/p99 lease latencies. On 4.14 the stub
    ([bench_served.noserved.ml]) prints a one-line notice to stderr and
    emits nothing.

    The group is {e not} part of the perf gate: throughput is
    machine-specific, like [par]. *)

val run : quick:bool -> emit:(string -> unit) -> unit
(** [run ~quick ~emit] benchmarks the serving subsystem, passing each
    JSON record to [emit]. [quick] shrinks the dag and the worker
    count for CI smoke runs. *)
