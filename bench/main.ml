(* Bechamel timing benches: one Test.make per table/figure of the paper
   (the per-experiment index of DESIGN.md), all in one executable.

   dune exec bench/main.exe --
     [--group default|large|fault|prof|par|served|gate|all] [--quick] [--repeat K]
     [--json-out FILE] [--compare BASELINE.json] [--threshold METRIC=TAU]
     [--profile] [--profile-out FILE] [--flame-out FILE]

   The [large] group leaves Bechamel behind: million-node dags are built
   and profiled once (or a handful of times) under a plain wall-clock /
   Gc.allocated_bytes / VmHWM harness, and every bench emits a one-line
   JSON record to stdout; --json-out collects the run's records into a
   single valid JSON array. [gate] is the CI perf-gate selection
   (large + fault + prof); --repeat runs it K times so --compare can fold
   min-of-k, and --compare exits non-zero when a gated metric regresses
   past its relative threshold against the committed baseline. *)

open Bechamel
open Toolkit
module F = Ic_families
module G = Ic_granularity
module Baseline = Ic_prof.Baseline

let stage = Staged.stage

(* ---------------------------------------------------------------- CLI -- *)

type group = Default | Large | Fault | Prof | Par | Served | Gate | All

let group = ref Default
let quick = ref false
let repeat = ref 1
let json_out : string option ref = ref None
let trace_out : string option ref = ref None
let compare_with : string option ref = ref None
let thresholds = ref Baseline.default_thresholds
let profile = ref false
let profile_out : string option ref = ref None
let flame_out : string option ref = ref None

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--repeat" :: k :: rest ->
      (match int_of_string_opt k with
      | Some k when k >= 1 -> repeat := k
      | _ ->
        prerr_endline ("bad --repeat " ^ k);
        exit 2);
      go rest
    | "--json-out" :: file :: rest ->
      json_out := Some file;
      go rest
    | "--trace-out" :: file :: rest ->
      trace_out := Some file;
      go rest
    | "--compare" :: file :: rest ->
      compare_with := Some file;
      go rest
    | "--threshold" :: spec :: rest ->
      (match String.index_opt spec '=' with
      | Some i ->
        let metric = String.sub spec 0 i in
        let tau =
          String.sub spec (i + 1) (String.length spec - i - 1)
          |> float_of_string_opt
        in
        (match tau with
        | Some tau when Float.is_finite tau && tau >= 0.0 ->
          thresholds :=
            (metric, tau) :: List.remove_assoc metric !thresholds
        | _ ->
          prerr_endline ("bad --threshold " ^ spec);
          exit 2)
      | None ->
        prerr_endline ("bad --threshold " ^ spec ^ " (want METRIC=TAU)");
        exit 2);
      go rest
    | "--profile" :: rest ->
      profile := true;
      go rest
    | "--profile-out" :: file :: rest ->
      profile := true;
      profile_out := Some file;
      go rest
    | "--flame-out" :: file :: rest ->
      profile := true;
      flame_out := Some file;
      go rest
    | "--group" :: g :: rest ->
      (group :=
         match g with
         | "default" -> Default
         | "large" -> Large
         | "fault" -> Fault
         | "prof" -> Prof
         | "par" -> Par
         | "served" -> Served
         | "gate" -> Gate
         | "all" -> All
         | _ ->
           prerr_endline
             ("unknown group " ^ g
              ^ " (default|large|fault|prof|par|served|gate|all)");
           exit 2);
      go rest
    | arg :: _ ->
      prerr_endline ("unknown argument " ^ arg);
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

(* every record is printed as it lands and collected so --json-out can
   write one valid JSON array at the end (one object per line was not
   parseable as a .json document) *)
let records : string list ref = ref []

let emit_json line =
  print_endline line;
  records := line :: !records

let records_document () =
  "[\n  " ^ String.concat ",\n  " (List.rev !records) ^ "\n]\n"

(* write-to-temp + rename so a crash (or a reader racing the writer)
   never observes a truncated document at the final path *)
let write_json_array file =
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (records_document ());
  close_out oc;
  Sys.rename tmp file

(* E1 / Fig 1: building and scheduling the whole block repertoire *)
let fig1_blocks =
  Test.make ~name:"fig1_blocks"
    (stage (fun () ->
         List.concat_map
           (fun s ->
             Ic_blocks.Repertoire.
               [ vee s; lambda s; w s; m s; n s; cycle (s + 1) ])
           [ 1; 2; 4; 8; 16 ]))

(* E2 / Fig 2: a 510-task diamond with its Theorem 2.1 schedule *)
let fig2_diamond =
  Test.make ~name:"fig2_diamond"
    (stage (fun () ->
         let d = F.Diamond.complete ~arity:2 ~depth:8 in
         F.Diamond.schedule d))

(* E3 / Fig 3: coarsening that diamond *)
let fig3_coarsen_diamond =
  let d = F.Diamond.complete ~arity:2 ~depth:8 in
  Test.make ~name:"fig3_coarsen_diamond"
    (stage (fun () -> G.Coarsen_diamond.uniform d ~depth:4))

(* E4+E5 / Fig 4, Table 1: the three alternating composition types *)
let table1_compositions =
  let s1 = F.Out_tree.complete ~arity:2 ~depth:3 in
  let s2 = F.Out_tree.complete ~arity:2 ~depth:4 in
  Test.make ~name:"table1_compositions"
    (stage (fun () ->
         List.map
           (fun items -> F.Alternating.schedule (F.Alternating.build_exn items))
           [
             F.Alternating.diamond_chain [ s1; s2 ];
             F.Alternating.in_prefixed s1 [ s2 ];
             F.Alternating.out_suffixed [ s1 ] s2;
           ]))

(* E6 / Fig 5: wavefront mesh construction + schedule + profile *)
let fig5_mesh =
  Test.make ~name:"fig5_mesh"
    (stage (fun () ->
         let g = F.Mesh.out_mesh 40 in
         Ic_dag.Profile.run g (F.Mesh.out_schedule 40)))

(* E7 / Fig 6: the W-dag composition and its Theorem 2.1 schedule *)
let fig6_wdag_composition =
  Test.make ~name:"fig6_wdag_composition"
    (stage (fun () ->
         let c, sigmas = F.Mesh.w_decomposition 20 in
         Ic_core.Linear.schedule_exn c sigmas))

(* E8 / Fig 7: the coarsening sweep *)
let fig7_coarsen_mesh =
  Test.make ~name:"fig7_coarsen_mesh"
    (stage (fun () -> G.Coarsen_mesh.scaling ~levels:47 ~blocks:[ 1; 2; 4; 8 ]))

(* E9 / Figs 8-10: B_8 (2304 tasks) with its pairing schedule *)
let fig8_10_butterfly =
  Test.make ~name:"fig8_10_butterfly"
    (stage (fun () ->
         let g = F.Butterfly_net.dag 8 in
         Ic_dag.Profile.run g (F.Butterfly_net.schedule 8)))

(* E10 / eq 5.1: bitonic sorting 256 keys through the comparator dag *)
let eq51_sort =
  let rng = Random.State.make [| 1 |] in
  let keys = Array.init 256 (fun _ -> Random.State.int rng 100_000) in
  Test.make ~name:"eq51_sort" (stage (fun () -> Ic_compute.Sorting.sort keys))

(* E10 / eq 5.2: polynomial product via three butterfly executions *)
let eq52_fft_convolution =
  let rng = Random.State.make [| 2 |] in
  let coeffs n = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let a = coeffs 256 and b = coeffs 256 in
  Test.make ~name:"eq52_fft_convolution"
    (stage (fun () -> Ic_compute.Convolution.poly_mul_fft a b))

(* E11 / Figs 11-12: P_256 with its N-dag schedule *)
let fig11_12_prefix =
  Test.make ~name:"fig11_12_prefix"
    (stage (fun () ->
         let g = F.Prefix_dag.dag 256 in
         Ic_dag.Profile.run g (F.Prefix_dag.schedule 256)))

(* E12 / Fig 13: the L_32 dag and an 8-point DLT through L_8 *)
let fig13_dlt =
  let x = Array.init 8 (fun i -> { Complex.re = float_of_int i; im = 0.0 }) in
  let omega = Complex.polar 1.0 (2.0 *. Float.pi /. 8.0) in
  Test.make ~name:"fig13_dlt"
    (stage (fun () ->
         let t = F.Dlt_dag.l_dag 32 in
         ignore (F.Dlt_dag.schedule t);
         Ic_compute.Dlt.via_prefix ~x ~omega ~k:3))

(* E13 / Figs 14-15: L'_64 and the ternary-tree DLT *)
let fig14_15_dlt_tree =
  let x = Array.init 8 (fun i -> { Complex.re = float_of_int i; im = 0.0 }) in
  let omega = Complex.polar 1.0 (2.0 *. Float.pi /. 8.0) in
  Test.make ~name:"fig14_15_dlt_tree"
    (stage (fun () ->
         let t = F.Dlt_dag.l_prime_dag 64 in
         ignore (F.Dlt_dag.schedule t);
         Ic_compute.Dlt.via_tree ~x ~omega ~k:3))

(* E14 / Fig 16: path-length vectors of a 16-node graph, 8 powers *)
let fig16_paths =
  let rng = Random.State.make [| 3 |] in
  let a = Ic_compute.Bool_matrix.random rng 16 ~density:0.2 in
  Test.make ~name:"fig16_paths"
    (stage (fun () -> Ic_compute.Paths.compute a ~k:8))

(* E15 / Fig 17: 32x32 matrices through recursive M executions *)
let fig17_matmul =
  let rng = Random.State.make [| 4 |] in
  let a = Ic_compute.Matmul.random rng 32 and b = Ic_compute.Matmul.random rng 32 in
  Test.make ~name:"fig17_matmul"
    (stage (fun () -> Ic_compute.Matmul.multiply ~threshold:8 a b))

(* E16: one simulator run, IC-optimal policy on the L=20 mesh, 6 clients *)
let sim_assessment =
  let g = F.Mesh.out_mesh 20 in
  let theory = F.Mesh.out_schedule 20 in
  let config = Ic_sim.Simulator.config ~n_clients:6 ~jitter:0.5 () in
  Test.make ~name:"sim_assessment"
    (stage (fun () ->
         Ic_sim.Simulator.run config
           (Ic_heuristics.Policy.of_schedule "ic-optimal" theory)
           ~workload:Ic_sim.Workload.unit g))

(* supporting machinery worth tracking: the exact verifier and the priority
   relation over the repertoire *)
(* A2: the automatic scheduler decomposing and scheduling the matmul dag *)
let auto_scheduler =
  let g = F.Matmul_dag.dag () in
  Test.make ~name:"auto_scheduler" (stage (fun () -> Ic_core.Auto.schedule g))

let verifier_brute_force =
  let g = F.Butterfly_net.dag 2 in
  let s = F.Butterfly_net.schedule 2 in
  Test.make ~name:"verifier_brute_force"
    (stage (fun () -> Ic_dag.Optimal.is_ic_optimal g s))

let priority_matrix =
  let eps = List.map Ic_core.Priority.of_block Ic_blocks.Repertoire.all in
  Test.make ~name:"priority_matrix"
    (stage (fun () ->
         List.iter
           (fun a -> List.iter (fun b -> ignore (Ic_core.Priority.has_priority a b)) eps)
           eps))

(* E16b: burst-service sweep from a profile *)
let burst_service =
  let g = F.Mesh.out_mesh 20 in
  let s = F.Mesh.out_schedule 20 in
  Test.make ~name:"burst_service"
    (stage (fun () -> Ic_sim.Burst.sweep ~bursts:[ 1; 2; 4; 8 ] g s))

(* E17: batched scheduling, greedy and exact *)
let batched_greedy =
  let g = F.Mesh.out_mesh 12 in
  Test.make ~name:"batched_greedy"
    (stage (fun () -> Ic_batch.Batched.greedy g ~batch_size:4))

let batched_exact =
  let g = F.Mesh.out_mesh 4 in
  Test.make ~name:"batched_exact_dp"
    (stage (fun () -> Ic_batch.Batched.optimal g ~batch_size:2))

(* The Frontier engine on the paper's two biggest workloads: full-schedule
   replay through the mutable engine, and the one-pass bulk profile behind
   Profile.run. Dags and schedules are built once outside the timed body. *)
let frontier_mesh = F.Mesh.out_mesh 256
let frontier_mesh_schedule = F.Mesh.out_schedule 256
let frontier_butterfly = F.Butterfly_net.dag 10
let frontier_butterfly_schedule = F.Butterfly_net.schedule 10

let frontier_replay name g s =
  let order = Ic_dag.Schedule.order s in
  Test.make ~name
    (stage (fun () ->
         let fr = Ic_dag.Frontier.create g in
         Array.iter (Ic_dag.Frontier.execute fr) order))

let frontier_replay_mesh256 =
  frontier_replay "frontier_replay_mesh256" frontier_mesh
    frontier_mesh_schedule

let frontier_replay_butterfly10 =
  frontier_replay "frontier_replay_butterfly10" frontier_butterfly
    frontier_butterfly_schedule

let frontier_profile_mesh256 =
  Test.make ~name:"frontier_profile_mesh256"
    (stage (fun () -> Ic_dag.Profile.run frontier_mesh frontier_mesh_schedule))

let frontier_profile_butterfly10 =
  Test.make ~name:"frontier_profile_butterfly10"
    (stage (fun () ->
         Ic_dag.Profile.run frontier_butterfly frontier_butterfly_schedule))

let tests =
  Test.make_grouped ~name:"ic-scheduling"
    [
      fig1_blocks; fig2_diamond; fig3_coarsen_diamond; table1_compositions;
      fig5_mesh; fig6_wdag_composition; fig7_coarsen_mesh; fig8_10_butterfly;
      eq51_sort; eq52_fft_convolution; fig11_12_prefix; fig13_dlt;
      fig14_15_dlt_tree; fig16_paths; fig17_matmul; sim_assessment;
      burst_service; batched_greedy; batched_exact; auto_scheduler;
      verifier_brute_force; priority_matrix; frontier_replay_mesh256;
      frontier_replay_butterfly10; frontier_profile_mesh256;
      frontier_profile_butterfly10;
    ]

(* ------------------------------------------------- the [large] group -- *)

(* Construction and replay far beyond the paper's figure sizes: out-mesh
   1024 (~525k tasks), butterfly 2^16 inputs (~1.1M tasks), parallel-prefix
   2^18 (~5M tasks). Bechamel's per-run isolation is pointless at these
   sizes; a plain harness times a few runs, meters allocation through
   [Gc.allocated_bytes] and peak memory through VmHWM. *)

let max_rss_kb () =
  (* VmHWM from /proc/self/status: Linux-only, absent elsewhere *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          String.sub line 6 (String.length line - 6)
          |> String.trim
          |> String.split_on_char ' '
          |> List.hd
          |> int_of_string
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r

(* time [f] for at least [min_runs] runs and ~0.2 s, returning mean seconds
   per run and mean bytes allocated per run *)
let time_it ?(min_runs = 1) f =
  let runs = ref 0 and total = ref 0.0 in
  let a0 = Gc.allocated_bytes () in
  while !runs < min_runs || (!total < 0.2 && !runs < 1_000) do
    let t0 = Sys.time () in
    ignore (Sys.opaque_identity (f ()));
    total := !total +. (Sys.time () -. t0);
    incr runs
  done;
  let a1 = Gc.allocated_bytes () in
  ( !total /. float_of_int !runs,
    (a1 -. a0 -. (56.0 *. float_of_int !runs)) /. float_of_int !runs )

(* names and phases are emitted through Ic_obs.Json.quote, so a hostile
   bench name (quotes, control characters) cannot produce invalid JSON *)
let current_phase = ref "large"

let large_record ~name ~n_nodes ~n_arcs ~seconds ~alloc_bytes =
  emit_json
    (Printf.sprintf
       "{\"phase\": %s, \"bench\": %s, \"n_nodes\": %d, \"n_arcs\": %d, \
        \"time_ms\": %.3f, \"allocated_mb\": %.3f, \"max_rss_kb\": %d}"
       (Ic_obs.Json.quote !current_phase)
       (Ic_obs.Json.quote name) n_nodes n_arcs (1e3 *. seconds)
       (alloc_bytes /. 1048576.0)
       (max_rss_kb ()))

let large_build name build =
  let seconds, alloc = time_it build in
  let g = build () in
  large_record ~name ~n_nodes:(Ic_dag.Dag.n_nodes g)
    ~n_arcs:(Ic_dag.Dag.n_arcs g) ~seconds ~alloc_bytes:alloc

let large_profile name g s ~min_runs =
  let seconds, alloc = time_it ~min_runs (fun () -> Ic_dag.Profile.run g s) in
  large_record ~name ~n_nodes:(Ic_dag.Dag.n_nodes g)
    ~n_arcs:(Ic_dag.Dag.n_arcs g) ~seconds ~alloc_bytes:alloc

let run_large () =
  current_phase := "large";
  let mesh_levels = if !quick then 256 else 1024 in
  let butterfly_dim = if !quick then 10 else 16 in
  let prefix_inputs = if !quick then 1 lsl 12 else 1 lsl 18 in
  large_build
    (Printf.sprintf "build_out_mesh_%d" mesh_levels)
    (fun () -> F.Mesh.out_mesh mesh_levels);
  large_build
    (Printf.sprintf "build_butterfly_%d" butterfly_dim)
    (fun () -> F.Butterfly_net.dag butterfly_dim);
  large_build
    (Printf.sprintf "build_prefix_%d" prefix_inputs)
    (fun () -> F.Prefix_dag.dag prefix_inputs);
  (* schedule replay at the large mesh size, one pass over ~1M arcs *)
  let g = F.Mesh.out_mesh mesh_levels in
  let s = F.Mesh.out_schedule mesh_levels in
  large_profile
    (Printf.sprintf "profile_out_mesh_%d" mesh_levels)
    g s ~min_runs:(if !quick then 1 else 3);
  (* the acceptance workload: allocation on mesh-256 profile replay *)
  let g256 = F.Mesh.out_mesh 256 in
  let s256 = F.Mesh.out_schedule 256 in
  large_profile "profile_out_mesh_256_alloc" g256 s256 ~min_runs:20;
  (* streaming construction: the same mesh through the spilling Builder
     (IC_BUILDER_SPILL reaches the family constructor's internal Builder),
     arcs round-tripping through the unlinked temp file in 64k-arc chunks *)
  Unix.putenv "IC_BUILDER_SPILL" (string_of_int (1 lsl 16));
  large_build
    (Printf.sprintf "build_out_mesh_%d_spill" mesh_levels)
    (fun () -> F.Mesh.out_mesh mesh_levels);
  Unix.putenv "IC_BUILDER_SPILL" "";
  (* snapshots: write the large mesh out, map it back in O(1), and replay
     the profile straight off the mapping *)
  let snap = Filename.temp_file "ic_bench_mesh" ".icdag" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      let save () =
        match Ic_dag.Dag.save g snap with
        | Ok () -> ()
        | Error e -> failwith ("snapshot save: " ^ e)
      in
      let load () =
        match Ic_dag.Dag.load snap with
        | Ok h -> h
        | Error e -> failwith ("snapshot load: " ^ e)
      in
      let seconds, alloc = time_it save in
      large_record
        ~name:(Printf.sprintf "snapshot_save_mesh_%d" mesh_levels)
        ~n_nodes:(Ic_dag.Dag.n_nodes g) ~n_arcs:(Ic_dag.Dag.n_arcs g) ~seconds
        ~alloc_bytes:alloc;
      let seconds, alloc = time_it (fun () -> load ()) in
      large_record
        ~name:(Printf.sprintf "snapshot_load_mesh_%d" mesh_levels)
        ~n_nodes:(Ic_dag.Dag.n_nodes g) ~n_arcs:(Ic_dag.Dag.n_arcs g) ~seconds
        ~alloc_bytes:alloc;
      let h = load () in
      large_profile
        (Printf.sprintf "profile_out_mesh_%d_snapshot" mesh_levels)
        h s
        ~min_runs:(if !quick then 1 else 3));
  (* the load loop above leaves ~1k dead mmap views behind; unmap them now
     so --repeat passes and later groups measure against a clean footprint *)
  Gc.compact ()

(* ------------------------------------------------- the [fault] group -- *)

(* E17 support: what do the fault-injection hooks cost when no fault ever
   fires? Three runs of the E16 workload (mesh-20, ic-optimal, 6 clients):
   the fault-free fast path, a plan whose probabilities are negligible but
   nonzero (every attempt samples the injector and schedules timeout and
   speculation events that fire as guarded no-ops), and a genuinely
   crashy/straggly run for scale. *)
let run_fault () =
  current_phase := "fault";
  let g = F.Mesh.out_mesh 20 in
  let theory = F.Mesh.out_schedule 20 in
  let policy = Ic_heuristics.Policy.of_schedule "ic-optimal" theory in
  let bench name config =
    let seconds, alloc =
      time_it ~min_runs:50 (fun () ->
          Ic_sim.Simulator.run config policy ~workload:Ic_sim.Workload.unit g)
    in
    large_record ~name ~n_nodes:(Ic_dag.Dag.n_nodes g)
      ~n_arcs:(Ic_dag.Dag.n_arcs g) ~seconds ~alloc_bytes:alloc
  in
  bench "sim_fault_hooks_off"
    (Ic_sim.Simulator.config ~n_clients:6 ~jitter:0.5 ());
  bench "sim_fault_hooks_idle"
    (Ic_sim.Simulator.config ~n_clients:6 ~jitter:0.5
       ~faults:
         (Ic_fault.Plan.make ~straggler_probability:1e-12
            ~loss_probability:1e-12 ~fail_probability:1e-12 ())
       ~recovery:
         (Ic_fault.Recovery.make ~timeout_factor:1e6 ~speculation_factor:1e6
            ())
       ());
  bench "sim_fault_crashy"
    (Ic_sim.Simulator.config ~n_clients:6 ~jitter:0.5
       ~faults:
         (Ic_fault.Plan.make ~crash_rate:0.01 ~straggler_probability:0.2
            ~straggler_factor:6.0 ())
       ~recovery:
         (Ic_fault.Recovery.make ~timeout_factor:4.0 ~detection_latency:0.25
            ~backoff_base:0.1 ~backoff_jitter:0.5 ~speculation_factor:2.0 ())
       ())

(* -------------------------------------------------- the [prof] group -- *)

(* The acceptance measurement for the self-profiler's disabled path:
   [Frontier.profile] (instrumented, profiling off) against
   [Frontier.profile_raw] (the identical loop with no instrumentation) on
   the mesh-256 replay, plus the full create/execute replay whose inner
   loop carries an enter/leave pair per executed node. Each number is the
   best of 3 batches of >= 20 runs, so scheduler noise has three chances
   to get out of the way; the derived overhead_pct record is what DESIGN.md
   quotes and what the perf JSON tracks over time. *)
let run_prof () =
  current_phase := "prof";
  let g = F.Mesh.out_mesh 256 in
  let s = F.Mesh.out_schedule 256 in
  let order = Ic_dag.Schedule.order s in
  let best f =
    let rec go k t a =
      if k = 0 then (t, a)
      else
        let t', a' = time_it ~min_runs:20 f in
        go (k - 1) (Float.min t t') (Float.min a a')
    in
    go 3 infinity infinity
  in
  let record name (seconds, alloc) =
    large_record ~name ~n_nodes:(Ic_dag.Dag.n_nodes g)
      ~n_arcs:(Ic_dag.Dag.n_arcs g) ~seconds ~alloc_bytes:alloc
  in
  let was_on = Ic_prof.Span.enabled () in
  Ic_prof.Span.disable ();
  let raw_t, raw_a = best (fun () -> Ic_dag.Frontier.profile_raw g ~order) in
  let off_t, off_a = best (fun () -> Ic_dag.Frontier.profile g ~order) in
  let replay () =
    let fr = Ic_dag.Frontier.create g in
    Array.iter (Ic_dag.Frontier.execute fr) order
  in
  let replay_off = best replay in
  Ic_prof.Span.enable ();
  let on = best (fun () -> Ic_dag.Frontier.profile g ~order) in
  let replay_on = best replay in
  if not was_on then Ic_prof.Span.disable ();
  record "prof_profile_raw_mesh256" (raw_t, raw_a);
  record "prof_profile_off_mesh256" (off_t, off_a);
  record "prof_profile_on_mesh256" on;
  record "prof_replay_off_mesh256" replay_off;
  record "prof_replay_on_mesh256" replay_on;
  let pct later earlier =
    if earlier > 0.0 then 100.0 *. (later -. earlier) /. earlier else 0.0
  in
  emit_json
    (Printf.sprintf
       "{\"phase\": \"prof\", \"bench\": \"prof_disabled_overhead\", \
        \"overhead_pct\": %.2f, \"alloc_delta_mb\": %.4f}"
       (pct off_t raw_t)
       ((off_a -. raw_a) /. 1048576.0))

(* ----------------------------------------------- the [default] group -- *)

let run_default () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let rows =
    Hashtbl.fold
      (fun _label by_name acc ->
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_name acc)
      merged []
    |> List.sort compare
  in
  Format.printf "%-45s %15s %10s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) ->
          if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
          else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
          else Printf.sprintf "%.1f ns" t
        | _ -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      Format.printf "%-45s %15s %10s@." name time r2)
    rows;
  (* one machine-readable line for CI trend scraping: name -> ns/op *)
  let json =
    rows
    |> List.filter_map (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some (t :: _) -> Some (Printf.sprintf "%S: %.1f" name t)
           | _ -> None)
    |> String.concat ", "
  in
  emit_json (Printf.sprintf "{%s}" json)

(* --trace-out FILE: one traced run of the E16 assessment workload through
   the Ic_obs subsystem, exported as a Chrome trace next to the bench JSON *)
let run_trace file =
  current_phase := "trace";
  let g = F.Mesh.out_mesh 20 in
  let theory = F.Mesh.out_schedule 20 in
  let config = Ic_sim.Simulator.config ~n_clients:6 ~jitter:0.5 () in
  let trace = Ic_obs.Trace.create () in
  ignore
    (Ic_sim.Simulator.run ~sink:trace config
       (Ic_heuristics.Policy.of_schedule "ic-optimal" theory)
       ~workload:Ic_sim.Workload.unit g);
  (* the obs-export span lives at the call site: Ic_obs cannot depend on
     Ic_prof (Ic_prof reads JSON through Ic_obs.Json) *)
  let dump =
    Ic_prof.Span.time "obs.chrome_export" (fun () ->
        Ic_obs.Exporter.chrome_trace ~process_name:"bench sim_assessment"
          ~label:(Ic_dag.Dag.label g) trace)
  in
  let oc = open_out file in
  output_string oc dump;
  close_out oc;
  emit_json
    (Printf.sprintf
       "{\"phase\": \"trace\", \"bench\": \"trace_sim_assessment\", \
        \"events\": %d, \"trace_out\": %s}"
       (Ic_obs.Trace.length trace)
       (Ic_obs.Json.quote file))

(* --------------------------------------------------- group: par ------ *)

(* Bench_par is a dune select: the real runner on OCaml >= 5.0 (where
   ic_par builds), a one-line notice on 4.14. Records go through
   emit_json so --json-out and --compare see them like any other group. *)
let run_par () = Bench_par.run ~quick:!quick ~emit:emit_json

(* ------------------------------------------------ group: served ----- *)

(* Bench_served is the same select arrangement as Bench_par: real runner
   where ic_served builds, a notice on 4.14. Like par, the group stays
   out of the gate -- leases/sec is machine-specific. *)
let run_served () = Bench_served.run ~quick:!quick ~emit:emit_json

(* ------------------------------------------------- report + compare -- *)

let dump_profile () =
  let infos = Ic_prof.Span.capture () in
  (* the span table goes to stderr: stdout carries the JSON records *)
  prerr_string (Ic_prof.Report.to_text infos);
  (match !profile_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (Ic_prof.Report.to_json infos);
    close_out oc);
  match !flame_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (Ic_prof.Report.to_collapsed infos);
    close_out oc

let run_compare file =
  match Baseline.load_file file with
  | Error e ->
    Printf.eprintf "cannot load baseline %s: %s\n" file e;
    exit 2
  | Ok baseline -> (
    match Baseline.load_string (records_document ()) with
    | Error e ->
      Printf.eprintf "cannot parse this run's records: %s\n" e;
      exit 2
    | Ok current ->
      let comparisons =
        Baseline.compare_runs ~thresholds:!thresholds ~baseline ~current ()
        |> List.filter (fun c -> c.Baseline.threshold <> None)
      in
      Baseline.pp_comparisons stderr comparisons;
      if Baseline.regressed comparisons then begin
        prerr_endline "perf gate: REGRESSED";
        exit 1
      end
      else prerr_endline "perf gate: ok")

let () =
  parse_args ();
  if !profile && !compare_with <> None then
    prerr_endline
      "warning: --profile skews the timings --compare gates on; run the \
       gate un-profiled";
  if !profile then Ic_prof.Span.enable ();
  for _ = 1 to !repeat do
    match !group with
    | Default -> run_default ()
    | Large -> run_large ()
    | Fault -> run_fault ()
    | Prof -> run_prof ()
    | Par -> run_par ()
    | Served -> run_served ()
    (* the gate stays par- and served-free: their timings depend on the
       host's core count, so they would make the BASELINE compare
       machine-specific *)
    | Gate ->
      run_large ();
      run_fault ();
      run_prof ()
    | All ->
      run_default ();
      run_large ();
      run_fault ();
      run_prof ();
      run_par ();
      run_served ()
  done;
  Option.iter run_trace !trace_out;
  Option.iter write_json_array !json_out;
  if !profile then dump_profile ();
  Option.iter run_compare !compare_with
