(** The [par] bench group: wall-clock and steal-counter records for the
    domains-based parallel runtime ([Ic_par]).

    This module is a dune [select]: on OCaml >= 5.0 the real runner
    ([bench_par.par.ml]) executes each payload family sequentially and
    then under the parallel runtime across a sweep of domain counts and
    ordering modes, emitting one JSON record per configuration plus a
    deque push/pop microbenchmark. On 4.14 the stub
    ([bench_par.nopar.ml]) prints a one-line notice to stderr and emits
    nothing, so every other group keeps working. *)

val run : quick:bool -> emit:(string -> unit) -> unit
(** [run ~quick ~emit] benchmarks the parallel runtime, passing each
    JSON record (one object per line, same shape the perf gate parses)
    to [emit]. [quick] shrinks payload sizes and the domain sweep for
    CI smoke runs. *)
