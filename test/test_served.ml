(* The served subsystem: wire codec properties, the sharded lease server
   state machine, the deterministic virtual load harness, and the TCP
   transport over loopback. Only built on OCaml 5 (with ic_served). *)

module Wire = Ic_served.Wire
module Server = Ic_served.Server
module Shards = Ic_served.Shards
module Hammer = Ic_served.Hammer
module Tcp = Ic_served.Tcp
module Shard_view = Ic_dag.Shard_view
module Dag = Ic_dag.Dag
module Mesh = Ic_families.Mesh
module Plan = Ic_fault.Plan
module Recovery = Ic_fault.Recovery
module Metrics = Ic_obs.Metrics
module Trace = Ic_obs.Trace

let qcheck = List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------ wire codec *)

let gen_msg =
  let open QCheck.Gen in
  let id = frequency [ (4, int_range 0 0xFFFF); (1, int_range 0 Wire.max_u32) ] in
  let dur =
    frequency
      [
        (4, map Float.abs (float_bound_inclusive 1000.0));
        (1, return infinity);
        (1, return 0.0);
      ]
  in
  frequency
    [
      (3, map (fun worker -> Wire.Hello { worker }) id);
      ( 5,
        map2
          (fun worker k -> Wire.Lease_req { worker; k })
          id (int_range 1 0xFFFF) );
      (5, map2 (fun worker task -> Wire.Complete { worker; task }) id id);
      (2, map (fun worker -> Wire.Heartbeat { worker }) id);
      (1, return Wire.Drain);
      ( 2,
        map2 (fun n_tasks n_shards -> Wire.Welcome { n_tasks; n_shards }) id id
      );
      ( 5,
        map2
          (fun tasks expires_in_s -> Wire.Lease { tasks; expires_in_s })
          (map Array.of_list (list_size (int_range 1 64) id))
          dur );
      (2, map (fun delay_s -> Wire.Retry_after { delay_s }) dur);
      (2, map2 (fun completed reissues -> Wire.Done { completed; reissues }) id id);
      (1, return Wire.Ack);
    ]

let arb_msg = QCheck.make ~print:(fun _ -> "<msg>") gen_msg

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips every message"
    ~count:2000 arb_msg (fun m ->
      let s = Wire.to_string m in
      let b = Bytes.of_string s in
      match Wire.decode_frame b ~pos:0 ~avail:(Bytes.length b) with
      | `Msg (m', consumed) -> m' = m && consumed = Bytes.length b
      | `Need_more | `Error _ -> false)

let prop_truncated_needs_more =
  QCheck.Test.make ~name:"every strict prefix of a frame is Need_more"
    ~count:500 arb_msg (fun m ->
      let b = Bytes.of_string (Wire.to_string m) in
      let n = Bytes.length b in
      let ok = ref true in
      for len = 0 to n - 1 do
        match Wire.decode_frame b ~pos:0 ~avail:len with
        | `Need_more -> ()
        | `Msg _ | `Error _ -> ok := false
      done;
      !ok)

let prop_junk_never_raises =
  QCheck.Test.make ~name:"arbitrary bytes never raise out of the reader"
    ~count:2000
    QCheck.(string_of_size (Gen.int_range 0 256))
    (fun s ->
      let r = Wire.Reader.create () in
      Wire.Reader.feed r (Bytes.of_string s) 0 (String.length s);
      (* drain until the reader stalls or errors; any exception fails *)
      let rec drain budget =
        if budget = 0 then true
        else
          match Wire.Reader.next r with
          | Ok (Some _) -> drain (budget - 1)
          | Ok None | Error _ -> true
      in
      drain 64)

let test_oversized_frame_rejected () =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int (Wire.max_frame + 1));
  (match Wire.decode_frame b ~pos:0 ~avail:8 with
  | `Error _ -> ()
  | `Msg _ | `Need_more -> Alcotest.fail "oversized length accepted");
  (* and through the reader: the stream is unrecoverable *)
  let r = Wire.Reader.create () in
  Wire.Reader.feed r b 0 8;
  match Wire.Reader.next r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reader accepted oversized frame"

let test_bad_tag_rejected () =
  let b = Bytes.create 5 in
  Bytes.set_int32_le b 0 1l;
  Bytes.set b 4 '\xEE';
  match Wire.decode_frame b ~pos:0 ~avail:5 with
  | `Error _ -> ()
  | `Msg _ | `Need_more -> Alcotest.fail "unknown tag accepted"

let test_trailing_bytes_rejected () =
  (* a valid Drain payload plus one stray byte inside the frame *)
  let drain = Wire.to_string Wire.Drain in
  let payload_len = String.length drain - 4 in
  let b = Bytes.create (String.length drain + 1) in
  Bytes.blit_string drain 0 b 0 (String.length drain);
  Bytes.set_int32_le b 0 (Int32.of_int (payload_len + 1));
  Bytes.set b (String.length drain) '\x00';
  match Wire.decode_frame b ~pos:0 ~avail:(Bytes.length b) with
  | `Error _ -> ()
  | `Msg _ | `Need_more -> Alcotest.fail "trailing payload bytes accepted"

let test_reader_byte_at_a_time () =
  let msgs =
    [
      Wire.Hello { worker = 7 };
      Wire.Lease { tasks = [| 1; 2; 3 |]; expires_in_s = 0.5 };
      Wire.Retry_after { delay_s = infinity };
      Wire.Complete { worker = 7; task = 2 };
      Wire.Done { completed = 3; reissues = 0 };
      Wire.Ack;
    ]
  in
  let buf = Buffer.create 128 in
  List.iter (Wire.encode buf) msgs;
  let s = Buffer.to_bytes buf in
  let r = Wire.Reader.create () in
  let got = ref [] in
  Bytes.iter
    (fun c ->
      Wire.Reader.feed r (Bytes.make 1 c) 0 1;
      let rec drain () =
        match Wire.Reader.next r with
        | Ok (Some m) ->
          got := m :: !got;
          drain ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "reader error: %s" e
      in
      drain ())
    s;
  Alcotest.(check int) "message count" (List.length msgs) (List.length !got);
  if List.rev !got <> msgs then Alcotest.fail "messages differ or reordered"

(* ------------------------------------------------- shard view and pools *)

let test_shard_view_partition () =
  let g = Mesh.out_mesh 20 in
  let v = Shard_view.create ~n_shards:3 g in
  Alcotest.(check int) "shards" 3 (Shard_view.n_shards v);
  let total = ref 0 in
  for s = 0 to 2 do
    total := !total + Shard_view.shard_size v s
  done;
  Alcotest.(check int) "sizes cover the dag" (Dag.n_nodes g) !total;
  (* contiguous blocks: shard_of is monotone in the node id *)
  for u = 1 to Dag.n_nodes g - 1 do
    if Shard_view.shard_of v u < Shard_view.shard_of v (u - 1) then
      Alcotest.fail "shard_of not monotone"
  done

let test_shard_view_exactly_once_ready () =
  let g = Mesh.out_mesh 20 in
  let n = Dag.n_nodes g in
  let v = Shard_view.create ~n_shards:4 g in
  let seen = Array.make n 0 in
  let pending = Queue.create () in
  Shard_view.iter_initial v (fun ~shard:_ u ->
      seen.(u) <- seen.(u) + 1;
      Queue.add u pending);
  while not (Queue.is_empty pending) do
    let u = Queue.pop pending in
    Shard_view.complete v u ~ready:(fun ~shard u' ->
        Alcotest.(check int) "shard tag" (Shard_view.shard_of v u') shard;
        seen.(u') <- seen.(u') + 1;
        Queue.add u' pending)
  done;
  Alcotest.(check bool) "complete" true (Shard_view.is_complete v);
  Array.iteri
    (fun u c -> if c <> 1 then Alcotest.failf "node %d ready %d times" u c)
    seen

let test_pool_batch_pop () =
  let p = Shards.create ~n_shards:2 () in
  List.iter (fun v -> Shards.push p ~shard:0 v) [ 1; 2; 3; 4; 5 ];
  Shards.push p ~shard:1 9;
  let out = Array.make 8 0 in
  let n = Shards.pop_batch p ~shard:0 ~max:3 out in
  Alcotest.(check int) "batch size" 3 n;
  Alcotest.(check (list int)) "LIFO, newest first" [ 5; 4; 3 ]
    (Array.to_list (Array.sub out 0 3));
  Alcotest.(check int) "other shard untouched" 1 (Shards.size p ~shard:1);
  let n = Shards.pop_batch p ~shard:0 ~max:8 out in
  Alcotest.(check int) "remainder" 2 n;
  Alcotest.(check int) "drained" 0 (Shards.pop_batch p ~shard:0 ~max:8 out)

(* ------------------------------------------------------ server machine *)

(* out_mesh 1: node 0 -> {1, 2} *)
let tiny () = Mesh.out_mesh 1

let lease_tasks = function
  | Wire.Lease { tasks; _ } -> tasks
  | m -> Alcotest.failf "expected Lease, got %s" (Wire.to_string m |> String.escaped)

let test_lease_complete_done () =
  let srv = Server.create (Server.config ()) (tiny ()) in
  (match Server.handle srv ~now:0.0 (Wire.Hello { worker = 1 }) with
  | Wire.Welcome { n_tasks; n_shards } ->
    Alcotest.(check int) "n_tasks" 3 n_tasks;
    Alcotest.(check int) "n_shards" 1 n_shards
  | _ -> Alcotest.fail "expected Welcome");
  let t1 = lease_tasks (Server.handle srv ~now:0.0 (Wire.Lease_req { worker = 1; k = 8 })) in
  Alcotest.(check (array int)) "only the source is eligible" [| 0 |] t1;
  (match Server.handle srv ~now:0.1 (Wire.Complete { worker = 1; task = 0 }) with
  | Wire.Ack -> ()
  | _ -> Alcotest.fail "expected Ack");
  let t2 = lease_tasks (Server.handle srv ~now:0.2 (Wire.Lease_req { worker = 1; k = 8 })) in
  let sorted = Array.copy t2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "children eligible" [| 1; 2 |] sorted;
  ignore (Server.handle srv ~now:0.3 (Wire.Complete { worker = 1; task = 1 }));
  (match Server.handle srv ~now:0.4 (Wire.Complete { worker = 1; task = 2 }) with
  | Wire.Done { completed; _ } -> Alcotest.(check int) "done count" 3 completed
  | _ -> Alcotest.fail "expected Done");
  Alcotest.(check bool) "is_done" true (Server.is_done srv);
  let st = Server.stats srv in
  Alcotest.(check int) "completions" 3 st.Server.completions;
  Alcotest.(check int) "no duplicates" 0 st.Server.duplicate_completes;
  Alcotest.(check int) "inflight drained" 0 st.Server.inflight

let test_backpressure () =
  let srv =
    Server.create (Server.config ~max_inflight:1 ()) (Mesh.out_mesh 3)
  in
  let t = lease_tasks (Server.handle srv ~now:0.0 (Wire.Lease_req { worker = 1; k = 8 })) in
  Alcotest.(check int) "inflight bound caps the batch" 1 (Array.length t);
  (match Server.handle srv ~now:0.0 (Wire.Lease_req { worker = 2; k = 1 }) with
  | Wire.Retry_after { delay_s } ->
    Alcotest.(check bool) "positive delay" true (delay_s > 0.0)
  | _ -> Alcotest.fail "expected Retry_after");
  Alcotest.(check int) "retry counted" 1 (Server.stats srv).Server.retry_afters

let test_expiry_reissue_and_duplicate () =
  (* timeout = 0 detection + 2 * 1.0 expected = 2.0 *)
  let cfg =
    Server.config ~expected_s:1.0
      ~recovery:(Recovery.make ~timeout_factor:2.0 ())
      ()
  in
  let srv = Server.create cfg (tiny ()) in
  let t = lease_tasks (Server.handle srv ~now:0.0 (Wire.Lease_req { worker = 1; k = 1 })) in
  Alcotest.(check (array int)) "leased the source" [| 0 |] t;
  Alcotest.(check int) "not yet due" 0 (Server.expire srv ~now:1.9);
  Alcotest.(check (float 1e-9)) "next expiry" 2.0 (Server.next_expiry srv);
  Alcotest.(check int) "re-issued at the deadline" 1 (Server.expire srv ~now:2.0);
  Alcotest.(check int) "inflight back to zero" 0 (Server.stats srv).Server.inflight;
  (* the task is leasable again *)
  let t = lease_tasks (Server.handle srv ~now:2.1 (Wire.Lease_req { worker = 2; k = 1 })) in
  Alcotest.(check (array int)) "re-leased" [| 0 |] t;
  (* the original straggler completes first: counts (first one wins) *)
  (match Server.handle srv ~now:2.2 (Wire.Complete { worker = 1; task = 0 }) with
  | Wire.Ack -> ()
  | _ -> Alcotest.fail "straggler completion rejected");
  (* the re-lease holder reports afterwards: a duplicate, no double apply *)
  (match Server.handle srv ~now:2.3 (Wire.Complete { worker = 2; task = 0 }) with
  | Wire.Ack -> ()
  | _ -> Alcotest.fail "duplicate not acknowledged");
  let st = Server.stats srv in
  Alcotest.(check int) "applied once" 1 st.Server.completions;
  Alcotest.(check int) "duplicate counted" 1 st.Server.duplicate_completes;
  Alcotest.(check int) "reissue counted" 1 st.Server.reissues

let test_heartbeat_renews () =
  let cfg =
    Server.config ~expected_s:1.0
      ~recovery:(Recovery.make ~timeout_factor:2.0 ())
      ()
  in
  let srv = Server.create cfg (tiny ()) in
  ignore (Server.handle srv ~now:0.0 (Wire.Lease_req { worker = 1; k = 1 }));
  (match Server.handle srv ~now:1.0 (Wire.Heartbeat { worker = 1 }) with
  | Wire.Ack -> ()
  | _ -> Alcotest.fail "expected Ack");
  Alcotest.(check int) "old deadline is stale" 0 (Server.expire srv ~now:2.0);
  Alcotest.(check (float 1e-9)) "renewed to heartbeat + timeout" 3.0
    (Server.next_expiry srv);
  Alcotest.(check int) "fires at the renewed deadline" 1
    (Server.expire srv ~now:3.0)

let test_protocol_errors_and_drain () =
  let srv = Server.create (Server.config ()) (tiny ()) in
  (* completing a still-blocked task is a violation *)
  (match Server.handle srv ~now:0.0 (Wire.Complete { worker = 1; task = 1 }) with
  | Wire.Ack -> ()
  | _ -> Alcotest.fail "expected Ack");
  (* as are out-of-range ids and server-side messages *)
  ignore (Server.handle srv ~now:0.0 (Wire.Complete { worker = 1; task = 99 }));
  ignore (Server.handle srv ~now:0.0 Wire.Ack);
  Alcotest.(check int) "errors counted" 3 (Server.stats srv).Server.protocol_errors;
  Alcotest.(check int) "nothing applied" 0 (Server.stats srv).Server.completions;
  (match Server.handle srv ~now:0.1 Wire.Drain with
  | Wire.Done _ -> ()
  | _ -> Alcotest.fail "expected Done");
  match Server.handle srv ~now:0.2 (Wire.Lease_req { worker = 1; k = 1 }) with
  | Wire.Done _ -> ()
  | _ -> Alcotest.fail "draining server still leases"

let test_sharded_run_spreads_leases () =
  let g = Mesh.out_mesh 20 in
  let n = Dag.n_nodes g in
  let m = Metrics.create () in
  let srv =
    Server.create ~metrics:m (Server.config ~n_shards:3 ~max_lease:16 ()) g
  in
  (* one greedy in-process worker drains the dag *)
  let continue = ref true in
  let now = ref 0.0 in
  while !continue do
    now := !now +. 0.001;
    match Server.handle srv ~now:!now (Wire.Lease_req { worker = 0; k = 16 }) with
    | Wire.Lease { tasks; _ } ->
      Array.iter
        (fun v ->
          ignore (Server.handle srv ~now:!now (Wire.Complete { worker = 0; task = v })))
        tasks
    | Wire.Done _ -> continue := false
    | Wire.Retry_after _ -> ()
    | _ -> Alcotest.fail "unexpected reply"
  done;
  let st = Server.stats srv in
  Alcotest.(check int) "every task applied once" n st.Server.completions;
  let shard_total = ref 0 in
  for s = 0 to 2 do
    let c = Metrics.counter_value (Metrics.counter m (Printf.sprintf "served.shard%d.leased" s)) in
    if c = 0 then Alcotest.failf "shard %d never leased" s;
    shard_total := !shard_total + c
  done;
  Alcotest.(check int) "per-shard counters account for every leased task"
    st.Server.leased_tasks !shard_total

(* -------------------------------------------------- virtual load harness *)

let test_hammer_small_clean () =
  let g = Mesh.out_mesh 10 in
  let sink = Trace.create () in
  let scfg = Server.config ~n_shards:3 ~expected_s:0.1 () in
  let cfg = Hammer.config ~workers:100 ~k:4 ~mean_service_s:0.001 () in
  let r = Hammer.run_virtual ~sink ~server:scfg cfg g in
  Alcotest.(check int) "all tasks" (Dag.n_nodes g) r.Hammer.completed;
  Alcotest.(check int) "exactly once" (Dag.n_nodes g)
    r.Hammer.server.Server.completions;
  Alcotest.(check int) "no churn, no reissues" 0 r.Hammer.server.Server.reissues;
  (* trace tracks: every alloc/complete is stamped with its shard *)
  let bad = ref 0 in
  Trace.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Task_alloc | Trace.Task_complete ->
        if e.b < 0 || e.b >= 3 then incr bad
      | _ -> ())
    sink;
  Alcotest.(check int) "client ids are shard ids" 0 !bad;
  Alcotest.(check bool) "trace non-empty" true (Trace.length sink > 0)

(* the acceptance run: mesh-256 (32,896 tasks), 10^4 churning workers,
   every task applied exactly once, metrics byte-identical across runs *)
let acceptance_run () =
  let g = Mesh.out_mesh 256 in
  let m = Metrics.create () in
  let scfg =
    Server.config ~n_shards:3 ~max_lease:64 ~expected_s:0.2 ~retry_after_s:0.2
      ~recovery:(Recovery.make ~timeout_factor:4.0 ())
      ()
  in
  let churn =
    Plan.make ~crash_rate:0.002 ~disconnect_rate:0.02 ~mean_downtime:0.5
      ~seed:11 ()
  in
  let cfg =
    Hammer.config ~workers:10_000 ~k:8 ~mean_service_s:0.01 ~think_s:0.001
      ~churn ~seed:42 ()
  in
  let r = Hammer.run_virtual ~metrics:m ~server:scfg cfg g in
  (r, Metrics.to_json m)

let test_mesh256_churn_exactly_once () =
  let r, json1 = acceptance_run () in
  let n = 257 * 258 / 2 in
  Alcotest.(check int) "dag size" n r.Hammer.n_tasks;
  Alcotest.(check int) "every task completed" n r.Hammer.completed;
  Alcotest.(check int) "each applied exactly once" n
    r.Hammer.server.Server.completions;
  Alcotest.(check bool) "churn crashed some workers" true (r.Hammer.crashed > 0);
  Alcotest.(check bool) "churn disconnected some workers" true
    (r.Hammer.disconnects > 0);
  Alcotest.(check bool) "dropped leases were re-issued" true
    (r.Hammer.server.Server.reissues > 0);
  Alcotest.(check int) "nothing left in flight" 0
    r.Hammer.server.Server.inflight;
  Alcotest.(check bool) "virtual makespan positive" true (r.Hammer.makespan_s > 0.0);
  (* byte-determinism: an identically seeded run dumps identical metrics *)
  let r2, json2 = acceptance_run () in
  Alcotest.(check string) "metrics JSON byte-identical" json1 json2;
  Alcotest.(check (float 0.0)) "same virtual makespan" r.Hammer.makespan_s
    r2.Hammer.makespan_s

(* live telemetry must not perturb the deterministic artifacts: the
   same seeded virtual run, with a Live registry mirroring every meter,
   dumps byte-identical Metrics JSON — and the mirror agrees with the
   server's own stats once the run is over *)
let test_live_mirror_preserves_determinism () =
  let run ?live () =
    let g = Mesh.out_mesh 64 in
    let m = Metrics.create () in
    let scfg =
      Server.config ~n_shards:3 ~max_lease:64 ~expected_s:0.2
        ~retry_after_s:0.2
        ~recovery:(Recovery.make ~timeout_factor:4.0 ())
        ()
    in
    let churn =
      Plan.make ~crash_rate:0.002 ~disconnect_rate:0.02 ~mean_downtime:0.5
        ~seed:11 ()
    in
    let cfg =
      Hammer.config ~workers:2_000 ~k:8 ~mean_service_s:0.01 ~think_s:0.001
        ~churn ~seed:42 ()
    in
    let r = Hammer.run_virtual ~metrics:m ?live ~server:scfg cfg g in
    (r, Metrics.to_json m)
  in
  let r_bare, json_bare = run () in
  let live = Ic_obs.Live.create () in
  let r_live, json_live = run ~live () in
  Alcotest.(check string)
    "metrics JSON byte-identical with the live mirror on" json_bare json_live;
  Alcotest.(check int) "same completions" r_bare.Hammer.completed
    r_live.Hammer.completed;
  Alcotest.(check (float 0.0)) "same virtual makespan" r_bare.Hammer.makespan_s
    r_live.Hammer.makespan_s;
  (* the mirror itself is exact once quiescent *)
  let lc name = Ic_obs.Live.counter_value (Ic_obs.Live.counter live name) in
  let st = r_live.Hammer.server in
  Alcotest.(check int) "live leases = stats" st.Server.leases
    (lc "served.leases");
  Alcotest.(check int) "live leased_tasks = stats" st.Server.leased_tasks
    (lc "served.leased_tasks");
  Alcotest.(check int) "live completions = stats" st.Server.completions
    (lc "served.completions");
  Alcotest.(check int) "live reissues = stats" st.Server.reissues
    (lc "served.reissues");
  Alcotest.(check int) "live retry_afters = stats" st.Server.retry_afters
    (lc "served.retry_afters");
  let s =
    Ic_obs.Live.histogram_snapshot
      (Ic_obs.Live.histogram live "served.lease_service_s")
  in
  Alcotest.(check int) "one service observation per completion"
    st.Server.completions s.Ic_obs.Live.count;
  (* rerunning against the same registry doubles the counters — the
     mirror accumulates, it is not reset per run *)
  let _ = run ~live () in
  Alcotest.(check int) "mirror accumulates across runs"
    (2 * st.Server.completions)
    (lc "served.completions")

(* --------------------------------------------------- journal + recovery *)

module Journal = Ic_served.Journal
module Chaos = Ic_served.Chaos
module Wire_plan = Ic_fault.Plan.Wire

let tmp_journal () = Filename.temp_file "ic_test_journal" ".wal"

let with_tmp f =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let open_exn ?fsync ?checkpoint_every path =
  match Journal.open_ ?fsync ?checkpoint_every path with
  | Ok j -> j
  | Error e -> Alcotest.failf "Journal.open_: %s" e

(* one greedy in-process worker drains whatever the server will lease *)
let greedy_drain ?(now0 = 0.0) ?(k = 16) srv =
  let now = ref now0 in
  let continue = ref true in
  while !continue do
    now := !now +. 0.001;
    match Server.handle srv ~now:!now (Wire.Lease_req { worker = 0; k }) with
    | Wire.Lease { tasks; _ } ->
      Array.iter
        (fun v ->
          ignore
            (Server.handle srv ~now:!now (Wire.Complete { worker = 0; task = v })))
        tasks
    | Wire.Done _ -> continue := false
    | Wire.Retry_after _ -> ()
    | _ -> Alcotest.fail "unexpected reply"
  done

let read_bytes path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let write_bytes path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let append_raw path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let test_journal_roundtrip () =
  with_tmp @@ fun path ->
  let j = open_exn path in
  let done_ = Bytes.make (Journal.bitmap_len 10) '\000' in
  Bytes.set done_ 0 '\x05';
  let leased = Bytes.make (Journal.bitmap_len 10) '\000' in
  Bytes.set leased 1 '\x02';
  let records =
    [
      Journal.Lease [| 0; 7; 0xFFFF |];
      Journal.Complete 7;
      Journal.Checkpoint { n = 10; done_; leased };
      Journal.Complete 0;
      Journal.Lease [||];
    ]
  in
  List.iter (Journal.append j) records;
  Journal.close j;
  let j = open_exn path in
  Alcotest.(check int) "nothing truncated" 0 (Journal.truncated_bytes j);
  if Journal.replayed j <> records then Alcotest.fail "replay differs";
  Journal.close j

let test_journal_torn_tail_truncated () =
  with_tmp @@ fun path ->
  let j = open_exn path in
  Journal.append j (Journal.Complete 1);
  Journal.append j (Journal.Complete 2);
  Journal.close j;
  let intact = Bytes.length (read_bytes path) in
  (* a torn final record: a length prefix promising more than is there *)
  append_raw path "\x40\x00\x00\x00\xDE\xAD\xBE\xEFtorn";
  let j = open_exn path in
  Alcotest.(check bool) "tail dropped" true (Journal.truncated_bytes j > 0);
  if Journal.replayed j <> [ Journal.Complete 1; Journal.Complete 2 ] then
    Alcotest.fail "intact prefix lost";
  Journal.close j;
  Alcotest.(check int) "file physically truncated" intact
    (Bytes.length (read_bytes path));
  (* idempotent: a second open sees a clean file *)
  let j = open_exn path in
  Alcotest.(check int) "clean reopen" 0 (Journal.truncated_bytes j);
  Journal.close j

let test_journal_corrupt_crc_truncates_from_there () =
  with_tmp @@ fun path ->
  let j = open_exn path in
  List.iter (fun v -> Journal.append j (Journal.Complete v)) [ 1; 2; 3 ];
  Journal.close j;
  let b = read_bytes path in
  (* flip a bit inside the second record's payload: 8-byte magic, then
     records of 8-byte header + 5-byte Complete payload *)
  let off = 8 + 13 + 8 + 2 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
  write_bytes path b;
  let j = open_exn path in
  Alcotest.(check bool) "corrupt record dropped" true
    (Journal.truncated_bytes j > 0);
  if Journal.replayed j <> [ Journal.Complete 1 ] then
    Alcotest.fail "replay should stop at the corrupt record";
  Journal.close j

let test_recover_small_reissues_and_finishes () =
  with_tmp @@ fun path ->
  let j = open_exn path in
  let srv = Server.create ~journal:j (Server.config ()) (tiny ()) in
  (* complete the source, lease both children, complete only one *)
  ignore (Server.handle srv ~now:0.0 (Wire.Lease_req { worker = 1; k = 8 }));
  ignore (Server.handle srv ~now:0.1 (Wire.Complete { worker = 1; task = 0 }));
  let t = lease_tasks (Server.handle srv ~now:0.2 (Wire.Lease_req { worker = 1; k = 8 })) in
  Alcotest.(check int) "both children leased" 2 (Array.length t);
  ignore (Server.handle srv ~now:0.3 (Wire.Complete { worker = 1; task = t.(0) }));
  (* crash: the server object is dropped, the journal survives *)
  Journal.close j;
  let j = open_exn path in
  (* a fresh create on a dirty journal must refuse *)
  (match Server.create ~journal:j (Server.config ()) (tiny ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "create accepted a journal with prior records");
  let srv =
    match Server.recover ~journal:j (Server.config ()) (tiny ()) with
    | Ok s -> s
    | Error e -> Alcotest.failf "recover: %s" e
  in
  let st = Server.stats srv in
  Alcotest.(check int) "completions restored" 2 st.Server.completions;
  Alcotest.(check int) "recovered_tasks" 2 st.Server.recovered_tasks;
  Alcotest.(check int) "the un-journaled lease re-issues" 1
    st.Server.recovered_reissues;
  greedy_drain ~now0:1.0 srv;
  Alcotest.(check bool) "drains to done" true (Server.is_done srv);
  Alcotest.(check int) "exactly once overall" 3
    (Server.stats srv).Server.completions;
  Journal.close j

(* crash-at-any-byte property: take a full drain's journal, cut it at an
   arbitrary byte (record boundary, mid-record, mid-header), recover,
   drain again — every cut must yield exactly-once completion *)
let prop_recover_any_cut =
  let g = Mesh.out_mesh 8 in
  let n = Dag.n_nodes g in
  let reference =
    lazy
      (with_tmp @@ fun path ->
       let j = open_exn ~checkpoint_every:16 path in
       let srv = Server.create ~journal:j (Server.config ~n_shards:2 ()) g in
       greedy_drain srv;
       Journal.close j;
       read_bytes path)
  in
  QCheck.Test.make ~name:"recovery after a crash at any journal byte" ~count:80
    QCheck.(int_range 8 4096)
    (fun cut ->
      let full = Lazy.force reference in
      let cut = min cut (Bytes.length full) in
      with_tmp @@ fun path ->
      write_bytes path (Bytes.sub full 0 cut);
      let j = open_exn ~checkpoint_every:16 path in
      let srv =
        match Server.recover ~journal:j (Server.config ~n_shards:2 ()) g with
        | Ok s -> s
        | Error e -> QCheck.Test.fail_reportf "recover at cut %d: %s" cut e
      in
      greedy_drain ~now0:10.0 srv;
      let st = Server.stats srv in
      Journal.close j;
      Server.is_done srv && st.Server.completions = n
      && st.Server.inflight = 0)

(* the tentpole acceptance: mesh-256 under a 10^4-worker churning fleet,
   killed mid-drain, recovered from the torn journal, drained to
   exactly-once — twice, byte-identically *)
let test_mesh256_kill_recover_exactly_once () =
  let g = Mesh.out_mesh 256 in
  let n = Dag.n_nodes g in
  with_tmp @@ fun path ->
  (* phase 1: a partial drain with leases still outstanding at the kill *)
  let j = open_exn ~checkpoint_every:1024 path in
  let srv = Server.create ~journal:j (Server.config ~n_shards:3 ~max_lease:64 ()) g in
  let now = ref 0.0 in
  let phase1 = ref 0 in
  while !phase1 < n / 2 do
    now := !now +. 0.001;
    match Server.handle srv ~now:!now (Wire.Lease_req { worker = 0; k = 64 }) with
    | Wire.Lease { tasks; _ } ->
      (* complete all but the last task of each multi-task batch:
         leased-but-never-journaled work is what the kill strands *)
      let keep = if Array.length tasks > 1 then Array.length tasks - 1 else 1 in
      Array.iteri
        (fun i v ->
          if i < keep && !phase1 < n / 2 then begin
            ignore
              (Server.handle srv ~now:!now (Wire.Complete { worker = 0; task = v }));
            incr phase1
          end)
        tasks
    | Wire.Retry_after _ ->
      (* every ready task is stranded under a lease: jump past the
         expiry so re-issue unblocks the drain *)
      now := !now +. 100.0;
      ignore (Server.expire srv ~now:!now)
    | _ -> Alcotest.fail "phase 1 starved before the kill point"
  done;
  (* one final lease that is never completed: guarantees journaled
     leased-but-not-done state at the kill *)
  (match Server.handle srv ~now:(!now +. 0.001) (Wire.Lease_req { worker = 1; k = 8 }) with
  | Wire.Lease _ -> ()
  | _ -> Alcotest.fail "no lease left to strand");
  let killed_at = (Server.stats srv).Server.completions in
  (* kill -9: no close, no flush beyond the per-record ones; worse, a
     torn half-record sits at the tail *)
  append_raw path "\xFF\xFF\x00\x00half";
  let run () =
    let m = Metrics.create () in
    let j = open_exn ~checkpoint_every:1024 path in
    let srv =
      match
        Server.recover ~metrics:m ~journal:j
          (Server.config ~n_shards:3 ~max_lease:64 ~expected_s:0.2
             ~retry_after_s:0.2
             ~recovery:(Recovery.make ~timeout_factor:4.0 ())
             ())
          g
      with
      | Ok s -> s
      | Error e -> Alcotest.failf "recover: %s" e
    in
    let st0 = Server.stats srv in
    Alcotest.(check int) "journaled completions survive the kill" killed_at
      st0.Server.recovered_tasks;
    Alcotest.(check bool) "stranded leases re-issue" true
      (st0.Server.recovered_reissues > 0);
    let churn =
      Plan.make ~crash_rate:0.002 ~disconnect_rate:0.02 ~mean_downtime:0.5
        ~seed:11 ()
    in
    let cfg =
      Hammer.config ~workers:10_000 ~k:8 ~mean_service_s:0.01 ~think_s:0.001
        ~churn ~seed:42 ()
    in
    let r = Hammer.drive ~metrics:m srv cfg in
    Journal.close j;
    (r, Metrics.to_json m)
  in
  (* recovery must not consume the journal: snapshot it so the second,
     determinism-checking run replays the identical file *)
  let snapshot = read_bytes path in
  let r, json1 = run () in
  Alcotest.(check int) "every task applied exactly once" n r.Hammer.completed;
  Alcotest.(check int) "server agrees" n r.Hammer.server.Server.completions;
  Alcotest.(check int) "nothing in flight" 0 r.Hammer.server.Server.inflight;
  Alcotest.(check bool) "churn still crashed workers" true (r.Hammer.crashed > 0);
  write_bytes path snapshot;
  let r2, json2 = run () in
  Alcotest.(check int) "second recovery also exact" n r2.Hammer.completed;
  Alcotest.(check string) "byte-identical metrics across recoveries" json1
    json2

(* ------------------------------------------------------------ wire chaos *)

let chaos_run ~wire () =
  let g = Mesh.out_mesh 64 in
  let m = Metrics.create () in
  let scfg =
    Server.config ~n_shards:3 ~max_lease:64 ~expected_s:0.2 ~retry_after_s:0.2
      ~recovery:(Recovery.make ~timeout_factor:4.0 ())
      ()
  in
  let cfg =
    Hammer.config ~workers:1_000 ~k:8 ~mean_service_s:0.01 ~think_s:0.001
      ~seed:42 ()
  in
  let r = Hammer.run_chaos ~metrics:m ~server:scfg ~wire ~reply_timeout_s:0.5 cfg g in
  (r, Metrics.to_json m)

let test_chaos_hostile_wire_exactly_once () =
  let wire =
    Wire_plan.make ~drop:0.02 ~corrupt:0.02 ~truncate:0.01 ~duplicate:0.02
      ~reorder:0.02 ~delay_mean:0.005 ~seed:0xC4A0 ()
  in
  let g_n = Dag.n_nodes (Mesh.out_mesh 64) in
  let r, json1 = chaos_run ~wire () in
  Alcotest.(check int) "all tasks complete through the hostile wire" g_n
    r.Hammer.base.Hammer.completed;
  Alcotest.(check int) "exactly once" g_n
    r.Hammer.base.Hammer.server.Server.completions;
  Alcotest.(check int) "nothing in flight" 0
    r.Hammer.base.Hammer.server.Server.inflight;
  let c2s = r.Hammer.c2s and s2c = r.Hammer.s2c in
  Alcotest.(check bool) "frames flowed both ways" true
    (c2s.Chaos.frames > 0 && s2c.Chaos.frames > 0);
  Alcotest.(check bool) "drops happened" true
    (c2s.Chaos.dropped + s2c.Chaos.dropped > 0);
  Alcotest.(check bool) "corruption happened" true
    (c2s.Chaos.corrupted + s2c.Chaos.corrupted > 0);
  Alcotest.(check bool) "truncation happened" true
    (c2s.Chaos.truncated + s2c.Chaos.truncated > 0);
  Alcotest.(check bool) "the reader hit (and survived) errors" true
    (c2s.Chaos.reader_errors + s2c.Chaos.reader_errors
     + c2s.Chaos.resyncs + s2c.Chaos.resyncs
    > 0);
  Alcotest.(check bool) "timeouts re-sent requests" true (r.Hammer.retries > 0);
  (* the whole gauntlet is a pure function of the seeds *)
  let r2, json2 = chaos_run ~wire () in
  Alcotest.(check string) "byte-identical metrics across reruns" json1 json2;
  Alcotest.(check int) "same retry count" r.Hammer.retries r2.Hammer.retries

let test_chaos_none_is_transparent () =
  let r, _ = chaos_run ~wire:Wire_plan.none () in
  let n = Dag.n_nodes (Mesh.out_mesh 64) in
  Alcotest.(check int) "clean wire completes" n r.Hammer.base.Hammer.completed;
  let c2s = r.Hammer.c2s in
  Alcotest.(check int) "nothing dropped" 0 c2s.Chaos.dropped;
  Alcotest.(check int) "every frame delivered" c2s.Chaos.frames
    c2s.Chaos.delivered

(* ------------------------------------------------------- TCP transport *)

let test_tcp_loopback_roundtrip () =
  let g = Mesh.out_mesh 10 in
  let n = Dag.n_nodes g in
  let port = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Tcp.serve
          ~on_listen:(fun p -> Atomic.set port p)
          ~once:true ~port:0
          (Server.config ~n_shards:2 ~expected_s:0.5 ())
          g)
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  let p = Atomic.get port in
  if p = 0 then Alcotest.fail "server never listened";
  let cfg =
    Hammer.config ~workers:50 ~k:4 ~mean_service_s:0.0005 ~think_s:0.0001 ()
  in
  let hr = Tcp.hammer ~connections:4 ~port:p cfg in
  let st = Domain.join server in
  Alcotest.(check bool) "client saw Done" true hr.Tcp.done_seen;
  Alcotest.(check int) "server applied every task once" n st.Server.completions;
  Alcotest.(check int) "no lingering leases" 0 st.Server.inflight;
  Alcotest.(check bool) "client sent completions" true (hr.Tcp.completes_sent > 0)

(* kill the wire, not the server: chaos-mangled client frames force the
   server to drop connections, the hammer heals by redialing *)
let test_tcp_chaos_reconnects_and_finishes () =
  let g = Mesh.out_mesh 10 in
  let n = Dag.n_nodes g in
  let port = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Tcp.serve
          ~on_listen:(fun p -> Atomic.set port p)
          ~once:true ~port:0
          (Server.config ~n_shards:2 ~expected_s:0.2
             ~recovery:(Recovery.make ~timeout_factor:4.0 ())
             ())
          g)
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  let p = Atomic.get port in
  if p = 0 then Alcotest.fail "server never listened";
  let chaos = Wire_plan.make ~drop:0.02 ~corrupt:0.02 ~truncate:0.01 () in
  let cfg =
    Hammer.config ~workers:50 ~k:4 ~mean_service_s:0.0005 ~think_s:0.0001 ()
  in
  let hr = Tcp.hammer ~connections:4 ~chaos ~reply_timeout_s:0.3 ~port:p cfg in
  let st = Domain.join server in
  Alcotest.(check bool) "client saw Done through the chaos" true
    hr.Tcp.done_seen;
  Alcotest.(check int) "server applied every task once" n st.Server.completions;
  Alcotest.(check int) "no lingering leases" 0 st.Server.inflight;
  Alcotest.(check bool) "the wire forced at least one reconnect" true
    (hr.Tcp.reconnects > 0)

(* the full loop over real sockets: journal the first serve, kill it
   mid-drain (abandon the domain's server state), restart with recover,
   and let a fresh hammer finish the job *)
let test_tcp_journal_recover_roundtrip () =
  let g = Mesh.out_mesh 10 in
  let n = Dag.n_nodes g in
  with_tmp @@ fun path ->
  (* phase 1: partial drain server-side, no TCP needed to strand state *)
  let j = open_exn path in
  let srv = Server.create ~journal:j (Server.config ~n_shards:2 ()) g in
  let completed = ref 0 in
  let now = ref 0.0 in
  while !completed < n / 2 do
    now := !now +. 0.001;
    match Server.handle srv ~now:!now (Wire.Lease_req { worker = 0; k = 4 }) with
    | Wire.Lease { tasks; _ } ->
      Array.iter
        (fun v ->
          if !completed < n / 2 then begin
            ignore
              (Server.handle srv ~now:!now (Wire.Complete { worker = 0; task = v }));
            incr completed
          end)
        tasks
    | Wire.Retry_after _ ->
      now := !now +. 100.0;
      ignore (Server.expire srv ~now:!now)
    | _ -> Alcotest.fail "phase 1 starved"
  done;
  Journal.close j;
  (* phase 2: serve --journal --recover over TCP, hammer it to done *)
  let j = open_exn path in
  let port = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Tcp.serve ~journal:j ~recover:true
          ~on_listen:(fun p -> Atomic.set port p)
          ~once:true ~port:0
          (Server.config ~n_shards:2 ~expected_s:0.5 ())
          g)
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  if Atomic.get port = 0 then Alcotest.fail "recovered server never listened";
  let cfg =
    Hammer.config ~workers:20 ~k:4 ~mean_service_s:0.0005 ~think_s:0.0001 ()
  in
  let hr = Tcp.hammer ~connections:2 ~port:(Atomic.get port) cfg in
  let st = Domain.join server in
  Journal.close j;
  Alcotest.(check bool) "client saw Done" true hr.Tcp.done_seen;
  Alcotest.(check int) "recovered completions counted" (n / 2)
    st.Server.recovered_tasks;
  Alcotest.(check int) "total exactly once" n st.Server.completions;
  Alcotest.(check int) "nothing left leased" 0 st.Server.inflight

(* ------------------------------------------- metrics reuse across runs *)

let test_metrics_reset_between_repeats () =
  let g = Mesh.out_mesh 10 in
  let m = Metrics.create () in
  let iteration () =
    Metrics.reset m;
    let scfg = Server.config ~n_shards:2 () in
    let cfg = Hammer.config ~workers:100 ~k:4 ~mean_service_s:0.001 () in
    ignore (Hammer.run_virtual ~metrics:m ~server:scfg cfg g);
    Metrics.to_json m
  in
  let first = iteration () in
  let second = iteration () in
  Alcotest.(check string) "repeat iterations see a zeroed registry" first
    second

let () =
  Alcotest.run "ic_served"
    [
      ( "wire",
        Alcotest.test_case "oversized frame rejected" `Quick
          test_oversized_frame_rejected
        :: Alcotest.test_case "unknown tag rejected" `Quick test_bad_tag_rejected
        :: Alcotest.test_case "trailing bytes rejected" `Quick
             test_trailing_bytes_rejected
        :: Alcotest.test_case "reader reassembles byte-at-a-time" `Quick
             test_reader_byte_at_a_time
        :: qcheck
             [ prop_roundtrip; prop_truncated_needs_more; prop_junk_never_raises ]
      );
      ( "shards",
        [
          Alcotest.test_case "partition covers the dag" `Quick
            test_shard_view_partition;
          Alcotest.test_case "each node ready exactly once" `Quick
            test_shard_view_exactly_once_ready;
          Alcotest.test_case "pool pops batches LIFO" `Quick test_pool_batch_pop;
        ] );
      ( "server",
        [
          Alcotest.test_case "lease, complete, done" `Quick
            test_lease_complete_done;
          Alcotest.test_case "admission control" `Quick test_backpressure;
          Alcotest.test_case "expiry re-issues; duplicate counted once" `Quick
            test_expiry_reissue_and_duplicate;
          Alcotest.test_case "heartbeat renews leases" `Quick
            test_heartbeat_renews;
          Alcotest.test_case "protocol errors and drain" `Quick
            test_protocol_errors_and_drain;
          Alcotest.test_case "sharded run spreads leases" `Quick
            test_sharded_run_spreads_leases;
        ] );
      ( "hammer",
        [
          Alcotest.test_case "clean run, per-shard trace tracks" `Quick
            test_hammer_small_clean;
          Alcotest.test_case
            "mesh-256, 10^4 churning workers: exactly once, deterministic"
            `Quick test_mesh256_churn_exactly_once;
          Alcotest.test_case "metrics registry resets between repeats" `Quick
            test_metrics_reset_between_repeats;
          Alcotest.test_case "live mirror preserves byte-determinism" `Quick
            test_live_mirror_preserves_determinism;
        ] );
      ( "journal",
        Alcotest.test_case "records round-trip through a reopen" `Quick
          test_journal_roundtrip
        :: Alcotest.test_case "torn tail is truncated, prefix survives" `Quick
             test_journal_torn_tail_truncated
        :: Alcotest.test_case "corrupt CRC truncates from that record" `Quick
             test_journal_corrupt_crc_truncates_from_there
        :: Alcotest.test_case "recover re-issues the unjournaled lease" `Quick
             test_recover_small_reissues_and_finishes
        :: qcheck [ prop_recover_any_cut ] );
      ( "recovery",
        [
          Alcotest.test_case
            "mesh-256 killed mid-drain: recover + churn fleet, exactly once,\
             \ deterministic"
            `Quick test_mesh256_kill_recover_exactly_once;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "hostile wire: exactly once, deterministic"
            `Quick test_chaos_hostile_wire_exactly_once;
          Alcotest.test_case "plan none is transparent" `Quick
            test_chaos_none_is_transparent;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "loopback serve + hammer" `Quick
            test_tcp_loopback_roundtrip;
          Alcotest.test_case "chaos wire heals by reconnect" `Quick
            test_tcp_chaos_reconnects_and_finishes;
          Alcotest.test_case "journal + recover over real sockets" `Quick
            test_tcp_journal_recover_roundtrip;
        ] );
    ]
