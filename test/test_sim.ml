module Dag = Ic_dag.Dag
module Policy = Ic_heuristics.Policy
module Sim = Ic_sim.Simulator
module Workload = Ic_sim.Workload
module Assessment = Ic_sim.Assessment

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mesh = Ic_families.Mesh.out_mesh 8

let run ?(config = Sim.config ()) ?(workload = Workload.unit) policy g =
  Sim.run config policy ~workload g

let test_executes_everything () =
  let r = run Policy.fifo mesh in
  check_int "all allocated" (Dag.n_nodes mesh) (List.length r.Sim.allocation_order);
  check_int "all completed" (Dag.n_nodes mesh) (List.length r.Sim.completion_order);
  let sorted = List.sort compare r.Sim.completion_order in
  Alcotest.(check (list int)) "each exactly once"
    (List.init (Dag.n_nodes mesh) Fun.id) sorted

let test_allocation_respects_completions () =
  (* a task may only be allocated after all its parents completed *)
  let r = run ~config:(Sim.config ~n_clients:5 ~jitter:0.8 ()) Policy.lifo mesh in
  let completed_at = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.add completed_at v i) r.Sim.completion_order;
  (* walk allocations in order, tracking how many completions must have
     happened: allocation i occurs after completion index c(i); rebuild by
     replaying: we know parents must appear in completion_order before the
     child appears in allocation_order *)
  let alloc_pos = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.add alloc_pos v i) r.Sim.allocation_order;
  (* weaker but sufficient invariant: a child is allocated after each parent
     is allocated (completion implies allocation) *)
  Dag.iter_arcs mesh (fun u v ->
      check "parent allocated before child" true
        (Hashtbl.find alloc_pos u < Hashtbl.find alloc_pos v))

let test_single_client_no_stalls () =
  let r = run ~config:(Sim.config ~n_clients:1 ()) Policy.fifo mesh in
  check_int "no stalls with one client" 0 r.Sim.stalls;
  check "full utilization" true (r.Sim.utilization > 0.999)

let test_deterministic () =
  let a = run Policy.fifo mesh and b = run Policy.fifo mesh in
  check "same makespan" true (a.Sim.makespan = b.Sim.makespan);
  check "same orders" true (a.Sim.completion_order = b.Sim.completion_order)

let test_utilization_bounds () =
  let r = run ~config:(Sim.config ~n_clients:6 ~jitter:0.5 ()) Policy.fifo mesh in
  check "utilization in (0, 1]" true (r.Sim.utilization > 0.0 && r.Sim.utilization <= 1.0 +. 1e-9);
  check "makespan positive" true (r.Sim.makespan > 0.0);
  check "busy <= clients * makespan" true
    (r.Sim.busy_time <= (6.0 *. r.Sim.makespan) +. 1e-9)

let test_makespan_lower_bound () =
  (* with unit work, zero jitter and unit speeds: makespan >= n / clients *)
  let cfg = Sim.config ~n_clients:4 ~jitter:0.0 () in
  let r = run ~config:cfg Policy.fifo mesh in
  let n = float_of_int (Dag.n_nodes mesh) in
  check "work conservation" true (r.Sim.makespan >= (n /. 4.0) -. 1e-9);
  (* and >= critical path length *)
  check "critical path bound" true
    (r.Sim.makespan >= float_of_int (Dag.longest_path mesh + 1) -. 1e-9)

let test_heterogeneous_speeds () =
  let cfg = Sim.config ~n_clients:2 ~speed:(fun i -> if i = 0 then 4.0 else 1.0) ~jitter:0.0 () in
  let chain = Dag.make_exn ~n:3 ~arcs:[ (0, 1); (1, 2) ] () in
  let r = run ~config:cfg Policy.fifo chain in
  (* fast client takes task 0 (0.25); the stalled slow client is served
     first on completion, so it runs task 1 (1.0); the fast one finishes
     with task 2 (0.25): makespan 1.5 exactly *)
  check "hand-computed makespan" true (Float.abs (r.Sim.makespan -. 1.5) < 1e-9)

let test_gridlock_on_chain () =
  (* a pure chain with many clients: everyone but one stalls *)
  let chain = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (1, 2); (2, 3) ] () in
  let r = run ~config:(Sim.config ~n_clients:3 ~jitter:0.0 ()) Policy.fifo chain in
  check "stalls recorded" true (r.Sim.stalls >= 2);
  check "stall time positive" true (r.Sim.stall_time > 0.0)

let test_workloads () =
  let rnd = Workload.random_uniform ~seed:7 ~lo:1.0 ~hi:3.0 in
  check "deterministic per task" true (rnd mesh 5 = rnd mesh 5);
  check "in range" true (rnd mesh 5 >= 1.0 && rnd mesh 5 <= 3.0);
  check "unit" true (Workload.unit mesh 3 = 1.0);
  check "constant" true (Workload.constant 2.5 mesh 0 = 2.5);
  check "by_height heavier at sources" true
    (Workload.by_height 1.0 mesh 0 > Workload.by_height 1.0 mesh (Dag.n_nodes mesh - 1))

let test_empty_dag () =
  let r = run Policy.fifo (Dag.empty 0) in
  check "zero makespan" true (r.Sim.makespan = 0.0);
  check_int "nothing stalls" 0 r.Sim.stalls;
  (* regression: derived ratios on a zero makespan must be well-defined
     zeros, not NaN (division by zero) or a fictitious 1.0 *)
  check "utilization is zero" true (r.Sim.utilization = 0.0);
  check "mean eligible is zero" true (r.Sim.mean_eligible = 0.0);
  check "nothing is NaN" true
    (Float.is_finite r.Sim.utilization && Float.is_finite r.Sim.mean_eligible
    && Float.is_finite r.Sim.busy_time);
  (* many isolated nodes but zero work behaves the same way *)
  let r0 = run ~workload:(Workload.constant 0.0) Policy.fifo (Dag.empty 5) in
  check "zero-work utilization" true (r0.Sim.utilization = 0.0);
  check "zero-work mean eligible finite" true (Float.is_finite r0.Sim.mean_eligible)

(* --- assessment harness --- *)

let test_assessment_theory_never_loses () =
  let theory = Ic_families.Mesh.out_schedule 8 in
  let rows = Assessment.compare_policies mesh ~theory in
  check "has theory + baselines" true (List.length rows = 7);
  List.iter
    (fun r ->
      check_int
        (Printf.sprintf "profile losses vs %s" r.Assessment.policy)
        0 r.Assessment.profile_losses)
    rows

let test_assessment_theory_row_first () =
  let theory = Ic_families.Butterfly_net.schedule 4 in
  let g = Ic_families.Butterfly_net.dag 4 in
  match Assessment.compare_policies g ~theory with
  | first :: _ ->
    check "named ic-optimal" true (first.Assessment.policy = "ic-optimal");
    check_int "theory wins = 0 vs itself" 0 first.Assessment.profile_wins
  | [] -> Alcotest.fail "no rows"

let test_single_client_is_list_schedule () =
  (* one reliable client with no jitter executes exactly the policy's list
     schedule, one task at a time *)
  let cfg = Sim.config ~n_clients:1 ~jitter:0.0 () in
  let r = run ~config:cfg Policy.fifo mesh in
  let expected = Ic_dag.Schedule.order (Policy.run Policy.fifo mesh) in
  Alcotest.(check (list int)) "completion order = list schedule"
    (Array.to_list expected) r.Sim.completion_order;
  check "makespan = #tasks" true
    (Float.abs (r.Sim.makespan -. float_of_int (Dag.n_nodes mesh)) < 1e-9)

let test_unreliable_clients () =
  (* with failures, everything still completes exactly once, and lost
     allocations are accounted *)
  let cfg = Sim.config ~n_clients:4 ~failure_probability:0.3 ~seed:11 () in
  let r = run ~config:cfg Policy.fifo mesh in
  check_int "all completed once" (Dag.n_nodes mesh)
    (List.length r.Sim.completion_order);
  Alcotest.(check (list int)) "exactly once"
    (List.init (Dag.n_nodes mesh) Fun.id)
    (List.sort compare r.Sim.completion_order);
  check "failures happened" true (r.Sim.failures > 0);
  check_int "allocations = tasks + failures"
    (Dag.n_nodes mesh + r.Sim.failures)
    (List.length r.Sim.allocation_order);
  (* reliability costs time: same seed without failures is faster *)
  let r0 = run ~config:(Sim.config ~n_clients:4 ~seed:11 ()) Policy.fifo mesh in
  check "failures slow things down" true (r.Sim.makespan > r0.Sim.makespan);
  check_int "no failures by default" 0 r0.Sim.failures;
  match Sim.config ~failure_probability:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q = 1 must be rejected"

let test_comm_costs () =
  (* free communication = the old behaviour; pricey communication adds
     exactly one transfer per cross-client dependence (plus server input
     for sources) *)
  let chain = Dag.make_exn ~n:3 ~arcs:[ (0, 1); (1, 2) ] () in
  let free = run ~config:(Sim.config ~n_clients:1 ~jitter:0.0 ()) Policy.fifo chain in
  check_int "no comm when free" 0 (int_of_float free.Sim.comm_total);
  (* one client: only the source's server transfer costs *)
  let cfg = Sim.config ~n_clients:1 ~jitter:0.0 ~comm_time:2.0 () in
  let r = run ~config:cfg Policy.fifo chain in
  check "single client pays only the input transfer" true
    (Float.abs (r.Sim.comm_total -. 2.0) < 1e-9);
  check "makespan = work + comm" true (Float.abs (r.Sim.makespan -. 5.0) < 1e-9)

let test_granularity_rows () =
  (* direct unit coverage for the study's row table, beyond the headline
     crossover: shape, free-communication invariants, task-count monotonicity *)
  let blocks = [ 1; 2 ] and comm_times = [ 0.0; 4.0 ] in
  let rows =
    Ic_sim.Granularity_study.mesh_crossover ~levels:9 ~blocks ~comm_times
      ~n_clients:4 ()
  in
  check_int "one row per (price, block)"
    (List.length blocks * List.length comm_times)
    (List.length rows);
  List.iter
    (fun r ->
      check "priced rows only at requested prices" true
        (List.mem r.Ic_sim.Granularity_study.comm_time comm_times);
      check "blocks only as requested" true
        (List.mem r.Ic_sim.Granularity_study.block blocks);
      check "positive makespan" true (r.Ic_sim.Granularity_study.makespan > 0.0);
      if r.Ic_sim.Granularity_study.comm_time = 0.0 then
        check "free communication costs nothing" true
          (r.Ic_sim.Granularity_study.comm_total = 0.0))
    rows;
  (* coarsening shrinks the dag, independent of price *)
  let tasks_at block =
    match
      List.find_opt (fun r -> r.Ic_sim.Granularity_study.block = block) rows
    with
    | Some r -> r.Ic_sim.Granularity_study.n_tasks
    | None -> Alcotest.fail "missing block row"
  in
  check "coarse has fewer tasks" true (tasks_at 2 < tasks_at 1);
  match Ic_sim.Granularity_study.best_block rows 3.14 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "best_block at an unknown price must raise"

let test_burst_edge_cases () =
  (* invalid burst *)
  (match Ic_sim.Burst.of_profile ~burst:0 [| 1; 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "burst 0 must raise");
  (match Ic_sim.Burst.of_profile ~burst:(-3) [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative burst must raise");
  (* empty profile: nothing offered, vacuously fully served *)
  let e = Ic_sim.Burst.of_profile ~burst:4 [||] in
  check_int "empty offered" 0 e.Ic_sim.Burst.offered;
  check_int "empty served" 0 e.Ic_sim.Burst.served;
  check "empty rate well-defined" true (e.Ic_sim.Burst.service_rate = 1.0);
  (* of_schedule agrees with a hand-computed nonsink profile: the 3-node
     chain 0->1->2 has nonsink profile [1;1;1] (exactly one task is eligible
     after 0, 1 and 2 nonsink executions), so burst 2 serves 3 of 6 *)
  let chain = Dag.make_exn ~n:3 ~arcs:[ (0, 1); (1, 2) ] () in
  let s = Ic_dag.Schedule.of_array_exn chain [| 0; 1; 2 |] in
  let b = Ic_sim.Burst.of_schedule ~burst:2 chain s in
  check_int "chain served" 3 b.Ic_sim.Burst.served;
  check_int "chain offered" 6 b.Ic_sim.Burst.offered;
  check "chain rate" true (Float.abs (b.Ic_sim.Burst.service_rate -. 0.5) < 1e-12)

let test_granularity_crossover () =
  let rows =
    Ic_sim.Granularity_study.mesh_crossover ~levels:11 ~blocks:[ 1; 4 ]
      ~comm_times:[ 0.0; 8.0 ] ~n_clients:8 ()
  in
  Alcotest.(check int) "fine wins when communication is free" 1
    (Ic_sim.Granularity_study.best_block rows 0.0);
  Alcotest.(check int) "coarse wins when communication is dear" 4
    (Ic_sim.Granularity_study.best_block rows 8.0)

(* --- burst (batch-request) service, scenario (2) of section 2.2 --- *)

let test_burst_basic () =
  (* profile [2;1;2]: with burst 2 the server serves 2+1+2 = 5 of 6 *)
  let b = Ic_sim.Burst.of_profile ~burst:2 [| 2; 1; 2 |] in
  check_int "served" 5 b.Ic_sim.Burst.served;
  check_int "offered" 6 b.Ic_sim.Burst.offered;
  check "rate" true (Float.abs (b.Ic_sim.Burst.service_rate -. (5.0 /. 6.0)) < 1e-12);
  (* burst 1 is fully served whenever the profile never hits 0 *)
  let b1 = Ic_sim.Burst.of_profile ~burst:1 [| 2; 1; 2 |] in
  check "burst 1 full" true (b1.Ic_sim.Burst.service_rate = 1.0)

let test_burst_theory_dominates () =
  (* pointwise-higher profiles serve pointwise more requests, for every
     burst size: IC-optimal beats LIFO on the mesh *)
  let g = Ic_families.Mesh.out_mesh 10 in
  let theory = Ic_families.Mesh.out_schedule 10 in
  let lifo = Policy.run Policy.lifo g in
  (* renormalize lifo to nonsinks-first form for a fair comparison *)
  let lifo =
    Ic_dag.Schedule.of_nonsink_order_exn g (Ic_dag.Schedule.nonsink_prefix g lifo)
  in
  List.iter
    (fun burst ->
      let a = Ic_sim.Burst.of_schedule ~burst g theory in
      let b = Ic_sim.Burst.of_schedule ~burst g lifo in
      check
        (Printf.sprintf "burst %d" burst)
        true
        (a.Ic_sim.Burst.served >= b.Ic_sim.Burst.served))
    [ 1; 2; 4; 8 ]

let test_burst_sweep () =
  let g = Ic_families.Butterfly_net.dag 4 in
  let sweep =
    Ic_sim.Burst.sweep ~bursts:[ 1; 4; 16 ] g (Ic_families.Butterfly_net.schedule 4)
  in
  check_int "three entries" 3 (List.length sweep);
  (* service rate decreases (weakly) as bursts grow *)
  match List.map snd sweep with
  | [ a; b; c ] -> check "monotone" true (a >= b && b >= c)
  | _ -> Alcotest.fail "unexpected sweep shape"

(* --- fault injection and recovery (Ic_fault) --- *)

module Plan = Ic_fault.Plan
module Recovery = Ic_fault.Recovery

(* the run either finished with every task completed exactly once, or
   aborted with [completed] and [unfinished] partitioning the dag *)
let check_partition g (r : Sim.result) =
  let n = Dag.n_nodes g in
  let completed = List.sort compare r.Sim.completion_order in
  check "completed exactly once" true
    (List.length completed =
       List.length (List.sort_uniq compare completed));
  (match r.Sim.outcome with
  | Sim.Finished ->
    Alcotest.(check (list int)) "finished = permutation"
      (List.init n Fun.id) completed;
    Alcotest.(check (list int)) "finished has no leftovers" [] r.Sim.unfinished
  | Sim.Aborted _ ->
    check "aborted leaves work" true (r.Sim.unfinished <> []);
    Alcotest.(check (list int)) "completed + unfinished = all tasks"
      (List.init n Fun.id)
      (List.sort compare (completed @ r.Sim.unfinished)));
  check "unfinished ascending" true
    (r.Sim.unfinished = List.sort compare r.Sim.unfinished)

let test_fault_config_validation () =
  (match Sim.config ~jitter:(-0.1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative jitter must be rejected");
  (match Sim.config ~jitter:Float.nan () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN jitter must be rejected");
  (match run ~config:(Sim.config ~speed:(fun _ -> 0.0) ()) Policy.fifo mesh with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero speed must be rejected");
  (match
     run ~config:(Sim.config ~speed:(fun i -> if i = 2 then -1.0 else 1.0) ())
       Policy.fifo mesh
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative speed must be rejected");
  (match Plan.make ~crash_rate:(-0.1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative crash rate must be rejected");
  (match Plan.make ~loss_probability:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "loss probability 1 must be rejected");
  (match Plan.make ~straggler_probability:0.5 ~straggler_factor:0.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "straggler factor < 1 must be rejected");
  (match Recovery.make ~backoff_jitter:(-0.5) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative backoff jitter must be rejected");
  (match Recovery.make ~max_replicas:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero replicas must be rejected");
  check "none is none" true (Plan.is_none Plan.none);
  check "crash plan is not none" false
    (Plan.is_none (Plan.make ~crash_rate:0.1 ()))

let test_crash_recovery () =
  (* clients crash permanently; liveness timeouts re-release their tasks *)
  let cfg =
    Sim.config ~n_clients:8 ~seed:3
      ~faults:(Plan.make ~crash_rate:0.04 ())
      ~recovery:
        (Recovery.make ~timeout_factor:3.0 ~detection_latency:0.25
           ~backoff_base:0.1 ~backoff_jitter:0.5 ())
      ()
  in
  let r = run ~config:cfg Policy.fifo mesh in
  check_partition mesh r;
  check "clients crashed" true (r.Sim.crashes > 0);
  check "timeouts recovered the orphans" true
    (r.Sim.crashes = 0 || r.Sim.timeouts > 0)

let test_loss_needs_timeouts () =
  (* silent loss with liveness timeouts disabled: the heap drains with
     work remaining, and the run must abort cleanly instead of spinning *)
  let faults = Plan.make ~loss_probability:0.4 ~seed:2 () in
  let cfg = Sim.config ~n_clients:4 ~seed:2 ~faults () in
  let r = run ~config:cfg Policy.fifo mesh in
  check "lost results" true (r.Sim.lost > 0);
  check "no timeouts configured" true (r.Sim.timeouts = 0);
  (match r.Sim.outcome with
  | Sim.Aborted Sim.No_progress -> ()
  | _ -> Alcotest.fail "loss without timeouts must abort with no-progress");
  check_partition mesh r;
  (* the same plan with timeouts enabled finishes *)
  let cfg =
    Sim.config ~n_clients:4 ~seed:2 ~faults
      ~recovery:(Recovery.make ~timeout_factor:3.0 ())
      ()
  in
  let r = run ~config:cfg Policy.fifo mesh in
  check "timeouts fired" true (r.Sim.timeouts > 0);
  check_partition mesh r;
  (match r.Sim.outcome with
  | Sim.Finished -> ()
  | _ -> Alcotest.fail "timeouts must recover every lost result")

let test_speculation_dedup () =
  (* stragglers trigger speculative replicas; first result wins and the
     task still completes exactly once *)
  let cfg =
    Sim.config ~n_clients:6 ~seed:9
      ~faults:
        (Plan.make ~straggler_probability:0.4 ~straggler_factor:10.0 ())
      ~recovery:(Recovery.make ~speculation_factor:1.5 ~max_replicas:2 ())
      ()
  in
  let r = run ~config:cfg Policy.fifo mesh in
  check_partition mesh r;
  check "speculation happened" true (r.Sim.speculations > 0);
  check "replicas are extra allocations" true
    (List.length r.Sim.allocation_order
    = Dag.n_nodes mesh + r.Sim.speculations);
  check "cancellations bounded by replicas" true
    (r.Sim.cancelled <= r.Sim.speculations);
  (* speculation beats waiting out the stragglers *)
  let slow =
    run
      ~config:
        (Sim.config ~n_clients:6 ~seed:9
           ~faults:
             (Plan.make ~straggler_probability:0.4 ~straggler_factor:10.0 ())
           ())
      Policy.fifo mesh
  in
  check "speculation helps" true (r.Sim.makespan < slow.Sim.makespan)

let test_retry_budget_abort () =
  (* every attempt fails and the budget is tiny: graceful degradation *)
  let cfg =
    Sim.config ~n_clients:4 ~seed:5
      ~faults:(Plan.make ~fail_probability:0.9 ())
      ~recovery:(Recovery.make ~max_retries:2 ())
      ()
  in
  let r = run ~config:cfg Policy.fifo mesh in
  (match r.Sim.outcome with
  | Sim.Aborted (Sim.Retry_budget _) -> ()
  | _ -> Alcotest.fail "exhausted retries must abort");
  check_partition mesh r;
  check "partial progress possible" true
    (List.length r.Sim.completion_order < Dag.n_nodes mesh)

let test_deadline_abort () =
  (* mesh-8 on two unit-speed clients needs >= 18 time units; a deadline
     of 4 must cut it off with the descendant cone unfinished *)
  let cfg =
    Sim.config ~n_clients:2 ~jitter:0.0
      ~recovery:(Recovery.make ~deadline:4.0 ())
      ()
  in
  let r = run ~config:cfg Policy.fifo mesh in
  (match r.Sim.outcome with
  | Sim.Aborted Sim.Deadline -> ()
  | _ -> Alcotest.fail "deadline must abort");
  check_partition mesh r;
  check "stopped near the deadline" true (r.Sim.makespan <= 4.0 +. 1e-9)

let test_disconnect_rejoin () =
  (* transient disconnects with rejoin: the run still finishes as long as
     in-flight work is recovered by timeouts *)
  let cfg =
    Sim.config ~n_clients:4 ~seed:7
      ~faults:(Plan.make ~disconnect_rate:0.08 ~mean_downtime:1.5 ())
      ~recovery:(Recovery.make ~timeout_factor:3.0 ~detection_latency:0.25 ())
      ()
  in
  let r = run ~config:cfg Policy.lifo mesh in
  check_partition mesh r;
  check "disconnects happened" true (r.Sim.disconnects > 0);
  (match r.Sim.outcome with
  | Sim.Finished -> ()
  | _ -> Alcotest.fail "rejoining clients must finish the run")

let test_fault_metrics () =
  (* the metrics registry separates per-attempt latency from end-to-end
     latency: attempts >= completions under retries/stragglers *)
  let m = Ic_obs.Metrics.create () in
  let cfg =
    Sim.config ~n_clients:6 ~seed:13
      ~faults:
        (Plan.make ~straggler_probability:0.3 ~straggler_factor:6.0
           ~fail_probability:0.2 ())
      ~recovery:
        (Recovery.make ~timeout_factor:4.0 ~speculation_factor:2.0
           ~backoff_base:0.1 ~backoff_jitter:0.5 ())
      ()
  in
  let r = Sim.run ~metrics:m cfg Policy.fifo ~workload:Workload.unit mesh in
  check_partition mesh r;
  let count name =
    Ic_obs.Metrics.counter_value (Ic_obs.Metrics.counter m name)
  in
  (* re-registration requires the bucket bounds to match the simulator's *)
  let hist name buckets =
    Ic_obs.Metrics.histogram_count (Ic_obs.Metrics.histogram m name ~buckets)
  in
  let latency =
    hist "sim.task_latency" [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]
  and e2e =
    hist "sim.task_e2e_latency"
      [| 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
  in
  check_int "completed counter" (List.length r.Sim.completion_order)
    (count "sim.tasks_completed");
  check_int "e2e latency: one sample per completed task"
    (List.length r.Sim.completion_order)
    e2e;
  check "attempt latency >= e2e samples" true (latency >= e2e);
  check_int "retries counter" r.Sim.retries (count "sim.retries");
  check_int "speculations counter" r.Sim.speculations
    (count "sim.speculations")

let test_fault_determinism () =
  (* the acceptance bar: identical seeds => identical results, faults,
     recovery and all *)
  let cfg =
    Sim.config ~n_clients:5 ~seed:21
      ~faults:
        (Plan.make ~crash_rate:0.02 ~straggler_probability:0.3
           ~straggler_factor:8.0 ~loss_probability:0.15 ~fail_probability:0.1
           ())
      ~recovery:
        (Recovery.make ~timeout_factor:3.0 ~detection_latency:0.25
           ~backoff_base:0.1 ~backoff_jitter:0.5 ~speculation_factor:2.5 ())
      ()
  in
  let a = run ~config:cfg Policy.max_out_degree mesh in
  let b = run ~config:cfg Policy.max_out_degree mesh in
  check "identical results" true (a = b);
  (* and the traces agree event for event *)
  let trace cfg =
    let tr = Ic_obs.Trace.create () in
    ignore (Sim.run ~sink:tr cfg Policy.fifo ~workload:Workload.unit mesh);
    Ic_obs.Trace.to_array tr
  in
  check "identical traces" true (trace cfg = trace cfg)

let harsh_faults =
  Plan.make ~straggler_probability:0.3 ~straggler_factor:6.0
    ~loss_probability:0.2 ~fail_probability:0.2 ()

let harsh_recovery =
  Recovery.make ~timeout_factor:3.0 ~detection_latency:0.25 ~backoff_base:0.1
    ~backoff_jitter:0.5 ~speculation_factor:2.0 ()

let prop_fault_tolerance_all_policies =
  (* under crash-free but otherwise harsh fault plans (loss + stragglers +
     reported failures) with timeouts and unbounded retries, every policy
     completes every task exactly once, reproducibly *)
  QCheck2.Test.make ~name:"fault tolerance across policies" ~count:25
    QCheck2.Gen.(pair (int_range 1 30) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.2 in
      let cfg =
        Sim.config ~n_clients:3 ~jitter:0.3 ~seed ~faults:harsh_faults
          ~recovery:harsh_recovery ()
      in
      List.for_all
        (fun policy ->
          let r = Sim.run cfg policy ~workload:Workload.unit g in
          let again = Sim.run cfg policy ~workload:Workload.unit g in
          r.Sim.outcome = Sim.Finished
          && List.sort compare r.Sim.completion_order = List.init n Fun.id
          && r = again)
        Policy.baselines)

let prop_crash_partition =
  (* add permanent crashes: the run either finishes or aborts cleanly,
     and completed + unfinished always partition the dag *)
  QCheck2.Test.make ~name:"crashes finish or abort cleanly" ~count:25
    QCheck2.Gen.(pair (int_range 1 30) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.2 in
      let cfg =
        Sim.config ~n_clients:3 ~jitter:0.3 ~seed
          ~faults:
            (Plan.make ~crash_rate:0.05 ~straggler_probability:0.3
               ~straggler_factor:6.0 ~loss_probability:0.2 ())
          ~recovery:harsh_recovery ()
      in
      let r = Sim.run cfg Policy.fifo ~workload:Workload.unit g in
      let completed = List.sort compare r.Sim.completion_order in
      List.length completed = List.length (List.sort_uniq compare completed)
      && List.sort compare (completed @ r.Sim.unfinished) = List.init n Fun.id
      && (r.Sim.outcome <> Sim.Finished || r.Sim.unfinished = []))

let prop_sim_valid_on_random_dags =
  QCheck2.Test.make ~name:"sim invariants on random dags" ~count:40
    QCheck2.Gen.(pair (int_range 1 40) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.2 in
      let r =
        Sim.run (Sim.config ~n_clients:3 ~jitter:0.3 ~seed ()) Policy.fifo
          ~workload:Workload.unit g
      in
      List.length r.Sim.completion_order = n
      && r.Sim.utilization <= 1.0 +. 1e-9
      && r.Sim.stall_time >= 0.0)

(* --- the shared churn stream (Ic_fault.Plan.Churn) --------------------- *)

let churn_plan =
  Plan.make ~crash_rate:0.05 ~disconnect_rate:0.5 ~mean_downtime:0.4 ~seed:77 ()

let test_churn_stream_shape () =
  (* strictly increasing times; Disconnect/Rejoin alternate; Crash is
     terminal; rejoin time = disconnect time + the carried downtime *)
  for client = 0 to 49 do
    let c = Plan.Churn.create churn_plan ~client in
    let last_t = ref neg_infinity in
    let down_until = ref None in
    let crashed = ref false in
    let continue = ref true in
    let steps = ref 0 in
    while !continue && !steps < 1000 do
      incr steps;
      match Plan.Churn.next c with
      | None -> continue := false
      | Some { Plan.Churn.time; kind } ->
        if !crashed then Alcotest.fail "event after Crash";
        if time <= !last_t then Alcotest.fail "times not strictly increasing";
        last_t := time;
        (match (kind, !down_until) with
        | Plan.Churn.Crash, _ -> crashed := true
        | Plan.Churn.Disconnect d, None ->
          if d <= 0.0 then Alcotest.fail "non-positive downtime";
          down_until := Some (time +. d)
        | Plan.Churn.Rejoin, Some due ->
          Alcotest.(check (float 1e-9)) "rejoin at disconnect + downtime" due time;
          down_until := None
        | Plan.Churn.Disconnect _, Some _ -> Alcotest.fail "disconnect while down"
        | Plan.Churn.Rejoin, None -> Alcotest.fail "rejoin while up")
    done
  done

let test_churn_stream_matches_samplers () =
  (* the stream is exactly the raw samplers folded into a timeline *)
  let plan = Plan.make ~disconnect_rate:1.0 ~mean_downtime:0.3 ~seed:5 () in
  let c = Plan.Churn.create plan ~client:3 in
  let gap0, down0 =
    match Plan.disconnect plan ~client:3 ~k:0 with
    | Some gd -> gd
    | None -> Alcotest.fail "sampler disabled"
  in
  (match Plan.Churn.next c with
  | Some { Plan.Churn.time; kind = Plan.Churn.Disconnect d } ->
    Alcotest.(check (float 1e-9)) "first episode at gap0" gap0 time;
    Alcotest.(check (float 1e-9)) "downtime from the sampler" down0 d
  | _ -> Alcotest.fail "expected Disconnect");
  (match Plan.Churn.next c with
  | Some { Plan.Churn.time; kind = Plan.Churn.Rejoin } ->
    Alcotest.(check (float 1e-9)) "rejoin" (gap0 +. down0) time
  | _ -> Alcotest.fail "expected Rejoin");
  (* identically seeded cursors replay the identical stream *)
  let replay cur =
    let rec go acc n =
      if n = 0 then List.rev acc
      else
        match Plan.Churn.next cur with
        | None -> List.rev acc
        | Some e -> go ((e.Plan.Churn.time, e.Plan.Churn.kind) :: acc) (n - 1)
    in
    go [] 20
  in
  let a = replay (Plan.Churn.create churn_plan ~client:9) in
  let b = replay (Plan.Churn.create churn_plan ~client:9) in
  if a <> b then Alcotest.fail "cursor replay differs";
  (* and [events] agrees with a bounded pull of [next] *)
  let horizon = 3.0 in
  let eager = Plan.Churn.events churn_plan ~client:9 ~horizon in
  let pulled =
    List.filter (fun (t, _) -> t <= horizon) a
    |> List.map (fun (time, kind) -> { Plan.Churn.time; kind })
  in
  if eager <> pulled then Alcotest.fail "events disagrees with next"

let () =
  Alcotest.run "ic_sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "executes everything once" `Quick test_executes_everything;
          Alcotest.test_case "allocation respects precedence" `Quick
            test_allocation_respects_completions;
          Alcotest.test_case "single client never stalls" `Quick
            test_single_client_no_stalls;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
          Alcotest.test_case "makespan bounds" `Quick test_makespan_lower_bound;
          Alcotest.test_case "heterogeneous speeds" `Quick test_heterogeneous_speeds;
          Alcotest.test_case "gridlock on a chain" `Quick test_gridlock_on_chain;
          Alcotest.test_case "workload models" `Quick test_workloads;
          Alcotest.test_case "empty dag" `Quick test_empty_dag;
          Alcotest.test_case "single client = list schedule" `Quick
            test_single_client_is_list_schedule;
          Alcotest.test_case "unreliable clients" `Quick test_unreliable_clients;
          Alcotest.test_case "communication costs" `Quick test_comm_costs;
          Alcotest.test_case "granularity crossover" `Quick test_granularity_crossover;
          Alcotest.test_case "granularity rows" `Quick test_granularity_rows;
        ] );
      ( "assessment",
        [
          Alcotest.test_case "theory never loses (mesh)" `Quick
            test_assessment_theory_never_loses;
          Alcotest.test_case "row order" `Quick test_assessment_theory_row_first;
        ] );
      ( "burst service",
        [
          Alcotest.test_case "by hand" `Quick test_burst_basic;
          Alcotest.test_case "theory dominates" `Quick test_burst_theory_dominates;
          Alcotest.test_case "sweep" `Quick test_burst_sweep;
          Alcotest.test_case "edge cases" `Quick test_burst_edge_cases;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "config validation" `Quick
            test_fault_config_validation;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          Alcotest.test_case "loss needs timeouts" `Quick
            test_loss_needs_timeouts;
          Alcotest.test_case "speculation dedup" `Quick test_speculation_dedup;
          Alcotest.test_case "retry budget abort" `Quick test_retry_budget_abort;
          Alcotest.test_case "deadline abort" `Quick test_deadline_abort;
          Alcotest.test_case "disconnect and rejoin" `Quick
            test_disconnect_rejoin;
          Alcotest.test_case "fault metrics" `Quick test_fault_metrics;
          Alcotest.test_case "seeded fault determinism" `Quick
            test_fault_determinism;
        ] );
      ( "churn stream",
        [
          Alcotest.test_case "well-formed timelines" `Quick
            test_churn_stream_shape;
          Alcotest.test_case "matches the raw samplers" `Quick
            test_churn_stream_matches_samplers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sim_valid_on_random_dags;
            prop_fault_tolerance_all_policies;
            prop_crash_partition;
          ] );
    ]
