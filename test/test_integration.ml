(* End-to-end checks, one per experiment of DESIGN.md's index (E1..E18).
   Each asserts the headline claim the paper attaches to the corresponding
   figure or table. *)

module Dag = Ic_dag.Dag
module Optimal = Ic_dag.Optimal
module Profile = Ic_dag.Profile
module F = Ic_families
module G = Ic_granularity

let check = Alcotest.(check bool)

let assert_optimal name g s =
  match Optimal.is_ic_optimal g s with
  | Ok true -> ()
  | Ok false -> Alcotest.failf "%s: not IC-optimal" name
  | Error (`Too_large k) -> Alcotest.failf "%s: too large (%d)" name k

let e1_blocks () =
  (* Fig 1: V and Lambda, duals of one another, both optimally scheduled *)
  check "duals" true
    (Ic_dag.Iso.isomorphic (Ic_blocks.Lambda.dag 2) (Dag.dual (Ic_blocks.Vee.dag 2)));
  assert_optimal "V" (Ic_blocks.Vee.dag 2) (Ic_blocks.Vee.schedule 2);
  assert_optimal "Lambda" (Ic_blocks.Lambda.dag 2) (Ic_blocks.Lambda.schedule 2)

let e2_diamond () =
  let d = F.Diamond.complete ~arity:2 ~depth:3 in
  assert_optimal "diamond" (F.Diamond.dag d) (F.Diamond.schedule d)

let e3_coarsened_diamond () =
  let d = F.Diamond.complete ~arity:2 ~depth:4 in
  let t = G.Coarsen_diamond.coarsen d ~subtree_roots:[ 2; 9 ] in
  check "coarse diamond admits" true
    (Result.get_ok (Optimal.admits_ic_optimal t.G.Cluster.coarse))

let e4_e5_alternating () =
  let s1 = F.Out_tree.complete ~arity:2 ~depth:1 in
  let s2 = F.Out_tree.complete ~arity:2 ~depth:2 in
  List.iter
    (fun (name, items) ->
      let c = F.Alternating.build_exn items in
      assert_optimal name (Ic_core.Compose.dag (fst c)) (F.Alternating.schedule c))
    [
      ("type1", F.Alternating.diamond_chain [ s1; s2 ]);
      ("type2", F.Alternating.in_prefixed s1 [ s2 ]);
      ("type3", F.Alternating.out_suffixed [ s1 ] s2);
      ("unequal", [ F.Alternating.Out s1; F.Alternating.In s2 ]);
    ]

let e6_meshes () =
  assert_optimal "out-mesh" (F.Mesh.out_mesh 6) (F.Mesh.out_schedule 6);
  assert_optimal "in-mesh" (F.Mesh.in_mesh 6) (F.Mesh.in_schedule 6)

let e7_w_decomposition () =
  let c, sigmas = F.Mesh.w_decomposition 5 in
  check "|>-linear" true (Ic_core.Linear.is_linear c sigmas);
  assert_optimal "Thm 2.1 mesh" (Ic_core.Compose.dag c)
    (Ic_core.Linear.schedule_exn c sigmas)

let e8_mesh_scaling () =
  let rows = G.Coarsen_mesh.scaling ~levels:23 ~blocks:[ 1; 2; 4; 8 ] in
  let row b = List.find (fun r -> r.G.Coarsen_mesh.block = b) rows in
  check "quadratic work" true
    ((row 8).G.Coarsen_mesh.max_task_work = 64.0 *. (row 1).G.Coarsen_mesh.max_task_work);
  check "linear comm" true
    ((row 8).G.Coarsen_mesh.max_task_communication
    = 8 * (row 1).G.Coarsen_mesh.max_task_communication)

let e9_butterflies () =
  List.iter
    (fun d ->
      let s = F.Butterfly_net.schedule d in
      check "pairs consecutive" true (F.Butterfly_net.pairs_consecutive d s);
      assert_optimal "B_d" (F.Butterfly_net.dag d) s)
    [ 1; 2; 3 ]

let e10_sort_and_fft () =
  let keys = [| 7; 3; 9; 1; 4; 4; 0; 8 |] in
  let expected = Array.copy keys in
  Array.sort compare expected;
  check "comparator network sorts under IC-optimal order" true
    (Ic_compute.Sorting.sort keys = expected);
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 2.0; 0.0; 1.0 |] in
  let n = Ic_compute.Convolution.naive a b in
  let f = Ic_compute.Convolution.poly_mul_fft a b in
  check "convolution through the FFT dag" true
    (Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) n f)

let e11_prefix () =
  let d = F.Prefix_dag.n_decomposition 8 in
  check "|>-linear" true
    (Ic_core.Linear.is_linear d.F.Prefix_dag.compose d.F.Prefix_dag.schedules);
  assert_optimal "P_8" (F.Prefix_dag.dag 8) (F.Prefix_dag.schedule 8)

let e12_dlt () =
  let t = F.Dlt_dag.l_dag 8 in
  assert_optimal "L_8" (F.Dlt_dag.dag t) (F.Dlt_dag.schedule t);
  let coarse = G.Coarsen_dlt.coarsen_columns 8 in
  check "coarse L_8 admits" true
    (Result.get_ok (Optimal.admits_ic_optimal coarse.G.Cluster.coarse))

let e13_dlt_tree () =
  check "V3 chain" true
    (Ic_core.Priority.is_linear_chain
       (List.map Ic_core.Priority.of_block
          Ic_blocks.Repertoire.[ vee 3; vee 3; lambda 2; lambda 2 ]));
  let t = F.Dlt_dag.l_prime_dag 8 in
  assert_optimal "L'_8" (F.Dlt_dag.dag t) (F.Dlt_dag.schedule t)

let e14_paths () =
  let a =
    Ic_compute.Bool_matrix.of_edges 9
      [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4); (4, 5); (5, 6); (6, 7); (7, 8); (8, 0) ]
  in
  check "Fig 16 computation" true
    (Ic_compute.Paths.compute a ~k:8 = Ic_compute.Paths.reference a ~k:8)

let e15_matmul () =
  assert_optimal "M" (F.Matmul_dag.dag ()) (F.Matmul_dag.schedule ());
  Alcotest.(check (list string)) "boxed order"
    [ "AE"; "CE"; "CF"; "AF"; "BG"; "DG"; "DH"; "BH" ]
    (F.Matmul_dag.product_eligibility_order ())

let e16_assessment () =
  (* IC-optimal policies never lose to a heuristic on eligibility, on any
     family; and stall no more than FIFO in simulation *)
  let cases =
    [
      ("mesh", F.Mesh.out_mesh 12, F.Mesh.out_schedule 12);
      ("butterfly", F.Butterfly_net.dag 4, F.Butterfly_net.schedule 4);
      ("prefix", F.Prefix_dag.dag 16, F.Prefix_dag.schedule 16);
      ( "diamond",
        F.Diamond.dag (F.Diamond.complete ~arity:2 ~depth:4),
        F.Diamond.schedule (F.Diamond.complete ~arity:2 ~depth:4) );
      ("matmul", F.Matmul_dag.dag (), F.Matmul_dag.schedule ());
    ]
  in
  List.iter
    (fun (name, g, theory) ->
      let rows = Ic_sim.Assessment.compare_policies g ~theory in
      List.iter
        (fun r ->
          if r.Ic_sim.Assessment.profile_losses <> 0 then
            Alcotest.failf "%s: theory loses to %s" name r.Ic_sim.Assessment.policy)
        rows;
      match rows with
      | theory_row :: rest ->
        let fifo = List.find (fun r -> r.Ic_sim.Assessment.policy = "fifo") rest in
        check
          (Printf.sprintf "%s: theory stalls <= fifo stalls" name)
          true
          (theory_row.Ic_sim.Assessment.sim.Ic_sim.Simulator.stalls
          <= fifo.Ic_sim.Assessment.sim.Ic_sim.Simulator.stalls)
      | [] -> Alcotest.fail "no rows")
    cases

let e16b_burst_service () =
  (* scenario (2): IC-optimal profiles serve every burst size at least as
     well as any heuristic's, on every family *)
  List.iter
    (fun (g, theory) ->
      let renorm s =
        Ic_dag.Schedule.of_nonsink_order_exn g (Ic_dag.Schedule.nonsink_prefix g s)
      in
      let theory = renorm theory in
      List.iter
        (fun policy ->
          let other = renorm (Ic_heuristics.Policy.run policy g) in
          List.iter
            (fun burst ->
              let a = Ic_sim.Burst.of_schedule ~burst g theory in
              let b = Ic_sim.Burst.of_schedule ~burst g other in
              check "theory serves at least as many" true
                (a.Ic_sim.Burst.served >= b.Ic_sim.Burst.served))
            [ 1; 2; 4; 8 ])
        Ic_heuristics.Policy.baselines)
    [
      (F.Mesh.out_mesh 10, F.Mesh.out_schedule 10);
      (F.Butterfly_net.dag 4, F.Butterfly_net.schedule 4);
      (F.Prefix_dag.dag 16, F.Prefix_dag.schedule 16);
    ]

let e17_robustness () =
  (* the robustness study runs every policy under every fault regime and
     either finishes or degrades gracefully; the fault-free baseline
     regime agrees with a plain simulation *)
  let g = F.Mesh.out_mesh 10 in
  let theory = F.Mesh.out_schedule 10 in
  let config = Ic_sim.Simulator.config ~n_clients:6 ~seed:17 () in
  let rows = Ic_sim.Assessment.robustness_study ~config g ~theory in
  let regimes = List.length Ic_sim.Assessment.default_regimes in
  check "one row per regime x policy" true
    (List.length rows = regimes * 7);
  List.iter
    (fun (r : Ic_sim.Assessment.robustness_row) ->
      let sim = r.Ic_sim.Assessment.sim in
      let completed = List.length sim.Ic_sim.Simulator.completion_order in
      match sim.Ic_sim.Simulator.outcome with
      | Ic_sim.Simulator.Finished ->
        if completed <> Ic_dag.Dag.n_nodes g then
          Alcotest.failf "%s/%s: finished with %d of %d tasks"
            r.Ic_sim.Assessment.regime r.Ic_sim.Assessment.policy completed
            (Ic_dag.Dag.n_nodes g)
      | Ic_sim.Simulator.Aborted _ ->
        if completed + List.length sim.Ic_sim.Simulator.unfinished
           <> Ic_dag.Dag.n_nodes g
        then
          Alcotest.failf "%s/%s: aborted rows must partition the dag"
            r.Ic_sim.Assessment.regime r.Ic_sim.Assessment.policy)
    rows;
  (* fault-free regime = the plain simulator *)
  let plain =
    Ic_sim.Simulator.run config (Ic_heuristics.Policy.of_schedule "ic-optimal" theory)
      ~workload:Ic_sim.Workload.unit g
  in
  match rows with
  | first :: _ ->
    check "baseline regime first" true
      (first.Ic_sim.Assessment.regime = "baseline"
      && first.Ic_sim.Assessment.policy = "ic-optimal");
    check "baseline matches plain run" true
      (first.Ic_sim.Assessment.sim = plain)
  | [] -> Alcotest.fail "no rows"

let e18_batched () =
  let module B = Ic_batch.Batched in
  (* lex optimum exists on a non-admitting dag and matches the pointwise
     optimum on an admitting one *)
  let bad =
    Ic_dag.Dag.make_exn ~n:7
      ~arcs:[ (0, 2); (0, 4); (1, 2); (1, 4); (2, 6); (3, 5) ] ()
  in
  check "no pointwise optimum" false
    (Result.get_ok (Optimal.admits_ic_optimal bad));
  check "lex optimum exists" true
    (match B.optimal bad ~batch_size:1 with Ok t -> B.is_valid bad t | Error _ -> false);
  let mesh = F.Mesh.out_mesh 4 in
  check "lex = pointwise where admitted" true
    (Result.get_ok (B.e_opt mesh ~batch_size:1) = Result.get_ok (Optimal.e_opt mesh))

let a2_auto_scheduler () =
  List.iter
    (fun (name, g) ->
      match Ic_core.Auto.schedule g with
      | Error msg -> Alcotest.failf "%s: %s" name msg
      | Ok p ->
        check (name ^ " certified") true (p.Ic_core.Auto.certificate = `Linear);
        assert_optimal name g p.Ic_core.Auto.schedule)
    [
      ("mesh", F.Mesh.out_mesh 5);
      ("butterfly", F.Butterfly_net.dag 3);
      ("prefix", F.Prefix_dag.dag 8);
      ("matmul", F.Matmul_dag.dag ());
    ]

let () =
  Alcotest.run "integration (per-experiment index)"
    [
      ( "experiments",
        [
          Alcotest.test_case "E1 blocks (Fig 1)" `Quick e1_blocks;
          Alcotest.test_case "E2 diamond (Fig 2)" `Quick e2_diamond;
          Alcotest.test_case "E3 coarsened diamond (Fig 3)" `Quick e3_coarsened_diamond;
          Alcotest.test_case "E4/E5 alternating (Fig 4, Table 1)" `Quick e4_e5_alternating;
          Alcotest.test_case "E6 meshes (Fig 5)" `Quick e6_meshes;
          Alcotest.test_case "E7 W-decomposition (Fig 6)" `Quick e7_w_decomposition;
          Alcotest.test_case "E8 mesh coarsening (Fig 7)" `Quick e8_mesh_scaling;
          Alcotest.test_case "E9 butterflies (Figs 8-10)" `Quick e9_butterflies;
          Alcotest.test_case "E10 sorting & FFT (eqs 5.1, 5.2)" `Quick e10_sort_and_fft;
          Alcotest.test_case "E11 parallel prefix (Figs 11-12)" `Quick e11_prefix;
          Alcotest.test_case "E12 DLT L_n (Fig 13)" `Quick e12_dlt;
          Alcotest.test_case "E13 DLT L'_n (Figs 14-15)" `Quick e13_dlt_tree;
          Alcotest.test_case "E14 graph paths (Fig 16)" `Quick e14_paths;
          Alcotest.test_case "E15 matrix multiply (Fig 17)" `Quick e15_matmul;
          Alcotest.test_case "E16 simulation assessment" `Slow e16_assessment;
          Alcotest.test_case "E16b burst-request service" `Quick e16b_burst_service;
          Alcotest.test_case "E17 fault robustness" `Quick e17_robustness;
          Alcotest.test_case "E18 batched scheduling" `Quick e18_batched;
          Alcotest.test_case "A2 automatic scheduler" `Quick a2_auto_scheduler;
        ] );
    ]
