module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Gen = Ic_dag.Gen
module Frontier = Ic_dag.Frontier
module Repertoire = Ic_blocks.Repertoire

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* Reference implementation: the ELIGIBLE set recomputed from scratch from
   an executed-set bool array, straight from the definition. *)
let naive_eligible g executed =
  let acc = ref [] in
  for v = Dag.n_nodes g - 1 downto 0 do
    if
      (not executed.(v))
      && Array.for_all (fun p -> executed.(p)) (Dag.pred g v)
    then acc := v :: !acc
  done;
  !acc

(* Replay [order] on one incremental frontier, checking after every prefix
   that count/members agree with the naive recomputation, with a fresh
   [of_set] frontier, and with the bulk [profile]. *)
let check_replay name g order =
  let n = Dag.n_nodes g in
  let executed = Array.make n false in
  let fr = Frontier.create g in
  let prof = Frontier.profile g ~order in
  let step i =
    let reference = naive_eligible g executed in
    let label fmt = Printf.sprintf "%s: %s after %d steps" name fmt i in
    check_ints (label "members") reference (Frontier.to_list fr);
    check_int (label "count") (List.length reference) (Frontier.count fr);
    check_int (label "profile") prof.(i) (Frontier.count fr);
    check_int (label "executed_count") i (Frontier.executed_count fr);
    let fresh = Frontier.of_set g ~executed in
    check_ints (label "of_set members") reference (Frontier.to_list fresh);
    List.iter
      (fun v -> check (label "is_eligible") true (Frontier.is_eligible fr v))
      reference
  in
  step 0;
  Array.iteri
    (fun i v ->
      Frontier.execute fr v;
      executed.(v) <- true;
      step (i + 1))
    order;
  check_int (name ^ ": empty at end") 0 (Frontier.count fr)

let test_repertoire_equivalence () =
  List.iter
    (fun (r : Repertoire.t) ->
      check_replay r.name r.dag (Schedule.order r.schedule))
    Repertoire.all

let test_random_equivalence () =
  let st = Random.State.make [| 42 |] in
  for i = 1 to 15 do
    let g = Gen.random_dag st ~n:(10 + (i mod 5 * 7)) ~arc_probability:0.2 in
    let order = Schedule.order (Gen.random_schedule st g) in
    check_replay (Printf.sprintf "random dag %d" i) g order
  done;
  for i = 1 to 10 do
    let g = Gen.random_layered_dag st ~layers:4 ~width:5 ~arc_probability:0.4 in
    let order = Schedule.order (Gen.random_nonsinks_first_schedule st g) in
    check_replay (Printf.sprintf "layered dag %d" i) g order
  done

(* [of_set] must also accept non-ideal executed sets: a node with
   unexecuted parents is simply not eligible, executed or not. *)
let test_of_set_non_ideal () =
  let st = Random.State.make [| 7 |] in
  for i = 1 to 25 do
    let g = Gen.random_dag st ~n:20 ~arc_probability:0.25 in
    let executed =
      Array.init (Dag.n_nodes g) (fun _ -> Random.State.bool st)
    in
    let fr = Frontier.of_set g ~executed in
    check_ints
      (Printf.sprintf "non-ideal set %d" i)
      (naive_eligible g executed) (Frontier.to_list fr)
  done;
  check "length mismatch rejected" true
    (try
       ignore (Frontier.of_set (Dag.empty 3) ~executed:[| true |]);
       false
     with Invalid_argument _ -> true)

let frontier_state fr =
  let g = Frontier.dag fr in
  ( Frontier.count fr,
    Frontier.executed_count fr,
    Frontier.to_list fr,
    List.init (Dag.n_nodes g) (Frontier.is_executed fr) )

let test_snapshot_restore_roundtrip () =
  let st = Random.State.make [| 1234 |] in
  for _ = 1 to 25 do
    let g = Gen.random_dag st ~n:24 ~arc_probability:0.2 in
    let n = Dag.n_nodes g in
    let order = Schedule.order (Gen.random_schedule st g) in
    let k = Random.State.int st (n + 1) in
    let fr = Frontier.create g in
    for i = 0 to k - 1 do
      Frontier.execute fr order.(i)
    done;
    let before = frontier_state fr in
    let snap = Frontier.snapshot fr in
    (* run an arbitrary greedy continuation, not necessarily [order]'s *)
    let rec run_on () =
      match Frontier.choose fr with
      | Some v ->
        Frontier.execute fr v;
        if Random.State.bool st then run_on ()
      | None -> ()
    in
    run_on ();
    Frontier.restore fr snap;
    check "roundtrip restores state" true (frontier_state fr = before);
    (* the restored frontier must still execute correctly *)
    for i = k to n - 1 do
      Frontier.execute fr order.(i)
    done;
    check_int "completes after restore" n (Frontier.executed_count fr)
  done

let test_nested_snapshots () =
  let g = Ic_families.Mesh.out_mesh 5 in
  let order = Schedule.order (Ic_families.Mesh.out_schedule 5) in
  let fr = Frontier.create g in
  let snap0 = Frontier.snapshot fr in
  for i = 0 to 4 do
    Frontier.execute fr order.(i)
  done;
  let state1 = frontier_state fr in
  let snap1 = Frontier.snapshot fr in
  for i = 5 to 9 do
    Frontier.execute fr order.(i)
  done;
  let state2 = frontier_state fr in
  let snap2 = Frontier.snapshot fr in
  for i = 10 to Array.length order - 1 do
    Frontier.execute fr order.(i)
  done;
  Frontier.restore fr snap2;
  check "inner restore" true (frontier_state fr = state2);
  Frontier.restore fr snap1;
  check "outer restore" true (frontier_state fr = state1);
  check "stale snapshot raises" true
    (try
       Frontier.restore fr snap2;
       false
     with Invalid_argument _ -> true);
  Frontier.restore fr snap0;
  check_int "back to empty execution" 0 (Frontier.executed_count fr)

let test_execute_errors () =
  let g = Dag.make_exn ~n:3 ~arcs:[ (0, 1); (1, 2) ] () in
  let fr = Frontier.create g in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "out of range" true (raises (fun () -> Frontier.execute fr 3));
  check "not eligible" true (raises (fun () -> Frontier.execute fr 2));
  Frontier.execute fr 0;
  check "already executed" true (raises (fun () -> Frontier.execute fr 0))

let test_promotions_ascending () =
  let st = Random.State.make [| 99 |] in
  for _ = 1 to 10 do
    let g = Gen.random_dag st ~n:30 ~arc_probability:0.3 in
    let order = Schedule.order (Gen.random_schedule st g) in
    let fr = Frontier.create g in
    Array.iter
      (fun v ->
        let promoted = ref [] in
        Frontier.execute fr ~on_promote:(fun w -> promoted := w :: !promoted) v;
        let ws = List.rev !promoted in
        check "promotions ascending" true (List.sort compare ws = ws))
      order
  done

let test_stats () =
  let g = Ic_families.Mesh.out_mesh 4 in
  let n = Dag.n_nodes g in
  let order = Schedule.order (Ic_families.Mesh.out_schedule 4) in
  let fr = Frontier.create g in
  let snap = Frontier.snapshot fr in
  Array.iter (Frontier.execute fr) order;
  Frontier.restore fr snap;
  Array.iter (Frontier.execute fr) order;
  let stats = Frontier.stats fr in
  check_int "executes" (2 * n) stats.Frontier.executes;
  (* every non-source is promoted exactly once per full replay *)
  check_int "promotions"
    (2 * Dag.n_nonsources g)
    stats.Frontier.promotions;
  check_int "restores" 1 stats.Frontier.restores

(* [profile]'s remaining-parents scratch is tiered by maximum in-degree
   (<= 255 packed8, <= 65535 packed16, beyond unpacked). A k-star — k
   leaves all feeding one center — pins the maximum in-degree exactly, so
   these tests cross each boundary and check both the tier counters and
   that every tier computes the same (known) profile. *)
let star k =
  let b = Dag.Builder.create ~n:(k + 1) ~hint:k () in
  for i = 0 to k - 1 do
    Dag.Builder.add_arc b i k
  done;
  Dag.Builder.build_exn b

let profile_star k =
  let g = star k in
  let order = Array.init (k + 1) Fun.id in
  let prof = Frontier.profile g ~order in
  check_int "star profile length" (k + 2) (Array.length prof);
  for i = 0 to k - 1 do
    check_int "star eligibility while draining leaves" (k - i) prof.(i)
  done;
  check_int "center eligible after the last leaf" 1 prof.(k);
  check_int "drained" 0 prof.(k + 1)

let test_scratch_tier_boundaries () =
  let counts () = Frontier.scratch_counts () in
  let c0 = counts () in
  profile_star 255;
  let c1 = counts () in
  check_int "255 uses packed8" (c0.Frontier.packed8 + 1) c1.Frontier.packed8;
  check_int "255 leaves packed16 alone" c0.Frontier.packed16 c1.Frontier.packed16;
  profile_star 256;
  let c2 = counts () in
  check_int "256 uses packed16" (c1.Frontier.packed16 + 1) c2.Frontier.packed16;
  check_int "256 leaves packed8 alone" c1.Frontier.packed8 c2.Frontier.packed8;
  profile_star 65535;
  let c3 = counts () in
  check_int "65535 still packed16" (c2.Frontier.packed16 + 1) c3.Frontier.packed16;
  profile_star 65536;
  let c4 = counts () in
  check_int "65536 falls back to unpacked" (c3.Frontier.unpacked + 1)
    c4.Frontier.unpacked;
  check_int "65536 leaves packed16 alone" c3.Frontier.packed16 c4.Frontier.packed16

let test_scratch_metrics_idempotent () =
  profile_star 3;
  let reg = Ic_obs.Metrics.create () in
  Frontier.record_scratch_metrics reg;
  Frontier.record_scratch_metrics reg;
  let totals = Frontier.scratch_counts () in
  let value name =
    Ic_obs.Metrics.counter_value (Ic_obs.Metrics.counter reg name)
  in
  check_int "packed8 metric" totals.Frontier.packed8
    (value "frontier.profile.scratch_packed8");
  check_int "packed16 metric" totals.Frontier.packed16
    (value "frontier.profile.scratch_packed16");
  check_int "unpacked metric" totals.Frontier.unpacked
    (value "frontier.profile.scratch_unpacked")

let () =
  Alcotest.run "frontier"
    [
      ( "equivalence",
        [
          Alcotest.test_case "repertoire replay" `Quick
            test_repertoire_equivalence;
          Alcotest.test_case "random dags" `Quick test_random_equivalence;
          Alcotest.test_case "of_set non-ideal" `Quick test_of_set_non_ideal;
        ] );
      ( "undo",
        [
          Alcotest.test_case "snapshot/restore roundtrip" `Quick
            test_snapshot_restore_roundtrip;
          Alcotest.test_case "nested snapshots" `Quick test_nested_snapshots;
        ] );
      ( "api",
        [
          Alcotest.test_case "execute errors" `Quick test_execute_errors;
          Alcotest.test_case "promotions ascending" `Quick
            test_promotions_ascending;
          Alcotest.test_case "stats counters" `Quick test_stats;
        ] );
      ( "scratch tiers",
        [
          Alcotest.test_case "in-degree boundaries" `Quick
            test_scratch_tier_boundaries;
          Alcotest.test_case "metrics idempotent" `Quick
            test_scratch_metrics_idempotent;
        ] );
    ]
