(* Tests for the Ic_prof self-profiling library: Span tree semantics
   (nesting, counts, recursion, the disabled fast path), Report rendering
   (JSON round-tripped through the bundled reader, collapsed stacks for
   flamegraph tools) and the Baseline perf-regression comparator. *)

module Span = Ic_prof.Span
module Report = Ic_prof.Report
module Baseline = Ic_prof.Baseline
module Json = Ic_obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Every test leaves the global profiler disabled and empty. *)
let fresh () =
  Span.disable ();
  Span.reset ()

(* --- spans --- *)

let test_span_disabled_noop () =
  fresh ();
  check "disabled by default" false (Span.enabled ());
  Span.enter "ghost";
  Span.enter "ghost.child";
  Span.leave ();
  Span.leave ();
  let r = Span.time "ghost.time" (fun () -> 41 + 1) in
  check_int "time returns the value" 42 r;
  check "nothing recorded while disabled" true (Span.capture () = [])

let test_span_nesting_and_counts () =
  fresh ();
  Span.enable ();
  Span.enter "a";
  Span.enter "b";
  Span.leave ();
  Span.leave ();
  Span.enter "a";
  Span.leave ();
  Span.disable ();
  (match Span.capture () with
  | [ a ] ->
    check_str "top-level span" "a" a.Span.info_name;
    check_int "re-entry accumulates" 2 a.Span.info_count;
    check "non-negative time" true (a.Span.total_s >= 0.0);
    (match a.Span.info_children with
    | [ b ] ->
      check_str "nested child" "b" b.Span.info_name;
      check_int "child count" 1 b.Span.info_count;
      check "child within parent" true (b.Span.total_s <= a.Span.total_s)
    | l -> Alcotest.fail (Printf.sprintf "expected 1 child, got %d" (List.length l)))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 top span, got %d" (List.length l)));
  fresh ()

let test_span_recursion_nests () =
  fresh ();
  Span.enable ();
  Span.time "f" (fun () -> Span.time "f" (fun () -> ()));
  Span.disable ();
  (match Span.capture () with
  | [ f ] ->
    check_str "outer" "f" f.Span.info_name;
    check_int "outer once" 1 f.Span.info_count;
    (match f.Span.info_children with
    | [ inner ] ->
      check_str "recursive call is a child" "f" inner.Span.info_name;
      check_int "inner once" 1 inner.Span.info_count
    | _ -> Alcotest.fail "recursion must nest, not merge")
  | _ -> Alcotest.fail "expected a single top-level span");
  fresh ()

let test_span_time_exception_safe () =
  fresh ();
  Span.enable ();
  (match Span.time "boom" (fun () -> failwith "kaput") with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "exception must propagate");
  (* the span was closed on the way out: a new span opens at top level,
     not under "boom" *)
  Span.time "after" (fun () -> ());
  Span.disable ();
  let names = List.map (fun i -> i.Span.info_name) (Span.capture ()) in
  check "raising span recorded" true (List.mem "boom" names);
  check "next span back at root" true (List.mem "after" names);
  fresh ()

let test_span_capture_sorted () =
  fresh ();
  Span.enable ();
  Span.time "zeta" (fun () -> ());
  Span.time "alpha" (fun () -> ());
  Span.time "mid" (fun () -> ());
  Span.disable ();
  let names = List.map (fun i -> i.Span.info_name) (Span.capture ()) in
  check "capture sorts by name" true (names = [ "alpha"; "mid"; "zeta" ]);
  Span.reset ();
  check "reset drops the tree" true (Span.capture () = []);
  fresh ()

(* --- report rendering (on synthetic trees: exact, deterministic) --- *)

let leaf =
  {
    Span.info_name = "leaf";
    info_count = 3;
    total_s = 0.25;
    minor_words = 1024.0;
    major_words = 0.0;
    info_children = [];
  }

let root =
  {
    Span.info_name = "root x";
    info_count = 1;
    total_s = 1.0;
    minor_words = 2048.0;
    major_words = 512.0;
    info_children = [ leaf ];
  }

let test_report_self_time () =
  check "self = total - children" true (Report.self_s root = 0.75);
  check "leaf self = total" true (Report.self_s leaf = 0.25);
  check "alloc sums heaps" true (Report.alloc_words root = 2560.0);
  check "self alloc nets children" true
    (Report.self_alloc_words root = 2560.0 -. 1024.0)

let test_report_text () =
  let txt = Report.to_text [ root ] in
  let has s =
    let n = String.length txt and m = String.length s in
    let rec go i = i + m <= n && (String.sub txt i m = s || go (i + 1)) in
    go 0
  in
  check "names rendered" true (has "root x" && has "leaf");
  check "counts rendered" true (has "3")

let test_report_json_roundtrip () =
  match Json.parse (Report.to_json [ root ]) with
  | Error e -> Alcotest.fail ("report JSON invalid: " ^ e)
  | Ok (Json.Array [ r ]) ->
    let str k = Option.bind (Json.member k r) Json.to_string in
    let num k = Option.bind (Json.member k r) Json.to_number in
    check "name survives" true (str "name" = Some "root x");
    check "count" true (num "count" = Some 1.0);
    check "total_ms" true (num "total_ms" = Some 1000.0);
    check "self_ms" true (num "self_ms" = Some 750.0);
    (match Json.member "children" r with
    | Some (Json.Array [ c ]) ->
      check "child name" true
        (Option.bind (Json.member "name" c) Json.to_string = Some "leaf");
      check "child leaf has no children" true
        (Json.member "children" c = Some (Json.Array []))
    | _ -> Alcotest.fail "children must be a 1-element array")
  | Ok _ -> Alcotest.fail "report must be a 1-element JSON array"

let test_report_collapsed () =
  let folded = Report.to_collapsed [ root ] in
  let lines = String.split_on_char '\n' (String.trim folded) in
  (* spaces in frame names become underscores; self time is integer
     microseconds *)
  check "two stacks" true (List.length lines = 2);
  check "root frame" true (List.mem "root_x 750000" lines);
  check "nested frame" true (List.mem "root_x;leaf 250000" lines);
  (* zero-self-time nodes are elided *)
  let hollow = { root with Span.total_s = 0.25 } in
  let folded = Report.to_collapsed [ hollow ] in
  check "zero self elided" true
    (String.trim folded = "root_x;leaf 250000")

(* --- baseline comparator --- *)

let rec_ b ms = { Baseline.bench = b; metrics = ms }

let test_baseline_fold_min () =
  let folded =
    Baseline.fold_min
      [
        rec_ "mesh" [ ("time_ms", 5.0); ("allocated_mb", 2.0) ];
        rec_ "mesh" [ ("time_ms", 3.0); ("allocated_mb", 4.0) ];
        rec_ "butterfly" [ ("time_ms", 7.0) ];
      ]
  in
  match folded with
  | [ m; b ] ->
    check_str "first-seen order kept" "mesh" m.Baseline.bench;
    check_str "second bench" "butterfly" b.Baseline.bench;
    check "per-metric minimum" true
      (List.assoc "time_ms" m.Baseline.metrics = 3.0
      && List.assoc "allocated_mb" m.Baseline.metrics = 2.0)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length l))

let test_baseline_gate () =
  let baseline = [ rec_ "mesh" [ ("time_ms", 100.0); ("max_rss_kb", 100.0) ] ] in
  (* 10% slower: inside the default 25% envelope *)
  let ok = rec_ "mesh" [ ("time_ms", 110.0); ("max_rss_kb", 110.0) ] in
  let cmp = Baseline.compare_runs ~baseline ~current:[ ok ] () in
  check "10%% passes" false (Baseline.regressed cmp);
  (* 50% slower: trips the time gate *)
  let slow = rec_ "mesh" [ ("time_ms", 150.0); ("max_rss_kb", 150.0) ] in
  let cmp = Baseline.compare_runs ~baseline ~current:[ slow ] () in
  check "50%% regresses" true (Baseline.regressed cmp);
  let tripped =
    List.filter (fun c -> c.Baseline.regressed) cmp
    |> List.map (fun c -> c.Baseline.metric)
  in
  check "only the gated metric trips" true (tripped = [ "time_ms" ]);
  check "ungated metric is informational" true
    (List.exists
       (fun c -> c.Baseline.metric = "max_rss_kb" && c.Baseline.threshold = None)
       cmp);
  (* a looser explicit threshold lets the same run through *)
  let cmp =
    Baseline.compare_runs ~thresholds:[ ("time_ms", 1.0) ] ~baseline
      ~current:[ slow ] ()
  in
  check "threshold override respected" false (Baseline.regressed cmp);
  (* min-of-k: one fast repetition among slow ones is what counts *)
  let cmp =
    Baseline.compare_runs ~baseline
      ~current:[ slow; rec_ "mesh" [ ("time_ms", 101.0) ] ]
      ()
  in
  check "min of k folds before comparing" false (Baseline.regressed cmp)

let test_baseline_load_formats () =
  let arr =
    {|[
  {"bench": "mesh", "phase": "large", "time_ms": 1.5, "allocated_mb": 0.5},
  {"bench": "fly", "time_ms": 2.0},
  {"no_bench": true}
]|}
  in
  let ndjson =
    "{\"bench\": \"mesh\", \"phase\": \"large\", \"time_ms\": 1.5, \
     \"allocated_mb\": 0.5}\n\
     {\"bench\": \"fly\", \"time_ms\": 2.0}\n\
     {\"no_bench\": true}\n"
  in
  let from_array = Baseline.load_string arr in
  let from_ndjson = Baseline.load_string ndjson in
  (match from_array with
  | Error e -> Alcotest.fail ("array load failed: " ^ e)
  | Ok rs ->
    check_int "bench-less records skipped" 2 (List.length rs);
    let m = List.hd rs in
    check_str "bench name" "mesh" m.Baseline.bench;
    check "numeric fields kept as metrics" true
      (List.assoc "time_ms" m.Baseline.metrics = 1.5
      && List.assoc "allocated_mb" m.Baseline.metrics = 0.5);
    check "non-numeric fields dropped" true
      (not (List.mem_assoc "phase" m.Baseline.metrics)));
  check "array and ndjson agree" true (from_array = from_ndjson);
  (match Baseline.load_string "{\"bench\": \"ok\"}\nnot json at all\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage NDJSON line must error");
  match Baseline.load_file "/nonexistent/baseline.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must error"

(* --- instrumented code records spans end to end --- *)

let test_instrumented_frontier () =
  fresh ();
  Span.enable ();
  let g = Ic_families.Mesh.out_mesh 6 in
  let order = Array.init (Ic_dag.Dag.n_nodes g) Fun.id in
  let _profile = Ic_dag.Frontier.profile g ~order in
  Span.disable ();
  let names = List.map (fun i -> i.Span.info_name) (Span.capture ()) in
  check "family constructor span" true (List.mem "families.mesh" names);
  check "frontier profile span" true (List.mem "frontier.profile" names);
  fresh ()

let test_profile_raw_agrees () =
  fresh ();
  let g = Ic_families.Mesh.out_mesh 6 in
  let order = Array.init (Ic_dag.Dag.n_nodes g) Fun.id in
  let a = Ic_dag.Frontier.profile g ~order in
  let b = Ic_dag.Frontier.profile_raw g ~order in
  check "profile_raw is the same computation" true (a = b);
  Span.enable ();
  let c = Ic_dag.Frontier.profile g ~order in
  Span.disable ();
  check "instrumentation is transparent" true (a = c);
  fresh ()

let () =
  Alcotest.run "ic_prof"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_span_disabled_noop;
          Alcotest.test_case "nesting and counts" `Quick
            test_span_nesting_and_counts;
          Alcotest.test_case "recursion nests" `Quick test_span_recursion_nests;
          Alcotest.test_case "time is exception-safe" `Quick
            test_span_time_exception_safe;
          Alcotest.test_case "capture sorted, reset drops" `Quick
            test_span_capture_sorted;
        ] );
      ( "report",
        [
          Alcotest.test_case "self time and alloc" `Quick test_report_self_time;
          Alcotest.test_case "text table" `Quick test_report_text;
          Alcotest.test_case "json round-trip" `Quick test_report_json_roundtrip;
          Alcotest.test_case "collapsed stacks" `Quick test_report_collapsed;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "fold_min" `Quick test_baseline_fold_min;
          Alcotest.test_case "regression gate" `Quick test_baseline_gate;
          Alcotest.test_case "load formats" `Quick test_baseline_load_formats;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "instrumented spans appear" `Quick
            test_instrumented_frontier;
          Alcotest.test_case "profile_raw agrees" `Quick test_profile_raw_agrees;
        ] );
    ]
