module Dag = Ic_dag.Dag
module Compose = Ic_core.Compose
module Blocks = Ic_blocks

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_of_dag () =
  let g = Blocks.Vee.dag 2 in
  let c = Compose.of_dag g in
  check "dag preserved" true (Dag.equal g (Compose.dag c));
  check_int "one component" 1 (List.length (Compose.components c))

let test_full_merge_diamond () =
  (* V ^ Lambda with both sinks/sources merged = the 4-node diamond *)
  let c =
    Compose.full_merge_exn
      (Compose.of_dag (Blocks.Vee.dag 2))
      (Compose.of_dag (Blocks.Lambda.dag 2))
  in
  let g = Compose.dag c in
  check_int "4 nodes" 4 (Dag.n_nodes g);
  check_int "4 arcs" 4 (Dag.n_arcs g);
  check "diamond shape" true
    (Ic_dag.Iso.isomorphic g
       (Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ()))

let test_embeddings_preserve_arcs () =
  let c =
    Compose.full_merge_exn
      (Compose.of_dag (Blocks.Vee.dag 2))
      (Compose.of_dag (Blocks.Lambda.dag 2))
  in
  let g = Compose.dag c in
  List.iter
    (fun (orig, embed) ->
      Dag.iter_arcs orig (fun u v ->
          check "embedded arc present" true (Dag.has_arc g embed.(u) embed.(v))))
    (Compose.components c)

let test_partial_merge () =
  (* merge only one sink of V with one source of Lambda *)
  let c =
    Compose.compose_exn
      (Compose.of_dag (Blocks.Vee.dag 2))
      (Compose.of_dag (Blocks.Lambda.dag 2))
      ~pairs:[ (1, 0) ]
  in
  let g = Compose.dag c in
  check_int "5 nodes" 5 (Dag.n_nodes g);
  check_int "merged node keeps both roles" 1 (Dag.out_degree g 1);
  check_int "free source remains" 2 (List.length (Dag.sources g))

let test_empty_pairs_is_sum () =
  let c =
    Compose.compose_exn
      (Compose.of_dag (Blocks.Vee.dag 2))
      (Compose.of_dag (Blocks.Vee.dag 2))
      ~pairs:[]
  in
  check_int "disjoint sum" 6 (Dag.n_nodes (Compose.dag c));
  check "not connected" false (Dag.is_connected (Compose.dag c))

let expect_error name result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

let test_validation () =
  let v = Compose.of_dag (Blocks.Vee.dag 2) in
  let l = Compose.of_dag (Blocks.Lambda.dag 2) in
  expect_error "non-sink left" (Compose.compose v l ~pairs:[ (0, 0) ]);
  expect_error "non-source right" (Compose.compose v l ~pairs:[ (1, 2) ]);
  expect_error "duplicate left" (Compose.compose v l ~pairs:[ (1, 0); (1, 1) ]);
  expect_error "duplicate right" (Compose.compose v l ~pairs:[ (1, 0); (2, 0) ]);
  expect_error "out of range" (Compose.compose v l ~pairs:[ (9, 0) ]);
  expect_error "count mismatch"
    (Compose.full_merge v (Compose.of_dag (Blocks.Lambda.dag 3)));
  expect_error "empty chain" (Compose.chain_full [])

let test_chain_full () =
  (* a 3-level out-tree as V ^ (V + V) is not expressible with chain_full,
     but a path of Lambdas is: Lambda_1 chains into Lambda_1 ... *)
  let line = Compose.of_dag (Blocks.Lambda.dag 1) in
  match Compose.chain_full [ line; line; line ] with
  | Ok c ->
    check_int "path of 4 nodes" 4 (Dag.n_nodes (Compose.dag c));
    check_int "3 components" 3 (List.length (Compose.components c));
    check_int "longest path 3" 3 (Dag.longest_path (Compose.dag c))
  | Error e -> Alcotest.fail e

let test_associativity_shape () =
  (* (A ^ B) ^ C and A ^ (B ^ C) give isomorphic dags for full merges *)
  let v = Compose.of_dag (Blocks.Vee.dag 1) in
  let left =
    Compose.full_merge_exn (Compose.full_merge_exn v v) v
  in
  let right =
    Compose.full_merge_exn v (Compose.full_merge_exn v v)
  in
  check "associative up to isomorphism" true
    (Ic_dag.Iso.isomorphic (Compose.dag left) (Compose.dag right))

let test_compose_same_dag_twice () =
  (* "which could be the same dag with nodes renamed to achieve
     disjointness" — composing a dag with itself must work *)
  let w = Compose.of_dag (Blocks.W_dag.dag 2) in
  match Compose.compose w w ~pairs:[ (2, 0); (3, 1) ] with
  | Ok c -> check_int "merged size" 8 (Dag.n_nodes (Compose.dag c))
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "ic_core.Compose"
    [
      ( "composition",
        [
          Alcotest.test_case "of_dag" `Quick test_of_dag;
          Alcotest.test_case "full merge diamond" `Quick test_full_merge_diamond;
          Alcotest.test_case "embeddings preserve arcs" `Quick test_embeddings_preserve_arcs;
          Alcotest.test_case "partial merge" `Quick test_partial_merge;
          Alcotest.test_case "empty pairs = sum" `Quick test_empty_pairs_is_sum;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "chain_full" `Quick test_chain_full;
          Alcotest.test_case "associativity" `Quick test_associativity_shape;
          Alcotest.test_case "self composition" `Quick test_compose_same_dag_twice;
        ] );
    ]
