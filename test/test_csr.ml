(* The CSR-native dag core against a naive adjacency-list oracle, the
   Builder API, the cone-restricted engine, and a guarded large-dag smoke
   test (set IC_BIG_TESTS=1 for the ~10^6-node version). *)

module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Frontier = Ic_dag.Frontier
module Engine = Ic_compute.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* random upper-triangular arc list, independent of Gen and of the dag
   representation under test *)
let random_arcs rng n p =
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then arcs := (u, v) :: !arcs
    done
  done;
  !arcs

type oracle = { osucc : int list array; opred : int list array }

let oracle_of_arcs n arcs =
  let osucc = Array.make n [] and opred = Array.make n [] in
  List.iter
    (fun (u, v) ->
      osucc.(u) <- v :: osucc.(u);
      opred.(v) <- u :: opred.(v))
    arcs;
  Array.iteri (fun v l -> osucc.(v) <- List.sort compare l) osucc;
  Array.iteri (fun v l -> opred.(v) <- List.sort compare l) opred;
  { osucc; opred }

let agrees_with_oracle g { osucc; opred } =
  let n = Dag.n_nodes g in
  for v = 0 to n - 1 do
    if Array.to_list (Dag.succ g v) <> osucc.(v) then
      Alcotest.failf "succ %d disagrees" v;
    if Array.to_list (Dag.pred g v) <> opred.(v) then
      Alcotest.failf "pred %d disagrees" v;
    check_int (Printf.sprintf "out_degree %d" v) (List.length osucc.(v))
      (Dag.out_degree g v);
    check_int (Printf.sprintf "in_degree %d" v) (List.length opred.(v))
      (Dag.in_degree g v);
    (* iterators and raw CSR agree with the allocating accessors *)
    let collected = ref [] in
    Dag.iter_succ g v (fun w -> collected := w :: !collected);
    if List.rev !collected <> osucc.(v) then Alcotest.failf "iter_succ %d" v;
    let folded = Dag.fold_pred g v [] (fun acc p -> p :: acc) in
    if List.rev folded <> opred.(v) then Alcotest.failf "fold_pred %d" v;
    for w = 0 to n - 1 do
      if Dag.has_arc g v w <> List.mem w osucc.(v) then
        Alcotest.failf "has_arc %d %d" v w
    done
  done;
  let n_sources =
    Array.fold_left (fun acc l -> if l = [] then acc + 1 else acc) 0 opred
  in
  check_int "n_sources" n_sources (Dag.n_sources g);
  Alcotest.(check (array int))
    "in_degrees" (Array.map List.length opred) (Dag.in_degrees g);
  let lex =
    List.sort compare
      (Array.to_list (Array.mapi (fun u l -> List.map (fun v -> (u, v)) l) osucc)
      |> List.concat)
  in
  Alcotest.(check (list (pair int int))) "iter_arcs lexicographic" lex
    (List.rev (Dag.fold_arcs g [] (fun acc u v -> (u, v) :: acc)));
  (* the deprecated wrapper must stay consistent until it is removed *)
  Alcotest.(check (list (pair int int))) "arcs wrapper" lex
    (Dag.arcs g [@alert "-deprecated"])

let test_oracle_random () =
  let rng = Random.State.make [| 0xC52 |] in
  for _ = 1 to 40 do
    let n = 1 + Random.State.int rng 40 in
    let p = Random.State.float rng 0.5 in
    let arcs = random_arcs rng n p in
    let g = Dag.make_exn ~n ~arcs () in
    agrees_with_oracle g (oracle_of_arcs n arcs)
  done

let test_builder_matches_make () =
  let rng = Random.State.make [| 0xB11D |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int rng 30 in
    let arcs = random_arcs rng n 0.3 in
    (* shuffled insertion order must not matter *)
    let shuffled =
      List.map (fun a -> (Random.State.bits rng, a)) arcs
      |> List.sort compare |> List.map snd
    in
    let b = Dag.Builder.create ~n () in
    List.iter (fun (u, v) -> Dag.Builder.add_arc b u v) shuffled;
    check_int "n_pending" (List.length arcs) (Dag.Builder.n_pending b);
    let g = Dag.Builder.build_exn b in
    check "equal to make" true (Dag.equal g (Dag.make_exn ~n ~arcs ()))
  done

let expect_error name result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

let build_with n arcs =
  let b = Dag.Builder.create ~n () in
  List.iter (fun (u, v) -> Dag.Builder.add_arc b u v) arcs;
  Dag.Builder.build b

let test_builder_rejects () =
  expect_error "cycle" (build_with 3 [ (0, 1); (1, 2); (2, 0) ]);
  expect_error "self-loop" (build_with 2 [ (0, 0) ]);
  expect_error "duplicate" (build_with 2 [ (0, 1); (0, 1) ]);
  expect_error "range" (build_with 2 [ (0, 2) ]);
  expect_error "negative endpoint" (build_with 2 [ (-1, 0) ]);
  expect_error "negative n" (build_with (-1) []);
  expect_error "bad labels"
    (Dag.Builder.build (Dag.Builder.create ~labels:[| "a" |] ~n:2 ()))

let test_builder_spill_equivalence () =
  (* the spill-to-disk path must produce exactly the in-memory dag, for
     both the explicit [spill_arcs] argument and the IC_BUILDER_SPILL
     environment default picked up by [create] *)
  let rng = Random.State.make [| 0x59111 |] in
  for _ = 1 to 10 do
    let n = 5 + Random.State.int rng 40 in
    let arcs = random_arcs rng n 0.3 in
    let reference = Dag.make_exn ~n ~arcs () in
    let b = Dag.Builder.create ~n ~spill_arcs:7 () in
    List.iter (fun (u, v) -> Dag.Builder.add_arc b u v) arcs;
    check_int "spilled n_pending" (List.length arcs) (Dag.Builder.n_pending b);
    check "spill = in-memory" true (Dag.equal (Dag.Builder.build_exn b) reference);
    (* the builder stays reusable across builds on the spill path too *)
    check "spill rebuild" true (Dag.equal (Dag.Builder.build_exn b) reference)
  done;
  Unix.putenv "IC_BUILDER_SPILL" "5";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "IC_BUILDER_SPILL" "")
    (fun () ->
      let n = 30 in
      let arcs = random_arcs rng n 0.4 in
      let b = Dag.Builder.create ~n () in
      List.iter (fun (u, v) -> Dag.Builder.add_arc b u v) arcs;
      if List.length arcs > 5 then
        check "env threshold spills" true (Dag.Builder.spilled b);
      check "env spill = in-memory" true
        (Dag.equal (Dag.Builder.build_exn b) (Dag.make_exn ~n ~arcs ())));
  (* validation errors surface identically through the spill path *)
  let spill_build n arcs =
    let b = Dag.Builder.create ~n ~spill_arcs:2 () in
    List.iter (fun (u, v) -> Dag.Builder.add_arc b u v) arcs;
    Dag.Builder.build b
  in
  expect_error "spilled cycle" (spill_build 3 [ (0, 1); (1, 2); (2, 0) ]);
  expect_error "spilled duplicate" (spill_build 3 [ (0, 1); (1, 2); (0, 1) ]);
  expect_error "spilled range" (spill_build 3 [ (0, 1); (1, 2); (1, 7) ])

let test_builder_reuse () =
  (* the builder stays usable after a build; the built dag is unaffected *)
  let b = Dag.Builder.create ~n:3 () in
  Dag.Builder.add_arc b 0 1;
  let g1 = Dag.Builder.build_exn b in
  Dag.Builder.add_arc b 1 2;
  let g2 = Dag.Builder.build_exn b in
  check_int "g1 arcs" 1 (Dag.n_arcs g1);
  check_int "g2 arcs" 2 (Dag.n_arcs g2);
  check "g2 has both" true (Dag.has_arc g2 0 1 && Dag.has_arc g2 1 2)

(* ancestor cone of [v] by an independent reverse DFS on the oracle *)
let cone_size { opred; _ } v =
  let seen = Array.make (Array.length opred) false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter go opred.(u)
    end
  in
  go v;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let test_value_at_cone () =
  let rng = Random.State.make [| 0xC03E |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int rng 25 in
    let arcs = random_arcs rng n 0.15 in
    let g = Dag.make_exn ~n ~arcs () in
    let oracle = oracle_of_arcs n arcs in
    let calls = ref 0 in
    let compute v parents =
      incr calls;
      v + Array.fold_left ( + ) 0 parents
    in
    let t = { Engine.dag = g; compute } in
    let full = Engine.execute t in
    for v = 0 to n - 1 do
      calls := 0;
      let value = Engine.value_at t v in
      check_int
        (Printf.sprintf "compute calls = cone size at %d" v)
        (cone_size oracle v) !calls;
      check_int (Printf.sprintf "value at %d" v) full.(v) value
    done;
    (* same along an explicit schedule *)
    let s = Ic_dag.Gen.random_schedule rng g in
    for v = 0 to n - 1 do
      calls := 0;
      let value = Engine.value_at ~schedule:s t v in
      check_int "scheduled cone calls" (cone_size oracle v) !calls;
      check_int "scheduled value" full.(v) value
    done
  done

let test_engine_matches_spec () =
  (* the scratch-buffer engine behaves like the obvious per-node-copy one *)
  let rng = Random.State.make [| 0xE4613E |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int rng 25 in
    let g = Ic_dag.Gen.random_dag rng ~n ~arc_probability:0.2 in
    let compute v parents = (v * 31) + Array.fold_left ( + ) 7 parents in
    let got = Engine.execute { Engine.dag = g; compute } in
    let expected = Array.make n 0 in
    Array.iter
      (fun v ->
        expected.(v) <-
          compute v (Array.map (fun p -> expected.(p)) (Dag.pred g v)))
      (Dag.topological_order g);
    Alcotest.(check (array int)) "engine values" expected got
  done

(* peak resident set of this process so far, in kB (Linux VmHWM) *)
let max_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6))
                " %d kB" (fun kb -> Some kb)
            else go ()
        in
        go ())

let test_big_mesh_smoke () =
  let big = Sys.getenv_opt "IC_BIG_TESTS" <> None in
  (* 4471 levels is just under 10^7 nodes; the default keeps CI fast *)
  let levels = if big then 4471 else 500 in
  let g = Ic_families.Mesh.out_mesh levels in
  let n = Dag.n_nodes g in
  check_int "node count" ((levels + 1) * (levels + 2) / 2) n;
  check_int "arc count" (levels * (levels + 1)) (Dag.n_arcs g);
  check_int "one source" 1 (Dag.n_sources g);
  let profile = Profile.run g (Schedule.natural g) in
  check_int "profile length" (n + 1) (Array.length profile);
  check_int "starts at the source" 1 profile.(0);
  check_int "drains to zero" 0 profile.(n);
  let widest = Array.fold_left max 0 profile in
  check "eligibility stays within a level's width" true
    (widest >= 1 && widest <= levels + 1);
  if big then
    (* the off-heap CSR keeps a ~10^7-node build + profile well under the
       old in-heap representation's >2 GB peak; generous headroom over the
       ~0.9 GB measured so the assertion only catches regressions back to
       heap-resident adjacency *)
    match max_rss_kb () with
    | None -> () (* not Linux; skip the RSS assertion *)
    | Some kb ->
      if kb > 1_500_000 then
        Alcotest.failf "max RSS %d kB exceeds the 1.5 GB budget" kb

let () =
  Alcotest.run "ic_dag.Csr"
    [
      ( "csr",
        [
          Alcotest.test_case "random dags vs oracle" `Quick test_oracle_random;
          Alcotest.test_case "builder = make" `Quick test_builder_matches_make;
          Alcotest.test_case "builder rejects" `Quick test_builder_rejects;
          Alcotest.test_case "builder spill equivalence" `Quick
            test_builder_spill_equivalence;
          Alcotest.test_case "builder reuse" `Quick test_builder_reuse;
        ] );
      ( "engine",
        [
          Alcotest.test_case "value_at cone" `Quick test_value_at_cone;
          Alcotest.test_case "scratch engine spec" `Quick test_engine_matches_spec;
        ] );
      ( "large",
        [ Alcotest.test_case "big mesh smoke" `Slow test_big_mesh_smoke ] );
    ]
