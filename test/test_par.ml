(* Tests for the domains-based parallel runtime (lib/par). Only built on
   OCaml >= 5.0 — see the enabled_if on this stanza in test/dune. *)

module Dag = Ic_dag.Dag
module Runtime = Ic_par.Runtime
module Payload = Ic_par.Payload
module Deque = Ic_par.Deque
module Pool = Ic_par.Pool
module Metrics = Ic_obs.Metrics
module Live = Ic_obs.Live

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

(* --- determinism: parallel fingerprints = sequential, any config --- *)

(* family index, size (range scaled per family so cases stay <1s even
   with 4 domains on one core), domain count, ordering mode *)
let gen_config =
  QCheck2.Gen.(
    bind (int_bound 3) (fun fi ->
        bind (int_range 1 4) (fun domains ->
            bind bool (fun ic ->
                let hi =
                  match fi with 0 -> 8 | 1 -> 5 | 2 -> 3 | _ -> 7
                in
                map (fun size -> (fi, size, domains, ic)) (int_range 1 hi)))))

let prop_parallel_matches_sequential =
  QCheck2.Test.make
    ~name:"parallel fingerprint = sequential (family x size x domains x order)"
    ~count:48
    ~print:(fun (fi, size, domains, ic) ->
      Printf.sprintf "%s size=%d domains=%d order=%s"
        (List.nth Payload.families fi)
        size domains
        (if ic then "ic" else "steal"))
    gen_config
    (fun (fi, size, domains, ic) ->
      let family = List.nth Payload.families fi in
      let p = Payload.make ~family ~size () in
      let seq = Payload.execute p in
      let order = if ic then Runtime.Ic_priority else Runtime.Steal in
      let executor =
        Runtime.executor ~domains ~order ~priority:(Payload.rank p) ()
      in
      let par = Payload.execute ~executor p in
      par = seq && Payload.check p par)

(* --- deque vs a sequence model, single domain ------------------------ *)

(* ops: 0 = push, 1 = owner pop (expect newest), 2 = steal (expect
   oldest). With no concurrency every non-empty pop/steal must succeed:
   a None on a non-empty deque would mean a lost element. *)
let prop_deque_matches_model =
  QCheck2.Test.make ~name:"deque matches sequence model (single domain)"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 300) (int_bound 2))
    (fun ops ->
      let capacity = 16 in
      let d = Deque.create ~capacity in
      let model = ref [] (* head = oldest *) in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            let v = !next in
            incr next;
            let was_full = List.length !model >= capacity in
            let accepted = Deque.push d v in
            if accepted then model := !model @ [ v ];
            accepted = not was_full
          | 1 -> (
            match (Deque.pop d, List.rev !model) with
            | None, [] -> true
            | Some v, newest :: rest_rev ->
              model := List.rev rest_rev;
              v = newest
            | _ -> false)
          | _ -> (
            match (Deque.steal d, !model) with
            | None, [] -> true
            | Some v, oldest :: rest ->
              model := rest;
              v = oldest
            | _ -> false))
        ops
      && Deque.size d = List.length !model)

(* --- deque under real concurrency: nothing lost, nothing duplicated -- *)

let test_deque_concurrent_stress () =
  let total = 20_000 and n_thieves = 3 in
  let d = Deque.create ~capacity:64 in
  let done_flag = Atomic.make false in
  let thieves =
    Array.init n_thieves (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let rec loop () =
              match Deque.steal d with
              | Some v ->
                acc := v :: !acc;
                loop ()
              | None ->
                if not (Atomic.get done_flag) then begin
                  Domain.cpu_relax ();
                  loop ()
                end
                (* after done: the owner drains leftovers, so a thief
                   may exit on any None *)
            in
            loop ();
            !acc))
  in
  let popped = ref [] in
  for v = 0 to total - 1 do
    while not (Deque.push d v) do
      match Deque.pop d with
      | Some u -> popped := u :: !popped
      | None -> Domain.cpu_relax ()
    done
  done;
  Atomic.set done_flag true;
  let stolen = Array.to_list (Array.map Domain.join thieves) in
  (* single-threaded from here: pop to empty *)
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "deque empty" 0 (Deque.size d);
  let all = List.sort compare (List.concat (!popped :: stolen)) in
  Alcotest.(check int) "every push accounted for" total (List.length all);
  List.iteri
    (fun i v ->
      if i <> v then Alcotest.failf "lost or duplicated element near %d" i)
    all

(* --- pool ------------------------------------------------------------ *)

let test_pool_rank_order () =
  let rank = [| 5; 3; 9; 0; 7 |] in
  let p = Pool.create ~shards:1 ~rank in
  List.iter (fun v -> Pool.push p ~shard:0 v) [ 0; 1; 2; 3; 4 ];
  let order = List.init 5 (fun _ -> Option.get (Pool.pop p ~shard:0)) in
  (* lowest rank first: node 3 (rank 0), 1 (3), 0 (5), 4 (7), 2 (9) *)
  Alcotest.(check (list int)) "min-rank order" [ 3; 1; 0; 4; 2 ] order;
  Alcotest.(check bool) "empty pop" true (Pool.pop p ~shard:0 = None)

let test_pool_steal () =
  let rank = Array.init 8 (fun i -> i) in
  let p = Pool.create ~shards:2 ~rank in
  Pool.push p ~shard:0 6;
  Pool.push p ~shard:0 2;
  Alcotest.(check (option int))
    "steals the best of the shard" (Some 2)
    (Pool.try_steal p ~shard:0);
  Alcotest.(check (option int)) "empty steal" None (Pool.try_steal p ~shard:1);
  Alcotest.(check int) "size" 1 (Pool.size p)

(* --- runtime edge cases ---------------------------------------------- *)

let test_empty_dag () =
  let g = Dag.empty 0 in
  List.iter
    (fun order ->
      let st = Runtime.run ~domains:2 ~order g ~task:(fun _ -> assert false) in
      Alcotest.(check int) "no tasks" 0 st.Runtime.tasks)
    [ Runtime.Steal; Runtime.Ic_priority ]

let test_single_node () =
  let g = Dag.empty 1 in
  List.iter
    (fun order ->
      let hits = Atomic.make 0 in
      let st =
        Runtime.run ~domains:4 ~order g ~task:(fun v ->
            assert (v = 0);
            ignore (Atomic.fetch_and_add hits 1))
      in
      Alcotest.(check int) "one task" 1 st.Runtime.tasks;
      Alcotest.(check int) "task ran once" 1 (Atomic.get hits))
    [ Runtime.Steal; Runtime.Ic_priority ]

let test_park_knobs () =
  (* custom park bounds still complete the dag (forcing parks by giving
     4 domains a single task), and bad bounds are rejected up front *)
  let g = Ic_families.Mesh.out_mesh 6 in
  let hits = Atomic.make 0 in
  let st =
    Runtime.run ~domains:4 ~park_min:1e-6 ~park_max:5e-5 g ~task:(fun _ ->
        ignore (Atomic.fetch_and_add hits 1))
  in
  Alcotest.(check int) "all tasks ran" (Dag.n_nodes g) (Atomic.get hits);
  Alcotest.(check int) "stats agree" (Dag.n_nodes g) st.Runtime.tasks;
  let expect_invalid ~park_min ~park_max =
    match
      Runtime.run ~domains:1 ~park_min ~park_max (Dag.empty 1) ~task:ignore
    with
    | exception Invalid_argument _ -> ()
    | _ ->
      Alcotest.failf "park_min=%g park_max=%g accepted" park_min park_max
  in
  expect_invalid ~park_min:0.0 ~park_max:1e-3;
  expect_invalid ~park_min:(-1e-6) ~park_max:1e-3;
  expect_invalid ~park_min:1e-3 ~park_max:1e-6;
  expect_invalid ~park_min:2e-6 ~park_max:nan

let test_priority_length_mismatch () =
  let g = Dag.empty 3 in
  match
    Runtime.run ~order:Runtime.Ic_priority ~priority:[| 0; 1 |] g
      ~task:(fun _ -> ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on short priority"

let test_engine_rejects_schedule_plus_executor () =
  let g = Dag.empty 2 in
  let e = { Ic_compute.Engine.dag = g; compute = (fun _ _ -> 0) } in
  let s = Ic_dag.Schedule.natural g in
  let executor = Runtime.executor () in
  match Ic_compute.Engine.execute ~schedule:s ~executor e with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of schedule + executor"

(* --- every task runs exactly once, after its predecessors ----------- *)

let test_tasks_respect_dependences () =
  let g = Ic_families.Mesh.out_mesh 24 in
  let n = Dag.n_nodes g in
  let stamp = Array.make n (-1) in
  let clock = Atomic.make 0 in
  let st =
    Runtime.run ~domains:4 g ~task:(fun v ->
        (* all predecessors must have stamped before us *)
        Dag.iter_pred g v (fun u -> assert (stamp.(u) >= 0));
        stamp.(v) <- Atomic.fetch_and_add clock 1)
  in
  Alcotest.(check int) "all tasks ran" n st.Runtime.tasks;
  Array.iteri
    (fun v s -> if s < 0 then Alcotest.failf "node %d never ran" v)
    stamp;
  Alcotest.(check int) "per-domain totals add up" n
    (Array.fold_left ( + ) 0 st.Runtime.per_domain_tasks)

(* --- steal counters reach the metrics registry (satellite 6) --------- *)

let test_mesh256_records_steals () =
  (* Four domains over mesh-256 (33k tasks, one source): domains 1-3
     can only obtain their first task by stealing, so a steal is all
     but guaranteed — but the schedule is nondeterministic, so retry a
     few times before declaring failure (matters on 1-core hosts). *)
  let g = Ic_families.Mesh.out_mesh 256 in
  let work = ref 0.0 in
  let task _ =
    let acc = ref 1.0 in
    for _ = 1 to 40 do
      acc := Float.of_int (Sys.opaque_identity 3) *. !acc *. 0.25
    done;
    work := !acc
  in
  let rec attempt k =
    let m = Metrics.create () in
    let st = Runtime.run ~domains:4 ~metrics:m g ~task in
    let recorded = Metrics.counter_value (Metrics.counter m "par.steals") in
    Alcotest.(check int) "metrics steals = stats steals" st.Runtime.steals
      recorded;
    Alcotest.(check int) "metrics tasks" st.Runtime.tasks
      (Metrics.counter_value (Metrics.counter m "par.tasks"));
    if recorded >= 1 then ()
    else if k >= 20 then
      Alcotest.failf "no steal recorded in %d 4-domain mesh-256 runs" k
    else attempt (k + 1)
  in
  attempt 1;
  ignore !work

(* --- live registry under real domains ------------------------------- *)

(* merge-on-read correctness: N domains each hammer their own shard of
   one shared counter; once the writers are quiescent the merged sum
   must equal the sequential oracle exactly — no lost increments, no
   double counts, under any (domains, increments, step) mix *)
let prop_live_merge_on_read =
  QCheck2.Test.make
    ~name:"live counter merge-on-read = sequential oracle (N domains)"
    ~count:30
    ~print:(fun (domains, per_domain, by) ->
      Printf.sprintf "domains=%d per_domain=%d by=%d" domains per_domain by)
    QCheck2.Gen.(
      triple (int_range 1 6) (int_range 1 5_000) (int_range 1 3))
    (fun (domains, per_domain, by) ->
      let l = Live.create ~shards:domains () in
      let c = Live.counter l "t.hits" in
      let other = Live.counter l "t.other" in
      let spawned =
        List.init domains (fun shard ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Live.incr c ~shard by;
                  (* a second instrument in the same registry must not
                     absorb or leak any of the increments *)
                  Live.incr other ~shard 1
                done))
      in
      List.iter Domain.join spawned;
      Live.counter_value c = domains * per_domain * by
      && Live.counter_value other = domains * per_domain)

(* while writers are still running, a concurrent reader must see a
   monotonically growing merged value bounded by the true total: reads
   tear across cells but never invent or lose settled increments *)
let test_live_concurrent_reads () =
  let writers = 4 and per_domain = 200_000 in
  let l = Live.create ~shards:writers () in
  let c = Live.counter l "t.c" in
  let spawned =
    List.init writers (fun shard ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Live.incr c ~shard 1
            done))
  in
  let last = ref 0 in
  let monotone = ref true in
  let bounded = ref true in
  (* poll from the test domain while the writers run *)
  for _ = 1 to 10_000 do
    let v = Live.counter_value c in
    if v < !last then monotone := false;
    if v > writers * per_domain then bounded := false;
    last := v
  done;
  List.iter Domain.join spawned;
  Alcotest.(check bool) "merged reads never go backwards" true !monotone;
  Alcotest.(check bool) "merged reads never exceed the true total" true
    !bounded;
  Alcotest.(check int) "quiescent sum is exact" (writers * per_domain)
    (Live.counter_value c)

(* the runtime mirrors its meters into ?live without perturbing the
   run: live par.* totals equal the deterministic stats *)
let test_runtime_live_wiring () =
  let g = Ic_families.Mesh.out_mesh 64 in
  let l = Live.create ~shards:4 () in
  let work = ref 0 in
  let st =
    Runtime.run ~domains:4 ~live:l g ~task:(fun _ ->
        incr work (* racy; only forces a real payload *))
  in
  let live_c name = Live.counter_value (Live.counter l name) in
  Alcotest.(check int) "par.tasks mirrors stats" st.Runtime.tasks
    (live_c "par.tasks");
  Alcotest.(check int) "par.steals mirrors stats" st.Runtime.steals
    (live_c "par.steals");
  Alcotest.(check int) "par.overflows mirrors stats" st.Runtime.overflows
    (live_c "par.overflows");
  Alcotest.(check bool) "par.domains gauge" true
    (Live.gauge_value (Live.gauge l "par.domains") = 4.0);
  Alcotest.(check bool) "par.wall_s gauge set" true
    (Live.gauge_value (Live.gauge l "par.wall_s") > 0.0);
  let s = Live.histogram_snapshot (Live.histogram l "par.task_s") in
  Alcotest.(check int) "one task_s observation per task" st.Runtime.tasks
    s.Live.count;
  (* and the deterministic fingerprint is untouched by the mirror *)
  Alcotest.(check int) "every task ran" (Dag.n_nodes g) st.Runtime.tasks

let () =
  Alcotest.run "ic_par"
    [
      ( "determinism",
        Alcotest.test_case "dependences respected on mesh" `Quick
          test_tasks_respect_dependences
        :: qcheck [ prop_parallel_matches_sequential ] );
      ( "deque",
        Alcotest.test_case "concurrent stress: no loss, no dup" `Quick
          test_deque_concurrent_stress
        :: qcheck [ prop_deque_matches_model ] );
      ( "pool",
        [
          Alcotest.test_case "rank order" `Quick test_pool_rank_order;
          Alcotest.test_case "steal best" `Quick test_pool_steal;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty dag" `Quick test_empty_dag;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "priority length mismatch" `Quick
            test_priority_length_mismatch;
          Alcotest.test_case "park knobs" `Quick test_park_knobs;
          Alcotest.test_case "engine rejects schedule+executor" `Quick
            test_engine_rejects_schedule_plus_executor;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "mesh-256 x 4 domains records steals" `Quick
            test_mesh256_records_steals;
        ] );
      ( "live",
        Alcotest.test_case "concurrent reads are monotone and bounded" `Quick
          test_live_concurrent_reads
        :: Alcotest.test_case "runtime mirrors meters into ?live" `Quick
             test_runtime_live_wiring
        :: qcheck [ prop_live_merge_on_read ] );
    ]
