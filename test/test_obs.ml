(* Tests for the Ic_obs observability subsystem: the flat trace buffer,
   the metrics registry, the Chrome-trace/CSV exporters (round-tripped
   through the bundled JSON reader), and the wiring through Simulator and
   Engine — including byte-level determinism of exports. *)

module Trace = Ic_obs.Trace
module Metrics = Ic_obs.Metrics
module Exporter = Ic_obs.Exporter
module Json = Ic_obs.Json
module Live = Ic_obs.Live
module Flight = Ic_obs.Flight
module Sim = Ic_sim.Simulator
module Policy = Ic_heuristics.Policy
module Dag = Ic_dag.Dag

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- trace buffer --- *)

let test_trace_emit_get () =
  let t = Trace.create () in
  check_int "fresh trace is empty" 0 (Trace.length t);
  Trace.task_alloc t ~time:1.5 ~task:7 ~client:2;
  Trace.client_stall t ~time:2.0 ~client:3;
  Trace.eligible_count t ~time:2.5 ~count:11;
  check_int "three events" 3 (Trace.length t);
  let e0 = Trace.get t 0 in
  check "kind" true (e0.Trace.kind = Trace.Task_alloc);
  check "time" true (e0.Trace.time = 1.5);
  check_int "task payload" 7 e0.Trace.a;
  check_int "client payload" 2 e0.Trace.b;
  let e1 = Trace.get t 1 in
  check "stall kind" true (e1.Trace.kind = Trace.Client_stall);
  check_int "stall client" 3 e1.Trace.a;
  (match Trace.get t 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range get must raise");
  let seen = ref 0 in
  Trace.iter (fun _ -> incr seen) t;
  check_int "iter covers all" 3 !seen;
  check_int "to_array length" 3 (Array.length (Trace.to_array t))

let test_trace_growth () =
  (* push far past a tiny initial capacity; everything must survive the
     column doublings *)
  let t = Trace.create ~capacity:2 () in
  for i = 0 to 999 do
    Trace.frontier_push t ~time:(float_of_int i) ~node:i
  done;
  check_int "all recorded" 1000 (Trace.length t);
  for i = 0 to 999 do
    let e = Trace.get t i in
    if e.Trace.a <> i || e.Trace.time <> float_of_int i then
      Alcotest.fail (Printf.sprintf "event %d corrupted by growth" i)
  done

let test_trace_clear () =
  let t = Trace.create () in
  Trace.task_start t ~time:0.0 ~task:0 ~client:0;
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t);
  Trace.task_fail t ~time:4.0 ~task:9 ~client:1;
  check_int "reusable after clear" 1 (Trace.length t);
  check "new event intact" true ((Trace.get t 0).Trace.a = 9)

let test_eligibility_timeline () =
  let t = Trace.create () in
  Trace.eligible_count t ~time:0.0 ~count:1;
  Trace.task_alloc t ~time:0.5 ~task:0 ~client:0;
  Trace.eligible_count t ~time:0.5 ~count:0;
  Trace.eligible_count t ~time:2.0 ~count:3;
  let tl = Trace.eligibility_timeline t in
  check_int "only Eligible_count events" 3 (Array.length tl);
  check "samples in order" true
    (tl = [| (0.0, 1); (0.5, 0); (2.0, 3) |])

let test_kind_names () =
  check_str "alloc" "task_alloc" (Trace.kind_name Trace.Task_alloc);
  check_str "eligible" "eligible_count" (Trace.kind_name Trace.Eligible_count);
  check_str "timeout" "timeout_fired" (Trace.kind_name Trace.Timeout_fired);
  check_str "retry" "retry_scheduled" (Trace.kind_name Trace.Retry_scheduled);
  check_str "spec" "speculative_launch"
    (Trace.kind_name Trace.Speculative_launch);
  check_str "cancel" "replica_cancelled"
    (Trace.kind_name Trace.Replica_cancelled);
  check_str "crash" "client_crash" (Trace.kind_name Trace.Client_crash);
  check_str "rejoin" "client_rejoin" (Trace.kind_name Trace.Client_rejoin)

(* --- bounded ring mode --- *)

let test_trace_ring () =
  let m = Metrics.create () in
  let t = Trace.create ~capacity:2 ~limit:8 ~metrics:m () in
  check_int "limit recorded" 8 (Trace.limit t);
  (* below the limit the ring behaves exactly like an unbounded trace *)
  for i = 0 to 4 do
    Trace.frontier_push t ~time:(float_of_int i) ~node:i
  done;
  check_int "no drops below limit" 0 (Trace.dropped t);
  check_int "all retained below limit" 5 (Trace.length t);
  check_int "oldest first" 0 (Trace.get t 0).Trace.a;
  (* push past the limit: length pins at the limit, the oldest events
     fall out, reads stay oldest-first *)
  for i = 5 to 19 do
    Trace.frontier_push t ~time:(float_of_int i) ~node:i
  done;
  check_int "length pinned at limit" 8 (Trace.length t);
  check_int "drop count" 12 (Trace.dropped t);
  check_int "dropped counter mirrors" 12
    (Metrics.counter_value (Metrics.counter m "obs.dropped_events"));
  for i = 0 to 7 do
    let e = Trace.get t i in
    check_int (Printf.sprintf "retained event %d" i) (12 + i) e.Trace.a;
    check (Printf.sprintf "retained time %d" i) true
      (e.Trace.time = float_of_int (12 + i))
  done;
  let arr = Trace.to_array t in
  check_int "to_array matches ring view" 8 (Array.length arr);
  check_int "to_array oldest first" 12 arr.(0).Trace.a;
  let seen = ref [] in
  Trace.iter (fun e -> seen := e.Trace.a :: !seen) t;
  check "iter covers the ring oldest-first" true
    (List.rev !seen = [ 12; 13; 14; 15; 16; 17; 18; 19 ]);
  (* clear keeps the lifetime drop count and the ring keeps working *)
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t);
  check_int "dropped survives clear" 12 (Trace.dropped t);
  Trace.frontier_push t ~time:99.0 ~node:99;
  check_int "reusable after clear" 99 (Trace.get t 0).Trace.a;
  (* the default stays unbounded *)
  let u = Trace.create () in
  check_int "unbounded limit is 0" 0 (Trace.limit u);
  for i = 0 to 99 do
    Trace.frontier_push u ~time:0.0 ~node:i
  done;
  check_int "unbounded drops nothing" 0 (Trace.dropped u);
  check_int "unbounded keeps everything" 100 (Trace.length u)

(* --- metrics registry --- *)

let test_metrics_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "tasks" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  (* same name returns the same counter *)
  Metrics.incr (Metrics.counter m "tasks");
  check_int "registry dedups by name" 6 (Metrics.counter_value c);
  (match Metrics.incr ~by:(-1) c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative increment must raise");
  let g = Metrics.gauge m "makespan" in
  Metrics.set g 12.5;
  check "gauge holds last value" true (Metrics.gauge_value g = 12.5);
  (* a name registered as a counter cannot be re-registered as a gauge *)
  match Metrics.gauge m "tasks" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cross-type re-registration must raise"

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "latency" ~buckets:[| 1.0; 2.0; 4.0 |] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  check_int "count" 5 (Metrics.histogram_count h);
  check "sum" true (Float.abs (Metrics.histogram_sum h -. 106.0) < 1e-9);
  (* le semantics: 0.5 and 1.0 land in le-1, 1.5 in le-2, 3.0 in le-4,
     100.0 overflows *)
  let buckets = Metrics.histogram_buckets h in
  check "bucket shape" true
    (Array.map fst buckets = [| 1.0; 2.0; 4.0; infinity |]);
  check "bucket counts" true (Array.map snd buckets = [| 2; 1; 1; 1 |]);
  (* re-registration with identical buckets is the same histogram *)
  Metrics.observe (Metrics.histogram m "latency" ~buckets:[| 1.0; 2.0; 4.0 |]) 0.1;
  check_int "dedup by name+buckets" 6 (Metrics.histogram_count h);
  (match Metrics.histogram m "latency" ~buckets:[| 1.0; 3.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "different buckets must raise");
  (match Metrics.histogram m "bad" ~buckets:[| 2.0; 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing buckets must raise");
  match Metrics.histogram m "bad" ~buckets:[| infinity |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-finite bucket must raise"

let test_metrics_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "tasks" in
  let g = Metrics.gauge m "makespan" in
  let h = Metrics.histogram m "latency" ~buckets:[| 1.0; 2.0 |] in
  Metrics.incr ~by:7 c;
  Metrics.set g 3.5;
  List.iter (Metrics.observe h) [ 0.5; 1.5; 9.0 ];
  Metrics.reset m;
  check_int "counter zeroed" 0 (Metrics.counter_value c);
  check "gauge zeroed" true (Metrics.gauge_value g = 0.0);
  check_int "histogram count zeroed" 0 (Metrics.histogram_count h);
  check "histogram sum zeroed" true (Metrics.histogram_sum h = 0.0);
  check "bucket counts zeroed" true
    (Array.for_all (fun (_, c) -> c = 0) (Metrics.histogram_buckets h));
  (* handles registered before the reset stay live *)
  Metrics.incr c;
  Metrics.observe h 1.5;
  check_int "counter accumulates again" 1 (Metrics.counter_value c);
  check_int "histogram accumulates again" 1 (Metrics.histogram_count h);
  (* a reset registry dumps identically to re-accumulated state: two
     identical runs separated by reset produce byte-identical JSON *)
  let m2 = Metrics.create () in
  let run (m : Metrics.t) =
    Metrics.incr ~by:2 (Metrics.counter m "r.c");
    Metrics.observe (Metrics.histogram m "r.h" ~buckets:[| 1.0 |]) 0.5
  in
  run m2;
  let first = Metrics.to_json m2 in
  Metrics.reset m2;
  run m2;
  check "reset + rerun dumps identical JSON" true (first = Metrics.to_json m2)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_metrics_dumps () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter m "sim.tasks_completed");
  Metrics.set (Metrics.gauge m "sim.makespan") 7.25;
  Metrics.observe (Metrics.histogram m "sim.task_latency" ~buckets:[| 1.0; 2.0 |]) 1.5;
  let text = Format.asprintf "%a" Metrics.pp_text m in
  check "text mentions counter" true
    (String.length text > 0 && contains_sub text "sim.tasks_completed");
  let json = Metrics.to_json m in
  match Json.parse json with
  | Error e -> Alcotest.fail ("metrics JSON invalid: " ^ e)
  | Ok doc ->
    check "counter round-trips" true
      (Option.bind (Json.member "counters" doc) (Json.member "sim.tasks_completed")
       |> Option.map (fun v -> Json.to_number v = Some 3.0)
       = Some true);
    check "gauge round-trips" true
      (Option.bind (Json.member "gauges" doc) (Json.member "sim.makespan")
       |> Option.map (fun v -> Json.to_number v = Some 7.25)
       = Some true);
    check "histogram section present" true
      (Option.bind (Json.member "histograms" doc) (Json.member "sim.task_latency")
      <> None)

let test_metrics_hostile_names () =
  (* instrument names chosen to break naive JSON emission: quotes,
     backslashes, tabs, newlines and control bytes must all survive a
     Metrics.to_json -> Json.parse round trip *)
  let hostile =
    [
      "mesh \"2x2\"";
      "back\\slash\\";
      "tab\there";
      "line\nbreak";
      "ctrl\001byte";
    ]
  in
  let m = Metrics.create () in
  List.iteri (fun i name -> Metrics.incr ~by:(i + 1) (Metrics.counter m name)) hostile;
  Metrics.set (Metrics.gauge m "gauge \"g\"\n") 1.5;
  Metrics.observe
    (Metrics.histogram m "hist\t\"h\"" ~buckets:[| 1.0 |])
    0.5;
  match Json.parse (Metrics.to_json m) with
  | Error e -> Alcotest.fail ("hostile names broke metrics JSON: " ^ e)
  | Ok doc ->
    List.iteri
      (fun i name ->
        check
          (Printf.sprintf "counter %d round-trips" i)
          true
          (Option.bind (Json.member "counters" doc) (Json.member name)
           |> Option.map (fun v -> Json.to_number v = Some (float_of_int (i + 1)))
          = Some true))
      hostile;
    check "hostile gauge round-trips" true
      (Option.bind (Json.member "gauges" doc) (Json.member "gauge \"g\"\n")
       |> Option.map (fun v -> Json.to_number v = Some 1.5)
      = Some true);
    check "hostile histogram round-trips" true
      (Option.bind (Json.member "histograms" doc) (Json.member "hist\t\"h\"")
      <> None)

let test_exporter_hostile_labels () =
  (* dag labels and process names flow into the chrome trace verbatim;
     quotes and newlines in them must not corrupt the document *)
  let g = Ic_families.Mesh.out_mesh 4 in
  let cfg = Sim.config ~n_clients:2 ~jitter:0.5 ~seed:7 () in
  let tr = Trace.create () in
  let _r = Sim.run ~sink:tr cfg Policy.fifo ~workload:Ic_sim.Workload.unit g in
  let label = "mesh \"2x2\"\nand\\more" in
  let json =
    Exporter.chrome_trace ~process_name:label
      ~label:(fun v -> Printf.sprintf "task \"%d\"\n" v)
      tr
  in
  match Json.parse json with
  | Error e -> Alcotest.fail ("hostile label broke chrome trace: " ^ e)
  | Ok (Json.Array events) ->
    check "hostile process name round-trips" true
      (List.exists
         (fun e ->
           Option.bind (Json.member "args" e) (Json.member "name")
           |> Fun.flip Option.bind Json.to_string
           = Some label)
         events)
  | Ok _ -> Alcotest.fail "chrome trace must be a JSON array"

(* --- JSON reader --- *)

let test_json_parse () =
  (match Json.parse {| {"a": [1, 2.5, true, null, "\u0078A"], "b": {}} |} with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Json.member "a" doc with
    | Some (Json.Array [ n1; n2; b; nl; s ]) ->
      check "int" true (Json.to_number n1 = Some 1.0);
      check "float" true (Json.to_number n2 = Some 2.5);
      check "bool" true (b = Json.Bool true);
      check "null" true (nl = Json.Null);
      check "unicode escape" true (Json.to_string s = Some "xA")
    | _ -> Alcotest.fail "array shape");
    check "empty object" true (Json.member "b" doc = Some (Json.Object [])));
  check "rejects garbage" true
    (match Json.parse "[1, 2] trailing" with Error _ -> true | Ok _ -> false);
  check "rejects unterminated" true
    (match Json.parse "{\"a\": " with Error _ -> true | Ok _ -> false)

(* --- simulator wiring: chrome trace round-trip (acceptance) --- *)

let traced_mesh_run () =
  let g = Ic_families.Mesh.out_mesh 8 in
  let cfg = Sim.config ~n_clients:4 ~jitter:0.5 ~seed:42 () in
  let tr = Trace.create () in
  let r = Sim.run ~sink:tr cfg Policy.fifo ~workload:Ic_sim.Workload.unit g in
  (g, r, tr)

let test_chrome_trace_roundtrip () =
  let g, _r, tr = traced_mesh_run () in
  let json = Exporter.chrome_trace ~process_name:"test run" ~label:(Dag.label g) tr in
  match Json.parse json with
  | Error e -> Alcotest.fail ("chrome trace is not valid JSON: " ^ e)
  | Ok (Json.Array events) ->
    check "nonempty" true (events <> []);
    let phase e = Option.bind (Json.member "ph" e) Json.to_string in
    let name e = Option.bind (Json.member "name" e) Json.to_string in
    List.iter
      (fun e ->
        match e with
        | Json.Object _ -> ()
        | _ -> Alcotest.fail "every trace entry must be an object")
      events;
    (* one thread_name metadata record per client, plus the server's *)
    let thread_names =
      List.filter_map
        (fun e ->
          if name e = Some "thread_name" then
            Option.bind (Json.member "args" e) (Json.member "name")
            |> Fun.flip Option.bind Json.to_string
          else None)
        events
    in
    check "server track" true (List.mem "server" thread_names);
    List.iter
      (fun c ->
        check
          (Printf.sprintf "client %d track" c)
          true
          (List.mem (Printf.sprintf "client %d" c) thread_names))
      [ 0; 1; 2; 3 ];
    (* the eligibility counter track *)
    let counters =
      List.filter (fun e -> phase e = Some "C" && name e = Some "|ELIGIBLE|") events
    in
    check "counter events present" true (counters <> []);
    List.iter
      (fun e ->
        check "counter carries eligible arg" true
          (Option.bind (Json.member "args" e) (Json.member "eligible")
           |> Fun.flip Option.bind Json.to_number
          <> None))
      counters;
    (* task slices: complete events with nonnegative duration *)
    let slices = List.filter (fun e -> phase e = Some "X") events in
    check "task slices present" true (slices <> []);
    List.iter
      (fun e ->
        check "slice has ts" true
          (Option.bind (Json.member "ts" e) Json.to_number <> None);
        check "slice duration >= 0" true
          (match Option.bind (Json.member "dur" e) Json.to_number with
          | Some d -> d >= 0.0
          | None -> false))
      slices;
    (* every task in the dag appears as a slice on some client track *)
    check "one slice per task at least" true
      (List.length slices >= Dag.n_nodes g)
  | Ok _ -> Alcotest.fail "chrome trace must be a JSON array"

let test_trace_events_cover_run () =
  let g, r, tr = traced_mesh_run () in
  let count k =
    let n = ref 0 in
    Trace.iter (fun e -> if e.Trace.kind = k then incr n) tr;
    !n
  in
  check_int "one alloc per allocation" (List.length r.Sim.allocation_order)
    (count Trace.Task_alloc);
  check_int "one completion per task" (Dag.n_nodes g) (count Trace.Task_complete);
  check_int "one pop per node" (Dag.n_nodes g) (count Trace.Frontier_pop);
  check_int "one push per node" (Dag.n_nodes g) (count Trace.Frontier_push);
  check_int "stall events match result" r.Sim.stalls (count Trace.Client_stall);
  (* timestamps never decrease *)
  let last = ref neg_infinity in
  Trace.iter
    (fun e ->
      if e.Trace.time < !last then Alcotest.fail "time went backwards";
      last := e.Trace.time)
    tr

let test_determinism_byte_equal () =
  (* same seed: identical result records and byte-equal exports *)
  let run_once () =
    let g = Ic_families.Mesh.out_mesh 8 in
    let cfg = Sim.config ~n_clients:4 ~jitter:0.5 ~seed:2026 () in
    let tr = Trace.create () in
    let r = Sim.run ~sink:tr cfg Policy.lifo ~workload:Ic_sim.Workload.unit g in
    (r, Exporter.chrome_trace tr, Exporter.eligibility_csv tr)
  in
  let r1, j1, c1 = run_once () in
  let r2, j2, c2 = run_once () in
  check "identical results" true (r1 = r2);
  check_str "byte-equal chrome trace" j1 j2;
  check_str "byte-equal csv" c1 c2

let test_eligibility_csv () =
  let _g, _r, tr = traced_mesh_run () in
  let csv = Exporter.eligibility_csv tr in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
    check_str "header" "time,eligible" header;
    check_int "one row per sample"
      (Array.length (Trace.eligibility_timeline tr))
      (List.length rows);
    List.iter
      (fun row ->
        match String.split_on_char ',' row with
        | [ t; e ] ->
          check "numeric time" true (float_of_string_opt t <> None);
          check "integer count" true (int_of_string_opt e <> None)
        | _ -> Alcotest.fail ("malformed row: " ^ row))
      rows
  | [] -> Alcotest.fail "empty csv")

let test_fault_events_export () =
  (* a faulty run exports a valid chrome trace: instant markers for
     crashes/timeouts/speculation, lost slices closed at the crash, and
     byte-equal re-exports *)
  let faulty_run () =
    let g = Ic_families.Mesh.out_mesh 8 in
    let cfg =
      Sim.config ~n_clients:6 ~jitter:0.3 ~seed:31
        ~faults:
          (Ic_fault.Plan.make ~crash_rate:0.03 ~straggler_probability:0.3
             ~straggler_factor:8.0 ())
        ~recovery:
          (Ic_fault.Recovery.make ~timeout_factor:3.0 ~detection_latency:0.25
             ~backoff_base:0.1 ~backoff_jitter:0.5 ~speculation_factor:2.0 ())
        ()
    in
    let tr = Trace.create () in
    let r = Sim.run ~sink:tr cfg Policy.fifo ~workload:Ic_sim.Workload.unit g in
    (r, tr, Exporter.chrome_trace tr)
  in
  let r, tr, json = faulty_run () in
  check "faults fired" true (r.Sim.crashes > 0 || r.Sim.timeouts > 0);
  let count k =
    let n = ref 0 in
    Trace.iter (fun e -> if e.Trace.kind = k then incr n) tr;
    !n
  in
  check_int "crash events match result" r.Sim.crashes (count Trace.Client_crash);
  check_int "timeout events match result" r.Sim.timeouts
    (count Trace.Timeout_fired);
  check_int "speculation events match result" r.Sim.speculations
    (count Trace.Speculative_launch);
  check_int "retry events match result" r.Sim.retries
    (count Trace.Retry_scheduled);
  (match Json.parse json with
  | Error e -> Alcotest.fail ("faulty chrome trace invalid: " ^ e)
  | Ok (Json.Array events) ->
    let phase e = Option.bind (Json.member "ph" e) Json.to_string in
    let name e = Option.bind (Json.member "name" e) Json.to_string in
    let instants = List.filter (fun e -> phase e = Some "i") events in
    check "instant markers present" true (instants <> []);
    (if r.Sim.crashes > 0 then
       check "crash marker present" true
         (List.exists (fun e -> name e = Some "crash") instants));
    if r.Sim.timeouts > 0 then
      check "timeout marker present" true
        (List.exists (fun e -> name e = Some "timeout") instants)
  | Ok _ -> Alcotest.fail "faulty chrome trace must be a JSON array");
  let _, _, json2 = faulty_run () in
  check_str "byte-equal faulty export" json json2

let test_metrics_from_simulation () =
  let g = Ic_families.Mesh.out_mesh 8 in
  let cfg = Sim.config ~n_clients:4 ~jitter:0.5 ~seed:9 () in
  let m = Metrics.create () in
  let r = Sim.run ~metrics:m cfg Policy.fifo ~workload:Ic_sim.Workload.unit g in
  check_int "completions counted" (Dag.n_nodes g)
    (Metrics.counter_value (Metrics.counter m "sim.tasks_completed"));
  check_int "stalls counted" r.Sim.stalls
    (Metrics.counter_value (Metrics.counter m "sim.stalls"));
  check "makespan gauge" true
    (Metrics.gauge_value (Metrics.gauge m "sim.makespan") = r.Sim.makespan);
  check_int "latency histogram count" (Dag.n_nodes g)
    (Metrics.histogram_count
       (Metrics.histogram m "sim.task_latency"
          ~buckets:[| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]))

let test_engine_sink () =
  let g = Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] () in
  let compute v parents = if v = 0 then 1 else Array.fold_left ( + ) v parents in
  let tr = Trace.create () in
  let values = Ic_compute.Engine.execute ~sink:tr { Ic_compute.Engine.dag = g; compute } in
  Alcotest.(check (array int)) "values unchanged by tracing" [| 1; 2; 3; 8 |] values;
  let count k =
    let n = ref 0 in
    Trace.iter (fun e -> if e.Trace.kind = k then incr n) tr;
    !n
  in
  check_int "start per node" 4 (count Trace.Task_start);
  check_int "complete per node" 4 (count Trace.Task_complete);
  check_int "pop per node" 4 (count Trace.Frontier_pop);
  check_int "push per node" 4 (count Trace.Frontier_push);
  (* the engine's trace exports too *)
  match Ic_obs.Json.parse (Exporter.chrome_trace tr) with
  | Ok (Json.Array _) -> ()
  | Ok _ -> Alcotest.fail "engine trace must render an array"
  | Error e -> Alcotest.fail ("engine trace invalid: " ^ e)

let test_sink_does_not_change_results () =
  let g = Ic_families.Mesh.out_mesh 8 in
  let cfg = Sim.config ~n_clients:4 ~jitter:0.5 ~seed:5 () in
  let bare = Sim.run cfg Policy.fifo ~workload:Ic_sim.Workload.unit g in
  let traced =
    Sim.run ~sink:(Trace.create ()) ~metrics:(Metrics.create ()) cfg Policy.fifo
      ~workload:Ic_sim.Workload.unit g
  in
  check "observability is transparent" true (bare = traced)

(* --- live registry --- *)

let test_live_counter () =
  let l = Live.create ~shards:4 () in
  check_int "shard count honoured" 4 (Live.shards l);
  let c = Live.counter l "live.tasks" in
  (* writes to distinct shards merge on read *)
  Live.incr c ~shard:0 1;
  Live.incr c ~shard:1 2;
  Live.incr c ~shard:2 3;
  Live.incr c ~shard:3 4;
  check_int "merge-on-read sums all cells" 10 (Live.counter_value c);
  (* shard indices wrap with the mask instead of raising *)
  Live.incr c ~shard:7 5;
  check_int "out-of-range shard wraps" 15 (Live.counter_value c);
  (* registration dedups by name *)
  Live.incr (Live.counter l "live.tasks") ~shard:0 1;
  check_int "same name, same counter" 16 (Live.counter_value c);
  (* cross-kind re-registration is an error *)
  (match Live.gauge l "live.tasks" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "counter name re-registered as gauge must raise");
  (* shard counts round up to a power of two *)
  check_int "non-power-of-two rounds up" 8 (Live.shards (Live.create ~shards:5 ()))

let test_live_gauge_histogram () =
  let l = Live.create () in
  let g = Live.gauge l "live.depth" in
  Live.set g 3.0;
  Live.set g 7.5;
  check "gauge holds last write" true (Live.gauge_value g = 7.5);
  let h = Live.histogram l "live.latency" in
  check "empty quantile is nan" true
    (Float.is_nan (Live.quantile (Live.histogram_snapshot h) 0.5));
  List.iter (Live.observe h) [ 0.001; 0.001; 0.001; 0.1; 10.0 ];
  let s = Live.histogram_snapshot h in
  check_int "snapshot count" 5 s.Live.count;
  check "snapshot sum (ns fixed point)" true
    (Float.abs (s.Live.sum -. 10.103) < 1e-6);
  (* the log buckets bracket a quantile within one octave: the median
     observation is 0.001, so p50 reconstructs inside [0.0005, 0.002] *)
  let p50 = Live.quantile s 0.5 in
  check "p50 lands in the right octave" true (p50 >= 0.0005 && p50 <= 0.002);
  let p99 = Live.quantile s 0.99 in
  check "p99 reaches the top observation's octave" true
    (p99 >= 5.0 && p99 <= 20.0);
  check "quantiles are monotone" true (Live.quantile s 0.1 <= p99);
  (* a sliding window via snapshot subtraction sees only the new tail *)
  List.iter (Live.observe h) [ 4.0; 4.0 ];
  let w = Live.hsnap_sub (Live.histogram_snapshot h) s in
  check_int "window count" 2 w.Live.count;
  check "window sum" true (Float.abs (w.Live.sum -. 8.0) < 1e-6);
  let wp50 = Live.quantile w 0.5 in
  check "window p50 tracks the window, not the history" true
    (wp50 >= 2.0 && wp50 <= 8.0);
  (* bucket upper bounds are increasing and end at the saturation slot *)
  let ok = ref true in
  for i = 1 to Live.n_buckets - 1 do
    if not (Live.bucket_upper i > Live.bucket_upper (i - 1)) then ok := false
  done;
  check "bucket bounds strictly increase" true !ok

let test_live_openmetrics () =
  let l = Live.create () in
  Live.incr (Live.counter l "served.leases") ~shard:0 5;
  Live.set (Live.gauge l "served.frontier_depth") 3.0;
  Live.observe (Live.histogram l "served.grant_s") 0.004;
  let page = Live.openmetrics l in
  check "dots map to underscores" true
    (contains_sub page "# TYPE served_leases counter");
  check "counter renders name_total" true
    (contains_sub page "served_leases_total 5");
  check "gauge renders bare" true
    (contains_sub page "served_frontier_depth 3");
  check "histogram renders +Inf bucket" true
    (contains_sub page "served_grant_s_bucket{le=\"+Inf\"} 1");
  check "histogram renders sum" true (contains_sub page "served_grant_s_sum");
  check "histogram renders count" true
    (contains_sub page "served_grant_s_count 1");
  check "process gauges on by default" true
    (contains_sub page "process_resident_memory_bytes"
    && contains_sub page "process_uptime_seconds"
    && contains_sub page "ocaml_gc_minor_collections_total");
  check "terminated by # EOF" true
    (let tail = "# EOF\n" in
     String.length page >= String.length tail
     && String.sub page
          (String.length page - String.length tail)
          (String.length tail)
        = tail);
  let bare = Live.openmetrics ~process:false l in
  check "process block is optional" true
    (not (contains_sub bare "process_resident_memory_bytes"));
  (* every non-comment line is "name value": the shape the scrape smoke
     job validates *)
  String.split_on_char '\n' (String.trim bare)
  |> List.iter (fun line ->
         if String.length line > 0 && line.[0] <> '#' then
           match String.split_on_char ' ' line with
           | [ name; value ] ->
             check ("numeric value in: " ^ line) true
               (float_of_string_opt value <> None);
             check ("sane metric name in: " ^ line) true
               (String.for_all
                  (fun ch ->
                    (ch >= 'a' && ch <= 'z')
                    || (ch >= 'A' && ch <= 'Z')
                    || (ch >= '0' && ch <= '9')
                    || ch = '_' || ch = '{' || ch = '}' || ch = '"'
                    || ch = '=' || ch = '+' || ch = '.')
                  name)
           | _ -> Alcotest.fail ("malformed exposition line: " ^ line))

let test_live_to_json () =
  let l = Live.create () in
  Live.incr (Live.counter l "live.c") ~shard:1 3;
  Live.set (Live.gauge l "live.g") 2.5;
  Live.observe (Live.histogram l "live.h") 0.5;
  match Json.parse (Live.to_json l) with
  | Error e -> Alcotest.fail ("live JSON invalid: " ^ e)
  | Ok doc ->
    check "counter round-trips" true
      (Option.bind (Json.member "counters" doc) (Json.member "live.c")
       |> Option.map (fun v -> Json.to_number v = Some 3.0)
      = Some true);
    check "gauge round-trips" true
      (Option.bind (Json.member "gauges" doc) (Json.member "live.g")
       |> Option.map (fun v -> Json.to_number v = Some 2.5)
      = Some true);
    check "histogram round-trips" true
      (Option.bind (Json.member "histograms" doc) (Json.member "live.h")
      <> None)

(* --- flight recorder --- *)

let with_ring f =
  let path = Filename.temp_file "ic_test_flight" ".ring" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_flight_roundtrip () =
  with_ring (fun path ->
      (match Flight.create ~slots:16 path with
      | Error e -> Alcotest.fail e
      | Ok fl ->
        check_int "fresh ring starts at seq 1" 1 (Flight.next_seq fl);
        check_int "slots" 16 (Flight.slots fl);
        Flight.record fl Trace.Task_alloc ~time:1.0 ~a:7 ~b:2;
        Flight.record fl Trace.Task_complete ~time:2.0 ~a:7 ~b:2;
        Flight.record fl Trace.Frontier_depth ~time:3.0 ~a:1 ~b:11;
        Flight.record fl Trace.Inflight ~time:4.0 ~a:5 ~b:0;
        Flight.close fl);
      match Flight.load path with
      | Error e -> Alcotest.fail e
      | Ok d ->
        check_int "geometry recovered" 16 d.Flight.d_slots;
        check_int "all frames valid" 4 d.Flight.d_valid;
        check_int "events in sequence order" 4 (Array.length d.Flight.events);
        let e0 = d.Flight.events.(0) in
        check "payload survives" true
          (e0.Flight.seq = 1
          && e0.Flight.kind = Trace.Task_alloc
          && e0.Flight.time = 1.0 && e0.Flight.a = 7 && e0.Flight.b = 2);
        check "depth event survives" true
          (d.Flight.events.(2).Flight.kind = Trace.Frontier_depth
          && d.Flight.events.(2).Flight.b = 11);
        (* the dump replays into a trace ready for the exporter *)
        let tr = Flight.to_trace d in
        check_int "to_trace replays everything" 4 (Trace.length tr);
        check "to_trace keeps order" true
          ((Trace.get tr 0).Trace.kind = Trace.Task_alloc);
        match Json.parse (Exporter.chrome_trace tr) with
        | Ok (Json.Array _) -> ()
        | Ok _ -> Alcotest.fail "blackbox trace must render an array"
        | Error e -> Alcotest.fail ("blackbox trace invalid: " ^ e))

let test_flight_wrap () =
  with_ring (fun path ->
      (match Flight.create ~slots:16 path with
      | Error e -> Alcotest.fail e
      | Ok fl ->
        for i = 1 to 40 do
          Flight.record fl Trace.Frontier_pop ~time:(float_of_int i) ~a:i ~b:0
        done;
        Flight.close fl);
      match Flight.load path with
      | Error e -> Alcotest.fail e
      | Ok d ->
        check_int "ring keeps the last [slots] events" 16 d.Flight.d_valid;
        check_int "oldest retained" 25 d.Flight.events.(0).Flight.seq;
        check_int "newest retained" 40 d.Flight.events.(15).Flight.seq;
        Array.iteri
          (fun i e ->
            check_int (Printf.sprintf "dense tail %d" i) (25 + i) e.Flight.seq)
          d.Flight.events)

let test_flight_torn_slot () =
  with_ring (fun path ->
      (match Flight.create ~slots:16 path with
      | Error e -> Alcotest.fail e
      | Ok fl ->
        for i = 1 to 5 do
          Flight.record fl Trace.Task_start ~time:(float_of_int i) ~a:i ~b:0
        done;
        Flight.close fl);
      (* tear frame 3 (slot 2): flip one payload byte so its CRC fails.
         header is 16 bytes, 40 per slot *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd (16 + (2 * 40) + 20) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\xFF') 0 1);
      Unix.close fd;
      match Flight.load path with
      | Error e -> Alcotest.fail e
      | Ok d ->
        check_int "torn frame dropped, rest kept" 4 d.Flight.d_valid;
        check "the torn sequence number is the one missing" true
          (Array.for_all (fun e -> e.Flight.seq <> 3) d.Flight.events);
        check "neighbours intact" true
          (Array.exists (fun e -> e.Flight.seq = 2) d.Flight.events
          && Array.exists (fun e -> e.Flight.seq = 4) d.Flight.events))

let test_flight_reopen_continues () =
  with_ring (fun path ->
      (match Flight.create ~slots:16 path with
      | Error e -> Alcotest.fail e
      | Ok fl ->
        for i = 1 to 3 do
          Flight.record fl Trace.Task_alloc ~time:(float_of_int i) ~a:i ~b:0
        done;
        Flight.close fl);
      (* reopening with matching geometry continues the numbering — the
         --recover path appends to the same black box it crashed with *)
      (match Flight.create ~slots:16 path with
      | Error e -> Alcotest.fail e
      | Ok fl ->
        check_int "sequence continues after reopen" 4 (Flight.next_seq fl);
        Flight.record fl Trace.Task_complete ~time:9.0 ~a:99 ~b:0;
        Flight.close fl);
      (match Flight.load path with
      | Error e -> Alcotest.fail e
      | Ok d ->
        check_int "pre-crash frames plus the new one" 4 d.Flight.d_valid;
        check "old frames kept" true (d.Flight.events.(0).Flight.seq = 1);
        check "new frame appended after them" true
          (let last = d.Flight.events.(3) in
           last.Flight.seq = 4 && last.Flight.a = 99));
      (* a different geometry is a different ring: wiped, not misread *)
      match Flight.create ~slots:32 path with
      | Error e -> Alcotest.fail e
      | Ok fl ->
        check_int "geometry change resets the ring" 1 (Flight.next_seq fl);
        Flight.close fl)

let test_flight_rejects_foreign () =
  with_ring (fun path ->
      let oc = open_out_bin path in
      output_string oc "this is not a flight recorder at all";
      close_out oc;
      match Flight.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign file must not load")

(* --- properties --- *)

let prop_eligibility_timeline =
  (* across mesh sizes, seeds, client counts and every baseline policy:
     the eligibility curve of a completed run has non-decreasing
     timestamps, never-negative counts, and ends at 0 (a fault-free run
     drains the whole eligible set) *)
  QCheck2.Test.make ~name:"eligibility timeline is a sane curve" ~count:60
    QCheck2.Gen.(
      quad (int_range 2 8) (int_bound 10_000) (int_range 1 4)
        (int_bound (List.length Policy.baselines - 1)))
    (fun (side, seed, n_clients, pol) ->
      let g = Ic_families.Mesh.out_mesh side in
      let policy = List.nth Policy.baselines pol in
      let cfg = Sim.config ~n_clients ~jitter:0.5 ~seed () in
      let tr = Trace.create () in
      let r = Sim.run ~sink:tr cfg policy ~workload:Ic_sim.Workload.unit g in
      let tl = Trace.eligibility_timeline tr in
      let ok =
        ref
          (List.length r.Sim.completion_order = Dag.n_nodes g
          && Array.length tl > 0)
      in
      let last_t = ref neg_infinity in
      Array.iter
        (fun (t, c) ->
          if t < !last_t then ok := false;
          last_t := t;
          if c < 0 then ok := false)
        tl;
      (match tl.(Array.length tl - 1) with
      | _, 0 -> ()
      | _, _ -> ok := false);
      !ok)

let () =
  Alcotest.run "ic_obs"
    [
      ( "trace buffer",
        [
          Alcotest.test_case "emit and get" `Quick test_trace_emit_get;
          Alcotest.test_case "growth" `Quick test_trace_growth;
          Alcotest.test_case "clear" `Quick test_trace_clear;
          Alcotest.test_case "eligibility timeline" `Quick test_eligibility_timeline;
          Alcotest.test_case "kind names" `Quick test_kind_names;
          Alcotest.test_case "bounded ring mode" `Quick test_trace_ring;
        ] );
      ( "live registry",
        [
          Alcotest.test_case "sharded counters merge on read" `Quick
            test_live_counter;
          Alcotest.test_case "gauges, histograms, windows" `Quick
            test_live_gauge_histogram;
          Alcotest.test_case "openmetrics exposition" `Quick
            test_live_openmetrics;
          Alcotest.test_case "json snapshot" `Quick test_live_to_json;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "record, load, replay" `Quick
            test_flight_roundtrip;
          Alcotest.test_case "ring wraps to the newest tail" `Quick
            test_flight_wrap;
          Alcotest.test_case "torn slot fails its CRC" `Quick
            test_flight_torn_slot;
          Alcotest.test_case "reopen continues the sequence" `Quick
            test_flight_reopen_continues;
          Alcotest.test_case "foreign file rejected" `Quick
            test_flight_rejects_foreign;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "histograms" `Quick test_metrics_histogram;
          Alcotest.test_case "reset zeroes values, keeps registrations" `Quick
            test_metrics_reset;
          Alcotest.test_case "text and json dumps" `Quick test_metrics_dumps;
          Alcotest.test_case "hostile names round-trip" `Quick
            test_metrics_hostile_names;
        ] );
      ( "json reader",
        [ Alcotest.test_case "parse" `Quick test_json_parse ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace round-trip" `Quick
            test_chrome_trace_roundtrip;
          Alcotest.test_case "events cover the run" `Quick test_trace_events_cover_run;
          Alcotest.test_case "deterministic byte-equal exports" `Quick
            test_determinism_byte_equal;
          Alcotest.test_case "eligibility csv" `Quick test_eligibility_csv;
          Alcotest.test_case "fault events export" `Quick
            test_fault_events_export;
          Alcotest.test_case "hostile labels round-trip" `Quick
            test_exporter_hostile_labels;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "simulator metrics" `Quick test_metrics_from_simulation;
          Alcotest.test_case "engine sink" `Quick test_engine_sink;
          Alcotest.test_case "sink transparency" `Quick
            test_sink_does_not_change_results;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_eligibility_timeline ] );
    ]
