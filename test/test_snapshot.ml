(* The binary snapshot format: save -> mmap load roundtrips, re-save byte
   equality, interaction with the spilling Builder, and rejection of
   malformed files. *)

module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile
module Gen = Ic_dag.Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let temp () = Filename.temp_file "ic_snapshot_test" ".icdag"

let with_temp f =
  let path = temp () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let save_exn g path =
  match Dag.save g path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e

let load_exn path =
  match Dag.load path with
  | Ok g -> g
  | Error e -> Alcotest.failf "load failed: %s" e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let same_dag name g h =
  check (name ^ ": structural equality") true (Dag.equal g h);
  check_int (name ^ ": n_sources") (Dag.n_sources g) (Dag.n_sources h);
  check (name ^ ": has_labels") true (Dag.has_labels g = Dag.has_labels h);
  for v = 0 to Dag.n_nodes g - 1 do
    if Dag.label g v <> Dag.label h v then Alcotest.failf "%s: label %d" name v;
    if Dag.pred g v <> Dag.pred h v then Alcotest.failf "%s: pred %d" name v
  done

let test_roundtrip_random () =
  let rng = Random.State.make [| 0x54A9 |] in
  for i = 1 to 20 do
    let n = 1 + Random.State.int rng 40 in
    let g = Gen.random_dag rng ~n ~arc_probability:0.25 in
    let g =
      if i mod 2 = 0 then
        Dag.relabel g (Array.init n (Printf.sprintf "task-%d"))
      else g
    in
    with_temp (fun path ->
        save_exn g path;
        let h = load_exn path in
        same_dag (Printf.sprintf "random %d" i) g h;
        (* a loaded dag profile-replays identically to the original *)
        let s = Schedule.natural g in
        check (Printf.sprintf "random %d: profile" i) true
          (Profile.run g s = Profile.run h (Schedule.natural h)))
  done

let test_roundtrip_edge_cases () =
  List.iter
    (fun (name, g) ->
      with_temp (fun path ->
          save_exn g path;
          same_dag name g (load_exn path)))
    [
      ("empty", Dag.empty 0);
      ("arcless", Dag.empty 17);
      ("single node", Dag.empty 1);
      ("chain", Dag.make_exn ~n:5 ~arcs:[ (0, 1); (1, 2); (2, 3); (3, 4) ] ());
      ( "empty labels",
        Dag.make_exn ~labels:[| ""; ""; "x" |] ~n:3 ~arcs:[ (0, 2) ] () );
    ]

let test_resave_byte_equal () =
  (* load is lossless: saving a loaded dag reproduces the file exactly *)
  let g =
    Dag.make_exn
      ~labels:(Array.init 30 (Printf.sprintf "n%d"))
      ~n:30
      ~arcs:(List.init 29 (fun i -> (i / 2, i + 1)))
      ()
  in
  with_temp (fun p1 ->
      with_temp (fun p2 ->
          save_exn g p1;
          save_exn (load_exn p1) p2;
          check "byte-identical" true (read_file p1 = read_file p2)))

let test_spilled_builder_roundtrip () =
  (* streaming-built dag -> snapshot -> load equals the in-memory build *)
  let n = 2000 in
  let arcs = List.init (n - 1) (fun i -> (i / 2, i + 1)) in
  let b = Dag.Builder.create ~n ~spill_arcs:100 () in
  List.iter (fun (u, v) -> Dag.Builder.add_arc b u v) arcs;
  check "builder spilled" true (Dag.Builder.spilled b);
  let g = Dag.Builder.build_exn b in
  let reference = Dag.make_exn ~n ~arcs () in
  check "spilled = in-memory" true (Dag.equal g reference);
  with_temp (fun path ->
      save_exn g path;
      same_dag "spilled roundtrip" reference (load_exn path))

let expect_load_error name path =
  match Dag.load path with
  | Ok _ -> Alcotest.failf "%s: load should have failed" name
  | Error _ -> ()

let test_rejects_malformed () =
  (* missing file *)
  expect_load_error "missing" "/nonexistent/ic_snapshot.icdag";
  (* garbage magic *)
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 200 'x');
      close_out oc;
      expect_load_error "bad magic" path);
  (* too short for a header *)
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "ICDAGS01";
      close_out oc;
      expect_load_error "short header" path);
  (* valid snapshot truncated mid-slab *)
  let g = Dag.make_exn ~n:20 ~arcs:(List.init 19 (fun i -> (i, i + 1))) () in
  with_temp (fun path ->
      save_exn g path;
      let whole = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub whole 0 (String.length whole - 10));
      close_out oc;
      expect_load_error "truncated" path);
  (* valid snapshot with trailing junk *)
  with_temp (fun path ->
      save_exn g path;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "junk";
      close_out oc;
      expect_load_error "oversized" path)

let () =
  Alcotest.run "ic_dag.Snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "random dags" `Quick test_roundtrip_random;
          Alcotest.test_case "edge cases" `Quick test_roundtrip_edge_cases;
          Alcotest.test_case "re-save is byte-identical" `Quick
            test_resave_byte_equal;
          Alcotest.test_case "spilled builder" `Quick
            test_spilled_builder_roundtrip;
        ] );
      ( "errors",
        [ Alcotest.test_case "malformed files" `Quick test_rejects_malformed ] );
    ]
