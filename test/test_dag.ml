module Dag = Ic_dag.Dag

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let diamond4 () =
  (* the 4-node diamond: 0 -> 1,2 -> 3 *)
  Dag.make_exn ~n:4 ~arcs:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ()

let test_make_valid () =
  let g = diamond4 () in
  check_int "nodes" 4 (Dag.n_nodes g);
  check_int "arcs" 4 (Dag.n_arcs g);
  check "has 0->1" true (Dag.has_arc g 0 1);
  check "no 1->0" false (Dag.has_arc g 1 0);
  check "no 0->3" false (Dag.has_arc g 0 3)

let expect_error name result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

let test_make_rejects () =
  expect_error "cycle" (Dag.make ~n:3 ~arcs:[ (0, 1); (1, 2); (2, 0) ] ());
  expect_error "self-loop" (Dag.make ~n:2 ~arcs:[ (0, 0) ] ());
  expect_error "duplicate" (Dag.make ~n:2 ~arcs:[ (0, 1); (0, 1) ] ());
  expect_error "range" (Dag.make ~n:2 ~arcs:[ (0, 2) ] ());
  expect_error "negative n" (Dag.make ~n:(-1) ~arcs:[] ());
  expect_error "bad labels" (Dag.make ~labels:[| "a" |] ~n:2 ~arcs:[] ())

let test_sources_sinks () =
  let g = diamond4 () in
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks g);
  Alcotest.(check (list int)) "nonsinks" [ 0; 1; 2 ] (Dag.nonsinks g);
  Alcotest.(check (list int)) "nonsources" [ 1; 2; 3 ] (Dag.nonsources g);
  check_int "n_nonsinks" 3 (Dag.n_nonsinks g);
  check_int "n_nonsources" 3 (Dag.n_nonsources g)

let test_degrees () =
  let g = diamond4 () in
  check_int "outdeg 0" 2 (Dag.out_degree g 0);
  check_int "indeg 3" 2 (Dag.in_degree g 3);
  Alcotest.(check (array int)) "succ 0" [| 1; 2 |] (Dag.succ g 0);
  Alcotest.(check (array int)) "pred 3" [| 1; 2 |] (Dag.pred g 3)

let test_empty () =
  let g = Dag.empty 3 in
  check_int "arcs" 0 (Dag.n_arcs g);
  Alcotest.(check (list int)) "all sources" [ 0; 1; 2 ] (Dag.sources g);
  check "not connected" false (Dag.is_connected g);
  check "empty dag connected" true (Dag.is_connected (Dag.empty 0));
  check "singleton connected" true (Dag.is_connected (Dag.empty 1))

let test_sum () =
  let g = Dag.sum (diamond4 ()) (Dag.empty 2) in
  check_int "nodes" 6 (Dag.n_nodes g);
  check_int "arcs" 4 (Dag.n_arcs g);
  check "shifted nodes are isolated" true (Dag.is_source g 4 && Dag.is_sink g 4)

let test_dual () =
  let g = diamond4 () in
  let d = Dag.dual g in
  Alcotest.(check (list int)) "dual sources" [ 3 ] (Dag.sources d);
  check "dual arc" true (Dag.has_arc d 1 0);
  check "dual involution" true (Dag.equal g (Dag.dual d))

let test_topological () =
  let g = diamond4 () in
  let order = Dag.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Dag.iter_arcs g (fun u v -> check "topo respects arcs" true (pos.(u) < pos.(v)))

let test_depth_height () =
  let g = diamond4 () in
  Alcotest.(check (array int)) "depth" [| 0; 1; 1; 2 |] (Dag.depth g);
  Alcotest.(check (array int)) "height" [| 2; 1; 1; 0 |] (Dag.height g);
  check_int "longest path" 2 (Dag.longest_path g);
  check_int "empty longest path" 0 (Dag.longest_path (Dag.empty 0))

let test_labels () =
  let g = Dag.make_exn ~labels:[| "a"; "b" |] ~n:2 ~arcs:[ (0, 1) ] () in
  Alcotest.(check string) "label" "b" (Dag.label g 1);
  Alcotest.(check (option int)) "find" (Some 0) (Dag.find_label g "a");
  Alcotest.(check (option int)) "find missing" None (Dag.find_label g "zzz");
  let g2 = Dag.relabel g [| "x"; "y" |] in
  Alcotest.(check string) "relabel" "x" (Dag.label g2 0);
  Alcotest.(check string) "default label" "1" (Dag.label (Dag.empty 2) 1)

let test_map_nodes () =
  let g = diamond4 () in
  let h = Dag.map_nodes g ~perm:[| 3; 1; 2; 0 |] in
  check "renamed arc" true (Dag.has_arc h 3 1);
  check "renamed sink" true (Dag.is_sink h 0);
  check "isomorphic to original" true (Ic_dag.Iso.isomorphic g h)

let test_quotient () =
  let g = diamond4 () in
  (* merge the two middle nodes *)
  (match Dag.quotient g ~cluster_of:[| 0; 1; 1; 2 |] ~n_clusters:3 with
  | Ok q ->
    check_int "3 clusters" 3 (Dag.n_nodes q);
    check_int "2 arcs (deduplicated)" 2 (Dag.n_arcs q)
  | Error e -> Alcotest.fail e);
  (* a clustering that would create a cycle: {0,3} vs {1} vs {2} *)
  expect_error "cyclic quotient" (Dag.quotient g ~cluster_of:[| 0; 1; 2; 0 |] ~n_clusters:3)

let test_induced () =
  let g = diamond4 () in
  let sub, remap = Dag.induced g ~keep:[| true; true; false; true |] in
  check_int "3 nodes" 3 (Dag.n_nodes sub);
  check_int "remapped 3" 2 remap.(3);
  check_int "dropped" (-1) remap.(2);
  check "kept arc" true (Dag.has_arc sub 0 1);
  check_int "only path arcs kept" 2 (Dag.n_arcs sub)

let test_to_dot () =
  let dot = Dag.to_dot (diamond4 ()) in
  check "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph")

(* property tests *)

let rng_of_seed seed = Random.State.make [| seed |]

let prop_random_dag_topo =
  QCheck2.Test.make ~name:"random dag: topological order is consistent" ~count:100
    QCheck2.Gen.(pair (int_range 1 20) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Ic_dag.Gen.random_dag (rng_of_seed seed) ~n ~arc_probability:0.3 in
      let order = Dag.topological_order g in
      let pos = Array.make n 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Dag.fold_arcs g true (fun acc u v -> acc && pos.(u) < pos.(v)))

let prop_dual_involutive =
  QCheck2.Test.make ~name:"dual is involutive" ~count:100
    QCheck2.Gen.(pair (int_range 1 20) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Ic_dag.Gen.random_dag (rng_of_seed seed) ~n ~arc_probability:0.3 in
      Dag.equal g (Dag.dual (Dag.dual g)))

let prop_depth_height_duality =
  QCheck2.Test.make ~name:"depth of dual = height" ~count:100
    QCheck2.Gen.(pair (int_range 1 20) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Ic_dag.Gen.random_dag (rng_of_seed seed) ~n ~arc_probability:0.3 in
      Dag.depth (Dag.dual g) = Dag.height g)

let prop_layered_connected_levels =
  QCheck2.Test.make ~name:"layered dag: every non-top node has a parent" ~count:50
    QCheck2.Gen.(pair (int_range 2 6) (int_bound 10_000))
    (fun (layers, seed) ->
      let g =
        Ic_dag.Gen.random_layered_dag (rng_of_seed seed) ~layers ~width:4
          ~arc_probability:0.3
      in
      List.for_all (fun v -> v < 4 || Dag.in_degree g v > 0)
        (List.init (Dag.n_nodes g) Fun.id))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_dag_topo; prop_dual_involutive; prop_depth_height_duality;
      prop_layered_connected_levels ]

let () =
  Alcotest.run "ic_dag.Dag"
    [
      ( "construction",
        [
          Alcotest.test_case "valid dag" `Quick test_make_valid;
          Alcotest.test_case "rejects bad input" `Quick test_make_rejects;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "sum" `Quick test_sum;
          Alcotest.test_case "labels" `Quick test_labels;
        ] );
      ( "structure",
        [
          Alcotest.test_case "sources and sinks" `Quick test_sources_sinks;
          Alcotest.test_case "degrees and adjacency" `Quick test_degrees;
          Alcotest.test_case "topological order" `Quick test_topological;
          Alcotest.test_case "depth and height" `Quick test_depth_height;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "dual" `Quick test_dual;
          Alcotest.test_case "map_nodes" `Quick test_map_nodes;
          Alcotest.test_case "quotient" `Quick test_quotient;
          Alcotest.test_case "induced" `Quick test_induced;
        ] );
      ("properties", props);
    ]
