module Dag = Ic_dag.Dag
module M = Ic_families.Matmul_dag

type mat = float array array

let naive a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n || Array.length a.(0) <> n then
    invalid_arg "Matmul.naive: need equal-size square matrices";
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0.0 in
          for k = 0 to n - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let quadrant m ~half ~row ~col =
  Array.init half (fun i -> Array.init half (fun j -> m.(row + i).(col + j)))

let assemble ~half tl tr bl br =
  Array.init (2 * half) (fun i ->
      Array.init (2 * half) (fun j ->
          let q =
            if i < half then if j < half then tl else tr
            else if j < half then bl
            else br
          in
          q.(i mod half).(j mod half)))

let add_mat a b =
  Array.init (Array.length a) (fun i ->
      Array.init (Array.length a.(0)) (fun j -> a.(i).(j) +. b.(i).(j)))

(* operand node -> (which input matrix, quadrant row, quadrant col):
   A B ; C D are quadrants of the left operand, E F ; G H of the right *)
let operand_info = function
  | 0 -> (`Left, 0, 0) (* A *)
  | 2 -> (`Left, 1, 0) (* C *)
  | 8 -> (`Left, 0, 1) (* B *)
  | 10 -> (`Left, 1, 1) (* D *)
  | 1 -> (`Right, 0, 0) (* E *)
  | 3 -> (`Right, 0, 1) (* F *)
  | 9 -> (`Right, 1, 0) (* G *)
  | 11 -> (`Right, 1, 1) (* H *)
  | _ -> invalid_arg "Matmul.operand_info"

let is_operand v = v < 4 || (v >= 8 && v < 12)
let is_product v = (v >= 4 && v < 8) || (v >= 12 && v < 16)

let rec multiply ?(threshold = 32) a b =
  let n = Array.length a in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Matmul.multiply: dimension must be a power of two";
  if n <= threshold || n = 1 then naive a b
  else begin
    let half = n / 2 in
    let g = M.dag () in
    let module Slab = Ic_dag.Slab in
    let poff = Dag.pred_offsets g and pdat = Dag.pred_sources g in
    let compute v parents =
      if is_operand v then begin
        let side, qi, qj = operand_info v in
        let src = match side with `Left -> a | `Right -> b in
        quadrant src ~half ~row:(qi * half) ~col:(qj * half)
      end
      else if is_product v then begin
        (* one parent is a left-matrix operand, the other a right one *)
        let left, right =
          match operand_info (Slab.get pdat (Slab.get poff v)) with
          | `Left, _, _ -> (parents.(0), parents.(1))
          | `Right, _, _ -> (parents.(1), parents.(0))
        in
        multiply ~threshold left right
      end
      else add_mat parents.(0) parents.(1)
    in
    let values = Engine.execute ~schedule:(M.schedule ()) { Engine.dag = g; compute } in
    (* sums: 16 = AE+BG (top-left), 19 = AF+BH (top-right),
       17 = CE+DG (bottom-left), 18 = CF+DH (bottom-right) *)
    assemble ~half values.(16) values.(19) values.(17) values.(18)
  end

let random rng n =
  Array.init n (fun _ -> Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0))

let approx_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j x ->
              let scale = 1.0 +. Float.abs x +. Float.abs b.(i).(j) in
              if Float.abs (x -. b.(i).(j)) > eps *. scale then ok := false)
            row)
        a;
      !ok)
