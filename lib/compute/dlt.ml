module Dag = Ic_dag.Dag
module Dlt_dag = Ic_families.Dlt_dag

let cpow_int z e =
  if e < 0 then invalid_arg "Dlt.cpow_int: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else
      go
        (if e land 1 = 1 then Complex.mul acc base else acc)
        (Complex.mul base base) (e lsr 1)
  in
  go Complex.one z e

let naive ~x ~omega ~k =
  let wk = cpow_int omega k in
  let acc = ref Complex.zero in
  Array.iteri (fun i xi -> acc := Complex.add !acc (Complex.mul xi (cpow_int wk i))) x;
  !acc

let via_prefix ~x ~omega ~k =
  let n = Array.length x in
  let dlt = Dlt_dag.l_dag n in
  let g = Dlt_dag.dag dlt in
  let pos = Option.get dlt.Dlt_dag.prefix_pos in
  let top = Array.length pos - 1 in
  let wk = cpow_int omega k in
  let coord = Array.make (Dag.n_nodes g) None in
  Array.iteri
    (fun j row -> Array.iteri (fun i id -> coord.(id) <- Some (j, i)) row)
    pos;
  let compute v parents =
    match coord.(v) with
    | Some (0, i) -> if i = 0 then Complex.one else wk
    | Some (j, i) ->
      let stride = 1 lsl (j - 1) in
      let scanned =
        if i < stride then parents.(0)
        else Complex.mul parents.(0) parents.(1)
      in
      (* the top task of column i has received ω^{ik}; it multiplies in its
         coefficient before feeding the accumulating in-tree *)
      if j = top then Complex.mul x.(i) scanned else scanned
    | None -> Array.fold_left Complex.add Complex.zero parents
  in
  let values =
    Engine.execute ~schedule:(Dlt_dag.schedule dlt) { Engine.dag = g; compute }
  in
  values.(List.hd (Dag.sinks g))

let via_tree ~x ~omega ~k =
  let n = Array.length x in
  let dlt = Dlt_dag.l_prime_dag n in
  let g = Dlt_dag.dag dlt in
  let tree = dlt.Dlt_dag.generator_dag in
  let n_tree = Dag.n_nodes tree in
  let wk = cpow_int omega k in
  (* exponents: the j-th leaf (ascending id) carries ω^{(j+1)k}; an internal
     task carries the power of the smallest-exponent leaf below it, so every
     task derives its power from its parent's by local multiplications *)
  let exponent = Array.make n_tree 0 in
  let next_leaf = ref 1 in
  for v = 0 to n_tree - 1 do
    if Dag.is_sink tree v then begin
      exponent.(v) <- !next_leaf;
      incr next_leaf
    end
  done;
  let rec fill v =
    if not (Dag.is_sink tree v) then begin
      Dag.iter_succ tree v fill;
      exponent.(v) <-
        Dag.fold_succ tree v max_int (fun acc c -> min acc exponent.(c))
    end
  in
  fill 0;
  let module Slab = Ic_dag.Slab in
  let tpoff = Dag.pred_offsets tree and tpdat = Dag.pred_sources tree in
  let compute v parents =
    if v < n_tree then begin
      let power =
        if v = 0 then cpow_int wk exponent.(0)
        else
          let parent = Slab.get tpdat (Slab.get tpoff v) in
          Complex.mul parents.(0) (cpow_int wk (exponent.(v) - exponent.(parent)))
      in
      if Dag.is_sink tree v then Complex.mul x.(exponent.(v)) power else power
    end
    else if Array.length parents = 0 then x.(0) (* the free x₀·ω⁰ source *)
    else Array.fold_left Complex.add Complex.zero parents
  in
  let values =
    Engine.execute ~schedule:(Dlt_dag.schedule dlt) { Engine.dag = g; compute }
  in
  values.(List.hd (Dag.sinks g))

let transform algo ~x ~omega ~m =
  Array.init m (fun k -> algo ~x ~omega ~k)
