module Dag = Ic_dag.Dag
module Out_tree = Ic_families.Out_tree
module Diamond = Ic_families.Diamond

type rule = Trapezoid | Simpson

type result = {
  value : float;
  shape : Out_tree.shape;
  diamond : Diamond.t;
  n_tasks : int;
  schedule : Ic_dag.Schedule.t;
}

let approx rule f x y =
  match rule with
  | Trapezoid -> 0.5 *. (f x +. f y) *. (y -. x)
  | Simpson -> (y -. x) /. 6.0 *. (f x +. (4.0 *. f (0.5 *. (x +. y))) +. f y)

(* the adaptive subdivision: accept when refining changes the estimate by
   less than [tol], as in the paper's description *)
let should_split rule f x y tol =
  let a0 = approx rule f x y in
  let m = 0.5 *. (x +. y) in
  let a1 = approx rule f x m +. approx rule f m y in
  Float.abs (a0 -. a1) > tol

let rec build_shape rule f x y tol depth =
  if depth = 0 || not (should_split rule f x y tol) then Out_tree.Leaf
  else
    let m = 0.5 *. (x +. y) in
    Out_tree.Node
      [ build_shape rule f x m tol (depth - 1);
        build_shape rule f m y tol (depth - 1) ]

let rec reference_of_shape rule f x y = function
  | Out_tree.Leaf -> approx rule f x y
  | Out_tree.Node [ l; r ] ->
    let m = 0.5 *. (x +. y) in
    reference_of_shape rule f x m l +. reference_of_shape rule f m y r
  | Out_tree.Node _ -> invalid_arg "Quadrature: non-binary shape"

type value = Interval of float * float | Area of float

let integrate ?(rule = Trapezoid) ?(max_depth = 12) ~f ~lo ~hi ~tol () =
  let shape = build_shape rule f lo hi tol max_depth in
  let diamond = Diamond.symmetric shape in
  let g = Diamond.dag diamond in
  let tree = Out_tree.dag_of_shape shape in
  let n_tree = Dag.n_nodes tree in
  (* which-child lookup: in pre-order numbering, a node's children appear in
     ascending id = left-to-right order *)
  let child_rank = Array.make n_tree 0 in
  for v = 0 to n_tree - 1 do
    let r = ref 0 in
    Dag.iter_succ tree v (fun c ->
        child_rank.(c) <- !r;
        incr r)
  done;
  let compute v parents =
    if v < n_tree then begin
      (* expansive phase: subdivide (or, at a leaf, integrate locally) *)
      let interval =
        if v = 0 then (lo, hi)
        else
          match parents.(0) with
          | Interval (a, b) ->
            let m = 0.5 *. (a +. b) in
            if child_rank.(v) = 0 then (a, m) else (m, b)
          | Area _ -> invalid_arg "Quadrature: area above an interval task"
      in
      if Dag.is_sink tree v then
        let a, b = interval in
        Area (approx rule f a b)
      else Interval (fst interval, snd interval)
    end
    else
      (* reductive phase: accumulate areas *)
      Area
        (Array.fold_left
           (fun acc p ->
             match p with
             | Area a -> acc +. a
             | Interval _ -> invalid_arg "Quadrature: interval in reduction")
           0.0 parents)
  in
  let schedule = Diamond.schedule diamond in
  let values = Engine.execute ~schedule { Engine.dag = g; compute } in
  let sink = List.hd (Dag.sinks g) in
  let value =
    match values.(sink) with
    | Area a -> a
    | Interval _ -> assert false
  in
  { value; shape; diamond; n_tasks = Dag.n_nodes g; schedule }

let reference ?(rule = Trapezoid) ?(max_depth = 12) ~f ~lo ~hi ~tol () =
  let shape = build_shape rule f lo hi tol max_depth in
  reference_of_shape rule f lo hi shape
