(** Generic dag-execution engine: attaches a value semantics to a
    computation-dag and executes it under a given schedule. Every "familiar
    computation" of the paper runs through this engine, demonstrating that
    the IC-optimal schedules really drive the computations they model. *)

type 'a t = {
  dag : Ic_dag.Dag.t;
  compute : int -> 'a array -> 'a;
      (** [compute v parents] produces task [v]'s value from its parents'
          values, listed in ascending parent-id order ([[||]] for a
          source).

          The [parents] array is a scratch buffer owned by the engine and
          reused across calls — read it during the call, but do not retain
          or mutate it. Copy it ([Array.sub]/[Array.copy]) if the value
          must outlive the call. *)
}

type executor = Ic_dag.Dag.t -> (int -> unit) -> unit
(** A pluggable execution strategy: [exec g step] must call [step v]
    exactly once for every node [v] of [g], never before every parent of
    [v] has been stepped. [step] calls for nodes with no dependence
    relation may run concurrently from different domains — the engine's
    own state under an executor is confined to per-node cells, so the
    dataflow discipline above is the only synchronization it needs. The
    in-process strategies are the engine's own sequential loop (the
    default) and [Ic_par.Runtime.executor]. *)

val execute :
  ?schedule:Ic_dag.Schedule.t ->
  ?executor:executor ->
  ?sink:Ic_obs.Trace.t ->
  'a t ->
  'a array
(** All node values, computed in schedule order (default: a topological
    order). Raises [Invalid_argument] if the schedule does not fit.

    [sink], when given, receives the structured execution trace: per node
    a task start/complete pair stamped with the execution step (the
    engine is untimed, so step [i] plays the role of the clock), frontier
    push/pop events, and the eligibility count after every step — the
    same event model the simulator emits, so the exporters apply
    unchanged. Without a sink the execute path pays one branch per
    node.

    [executor], when given, delegates ordering to the given strategy
    instead of the engine's sequential frontier loop; each [step] call
    then reads its parents' values into a fresh buffer (so steps are safe
    to run from multiple domains) and [sink] is ignored — a parallel
    executor exports its own per-domain traces. [Invalid_argument] if
    both [schedule] and [executor] are given: an executor owns the
    order. *)

val value_at : ?schedule:Ic_dag.Schedule.t -> 'a t -> int -> 'a
(** [value_at t v] is [(execute t).(v)], but only the ancestor cone of [v]
    is computed — [compute] runs exactly once per cone node, in (schedule
    or topological) order restricted to the cone. Raises [Invalid_argument]
    if [v] is out of range or the schedule, restricted to the cone, is not
    a valid execution order (the schedule is not checked outside the
    cone). *)
