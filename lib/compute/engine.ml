module Dag = Ic_dag.Dag
module Slab = Ic_dag.Slab
module Schedule = Ic_dag.Schedule
module Frontier = Ic_dag.Frontier
module Trace = Ic_obs.Trace

type 'a t = {
  dag : Dag.t;
  compute : int -> 'a array -> 'a;
}

(* Parent values are handed to [compute] in a scratch buffer reused across
   all nodes of the same in-degree, filled straight from the pred CSR — the
   per-node [Array.map] allocation this replaces dominated execution cost on
   large dags. [compute] must not retain the buffer (see the mli). *)
let scratch_pool ~max_deg dummy =
  let pool = Array.make (max_deg + 1) [||] in
  fun d ->
    if d = 0 then [||]
    else begin
      if Array.length pool.(d) = 0 then pool.(d) <- Array.make d dummy;
      pool.(d)
    end

let max_in_degree poff n =
  let m = ref 0 in
  for v = 0 to n - 1 do
    let d = Slab.unsafe_get poff (v + 1) - Slab.unsafe_get poff v in
    if d > !m then m := d
  done;
  !m

type executor = Dag.t -> (int -> unit) -> unit

(* Under an external executor the engine gives up its frontier and its
   shared scratch: values live in an ['a option array] (one cell per node,
   written exactly once), and each step fills a fresh parents buffer. Cells
   make wrong executors fail loudly (a missing parent is [None], not a
   stale dummy), and per-step buffers make steps reentrant from any domain
   — the executor's dependence discipline is the only synchronization. *)
let execute_with ~executor t =
  let g = t.dag in
  let n = Dag.n_nodes g in
  if n = 0 then [||]
  else begin
    let poff = Dag.pred_offsets g and pdat = Dag.pred_sources g in
    let values = Array.make n None in
    let step v =
      if v < 0 || v >= n then invalid_arg "Engine.execute: step out of range";
      let base = Slab.get poff v in
      let d = Slab.get poff (v + 1) - base in
      let parents =
        Array.init d (fun k ->
            match values.(Slab.unsafe_get pdat (base + k)) with
            | Some x -> x
            | None -> invalid_arg "Engine.execute: executor stepped a node before its parents")
      in
      values.(v) <- Some (t.compute v parents)
    in
    executor g step;
    Array.map
      (function
        | Some x -> x
        | None -> invalid_arg "Engine.execute: executor did not step every node")
      values
  end

(* Streams over a frontier: the frontier both supplies the default order and
   proves, before every value is computed, that the node's parents have
   already been computed — so parent values can be read straight out of the
   result array, with no option boxing. *)
let execute ?schedule ?executor ?sink t =
  match executor with
  | Some exec ->
    if schedule <> None then
      invalid_arg "Engine.execute: an executor owns the order; drop ?schedule";
    ignore sink;
    execute_with ~executor:exec t
  | None ->
  let g = t.dag in
  let n = Dag.n_nodes g in
  let order =
    match schedule with
    | Some s ->
      if Schedule.length s <> n then
        invalid_arg "Engine.execute: schedule does not fit the dag";
      Some (Schedule.order s)
    | None -> None
  in
  if n = 0 then [||]
  else begin
    let poff = Dag.pred_offsets g and pdat = Dag.pred_sources g in
    let fr = Frontier.create g in
    (* the engine has no simulated clock; events are stamped with the
       execution step, client 0 standing in for "the engine" *)
    let step = ref 0 in
    (match sink with
    | None -> ()
    | Some tr ->
      Frontier.set_observer fr
        (Some
           {
             Frontier.on_push =
               (fun w -> Trace.frontier_push tr ~time:(float_of_int !step) ~node:w);
             on_pop =
               (fun w -> Trace.frontier_pop tr ~time:(float_of_int !step) ~node:w);
           });
      Frontier.iter (fun v -> Trace.frontier_push tr ~time:0.0 ~node:v) fr;
      Trace.eligible_count tr ~time:0.0 ~count:(Frontier.count fr));
    let next i =
      match order with
      | Some o -> o.(i)
      | None -> (
        match Frontier.choose fr with Some v -> v | None -> assert false)
    in
    let emit_executed v =
      match sink with
      | None -> ()
      | Some tr ->
        let i = !step in
        Trace.task_start tr ~time:(float_of_int i) ~task:v ~client:0;
        Trace.task_complete tr ~time:(float_of_int (i + 1)) ~task:v ~client:0;
        Trace.eligible_count tr ~time:(float_of_int (i + 1))
          ~count:(Frontier.count fr)
    in
    let v0 = next 0 in
    if not (Frontier.is_eligible fr v0) then
      invalid_arg "Engine.execute: invalid schedule order";
    (* v0 is eligible at step 0, hence a source *)
    let values = Array.make n (t.compute v0 [||]) in
    let buffer = scratch_pool ~max_deg:(max_in_degree poff n) values.(v0) in
    Frontier.execute fr v0;
    emit_executed v0;
    for i = 1 to n - 1 do
      step := i;
      let v = next i in
      if not (Frontier.is_eligible fr v) then
        invalid_arg "Engine.execute: invalid schedule order";
      let base = Slab.get poff v in
      let d = Slab.get poff (v + 1) - base in
      let parents = buffer d in
      for k = 0 to d - 1 do
        Array.unsafe_set parents k values.(Slab.unsafe_get pdat (base + k))
      done;
      Frontier.execute fr v;
      emit_executed v;
      values.(v) <- t.compute v parents
    done;
    values
  end

let value_at ?schedule t target =
  let g = t.dag in
  let n = Dag.n_nodes g in
  if target < 0 || target >= n then
    invalid_arg "Engine.value_at: node out of range";
  let order =
    match schedule with
    | Some s ->
      if Schedule.length s <> n then
        invalid_arg "Engine.value_at: schedule does not fit the dag";
      Schedule.order s
    | None -> Dag.topological_order g
  in
  let poff = Dag.pred_offsets g and pdat = Dag.pred_sources g in
  (* [target]'s value only depends on its ancestor cone, so only the cone is
     computed: reverse BFS over predecessors marks it, then the order is
     replayed skipping everything outside. *)
  let in_cone = Bytes.make n '\000' in
  Bytes.set in_cone target '\001';
  let queue = Queue.create () in
  Queue.add target queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for i = Slab.get poff u to Slab.get poff (u + 1) - 1 do
      let p = Slab.unsafe_get pdat i in
      if Bytes.unsafe_get in_cone p = '\000' then begin
        Bytes.unsafe_set in_cone p '\001';
        Queue.add p queue
      end
    done
  done;
  (* the first cone node of a valid order is necessarily a cone source: its
     parents are all in the cone and none is computed yet *)
  let first = ref 0 in
  while Bytes.get in_cone order.(!first) = '\000' do
    incr first
  done;
  let v0 = order.(!first) in
  if Slab.get poff (v0 + 1) - Slab.get poff v0 <> 0 then
    invalid_arg "Engine.value_at: invalid schedule order";
  let values = Array.make n (t.compute v0 [||]) in
  let computed = Bytes.make n '\000' in
  Bytes.set computed v0 '\001';
  if v0 = target then values.(target)
  else begin
    let buffer = scratch_pool ~max_deg:(max_in_degree poff n) values.(v0) in
    let i = ref (!first + 1) in
    let result = ref values.(v0) in
    let finished = ref false in
    while not !finished do
      if !i >= n then invalid_arg "Engine.value_at: invalid schedule order";
      let v = order.(!i) in
      if Bytes.get in_cone v = '\001' then begin
        if Bytes.get computed v = '\001' then
          invalid_arg "Engine.value_at: invalid schedule order";
        let base = Slab.get poff v in
        let d = Slab.get poff (v + 1) - base in
        let parents = buffer d in
        for k = 0 to d - 1 do
          let p = Slab.unsafe_get pdat (base + k) in
          if Bytes.get computed p = '\000' then
            invalid_arg "Engine.value_at: invalid schedule order";
          Array.unsafe_set parents k values.(p)
        done;
        let value = t.compute v parents in
        values.(v) <- value;
        Bytes.set computed v '\001';
        if v = target then begin
          result := value;
          finished := true
        end
      end;
      incr i
    done;
    !result
  end
