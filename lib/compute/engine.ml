module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Frontier = Ic_dag.Frontier

type 'a t = {
  dag : Dag.t;
  compute : int -> 'a array -> 'a;
}

(* Streams over a frontier: the frontier both supplies the default order and
   proves, before every value is computed, that the node's parents have
   already been computed — so parent values can be read straight out of the
   result array, with no option boxing. *)
let execute ?schedule t =
  let g = t.dag in
  let n = Dag.n_nodes g in
  let order =
    match schedule with
    | Some s ->
      if Schedule.length s <> n then
        invalid_arg "Engine.execute: schedule does not fit the dag";
      Some (Schedule.order s)
    | None -> None
  in
  if n = 0 then [||]
  else begin
    let fr = Frontier.create g in
    let next i =
      match order with
      | Some o -> o.(i)
      | None -> (
        match Frontier.choose fr with Some v -> v | None -> assert false)
    in
    let v0 = next 0 in
    if not (Frontier.is_eligible fr v0) then
      invalid_arg "Engine.execute: invalid schedule order";
    (* v0 is eligible at step 0, hence a source *)
    let values = Array.make n (t.compute v0 [||]) in
    Frontier.execute fr v0;
    for i = 1 to n - 1 do
      let v = next i in
      if not (Frontier.is_eligible fr v) then
        invalid_arg "Engine.execute: invalid schedule order";
      let parents = Array.map (fun p -> values.(p)) (Dag.pred g v) in
      Frontier.execute fr v;
      values.(v) <- t.compute v parents
    done;
    values
  end

let value_at ?schedule t v = (execute ?schedule t).(v)
