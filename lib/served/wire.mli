(** The served wire protocol: length-prefixed binary frames.

    A frame is a 4-byte little-endian unsigned payload length followed
    by the payload: a 1-byte message tag and the message's fields
    (unsigned 32-bit little-endian integers, 16-bit for lease batch
    sizes, IEEE-754 64-bit little-endian for durations). Frames are
    bounded by {!max_frame}; a {!Lease} carries at most
    {!max_lease_tasks} task ids. The protocol is strict
    request/response: every client message is answered by exactly one
    server message, in order, so a connection multiplexing many virtual
    workers matches replies to requests FIFO.

    Decoding never raises: any byte sequence either yields a message, a
    need-more-data indication, or a descriptive error (bad tag,
    oversized frame, field values out of range, trailing bytes inside a
    frame). The property suite round-trips every message type and
    fuzzes truncations. *)

type msg =
  | Hello of { worker : int }  (** client: announce worker id *)
  | Lease_req of { worker : int; k : int }
      (** client: lease up to [k] eligible tasks ([1 <= k <= 65535]) *)
  | Complete of { worker : int; task : int }
      (** client: [task]'s payload finished *)
  | Heartbeat of { worker : int }
      (** client: still alive; renews the worker's outstanding leases *)
  | Drain  (** client/operator: stop issuing new leases *)
  | Welcome of { n_tasks : int; n_shards : int }  (** server: reply to Hello *)
  | Lease of { tasks : int array; expires_in_s : float }
      (** server: leased batch; re-issued unless completed within
          [expires_in_s] (infinity = no expiry) *)
  | Retry_after of { delay_s : float }
      (** server: backpressure — nothing leasable now, ask again later *)
  | Done of { completed : int; reissues : int }
      (** server: every task is complete (or the server is draining) *)
  | Ack  (** server: reply to Complete/Heartbeat when work remains *)

val max_frame : int
(** Upper bound on a payload length (1 MiB); a length prefix above it is
    rejected without buffering the body. *)

val max_lease_tasks : int
(** Upper bound on tasks per {!Lease} (4096). *)

val max_u32 : int
(** Largest worker/task/count value the wire carries. *)

val encode : Buffer.t -> msg -> unit
(** Append one full frame. Raises [Invalid_argument] on out-of-range
    fields (negative ids, ids above {!max_u32}, oversized lease). *)

val to_string : msg -> string
(** {!encode} into a fresh string. *)

val decode_frame :
  Bytes.t -> pos:int -> avail:int ->
  [ `Msg of msg * int | `Need_more | `Error of string ]
(** Decode one frame starting at [pos] with [avail] readable bytes.
    [`Msg (m, consumed)] consumed [consumed] bytes; [`Need_more] means
    the frame is incomplete (read more and retry); [`Error] frames are
    unrecoverable for the connection (corrupt length, unknown tag,
    truncated or trailing payload bytes). Never raises. *)

(** Incremental frame reader for a byte stream: feed raw reads, pull
    decoded messages. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t buf off len] appends [len] bytes of [buf] at [off]. *)

  val next : t -> (msg option, string) result
  (** The next complete message, [Ok None] when more bytes are needed,
      [Error] on a corrupt stream (the connection should be dropped —
      subsequent bytes cannot be re-synchronized). *)

  val pending_bytes : t -> int
end
