module Plan = Ic_fault.Plan
module Heap = Ic_heuristics.Heap
module Monotonic = Ic_prof.Monotonic

type config = {
  workers : int;
  k : int;
  mean_service_s : float;
  pareto_alpha : float;
  think_s : float;
  churn : Plan.t;
  seed : int;
}

let config ?(workers = 1024) ?(k = 8) ?(mean_service_s = 0.01)
    ?(pareto_alpha = 1.5) ?(think_s = 0.001) ?(churn = Plan.none)
    ?(seed = 0x5E4D) () =
  if workers < 1 then invalid_arg "Hammer.config: workers must be >= 1";
  if k < 1 || k > 0xFFFF then
    invalid_arg "Hammer.config: k must be in 1..65535";
  if (not (Float.is_finite mean_service_s)) || mean_service_s <= 0.0 then
    invalid_arg "Hammer.config: mean_service_s must be finite and positive";
  if (not (Float.is_finite pareto_alpha)) || pareto_alpha <= 1.0 then
    invalid_arg "Hammer.config: pareto_alpha must be finite and > 1";
  if (not (Float.is_finite think_s)) || think_s < 0.0 then
    invalid_arg "Hammer.config: think_s must be finite and >= 0";
  { workers; k; mean_service_s; pareto_alpha; think_s; churn; seed }

(* bounded Pareto: x_m * u^(-1/alpha) has mean x_m * alpha/(alpha-1), so
   scale x_m to hit the configured mean; the 100x cap keeps a single
   draw from freezing a virtual run without flattening the tail *)
let service_s cfg ~worker ~draw =
  let rng = Random.State.make [| cfg.seed; 0x5E; worker; draw |] in
  let u = 1.0 -. Random.State.float rng 1.0 (* (0, 1] *) in
  let x_m = cfg.mean_service_s *. (cfg.pareto_alpha -. 1.0) /. cfg.pareto_alpha in
  Float.min (x_m *. (u ** (-1.0 /. cfg.pareto_alpha))) (100.0 *. cfg.mean_service_s)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let i = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
    s.(max 0 (min (n - 1) i))
  end

type result = {
  n_tasks : int;
  completed : int;
  makespan_s : float;
  wall_s : float;
  server : Server.stats;
  crashed : int;
  disconnects : int;
  lease_grant_p50_s : float;
  lease_grant_p99_s : float;
  task_service_p50_s : float;
  task_service_p99_s : float;
  busy_s : float array;
}

(* worker status *)
let w_idle = 0
let w_busy = 1
let w_offline = 2
let w_dead = 3
let w_finished = 4

(* worker events carry the worker's churn epoch: an event scheduled
   before a disconnect/crash must not fire into the session that follows
   the rejoin, so churn bumps the epoch and stale events are dropped *)
type ev =
  | Request of int * int  (** worker, epoch: asks for a lease *)
  | Complete_due of int * int
      (** worker, epoch: finishes the head of its batch *)
  | Churn_ev of int * Plan.Churn.kind

(* a growing float sample buffer; quantiles are computed at the end *)
type samples = { mutable xs : float array; mutable n : int }

let samples () = { xs = Array.make 1024 0.0; n = 0 }

let sample s x =
  if s.n = Array.length s.xs then begin
    let grown = Array.make (2 * s.n) 0.0 in
    Array.blit s.xs 0 grown 0 s.n;
    s.xs <- grown
  end;
  s.xs.(s.n) <- x;
  s.n <- s.n + 1

let to_array s = Array.sub s.xs 0 s.n

let utilization_buckets =
  [| 0.01; 0.02; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 |]

let observe_utilization metrics busy makespan =
  match metrics with
  | None -> ()
  | Some m ->
    if makespan > 0.0 then begin
      let h =
        Ic_obs.Metrics.histogram m "served.worker_utilization"
          ~buckets:utilization_buckets
      in
      Array.iter (fun b -> Ic_obs.Metrics.observe h (b /. makespan)) busy
    end

let drive ?metrics srv cfg =
  let t_start = Monotonic.now () in
  let w = cfg.workers in
  let status = Array.make w w_idle in
  let batch : int list array = Array.make w [] in
  let batch_t0 : float array = Array.make w 0.0 in  (* alloc time of batch *)
  let draws = Array.make w 0 in
  let epoch = Array.make w 0 in
  let first_req = Array.make w nan in
  let churn = Array.init w (fun i -> Plan.Churn.create cfg.churn ~client:i) in
  let crashed = ref 0 in
  let disconnects = ref 0 in
  let grant_lat = samples () in
  let service_lat = samples () in
  (* per-worker utilization: a busy interval opens on a Lease and closes
     when the batch empties (or churn/finish cuts it) *)
  let busy = Array.make w 0.0 in
  let busy_since = Array.make w nan in
  let end_busy i t =
    if not (Float.is_nan busy_since.(i)) then begin
      busy.(i) <- busy.(i) +. (t -. busy_since.(i));
      busy_since.(i) <- nan
    end
  in
  let events : (float, ev) Heap.t = Heap.create () in
  let schedule_churn i =
    match Plan.Churn.next churn.(i) with
    | None -> ()
    | Some { Plan.Churn.time; kind } -> Heap.push events time (Churn_ev (i, kind))
  in
  for i = 0 to w - 1 do
    (* stagger the opening burst deterministically over one mean service
       time so the first leases do not all carry time 0 *)
    let rng = Random.State.make [| cfg.seed; 0x0F; i |] in
    Heap.push events
      (Random.State.float rng cfg.mean_service_s)
      (Request (i, 0));
    schedule_churn i
  done;
  let now = ref 0.0 in
  let next_service i t =
    draws.(i) <- draws.(i) + 1;
    t +. service_s cfg ~worker:i ~draw:(draws.(i) - 1)
  in
  let fire_expiries t =
    while Server.next_expiry srv <= t do
      ignore (Server.expire srv ~now:(Server.next_expiry srv))
    done
  in
  let alive i = status.(i) = w_idle || status.(i) = w_busy in
  let finish i t =
    end_busy i t;
    status.(i) <- w_finished
  in
  let handle_request i t =
    if alive i then begin
      if Float.is_nan first_req.(i) then first_req.(i) <- t;
      match Server.handle srv ~now:t (Wire.Lease_req { worker = i; k = cfg.k }) with
      | Wire.Lease { tasks; expires_in_s = _ } ->
        sample grant_lat (t -. first_req.(i));
        first_req.(i) <- nan;
        status.(i) <- w_busy;
        busy_since.(i) <- t;
        batch.(i) <- Array.to_list tasks;
        batch_t0.(i) <- t;
        Heap.push events (next_service i t) (Complete_due (i, epoch.(i)))
      | Wire.Retry_after { delay_s } ->
        Heap.push events (t +. Float.max delay_s 1e-6) (Request (i, epoch.(i)))
      | Wire.Done _ -> finish i t
      | _ -> finish i t
    end
  in
  let handle_complete_due i t =
    if status.(i) = w_busy then begin
      match batch.(i) with
      | [] -> (* batch vanished to churn *) ()
      | task :: rest -> (
        batch.(i) <- rest;
        sample service_lat (t -. batch_t0.(i));
        match Server.handle srv ~now:t (Wire.Complete { worker = i; task }) with
        | Wire.Done _ -> finish i t
        | _ ->
          if rest <> [] then
            Heap.push events (next_service i t) (Complete_due (i, epoch.(i)))
          else begin
            end_busy i t;
            status.(i) <- w_idle;
            Heap.push events (t +. cfg.think_s) (Request (i, epoch.(i)))
          end)
    end
  in
  let handle_churn i kind t =
    (match kind with
    | Plan.Churn.Crash ->
      if status.(i) <> w_finished then begin
        incr crashed;
        epoch.(i) <- epoch.(i) + 1;
        end_busy i t;
        status.(i) <- w_dead;
        batch.(i) <- [];
        first_req.(i) <- nan
      end
    | Plan.Churn.Disconnect _downtime ->
      if alive i then begin
        incr disconnects;
        epoch.(i) <- epoch.(i) + 1;
        end_busy i t;
        status.(i) <- w_offline;
        batch.(i) <- [];
        first_req.(i) <- nan
      end
    | Plan.Churn.Rejoin ->
      if status.(i) = w_offline then begin
        epoch.(i) <- epoch.(i) + 1;
        status.(i) <- w_idle;
        Heap.push events t (Request (i, epoch.(i)))
      end);
    schedule_churn i
  in
  let running = ref true in
  while !running && not (Server.is_done srv) do
    match Heap.pop events with
    | None -> running := false
    | Some (t, ev) ->
      fire_expiries t;
      now := t;
      (match ev with
      | Request (i, ep) -> if ep = epoch.(i) then handle_request i t
      | Complete_due (i, ep) -> if ep = epoch.(i) then handle_complete_due i t
      | Churn_ev (i, kind) -> handle_churn i kind t)
  done;
  for i = 0 to w - 1 do
    end_busy i !now
  done;
  observe_utilization metrics busy !now;
  (match metrics with
  | None -> ()
  | Some m ->
    Ic_obs.Metrics.set (Ic_obs.Metrics.gauge m "served.makespan_s") !now;
    Ic_obs.Metrics.set
      (Ic_obs.Metrics.gauge m "served.inflight_final")
      (float_of_int (Server.stats srv).Server.inflight));
  let grants = to_array grant_lat in
  let services = to_array service_lat in
  {
    n_tasks = Server.n_tasks srv;
    completed = Server.completed srv;
    makespan_s = !now;
    wall_s = Monotonic.now () -. t_start;
    server = Server.stats srv;
    crashed = !crashed;
    disconnects = !disconnects;
    lease_grant_p50_s = quantile grants 0.5;
    lease_grant_p99_s = quantile grants 0.99;
    task_service_p50_s = quantile services 0.5;
    task_service_p99_s = quantile services 0.99;
    busy_s = busy;
  }

let run_virtual ?metrics ?sink ?live ?flight ~server:scfg cfg g =
  drive ?metrics (Server.create ?metrics ?sink ?live ?flight scfg g) cfg

(* ----------------------------------------------------------- chaos run *)

type chaos_result = {
  base : result;
  c2s : Chaos.stats;
  s2c : Chaos.stats;
  retries : int;
}

(* the chaos loop routes every message through a mangled link, so its
   event vocabulary adds deliveries and reply-timeout probes *)
type cev =
  | C_request of int * int
  | C_complete_due of int * int
  | C_churn of int * Plan.Churn.kind
  | C_to_server of Wire.msg
  | C_to_worker of int * int * Wire.msg  (* worker, epoch at emission *)
  | C_retry of int * int * int  (* worker, epoch, request seq *)

let run_chaos ?metrics ?sink ?live ?flight ~server:scfg ~wire
    ?(reply_timeout_s = 1.0) cfg g =
  if (not (Float.is_finite reply_timeout_s)) || reply_timeout_s <= 0.0 then
    invalid_arg "Hammer.run_chaos: reply_timeout_s must be finite and positive";
  let t_start = Monotonic.now () in
  let srv = Server.create ?metrics ?sink ?live ?flight scfg g in
  let w = cfg.workers in
  let c2s = Chaos.create wire ~dir:0 in
  let s2c = Chaos.create wire ~dir:1 in
  let status = Array.make w w_idle in
  let batch : int list array = Array.make w [] in
  let batch_t0 = Array.make w 0.0 in
  let draws = Array.make w 0 in
  let epoch = Array.make w 0 in
  let first_req = Array.make w nan in
  let churn = Array.init w (fun i -> Plan.Churn.create cfg.churn ~client:i) in
  let crashed = ref 0 in
  let disconnects = ref 0 in
  let retries = ref 0 in
  let grant_lat = samples () in
  let service_lat = samples () in
  let busy = Array.make w 0.0 in
  let busy_since = Array.make w nan in
  let end_busy i t =
    if not (Float.is_nan busy_since.(i)) then begin
      busy.(i) <- busy.(i) +. (t -. busy_since.(i));
      busy_since.(i) <- nan
    end
  in
  (* an unanswered request keeps its sequence number until any reply that
     can answer it lands; the timeout probe resends while it is open *)
  let seq = Array.make w 0 in
  let awaiting = Array.make w (-1) in
  let last_msg : Wire.msg option array = Array.make w None in
  let events : (float, cev) Heap.t = Heap.create () in
  let schedule_churn i =
    match Plan.Churn.next churn.(i) with
    | None -> ()
    | Some { Plan.Churn.time; kind } -> Heap.push events time (C_churn (i, kind))
  in
  for i = 0 to w - 1 do
    let rng = Random.State.make [| cfg.seed; 0x0F; i |] in
    Heap.push events
      (Random.State.float rng cfg.mean_service_s)
      (C_request (i, 0));
    schedule_churn i
  done;
  let now = ref 0.0 in
  let next_service i t =
    draws.(i) <- draws.(i) + 1;
    t +. service_s cfg ~worker:i ~draw:(draws.(i) - 1)
  in
  let fire_expiries t =
    while Server.next_expiry srv <= t do
      ignore (Server.expire srv ~now:(Server.next_expiry srv))
    done
  in
  let alive i = status.(i) = w_idle || status.(i) = w_busy in
  let finish i t =
    end_busy i t;
    status.(i) <- w_finished
  in
  let uplink i t msg =
    List.iter
      (fun (dt, m) -> Heap.push events dt (C_to_server m))
      (Chaos.send c2s ~now:t msg);
    Heap.push events (t +. reply_timeout_s) (C_retry (i, epoch.(i), seq.(i)))
  in
  let transmit i t msg =
    seq.(i) <- seq.(i) + 1;
    awaiting.(i) <- seq.(i);
    last_msg.(i) <- Some msg;
    uplink i t msg
  in
  let reset_session i =
    awaiting.(i) <- -1;
    last_msg.(i) <- None
  in
  let deliver i t m =
    match m with
    | Wire.Done _ ->
      reset_session i;
      if status.(i) <> w_dead then finish i t
    | Wire.Welcome _ -> ()
    | Wire.Lease { tasks; expires_in_s = _ } ->
      (* only an idle worker with an open request accepts; a duplicated
         or stale Lease is dropped here and its tasks re-issue by expiry *)
      if status.(i) = w_idle && awaiting.(i) >= 0 then begin
        reset_session i;
        if not (Float.is_nan first_req.(i)) then begin
          sample grant_lat (t -. first_req.(i));
          first_req.(i) <- nan
        end;
        status.(i) <- w_busy;
        busy_since.(i) <- t;
        batch.(i) <- Array.to_list tasks;
        batch_t0.(i) <- t;
        Heap.push events (next_service i t) (C_complete_due (i, epoch.(i)))
      end
    | Wire.Retry_after { delay_s } ->
      if status.(i) = w_idle && awaiting.(i) >= 0 then begin
        reset_session i;
        Heap.push events
          (t +. Float.max delay_s 1e-6)
          (C_request (i, epoch.(i)))
      end
    | Wire.Ack ->
      if status.(i) = w_busy && awaiting.(i) >= 0 then begin
        reset_session i;
        if batch.(i) <> [] then
          Heap.push events (next_service i t) (C_complete_due (i, epoch.(i)))
        else begin
          end_busy i t;
          status.(i) <- w_idle;
          Heap.push events (t +. cfg.think_s) (C_request (i, epoch.(i)))
        end
      end
    | _ -> ()
  in
  let handle_churn i kind t =
    (match kind with
    | Plan.Churn.Crash ->
      if status.(i) <> w_finished then begin
        incr crashed;
        epoch.(i) <- epoch.(i) + 1;
        end_busy i t;
        status.(i) <- w_dead;
        batch.(i) <- [];
        first_req.(i) <- nan;
        reset_session i
      end
    | Plan.Churn.Disconnect _ ->
      if alive i then begin
        incr disconnects;
        epoch.(i) <- epoch.(i) + 1;
        end_busy i t;
        status.(i) <- w_offline;
        batch.(i) <- [];
        first_req.(i) <- nan;
        reset_session i
      end
    | Plan.Churn.Rejoin ->
      if status.(i) = w_offline then begin
        epoch.(i) <- epoch.(i) + 1;
        status.(i) <- w_idle;
        Heap.push events t (C_request (i, epoch.(i)))
      end);
    schedule_churn i
  in
  let running = ref true in
  while !running && not (Server.is_done srv) do
    match Heap.pop events with
    | None -> running := false
    | Some (t, ev) ->
      fire_expiries t;
      now := t;
      (match ev with
      | C_request (i, ep) ->
        if ep = epoch.(i) && status.(i) = w_idle && awaiting.(i) < 0 then begin
          if Float.is_nan first_req.(i) then first_req.(i) <- t;
          transmit i t (Wire.Lease_req { worker = i; k = cfg.k })
        end
      | C_complete_due (i, ep) ->
        if ep = epoch.(i) && status.(i) = w_busy then begin
          match batch.(i) with
          | [] -> ()
          | task :: rest ->
            batch.(i) <- rest;
            sample service_lat (t -. batch_t0.(i));
            transmit i t (Wire.Complete { worker = i; task })
        end
      | C_churn (i, kind) -> handle_churn i kind t
      | C_to_server m -> (
        let reply = Server.handle srv ~now:t m in
        let target =
          match m with
          | Wire.Hello { worker }
          | Wire.Lease_req { worker; _ }
          | Wire.Complete { worker; _ }
          | Wire.Heartbeat { worker } ->
            worker
          | _ -> -1
        in
        if target >= 0 && target < w then
          List.iter
            (fun (dt, r) ->
              Heap.push events dt (C_to_worker (target, epoch.(target), r)))
            (Chaos.send s2c ~now:t reply))
      | C_to_worker (i, ep, m) -> if ep = epoch.(i) then deliver i t m
      | C_retry (i, ep, s) ->
        (* the request is still open: the frame (or its reply) died on
           the wire — resend the same message as a fresh frame *)
        if ep = epoch.(i) && awaiting.(i) = s && alive i then begin
          incr retries;
          match last_msg.(i) with
          | Some m -> uplink i t m
          | None -> ()
        end)
  done;
  for i = 0 to w - 1 do
    end_busy i !now
  done;
  observe_utilization metrics busy !now;
  (match metrics with
  | None -> ()
  | Some m ->
    Ic_obs.Metrics.set (Ic_obs.Metrics.gauge m "served.makespan_s") !now;
    Ic_obs.Metrics.set
      (Ic_obs.Metrics.gauge m "served.inflight_final")
      (float_of_int (Server.stats srv).Server.inflight);
    let link name (s : Chaos.stats) =
      let c field v =
        Ic_obs.Metrics.incr ~by:v
          (Ic_obs.Metrics.counter m
             (Printf.sprintf "served.chaos.%s.%s" name field))
      in
      c "frames" s.Chaos.frames;
      c "delivered" s.Chaos.delivered;
      c "dropped" s.Chaos.dropped;
      c "duplicated" s.Chaos.duplicated;
      c "reordered" s.Chaos.reordered;
      c "truncated" s.Chaos.truncated;
      c "corrupted" s.Chaos.corrupted;
      c "reader_errors" s.Chaos.reader_errors;
      c "resyncs" s.Chaos.resyncs
    in
    link "c2s" (Chaos.stats c2s);
    link "s2c" (Chaos.stats s2c);
    Ic_obs.Metrics.incr ~by:!retries
      (Ic_obs.Metrics.counter m "served.chaos.retries"));
  let grants = to_array grant_lat in
  let services = to_array service_lat in
  {
    base =
      {
        n_tasks = Server.n_tasks srv;
        completed = Server.completed srv;
        makespan_s = !now;
        wall_s = Monotonic.now () -. t_start;
        server = Server.stats srv;
        crashed = !crashed;
        disconnects = !disconnects;
        lease_grant_p50_s = quantile grants 0.5;
        lease_grant_p99_s = quantile grants 0.99;
        task_service_p50_s = quantile services 0.5;
        task_service_p99_s = quantile services 0.99;
        busy_s = busy;
      };
    c2s = Chaos.stats c2s;
    s2c = Chaos.stats s2c;
    retries = !retries;
  }
