module Plan = Ic_fault.Plan
module Heap = Ic_heuristics.Heap
module Monotonic = Ic_prof.Monotonic

type config = {
  workers : int;
  k : int;
  mean_service_s : float;
  pareto_alpha : float;
  think_s : float;
  churn : Plan.t;
  seed : int;
}

let config ?(workers = 1024) ?(k = 8) ?(mean_service_s = 0.01)
    ?(pareto_alpha = 1.5) ?(think_s = 0.001) ?(churn = Plan.none)
    ?(seed = 0x5E4D) () =
  if workers < 1 then invalid_arg "Hammer.config: workers must be >= 1";
  if k < 1 || k > 0xFFFF then
    invalid_arg "Hammer.config: k must be in 1..65535";
  if (not (Float.is_finite mean_service_s)) || mean_service_s <= 0.0 then
    invalid_arg "Hammer.config: mean_service_s must be finite and positive";
  if (not (Float.is_finite pareto_alpha)) || pareto_alpha <= 1.0 then
    invalid_arg "Hammer.config: pareto_alpha must be finite and > 1";
  if (not (Float.is_finite think_s)) || think_s < 0.0 then
    invalid_arg "Hammer.config: think_s must be finite and >= 0";
  { workers; k; mean_service_s; pareto_alpha; think_s; churn; seed }

(* bounded Pareto: x_m * u^(-1/alpha) has mean x_m * alpha/(alpha-1), so
   scale x_m to hit the configured mean; the 100x cap keeps a single
   draw from freezing a virtual run without flattening the tail *)
let service_s cfg ~worker ~draw =
  let rng = Random.State.make [| cfg.seed; 0x5E; worker; draw |] in
  let u = 1.0 -. Random.State.float rng 1.0 (* (0, 1] *) in
  let x_m = cfg.mean_service_s *. (cfg.pareto_alpha -. 1.0) /. cfg.pareto_alpha in
  Float.min (x_m *. (u ** (-1.0 /. cfg.pareto_alpha))) (100.0 *. cfg.mean_service_s)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let i = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
    s.(max 0 (min (n - 1) i))
  end

type result = {
  n_tasks : int;
  completed : int;
  makespan_s : float;
  wall_s : float;
  server : Server.stats;
  crashed : int;
  disconnects : int;
  lease_grant_p50_s : float;
  lease_grant_p99_s : float;
  task_service_p50_s : float;
  task_service_p99_s : float;
}

(* worker status *)
let w_idle = 0
let w_busy = 1
let w_offline = 2
let w_dead = 3
let w_finished = 4

(* worker events carry the worker's churn epoch: an event scheduled
   before a disconnect/crash must not fire into the session that follows
   the rejoin, so churn bumps the epoch and stale events are dropped *)
type ev =
  | Request of int * int  (** worker, epoch: asks for a lease *)
  | Complete_due of int * int
      (** worker, epoch: finishes the head of its batch *)
  | Churn_ev of int * Plan.Churn.kind

(* a growing float sample buffer; quantiles are computed at the end *)
type samples = { mutable xs : float array; mutable n : int }

let samples () = { xs = Array.make 1024 0.0; n = 0 }

let sample s x =
  if s.n = Array.length s.xs then begin
    let grown = Array.make (2 * s.n) 0.0 in
    Array.blit s.xs 0 grown 0 s.n;
    s.xs <- grown
  end;
  s.xs.(s.n) <- x;
  s.n <- s.n + 1

let to_array s = Array.sub s.xs 0 s.n

let run_virtual ?metrics ?sink ~server:scfg cfg g =
  let t_start = Monotonic.now () in
  let srv = Server.create ?metrics ?sink scfg g in
  let w = cfg.workers in
  let status = Array.make w w_idle in
  let batch : int list array = Array.make w [] in
  let batch_t0 : float array = Array.make w 0.0 in  (* alloc time of batch *)
  let draws = Array.make w 0 in
  let epoch = Array.make w 0 in
  let first_req = Array.make w nan in
  let churn = Array.init w (fun i -> Plan.Churn.create cfg.churn ~client:i) in
  let crashed = ref 0 in
  let disconnects = ref 0 in
  let grant_lat = samples () in
  let service_lat = samples () in
  let events : (float, ev) Heap.t = Heap.create () in
  let schedule_churn i =
    match Plan.Churn.next churn.(i) with
    | None -> ()
    | Some { Plan.Churn.time; kind } -> Heap.push events time (Churn_ev (i, kind))
  in
  for i = 0 to w - 1 do
    (* stagger the opening burst deterministically over one mean service
       time so the first leases do not all carry time 0 *)
    let rng = Random.State.make [| cfg.seed; 0x0F; i |] in
    Heap.push events
      (Random.State.float rng cfg.mean_service_s)
      (Request (i, 0));
    schedule_churn i
  done;
  let now = ref 0.0 in
  let next_service i t =
    draws.(i) <- draws.(i) + 1;
    t +. service_s cfg ~worker:i ~draw:(draws.(i) - 1)
  in
  let fire_expiries t =
    while Server.next_expiry srv <= t do
      ignore (Server.expire srv ~now:(Server.next_expiry srv))
    done
  in
  let alive i = status.(i) = w_idle || status.(i) = w_busy in
  let finish i = status.(i) <- w_finished in
  let handle_request i t =
    if alive i then begin
      if Float.is_nan first_req.(i) then first_req.(i) <- t;
      match Server.handle srv ~now:t (Wire.Lease_req { worker = i; k = cfg.k }) with
      | Wire.Lease { tasks; expires_in_s = _ } ->
        sample grant_lat (t -. first_req.(i));
        first_req.(i) <- nan;
        status.(i) <- w_busy;
        batch.(i) <- Array.to_list tasks;
        batch_t0.(i) <- t;
        Heap.push events (next_service i t) (Complete_due (i, epoch.(i)))
      | Wire.Retry_after { delay_s } ->
        Heap.push events (t +. Float.max delay_s 1e-6) (Request (i, epoch.(i)))
      | Wire.Done _ -> finish i
      | _ -> finish i
    end
  in
  let handle_complete_due i t =
    if status.(i) = w_busy then begin
      match batch.(i) with
      | [] -> (* batch vanished to churn *) ()
      | task :: rest -> (
        batch.(i) <- rest;
        sample service_lat (t -. batch_t0.(i));
        match Server.handle srv ~now:t (Wire.Complete { worker = i; task }) with
        | Wire.Done _ -> finish i
        | _ ->
          if rest <> [] then
            Heap.push events (next_service i t) (Complete_due (i, epoch.(i)))
          else begin
            status.(i) <- w_idle;
            Heap.push events (t +. cfg.think_s) (Request (i, epoch.(i)))
          end)
    end
  in
  let handle_churn i kind t =
    (match kind with
    | Plan.Churn.Crash ->
      if status.(i) <> w_finished then begin
        incr crashed;
        epoch.(i) <- epoch.(i) + 1;
        status.(i) <- w_dead;
        batch.(i) <- [];
        first_req.(i) <- nan
      end
    | Plan.Churn.Disconnect _downtime ->
      if alive i then begin
        incr disconnects;
        epoch.(i) <- epoch.(i) + 1;
        status.(i) <- w_offline;
        batch.(i) <- [];
        first_req.(i) <- nan
      end
    | Plan.Churn.Rejoin ->
      if status.(i) = w_offline then begin
        epoch.(i) <- epoch.(i) + 1;
        status.(i) <- w_idle;
        Heap.push events t (Request (i, epoch.(i)))
      end);
    schedule_churn i
  in
  let running = ref true in
  while !running && not (Server.is_done srv) do
    match Heap.pop events with
    | None -> running := false
    | Some (t, ev) ->
      fire_expiries t;
      now := t;
      (match ev with
      | Request (i, ep) -> if ep = epoch.(i) then handle_request i t
      | Complete_due (i, ep) -> if ep = epoch.(i) then handle_complete_due i t
      | Churn_ev (i, kind) -> handle_churn i kind t)
  done;
  (match metrics with
  | None -> ()
  | Some m ->
    Ic_obs.Metrics.set (Ic_obs.Metrics.gauge m "served.makespan_s") !now;
    Ic_obs.Metrics.set
      (Ic_obs.Metrics.gauge m "served.inflight_final")
      (float_of_int (Server.stats srv).Server.inflight));
  let grants = to_array grant_lat in
  let services = to_array service_lat in
  {
    n_tasks = Server.n_tasks srv;
    completed = Server.completed srv;
    makespan_s = !now;
    wall_s = Monotonic.now () -. t_start;
    server = Server.stats srv;
    crashed = !crashed;
    disconnects = !disconnects;
    lease_grant_p50_s = quantile grants 0.5;
    lease_grant_p99_s = quantile grants 0.99;
    task_service_p50_s = quantile services 0.5;
    task_service_p99_s = quantile services 0.99;
  }
