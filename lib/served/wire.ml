type msg =
  | Hello of { worker : int }
  | Lease_req of { worker : int; k : int }
  | Complete of { worker : int; task : int }
  | Heartbeat of { worker : int }
  | Drain
  | Welcome of { n_tasks : int; n_shards : int }
  | Lease of { tasks : int array; expires_in_s : float }
  | Retry_after of { delay_s : float }
  | Done of { completed : int; reissues : int }
  | Ack

let max_frame = 1 lsl 20
let max_lease_tasks = 4096
let max_u32 = 0xFFFFFFFF

(* tags: client messages in 1..15, server messages from 16 *)
let tag = function
  | Hello _ -> 1
  | Lease_req _ -> 2
  | Complete _ -> 3
  | Heartbeat _ -> 4
  | Drain -> 5
  | Welcome _ -> 16
  | Lease _ -> 17
  | Retry_after _ -> 18
  | Done _ -> 19
  | Ack -> 20

(* ------------------------------------------------------------ encode -- *)

let check_u32 name v =
  if v < 0 || v > max_u32 then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d out of u32 range" name v)

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_u16 buf v = Buffer.add_uint16_le buf v
let add_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let encode_payload buf m =
  Buffer.add_uint8 buf (tag m);
  match m with
  | Hello { worker } | Heartbeat { worker } ->
    check_u32 "worker" worker;
    add_u32 buf worker
  | Lease_req { worker; k } ->
    check_u32 "worker" worker;
    if k < 1 || k > 0xFFFF then
      invalid_arg (Printf.sprintf "Wire.encode: k %d out of range 1..65535" k);
    add_u32 buf worker;
    add_u16 buf k
  | Complete { worker; task } ->
    check_u32 "worker" worker;
    check_u32 "task" task;
    add_u32 buf worker;
    add_u32 buf task
  | Drain | Ack -> ()
  | Welcome { n_tasks; n_shards } ->
    check_u32 "n_tasks" n_tasks;
    check_u32 "n_shards" n_shards;
    add_u32 buf n_tasks;
    add_u32 buf n_shards
  | Lease { tasks; expires_in_s } ->
    let b = Array.length tasks in
    if b > max_lease_tasks then
      invalid_arg
        (Printf.sprintf "Wire.encode: lease of %d tasks exceeds %d" b
           max_lease_tasks);
    add_u16 buf b;
    Array.iter
      (fun t ->
        check_u32 "task" t;
        add_u32 buf t)
      tasks;
    add_f64 buf expires_in_s
  | Retry_after { delay_s } -> add_f64 buf delay_s
  | Done { completed; reissues } ->
    check_u32 "completed" completed;
    check_u32 "reissues" reissues;
    add_u32 buf completed;
    add_u32 buf reissues

let encode buf m =
  let p = Buffer.create 32 in
  encode_payload p m;
  add_u32 buf (Buffer.length p);
  Buffer.add_buffer buf p

let to_string m =
  let b = Buffer.create 32 in
  encode b m;
  Buffer.contents b

(* ------------------------------------------------------------ decode -- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* a cursor over the payload region; every read is bounds-checked against
   the frame end so a short payload is a clean [Bad], never an escape *)
type cursor = { b : Bytes.t; stop : int; mutable p : int }

let need c n what =
  if c.p + n > c.stop then
    bad "truncated payload: %s needs %d bytes, %d left" what n (c.stop - c.p)

let u8 c what =
  need c 1 what;
  let v = Bytes.get_uint8 c.b c.p in
  c.p <- c.p + 1;
  v

let u16 c what =
  need c 2 what;
  let v = Bytes.get_uint16_le c.b c.p in
  c.p <- c.p + 2;
  v

let u32 c what =
  need c 4 what;
  let v = Int32.to_int (Bytes.get_int32_le c.b c.p) land max_u32 in
  c.p <- c.p + 4;
  v

let f64 c what =
  need c 8 what;
  let v = Int64.float_of_bits (Bytes.get_int64_le c.b c.p) in
  c.p <- c.p + 8;
  v

let decode_payload c =
  let m =
    match u8 c "tag" with
    | 1 -> Hello { worker = u32 c "worker" }
    | 2 ->
      let worker = u32 c "worker" in
      let k = u16 c "k" in
      if k < 1 then bad "lease_req: k must be >= 1";
      Lease_req { worker; k }
    | 3 ->
      let worker = u32 c "worker" in
      Complete { worker; task = u32 c "task" }
    | 4 -> Heartbeat { worker = u32 c "worker" }
    | 5 -> Drain
    | 16 ->
      let n_tasks = u32 c "n_tasks" in
      Welcome { n_tasks; n_shards = u32 c "n_shards" }
    | 17 ->
      let b = u16 c "batch size" in
      if b > max_lease_tasks then
        bad "lease of %d tasks exceeds %d" b max_lease_tasks;
      let tasks = Array.init b (fun _ -> u32 c "task") in
      Lease { tasks; expires_in_s = f64 c "expires_in_s" }
    | 18 -> Retry_after { delay_s = f64 c "delay_s" }
    | 19 ->
      let completed = u32 c "completed" in
      Done { completed; reissues = u32 c "reissues" }
    | 20 -> Ack
    | t -> bad "unknown tag %d" t
  in
  if c.p <> c.stop then bad "%d trailing bytes inside frame" (c.stop - c.p);
  m

let decode_frame b ~pos ~avail =
  if avail < 4 then `Need_more
  else
    let len = Int32.to_int (Bytes.get_int32_le b pos) land max_u32 in
    if len < 1 then `Error (Printf.sprintf "bad frame length %d" len)
    else if len > max_frame then
      `Error (Printf.sprintf "oversized frame: %d bytes (max %d)" len max_frame)
    else if avail < 4 + len then `Need_more
    else
      match decode_payload { b; stop = pos + 4 + len; p = pos + 4 } with
      | m -> `Msg (m, 4 + len)
      | exception Bad e -> `Error e

(* ------------------------------------------------------------ reader -- *)

module Reader = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0 }
  let pending_bytes t = t.len

  let feed t src off n =
    if n < 0 || off < 0 || off + n > Bytes.length src then
      invalid_arg "Wire.Reader.feed: bad slice";
    let cap = Bytes.length t.buf in
    if t.start + t.len + n > cap then begin
      (* compact, growing if even a compacted buffer cannot take [n] *)
      let need = t.len + n in
      let cap' =
        let c = ref (max cap 4096) in
        while !c < need do
          c := !c * 2
        done;
        !c
      in
      let dst = if cap' > cap then Bytes.create cap' else t.buf in
      Bytes.blit t.buf t.start dst 0 t.len;
      t.buf <- dst;
      t.start <- 0
    end;
    Bytes.blit src off t.buf (t.start + t.len) n;
    t.len <- t.len + n

  let next t =
    match decode_frame t.buf ~pos:t.start ~avail:t.len with
    | `Need_more -> Ok None
    | `Error e -> Error e
    | `Msg (m, consumed) ->
      t.start <- t.start + consumed;
      t.len <- t.len - consumed;
      if t.len = 0 then t.start <- 0;
      Ok (Some m)
end
