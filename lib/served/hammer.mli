(** The load harness: simulate 10^4..10^6 transient workers against a
    {!Server}.

    Two transports, one worker model. {!run_virtual} drives the server
    core directly under a discrete-event virtual clock — no sockets, no
    wall time — so a fixed seed yields byte-identical metrics and traces
    at any worker count; it is the exactly-once/determinism acceptance
    vehicle and the lock-amortization bench. {!Tcp.hammer} runs the same
    worker model in real time against a listening server over loopback
    TCP.

    The worker model: each worker asks for a batch of [k] tasks, runs
    them sequentially with heavy-tailed (bounded Pareto) service
    latencies, reports each [Complete], thinks briefly, and asks again;
    [Retry_after] backpressure is honoured. Churn comes from an
    {!Ic_fault.Plan} churn stream ({!Ic_fault.Plan.Churn}): a crashed
    worker goes silent forever, a disconnected one drops its in-flight
    batch (so its leases expire and re-issue) and resumes on rejoin.
    Stragglers arise naturally from the Pareto tail: a worker slower
    than the lease expiry completes a task the server has already
    re-issued, exercising the duplicate-completion path. *)

type config = private {
  workers : int;
  k : int;  (** lease batch size requested per [Lease_req] *)
  mean_service_s : float;  (** mean task service time *)
  pareto_alpha : float;
      (** tail shape of the service distribution (> 1; smaller =
          heavier tail); draws are capped at 100 x the mean *)
  think_s : float;  (** idle time between finishing a batch and re-asking *)
  churn : Ic_fault.Plan.t;  (** crash/disconnect stream per worker *)
  seed : int;
}

val config :
  ?workers:int ->
  ?k:int ->
  ?mean_service_s:float ->
  ?pareto_alpha:float ->
  ?think_s:float ->
  ?churn:Ic_fault.Plan.t ->
  ?seed:int ->
  unit ->
  config
(** Defaults: 1024 workers, [k 8], [mean_service_s 0.01],
    [pareto_alpha 1.5], [think_s 0.001], no churn, seed [0x5E4D].
    Raises [Invalid_argument] on out-of-range values. *)

type result = {
  n_tasks : int;
  completed : int;  (** tasks applied exactly once; = [n_tasks] on success *)
  makespan_s : float;  (** virtual (or real) time of the last event *)
  wall_s : float;  (** real time the harness itself took *)
  server : Server.stats;
  crashed : int;  (** workers lost to the churn plan *)
  disconnects : int;
  lease_grant_p50_s : float;
      (** median time from a worker's first unanswered [Lease_req] to
          its [Lease] — 0 under no backpressure in virtual time *)
  lease_grant_p99_s : float;
  task_service_p50_s : float;  (** alloc-to-complete, per applied task *)
  task_service_p99_s : float;
  busy_s : float array;
      (** per-worker virtual time spent holding a lease batch; divided
          by [makespan_s] it is the worker's utilization, also emitted
          as the [served.worker_utilization] histogram when a metrics
          registry is given *)
}

val run_virtual :
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?live:Ic_obs.Live.t ->
  ?flight:Ic_obs.Flight.t ->
  server:Server.config ->
  config ->
  Ic_dag.Dag.t ->
  result
(** Run to completion (or to starvation, if churn killed every worker)
    under the virtual clock. [metrics]/[sink] are handed to the embedded
    {!Server}; with a fixed seed the registry's JSON dump and the trace
    are byte-identical across runs. [live]/[flight] are likewise handed
    to the server: the live registry mirrors the [served.*] meters
    concurrently-readably, and neither perturbs the deterministic
    [metrics]/[sink] artifacts. *)

val drive : ?metrics:Ic_obs.Metrics.t -> Server.t -> config -> result
(** {!run_virtual} against an {e existing} server — the recovery
    acceptance vehicle: journal a partial drain, crash, {!Server.recover}
    the state, then [drive] the worker fleet against the recovered server
    and watch it reach exactly-once completion. [metrics] only receives
    the harness-side instruments ([served.makespan_s],
    [served.inflight_final], [served.worker_utilization]); pass the same
    registry to {!Server.recover} for the server's own counters. *)

(** {1 Wire chaos}

    The same worker model with every message routed through a pair of
    {!Chaos} manglers (direction 0 client-to-server, direction 1 back),
    still in virtual time: drops, duplicates, reorders, truncations and
    bit flips hit real encoded frames and the server sees whatever
    survives the {!Wire.Reader}. Workers cover for the lossy link with a
    reply timeout: an unanswered request is re-sent as a fresh frame
    (counted in [retries]), so duplicate [Lease_req]s/[Complete]s reach
    the server and its absorption paths are exercised for real. A fixed
    seed still yields byte-identical metrics. *)

type chaos_result = {
  base : result;
  c2s : Chaos.stats;
  s2c : Chaos.stats;
  retries : int;  (** requests re-sent after an unanswered timeout *)
}

val run_chaos :
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?live:Ic_obs.Live.t ->
  ?flight:Ic_obs.Flight.t ->
  server:Server.config ->
  wire:Ic_fault.Plan.Wire.t ->
  ?reply_timeout_s:float ->
  config ->
  Ic_dag.Dag.t ->
  chaos_result
(** [reply_timeout_s] (default 1.0, positive) is how long a worker waits
    for a reply before re-sending. With [metrics], the per-link
    [served.chaos.{c2s,s2c}.*] counters and [served.chaos.retries] are
    recorded alongside the usual served instruments. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [0,1]: nearest-rank quantile of [xs]
    (sorted internally; nan on empty). Shared by both transports'
    reporting. *)

(** {1 Worker-model internals shared with the TCP driver} *)

val service_s : config -> worker:int -> draw:int -> float
(** The [draw]-th service latency of [worker]: deterministic bounded
    Pareto with the configured mean and tail. *)
