type pool = {
  lock : Mutex.t;
  mutable items : int array;
  mutable size : int;
}

type t = pool array

let create ~n_shards () =
  if n_shards < 1 then invalid_arg "Shards.create: n_shards must be >= 1";
  Array.init n_shards (fun _ ->
      { lock = Mutex.create (); items = Array.make 64 0; size = 0 })

let n_shards (t : t) = Array.length t

let check t ~shard =
  if shard < 0 || shard >= Array.length t then
    invalid_arg "Shards: shard out of range"

let push t ~shard v =
  check t ~shard;
  let p = t.(shard) in
  Mutex.lock p.lock;
  if p.size = Array.length p.items then begin
    let grown = Array.make (2 * p.size) 0 in
    Array.blit p.items 0 grown 0 p.size;
    p.items <- grown
  end;
  p.items.(p.size) <- v;
  p.size <- p.size + 1;
  Mutex.unlock p.lock

let pop_batch t ~shard ~max out =
  check t ~shard;
  if max > Array.length out then invalid_arg "Shards.pop_batch: out too short";
  let p = t.(shard) in
  Mutex.lock p.lock;
  let b = min max p.size in
  for i = 0 to b - 1 do
    out.(i) <- p.items.(p.size - 1 - i)
  done;
  p.size <- p.size - b;
  Mutex.unlock p.lock;
  b

let size t ~shard =
  check t ~shard;
  t.(shard).size

let total t = Array.fold_left (fun acc p -> acc + p.size) 0 t
