(** Deterministic wire-level chaos for one direction of a served link.

    A mangler sits between a message producer and the consumer's
    decoder: every frame {!send} pushes through it meets the seeded fate
    its (direction, frame-index) coordinates draw from an
    {!Ic_fault.Plan.Wire} plan — dropped, truncated, bit-flipped,
    duplicated, reordered past its successor, or delayed — and the
    surviving bytes flow through a real {!Wire.Reader}, so the decoder's
    [`Need_more`]/[`Error`] paths are exercised at the byte level.
    Everything is a pure function of (plan seed, dir, frame), which is
    what lets the chaos hammer assert byte-identical metrics across
    reruns.

    Stream health: a reader [`Error`] (e.g. a flipped length prefix) or
    a bounded-stall desync (a truncated frame swallowing its successors)
    resets the reader — the virtual-time analogue of dropping and
    re-opening a connection; swallowed messages count as drops by other
    means. The {!stats} record exposes every counter. *)

type stats = {
  mutable frames : int;  (** frames offered to this direction *)
  mutable delivered : int;  (** messages decoded and handed on *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;  (** pairs actually swapped *)
  mutable truncated : int;
  mutable corrupted : int;
  mutable reader_errors : int;
      (** [`Error`] results the mangled stream forced out of the reader
          (each one resets the stream) *)
  mutable resyncs : int;
      (** silent-desync resets: bytes pending, nothing decoding *)
}

type t

val create : Ic_fault.Plan.Wire.t -> dir:int -> t
(** One mangler per direction; [dir] keys the plan's decision stream
    (use distinct values for client-to-server and server-to-client). *)

val send : t -> now:float -> Wire.msg -> (float * Wire.msg) list
(** Push one message through the mangled link at virtual time [now];
    returns the messages that come out the consumer's side, each with
    its delivery time ([now] + the frame's drawn delay, epsilon-spaced
    to preserve intra-send order). May return zero (dropped, held for
    reorder, desynced) or several (duplicate, a released held frame)
    messages. Never raises. *)

val stats : t -> stats

val mangle :
  Ic_fault.Plan.Wire.t -> dir:int -> frame:int -> Bytes.t -> Bytes.t list
(** The TCP client's outbound path: mangle one encoded frame into the
    byte chunks to actually write. Only the byte-destructive actions
    (drop, truncate, corrupt) act; duplicate/reorder/delay are inert
    because a real socket's replies are FIFO-matched to requests and the
    kernel owns time. The caller keeps the frame counter. *)
