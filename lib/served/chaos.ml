(* A deterministic wire mangler for one direction of a served link.

   Frames pushed through [send] meet the fate their (direction, index)
   coordinates draw from the [Ic_fault.Plan.Wire] plan, then flow
   through a real [Wire.Reader] — the same incremental decoder the TCP
   loops use — so truncation and bit flips exercise the actual
   `Need_more`/`Error` machinery at the byte level, not a simulation of
   it. Byte-level actions (drop, truncate, corrupt, duplicate, reorder)
   decide what enters the reader; time-level actions (the exponential
   extra delay) decide when whatever decoded is delivered.

   A mangled stream can die two ways, and both must heal without wall
   clocks for the virtual harness to stay deterministic:
   - the reader reports [`Error`] (bit flip in a length prefix, payload
     garbage): the link resets its reader — the transport analogue of
     dropping and re-opening a connection;
   - the reader silently desynchronizes (a truncated frame's tail is
     eaten by the next frame's bytes and the advertised length keeps the
     reader waiting): bounded by [stall_limit] consecutive sends that
     decode nothing while bytes are pending, after which the link
     resets. Messages swallowed either way are just extra drops. *)

module Wire_plan = Ic_fault.Plan.Wire

type stats = {
  mutable frames : int;  (* frames offered to this direction *)
  mutable delivered : int;  (* messages decoded and handed on *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable truncated : int;
  mutable corrupted : int;
  mutable reader_errors : int;  (* `Error` results from the reader *)
  mutable resyncs : int;  (* desync resets without a reader error *)
}

let stats_zero () =
  {
    frames = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    truncated = 0;
    corrupted = 0;
    reader_errors = 0;
    resyncs = 0;
  }

(* consecutive message-less sends tolerated while bytes sit undecoded *)
let stall_limit = 3

type t = {
  plan : Wire_plan.t;
  dir : int;
  mutable frame : int;
  mutable reader : Wire.Reader.t;
  mutable held : Bytes.t option;  (* a reordered frame awaiting its successor *)
  mutable stalled : int;
  stats : stats;
  buf : Buffer.t;
}

let create plan ~dir =
  {
    plan;
    dir;
    frame = 0;
    reader = Wire.Reader.create ();
    held = None;
    stalled = 0;
    stats = stats_zero ();
    buf = Buffer.create 256;
  }

let stats t = t.stats

(* what a frame's bytes become on the wire, stats updated; [`Hold b]
   asks the caller to stash [b] behind the next frame *)
let mangle_chunks stats (d : Wire_plan.decision) b =
  let len = Bytes.length b in
  match d.Wire_plan.action with
  | Wire_plan.Drop ->
    stats.dropped <- stats.dropped + 1;
    `Chunks []
  | Wire_plan.Truncate ->
    stats.truncated <- stats.truncated + 1;
    let keep = max 1 (min (len - 1) (int_of_float (d.Wire_plan.cut *. float_of_int len))) in
    `Chunks [ Bytes.sub b 0 keep ]
  | Wire_plan.Corrupt ->
    stats.corrupted <- stats.corrupted + 1;
    let b = Bytes.copy b in
    let byte = (d.Wire_plan.flip lsr 3) mod len in
    let bit = d.Wire_plan.flip land 7 in
    Bytes.set b byte
      (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
    `Chunks [ b ]
  | Wire_plan.Duplicate ->
    stats.duplicated <- stats.duplicated + 1;
    `Chunks [ b; Bytes.copy b ]
  | Wire_plan.Reorder -> `Hold b
  | Wire_plan.Deliver -> `Chunks [ b ]

let reset_reader t =
  t.reader <- Wire.Reader.create ();
  t.stalled <- 0

let send t ~now msg =
  Buffer.clear t.buf;
  Wire.encode t.buf msg;
  let b = Buffer.to_bytes t.buf in
  let d = Wire_plan.decision t.plan ~dir:t.dir ~frame:t.frame in
  t.frame <- t.frame + 1;
  t.stats.frames <- t.stats.frames + 1;
  let chunks =
    match mangle_chunks t.stats d b with
    | `Hold b ->
      (* hold at most one frame; a second reorder while one is held
         releases the older frame first, which still swaps pairs *)
      (match t.held with
      | None ->
        t.held <- Some b;
        []
      | Some prev ->
        t.held <- Some b;
        [ prev ])
    | `Chunks cs -> (
      match t.held with
      | None -> cs
      | Some prev ->
        (* successor first, held frame after: the reorder lands *)
        t.stats.reordered <- t.stats.reordered + 1;
        t.held <- None;
        cs @ [ prev ])
  in
  List.iter (fun c -> Wire.Reader.feed t.reader c 0 (Bytes.length c)) chunks;
  let decoded = ref [] in
  let continue = ref true in
  while !continue do
    match Wire.Reader.next t.reader with
    | Ok (Some m) -> decoded := m :: !decoded
    | Ok None -> continue := false
    | Error _ ->
      t.stats.reader_errors <- t.stats.reader_errors + 1;
      reset_reader t;
      continue := false
  done;
  let decoded = List.rev !decoded in
  (* liveness under desync: if sends keep arriving and nothing decodes
     while bytes are pending, the stream is wedged — reset it *)
  if decoded = [] && Wire.Reader.pending_bytes t.reader > 0 then begin
    t.stalled <- t.stalled + 1;
    if t.stalled >= stall_limit then begin
      t.stats.resyncs <- t.stats.resyncs + 1;
      reset_reader t
    end
  end
  else if decoded <> [] then t.stalled <- 0;
  t.stats.delivered <- t.stats.delivered + List.length decoded;
  (* the epsilon spacing keeps one send's messages in order once they
     land in a caller's event heap *)
  List.mapi
    (fun i m -> (now +. d.Wire_plan.delay +. (1e-9 *. float_of_int i), m))
    decoded

(* The TCP client's outbound path: pure byte mangling, no reader and no
   virtual clock. Duplicate and reorder are deliberately inert here —
   the real socket's replies are matched to requests FIFO, so injecting
   them client-side would corrupt the harness's own bookkeeping rather
   than test the server; drop/truncate/corrupt are the actions that
   exercise the server's reader-error and reconnect paths. *)
let mangle plan ~dir ~frame b =
  let d = Wire_plan.decision plan ~dir ~frame in
  let len = Bytes.length b in
  match d.Wire_plan.action with
  | Wire_plan.Drop -> []
  | Wire_plan.Truncate ->
    let keep = max 1 (min (len - 1) (int_of_float (d.Wire_plan.cut *. float_of_int len))) in
    [ Bytes.sub b 0 keep ]
  | Wire_plan.Corrupt ->
    let b = Bytes.copy b in
    let byte = (d.Wire_plan.flip lsr 3) mod len in
    let bit = d.Wire_plan.flip land 7 in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
    [ b ]
  | Wire_plan.Duplicate | Wire_plan.Reorder | Wire_plan.Deliver -> [ b ]
