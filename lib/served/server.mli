(** The lease-serving state machine (sans-IO).

    A server leases eligible tasks of one [Ic_dag.Dag.t] — built in
    memory or mmap-loaded from a snapshot — to transient workers,
    exactly the client/server loop of the paper's model made concrete:
    the ELIGIBLE set is what is leasable, executing a task promotes its
    children, and the IC-quality of a schedule is how many leases the
    server can hand a burst of clients at any instant.

    The core is transport-free: {!handle} maps one client message to
    exactly one reply, {!expire} fires due lease timeouts, and the
    caller supplies time — wall-clock from the TCP driver, virtual time
    from the deterministic load harness, which is what makes identically
    seeded hammer runs byte-reproducible.

    State is sharded: [Ic_dag.Shard_view] keeps the atomic dependence
    counts, {!Shards} the per-shard locked pools of leasable ids, and a
    lease batch is filled from as few shards as possible so one lock
    acquisition amortizes over up to [max_lease] tasks.

    Invariants the suite asserts:
    - a task is applied (its completion propagated to successors)
      {e exactly once}: later [Complete]s for it count as duplicates and
      are acknowledged without effect;
    - a lease that outlives its expiry (from [recovery]'s liveness
      timeout, {!Ic_fault.Recovery.timeout_after}) is re-issued — the
      task returns to its shard's pool and a later completion by either
      holder is accepted;
    - the in-flight lease count never exceeds [max_inflight]: past it,
      or when eligibility runs dry, [Lease_req] is answered with
      [Retry_after] (admission control / backpressure). *)

type config = private {
  n_shards : int;
  max_lease : int;  (** cap on tasks per lease, <= {!Wire.max_lease_tasks} *)
  max_inflight : int;  (** bound on outstanding leased tasks *)
  expected_s : float;
      (** expected task service time — drives the recovery policy's
          liveness timeout *)
  retry_after_s : float;  (** backpressure hint sent with [Retry_after] *)
  recovery : Ic_fault.Recovery.t;
      (** lease-expiry policy; only [timeout_after] (and
          [detection_latency]) are consulted *)
}

val config :
  ?n_shards:int ->
  ?max_lease:int ->
  ?max_inflight:int ->
  ?expected_s:float ->
  ?retry_after_s:float ->
  ?recovery:Ic_fault.Recovery.t ->
  unit ->
  config
(** Defaults: 1 shard, [max_lease 64], [max_inflight 65536],
    [expected_s 1.0], [retry_after_s 0.01], and a recovery policy with
    [timeout_factor 4.0] (leases expire at [detection_latency + 4 *
    expected_s]). Raises [Invalid_argument] on out-of-range values. *)

type t

val create :
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?journal:Journal.t ->
  ?live:Ic_obs.Live.t ->
  ?flight:Ic_obs.Flight.t ->
  config ->
  Ic_dag.Dag.t ->
  t
(** [metrics], when given, receives the [served.*] counters, gauges and
    the [served.lease_service_s] latency histogram. [sink], when given,
    receives one [Task_alloc]/[Task_complete] pair per task and a
    [Timeout_fired] per re-issue, with the task's {e shard} as the
    client id — so the Perfetto export renders one track per shard —
    plus per-shard [Frontier_depth] and global [Inflight] counter-track
    points whenever those values move across a [handle].
    [journal], when given, makes the server durable: every lease grant
    and every applied completion is appended (the completion {e before}
    its [Ack] is produced), and the journal is compacted to a checkpoint
    every [checkpoint_every] completions. The journal must be fresh;
    raises [Invalid_argument] if it replayed prior records — that is
    {!recover}'s job.

    [live], when given, mirrors the same [served.*] meters into a
    domain-safe {!Ic_obs.Live} registry — including the
    [served.frontier_depth] and [served.inflight] gauges sampled after
    every [handle] — which is what the scrape endpoint and [ic_sched
    top] read while the server is running. [flight], when given, writes
    every allocation, completion and expiry into the crash-surviving
    flight-recorder ring. Neither affects the deterministic [metrics] /
    [sink] artifacts. *)

val recover :
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?live:Ic_obs.Live.t ->
  ?flight:Ic_obs.Flight.t ->
  journal:Journal.t ->
  config ->
  Ic_dag.Dag.t ->
  (t, string) result
(** Rebuild a crashed server from its journal. The journal's records
    (last checkpoint + tail) are folded into the done set; done tasks
    are replayed through the dependence view, which re-derives the
    Blocked/Ready byte states exactly — so a journaled completion is
    never re-leased, while tasks that were {e leased but not journaled
    complete} at the crash return to their pools and may be granted a
    second time (counted in [stats.recovered_reissues] and the
    [served.recovered_reissues] counter; the prior holder's late
    [Complete] is absorbed as a duplicate). [stats.completions] (and the
    [served.completions] counter) are primed with the restored count, so
    a drained recovered server reports [completions = n_tasks]. The
    journal is compacted immediately and the server keeps appending to
    it. [Error] when the journal does not belong to this dag (task ids
    or checkpoint size out of range). *)

val handle : t -> now:float -> Wire.msg -> Wire.msg
(** Process one client message at time [now] (seconds, any monotone
    origin) and return the reply. Server-side messages and out-of-range
    ids are counted as protocol errors and answered with [Ack]. [now]
    must be non-decreasing across calls. *)

val next_expiry : t -> float
(** Time at which the earliest outstanding lease expires; [infinity]
    when none (or timeouts are disabled). The driver uses it to bound
    its select/sleep. *)

val expire : t -> now:float -> int
(** Fire every lease expiry due at or before [now]: each such task
    returns to its shard's pool for re-issue. Returns how many were
    re-issued. *)

val is_done : t -> bool
val n_tasks : t -> int
val completed : t -> int

type stats = {
  leases : int;  (** [Lease] replies sent *)
  leased_tasks : int;  (** task ids handed out, re-issues included *)
  completions : int;  (** completions applied (= n when done) *)
  duplicate_completes : int;  (** [Complete]s for already-done tasks *)
  reissues : int;  (** leases expired and returned to a pool *)
  retry_afters : int;  (** backpressure replies *)
  heartbeats : int;
  protocol_errors : int;
  inflight : int;  (** currently outstanding leased tasks *)
  recovered_reissues : int;
      (** tasks found leased-but-incomplete by {!recover} and made
          leasable again; 0 for a server born with {!create} *)
  recovered_tasks : int;  (** completions restored from the journal *)
}

val stats : t -> stats

val shard_of : t -> int -> int
(** The owning shard of a task (for labelling). *)
