(** Per-shard eligibility pools: the locked half of the sharded
    frontier.

    [Ic_dag.Shard_view] owns the lock-free dependence counts; this
    module owns the disjoint pools of currently leasable task ids, one
    LIFO stack per shard, each behind its own mutex. The batching
    contract that makes serving cheap lives here: {!pop_batch} takes the
    shard's lock {e once} and hands back up to [max] tasks under it, so
    a lease of k tasks costs one acquisition instead of k — the
    amortization the served bench measures (k=16 vs k=1).

    Entries are plain ints and the pools are oblivious to task state;
    the server layers lazy invalidation on top (an entry whose task is
    no longer Ready is discarded after the pop). *)

type t

val create : n_shards:int -> unit -> t
(** [n_shards >= 1] empty pools. *)

val n_shards : t -> int

val push : t -> shard:int -> int -> unit
(** Append a task id to a shard's pool. One lock acquisition. *)

val pop_batch : t -> shard:int -> max:int -> int array -> int
(** [pop_batch t ~shard ~max out] moves up to [max] ids from the shard's
    pool into [out.(0 ..)], newest first, under a single lock
    acquisition; returns how many. [max <= Array.length out]. *)

val size : t -> shard:int -> int
(** Current pool depth (racy snapshot — exact only while externally
    synchronized). *)

val total : t -> int
(** Sum of {!size} over shards; same caveat. *)
