(** The server's write-ahead journal: crash durability for exactly-once
    serving.

    An append-only log of the two events that matter across a restart —
    completions applied and lease batches granted — plus periodic
    {e checkpoints} that compact the log to a single snapshot record so
    recovery replays only the tail.

    On disk: an 8-byte magic ("ICWAL001"), then
    [u32 length | u32 CRC32(payload) | payload] records, little-endian:

    - tag 1, {!Complete}: [u32 task] — the task was applied; journaled
      before the [Ack] leaves the server, so a journaled completion is
      never re-leased after a crash.
    - tag 2, {!Lease}: [u16 count, count * u32 task] — a batch was
      granted. Lease records do not affect the recovered dependence
      state (the Ready frontier is re-derived from completions); they
      exist so recovery can count how many in-flight tasks it re-issued
      ([served.recovered_reissues]).
    - tag 3, {!Checkpoint}: [u32 n, ceil(n/8) done bits, ceil(n/8)
      leased bits] — a snapshot; everything before it is redundant.

    Durability contract: every {!append} flushes to the OS, so a
    [kill -9] loses at most the record mid-write; [~fsync:true]
    additionally syncs the file per record and survives machine crashes.
    A checkpoint rewrites the journal through a temporary file and an
    atomic [rename], and is always fsynced.

    {!open_} on an existing file validates every record and {e truncates}
    the first torn or CRC-failing record and everything after it — a
    crashed append leaves an intact prefix, never a crash at recovery
    time. *)

type record =
  | Complete of int
  | Lease of int array
  | Checkpoint of { n : int; done_ : Bytes.t; leased : Bytes.t }
      (** [n] tasks; bit [v land 7] of byte [v lsr 3] is task [v]'s
          done / leased flag *)

type t

val open_ : ?fsync:bool -> ?checkpoint_every:int -> string -> (t, string) result
(** Open (creating if absent) the journal at a path. [fsync] (default
    false) syncs per append; [checkpoint_every] (default 1024, >= 1) is
    the number of {!Complete} appends after which {!checkpoint_due}
    turns true. An existing file is scanned: its intact record prefix
    becomes {!replayed}, and any torn tail is truncated in place
    ({!truncated_bytes}). [Error] on I/O failure or a file that is not a
    journal. *)

val replayed : t -> record list
(** The records recovered at {!open_}, oldest first; [[]] for a fresh
    journal. Replay state from the {e last} {!Checkpoint} onward. *)

val truncated_bytes : t -> int
(** How many trailing bytes {!open_} discarded as torn/corrupt. *)

val path : t -> string

val append : t -> record -> unit
(** Append one record and flush (+fsync when configured). *)

val checkpoint_due : t -> bool
(** Have [checkpoint_every] completions been appended since the last
    checkpoint? The server consults this after each completion. *)

val checkpoint : t -> n:int -> done_:Bytes.t -> leased:Bytes.t -> unit
(** Compact: atomically replace the journal with a single
    {!Checkpoint} record (tmp write, fsync, rename). Bitmaps must be
    [ceil (n/8)] bytes. *)

val close : t -> unit

(** {1 Wire-format internals, exposed for tests} *)

val crc32 : Bytes.t -> int -> int -> int
(** CRC-32 (the zlib/PNG polynomial) of a byte range. *)

val bitmap_len : int -> int
(** [ceil (n/8)]. *)
