module Heap = Ic_heuristics.Heap
module Monotonic = Ic_prof.Monotonic
module Plan = Ic_fault.Plan

let send_all fd bytes len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

(* ---------------------------------------------------------------- serve *)

type conn = { fd : Unix.file_descr; reader : Wire.Reader.t }

let serve ?metrics ?sink ?on_listen ?(once = false) ~port scfg dag =
  let srv = Server.create ?metrics ?sink scfg dag in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lsock 128;
  let bound =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (match on_listen with Some f -> f bound | None -> ());
  let t0 = Monotonic.now () in
  let now () = Monotonic.now () -. t0 in
  let conns = ref [] in
  let accepted = ref 0 in
  let rbuf = Bytes.create 65536 in
  let out = Buffer.create 4096 in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns
  in
  let running = ref true in
  while !running do
    let t = now () in
    ignore (Server.expire srv ~now:t);
    let next = Server.next_expiry srv in
    let timeout =
      if Float.is_finite next then Float.max 0.001 (Float.min 0.05 (next -. t))
      else 0.05
    in
    let fds = lsock :: List.map (fun c -> c.fd) !conns in
    let ready, _, _ =
      try Unix.select fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd == lsock then begin
          match Unix.accept lsock with
          | cfd, _ ->
            incr accepted;
            conns := { fd = cfd; reader = Wire.Reader.create () } :: !conns
          | exception Unix.Unix_error _ -> ()
        end
        else
          match List.find_opt (fun c -> c.fd == fd) !conns with
          | None -> ()
          | Some c -> (
            let n =
              try Unix.read c.fd rbuf 0 (Bytes.length rbuf)
              with Unix.Unix_error _ -> 0
            in
            if n = 0 then close_conn c
            else begin
              Wire.Reader.feed c.reader rbuf 0 n;
              let drop = ref false in
              let continue = ref true in
              while !continue do
                match Wire.Reader.next c.reader with
                | Ok None -> continue := false
                | Error _ ->
                  drop := true;
                  continue := false
                | Ok (Some msg) -> (
                  let reply = Server.handle srv ~now:(now ()) msg in
                  Buffer.clear out;
                  Wire.encode out reply;
                  try send_all c.fd (Buffer.to_bytes out) (Buffer.length out)
                  with Unix.Unix_error _ ->
                    drop := true;
                    continue := false)
              done;
              if !drop then close_conn c
            end))
      ready;
    if once && !accepted > 0 && !conns = [] then running := false
  done;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  Server.stats srv

(* --------------------------------------------------------------- hammer *)

type hammer_result = {
  workers : int;
  completes_sent : int;
  done_seen : bool;
  crashed : int;
  disconnects : int;
  wall_s : float;
  lease_grant_p50_s : float;
  lease_grant_p99_s : float;
  task_service_p50_s : float;
  task_service_p99_s : float;
}

(* worker status, as in Hammer's virtual loop *)
let w_idle = 0
let w_busy = 1
let w_offline = 2
let w_dead = 3
let w_finished = 4

type ev =
  | Request of int * int
  | Complete_due of int * int
  | Churn_ev of int * Plan.Churn.kind

(* an outstanding request on a connection, awaiting its FIFO-matched
   reply; [comp] tells a [Lease_req] reply apart from a [Complete] one,
   [ep] lets a reply to a pre-churn request be discarded *)
type pending = { p_worker : int; p_ep : int; p_comp : bool }

let hammer ?(host = "127.0.0.1") ?(connections = 4) ~port (cfg : Hammer.config)
    =
  let t_start = Monotonic.now () in
  let elapsed () = Monotonic.now () -. t_start in
  let w = cfg.Hammer.workers in
  let nconn = max 1 (min connections w) in
  let addr =
    Unix.ADDR_INET
      ( (if host = "127.0.0.1" || host = "localhost" then
           Unix.inet_addr_loopback
         else Unix.inet_addr_of_string host),
        port )
  in
  let socks =
    Array.init nconn (fun _ ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect s addr;
        (try Unix.setsockopt s Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        s)
  in
  let readers = Array.init nconn (fun _ -> Wire.Reader.create ()) in
  let pendings : pending Queue.t array =
    Array.init nconn (fun _ -> Queue.create ())
  in
  let open_ = Array.make nconn true in
  let total_pending = ref 0 in
  let conn_of i = i mod nconn in
  let status = Array.make w w_idle in
  let batch : int list array = Array.make w [] in
  let batch_t0 = Array.make w 0.0 in
  let draws = Array.make w 0 in
  let epoch = Array.make w 0 in
  let first_req = Array.make w nan in
  let churn = Array.init w (fun i -> Plan.Churn.create cfg.Hammer.churn ~client:i) in
  let settled = ref 0 in
  let crashed = ref 0 in
  let disconnects = ref 0 in
  let completes_sent = ref 0 in
  let done_seen = ref false in
  let grant_lat = ref [] in
  let service_lat = ref [] in
  let events : (float, ev) Heap.t = Heap.create () in
  let out = Buffer.create 256 in
  let rbuf = Bytes.create 65536 in
  let settle i st =
    if status.(i) <> w_finished && status.(i) <> w_dead then incr settled;
    status.(i) <- st
  in
  let close_conn c =
    if open_.(c) then begin
      open_.(c) <- false;
      (try Unix.close socks.(c) with Unix.Unix_error _ -> ());
      (* outstanding replies on this connection will never arrive *)
      total_pending := !total_pending - Queue.length pendings.(c);
      Queue.clear pendings.(c)
    end
  in
  let send i msg ~comp =
    let c = conn_of i in
    if not open_.(c) then settle i w_finished
    else begin
      Buffer.clear out;
      Wire.encode out msg;
      match send_all socks.(c) (Buffer.to_bytes out) (Buffer.length out) with
      | () ->
        Queue.add { p_worker = i; p_ep = epoch.(i); p_comp = comp } pendings.(c);
        incr total_pending
      | exception Unix.Unix_error _ ->
        close_conn c;
        settle i w_finished
    end
  in
  let alive i = status.(i) = w_idle || status.(i) = w_busy in
  let schedule_churn i =
    match Plan.Churn.next churn.(i) with
    | None -> ()
    | Some { Plan.Churn.time; kind } -> Heap.push events time (Churn_ev (i, kind))
  in
  for i = 0 to w - 1 do
    let rng = Random.State.make [| cfg.Hammer.seed; 0x0F; i |] in
    Heap.push events
      (Random.State.float rng cfg.Hammer.mean_service_s)
      (Request (i, 0));
    schedule_churn i
  done;
  let next_service i =
    draws.(i) <- draws.(i) + 1;
    Hammer.service_s cfg ~worker:i ~draw:(draws.(i) - 1)
  in
  let dispatch_event ev t =
    match ev with
    | Request (i, ep) ->
      if ep = epoch.(i) && alive i then begin
        if Float.is_nan first_req.(i) then first_req.(i) <- t;
        send i (Wire.Lease_req { worker = i; k = cfg.Hammer.k }) ~comp:false
      end
    | Complete_due (i, ep) ->
      if ep = epoch.(i) && status.(i) = w_busy then begin
        match batch.(i) with
        | [] -> ()
        | task :: rest ->
          batch.(i) <- rest;
          service_lat := (t -. batch_t0.(i)) :: !service_lat;
          incr completes_sent;
          send i (Wire.Complete { worker = i; task }) ~comp:true
      end
    | Churn_ev (i, kind) ->
      (match kind with
      | Plan.Churn.Crash ->
        if status.(i) <> w_finished then begin
          incr crashed;
          epoch.(i) <- epoch.(i) + 1;
          settle i w_dead;
          batch.(i) <- [];
          first_req.(i) <- nan
        end
      | Plan.Churn.Disconnect _ ->
        if alive i then begin
          incr disconnects;
          epoch.(i) <- epoch.(i) + 1;
          status.(i) <- w_offline;
          batch.(i) <- [];
          first_req.(i) <- nan
        end
      | Plan.Churn.Rejoin ->
        if status.(i) = w_offline then begin
          epoch.(i) <- epoch.(i) + 1;
          status.(i) <- w_idle;
          Heap.push events t (Request (i, epoch.(i)))
        end);
      schedule_churn i
  in
  let handle_reply c msg =
    let { p_worker = i; p_ep; p_comp } = Queue.pop pendings.(c) in
    decr total_pending;
    match msg with
    | Wire.Done _ ->
      done_seen := true;
      if alive i then settle i w_finished
    | _ when p_ep <> epoch.(i) -> ()
    | Wire.Lease { tasks; expires_in_s = _ } ->
      let t = elapsed () in
      grant_lat := (t -. first_req.(i)) :: !grant_lat;
      first_req.(i) <- nan;
      status.(i) <- w_busy;
      batch.(i) <- Array.to_list tasks;
      batch_t0.(i) <- t;
      Heap.push events (t +. next_service i) (Complete_due (i, epoch.(i)))
    | Wire.Retry_after { delay_s } ->
      Heap.push events
        (elapsed () +. Float.max delay_s 1e-4)
        (Request (i, epoch.(i)))
    | Wire.Ack ->
      let t = elapsed () in
      if p_comp && batch.(i) <> [] then
        Heap.push events (t +. next_service i) (Complete_due (i, epoch.(i)))
      else begin
        status.(i) <- w_idle;
        Heap.push events (t +. cfg.Hammer.think_s) (Request (i, epoch.(i)))
      end
    | _ -> ()
  in
  let progress_possible () =
    (not (Heap.is_empty events)) || !total_pending > 0
  in
  while !settled < w && progress_possible () do
    (* fire every event that is due *)
    let due = ref true in
    while !due do
      match Heap.peek events with
      | Some (te, _) when te <= elapsed () -> (
        match Heap.pop events with
        | Some (_, ev) -> dispatch_event ev (elapsed ())
        | None -> due := false)
      | _ -> due := false
    done;
    if !settled < w && progress_possible () then begin
      let timeout =
        match Heap.peek events with
        | Some (te, _) -> Float.max 0.0 (Float.min 0.05 (te -. elapsed ()))
        | None -> 0.05
      in
      let fds = ref [] in
      Array.iteri (fun c s -> if open_.(c) then fds := s :: !fds) socks;
      if !fds = [] then ()
      else begin
        let ready, _, _ =
          try Unix.select !fds [] [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            let c = ref (-1) in
            Array.iteri (fun j s -> if s == fd then c := j) socks;
            let c = !c in
            if c >= 0 && open_.(c) then begin
              let n =
                try Unix.read socks.(c) rbuf 0 (Bytes.length rbuf)
                with Unix.Unix_error _ -> 0
              in
              if n = 0 then close_conn c
              else begin
                Wire.Reader.feed readers.(c) rbuf 0 n;
                let continue = ref true in
                while !continue do
                  match Wire.Reader.next readers.(c) with
                  | Ok None -> continue := false
                  | Error _ ->
                    close_conn c;
                    continue := false
                  | Ok (Some msg) ->
                    if Queue.is_empty pendings.(c) then begin
                      (* unsolicited reply: protocol break, drop the conn *)
                      close_conn c;
                      continue := false
                    end
                    else handle_reply c msg
                done
              end
            end)
          ready
      end
    end
  done;
  Array.iteri (fun c _ -> close_conn c) socks;
  let grants = Array.of_list !grant_lat in
  let services = Array.of_list !service_lat in
  {
    workers = w;
    completes_sent = !completes_sent;
    done_seen = !done_seen;
    crashed = !crashed;
    disconnects = !disconnects;
    wall_s = elapsed ();
    lease_grant_p50_s = Hammer.quantile grants 0.5;
    lease_grant_p99_s = Hammer.quantile grants 0.99;
    task_service_p50_s = Hammer.quantile services 0.5;
    task_service_p99_s = Hammer.quantile services 0.99;
  }
