module Heap = Ic_heuristics.Heap
module Monotonic = Ic_prof.Monotonic
module Plan = Ic_fault.Plan
module Recovery = Ic_fault.Recovery
module Live = Ic_obs.Live

(* ------------------------------------------------------- I/O hardening *)

(* EINTR is a retry, not a failure, on every blocking call; a peer that
   vanished (ECONNRESET/EPIPE) is a connection-level event the caller
   turns into close+log, never an exception out of the loop.

   For EPIPE to arrive as an error at all, SIGPIPE's default
   kill-the-process disposition must go: forced (process-wide) on entry
   to both drivers — a chaos-dropped connection must not take the whole
   harness down with it. *)

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let rec write_retry fd b off len =
  try Unix.write fd b off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd b off len

let send_all fd bytes len =
  let off = ref 0 in
  while !off < len do
    off := !off + write_retry fd bytes !off (len - !off)
  done

let rec read_retry fd buf =
  try Unix.read fd buf 0 (Bytes.length buf)
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf

let rec select_retry r w e timeout =
  try Unix.select r w e timeout
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry r w e timeout

(* ---------------------------------------------------------------- serve *)

type conn = { fd : Unix.file_descr; reader : Wire.Reader.t }

(* one OpenMetrics scrape response; we never parse the request — any
   bytes on a telemetry connection ask for the one page there is *)
let scrape_response live =
  let body = Live.openmetrics live in
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: application/openmetrics-text; version=1.0.0; \
     charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

let csv_header =
  "time_s,completions,leases,leased_tasks,inflight,frontier_depth,reissues,\
   retry_afters,rss_bytes\n"

let serve ?metrics ?sink ?on_listen ?(once = false) ?journal ?(recover = false)
    ?(log = fun _ -> ()) ?live ?flight ?telemetry_port ?on_telemetry_listen
    ?telemetry_csv ?(telemetry_every_s = 1.0) ~port scfg dag =
  Lazy.force ignore_sigpipe;
  (* the scrape endpoint and the CSV both read the Live registry; make
     one internally when telemetry is requested without one *)
  let live =
    match (live, telemetry_port, telemetry_csv) with
    | (Some _ as l), _, _ -> l
    | None, None, None -> None
    | None, _, _ -> Some (Live.create ())
  in
  let srv =
    match journal with
    | Some j when recover -> (
      match Server.recover ?metrics ?sink ?live ?flight ~journal:j scfg dag with
      | Ok t -> t
      | Error e -> invalid_arg ("Tcp.serve: recovery failed: " ^ e))
    | _ -> Server.create ?metrics ?sink ?journal ?live ?flight scfg dag
  in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lsock 128;
  let bound =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (match on_listen with Some f -> f bound | None -> ());
  let tsock =
    match telemetry_port with
    | None -> None
    | Some tp ->
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, tp));
      Unix.listen s 16;
      let tp_bound =
        match Unix.getsockname s with Unix.ADDR_INET (_, p) -> p | _ -> tp
      in
      (match on_telemetry_listen with Some f -> f tp_bound | None -> ());
      Some s
  in
  let is_tsock fd = match tsock with Some s -> fd == s | None -> false in
  let tconns = ref [] in
  let csv_oc =
    match telemetry_csv with
    | None -> None
    | Some path ->
      let oc = open_out path in
      output_string oc csv_header;
      flush oc;
      Some oc
  in
  let last_csv = ref neg_infinity in
  let t0 = Monotonic.now () in
  let now () = Monotonic.now () -. t0 in
  let csv_row t =
    match (csv_oc, live) with
    | Some oc, Some l ->
      let st = Server.stats srv in
      Printf.fprintf oc "%.3f,%d,%d,%d,%d,%d,%d,%d,%d\n" t
        st.Server.completions st.Server.leases st.Server.leased_tasks
        st.Server.inflight
        (int_of_float
           (Live.gauge_value (Live.gauge l "served.frontier_depth")))
        st.Server.reissues st.Server.retry_afters (Live.rss_bytes ());
      flush oc
    | _ -> ()
  in
  let conns = ref [] in
  let accepted = ref 0 in
  let rbuf = Bytes.create 65536 in
  let out = Buffer.create 4096 in
  let close_conn ?reason c =
    (match reason with Some r -> log r | None -> ());
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns
  in
  let running = ref true in
  while !running do
    let t = now () in
    ignore (Server.expire srv ~now:t);
    if csv_oc <> None && t -. !last_csv >= telemetry_every_s then begin
      last_csv := t;
      csv_row t
    end;
    let next = Server.next_expiry srv in
    let timeout =
      if Float.is_finite next then Float.max 0.001 (Float.min 0.05 (next -. t))
      else 0.05
    in
    let fds = lsock :: List.map (fun c -> c.fd) !conns in
    let fds = match tsock with Some s -> s :: fds | None -> fds in
    let fds = List.rev_append !tconns fds in
    let ready, _, _ = select_retry fds [] [] timeout in
    List.iter
      (fun fd ->
        if fd == lsock then begin
          match Unix.accept lsock with
          | cfd, _ ->
            incr accepted;
            conns := { fd = cfd; reader = Wire.Reader.create () } :: !conns
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> ()
        end
        else if is_tsock fd then begin
          match Unix.accept fd with
          | cfd, _ -> tconns := cfd :: !tconns
          | exception Unix.Unix_error _ -> ()
        end
        else if List.memq fd !tconns then begin
          (* one-shot scrape: any readable bytes (or a close) on a
             telemetry connection get the whole exposition back *)
          tconns := List.filter (fun f -> f != fd) !tconns;
          (try ignore (read_retry fd rbuf) with Unix.Unix_error _ -> ());
          (match live with
          | Some l ->
            let resp = Bytes.of_string (scrape_response l) in
            (try send_all fd resp (Bytes.length resp)
             with Unix.Unix_error _ -> ())
          | None -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else
          match List.find_opt (fun c -> c.fd == fd) !conns with
          | None -> ()
          | Some c -> (
            let n =
              match read_retry c.fd rbuf with
              | n -> n
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                log "read: connection reset by peer";
                0
              | exception Unix.Unix_error (e, _, _) ->
                log ("read: " ^ Unix.error_message e);
                0
            in
            if n = 0 then close_conn c
            else begin
              Wire.Reader.feed c.reader rbuf 0 n;
              let drop = ref None in
              let continue = ref true in
              while !continue do
                match Wire.Reader.next c.reader with
                | Ok None -> continue := false
                | Error e ->
                  drop := Some ("wire: " ^ e);
                  continue := false
                | Ok (Some msg) -> (
                  let reply = Server.handle srv ~now:(now ()) msg in
                  Buffer.clear out;
                  Wire.encode out reply;
                  try send_all c.fd (Buffer.to_bytes out) (Buffer.length out)
                  with
                  | Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE) as e, _, _) ->
                    drop := Some ("write: " ^ Unix.error_message e);
                    continue := false
                  | Unix.Unix_error (e, _, _) ->
                    drop := Some ("write: " ^ Unix.error_message e);
                    continue := false)
              done;
              match !drop with
              | Some reason -> close_conn ~reason c
              | None -> ()
            end))
      ready;
    (* [once]: stay up while clients may still reconnect — exit only when
       the drain actually finished and the last connection has gone; a
       mid-drain disconnect (chaos, a restarting hammer) is a window, not
       the end *)
    if once && !accepted > 0 && !conns = [] && Server.is_done srv then
      running := false
  done;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  (match tsock with
  | Some s -> ( try Unix.close s with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    !tconns;
  (match csv_oc with
  | Some oc ->
    csv_row (now ());
    close_out_noerr oc
  | None -> ());
  Server.stats srv

(* --------------------------------------------------------------- hammer *)

type hammer_result = {
  workers : int;
  completes_sent : int;
  done_seen : bool;
  crashed : int;
  disconnects : int;
  reconnects : int;
  wall_s : float;
  lease_grant_p50_s : float;
  lease_grant_p99_s : float;
  task_service_p50_s : float;
  task_service_p99_s : float;
  busy_s : float array;
}

(* worker status, as in Hammer's virtual loop *)
let w_idle = 0
let w_busy = 1
let w_offline = 2
let w_dead = 3
let w_finished = 4

type ev =
  | Request of int * int
  | Complete_due of int * int
  | Churn_ev of int * Plan.Churn.kind
  | Reconnect of int  (** connection index: try to dial again *)

type pkind = P_hello | P_lease | P_comp

(* an outstanding request on a connection, awaiting its FIFO-matched
   reply; [p_kind] says which reply shape to expect, [p_ep] lets a reply
   to a pre-churn request be discarded, [p_t] ages the queue head so a
   desynced connection (lost frame, stuck server) is cut and redialed *)
type pending = { p_worker : int; p_ep : int; p_kind : pkind; p_t : float }

(* dial-again policy for a lost server: 50 ms doubling to a 2 s cap —
   a dozen attempts rides out a kill -9 + restart window of ~15 s *)
let reconnect_policy =
  Recovery.make ~backoff_base:0.05 ~backoff_factor:2.0 ~backoff_max:2.0 ()

let max_reconnect_attempts = 12

let hammer ?(host = "127.0.0.1") ?(connections = 4) ?chaos
    ?(reply_timeout_s = 2.0) ?(log = fun _ -> ()) ~port (cfg : Hammer.config) =
  Lazy.force ignore_sigpipe;
  let t_start = Monotonic.now () in
  let elapsed () = Monotonic.now () -. t_start in
  let w = cfg.Hammer.workers in
  let nconn = max 1 (min connections w) in
  let addr =
    Unix.ADDR_INET
      ( (if host = "127.0.0.1" || host = "localhost" then
           Unix.inet_addr_loopback
         else Unix.inet_addr_of_string host),
        port )
  in
  let socks = Array.make nconn Unix.stdin in
  let readers = Array.init nconn (fun _ -> Wire.Reader.create ()) in
  let pendings : pending Queue.t array =
    Array.init nconn (fun _ -> Queue.create ())
  in
  let open_ = Array.make nconn false in
  let dead = Array.make nconn false in
  let attempts = Array.make nconn 0 in
  let frames = Array.make nconn 0 in  (* chaos frame counter, per direction *)
  let total_pending = ref 0 in
  let reconnects = ref 0 in
  let conn_of i = i mod nconn in
  let status = Array.make w w_idle in
  let batch : int list array = Array.make w [] in
  let batch_t0 = Array.make w 0.0 in
  let draws = Array.make w 0 in
  let epoch = Array.make w 0 in
  let first_req = Array.make w nan in
  let churn = Array.init w (fun i -> Plan.Churn.create cfg.Hammer.churn ~client:i) in
  let settled = ref 0 in
  let crashed = ref 0 in
  let disconnects = ref 0 in
  let completes_sent = ref 0 in
  let done_seen = ref false in
  let grant_lat = ref [] in
  let service_lat = ref [] in
  let busy = Array.make w 0.0 in
  let busy_since = Array.make w nan in
  let end_busy i t =
    if not (Float.is_nan busy_since.(i)) then begin
      busy.(i) <- busy.(i) +. (t -. busy_since.(i));
      busy_since.(i) <- nan
    end
  in
  let events : (float, ev) Heap.t = Heap.create () in
  let out = Buffer.create 256 in
  let rbuf = Bytes.create 65536 in
  let settle i st =
    if status.(i) <> w_finished && status.(i) <> w_dead then incr settled;
    end_busy i (elapsed ());
    status.(i) <- st
  in
  (* dial connection [c] and announce the session with a Hello; [strict]
     (the initial dial) lets a refused connection raise out to the
     caller, a redial just reports failure *)
  let connect_conn ~strict c =
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.connect s addr;
      (try Unix.setsockopt s Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      Buffer.clear out;
      Wire.encode out (Wire.Hello { worker = c });
      send_all s (Buffer.to_bytes out) (Buffer.length out)
    with
    | () ->
      socks.(c) <- s;
      readers.(c) <- Wire.Reader.create ();
      open_.(c) <- true;
      attempts.(c) <- 0;
      Queue.add
        { p_worker = c; p_ep = 0; p_kind = P_hello; p_t = elapsed () }
        pendings.(c);
      incr total_pending;
      true
    | exception e ->
      (try Unix.close s with Unix.Unix_error _ -> ());
      if strict then raise e else false
  in
  (* the connection under a worker's in-flight request died: forget the
     batch (its leases will expire and re-issue server-side) and ask
     again shortly, into whichever socket is alive by then *)
  let requeue_worker i t =
    if status.(i) = w_idle || status.(i) = w_busy then begin
      end_busy i t;
      epoch.(i) <- epoch.(i) + 1;
      status.(i) <- w_idle;
      batch.(i) <- [];
      first_req.(i) <- nan;
      Heap.push events
        (t +. 0.05 +. (0.002 *. float_of_int (i land 63)))
        (Request (i, epoch.(i)))
    end
  in
  let close_conn c t =
    if open_.(c) then begin
      open_.(c) <- false;
      (try Unix.close socks.(c) with Unix.Unix_error _ -> ());
      (* outstanding replies on this connection will never arrive *)
      total_pending := !total_pending - Queue.length pendings.(c);
      Queue.iter
        (fun p -> if p.p_kind <> P_hello then requeue_worker p.p_worker t)
        pendings.(c);
      Queue.clear pendings.(c);
      if not dead.(c) then
        Heap.push events
          (t +. Recovery.backoff reconnect_policy ~task:c ~retry:attempts.(c))
          (Reconnect c)
    end
  in
  let send i msg ~kind =
    let c = conn_of i in
    if dead.(c) then settle i w_finished
    else if not open_.(c) then requeue_worker i (elapsed ())
    else begin
      Buffer.clear out;
      Wire.encode out msg;
      let b = Buffer.to_bytes out in
      let wrote =
        try
          (match chaos with
          | None -> send_all socks.(c) b (Bytes.length b)
          | Some plan ->
            let fr = frames.(c) in
            frames.(c) <- fr + 1;
            List.iter
              (fun chunk -> send_all socks.(c) chunk (Bytes.length chunk))
              (Chaos.mangle plan ~dir:c ~frame:fr b));
          true
        with Unix.Unix_error _ -> false
      in
      if wrote then begin
        Queue.add
          { p_worker = i; p_ep = epoch.(i); p_kind = kind; p_t = elapsed () }
          pendings.(c);
        incr total_pending
      end
      else begin
        let t = elapsed () in
        close_conn c t;
        requeue_worker i t
      end
    end
  in
  let alive i = status.(i) = w_idle || status.(i) = w_busy in
  let schedule_churn i =
    match Plan.Churn.next churn.(i) with
    | None -> ()
    | Some { Plan.Churn.time; kind } -> Heap.push events time (Churn_ev (i, kind))
  in
  for c = 0 to nconn - 1 do
    ignore (connect_conn ~strict:true c)
  done;
  for i = 0 to w - 1 do
    let rng = Random.State.make [| cfg.Hammer.seed; 0x0F; i |] in
    Heap.push events
      (Random.State.float rng cfg.Hammer.mean_service_s)
      (Request (i, 0));
    schedule_churn i
  done;
  let next_service i =
    draws.(i) <- draws.(i) + 1;
    Hammer.service_s cfg ~worker:i ~draw:(draws.(i) - 1)
  in
  let dispatch_event ev t =
    match ev with
    | Request (i, ep) ->
      if ep = epoch.(i) && alive i then begin
        if Float.is_nan first_req.(i) then first_req.(i) <- t;
        send i (Wire.Lease_req { worker = i; k = cfg.Hammer.k }) ~kind:P_lease
      end
    | Complete_due (i, ep) ->
      if ep = epoch.(i) && status.(i) = w_busy then begin
        match batch.(i) with
        | [] -> ()
        | task :: rest ->
          batch.(i) <- rest;
          service_lat := (t -. batch_t0.(i)) :: !service_lat;
          incr completes_sent;
          send i (Wire.Complete { worker = i; task }) ~kind:P_comp
      end
    | Churn_ev (i, kind) ->
      (match kind with
      | Plan.Churn.Crash ->
        if status.(i) <> w_finished then begin
          incr crashed;
          epoch.(i) <- epoch.(i) + 1;
          settle i w_dead;
          batch.(i) <- [];
          first_req.(i) <- nan
        end
      | Plan.Churn.Disconnect _ ->
        if alive i then begin
          incr disconnects;
          epoch.(i) <- epoch.(i) + 1;
          end_busy i t;
          status.(i) <- w_offline;
          batch.(i) <- [];
          first_req.(i) <- nan
        end
      | Plan.Churn.Rejoin ->
        if status.(i) = w_offline then begin
          epoch.(i) <- epoch.(i) + 1;
          status.(i) <- w_idle;
          Heap.push events t (Request (i, epoch.(i)))
        end);
      schedule_churn i
    | Reconnect c ->
      if (not dead.(c)) && not open_.(c) then begin
        if connect_conn ~strict:false c then incr reconnects
        else begin
          attempts.(c) <- attempts.(c) + 1;
          if attempts.(c) > max_reconnect_attempts then dead.(c) <- true
          else
            Heap.push events
              (t
              +. Recovery.backoff reconnect_policy ~task:c ~retry:attempts.(c)
              )
              (Reconnect c)
        end
      end
  in
  let handle_reply c msg =
    let { p_worker = i; p_ep; p_kind; p_t = _ } = Queue.pop pendings.(c) in
    decr total_pending;
    match p_kind with
    | P_hello -> (
      match msg with Wire.Done _ -> done_seen := true | _ -> ())
    | _ -> (
      match msg with
      | Wire.Done _ ->
        done_seen := true;
        if alive i then settle i w_finished
      | _ when p_ep <> epoch.(i) -> ()
      | Wire.Lease { tasks; expires_in_s = _ } ->
        let t = elapsed () in
        if not (Float.is_nan first_req.(i)) then begin
          grant_lat := (t -. first_req.(i)) :: !grant_lat;
          first_req.(i) <- nan
        end;
        status.(i) <- w_busy;
        busy_since.(i) <- t;
        batch.(i) <- Array.to_list tasks;
        batch_t0.(i) <- t;
        Heap.push events (t +. next_service i) (Complete_due (i, epoch.(i)))
      | Wire.Retry_after { delay_s } ->
        Heap.push events
          (elapsed () +. Float.max delay_s 1e-4)
          (Request (i, epoch.(i)))
      | Wire.Ack ->
        let t = elapsed () in
        if p_kind = P_comp && batch.(i) <> [] then
          Heap.push events (t +. next_service i) (Complete_due (i, epoch.(i)))
        else begin
          end_busy i t;
          status.(i) <- w_idle;
          Heap.push events (t +. cfg.Hammer.think_s) (Request (i, epoch.(i)))
        end
      | _ -> ())
  in
  let progress_possible () =
    (not (Heap.is_empty events)) || !total_pending > 0
  in
  (* a socket-level failure that escapes the per-call guards (a select
     on a descriptor the kernel yanked, an exotic errno) used to raise
     out of the run and lose every metric with it; the harness instead
     abandons the wire and falls through to the same finalization the
     clean-drain and reconnect-timeout exits use, so the caller always
     gets a result to write its artifacts from *)
  (try
    while !settled < w && progress_possible () do
    (* fire every event that is due *)
    let due = ref true in
    while !due do
      match Heap.peek events with
      | Some (te, _) when te <= elapsed () -> (
        match Heap.pop events with
        | Some (_, ev) -> dispatch_event ev (elapsed ())
        | None -> due := false)
      | _ -> due := false
    done;
    (* a queue head older than the reply timeout means the request or
       its reply died on the wire (chaos, a crashed server): the FIFO is
       unrecoverable, cut the connection and let reconnect heal it *)
    let tnow = elapsed () in
    for c = 0 to nconn - 1 do
      if open_.(c) && not (Queue.is_empty pendings.(c)) then begin
        let head = Queue.peek pendings.(c) in
        if tnow -. head.p_t > reply_timeout_s then close_conn c tnow
      end
    done;
    if !settled < w && progress_possible () then begin
      let timeout =
        match Heap.peek events with
        | Some (te, _) -> Float.max 0.0 (Float.min 0.05 (te -. elapsed ()))
        | None -> 0.05
      in
      let fds = ref [] in
      Array.iteri (fun c s -> if open_.(c) then fds := s :: !fds) socks;
      if !fds = [] then
        (* between connections: sleep to the next event (reconnect) *)
        (if timeout > 0.0 then ignore (select_retry [] [] [] timeout))
      else begin
        let ready, _, _ = select_retry !fds [] [] timeout in
        List.iter
          (fun fd ->
            let c = ref (-1) in
            Array.iteri
              (fun j s -> if open_.(j) && s == fd then c := j)
              socks;
            let c = !c in
            if c >= 0 && open_.(c) then begin
              let n =
                try read_retry socks.(c) rbuf
                with Unix.Unix_error _ -> 0
              in
              if n = 0 then close_conn c (elapsed ())
              else begin
                Wire.Reader.feed readers.(c) rbuf 0 n;
                let continue = ref true in
                while !continue do
                  match Wire.Reader.next readers.(c) with
                  | Ok None -> continue := false
                  | Error _ ->
                    close_conn c (elapsed ());
                    continue := false
                  | Ok (Some msg) ->
                    if Queue.is_empty pendings.(c) then begin
                      (* unsolicited reply: protocol break, cut the conn
                         and let the redial resynchronize *)
                      close_conn c (elapsed ());
                      continue := false
                    end
                    else handle_reply c msg
                done
              end
            end)
          ready
      end
    end
    done
  with Unix.Unix_error (e, fn, _) ->
    log
      (Printf.sprintf "hammer: %s: %s — finalizing with partial results" fn
         (Unix.error_message e)));
  let tend = elapsed () in
  Array.iteri
    (fun c _ ->
      dead.(c) <- true;
      close_conn c tend)
    socks;
  for i = 0 to w - 1 do
    end_busy i tend
  done;
  let grants = Array.of_list !grant_lat in
  let services = Array.of_list !service_lat in
  {
    workers = w;
    completes_sent = !completes_sent;
    done_seen = !done_seen;
    crashed = !crashed;
    disconnects = !disconnects;
    reconnects = !reconnects;
    wall_s = tend;
    lease_grant_p50_s = Hammer.quantile grants 0.5;
    lease_grant_p99_s = Hammer.quantile grants 0.99;
    task_service_p50_s = Hammer.quantile services 0.5;
    task_service_p99_s = Hammer.quantile services 0.99;
    busy_s = busy;
  }
