(* An append-only write-ahead log of the server's durable events.

   On disk: an 8-byte magic ("ICWAL001"), then records of
   [u32 payload-length | u32 CRC32(payload) | payload], all little
   endian. A payload is a 1-byte tag plus fields:

     tag 1  Complete    u32 task
     tag 2  Lease       u16 count, count * u32 task
     tag 3  Checkpoint  u32 n_tasks, ceil(n/8) done bits, ceil(n/8)
                        leased bits

   Records are flushed to the OS per append, so a [kill -9] of the
   server process loses at most the record being written; [fsync] mode
   additionally survives machine crashes. A checkpoint compacts the log
   by rewriting it as a single Checkpoint record (atomic tmp-write +
   rename), so recovery replays only the tail since the last rotation.

   [open_] scans an existing file and truncates at the first record that
   is torn (shorter than its own header says) or fails its CRC — the
   torn-write tolerance the recovery path relies on. Everything after a
   corrupt record is unrecoverable by design: records are not
   self-synchronizing, and a prefix-intact log is exactly what a crashed
   append leaves behind. *)

type record =
  | Complete of int
  | Lease of int array
  | Checkpoint of { n : int; done_ : Bytes.t; leased : Bytes.t }

let magic = "ICWAL001"

(* a Checkpoint of 2^31 tasks is ~0.5 GiB of bitmap; anything claiming
   more is corruption, not data *)
let max_record = 1 lsl 29

(* ------------------------------------------------------------- CRC32 *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 b off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------- bytes <-> records *)

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let buf_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let bitmap_len n = (n + 7) / 8

let encode_payload buf r =
  Buffer.clear buf;
  (match r with
  | Complete v ->
    Buffer.add_char buf '\001';
    buf_u32 buf v
  | Lease tasks ->
    let c = Array.length tasks in
    if c > 0xFFFF then invalid_arg "Journal: lease record too large";
    Buffer.add_char buf '\002';
    Buffer.add_char buf (Char.chr (c land 0xFF));
    Buffer.add_char buf (Char.chr ((c lsr 8) land 0xFF));
    Array.iter (fun v -> buf_u32 buf v) tasks
  | Checkpoint { n; done_; leased } ->
    let bl = bitmap_len n in
    if Bytes.length done_ <> bl || Bytes.length leased <> bl then
      invalid_arg "Journal: checkpoint bitmap length mismatch";
    Buffer.add_char buf '\003';
    buf_u32 buf n;
    Buffer.add_bytes buf done_;
    Buffer.add_bytes buf leased)

(* [None] = malformed payload, treated exactly like a CRC failure *)
let decode_payload b off len =
  if len < 1 then None
  else
    match Bytes.get b off with
    | '\001' -> if len <> 5 then None else Some (Complete (get_u32 b (off + 1)))
    | '\002' ->
      if len < 3 then None
      else begin
        let c =
          Char.code (Bytes.get b (off + 1))
          lor (Char.code (Bytes.get b (off + 2)) lsl 8)
        in
        if len <> 3 + (4 * c) then None
        else Some (Lease (Array.init c (fun i -> get_u32 b (off + 3 + (4 * i)))))
      end
    | '\003' ->
      if len < 5 then None
      else begin
        let n = get_u32 b (off + 1) in
        let bl = bitmap_len n in
        if len <> 5 + (2 * bl) then None
        else
          Some
            (Checkpoint
               {
                 n;
                 done_ = Bytes.sub b (off + 5) bl;
                 leased = Bytes.sub b (off + 5 + bl) bl;
               })
      end
    | _ -> None

(* --------------------------------------------------------- the log *)

type t = {
  path : string;
  fsync : bool;
  checkpoint_every : int;
  mutable oc : out_channel;
  mutable since_checkpoint : int;  (* Complete records since last rotation *)
  mutable appended : int;
  replayed : record list;
  truncated_bytes : int;
  buf : Buffer.t;  (* payload staging *)
  hdr : Buffer.t;  (* header staging *)
}

let replayed t = t.replayed
let truncated_bytes t = t.truncated_bytes
let path t = t.path

let flush_channel t =
  flush t.oc;
  if t.fsync then Unix.fsync (Unix.descr_of_out_channel t.oc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

(* scan an existing journal, returning the records of its intact prefix
   and the offset where that prefix ends *)
let scan b =
  let size = Bytes.length b in
  let records = ref [] in
  let pos = ref (String.length magic) in
  let ok = ref true in
  while !ok && !pos < size do
    if size - !pos < 8 then ok := false
    else begin
      let len = get_u32 b !pos in
      let crc = get_u32 b (!pos + 4) in
      if len > max_record || size - !pos - 8 < len then ok := false
      else if crc32 b (!pos + 8) len <> crc then ok := false
      else
        match decode_payload b (!pos + 8) len with
        | None -> ok := false
        | Some r ->
          records := r :: !records;
          pos := !pos + 8 + len
    end
  done;
  (List.rev !records, !pos)

let append_channel path =
  open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path

let open_ ?(fsync = false) ?(checkpoint_every = 1024) path =
  if checkpoint_every < 1 then
    invalid_arg "Journal.open_: checkpoint_every must be >= 1";
  if not (Sys.file_exists path) then begin
    match
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_excl; Open_binary ] 0o644 path in
      output_string oc magic;
      flush oc;
      if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
      oc
    with
    | oc ->
      Ok
        {
          path;
          fsync;
          checkpoint_every;
          oc;
          since_checkpoint = 0;
          appended = 0;
          replayed = [];
          truncated_bytes = 0;
          buf = Buffer.create 256;
          hdr = Buffer.create 16;
        }
    | exception Sys_error e -> Error e
  end
  else begin
    match read_file path with
    | exception Sys_error e -> Error e
    | b ->
      let size = Bytes.length b in
      if size = 0 then begin
        (* an existing-but-empty file (Filename.temp_file, touch) is a
           fresh journal, not a torn one *)
        match append_channel path with
        | exception Sys_error e -> Error e
        | oc ->
          output_string oc magic;
          flush oc;
          if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
          Ok
            {
              path;
              fsync;
              checkpoint_every;
              oc;
              since_checkpoint = 0;
              appended = 0;
              replayed = [];
              truncated_bytes = 0;
              buf = Buffer.create 256;
              hdr = Buffer.create 16;
            }
      end
      else if size < String.length magic
              || Bytes.sub_string b 0 (String.length magic) <> magic
      then Error (path ^ ": not a journal (bad magic)")
      else begin
        let records, good_end = scan b in
        let truncated = size - good_end in
        (* drop the torn/corrupt tail before appending after it *)
        match
          if truncated > 0 then begin
            let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> Unix.ftruncate fd good_end)
          end
        with
        | exception Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
        | () -> (
          match append_channel path with
          | exception Sys_error e -> Error e
          | oc ->
          Ok
            {
              path;
              fsync;
              checkpoint_every;
              oc;
              since_checkpoint = 0;
              appended = 0;
              replayed = records;
              truncated_bytes = truncated;
              buf = Buffer.create 256;
              hdr = Buffer.create 16;
            })
      end
  end

let write_record oc hdr payload =
  let b = Buffer.to_bytes payload in
  let len = Bytes.length b in
  Buffer.clear hdr;
  buf_u32 hdr len;
  buf_u32 hdr (crc32 b 0 len);
  Buffer.add_buffer hdr payload;
  Buffer.output_buffer oc hdr

let append t r =
  encode_payload t.buf r;
  write_record t.oc t.hdr t.buf;
  flush_channel t;
  t.appended <- t.appended + 1;
  match r with
  | Complete _ -> t.since_checkpoint <- t.since_checkpoint + 1
  | Checkpoint _ -> t.since_checkpoint <- 0
  | Lease _ -> ()

let checkpoint_due t = t.since_checkpoint >= t.checkpoint_every

(* compaction: rewrite the whole log as one Checkpoint via tmp + atomic
   rename; the checkpoint is always fsynced — rotation is rare and a
   half-written replacement journal would be a self-inflicted tear *)
let checkpoint t ~n ~done_ ~leased =
  let tmp = t.path ^ ".tmp" in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      encode_payload t.buf (Checkpoint { n; done_; leased });
      write_record oc t.hdr t.buf;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  close_out_noerr t.oc;
  Sys.rename tmp t.path;
  t.oc <- append_channel t.path;
  t.since_checkpoint <- 0

let close t =
  (try flush_channel t with Sys_error _ | Unix.Unix_error _ -> ());
  close_out_noerr t.oc
