(** Loopback TCP transport for the lease server and the load harness.

    {!serve} wraps a {!Server} in a single-threaded select loop:
    length-prefixed frames in, one reply per request out, lease expiries
    fired from the wall clock between polls. {!hammer} is the matching
    real-time client: it runs {!Hammer}'s worker model (same batch
    discipline, same seeded Pareto service latencies, same
    {!Ic_fault.Plan.Churn} stream) but multiplexes the virtual workers
    over a handful of real connections — the protocol is strict
    request/response, so replies on a connection are matched to
    outstanding requests FIFO.

    Both ends are driver code, not a production network stack: blocking
    writes (replies are small and the sockets are loopback), one read
    buffer, no TLS. They exist so the CI smoke job and the operator CLI
    can exercise the sans-IO core over real sockets. *)

val serve :
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?on_listen:(int -> unit) ->
  ?once:bool ->
  port:int ->
  Server.config ->
  Ic_dag.Dag.t ->
  Server.stats
(** Bind [127.0.0.1:port] ([port] 0 picks a free one), call [on_listen]
    with the bound port, then serve until interrupted. With [once] (off
    by default) the loop exits once at least one client has connected
    and every connection has closed — the hammer closes its sockets when
    the dag is done, so [serve ~once:true] terminates with it. A
    connection that sends a corrupt frame is dropped; the server state
    is untouched (its leases simply expire). Returns the final
    {!Server.stats}. *)

(** Client-side view of a hammer run; the authoritative counters live in
    the server's metrics registry. *)
type hammer_result = {
  workers : int;
  completes_sent : int;  (** [Complete] frames put on the wire *)
  done_seen : bool;  (** the server answered [Done] at least once *)
  crashed : int;
  disconnects : int;
  wall_s : float;
  lease_grant_p50_s : float;
  lease_grant_p99_s : float;
  task_service_p50_s : float;
  task_service_p99_s : float;
}

val hammer :
  ?host:string ->
  ?connections:int ->
  port:int ->
  Hammer.config ->
  hammer_result
(** Connect [connections] (default 4) sockets to [host] (default
    loopback) and drive [config.workers] virtual workers over them
    (worker [w] is pinned to connection [w mod connections]) in real
    time: service latencies and think times become actual delays in the
    event loop. Returns when every worker is finished (saw [Done]) or
    dead (crashed by the churn plan) and no replies are outstanding. *)
