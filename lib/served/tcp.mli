(** Loopback TCP transport for the lease server and the load harness.

    {!serve} wraps a {!Server} in a single-threaded select loop:
    length-prefixed frames in, one reply per request out, lease expiries
    fired from the wall clock between polls. {!hammer} is the matching
    real-time client: it runs {!Hammer}'s worker model (same batch
    discipline, same seeded Pareto service latencies, same
    {!Ic_fault.Plan.Churn} stream) but multiplexes the virtual workers
    over a handful of real connections — the protocol is strict
    request/response, so replies on a connection are matched to
    outstanding requests FIFO.

    Both ends survive a hostile wire: every blocking call retries
    [EINTR]; a peer that vanished ([ECONNRESET]/[EPIPE]) closes that one
    connection — logged, never raised. The hammer additionally redials a
    lost server with exponential backoff and re-announces its session
    with a [Hello], so a served process killed mid-drain and restarted
    with [--recover] is drained to exactly-once completion by the same
    client fleet.

    Both ends are driver code, not a production network stack: blocking
    writes (replies are small and the sockets are loopback), one read
    buffer, no TLS. They exist so the CI smoke jobs (including the
    kill -9 crash-recovery job) and the operator CLI can exercise the
    sans-IO core over real sockets. *)

val serve :
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?on_listen:(int -> unit) ->
  ?once:bool ->
  ?journal:Journal.t ->
  ?recover:bool ->
  ?log:(string -> unit) ->
  ?live:Ic_obs.Live.t ->
  ?flight:Ic_obs.Flight.t ->
  ?telemetry_port:int ->
  ?on_telemetry_listen:(int -> unit) ->
  ?telemetry_csv:string ->
  ?telemetry_every_s:float ->
  port:int ->
  Server.config ->
  Ic_dag.Dag.t ->
  Server.stats
(** Bind [127.0.0.1:port] ([port] 0 picks a free one), call [on_listen]
    with the bound port, then serve until interrupted. With [once] (off
    by default) the loop exits once at least one client has connected,
    every connection has closed, {e and} the drain is complete
    ({!Server.is_done}) — a mid-drain disconnect (chaos, a restarting
    hammer) keeps the server up for the redial. A connection that sends
    a corrupt frame is dropped; the server state is untouched (its
    leases simply expire).

    [journal] hands the server a write-ahead {!Journal}; with [recover]
    the server is built by {!Server.recover} from that journal's replay
    instead of fresh (raises [Invalid_argument] if the replay does not
    fit the dag). [log] receives one line per connection-level incident
    (resets, corrupt frames); default drops them. Returns the final
    {!Server.stats}.

    [telemetry_port] opens a second loopback listener in the same
    select loop serving the {!Ic_obs.Live} registry in OpenMetrics text
    exposition format: any HTTP-ish request gets one
    [application/openmetrics-text] page and a close (this is a scrape
    endpoint, not a web server). [on_telemetry_listen] reports the
    bound telemetry port (pass [0] to pick one). [telemetry_csv]
    appends one snapshot row (completions, leases, inflight, frontier
    depth, re-issues, RSS) roughly every [telemetry_every_s] (default
    1.0) seconds, for trend lines without a scraper. [live] supplies
    the registry to serve — one is created internally when telemetry is
    requested without it; [flight] hands the server a crash-surviving
    {!Ic_obs.Flight} recorder. *)

(** Client-side view of a hammer run; the authoritative counters live in
    the server's metrics registry. *)
type hammer_result = {
  workers : int;
  completes_sent : int;  (** [Complete] frames put on the wire *)
  done_seen : bool;  (** the server answered [Done] at least once *)
  crashed : int;
  disconnects : int;  (** worker-model churn disconnects *)
  reconnects : int;  (** sockets successfully redialed after a loss *)
  wall_s : float;
  lease_grant_p50_s : float;
  lease_grant_p99_s : float;
  task_service_p50_s : float;
  task_service_p99_s : float;
  busy_s : float array;  (** per-worker wall time holding a lease batch *)
}

val hammer :
  ?host:string ->
  ?connections:int ->
  ?chaos:Ic_fault.Plan.Wire.t ->
  ?reply_timeout_s:float ->
  ?log:(string -> unit) ->
  port:int ->
  Hammer.config ->
  hammer_result
(** Connect [connections] (default 4) sockets to [host] (default
    loopback) and drive [config.workers] virtual workers over them
    (worker [w] is pinned to connection [w mod connections]) in real
    time: service latencies and think times become actual delays in the
    event loop. Returns when every worker is finished (saw [Done]) or
    dead (crashed by the churn plan, or stranded on a connection that
    exhausted its redial budget) and no replies are outstanding.

    Each (re)connection opens with a [Hello] carrying the connection
    index, resuming the session server-side. A lost connection requeues
    its in-flight workers and redials with exponential backoff (50 ms
    doubling to a 2 s cap, up to 12 attempts — successes counted in
    [reconnects]); a reply older than [reply_timeout_s] (default 2.0) at
    the head of a connection's FIFO means the wire ate a frame, so the
    connection is cut and redialed. [chaos] mangles outgoing non-[Hello]
    frames through {!Chaos.mangle} (direction = connection index),
    exercising the server's reader-error path over real sockets; the
    initial dial still raises if the server is unreachable. *)
