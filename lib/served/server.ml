module Dag = Ic_dag.Dag
module Shard_view = Ic_dag.Shard_view
module Recovery = Ic_fault.Recovery
module Metrics = Ic_obs.Metrics
module Trace = Ic_obs.Trace
module Live = Ic_obs.Live
module Flight = Ic_obs.Flight
module Heap = Ic_heuristics.Heap

type config = {
  n_shards : int;
  max_lease : int;
  max_inflight : int;
  expected_s : float;
  retry_after_s : float;
  recovery : Recovery.t;
}

let config ?(n_shards = 1) ?(max_lease = 64) ?(max_inflight = 65536)
    ?(expected_s = 1.0) ?(retry_after_s = 0.01) ?recovery () =
  if n_shards < 1 then invalid_arg "Server.config: n_shards must be >= 1";
  if max_lease < 1 || max_lease > Wire.max_lease_tasks then
    invalid_arg
      (Printf.sprintf "Server.config: max_lease must be in 1..%d"
         Wire.max_lease_tasks);
  if max_inflight < 1 then invalid_arg "Server.config: max_inflight must be >= 1";
  if (not (Float.is_finite expected_s)) || expected_s <= 0.0 then
    invalid_arg "Server.config: expected_s must be finite and positive";
  if (not (Float.is_finite retry_after_s)) || retry_after_s < 0.0 then
    invalid_arg "Server.config: retry_after_s must be finite and >= 0";
  let recovery =
    match recovery with
    | Some r -> r
    | None -> Recovery.make ~timeout_factor:4.0 ()
  in
  { n_shards; max_lease; max_inflight; expected_s; retry_after_s; recovery }

(* task lifecycle: Blocked -> Ready (in its shard's pool) -> Leased ->
   Done, with Leased -> Ready again on expiry. Pool entries are
   invalidated lazily: an entry is live iff its task is still Ready. *)
let st_blocked = '\000'
let st_ready = '\001'
let st_leased = '\002'
let st_done = '\003'

type meters = {
  m_leases : Metrics.counter;
  m_leased_tasks : Metrics.counter;
  m_completions : Metrics.counter;
  m_duplicates : Metrics.counter;
  m_reissues : Metrics.counter;
  m_retry_afters : Metrics.counter;
  m_heartbeats : Metrics.counter;
  m_errors : Metrics.counter;
  m_shard_leased : Metrics.counter array;
  m_service : Metrics.histogram;
  m_frontier : Metrics.gauge;
  m_inflight : Metrics.gauge;
}

(* the domain-safe mirror of [meters], updated at the same sites so a
   scrape endpoint in another thread of control can read mid-run; the
   server itself is single-writer, so its cell shard is always 0 *)
type live_meters = {
  l_leases : Live.counter;
  l_leased_tasks : Live.counter;
  l_completions : Live.counter;
  l_duplicates : Live.counter;
  l_reissues : Live.counter;
  l_retry_afters : Live.counter;
  l_heartbeats : Live.counter;
  l_errors : Live.counter;
  l_frontier : Live.gauge;
  l_inflight : Live.gauge;
  l_service : Live.histogram;
}

type t = {
  cfg : config;
  view : Shard_view.t;
  pools : Shards.t;
  state : Bytes.t;
  gen : int array;  (* lease generation per task; bumps invalidate expiries *)
  alloc_t : float array;  (* allocation time of the task's latest lease *)
  expiries : (float, int * int) Heap.t;  (* expiry -> (task, gen) *)
  scratch : int array;  (* lease accumulator, max_lease long *)
  scratch_pop : int array;  (* pop_batch target — distinct from scratch:
                               a pop for a later shard must not clobber
                               tasks already accumulated *)
  (* (task, gen) pairs per worker, for heartbeat renewal; stale pairs are
     skipped on renewal *)
  by_worker : (int, (int * int) list) Hashtbl.t;
  mutable inflight : int;
  mutable cursor : int;  (* round-robin shard cursor for batch filling *)
  mutable draining : bool;
  mutable leases : int;
  mutable leased_tasks : int;
  mutable completions : int;
  mutable duplicates : int;
  mutable reissues : int;
  mutable retry_afters : int;
  mutable heartbeats : int;
  mutable errors : int;
  mutable recovered_reissues : int;
  mutable recovered_tasks : int;
  journal : Journal.t option;
  meters : meters option;
  live : live_meters option;
  flight : Flight.t option;
  sink : Trace.t option;
  (* last frontier depth traced per shard / last inflight traced, so the
     sink only carries counter-track points when the value moves *)
  last_depth : int array;
  mutable last_inflight : int;
  (* last totals pushed to the live gauges: setting a float Atomic boxes
     the float, so skip the store when the value did not move *)
  mutable live_depth : int;
  mutable live_inflight : int;
}

(* allocate a server with every task Blocked and empty pools; [create]
   seeds the sources, [recover] replays a journal instead *)
let mk ?metrics ?sink ?journal ?live ?flight cfg g =
  let n = Dag.n_nodes g in
  let view = Shard_view.create ~n_shards:cfg.n_shards g in
  let pools = Shards.create ~n_shards:(Shard_view.n_shards view) () in
  let state = Bytes.make n st_blocked in
  let live =
    match live with
    | None -> None
    | Some l ->
      Live.set (Live.gauge l "served.n_tasks") (float_of_int n);
      Live.set
        (Live.gauge l "served.n_shards")
        (float_of_int (Shard_view.n_shards view));
      Some
        {
          l_leases = Live.counter l "served.leases";
          l_leased_tasks = Live.counter l "served.leased_tasks";
          l_completions = Live.counter l "served.completions";
          l_duplicates = Live.counter l "served.duplicate_completes";
          l_reissues = Live.counter l "served.reissues";
          l_retry_afters = Live.counter l "served.retry_afters";
          l_heartbeats = Live.counter l "served.heartbeats";
          l_errors = Live.counter l "served.protocol_errors";
          l_frontier = Live.gauge l "served.frontier_depth";
          l_inflight = Live.gauge l "served.inflight";
          l_service = Live.histogram l "served.lease_service_s";
        }
  in
  let meters =
    match metrics with
    | None -> None
    | Some m ->
      Some
        {
          m_leases = Metrics.counter m "served.leases";
          m_leased_tasks = Metrics.counter m "served.leased_tasks";
          m_completions = Metrics.counter m "served.completions";
          m_duplicates = Metrics.counter m "served.duplicate_completes";
          m_reissues = Metrics.counter m "served.reissues";
          m_retry_afters = Metrics.counter m "served.retry_afters";
          m_heartbeats = Metrics.counter m "served.heartbeats";
          m_errors = Metrics.counter m "served.protocol_errors";
          m_shard_leased =
            Array.init (Shard_view.n_shards view) (fun s ->
                Metrics.counter m (Printf.sprintf "served.shard%d.leased" s));
          m_service =
            Metrics.histogram m "served.lease_service_s"
              ~buckets:
                [|
                  1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0;
                  10.0; 30.0; 100.0;
                |];
          m_frontier = Metrics.gauge m "served.frontier_depth";
          m_inflight = Metrics.gauge m "served.inflight";
        }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Metrics.set (Metrics.gauge m "served.n_tasks") (float_of_int n);
    Metrics.set
      (Metrics.gauge m "served.n_shards")
      (float_of_int (Shard_view.n_shards view)));
  {
    cfg;
    view;
    pools;
    state;
    gen = Array.make n 0;
    alloc_t = Array.make n 0.0;
    expiries = Heap.create ();
    scratch = Array.make cfg.max_lease 0;
    scratch_pop = Array.make cfg.max_lease 0;
    by_worker = Hashtbl.create 64;
    inflight = 0;
    cursor = 0;
    draining = false;
    leases = 0;
    leased_tasks = 0;
    completions = 0;
    duplicates = 0;
    reissues = 0;
    retry_afters = 0;
    heartbeats = 0;
    errors = 0;
    recovered_reissues = 0;
    recovered_tasks = 0;
    journal;
    meters;
    live;
    flight;
    sink;
    last_depth = Array.make (Shard_view.n_shards view) (-1);
    last_inflight = -1;
    live_depth = -1;
    live_inflight = -1;
  }

let create ?metrics ?sink ?journal ?live ?flight cfg g =
  (match journal with
  | Some j when Journal.replayed j <> [] ->
    invalid_arg
      "Server.create: the journal holds prior records — use Server.recover"
  | _ -> ());
  let t = mk ?metrics ?sink ?journal ?live ?flight cfg g in
  Shard_view.iter_initial t.view (fun ~shard v ->
      Bytes.set t.state v st_ready;
      Shards.push t.pools ~shard v);
  t

let n_tasks t = Shard_view.n_nodes t.view
let completed t = Shard_view.completed t.view
let is_done t = Shard_view.is_complete t.view
let shard_of t v = Shard_view.shard_of t.view v

let timeout_s t = Recovery.timeout_after t.cfg.recovery ~expected:t.cfg.expected_s

let with_meters t f = match t.meters with None -> () | Some m -> f m
let with_live t f = match t.live with None -> () | Some l -> f l

let flight_record t kind ~time ~a ~b =
  match t.flight with
  | None -> ()
  | Some fl -> Flight.record fl kind ~time ~a ~b

let done_reply t = Wire.Done { completed = completed t; reissues = t.reissues }

let retry_reply t =
  t.retry_afters <- t.retry_afters + 1;
  with_meters t (fun m -> Metrics.incr m.m_retry_afters);
  with_live t (fun l -> Live.incr l.l_retry_afters ~shard:0 1);
  Wire.Retry_after { delay_s = t.cfg.retry_after_s }

let error_reply t =
  t.errors <- t.errors + 1;
  with_meters t (fun m -> Metrics.incr m.m_errors);
  with_live t (fun l -> Live.incr l.l_errors ~shard:0 1);
  Wire.Ack

(* pull up to [budget] Ready tasks out of the pools, starting at the
   round-robin cursor, touching (and locking) as few shards as possible;
   stale entries (tasks no longer Ready) are discarded on the way *)
let fill_batch t ~budget acc =
  let n_shards = Shards.n_shards t.pools in
  let got = ref 0 in
  let tried = ref 0 in
  while !got < budget && !tried < n_shards do
    let shard = (t.cursor + !tried) mod n_shards in
    let b =
      Shards.pop_batch t.pools ~shard ~max:(budget - !got) t.scratch_pop
    in
    for i = 0 to b - 1 do
      let v = t.scratch_pop.(i) in
      if Bytes.get t.state v = st_ready then begin
        acc.(!got) <- v;
        incr got
      end
    done;
    (* a shard that came back short is drained; move the cursor past it *)
    if !got < budget then incr tried
  done;
  t.cursor <- (t.cursor + !tried) mod n_shards;
  !got

let record_lease t ~now ~worker v =
  Bytes.set t.state v st_leased;
  t.gen.(v) <- t.gen.(v) + 1;
  t.alloc_t.(v) <- now;
  t.inflight <- t.inflight + 1;
  let tmo = timeout_s t in
  if Float.is_finite tmo then Heap.push t.expiries (now +. tmo) (v, t.gen.(v));
  let prev = try Hashtbl.find t.by_worker worker with Not_found -> [] in
  Hashtbl.replace t.by_worker worker ((v, t.gen.(v)) :: prev);
  let shard = shard_of t v in
  with_meters t (fun m -> Metrics.incr m.m_shard_leased.(shard));
  flight_record t Trace.Task_alloc ~time:now ~a:v ~b:shard;
  match t.sink with
  | None -> ()
  | Some tr -> Trace.task_alloc tr ~time:now ~task:v ~client:shard

let push_ready t v =
  Bytes.set t.state v st_ready;
  Shards.push t.pools ~shard:(shard_of t v) v

let set_bit bm v =
  Bytes.set bm (v lsr 3)
    (Char.chr (Char.code (Bytes.get bm (v lsr 3)) lor (1 lsl (v land 7))))

let get_bit bm v =
  Char.code (Bytes.get bm (v lsr 3)) land (1 lsl (v land 7)) <> 0

let journal_append t r =
  match t.journal with None -> () | Some j -> Journal.append j r

(* compact the journal to a snapshot of the current byte states; after
   recovery nothing is leased, so the leased bitmap only matters for
   checkpoints taken while serving *)
let write_checkpoint t j =
  let n = n_tasks t in
  let bl = Journal.bitmap_len n in
  let done_ = Bytes.make bl '\000' in
  let leased = Bytes.make bl '\000' in
  for v = 0 to n - 1 do
    let st = Bytes.get t.state v in
    if st = st_done then set_bit done_ v
    else if st = st_leased then set_bit leased v
  done;
  Journal.checkpoint j ~n ~done_ ~leased

let maybe_checkpoint t =
  match t.journal with
  | Some j when Journal.checkpoint_due j -> write_checkpoint t j
  | _ -> ()

let apply_complete t ~now v =
  (* durability before acknowledgment: once the Complete record is out,
     a crash cannot re-lease this task *)
  journal_append t (Journal.Complete v);
  (* exactly-once: flip to Done first, then propagate; a pool entry left
     behind by an expiry is invalidated by the state flip *)
  if Bytes.get t.state v = st_leased then t.inflight <- t.inflight - 1;
  Bytes.set t.state v st_done;
  t.completions <- t.completions + 1;
  let service = now -. t.alloc_t.(v) in
  with_meters t (fun m ->
      Metrics.incr m.m_completions;
      Metrics.observe m.m_service service);
  with_live t (fun l ->
      Live.incr l.l_completions ~shard:0 1;
      Live.observe l.l_service service);
  Shard_view.complete t.view v ~ready:(fun ~shard:_ u -> push_ready t u);
  flight_record t Trace.Task_complete ~time:now ~a:v ~b:(shard_of t v);
  (match t.sink with
  | None -> ()
  | Some tr -> Trace.task_complete tr ~time:now ~task:v ~client:(shard_of t v));
  maybe_checkpoint t

(* the live frontier/inflight sample taken after every handled message.
   Pool sizes are the racy [Shards.size] snapshot and include entries
   awaiting lazy invalidation, so the depth is an upper bound — exact
   whenever no lease has expired since the pool was last drained. *)
let sample t ~now =
  if t.meters != None || t.live != None || t.sink != None || t.flight != None
  then begin
    let total = ref 0 in
    let n_shards = Shards.n_shards t.pools in
    for s = 0 to n_shards - 1 do
      let d = Shards.size t.pools ~shard:s in
      total := !total + d;
      if t.last_depth.(s) <> d then begin
        t.last_depth.(s) <- d;
        (match t.sink with
        | Some tr -> Trace.frontier_depth tr ~time:now ~shard:s ~depth:d
        | None -> ());
        (* the ring too: the pre-crash load signal is what a post-mortem
           reads first, and change-gating keeps it from flooding out the
           alloc/complete tail *)
        flight_record t Trace.Frontier_depth ~time:now ~a:s ~b:d
      end
    done;
    let depth = float_of_int !total in
    let inflight = float_of_int t.inflight in
    with_meters t (fun m ->
        Metrics.set m.m_frontier depth;
        Metrics.set m.m_inflight inflight);
    with_live t (fun l ->
        if t.live_depth <> !total then begin
          t.live_depth <- !total;
          Live.set l.l_frontier depth
        end;
        if t.live_inflight <> t.inflight then begin
          t.live_inflight <- t.inflight;
          Live.set l.l_inflight inflight
        end);
    if t.last_inflight <> t.inflight then begin
      t.last_inflight <- t.inflight;
      (match t.sink with
      | Some tr -> Trace.inflight tr ~time:now ~count:t.inflight
      | None -> ());
      flight_record t Trace.Inflight ~time:now ~a:t.inflight ~b:0
    end
  end

let handle_msg t ~now (msg : Wire.msg) : Wire.msg =
  match msg with
  | Hello { worker = _ } ->
    Wire.Welcome
      { n_tasks = n_tasks t; n_shards = Shard_view.n_shards t.view }
  | Lease_req { worker; k } ->
    if is_done t || t.draining then done_reply t
    else begin
      let budget =
        min (min k t.cfg.max_lease) (t.cfg.max_inflight - t.inflight)
      in
      if budget <= 0 then retry_reply t
      else begin
        let got = fill_batch t ~budget t.scratch in
        if got = 0 then retry_reply t
        else begin
          let tasks = Array.sub t.scratch 0 got in
          journal_append t (Journal.Lease tasks);
          Array.iter (fun v -> record_lease t ~now ~worker v) tasks;
          t.leases <- t.leases + 1;
          t.leased_tasks <- t.leased_tasks + got;
          with_meters t (fun m ->
              Metrics.incr m.m_leases;
              Metrics.incr ~by:got m.m_leased_tasks);
          with_live t (fun l ->
              Live.incr l.l_leases ~shard:0 1;
              Live.incr l.l_leased_tasks ~shard:0 got);
          let tmo = timeout_s t in
          Wire.Lease { tasks; expires_in_s = tmo }
        end
      end
    end
  | Complete { worker = _; task } ->
    if task < 0 || task >= n_tasks t then error_reply t
    else begin
      let st = Bytes.get t.state task in
      if st = st_done then begin
        t.duplicates <- t.duplicates + 1;
        with_meters t (fun m -> Metrics.incr m.m_duplicates);
        with_live t (fun l -> Live.incr l.l_duplicates ~shard:0 1);
        if is_done t then done_reply t else Wire.Ack
      end
      else if st = st_leased || st = st_ready then begin
        (* Ready means the lease expired and the task went back to a
           pool; the straggler's completion still counts (first one
           wins), the stale pool entry dies with the state flip *)
        apply_complete t ~now task;
        if is_done t then done_reply t else Wire.Ack
      end
      else (* completing a never-eligible task is a protocol violation *)
        error_reply t
    end
  | Heartbeat { worker } ->
    t.heartbeats <- t.heartbeats + 1;
    with_meters t (fun m -> Metrics.incr m.m_heartbeats);
    with_live t (fun l -> Live.incr l.l_heartbeats ~shard:0 1);
    let tmo = timeout_s t in
    (if Float.is_finite tmo then
       match Hashtbl.find_opt t.by_worker worker with
       | None -> ()
       | Some leases ->
         let live =
           List.filter_map
             (fun (v, g) ->
               if Bytes.get t.state v = st_leased && t.gen.(v) = g then begin
                 (* renew: bump the generation so the old heap entry is
                    stale, and push the extended expiry *)
                 t.gen.(v) <- t.gen.(v) + 1;
                 Heap.push t.expiries (now +. tmo) (v, t.gen.(v));
                 Some (v, t.gen.(v))
               end
               else None)
             leases
         in
         if live = [] then Hashtbl.remove t.by_worker worker
         else Hashtbl.replace t.by_worker worker live);
    if is_done t then done_reply t else Wire.Ack
  | Drain ->
    t.draining <- true;
    done_reply t
  | Welcome _ | Lease _ | Retry_after _ | Done _ | Ack ->
    (* server-side messages arriving at the server *)
    error_reply t

let handle t ~now (msg : Wire.msg) : Wire.msg =
  let reply = handle_msg t ~now msg in
  sample t ~now;
  reply

let next_expiry t =
  match Heap.peek t.expiries with None -> infinity | Some (time, _) -> time

let expire t ~now =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.peek t.expiries with
    | Some (time, (v, g)) when time <= now ->
      ignore (Heap.pop t.expiries);
      if Bytes.get t.state v = st_leased && t.gen.(v) = g then begin
        (* the holder went quiet: re-issue *)
        t.inflight <- t.inflight - 1;
        t.reissues <- t.reissues + 1;
        incr fired;
        with_meters t (fun m -> Metrics.incr m.m_reissues);
        with_live t (fun l -> Live.incr l.l_reissues ~shard:0 1);
        flight_record t Trace.Timeout_fired ~time ~a:v ~b:(shard_of t v);
        (match t.sink with
        | None -> ()
        | Some tr ->
          Trace.timeout_fired tr ~time ~task:v ~client:(shard_of t v));
        push_ready t v
      end
    | _ -> continue := false
  done;
  !fired

let recover ?metrics ?sink ?live ?flight ~journal cfg g =
  let t = mk ?metrics ?sink ?live ?flight ~journal cfg g in
  let n = n_tasks t in
  (* fold the journal into a done set and a leased-at-crash set; a later
     checkpoint supersedes everything before it *)
  let done_ = Bytes.make n '\000' in
  let leased = Bytes.make n '\000' in
  let err = ref None in
  let mark set v =
    if v < 0 || v >= n then
      err :=
        Some
          (Printf.sprintf
             "journal: task %d out of range (this dag has %d tasks)" v n)
    else Bytes.set set v '\001'
  in
  List.iter
    (fun r ->
      if !err = None then
        match r with
        | Journal.Complete v -> mark done_ v
        | Journal.Lease vs -> Array.iter (mark leased) vs
        | Journal.Checkpoint { n = cn; done_ = db; leased = lb } ->
          if cn <> n then
            err :=
              Some
                (Printf.sprintf
                   "journal: checkpoint of %d tasks does not match this dag \
                    (%d tasks)"
                   cn n)
          else begin
            Bytes.fill done_ 0 n '\000';
            Bytes.fill leased 0 n '\000';
            for v = 0 to n - 1 do
              if get_bit db v then Bytes.set done_ v '\001';
              if get_bit lb v then Bytes.set leased v '\001'
            done
          end)
    (Journal.replayed journal);
  match !err with
  | Some e -> Error e
  | None ->
    let n_done = ref 0 in
    for v = 0 to n - 1 do
      if Bytes.get done_ v = '\001' then begin
        incr n_done;
        Bytes.set t.state v st_done
      end
    done;
    (* sources that did not finish before the crash go straight back to
       their pools *)
    Shard_view.iter_initial t.view (fun ~shard:_ v ->
        if Bytes.get done_ v = '\000' then push_ready t v);
    (* replaying the done set through the dependence view re-derives the
       Ready frontier: completions can only be journaled in an
       ancestor-closed order, so a non-done task whose predecessors are
       all done is reported eligible exactly once, in any replay order *)
    for v = 0 to n - 1 do
      if Bytes.get done_ v = '\001' then
        Shard_view.complete t.view v ~ready:(fun ~shard:_ u ->
            if Bytes.get done_ u = '\000' then push_ready t u)
    done;
    t.completions <- !n_done;
    t.recovered_tasks <- !n_done;
    with_meters t (fun m -> Metrics.incr ~by:!n_done m.m_completions);
    with_live t (fun l -> Live.incr l.l_completions ~shard:0 !n_done);
    (* tasks leased but not completed at the crash are back in the pools
       (their predecessors are all done) and will be granted again: the
       at-most-one re-issue per crash the exactly-once contract allows *)
    let reissued = ref 0 in
    for v = 0 to n - 1 do
      if Bytes.get leased v = '\001' && Bytes.get done_ v = '\000' then
        incr reissued
    done;
    t.recovered_reissues <- !reissued;
    (match metrics with
    | None -> ()
    | Some m ->
      Metrics.incr ~by:!reissued (Metrics.counter m "served.recovered_reissues");
      Metrics.set
        (Metrics.gauge m "served.recovered_tasks")
        (float_of_int !n_done));
    (* compact immediately: the restored state becomes the new baseline
       and the pre-crash tail is retired *)
    write_checkpoint t journal;
    Ok t

type stats = {
  leases : int;
  leased_tasks : int;
  completions : int;
  duplicate_completes : int;
  reissues : int;
  retry_afters : int;
  heartbeats : int;
  protocol_errors : int;
  inflight : int;
  recovered_reissues : int;
  recovered_tasks : int;
}

let stats (t : t) =
  {
    leases = t.leases;
    leased_tasks = t.leased_tasks;
    completions = t.completions;
    duplicate_completes = t.duplicates;
    reissues = t.reissues;
    retry_afters = t.retry_afters;
    heartbeats = t.heartbeats;
    protocol_errors = t.errors;
    inflight = t.inflight;
    recovered_reissues = t.recovered_reissues;
    recovered_tasks = t.recovered_tasks;
  }
