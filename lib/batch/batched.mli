(** Batched scheduling, after Malewicz–Rosenberg (Euro-Par 2005) — the
    paper's reference [20] — and a concrete take on research direction 2 of
    Section 8 ("rigorous notions of almost-optimal scheduling that apply to
    {e all} dags").

    Many dags admit no IC-optimal schedule in the step-by-step sense: the
    pointwise demands over every prefix can be unsatisfiable by one
    schedule. Reference [20] therefore studies an orthogonal regimen in
    which the server allocates {e batches} of [p] tasks periodically;
    optimality is always achievable there, though possibly at great
    computational cost. This module mirrors that structure with a precise,
    total objective: the {b lexicographic} maximization of the batched
    eligibility profile [E(after batch 1), E(after batch 2), …]. A
    lex-optimal batched schedule exists for {e every} dag and {e every}
    batch size (including [p = 1], where it is a canonical almost-optimal
    step schedule); whenever the dag admits a pointwise-optimal schedule,
    the lex optimum coincides with it (asserted in the tests).

    - {!optimal} computes the lex-optimal batched schedule exactly, by a
      levelled dynamic program over the dag's ideals (exponential worst
      case; fine for small dags).
    - {!greedy} picks each batch greedily (cheap; not always lex-optimal —
      the tests exhibit counterexamples).
    - {!of_schedule} chops an ordinary schedule into batches so step
      schedules can be compared inside the batched framework. *)

type t = {
  batch_size : int;
  batches : int list list;
      (** each of size [batch_size] except possibly the last; batches
          partition the nodes and each member's parents lie in strictly
          earlier batches *)
}

val is_valid : Ic_dag.Dag.t -> t -> bool

val profile : Ic_dag.Dag.t -> t -> int array
(** Eligibility counts after each batch (length [#batches + 1]), by
    replaying the batches on a {!Ic_dag.Frontier.t}. Every batch member
    must be eligible by the time it executes (guaranteed for valid
    batchings); raises [Invalid_argument] otherwise. *)

val of_schedule :
  Ic_dag.Dag.t -> Ic_dag.Schedule.t -> batch_size:int -> (t, string) result
(** Chop a schedule into consecutive batches. Fails if some task's parent
    lands in the same batch (the set must be simultaneously eligible). *)

val to_schedule : Ic_dag.Dag.t -> t -> Ic_dag.Schedule.t
(** Flatten (batch members in ascending order). *)

val greedy : Ic_dag.Dag.t -> batch_size:int -> t
(** Each batch: repeatedly add the currently-eligible task that releases
    the most new tasks given the batch so far (ties by node id). *)

val optimal :
  ?max_ideals:int -> Ic_dag.Dag.t -> batch_size:int ->
  (t, [ `Too_large of int ]) result
(** The lex-optimal batched schedule. [max_ideals] defaults to
    [2_000_000]. *)

val e_opt :
  ?max_ideals:int -> Ic_dag.Dag.t -> batch_size:int ->
  (int array, [ `Too_large of int ]) result
(** Its profile. *)
