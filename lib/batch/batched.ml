module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Frontier = Ic_dag.Frontier

type t = {
  batch_size : int;
  batches : int list list;
}

exception Too_large of int
exception Invalid

module Span = Ic_prof.Span

let profile g t =
  Span.time "batched.profile" @@ fun () ->
  let fr = Frontier.create g in
  let out = Array.make (List.length t.batches + 1) 0 in
  out.(0) <- Frontier.count fr;
  List.iteri
    (fun j batch ->
      List.iter (Frontier.execute fr) batch;
      out.(j + 1) <- Frontier.count fr)
    t.batches;
  out

(* Replay the batches on one frontier; each batch must be simultaneously
   eligible when it starts and work-conserving (min(p, #eligible) tasks). *)
let replay_valid g t =
  let n = Dag.n_nodes g in
  let fr = Frontier.create g in
  try
    List.iter
      (fun batch ->
        let e = Frontier.count fr in
        if List.length batch <> min t.batch_size e then raise Invalid;
        List.iter
          (fun v -> if not (Frontier.is_eligible fr v) then raise Invalid)
          batch;
        List.iter (Frontier.execute fr) batch)
      t.batches;
    Frontier.executed_count fr = n
  with Invalid -> false

let is_valid g t = t.batch_size >= 1 && replay_valid g t

let of_schedule g s ~batch_size =
  if batch_size < 1 then Error "batch size must be positive"
  else begin
    let order = Array.to_list (Schedule.order s) in
    let rec chop acc current k = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | v :: rest ->
        if k = batch_size then chop (List.rev current :: acc) [ v ] 1 rest
        else chop acc (v :: current) (k + 1) rest
    in
    let batches = chop [] [] 0 order in
    let t = { batch_size; batches } in
    if replay_valid g t then Ok t
    else Error "schedule cannot be chopped into simultaneously-eligible batches"
  end

let to_schedule g t =
  Schedule.of_order_exn g (List.concat_map (List.sort compare) t.batches)

let greedy g ~batch_size =
  if batch_size < 1 then invalid_arg "Batched.greedy: batch size must be positive";
  Span.time "batched.greedy" @@ fun () ->
  let n = Dag.n_nodes g in
  let fr = Frontier.create g in
  let in_batch = Array.make n false in
  let batches = ref [] in
  while Frontier.executed_count fr < n do
    let eligible = Frontier.members fr in
    let want = min batch_size (Array.length eligible) in
    (* pick greedily: each pick maximizes the number of tasks the batch so
       far would newly release *)
    let batch = ref [] in
    for _ = 1 to want do
      let gain v =
        (* children released if v joins the batch *)
        Dag.fold_succ g v 0 (fun acc w ->
            let unmet = ref false in
            Dag.iter_pred g w (fun p ->
                if not (Frontier.is_executed fr p || in_batch.(p) || p = v) then
                  unmet := true);
            if !unmet || in_batch.(w) then acc else acc + 1)
      in
      let best =
        Array.fold_left
          (fun best v ->
            if in_batch.(v) then best
            else
              match best with
              | None -> Some (v, gain v)
              | Some (_, bg) ->
                let gv = gain v in
                if gv > bg then Some (v, gv) else best)
          None eligible
      in
      match best with
      | Some (v, _) ->
        in_batch.(v) <- true;
        batch := v :: !batch
      | None -> ()
    done;
    let batch = List.rev !batch in
    List.iter
      (fun v ->
        in_batch.(v) <- false;
        Frontier.execute fr v)
      batch;
    batches := batch :: !batches
  done;
  { batch_size; batches = List.rev !batches }

(* lexicographic optimum by levelled DP over ideals *)
let optimal ?(max_ideals = 2_000_000) g ~batch_size =
  if batch_size < 1 then invalid_arg "Batched.optimal: batch size must be positive";
  Span.time "batched.optimal" @@ fun () ->
  let n = Dag.n_nodes g in
  if n > 61 then Error (`Too_large n)
  else begin
    (* states are ideals keyed by bitmask; their eligibility structure is
       recovered once per survivor via Frontier.of_set, and candidate
       batches are assessed by execute/restore on that frontier *)
    let frontier_of s =
      Frontier.of_set g ~executed:(Array.init n (fun v -> s land (1 lsl v) <> 0))
    in
    let full = (1 lsl n) - 1 in
    let visited = ref 0 in
    try
      (* per level: table mask -> (previous mask, batch) *)
      let levels = ref [] in
      let frontier = ref (Hashtbl.create 16) in
      Hashtbl.replace !frontier 0 (0, []);
      let finished = ref (n = 0) in
      while not !finished do
        let next = Hashtbl.create (Hashtbl.length !frontier * 2) in
        let best = ref (-1) in
        let consider s' prev batch e =
          incr visited;
          if !visited > max_ideals then raise (Too_large !visited);
          if e > !best then begin
            Hashtbl.reset next;
            best := e
          end;
          if e = !best && not (Hashtbl.mem next s') then
            Hashtbl.replace next s' (prev, batch)
        in
        Hashtbl.iter
          (fun s _ ->
            let fr = frontier_of s in
            let eligible = Frontier.to_list fr in
            let want = min batch_size (List.length eligible) in
            (* enumerate size-[want] subsets of the eligible list *)
            let rec subsets chosen k pool =
              if k = 0 then begin
                let chosen = List.rev chosen in
                let snap = Frontier.snapshot fr in
                List.iter (Frontier.execute fr) chosen;
                let e = Frontier.count fr in
                Frontier.restore fr snap;
                consider
                  (List.fold_left (fun m v -> m lor (1 lsl v)) s chosen)
                  s chosen e
              end
              else
                match pool with
                | [] -> ()
                | v :: rest ->
                  if List.length rest >= k - 1 then subsets (v :: chosen) (k - 1) rest;
                  if List.length rest >= k then subsets chosen k rest
            in
            subsets [] want eligible)
          !frontier;
        levels := !frontier :: !levels;
        frontier := next;
        if Hashtbl.mem next full then begin
          levels := next :: !levels;
          finished := true
        end
        else if Hashtbl.length next = 0 then finished := true (* n = 0 *)
      done;
      (* walk back the witness from the full ideal *)
      if n = 0 then Ok { batch_size; batches = [] }
      else begin
        let rec walk s tables acc =
          match tables with
          | [] -> acc
          | table :: rest ->
            let prev, batch = Hashtbl.find table s in
            if s = 0 then acc else walk prev rest (batch :: acc)
        in
        let batches = walk full !levels [] in
        Ok { batch_size; batches }
      end
    with Too_large k -> Error (`Too_large k)
  end

let e_opt ?max_ideals g ~batch_size =
  Result.map (fun t -> profile g t) (optimal ?max_ideals g ~batch_size)
