module Dag = Ic_dag.Dag

type t = {
  dag : Dag.t;
  components : (Dag.t * int array) list;
}

let dag c = c.dag
let components c = c.components

let of_dag g = { dag = g; components = [ (g, Array.init (Dag.n_nodes g) Fun.id) ] }

let compose c1 c2 ~pairs =
  let g1 = c1.dag and g2 = c2.dag in
  let n1 = Dag.n_nodes g1 and n2 = Dag.n_nodes g2 in
  let check_distinct xs = List.length (List.sort_uniq compare xs) = List.length xs in
  let us = List.map fst pairs and vs = List.map snd pairs in
  if not (check_distinct us && check_distinct vs) then
    Error "merge pairs are not distinct"
  else if List.exists (fun u -> u < 0 || u >= n1 || not (Dag.is_sink g1 u)) us then
    Error "left member of a merge pair is not a sink of the first dag"
  else if List.exists (fun v -> v < 0 || v >= n2 || not (Dag.is_source g2 v)) vs then
    Error "right member of a merge pair is not a source of the second dag"
  else begin
    (* composite ids: c1 nodes keep theirs; unmerged c2 nodes follow *)
    let mate = Array.make n2 (-1) in
    List.iter (fun (u, v) -> mate.(v) <- u) pairs;
    let remap2 = Array.make n2 (-1) in
    let next = ref n1 in
    for v = 0 to n2 - 1 do
      if mate.(v) >= 0 then remap2.(v) <- mate.(v)
      else begin
        remap2.(v) <- !next;
        incr next
      end
    done;
    let n = !next in
    (* propagate labels only when a component has real ones; default
       id-labels would otherwise collide after renumbering *)
    let labels =
      if not (Dag.has_labels g1 || Dag.has_labels g2) then None
      else begin
        let out = Array.make n "" in
        for u = 0 to n1 - 1 do
          out.(u) <- (if Dag.has_labels g1 then Dag.label g1 u else string_of_int u)
        done;
        for v = 0 to n2 - 1 do
          if mate.(v) < 0 then
            out.(remap2.(v)) <-
              (if Dag.has_labels g2 then Dag.label g2 v else string_of_int remap2.(v))
        done;
        Some out
      end
    in
    let b = Dag.Builder.create ?labels ~n ~hint:(Dag.n_arcs g1 + Dag.n_arcs g2) () in
    Dag.iter_arcs g1 (fun u v -> Dag.Builder.add_arc b u v);
    Dag.iter_arcs g2 (fun u v -> Dag.Builder.add_arc b remap2.(u) remap2.(v));
    match Dag.Builder.build b with
    | Error msg -> Error ("composition is not a dag: " ^ msg)
    | Ok g ->
      let remapped_c2 =
        List.map
          (fun (orig, embed) -> (orig, Array.map (fun w -> remap2.(w)) embed))
          c2.components
      in
      Ok { dag = g; components = c1.components @ remapped_c2 }
  end

let compose_exn c1 c2 ~pairs =
  match compose c1 c2 ~pairs with
  | Ok c -> c
  | Error msg -> invalid_arg ("Compose.compose_exn: " ^ msg)

let full_merge c1 c2 =
  let sinks = Dag.sinks c1.dag and sources = Dag.sources c2.dag in
  if List.length sinks <> List.length sources then
    Error
      (Printf.sprintf "full merge needs equal counts: %d sinks vs %d sources"
         (List.length sinks) (List.length sources))
  else compose c1 c2 ~pairs:(List.combine sinks sources)

let full_merge_exn c1 c2 =
  match full_merge c1 c2 with
  | Ok c -> c
  | Error msg -> invalid_arg ("Compose.full_merge_exn: " ^ msg)

let chain_full = function
  | [] -> Error "empty composition chain"
  | first :: rest ->
    List.fold_left
      (fun acc c -> Result.bind acc (fun acc -> full_merge acc c))
      (Ok first) rest

let pp ppf c =
  Format.fprintf ppf "composite of %d components (%d nodes):@ "
    (List.length c.components)
    (Dag.n_nodes c.dag);
  List.iteri
    (fun i (g, _) ->
      if i > 0 then Format.fprintf ppf " ^ ";
      Format.fprintf ppf "G%d(%d)" i (Dag.n_nodes g))
    c.components
