module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Optimal = Ic_dag.Optimal
module Iso = Ic_dag.Iso
module Blocks = Ic_blocks

type block = {
  nodes : int list;
  level : int;
  name : string;
  dag : Dag.t;
  schedule : Schedule.t;
}

type certificate = [ `Linear | `Unverified ]

type plan = {
  schedule : Schedule.t;
  blocks : block list;
  certificate : certificate;
}

let is_levelled g =
  let depth = Dag.depth g in
  Dag.fold_arcs g true (fun acc u v -> acc && depth.(v) = depth.(u) + 1)

(* connected components of the boundary between level [k] and level [k+1]:
   BFS over depth-k nonsinks and their children *)
let boundary_components g depth k =
  let n = Dag.n_nodes g in
  let in_boundary v =
    (depth.(v) = k && Dag.out_degree g v > 0) || depth.(v) = k + 1
  in
  let seen = Array.make n false in
  let components = ref [] in
  for v0 = 0 to n - 1 do
    if in_boundary v0 && not seen.(v0) then begin
      let component = ref [] in
      let queue = Queue.create () in
      seen.(v0) <- true;
      Queue.add v0 queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        component := v :: !component;
        let visit w =
          if in_boundary w && not seen.(w) then begin
            seen.(w) <- true;
            Queue.add w queue
          end
        in
        if depth.(v) = k then Dag.iter_succ g v visit
        else Dag.iter_pred g v visit
      done;
      components := List.sort compare !component :: !components
    end
  done;
  List.rev !components

(* recognize a connected bipartite block against the repertoire and return
   (name, IC-optimal schedule); fall back to the exact verifier *)
let classify_block block_dag =
  let sources = Dag.sources block_dag and sinks = Dag.sinks block_dag in
  let s = List.length sources and t = List.length sinks in
  let m = Dag.n_arcs block_dag in
  let transport name candidate candidate_schedule =
    match Iso.find_isomorphism candidate block_dag with
    | Some phi ->
      let order =
        Array.to_list
          (Array.map (fun v -> phi.(v)) (Schedule.order candidate_schedule))
      in
      (match Schedule.of_order block_dag order with
      | Ok schedule -> Some (name, schedule)
      | Error _ -> None)
    | None -> None
  in
  let candidates =
    List.concat
      [
        (if s = 1 then
           [ (Printf.sprintf "V_%d" t, Blocks.Vee.dag t, Blocks.Vee.schedule t) ]
         else []);
        (if t = 1 then
           [ (Printf.sprintf "L_%d" s, Blocks.Lambda.dag s, Blocks.Lambda.schedule s) ]
         else []);
        (if m = s * t && s > 1 && t > 1 then
           [
             ( Printf.sprintf "K(%d,%d)" s t,
               Blocks.Bipartite.dag s t,
               Blocks.Bipartite.schedule s t );
           ]
         else []);
        (if t = s && m = (2 * s) - 1 then
           [ (Printf.sprintf "N_%d" s, Blocks.N_dag.dag s, Blocks.N_dag.schedule s) ]
         else []);
        (if t = s && m = 2 * s && s >= 2 then
           [ (Printf.sprintf "C_%d" s, Blocks.Cycle_dag.dag s, Blocks.Cycle_dag.schedule s) ]
         else []);
        (if s = t + 1 && m = 2 * t && t >= 1 then
           [ (Printf.sprintf "M_%d" t, Blocks.M_dag.dag t, Blocks.M_dag.schedule t) ]
         else []);
        (* (1,d)-W-dags: m = d*s, t = (d-1)s + 1 *)
        (if s >= 1 && m mod s = 0 then
           let d = m / s in
           if d >= 2 && t = ((d - 1) * s) + 1 then
             [
               ( (if d = 2 then Printf.sprintf "W_%d" s
                  else Printf.sprintf "W^%d_%d" d s),
                 Blocks.W_dag.dag_fanout ~fanout:d s,
                 Blocks.W_dag.schedule_fanout ~fanout:d s );
             ]
           else []
         else []);
      ]
  in
  let recognized =
    List.find_map
      (fun (name, candidate, cs) -> transport name candidate cs)
      candidates
  in
  match recognized with
  | Some r -> Ok r
  | None -> (
    (* unknown shape: exact analysis *)
    match Optimal.analyze block_dag with
    | Error (`Too_large k) ->
      Error
        (Printf.sprintf
           "unrecognized %d-source block too large for exact analysis (%d)" s k)
    | Ok { Optimal.witness = None; _ } ->
      Error "a boundary block admits no IC-optimal schedule"
    | Ok { Optimal.witness = Some w; e_opt; _ } ->
      (* normalize to sinks-last form, which the phase emission needs *)
      let prefix = Schedule.nonsink_prefix block_dag w in
      let normalized = Schedule.of_nonsink_order_exn block_dag prefix in
      if Ic_dag.Profile.run block_dag normalized = e_opt then
        Ok (Printf.sprintf "bipartite(%d)" (Dag.n_nodes block_dag), normalized)
      else Error "block optimum is not attainable in sinks-last form")

let schedule g =
  if not (is_levelled g) then
    Error "dag is not levelled (an arc skips a depth level)"
  else begin
    let depth = Dag.depth g in
    let max_depth = Dag.longest_path g in
    let errors = ref [] in
    let blocks_by_level =
      List.init max_depth (fun k ->
          boundary_components g depth k
          |> List.filter_map (fun nodes ->
                 let keep = Array.make (Dag.n_nodes g) false in
                 List.iter (fun v -> keep.(v) <- true) nodes;
                 let block_dag, _remap = Dag.induced g ~keep in
                 match classify_block block_dag with
                 | Ok (name, schedule) ->
                   Some { nodes; level = k; name; dag = block_dag; schedule }
                 | Error msg ->
                   errors := msg :: !errors;
                   None))
    in
    match !errors with
    | msg :: _ -> Error msg
    | [] ->
      (* order blocks within each level greedily by priority *)
      let order_level blocks =
        let endpoint b = (b.dag, b.schedule) in
        let rec go acc remaining =
          match remaining with
          | [] -> List.rev acc
          | _ ->
            let dominant =
              List.find_opt
                (fun c ->
                  List.for_all
                    (fun o ->
                      c == o || Priority.has_priority (endpoint c) (endpoint o))
                    remaining)
                remaining
            in
            let chosen =
              match dominant with Some c -> c | None -> List.hd remaining
            in
            go (chosen :: acc) (List.filter (fun o -> o != chosen) remaining)
        in
        go [] blocks
      in
      let ordered = List.concat_map order_level blocks_by_level in
      (* emit: each block's sources in its schedule's order *)
      let node_of_block b =
        (* induced numbering is order-preserving, so local id i corresponds
           to the i-th smallest member of [b.nodes] *)
        let arr = Array.of_list b.nodes in
        fun local -> arr.(local)
      in
      let emission =
        List.concat_map
          (fun b ->
            let to_global = node_of_block b in
            List.map to_global (Schedule.nonsink_prefix b.dag b.schedule))
          ordered
      in
      (match Schedule.of_nonsink_order g emission with
      | Error msg -> Error ("internal: emitted order invalid: " ^ msg)
      | Ok s ->
        let certificate =
          let rec chain = function
            | [] | [ _ ] -> `Linear
            | a :: (b :: _ as rest) ->
              if Priority.has_priority (a.dag, a.schedule) (b.dag, b.schedule)
              then chain rest
              else `Unverified
          in
          (chain ordered :> certificate)
        in
        Ok { schedule = s; blocks = ordered; certificate })
  end
