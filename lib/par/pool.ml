type shard = {
  lock : Mutex.t;
  mutable heap : int array;  (* node ids, heap-ordered by rank *)
  mutable len : int;
}

type t = { rank : int array; shards : shard array }

let create ~shards ~rank =
  if shards <= 0 then invalid_arg "Pool.create: shards must be positive";
  {
    rank;
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); heap = Array.make 64 0; len = 0 });
  }

(* classic array binary heap; the key of node [v] is [rank.(v)] *)

let sift_up rank heap i0 =
  let i = ref i0 in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    rank.(heap.(!i)) < rank.(heap.(p))
  do
    let p = (!i - 1) / 2 in
    let tmp = heap.(!i) in
    heap.(!i) <- heap.(p);
    heap.(p) <- tmp;
    i := p
  done

let sift_down rank heap len i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < len && rank.(heap.(l)) < rank.(heap.(!smallest)) then smallest := l;
    if r < len && rank.(heap.(r)) < rank.(heap.(!smallest)) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = heap.(!i) in
      heap.(!i) <- heap.(!smallest);
      heap.(!smallest) <- tmp;
      i := !smallest
    end
  done

let push t ~shard v =
  let s = t.shards.(shard) in
  Mutex.lock s.lock;
  if s.len = Array.length s.heap then begin
    let bigger = Array.make (2 * s.len) 0 in
    Array.blit s.heap 0 bigger 0 s.len;
    s.heap <- bigger
  end;
  s.heap.(s.len) <- v;
  sift_up t.rank s.heap s.len;
  s.len <- s.len + 1;
  Mutex.unlock s.lock

let take_min rank s =
  if s.len = 0 then None
  else begin
    let v = s.heap.(0) in
    s.len <- s.len - 1;
    s.heap.(0) <- s.heap.(s.len);
    sift_down rank s.heap s.len 0;
    Some v
  end

let pop t ~shard =
  let s = t.shards.(shard) in
  Mutex.lock s.lock;
  let v = take_min t.rank s in
  Mutex.unlock s.lock;
  v

let try_steal t ~shard =
  let s = t.shards.(shard) in
  (* cheap racy emptiness probe first: an empty shard costs no lock
     traffic on the steal sweep *)
  if s.len = 0 then None
  else if not (Mutex.try_lock s.lock) then None
  else begin
    let v = take_min t.rank s in
    Mutex.unlock s.lock;
    v
  end

let size t = Array.fold_left (fun acc s -> acc + s.len) 0 t.shards
