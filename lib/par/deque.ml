(* The Chase–Lev deque over a fixed circular int buffer.

   [top] is the next index a thief will take; [bottom] the next index the
   owner will fill. Valid elements live at indices [top .. bottom - 1]
   (monotonically increasing counters, reduced mod capacity only when
   indexing the buffer). Invariants:

     - only the owner writes [bottom] (thieves read it);
     - [top] only advances, by exactly one, through a successful CAS
       (thief steal, or the owner taking the last element);
     - slot [i land mask] is written by the owner at push [i] and not
       rewritten before [top > i - capacity + ... ]; concretely, a push at
       counter [b] first observes [b - top < capacity], so any thief still
       holding the stale [top = b - capacity] fails its CAS and discards
       whatever it read from the recycled slot.

   All Atomic operations in OCaml are sequentially consistent, which gives
   the store-load fence the classic algorithm needs between the owner's
   [bottom] decrement and its read of [top] in [pop]. *)

type t = {
  buf : int array;
  mask : int;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let round_up_pow2 c =
  let rec go p = if p >= c then p else go (p * 2) in
  go 2

let create ~capacity =
  if capacity <= 0 then invalid_arg "Deque.create: capacity must be positive";
  let cap = round_up_pow2 capacity in
  {
    buf = Array.make cap 0;
    mask = cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let capacity t = Array.length t.buf

let size t =
  let s = Atomic.get t.bottom - Atomic.get t.top in
  if s < 0 then 0 else s

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp >= Array.length t.buf then false
  else begin
    Array.unsafe_set t.buf (b land t.mask) v;
    (* the SC store publishes the slot write to any thief that reads the
       new [bottom] *)
    Atomic.set t.bottom (b + 1);
    true
  end

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty: undo the reservation *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then Some (Array.unsafe_get t.buf (b land t.mask))
  else begin
    (* last element: race thieves through the CAS on top *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Some (Array.unsafe_get t.buf (b land t.mask)) else None
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* read before the CAS: if the slot was recycled under us, [top] has
       moved and the CAS fails, discarding the stale value *)
    let v = Array.unsafe_get t.buf (tp land t.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Some v else None
  end
