module Dag = Ic_dag.Dag
module Slab = Ic_dag.Slab
module Schedule = Ic_dag.Schedule
module Engine = Ic_compute.Engine

type t = {
  name : string;
  dag : Dag.t;
  rank : int array;
  exec : Engine.executor option -> float array;
  validate : float array -> bool;
}

let name t = t.name
let dag t = t.dag
let rank t = t.rank
let execute ?executor t = t.exec executor
let check t fp = t.validate fp

(* ---- calibrated busy-work -------------------------------------------- *)

(* a serial float recurrence the compiler cannot vectorize away *)
let kernel iters =
  let x = ref 1.0 in
  for i = 1 to iters do
    x := !x +. (1.0 /. ((!x *. 0.5) +. float_of_int i))
  done;
  ignore (Sys.opaque_identity !x)

(* iterations per microsecond; calibrated once, from the constructing
   domain, before any worker can call [spin] *)
let iters_per_us = ref 0.0

let calibrate () =
  if !iters_per_us = 0.0 then begin
    let iters = ref 4096 in
    let dt = ref 0.0 in
    let continue = ref true in
    while !continue do
      let t0 = Ic_prof.Monotonic.now () in
      kernel !iters;
      dt := Ic_prof.Monotonic.now () -. t0;
      if !dt < 2e-3 && !iters < 1 lsl 26 then iters := !iters * 4
      else continue := false
    done;
    iters_per_us := Float.max 1.0 (float_of_int !iters /. (!dt *. 1e6))
  end

let spin us =
  if us > 0.0 then kernel (max 1 (int_of_float (us *. !iters_per_us)))

(* wrap an engine's compute with the spin; the spin touches no shared
   state, so the wrapped compute stays safe to call from any domain *)
let with_spin spin_us (e : 'a Engine.t) =
  if spin_us <= 0.0 then e
  else begin
    calibrate ();
    {
      e with
      Engine.compute =
        (fun v parents ->
          spin spin_us;
          e.Engine.compute v parents);
    }
  end

let rank_of_schedule s =
  let order = Schedule.order s in
  let rank = Array.make (Array.length order) 0 in
  (* order.(i) = v means v runs at step i, so v's rank is i *)
  Array.iteri (fun i v -> rank.(v) <- i) order;
  rank

let run_engine ?executor e ~fingerprint =
  match executor with
  | None -> fingerprint (Engine.execute e)
  | Some exec -> fingerprint (Engine.execute ~executor:exec e)

(* ---- wavefront: edit distance on the (size+1)² grid ------------------ *)

let synth_string seed len =
  String.init len (fun i -> Char.chr (97 + ((i * (i + seed) * 7) + seed) mod 26))

let wavefront ?(spin_us = 0.0) ~size () =
  if size < 1 then invalid_arg "Payload.wavefront: size must be >= 1";
  let s = synth_string 3 size and tt = synth_string 11 size in
  let rows = size and cols = size in
  let g = Ic_compute.Wavefront.grid ~rows ~cols in
  let w = cols + 1 in
  let compute v parents =
    let i = v / w and j = v mod w in
    if i = 0 then j
    else if j = 0 then i
    else begin
      (* parents ascending: (i-1, j-1), (i-1, j), (i, j-1) *)
      let diag = parents.(0) and up = parents.(1) and left = parents.(2) in
      let cost = if s.[i - 1] = tt.[j - 1] then 0 else 1 in
      min (diag + cost) (min (up + 1) (left + 1))
    end
  in
  let e = with_spin spin_us { Engine.dag = g; compute } in
  let fingerprint values = Array.map float_of_int values in
  {
    name = Printf.sprintf "wavefront-%d" size;
    dag = g;
    rank = rank_of_schedule (Ic_compute.Wavefront.grid_schedule ~rows ~cols);
    exec = (fun executor -> run_engine ?executor e ~fingerprint);
    validate =
      (fun fp ->
        fp.((rows * w) + cols)
        = float_of_int (Ic_compute.Wavefront.edit_distance_reference s tt));
  }

(* ---- fft: the 2^size-point DFT on B_size ----------------------------- *)

let fft ?(spin_us = 0.0) ~size () =
  if size < 1 then invalid_arg "Payload.fft: size must be >= 1";
  let d = size in
  let n = 1 lsl d in
  let input =
    Array.init n (fun i ->
        let x = float_of_int i in
        { Complex.re = cos (0.7 *. x); im = sin (0.3 *. x) })
  in
  let e = with_spin spin_us (Ic_compute.Fft.engine input) in
  let g = e.Engine.dag in
  let fingerprint values =
    Array.init (2 * Array.length values) (fun i ->
        let c = values.(i / 2) in
        if i land 1 = 0 then c.Complex.re else c.Complex.im)
  in
  {
    name = Printf.sprintf "fft-%d" d;
    dag = g;
    rank = rank_of_schedule (Ic_families.Butterfly_net.schedule d);
    exec = (fun executor -> run_engine ?executor e ~fingerprint);
    validate =
      (fun fp ->
        let reference = Ic_compute.Fft.dft_naive input in
        let ok = ref true in
        for r = 0 to n - 1 do
          let v = Ic_families.Butterfly_net.node ~d d r in
          let re = fp.(2 * v) and im = fp.((2 * v) + 1) in
          let dre = re -. reference.(r).Complex.re
          and dim = im -. reference.(r).Complex.im in
          if sqrt ((dre *. dre) +. (dim *. dim)) > 1e-6 *. float_of_int n then
            ok := false
        done;
        !ok);
  }

(* ---- matmul: one level of M over 2^size float blocks ----------------- *)

let synth_mat seed n =
  Array.init n (fun i ->
      Array.init n (fun j ->
          let x = float_of_int (((i * 31) + (j * 17) + seed) mod 101) in
          (x /. 50.0) -. 1.0))

let matmul ?(spin_us = 0.0) ~size () =
  if size < 1 then invalid_arg "Payload.matmul: size must be >= 1"
  else begin
    let nm = 1 lsl size in
    let a = synth_mat 5 nm and b = synth_mat 23 nm in
    let half = nm / 2 in
    let g = Ic_families.Matmul_dag.dag () in
    let poff = Dag.pred_offsets g and pdat = Dag.pred_sources g in
    let quadrant m qi qj =
      Array.init half (fun i ->
          Array.init half (fun j -> m.((qi * half) + i).((qj * half) + j)))
    in
    let operand_side = function
      | 0 | 2 | 8 | 10 -> `Left
      | 1 | 3 | 9 | 11 -> `Right
      | _ -> invalid_arg "Payload.matmul: not an operand"
    in
    let is_operand v = v < 4 || (v >= 8 && v < 12) in
    let is_product v = (v >= 4 && v < 8) || (v >= 12 && v < 16) in
    let compute v parents =
      if is_operand v then begin
        let qi, qj =
          match v with
          | 0 -> (0, 0) (* A *)
          | 2 -> (1, 0) (* C *)
          | 8 -> (0, 1) (* B *)
          | 10 -> (1, 1) (* D *)
          | 1 -> (0, 0) (* E *)
          | 3 -> (0, 1) (* F *)
          | 9 -> (1, 0) (* G *)
          | _ -> (1, 1) (* H = 11 *)
        in
        let src = match operand_side v with `Left -> a | `Right -> b in
        quadrant src qi qj
      end
      else if is_product v then begin
        let left, right =
          match operand_side (Slab.get pdat (Slab.get poff v)) with
          | `Left -> (parents.(0), parents.(1))
          | `Right -> (parents.(1), parents.(0))
        in
        Ic_compute.Matmul.naive left right
      end
      else
        Array.init half (fun i ->
            Array.init half (fun j ->
                parents.(0).(i).(j) +. parents.(1).(i).(j)))
    in
    let e = with_spin spin_us { Engine.dag = g; compute } in
    let fingerprint values =
      (* flatten every node's block, node-major *)
      let out = Array.make (20 * half * half) 0.0 in
      Array.iteri
        (fun v m ->
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun j x -> out.((((v * half) + i) * half) + j) <- x)
                row)
            m)
        values;
      out
    in
    let assemble fp =
      (* sums: 16 = top-left, 19 = top-right, 17 = bottom-left,
         18 = bottom-right (Matmul.multiply's reading of M) *)
      let block v i j = fp.((((v * half) + i) * half) + j) in
      Array.init nm (fun i ->
          Array.init nm (fun j ->
              let v =
                if i < half then if j < half then 16 else 19
                else if j < half then 17
                else 18
              in
              block v (i mod half) (j mod half)))
    in
    {
      name = Printf.sprintf "matmul-%d" nm;
      dag = g;
      rank = rank_of_schedule (Ic_families.Matmul_dag.schedule ());
      exec = (fun executor -> run_engine ?executor e ~fingerprint);
      validate =
        (fun fp ->
          Ic_compute.Matmul.approx_equal (assemble fp)
            (Ic_compute.Matmul.naive a b));
    }
  end

(* ---- quadrature: midpoint rule reduced through the binary in-tree ---- *)

let quadrature ?(spin_us = 0.0) ~size () =
  if size < 1 then invalid_arg "Payload.quadrature: size must be >= 1";
  let depth = size in
  let g = Ic_families.In_tree.dag ~arity:2 ~depth in
  let n = Dag.n_nodes g in
  let leaves = 1 lsl depth in
  let h = 1.0 /. float_of_int leaves in
  (* leaf index = position among the sources in ascending node order *)
  let leaf_index = Array.make n (-1) in
  let next = ref 0 in
  Ic_dag.Frontier.fill_remaining g (fun v d ->
      if d = 0 then begin
        leaf_index.(v) <- !next;
        incr next
      end);
  assert (!next = leaves);
  let f x = 4.0 /. (1.0 +. (x *. x)) in
  let compute v parents =
    if Array.length parents = 0 then
      let mid = (float_of_int leaf_index.(v) +. 0.5) *. h in
      h *. f mid
    else Array.fold_left ( +. ) 0.0 parents
  in
  let e = with_spin spin_us { Engine.dag = g; compute } in
  let fingerprint values = Array.copy values in
  (* the sink is the unique node with no successors *)
  let soff = Dag.succ_offsets g in
  let sink = ref 0 in
  for v = 0 to n - 1 do
    if Slab.get soff (v + 1) = Slab.get soff v then sink := v
  done;
  let sink = !sink in
  {
    name = Printf.sprintf "quadrature-%d" depth;
    dag = g;
    rank = rank_of_schedule (Ic_families.In_tree.schedule g);
    exec = (fun executor -> run_engine ?executor e ~fingerprint);
    validate =
      (fun fp ->
        (* composite midpoint error <= (b-a) h² max|f''| / 24 <= h²/3 *)
        Float.abs (fp.(sink) -. Float.pi) <= h *. h);
  }

let families = [ "wavefront"; "fft"; "matmul"; "quadrature" ]

let make ?spin_us ~family ~size () =
  match family with
  | "wavefront" -> wavefront ?spin_us ~size ()
  | "fft" -> fft ?spin_us ~size ()
  | "matmul" -> matmul ?spin_us ~size ()
  | "quadrature" -> quadrature ?spin_us ~size ()
  | _ -> invalid_arg ("Payload.make: unknown family " ^ family)
