(** A lock-free work-stealing deque of task ids (Chase–Lev).

    One domain owns each deque: the owner pushes and pops at the bottom
    (LIFO, so hot tasks stay cache-warm), thieves take from the top (FIFO,
    so they steal the oldest — and on dag workloads usually the largest —
    pending subtree). The buffer is a fixed-capacity circular [int array]
    sized at creation: a full deque rejects the push ({!push} returns
    [false]) and the runtime spills the task to its shared overflow pool
    instead of resizing, so the steal path never has to chase a replaced
    buffer and every slot read is a plain array load.

    Memory ordering: [top] and [bottom] are {!Atomic.t} (sequentially
    consistent in OCaml), element slots are plain writes. The standard
    Chase–Lev argument applies: a slot is only overwritten once [top] has
    advanced past it, and a thief that read a stale slot value fails its
    CAS on [top] and discards the read. The owner-side [pop] of the last
    element races thieves through the same CAS. See DESIGN.md, "The
    parallel runtime". *)

type t

val create : capacity:int -> t
(** [create ~capacity] rounds [capacity] up to a power of two (minimum 2).
    Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int

val size : t -> int
(** A linearization-point-free estimate of the current occupancy (exact
    when no other domain is mutating the deque). *)

(** {1 Owner operations} *)

val push : t -> int -> bool
(** [push t v] appends [v] at the bottom; [false] when the deque is full
    (the caller must route [v] elsewhere — nothing was written). *)

val pop : t -> int option
(** Remove and return the most recently pushed element, racing thieves
    for the last one. [None] when empty (or the race was lost). *)

(** {1 Thief operations} *)

val steal : t -> int option
(** Remove and return the oldest element. [None] when the deque looks
    empty or another thief (or the owner taking the last element) won the
    CAS — callers treat both as "try elsewhere", so a failed CAS does not
    retry internally. *)
