module Dag = Ic_dag.Dag
module Slab = Ic_dag.Slab
module Frontier = Ic_dag.Frontier
module Trace = Ic_obs.Trace
module Metrics = Ic_obs.Metrics
module Live = Ic_obs.Live

type order = Steal | Ic_priority

type stats = {
  domains : int;
  wall_s : float;
  tasks : int;
  steals : int;
  steal_attempts : int;
  overflows : int;
  parks : int;
  per_domain_tasks : int array;
}

let default_domains () =
  match Sys.getenv_opt "IC_PAR_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d > 0 -> d
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Shared remaining-predecessor counts, decremented with fetch-and-add.

   The packing reuses the Frontier's scratch-tier rule: the tier bound is
   the largest value any count can take, so several counts share one
   atomic word — 7 8-bit fields per word under [Packed8], 3 16-bit fields
   under [Packed16] (OCaml ints are 63-bit, hence 7 and 3 rather than 8
   and 4), one count per word under [Unpacked]. A field decrement is
   [fetch_and_add word (-(1 lsl shift))]: fields never underflow in a
   correct run (each is decremented exactly in-degree times), so no
   borrow ever crosses a field boundary, and the returned old word tells
   the caller — uniquely, since exactly one decrement observes old field
   value 1 — whether it made the node ready. *)
module Counts = struct
  type t = {
    words : int Atomic.t array;
    per_word : int;
    bits : int;
    mask : int;
  }

  let layout = function
    | Frontier.Packed8 -> (7, 8, 0xff)
    | Frontier.Packed16 -> (3, 16, 0xffff)
    | Frontier.Unpacked -> (1, 0, -1)

  let create g =
    let n = Dag.n_nodes g in
    let per_word, bits, mask = layout (Frontier.scratch_tier g) in
    let n_words = if n = 0 then 0 else ((n - 1) / per_word) + 1 in
    let plain = Array.make n_words 0 in
    Frontier.fill_remaining g (fun v d ->
        plain.(v / per_word) <-
          plain.(v / per_word) lor (d lsl (v mod per_word * bits)));
    { words = Array.map Atomic.make plain; per_word; bits; mask }

  (* true iff this decrement took node [v]'s count from 1 to 0 *)
  let decr t v =
    if t.per_word = 1 then Atomic.fetch_and_add t.words.(v) (-1) = 1
    else begin
      let shift = v mod t.per_word * t.bits in
      let old = Atomic.fetch_and_add t.words.(v / t.per_word) (-(1 lsl shift)) in
      (old lsr shift) land t.mask = 1
    end
end

(* The shared spill target for full deques: a mutex-protected stack. Cold
   by design — it only sees traffic when a deque's fixed buffer fills. *)
module Overflow = struct
  type t = { lock : Mutex.t; mutable items : int list }

  let create () = { lock = Mutex.create (); items = [] }

  let push t v =
    Mutex.lock t.lock;
    t.items <- v :: t.items;
    Mutex.unlock t.lock

  let pop t =
    if t.items == [] then None
    else begin
      Mutex.lock t.lock;
      let r =
        match t.items with
        | [] -> None
        | v :: rest ->
          t.items <- rest;
          Some v
      in
      Mutex.unlock t.lock;
      r
    end
end

(* live [par.*] instruments, shared by all domains: each worker writes
   its own counter shard (shard = worker id), so the hot path is one
   uncontended fetch-and-add per event and a scraper thread can merge a
   consistent-enough view at any time *)
type live_instr = {
  lv_tasks : Live.counter;
  lv_steals : Live.counter;
  lv_steal_attempts : Live.counter;
  lv_overflows : Live.counter;
  lv_parks : Live.counter;
  lv_task_s : Live.histogram;
}

let live_instr l =
  {
    lv_tasks = Live.counter l "par.tasks";
    lv_steals = Live.counter l "par.steals";
    lv_steal_attempts = Live.counter l "par.steal_attempts";
    lv_overflows = Live.counter l "par.overflows";
    lv_parks = Live.counter l "par.parks";
    lv_task_s = Live.histogram l "par.task_s";
  }

(* per-worker mutable state, touched only by its own domain *)
type worker = {
  id : int;
  mutable tasks : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable overflows : int;
  mutable parks : int;
  mutable rng : int;  (* xorshift state for victim selection *)
  trace : Trace.t option;
  lv : live_instr option;
}

let xorshift w =
  let x = w.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  w.rng <- (if x = 0 then w.id + 1 else x);
  w.rng

(* The two ready-set shapes behind one tiny interface: [push_ready] from
   the worker that made the task ready, [pop_own] from the owner,
   [steal_from] a victim (non-blocking). *)
type ready =
  | Deques of Deque.t array * Overflow.t
  | Shards of Pool.t

let push_ready ready w v =
  match ready with
  | Deques (dq, ov) ->
    if not (Deque.push dq.(w.id) v) then begin
      w.overflows <- w.overflows + 1;
      (match w.lv with
      | None -> ()
      | Some l -> Live.incr l.lv_overflows ~shard:w.id 1);
      Overflow.push ov v
    end
  | Shards p -> Pool.push p ~shard:w.id v

let pop_own ready w =
  match ready with
  | Deques (dq, ov) -> (
    match Deque.pop dq.(w.id) with
    | Some _ as r -> r
    | None -> Overflow.pop ov)
  | Shards p -> Pool.pop p ~shard:w.id

let steal_from ready victim =
  match ready with
  | Deques (dq, _) -> Deque.steal dq.(victim)
  | Shards p -> Pool.try_steal p ~shard:victim

let run ?domains ?(order = Steal) ?priority ?(capacity = 8192)
    ?(park_min = 2e-6) ?(park_max = 1e-3) ?metrics ?sink ?live g ~task =
  if (not (Float.is_finite park_min)) || park_min <= 0.0 then
    invalid_arg "Runtime.run: park_min must be finite and positive";
  if (not (Float.is_finite park_max)) || park_max < park_min then
    invalid_arg "Runtime.run: park_max must be finite and >= park_min";
  let n = Dag.n_nodes g in
  let n_domains =
    max 1 (match domains with Some d -> d | None -> default_domains ())
  in
  let record_metrics (st : stats) =
    match metrics with
    | None -> ()
    | Some m ->
      Metrics.incr ~by:st.tasks (Metrics.counter m "par.tasks");
      Metrics.incr ~by:st.steals (Metrics.counter m "par.steals");
      Metrics.incr ~by:st.steal_attempts (Metrics.counter m "par.steal_attempts");
      Metrics.incr ~by:st.overflows (Metrics.counter m "par.overflows");
      Metrics.incr ~by:st.parks (Metrics.counter m "par.parks");
      Metrics.set (Metrics.gauge m "par.domains") (float_of_int st.domains);
      Metrics.set (Metrics.gauge m "par.wall_s") st.wall_s
  in
  let record_live (st : stats) =
    match live with
    | None -> ()
    | Some l ->
      Live.set (Live.gauge l "par.domains") (float_of_int st.domains);
      Live.set (Live.gauge l "par.wall_s") st.wall_s
  in
  if n = 0 then begin
    let st =
      {
        domains = n_domains;
        wall_s = 0.0;
        tasks = 0;
        steals = 0;
        steal_attempts = 0;
        overflows = 0;
        parks = 0;
        per_domain_tasks = Array.make n_domains 0;
      }
    in
    record_metrics st;
    record_live st;
    st
  end
  else begin
    (match priority with
    | Some p when Array.length p <> n ->
      invalid_arg "Runtime.run: priority length mismatch"
    | _ -> ());
    let ready =
      match order with
      | Steal ->
        Deques (Array.init n_domains (fun _ -> Deque.create ~capacity), Overflow.create ())
      | Ic_priority ->
        let rank =
          match priority with Some p -> p | None -> Array.init n (fun v -> v)
        in
        Shards (Pool.create ~shards:n_domains ~rank)
    in
    let counts = Counts.create g in
    let completed = Atomic.make 0 in
    let off = Dag.succ_offsets g and dat = Dag.succ_targets g in
    let lv = Option.map live_instr live in
    let workers =
      Array.init n_domains (fun id ->
          {
            id;
            tasks = 0;
            steals = 0;
            steal_attempts = 0;
            overflows = 0;
            parks = 0;
            rng = (id * 0x9e3779b9) lor 1;
            trace =
              (match sink with None -> None | Some _ -> Some (Trace.create ()));
            lv;
          })
    in
    (* seed the sources round-robin; no domain is running yet, so pushing
       into every deque from here is still an owner push (the spawn
       establishes the happens-before) *)
    let seed = ref 0 in
    Frontier.fill_remaining g (fun v d ->
        if d = 0 then begin
          push_ready ready workers.(!seed mod n_domains) v;
          incr seed
        end);
    let t0 = Ic_prof.Monotonic.now () in
    let run_task w v =
      let lt0 =
        match w.lv with None -> 0.0 | Some _ -> Ic_prof.Monotonic.now ()
      in
      (match w.trace with
      | None -> ()
      | Some tr ->
        Trace.task_alloc tr ~time:(Ic_prof.Monotonic.now () -. t0) ~task:v
          ~client:w.id);
      task v;
      (match w.trace with
      | None -> ()
      | Some tr ->
        Trace.task_complete tr ~time:(Ic_prof.Monotonic.now () -. t0) ~task:v
          ~client:w.id);
      (match w.lv with
      | None -> ()
      | Some l ->
        Live.incr l.lv_tasks ~shard:w.id 1;
        Live.observe l.lv_task_s (Ic_prof.Monotonic.now () -. lt0));
      w.tasks <- w.tasks + 1;
      for i = Slab.unsafe_get off v to Slab.unsafe_get off (v + 1) - 1 do
        let s = Slab.unsafe_get dat i in
        if Counts.decr counts s then push_ready ready w s
      done;
      ignore (Atomic.fetch_and_add completed 1)
    in
    let worker_loop w =
      let backoff = ref 0 in
      let running = ref true in
      while !running do
        match pop_own ready w with
        | Some v ->
          backoff := 0;
          run_task w v
        | None ->
          if Atomic.get completed >= n then running := false
          else begin
            (* sweep up to n_domains - 1 random victims *)
            let found = ref None in
            let tries = ref 0 in
            while !found = None && !tries < n_domains - 1 do
              incr tries;
              let victim =
                let r = xorshift w mod (n_domains - 1) in
                if r >= w.id then r + 1 else r
              in
              w.steal_attempts <- w.steal_attempts + 1;
              (match w.lv with
              | None -> ()
              | Some l -> Live.incr l.lv_steal_attempts ~shard:w.id 1);
              match steal_from ready victim with
              | Some v ->
                w.steals <- w.steals + 1;
                (match w.lv with
                | None -> ()
                | Some l -> Live.incr l.lv_steals ~shard:w.id 1);
                found := Some v
              | None -> ()
            done;
            match !found with
            | Some v ->
              backoff := 0;
              run_task w v
            | None ->
              (* nothing anywhere: spin briefly, then sleep — on an
                 oversubscribed machine the sleep is what lets the domain
                 actually holding work get a timeslice *)
              incr backoff;
              if !backoff <= 16 then
                for _ = 1 to !backoff * 8 do
                  Domain.cpu_relax ()
                done
              else begin
                w.parks <- w.parks + 1;
                (match w.lv with
                | None -> ()
                | Some l -> Live.incr l.lv_parks ~shard:w.id 1);
                Unix.sleepf
                  (Float.min park_max (float_of_int !backoff *. park_min))
              end
          end
      done
    in
    let spawned =
      Array.init (n_domains - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop workers.(i + 1)))
    in
    worker_loop workers.(0);
    Array.iter Domain.join spawned;
    let wall_s = Ic_prof.Monotonic.now () -. t0 in
    (* merge the per-domain trace buffers into the caller's sink,
       time-sorted, now that only this domain is running *)
    (match sink with
    | None -> ()
    | Some tr ->
      let events =
        Array.concat
          (Array.to_list
             (Array.map
                (fun w ->
                  match w.trace with
                  | None -> [||]
                  | Some t -> Trace.to_array t)
                workers))
      in
      Array.stable_sort
        (fun (a : Trace.event) b -> compare a.time b.time)
        events;
      Array.iter
        (fun (e : Trace.event) ->
          Trace.emit tr e.kind ~time:e.time ~a:e.a ~b:e.b)
        events);
    let sum f = Array.fold_left (fun acc w -> acc + f w) 0 workers in
    let st =
      {
        domains = n_domains;
        wall_s;
        tasks = sum (fun w -> w.tasks);
        steals = sum (fun w -> w.steals);
        steal_attempts = sum (fun w -> w.steal_attempts);
        overflows = sum (fun w -> w.overflows);
        parks = sum (fun w -> w.parks);
        per_domain_tasks = Array.map (fun w -> w.tasks) workers;
      }
    in
    record_metrics st;
    record_live st;
    st
  end

let executor ?domains ?order ?priority ?capacity ?park_min ?park_max ?metrics
    ?sink ?live ?on_stats () =
 fun g step ->
  let st =
    run ?domains ?order ?priority ?capacity ?park_min ?park_max ?metrics ?sink
      ?live g ~task:step
  in
  match on_stats with None -> () | Some f -> f st
