(** Real computations for the parallel runtime to chew on.

    A payload bundles a dag from the paper's families with a value
    semantics from [lib/compute] (wavefront DP, FFT, block matrix
    multiplication, quadrature), an IC-optimal priority ranking for the
    [Ic_priority] mode, a result fingerprint (a [float array] that is
    bit-identical however the tasks were interleaved — see
    {!Runtime}'s determinism note), and a self-check against an
    independent reference. The [spin_us] knob adds a calibrated
    busy-loop to every task so experiments can sweep task granularity
    from ~1 µs to ~10 ms without changing the dependence structure. *)

type t

val name : t -> string
val dag : t -> Ic_dag.Dag.t

val rank : t -> int array
(** Node priorities for {!Runtime.run}'s [Ic_priority] mode: the
    position of each node in the family's IC-optimal schedule. *)

val execute : ?executor:Ic_compute.Engine.executor -> t -> float array
(** Run the payload — sequentially by default, or under the given
    executor — and fingerprint all node values as floats. Fingerprints
    are comparable with [=] across executors and domain counts. *)

val check : t -> float array -> bool
(** Validate a fingerprint against the payload's independent reference
    (e.g. the DP recurrence, the naive DFT, π). *)

(** {1 Constructors}

    [size] scales each family's natural knob; every constructor is
    deterministic (inputs are derived from [size], never from a global
    RNG). *)

val wavefront : ?spin_us:float -> size:int -> unit -> t
(** Edit distance on a [size × size] grid ([size >= 1]):
    [(size+1)²] nodes, antidiagonal IC-optimal order. *)

val fft : ?spin_us:float -> size:int -> unit -> t
(** The [2^size]-point FFT on the butterfly [B_size] ([size >= 1]):
    [(size+1)·2^size] nodes. *)

val matmul : ?spin_us:float -> size:int -> unit -> t
(** One level of the 20-node dag [M] over [2^size × 2^size] float
    blocks ([size >= 1]) — eight independent naive block products, four
    sums; granularity grows with [size] cubed. *)

val quadrature : ?spin_us:float -> size:int -> unit -> t
(** Midpoint quadrature of [4/(1+x²)] over [0,1] — which integrates to
    π — reduced through the complete binary in-tree of depth [size]
    ([size >= 1]): [2^size] leaf evaluations, [2^(size+1) - 1] nodes. *)

val families : string list
(** [["wavefront"; "fft"; "matmul"; "quadrature"]]. *)

val make : ?spin_us:float -> family:string -> size:int -> unit -> t
(** Constructor lookup by {!families} name; [Invalid_argument] on an
    unknown family. *)
