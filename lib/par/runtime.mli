(** The domains-based parallel runtime: executes the tasks of any
    [Ic_dag.Dag.t] on OCaml 5 domains, respecting the dag's dependences.

    Each domain owns a Chase–Lev deque ({!Deque}) of ready task ids;
    completing a task decrements the remaining-predecessor count of each
    successor with a fetch-and-add on shared atomic words (packed by the
    Frontier's scratch-tier rule — see {!Ic_dag.Frontier.scratch_tier}),
    and the decrement that reaches zero pushes the successor onto the
    completing domain's deque. An idle domain pops its own deque, drains
    the shared overflow pool, then steals from random victims, parking
    with escalating backoff when a full sweep finds nothing.

    Two ready-ordering modes ({!order}): [Steal] is the plain work-stealing
    runtime above; [Ic_priority] replaces the deques with a sharded
    priority pool ({!Pool}) so domains prefer tasks in a precomputed
    IC-optimal (or heuristic) order — the experiment E19 compares the two
    on wall-clock across domain counts and task granularities.

    Determinism: the runtime orders {e scheduling}, not {e values}. A
    dataflow computation driven through {!executor} computes every node
    exactly once from its parents' final values, so results are identical
    to the sequential engine's for any domain count or mode (asserted in
    the test suite). *)

type order =
  | Steal  (** plain Chase–Lev work stealing (LIFO owner, FIFO thief) *)
  | Ic_priority
      (** sharded priority pool over a precomputed rank per node *)

type stats = {
  domains : int;
  wall_s : float;  (** seconds from first seed to last join *)
  tasks : int;  (** tasks executed (= nodes of the dag) *)
  steals : int;  (** successful steals from another domain's deque/shard *)
  steal_attempts : int;  (** steal probes, successful or not *)
  overflows : int;  (** pushes that spilled to the overflow pool *)
  parks : int;  (** backoff sleeps after fully-failed sweeps *)
  per_domain_tasks : int array;  (** tasks run by each domain *)
}

val default_domains : unit -> int
(** The [IC_PAR_DOMAINS] environment variable when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

val run :
  ?domains:int ->
  ?order:order ->
  ?priority:int array ->
  ?capacity:int ->
  ?park_min:float ->
  ?park_max:float ->
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?live:Ic_obs.Live.t ->
  Ic_dag.Dag.t ->
  task:(int -> unit) ->
  stats
(** [run g ~task] executes [task v] exactly once for every node [v] of
    [g], never before all of [v]'s predecessors' tasks returned; [task]
    must be safe to call from any domain.

    [domains] (default {!default_domains}, clamped to at least 1) is the
    total worker count — the calling domain is worker 0, [domains - 1]
    are spawned. [order] defaults to [Steal]. [priority] (Ic_priority
    only; default the identity, i.e. ascending node id) maps node to
    rank, lower first; [Invalid_argument] on a length mismatch.
    [capacity] (default 8192) sizes each deque; overflow spills to a
    shared mutex-protected pool rather than resizing.

    An idle worker whose steal sweep keeps failing escalates from
    spinning to sleeping: the [k]-th consecutive failed sweep past the
    spin threshold sleeps [min park_max (k * park_min)] seconds.
    [park_min] (default [2e-6]) is the escalation step, [park_max]
    (default [1e-3]) the cap — raise [park_max] to cede more CPU on
    oversubscribed machines, lower it to cut wake-up latency on bursty
    dags. [Invalid_argument] unless [0 < park_min <= park_max], both
    finite.

    [metrics], when given, receives after the run the counters
    [par.tasks], [par.steals], [par.steal_attempts], [par.overflows],
    [par.parks] and the gauges [par.domains], [par.wall_s] (counters
    accumulate across runs sharing a registry). [sink], when given,
    receives one [task_alloc]/[task_complete] pair per task, stamped
    with wall-clock seconds since the run started and carrying the
    executing domain as the client id — per-domain buffers are merged
    into [sink] time-sorted after the join, so the Perfetto exporter
    renders one track per domain. Neither costs anything when absent.

    [live], when given, receives the same [par.*] counters {e while the
    run is executing}: each domain increments its own shard of the
    {!Ic_obs.Live} sharded cells (shard = worker id), plus a
    [par.task_s] latency histogram per task — so a scrape endpoint in
    another thread of control reads monotone, domain-safe counts
    mid-run. The [par.domains] / [par.wall_s] gauges are set at the
    join. Costs one branch per event when absent; create the registry
    with [~shards] at least [domains] to keep the cells uncontended. *)

val executor :
  ?domains:int ->
  ?order:order ->
  ?priority:int array ->
  ?capacity:int ->
  ?park_min:float ->
  ?park_max:float ->
  ?metrics:Ic_obs.Metrics.t ->
  ?sink:Ic_obs.Trace.t ->
  ?live:Ic_obs.Live.t ->
  ?on_stats:(stats -> unit) ->
  unit ->
  Ic_dag.Dag.t ->
  (int -> unit) ->
  unit
(** [executor () ] as an [Ic_compute.Engine.execute ?executor] strategy:
    partially applied to its options, it runs the engine's [step] through
    {!run}. [on_stats] receives the run's {!stats} (the engine's
    signature has nowhere to return them). *)
