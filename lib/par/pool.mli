(** A sharded priority pool: the ready-set for the [Ic_priority] ordering
    mode.

    Where the deques give each domain plain LIFO/FIFO access, the pool
    keeps every ready task ranked by a precomputed priority (lower rank =
    earlier in the IC-optimal or heuristic order). One shard — a binary
    min-heap under a mutex — per domain: a domain pushes newly-ready
    tasks to its own shard and pops the lowest-rank task it can see,
    preferring its own shard and falling back to {e stealing} the best
    task of another domain's shard ([Mutex.try_lock], so a contended
    shard is skipped rather than waited on).

    This is deliberately not a single global heap: the shards trade a
    little priority fidelity (a domain may run its local rank-7 task
    while a remote shard holds rank-3) for an uncontended fast path,
    which is the same locality-vs-order trade the paper's batched
    regimens make. *)

type t

val create : shards:int -> rank:int array -> t
(** [create ~shards ~rank] makes an empty pool with [shards] shards over
    tasks ranked by [rank] (one entry per node; the array is shared, not
    copied). Raises [Invalid_argument] if [shards <= 0]. *)

val push : t -> shard:int -> int -> unit
(** Insert a task into the given shard. *)

val pop : t -> shard:int -> int option
(** Take the lowest-rank task of the given shard (blocking on its
    mutex; the owner's own shard is expected to be nearly uncontended). *)

val try_steal : t -> shard:int -> int option
(** Take the lowest-rank task of the given shard, or [None] without
    blocking if the shard is empty or its lock is held. *)

val size : t -> int
(** Approximate total occupancy (racy; exact when quiescent). *)
