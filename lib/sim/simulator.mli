(** Event-driven Internet-computing simulator.

    Models the IC scenario of Section 2.2: a server holds a computation-dag
    and allocates ELIGIBLE tasks to remote clients on request; clients have
    heterogeneous speeds and noisy execution times, so tasks complete out of
    allocation order — the situation IC-optimal schedules are designed to be
    robust in. The simulator measures the two quantities the theory argues
    about: how often clients find no allocatable task ({e gridlock} /
    stalls), and how many eligible tasks are available over time
    ({e parallelism} for batch requests). See DESIGN.md §2 for why this
    substitutes for the paper's Condor/PRIO-based assessment [15, 19]. *)

type config = {
  n_clients : int;
  speed : int -> float;  (** speed of client [i] (work units per time) *)
  jitter : float;
      (** multiplicative execution-time noise amplitude: a task's duration
          is [work/speed * (1 + jitter * u)], [u ~ U(0,1)] *)
  failure_probability : float;
      (** chance that an allocated task is lost (client crashed, result
          never returned) and must be re-allocated — the unreliable-client
          regime of the paper's reference [14]. Must be in [0, 1). *)
  comm_time : float;
      (** Internet-transfer time per dependence arc whose endpoint tasks
          ran on different clients (a parent's result must travel via the
          server) — "communication, a much dearer resource in IC"
          (Section 4). Added to the task's wall-clock duration, unscaled by
          client speed. Sources pay it for their server-provided input. *)
  seed : int;
}

val config :
  ?n_clients:int -> ?speed:(int -> float) -> ?jitter:float ->
  ?failure_probability:float -> ?comm_time:float -> ?seed:int -> unit -> config
(** Defaults: 4 clients, unit speeds, jitter 0.25, no failures, free
    communication, seed 0x5EED. *)

type result = {
  makespan : float;
  busy_time : float;  (** summed over clients *)
  utilization : float;
      (** [busy_time / (n_clients * makespan)]; [0] when the makespan is
          zero (an empty dag, or all-zero work), never NaN *)
  stalls : int;
      (** task requests that found no eligible task although unfinished
          work remained — the gridlock events *)
  stall_time : float;  (** total client time spent stalled *)
  failures : int;  (** allocations lost to unreliable clients *)
  comm_total : float;  (** total time spent moving data between clients *)
  mean_eligible : float;
      (** time-average of the number of eligible-but-unallocated tasks
          ([0] when the makespan is zero) *)
  allocation_order : int list;
  completion_order : int list;
}

val run :
  ?sink:Ic_obs.Trace.t -> ?metrics:Ic_obs.Metrics.t ->
  config -> Ic_heuristics.Policy.t -> workload:Workload.t -> Ic_dag.Dag.t ->
  result
(** [run cfg policy ~workload g] simulates one complete execution of [g].

    [sink], when given, receives the full structured event stream with
    simulated timestamps: task allocation / start / completion / failure
    per client, client stall/resume periods, frontier push/pop (via
    {!Ic_dag.Frontier.set_observer}), and an {!Ic_obs.Trace.Eligible_count}
    sample whenever the allocatable pool changes — ready for
    {!Ic_obs.Exporter.chrome_trace}. [metrics], when given, accumulates
    [sim.*] counters (tasks allocated / completed / failed, stalls),
    histograms (task latency, queue depth at allocation, stall duration)
    and end-of-run gauges (makespan, utilization, mean eligible,
    per-client busy fraction). With neither installed the run costs one
    branch per instrumentation site; identically seeded runs produce
    identical results and identical traces. *)

val pp_result : Format.formatter -> result -> unit
