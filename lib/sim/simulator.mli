(** Event-driven Internet-computing simulator.

    Models the IC scenario of Section 2.2: a server holds a computation-dag
    and allocates ELIGIBLE tasks to remote clients on request; clients have
    heterogeneous speeds and noisy execution times, so tasks complete out of
    allocation order — the situation IC-optimal schedules are designed to be
    robust in. The simulator measures the two quantities the theory argues
    about: how often clients find no allocatable task ({e gridlock} /
    stalls), and how many eligible tasks are available over time
    ({e parallelism} for batch requests). See DESIGN.md §2 for why this
    substitutes for the paper's Condor/PRIO-based assessment [15, 19].

    Clients are unreliable in the ways of the paper's reference [14]: an
    {!Ic_fault.Plan} injects permanent crashes, transient disconnects with
    rejoin, straggler slowdowns and in-flight result loss, and an
    {!Ic_fault.Recovery} policy decides how the server reacts — liveness
    timeouts, bounded retries with backoff, speculative replicas with
    first-result-wins dedup, and the abort conditions of graceful
    degradation. Both are fully seeded: identically configured runs are
    byte-reproducible, faults included. *)

type config = {
  n_clients : int;
  speed : int -> float;
      (** speed of client [i] (work units per time); must be finite and
          positive — checked for every client up front in {!run} *)
  jitter : float;
      (** multiplicative execution-time noise amplitude: a task's duration
          is [work/speed * (1 + jitter * u)], [u ~ U(0,1)]. Must be finite
          and non-negative. *)
  failure_probability : float;
      (** chance that an allocated task is lost (client crashed, result
          never returned) and must be re-allocated — the unreliable-client
          regime of the paper's reference [14]. Must be in [0, 1). Kept as
          the compat knob for the historical end-of-task coin flip; when
          positive it overrides [faults]'s [fail_probability]. *)
  comm_time : float;
      (** Internet-transfer time per dependence arc whose endpoint tasks
          ran on different clients (a parent's result must travel via the
          server) — "communication, a much dearer resource in IC"
          (Section 4). Added to the task's wall-clock duration, unscaled by
          client speed. Sources pay it for their server-provided input. *)
  seed : int;
  faults : Ic_fault.Plan.t;  (** what goes wrong; default {!Ic_fault.Plan.none} *)
  recovery : Ic_fault.Recovery.t;
      (** what the server does about it; default
          {!Ic_fault.Recovery.default} (no timeouts, unbounded immediate
          retries, no speculation, no deadline — the historical
          behaviour) *)
}

val config :
  ?n_clients:int -> ?speed:(int -> float) -> ?jitter:float ->
  ?failure_probability:float -> ?comm_time:float -> ?seed:int ->
  ?faults:Ic_fault.Plan.t -> ?recovery:Ic_fault.Recovery.t -> unit -> config
(** Defaults: 4 clients, unit speeds, jitter 0.25, no failures, free
    communication, seed 0x5EED, no faults, default recovery. Raises
    [Invalid_argument] on out-of-range knobs (including negative or
    non-finite jitter). *)

type abort_reason =
  | Retry_budget of int
      (** this task exhausted [recovery.max_retries] re-runs *)
  | Deadline  (** the simulated clock passed [recovery.deadline] *)
  | No_progress
      (** unfinished work remains but no pending event can ever release
          it — e.g. every client crashed, or results were lost with
          liveness timeouts disabled *)

type outcome = Finished | Aborted of abort_reason

type result = {
  makespan : float;
  busy_time : float;  (** summed over clients *)
  utilization : float;
      (** [busy_time / (n_clients * makespan)]; [0] when the makespan is
          zero (an empty dag, or all-zero work), never NaN *)
  stalls : int;
      (** task requests that found no eligible task although unfinished
          work remained — the gridlock events *)
  stall_time : float;  (** total client time spent stalled *)
  failures : int;  (** attempts lost to the reported-failure coin flip *)
  comm_total : float;  (** total time spent moving data between clients *)
  mean_eligible : float;
      (** time-average of the number of eligible-but-unallocated tasks
          ([0] when the makespan is zero) *)
  allocation_order : int list;
      (** every attempt launched, in allocation order; a task appears
          once per attempt *)
  completion_order : int list;
      (** each completed task exactly once, in completion order, no
          matter how many replicas ran — first result wins *)
  outcome : outcome;
  unfinished : int list;
      (** tasks not completed when the run ended, ascending; the
          descendant cone of the blocked work. Empty iff [Finished]. *)
  timeouts : int;  (** liveness timeouts fired *)
  retries : int;  (** retries scheduled (after failures and timeouts) *)
  lost : int;  (** results silently lost in transit *)
  speculations : int;  (** speculative replicas released *)
  cancelled : int;  (** redundant replicas discarded *)
  crashes : int;  (** permanent client crashes *)
  disconnects : int;  (** transient client disconnects *)
}

val run :
  ?sink:Ic_obs.Trace.t -> ?metrics:Ic_obs.Metrics.t ->
  config -> Ic_heuristics.Policy.t -> workload:Workload.t -> Ic_dag.Dag.t ->
  result
(** [run cfg policy ~workload g] simulates one complete execution of [g]
    (or a partial one, when graceful degradation aborts it — see
    {!abort_reason}).

    The policy is driven through {!Ic_heuristics.Policy.Robust}, so
    re-notification (retries, speculation) and withdrawal (another
    replica finished first) are safe for every shipped policy.

    [sink], when given, receives the full structured event stream with
    simulated timestamps: task allocation / start / completion / failure
    per client, client stall/resume periods, frontier push/pop (via
    {!Ic_dag.Frontier.set_observer}), an {!Ic_obs.Trace.Eligible_count}
    sample whenever the allocatable pool changes, and the fault/recovery
    events (timeout fired, retry scheduled, speculative launch, replica
    cancelled, client crash / disconnect / rejoin) — ready for
    {!Ic_obs.Exporter.chrome_trace}. [metrics], when given, accumulates
    [sim.*] counters (tasks allocated / completed / failed / lost,
    stalls, timeouts, retries, speculations, replicas cancelled, client
    crashes / disconnects), histograms (per-attempt task latency,
    end-to-end first-allocation-to-completion latency, queue depth at
    allocation, stall duration) and end-of-run gauges (makespan,
    utilization, mean eligible, unfinished count, per-client busy
    fraction). With neither installed the run costs one branch per
    instrumentation site; identically seeded runs produce identical
    results and identical traces.

    Raises [Invalid_argument] if [cfg.speed] yields a non-positive or
    non-finite speed for any client. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_result : Format.formatter -> result -> unit
