module Dag = Ic_dag.Dag
module Profile = Ic_dag.Profile
module Policy = Ic_heuristics.Policy
module Plan = Ic_fault.Plan
module Recovery = Ic_fault.Recovery

type regime = {
  name : string;
  faults : Plan.t;
  recovery : Recovery.t;
}

type robustness_row = {
  regime : string;
  policy : string;
  sim : Simulator.result;
}

type row = {
  policy : string;
  sim : Simulator.result;
  profile_wins : int;
  profile_losses : int;
  mean_profile : float;
}

let mean p =
  if Array.length p = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 p) /. float_of_int (Array.length p)

let compare_policies ?config ?(workload = Workload.unit) ?(extra = []) g
    ~theory =
  let config =
    match config with Some c -> c | None -> Simulator.config ()
  in
  let theory_policy = Policy.of_schedule "ic-optimal" theory in
  let theory_profile = Profile.run g (Policy.run theory_policy g) in
  let row policy =
    let sim = Simulator.run config policy ~workload g in
    let profile = Profile.run g (Policy.run policy g) in
    let wins = ref 0 and losses = ref 0 in
    Array.iteri
      (fun t e ->
        if theory_profile.(t) > e then incr wins
        else if theory_profile.(t) < e then incr losses)
      profile;
    {
      policy = Policy.name policy;
      sim;
      profile_wins = !wins;
      profile_losses = !losses;
      mean_profile = mean profile;
    }
  in
  row theory_policy :: List.map row (Policy.baselines @ extra)

(* --- time-resolved eligibility curves (via the tracing subsystem) --- *)

type timeline = (float * int) array

let eligibility_timeline ?config ?(workload = Workload.unit) policy g =
  let config = match config with Some c -> c | None -> Simulator.config () in
  let tr = Ic_obs.Trace.create () in
  ignore (Simulator.run ~sink:tr config policy ~workload g);
  Ic_obs.Trace.eligibility_timeline tr

let eligibility_curves ?config ?workload ?(extra = []) g ~theory =
  let theory_policy = Policy.of_schedule "ic-optimal" theory in
  List.map
    (fun p -> (Policy.name p, eligibility_timeline ?config ?workload p g))
    (theory_policy :: (Policy.baselines @ extra))

let timeline_at timeline time =
  (* the last sample at or before [time]; 0 before the first sample *)
  let n = Array.length timeline in
  let value = ref 0 in
  let i = ref 0 in
  while !i < n && fst timeline.(!i) <= time do
    value := snd timeline.(!i);
    incr i
  done;
  !value

let pp_curves ppf curves =
  let fractions = [| 0.0; 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875 |] in
  Format.fprintf ppf "%-16s" "policy";
  Array.iter (fun f -> Format.fprintf ppf " %6.0f%%" (100.0 *. f)) fractions;
  Format.fprintf ppf "   (eligible tasks at fractions of each makespan)@.";
  List.iter
    (fun (name, timeline) ->
      let horizon =
        if Array.length timeline = 0 then 0.0
        else fst timeline.(Array.length timeline - 1)
      in
      Format.fprintf ppf "%-16s" name;
      Array.iter
        (fun f -> Format.fprintf ppf " %7d" (timeline_at timeline (f *. horizon)))
        fractions;
      Format.fprintf ppf "@.")
    curves

(* --- robustness under fault regimes (experiment E17) --- *)

let default_regimes =
  (* crashes and flaky transport both need liveness timeouts to recover;
     stragglers are countered by speculation instead *)
  let recover =
    Recovery.make ~timeout_factor:3.0 ~detection_latency:0.5
      ~backoff_base:0.25 ~backoff_jitter:0.5 ()
  in
  [
    { name = "baseline"; faults = Plan.none; recovery = Recovery.default };
    {
      name = "crashy";
      faults = Plan.make ~crash_rate:0.02 ~fail_probability:0.05 ();
      recovery = recover;
    };
    {
      name = "flaky";
      faults =
        Plan.make ~disconnect_rate:0.05 ~mean_downtime:2.0
          ~loss_probability:0.1 ();
      recovery = recover;
    };
    {
      name = "straggly";
      faults = Plan.make ~straggler_probability:0.15 ~straggler_factor:8.0 ();
      recovery =
        Recovery.make ~speculation_factor:2.0 ~timeout_factor:6.0
          ~backoff_base:0.25 ~backoff_jitter:0.5 ();
    };
  ]

let robustness_study ?config ?(workload = Workload.unit)
    ?(regimes = default_regimes) ?(extra = []) g ~theory =
  let base = match config with Some c -> c | None -> Simulator.config () in
  let theory_policy = Policy.of_schedule "ic-optimal" theory in
  let policies = theory_policy :: (Policy.baselines @ extra) in
  List.concat_map
    (fun rg ->
      let cfg =
        { base with Simulator.faults = rg.faults; recovery = rg.recovery }
      in
      List.map
        (fun p ->
          ({
             regime = rg.name;
             policy = Policy.name p;
             sim = Simulator.run cfg p ~workload g;
           }
            : robustness_row))
        policies)
    regimes

let pp_robustness ppf (rows : robustness_row list) =
  let outcome_tag r =
    match r.Simulator.outcome with
    | Simulator.Finished -> "ok"
    | Simulator.Aborted (Simulator.Retry_budget v) ->
      Printf.sprintf "budget(t%d)" v
    | Simulator.Aborted Simulator.Deadline -> "deadline"
    | Simulator.Aborted Simulator.No_progress -> "no-progress"
  in
  Format.fprintf ppf "%-10s %-16s %9s %6s %7s %7s %8s %5s %5s %s@."
    "regime" "policy" "makespan" "util%" "stalls" "retries" "timeouts"
    "spec" "lost" "outcome";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-16s %9.3f %6.1f %7d %7d %8d %5d %5d %s@."
        r.regime r.policy r.sim.Simulator.makespan
        (100.0 *. r.sim.Simulator.utilization)
        r.sim.Simulator.stalls r.sim.Simulator.retries
        r.sim.Simulator.timeouts r.sim.Simulator.speculations
        r.sim.Simulator.lost (outcome_tag r.sim))
    rows

let pp_rows ppf rows =
  Format.fprintf ppf "%-16s %9s %6s %7s %8s %7s %7s@."
    "policy" "makespan" "util%" "stalls" "mean-E" "wins" "losses";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %9.3f %6.1f %7d %8.2f %7d %7d@."
        r.policy r.sim.Simulator.makespan
        (100.0 *. r.sim.Simulator.utilization)
        r.sim.Simulator.stalls r.mean_profile r.profile_wins r.profile_losses)
    rows
