(** Policy comparison harness: the [15]/[19]-style assessment (experiment
    E16). Runs the theory's IC-optimal-priority policy and the baseline
    heuristics over a dag, both as pure list schedules (eligibility-profile
    dominance) and through the simulator (stalls, utilization). *)

type regime = {
  name : string;
  faults : Ic_fault.Plan.t;
  recovery : Ic_fault.Recovery.t;
}
(** A named fault environment: what goes wrong, and how the server is
    configured to cope. Used by {!robustness_study}. *)

type robustness_row = {
  regime : string;
  policy : string;
  sim : Simulator.result;
}

type row = {
  policy : string;
  sim : Simulator.result;
  profile_wins : int;
      (** steps where the theory's profile strictly exceeds this policy's *)
  profile_losses : int;
      (** steps where this policy's profile strictly exceeds the theory's
          (0 whenever the theory's schedule is IC-optimal) *)
  mean_profile : float;  (** average eligibility over the list schedule *)
}

val compare_policies :
  ?config:Simulator.config ->
  ?workload:Workload.t ->
  ?extra:Ic_heuristics.Policy.t list ->
  Ic_dag.Dag.t ->
  theory:Ic_dag.Schedule.t ->
  row list
(** First row is the theory policy (built from [theory] via
    {!Ic_heuristics.Policy.of_schedule}), then the baselines and [extra].
    [profile_wins]/[profile_losses] for the theory row are 0 by
    definition. *)

val pp_rows : Format.formatter -> row list -> unit
(** An aligned text table. *)

(** {1 Time-resolved eligibility curves}

    The profile comparisons above are per execution {e step}; these run
    the simulator with an {!Ic_obs.Trace} sink and extract eligibility
    over simulated {e time}, which is what the paper's temporal argument
    (stalls happen when the pool empties at some moment) is actually
    about. *)

type timeline = (float * int) array
(** [(time, eligible)] samples in time order, one per pool change. *)

val eligibility_timeline :
  ?config:Simulator.config -> ?workload:Workload.t ->
  Ic_heuristics.Policy.t -> Ic_dag.Dag.t -> timeline
(** One traced simulator run under the policy. *)

val eligibility_curves :
  ?config:Simulator.config -> ?workload:Workload.t ->
  ?extra:Ic_heuristics.Policy.t list ->
  Ic_dag.Dag.t -> theory:Ic_dag.Schedule.t -> (string * timeline) list
(** A [(policy name, timeline)] row per policy, in the same order as
    {!compare_policies}: theory first, then the baselines and [extra]. *)

val timeline_at : timeline -> float -> int
(** The eligible count at a given simulated time (the last sample at or
    before it; [0] before the first). *)

val pp_curves : Format.formatter -> (string * timeline) list -> unit
(** An aligned table sampling each curve at fixed fractions of that
    policy's own makespan. *)

(** {1 Robustness under fault regimes}

    Experiment E17: how do IC-optimal schedules degrade, relative to the
    heuristic baselines, when clients crash, disconnect, straggle and
    lose results? Each {!regime} pairs an {!Ic_fault.Plan} with the
    {!Ic_fault.Recovery} policy suited to it; every policy runs under
    every regime with the same simulator configuration and seed. *)

val default_regimes : regime list
(** [baseline] (no faults, default recovery), [crashy] (permanent
    crashes + reported failures, timeouts + backed-off retries),
    [flaky] (transient disconnects + in-flight loss, same recovery) and
    [straggly] (slowdown episodes, speculation). *)

val robustness_study :
  ?config:Simulator.config ->
  ?workload:Workload.t ->
  ?regimes:regime list ->
  ?extra:Ic_heuristics.Policy.t list ->
  Ic_dag.Dag.t ->
  theory:Ic_dag.Schedule.t ->
  robustness_row list
(** One row per (regime, policy) pair, regimes outermost; policies are
    the theory policy, the baselines and [extra], as in
    {!compare_policies}. [config]'s own [faults]/[recovery] fields are
    overridden by each regime's. *)

val pp_robustness : Format.formatter -> robustness_row list -> unit
(** An aligned makespan/stall/recovery table, one line per row; aborted
    runs are tagged with their {!Simulator.abort_reason}. *)
