module Dag = Ic_dag.Dag
module Frontier = Ic_dag.Frontier
module Policy = Ic_heuristics.Policy
module Heap = Ic_heuristics.Heap

type config = {
  n_clients : int;
  speed : int -> float;
  jitter : float;
  failure_probability : float;
  comm_time : float;
  seed : int;
}

let config ?(n_clients = 4) ?(speed = fun _ -> 1.0) ?(jitter = 0.25)
    ?(failure_probability = 0.0) ?(comm_time = 0.0) ?(seed = 0x5EED) () =
  if n_clients < 1 then invalid_arg "Simulator.config: need a client";
  if failure_probability < 0.0 || failure_probability >= 1.0 then
    invalid_arg "Simulator.config: failure probability must be in [0, 1)";
  if comm_time < 0.0 then invalid_arg "Simulator.config: negative comm time";
  { n_clients; speed; jitter; failure_probability; comm_time; seed }

type result = {
  makespan : float;
  busy_time : float;
  utilization : float;
  stalls : int;
  stall_time : float;
  failures : int;
  comm_total : float;
  mean_eligible : float;
  allocation_order : int list;
  completion_order : int list;
}

let run cfg policy ~workload g =
  let n = Dag.n_nodes g in
  let work = workload g in
  let rng = Random.State.make [| cfg.seed |] in
  let inst = Policy.instantiate policy g in
  let fr = Frontier.create g in
  let pool_size = ref 0 in
  let notify v =
    Policy.notify inst v;
    incr pool_size
  in
  Frontier.iter notify fr;
  let events : (float, int * int) Heap.t = Heap.create () in
  (* metrics *)
  let now = ref 0.0 in
  let busy = Array.make cfg.n_clients 0.0 in
  let stalls = ref 0 in
  let stall_time = ref 0.0 in
  let stalled_since = Array.make cfg.n_clients nan in
  let stalled = Queue.create () in
  let eligible_integral = ref 0.0 in
  let allocated = ref 0 in
  let completed = ref 0 in
  let failures = ref 0 in
  let comm_total = ref 0.0 in
  let computed_by = Array.make n (-1) in
  let allocation_order = ref [] in
  let completion_order = ref [] in
  let allocate client =
    match Policy.select inst with
    | Some v ->
      decr pool_size;
      incr allocated;
      allocation_order := v :: !allocation_order;
      let noise = 1.0 +. (cfg.jitter *. Random.State.float rng 1.0) in
      (* parents computed elsewhere must ship their results over the
         Internet; a source's input comes from the server (one transfer) *)
      let transfers =
        if cfg.comm_time = 0.0 then 0
        else if Dag.is_source g v then 1
        else
          Dag.fold_pred g v 0 (fun acc p ->
              if computed_by.(p) = client then acc else acc + 1)
      in
      let comm = cfg.comm_time *. float_of_int transfers in
      comm_total := !comm_total +. comm;
      let duration = (work v /. cfg.speed client *. noise) +. comm in
      busy.(client) <- busy.(client) +. duration;
      Heap.push events (!now +. duration) (client, v)
    | None ->
      if !allocated < n then begin
        (* a genuine gridlock event: work remains but none is eligible *)
        incr stalls;
        if Float.is_nan stalled_since.(client) then
          stalled_since.(client) <- !now;
        Queue.add client stalled
      end
      (* otherwise the computation is draining; the client simply retires *)
  in
  for client = 0 to cfg.n_clients - 1 do
    allocate client
  done;
  while !completed < n do
    match Heap.pop events with
    | None -> assert false (* tasks outstanding but no events pending *)
    | Some (t, (client, v)) ->
      eligible_integral :=
        !eligible_integral +. (float_of_int !pool_size *. (t -. !now));
      now := t;
      if
        cfg.failure_probability > 0.0
        && Random.State.float rng 1.0 < cfg.failure_probability
      then begin
        (* the client vanished with the task: put it back in the pool *)
        incr failures;
        decr allocated;
        notify v
      end
      else begin
        incr completed;
        computed_by.(v) <- client;
        completion_order := v :: !completion_order;
        Frontier.execute fr ~on_promote:notify v
      end;
      (* serve clients that were stalled first, then the freed client *)
      let waiters = Queue.length stalled in
      for _ = 1 to waiters do
        let c = Queue.pop stalled in
        if !pool_size > 0 then begin
          stall_time := !stall_time +. (!now -. stalled_since.(c));
          stalled_since.(c) <- nan;
          allocate c
        end
        else begin
          (* still nothing for this client *)
          if !allocated >= n then begin
            stall_time := !stall_time +. (!now -. stalled_since.(c));
            stalled_since.(c) <- nan
          end
          else Queue.add c stalled
        end
      done;
      allocate client
  done;
  let makespan = !now in
  let busy_time = Array.fold_left ( +. ) 0.0 busy in
  {
    makespan;
    busy_time;
    utilization =
      (if makespan > 0.0 then busy_time /. (float_of_int cfg.n_clients *. makespan)
       else 1.0);
    stalls = !stalls;
    stall_time = !stall_time;
    failures = !failures;
    comm_total = !comm_total;
    mean_eligible =
      (if makespan > 0.0 then !eligible_integral /. makespan else 0.0);
    allocation_order = List.rev !allocation_order;
    completion_order = List.rev !completion_order;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>makespan      %.3f@,utilization   %.1f%%@,stalls        %d@,\
     stall time    %.3f@,failures      %d@,comm time     %.3f@,\
     mean eligible %.2f@]"
    r.makespan (100.0 *. r.utilization) r.stalls r.stall_time r.failures
    r.comm_total r.mean_eligible
