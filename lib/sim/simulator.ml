module Dag = Ic_dag.Dag
module Frontier = Ic_dag.Frontier
module Policy = Ic_heuristics.Policy
module Heap = Ic_heuristics.Heap
module Trace = Ic_obs.Trace
module Metrics = Ic_obs.Metrics
module Plan = Ic_fault.Plan
module Recovery = Ic_fault.Recovery
module Span = Ic_prof.Span

type config = {
  n_clients : int;
  speed : int -> float;
  jitter : float;
  failure_probability : float;
  comm_time : float;
  seed : int;
  faults : Plan.t;
  recovery : Recovery.t;
}

let config ?(n_clients = 4) ?(speed = fun _ -> 1.0) ?(jitter = 0.25)
    ?(failure_probability = 0.0) ?(comm_time = 0.0) ?(seed = 0x5EED)
    ?(faults = Plan.none) ?(recovery = Recovery.default) () =
  if n_clients < 1 then invalid_arg "Simulator.config: need a client";
  if failure_probability < 0.0 || failure_probability >= 1.0 then
    invalid_arg "Simulator.config: failure probability must be in [0, 1)";
  if comm_time < 0.0 then invalid_arg "Simulator.config: negative comm time";
  if (not (Float.is_finite jitter)) || jitter < 0.0 then
    invalid_arg "Simulator.config: jitter must be finite and non-negative";
  {
    n_clients;
    speed;
    jitter;
    failure_probability;
    comm_time;
    seed;
    faults;
    recovery;
  }

type abort_reason = Retry_budget of int | Deadline | No_progress
type outcome = Finished | Aborted of abort_reason

type result = {
  makespan : float;
  busy_time : float;
  utilization : float;
  stalls : int;
  stall_time : float;
  failures : int;
  comm_total : float;
  mean_eligible : float;
  allocation_order : int list;
  completion_order : int list;
  outcome : outcome;
  unfinished : int list;
  timeouts : int;
  retries : int;
  lost : int;
  speculations : int;
  cancelled : int;
  crashes : int;
  disconnects : int;
}

(* The registered instruments when a metrics registry is supplied, resolved
   once up front so the hot loop pays a single option branch per site. *)
type meters = {
  m_allocated : Metrics.counter;
  m_completed : Metrics.counter;
  m_failed : Metrics.counter;
  m_stalls : Metrics.counter;
  m_timeouts : Metrics.counter;
  m_retries : Metrics.counter;
  m_lost : Metrics.counter;
  m_speculations : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_crashes : Metrics.counter;
  m_disconnects : Metrics.counter;
  h_latency : Metrics.histogram;
  h_e2e : Metrics.histogram;
  h_queue_depth : Metrics.histogram;
  h_stall : Metrics.histogram;
}

let latency_buckets = [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]
let e2e_buckets = [| 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
let queue_buckets = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
let stall_buckets = [| 0.125; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 |]

let meters_of m =
  {
    m_allocated = Metrics.counter m "sim.tasks_allocated";
    m_completed = Metrics.counter m "sim.tasks_completed";
    m_failed = Metrics.counter m "sim.tasks_failed";
    m_stalls = Metrics.counter m "sim.stalls";
    m_timeouts = Metrics.counter m "sim.timeouts";
    m_retries = Metrics.counter m "sim.retries";
    m_lost = Metrics.counter m "sim.tasks_lost";
    m_speculations = Metrics.counter m "sim.speculations";
    m_cancelled = Metrics.counter m "sim.replicas_cancelled";
    m_crashes = Metrics.counter m "sim.client_crashes";
    m_disconnects = Metrics.counter m "sim.client_disconnects";
    h_latency = Metrics.histogram m "sim.task_latency" ~buckets:latency_buckets;
    h_e2e = Metrics.histogram m "sim.task_e2e_latency" ~buckets:e2e_buckets;
    h_queue_depth = Metrics.histogram m "sim.queue_depth" ~buckets:queue_buckets;
    h_stall = Metrics.histogram m "sim.stall_duration" ~buckets:stall_buckets;
  }

(* One client-side run of one task. An attempt is [closed] once it no
   longer occupies a client (natural end, cancellation, crash), and
   [resolved] once the server has reacted to it (accepted the result,
   scheduled recovery, or cancelled it). A lost attempt closes without
   resolving: the server only finds out through its liveness timeout. *)
type attempt = {
  at_task : int;
  at_client : int;
  at_alloc : float;
  at_lost : bool;
  at_failed : bool;
  mutable at_closed : bool;
  mutable at_resolved : bool;
}

type ev =
  | Ev_complete of int  (** attempt *)
  | Ev_timeout of int  (** attempt *)
  | Ev_spec of int  (** attempt *)
  | Ev_crash of int  (** client *)
  | Ev_disconnect of int * float  (** client, downtime (from the churn stream) *)
  | Ev_rejoin of int  (** client *)
  | Ev_retry of int  (** task *)

(* client states; values >= 0 mean Busy running that attempt id *)
let st_idle = -1
let st_waiting = -2
let st_offline = -3
let st_dead = -4

let run ?sink ?metrics cfg policy ~workload g =
  Span.time "sim.run" @@ fun () ->
  Span.enter "sim.setup";
  let n = Dag.n_nodes g in
  let work = workload g in
  let speeds =
    Array.init cfg.n_clients (fun i ->
        let s = cfg.speed i in
        if (not (Float.is_finite s)) || s <= 0.0 then
          invalid_arg
            (Printf.sprintf
               "Simulator.run: speed of client %d is %g, must be finite and \
                positive"
               i s);
        s)
  in
  let plan =
    if cfg.failure_probability > 0.0 then
      Plan.with_fail_probability cfg.faults cfg.failure_probability
    else cfg.faults
  in
  let rc = cfg.recovery in
  let rng = Random.State.make [| cfg.seed |] in
  let robust = Policy.Robust.create policy g in
  let fr = Frontier.create g in
  let now = ref 0.0 in
  let meters = match metrics with None -> None | Some m -> Some (meters_of m) in
  (* frontier push/pop events are stamped with the simulated clock *)
  (match sink with
  | None -> ()
  | Some tr ->
    Frontier.set_observer fr
      (Some
         {
           Frontier.on_push = (fun v -> Trace.frontier_push tr ~time:!now ~node:v);
           on_pop = (fun v -> Trace.frontier_pop tr ~time:!now ~node:v);
         }));
  Frontier.iter (Policy.Robust.notify robust) fr;
  (match sink with
  | None -> ()
  | Some tr ->
    (* the initial sources are eligible before anything executes *)
    Frontier.iter (fun v -> Trace.frontier_push tr ~time:0.0 ~node:v) fr;
    Trace.eligible_count tr ~time:0.0 ~count:(Policy.Robust.size robust));
  let trace_eligible () =
    match sink with
    | None -> ()
    | Some tr ->
      Trace.eligible_count tr ~time:!now ~count:(Policy.Robust.size robust)
  in
  let events : (float, ev) Heap.t = Heap.create () in
  (* per-client state *)
  let busy = Array.make cfg.n_clients 0.0 in
  let st = Array.make cfg.n_clients st_idle in
  let stalled_since = Array.make cfg.n_clients nan in
  let waiting = Queue.create () in
  (* per-task state *)
  let computed_by = Array.make (max n 1) (-1) in
  let attempts_made = Array.make (max n 1) 0 in
  let live = Array.make (max n 1) 0 in
  let open_attempts = Array.make (max n 1) [] in
  let pending = Array.make (max n 1) false in
  let retries_of = Array.make (max n 1) 0 in
  let first_alloc = Array.make (max n 1) nan in
  (* attempt table, growable *)
  let dummy =
    {
      at_task = -1;
      at_client = -1;
      at_alloc = 0.0;
      at_lost = false;
      at_failed = false;
      at_closed = true;
      at_resolved = true;
    }
  in
  let atts = ref (Array.make 64 dummy) in
  let n_atts = ref 0 in
  let att id = !atts.(id) in
  let new_attempt a =
    if !n_atts = Array.length !atts then begin
      let bigger = Array.make (2 * !n_atts) dummy in
      Array.blit !atts 0 bigger 0 !n_atts;
      atts := bigger
    end;
    let id = !n_atts in
    !atts.(id) <- a;
    incr n_atts;
    id
  in
  (* counters *)
  let stalls = ref 0 in
  let stall_time = ref 0.0 in
  let eligible_integral = ref 0.0 in
  let inflight = ref 0 in
  let completed = ref 0 in
  let failures = ref 0 in
  let timeouts = ref 0 in
  let retries = ref 0 in
  let lost = ref 0 in
  let speculations = ref 0 in
  let cancelled = ref 0 in
  let crashes = ref 0 in
  let disconnects = ref 0 in
  let comm_total = ref 0.0 in
  let allocation_order = ref [] in
  let completion_order = ref [] in
  let abort = ref None in
  let end_stall c =
    let d = !now -. stalled_since.(c) in
    stall_time := !stall_time +. d;
    stalled_since.(c) <- nan;
    (match sink with
    | None -> ()
    | Some tr -> Trace.client_resume tr ~time:!now ~client:c);
    match meters with None -> () | Some mt -> Metrics.observe mt.h_stall d
  in
  let close_attempt id =
    let a = att id in
    a.at_closed <- true;
    busy.(a.at_client) <- busy.(a.at_client) +. (!now -. a.at_alloc);
    live.(a.at_task) <- live.(a.at_task) - 1;
    if live.(a.at_task) = 0 then decr inflight
  in
  let launch client v =
    allocation_order := v :: !allocation_order;
    let attempt_no = attempts_made.(v) in
    attempts_made.(v) <- attempt_no + 1;
    Span.enter "sim.fault_draw";
    let fate = Plan.attempt plan ~task:v ~attempt:attempt_no in
    Span.leave ();
    let noise = 1.0 +. (cfg.jitter *. Random.State.float rng 1.0) in
    (* parents computed elsewhere must ship their results over the
       Internet; a source's input comes from the server (one transfer) *)
    let transfers =
      if cfg.comm_time = 0.0 then 0
      else if Dag.is_source g v then 1
      else
        Dag.fold_pred g v 0 (fun acc p ->
            if computed_by.(p) = client then acc else acc + 1)
    in
    let comm = cfg.comm_time *. float_of_int transfers in
    comm_total := !comm_total +. comm;
    let base = work v /. speeds.(client) in
    let duration = (base *. noise *. fate.Plan.slowdown) +. comm in
    (* what a healthy attempt should take — the server's yardstick for
       liveness timeouts and speculation *)
    let expected = base +. comm in
    let id =
      new_attempt
        {
          at_task = v;
          at_client = client;
          at_alloc = !now;
          at_lost = fate.Plan.lost;
          at_failed = fate.Plan.failed;
          at_closed = false;
          at_resolved = false;
        }
    in
    st.(client) <- id;
    live.(v) <- live.(v) + 1;
    if live.(v) = 1 then incr inflight;
    open_attempts.(v) <- id :: open_attempts.(v);
    if Float.is_nan first_alloc.(v) then first_alloc.(v) <- !now;
    (match meters with None -> () | Some mt -> Metrics.incr mt.m_allocated);
    (match sink with
    | None -> ()
    | Some tr ->
      Trace.task_alloc tr ~time:!now ~task:v ~client;
      Trace.task_start tr ~time:(!now +. comm) ~task:v ~client;
      Trace.eligible_count tr ~time:!now ~count:(Policy.Robust.size robust));
    Heap.push events (!now +. duration) (Ev_complete id);
    if Recovery.timeouts_enabled rc then
      Heap.push events (!now +. Recovery.timeout_after rc ~expected)
        (Ev_timeout id);
    if Recovery.speculation_enabled rc then
      Heap.push events (!now +. Recovery.speculate_after rc ~expected)
        (Ev_spec id)
  in
  let park client =
    st.(client) <- st_waiting;
    if n - !completed - !inflight > 0 then begin
      (* a genuine gridlock event: work remains but none is allocatable *)
      incr stalls;
      (match meters with None -> () | Some mt -> Metrics.incr mt.m_stalls);
      if Float.is_nan stalled_since.(client) then begin
        stalled_since.(client) <- !now;
        match sink with
        | None -> ()
        | Some tr -> Trace.client_stall tr ~time:!now ~client
      end
    end;
    Queue.add client waiting
  in
  let allocate client =
    if Policy.Robust.size robust > 0 then begin
      (match meters with
      | None -> ()
      | Some mt ->
        (* the depth the server chose from, before removing the pick *)
        Metrics.observe mt.h_queue_depth
          (float_of_int (Policy.Robust.size robust)));
      match Policy.Robust.select robust with
      | Some v -> launch client v
      | None -> park client
    end
    else park client
  in
  (* serve parked clients; they keep waiting (and keep their queue slot)
     until the pool has work, but a stall period ends as soon as every
     remaining task is in flight — nothing can appear until an event *)
  let wake () =
    let waiters = Queue.length waiting in
    for _ = 1 to waiters do
      let c = Queue.pop waiting in
      if st.(c) = st_waiting then
        if Policy.Robust.size robust > 0 then begin
          if not (Float.is_nan stalled_since.(c)) then end_stall c;
          st.(c) <- st_idle;
          allocate c
        end
        else begin
          if
            n - !completed - !inflight <= 0
            && not (Float.is_nan stalled_since.(c))
          then end_stall c;
          Queue.add c waiting
        end
    done
  in
  (* an attempt covers its task while it is still expected to deliver:
     open and unresolved. A timed-out straggler still occupying its client
     is open but presumed dead, so it must not suppress recovery. *)
  let covered v =
    List.exists
      (fun id ->
        let a = att id in
        (not a.at_closed) && not a.at_resolved)
      open_attempts.(v)
  in
  let schedule_retry v =
    Span.time "sim.recovery" @@ fun () ->
    if
      (not (Frontier.is_executed fr v))
      && (not pending.(v))
      && not (Policy.Robust.pooled robust v)
    then begin
      let k = retries_of.(v) in
      if k >= rc.Recovery.max_retries then abort := Some (Retry_budget v)
      else begin
        retries_of.(v) <- k + 1;
        incr retries;
        (match meters with None -> () | Some mt -> Metrics.incr mt.m_retries);
        (match sink with
        | None -> ()
        | Some tr -> Trace.retry_scheduled tr ~time:!now ~task:v ~retry:k);
        let d = Recovery.backoff rc ~task:v ~retry:k in
        if d > 0.0 then begin
          pending.(v) <- true;
          Heap.push events (!now +. d) (Ev_retry v)
        end
        else begin
          Policy.Robust.notify robust v;
          trace_eligible ()
        end
      end
    end
  in
  let handle_complete id =
    let a = att id in
    if not a.at_closed then begin
      let c = a.at_client in
      let v = a.at_task in
      close_attempt id;
      st.(c) <- st_idle;
      (match meters with
      | None -> ()
      | Some mt -> Metrics.observe mt.h_latency (!now -. a.at_alloc));
      let freed = ref [] in
      if Frontier.is_executed fr v then begin
        (* a replica of an already-finished task ran to term: discard *)
        a.at_resolved <- true;
        incr cancelled;
        (match meters with None -> () | Some mt -> Metrics.incr mt.m_cancelled);
        match sink with
        | None -> ()
        | Some tr -> Trace.replica_cancelled tr ~time:!now ~task:v ~client:c
      end
      else if a.at_lost then begin
        (* the result vanished in transit: the server stays unaware and
           only the liveness timeout can recover the task *)
        incr lost;
        (match meters with None -> () | Some mt -> Metrics.incr mt.m_lost);
        match sink with
        | None -> ()
        | Some tr -> Trace.task_fail tr ~time:!now ~task:v ~client:c
      end
      else if a.at_failed then begin
        incr failures;
        (match meters with None -> () | Some mt -> Metrics.incr mt.m_failed);
        (match sink with
        | None -> ()
        | Some tr -> Trace.task_fail tr ~time:!now ~task:v ~client:c);
        if not a.at_resolved then begin
          a.at_resolved <- true;
          (* an unresolved live replica covers the task; its own fate
             (completion, failure, or timeout) will trigger recovery if
             it too goes wrong *)
          if not (covered v) then schedule_retry v
        end
      end
      else begin
        (* first result wins *)
        a.at_resolved <- true;
        incr completed;
        computed_by.(v) <- c;
        completion_order := v :: !completion_order;
        (match sink with
        | None -> ()
        | Some tr -> Trace.task_complete tr ~time:!now ~task:v ~client:c);
        (match meters with
        | None -> ()
        | Some mt ->
          Metrics.incr mt.m_completed;
          Metrics.observe mt.h_e2e (!now -. first_alloc.(v)));
        if Policy.Robust.pooled robust v then Policy.Robust.withdraw robust v;
        pending.(v) <- false;
        Frontier.execute fr ~on_promote:(Policy.Robust.notify robust) v;
        (* redundant replicas are cancelled, their clients freed *)
        List.iter
          (fun id' ->
            if id' <> id then begin
              let a' = att id' in
              if not a'.at_closed then begin
                close_attempt id';
                a'.at_resolved <- true;
                st.(a'.at_client) <- st_idle;
                freed := a'.at_client :: !freed;
                incr cancelled;
                (match meters with
                | None -> ()
                | Some mt -> Metrics.incr mt.m_cancelled);
                match sink with
                | None -> ()
                | Some tr ->
                  Trace.replica_cancelled tr ~time:!now ~task:v
                    ~client:a'.at_client
              end
            end)
          open_attempts.(v);
        open_attempts.(v) <- [];
        trace_eligible ()
      end;
      (* serve clients that were stalled first, then the freed ones *)
      wake ();
      allocate c;
      List.iter allocate (List.rev !freed)
    end
  in
  let handle_timeout id =
    let a = att id in
    let v = a.at_task in
    if (not (Frontier.is_executed fr v)) && not a.at_resolved then begin
      (* presumed lost; a late result may still arrive and win *)
      a.at_resolved <- true;
      incr timeouts;
      (match meters with None -> () | Some mt -> Metrics.incr mt.m_timeouts);
      (match sink with
      | None -> ()
      | Some tr -> Trace.timeout_fired tr ~time:!now ~task:v ~client:a.at_client);
      if not (covered v) then schedule_retry v;
      wake ()
    end
  in
  let handle_spec id =
    let a = att id in
    let v = a.at_task in
    if
      (not a.at_closed)
      && (not a.at_resolved)
      && (not (Frontier.is_executed fr v))
      && live.(v) < rc.Recovery.max_replicas
      && (not (Policy.Robust.pooled robust v))
      && not pending.(v)
    then begin
      incr speculations;
      (match meters with None -> () | Some mt -> Metrics.incr mt.m_speculations);
      (match sink with
      | None -> ()
      | Some tr -> Trace.speculative_launch tr ~time:!now ~task:v);
      Policy.Robust.notify robust v;
      trace_eligible ();
      wake ()
    end
  in
  let drop_client c ~transient =
    (* whatever the client held dies with it; the server stays unaware
       until a liveness timeout fires for the orphaned attempt *)
    if st.(c) >= 0 then close_attempt st.(c);
    if not (Float.is_nan stalled_since.(c)) then end_stall c;
    st.(c) <- (if transient then st_offline else st_dead);
    match sink with
    | None -> ()
    | Some tr -> Trace.client_crash tr ~time:!now ~client:c ~transient
  in
  let handle_crash c =
    if st.(c) <> st_dead then begin
      incr crashes;
      (match meters with None -> () | Some mt -> Metrics.incr mt.m_crashes);
      drop_client c ~transient:false
    end
  in
  let handle_disconnect c =
    (* the matching rejoin arrives from the churn stream on its own;
       nothing to re-draw or schedule here *)
    if st.(c) <> st_dead && st.(c) <> st_offline then begin
      incr disconnects;
      (match meters with None -> () | Some mt -> Metrics.incr mt.m_disconnects);
      drop_client c ~transient:true
    end
  in
  let handle_rejoin c =
    if st.(c) = st_offline then begin
      st.(c) <- st_idle;
      (match sink with
      | None -> ()
      | Some tr -> Trace.client_rejoin tr ~time:!now ~client:c);
      allocate c
    end
  in
  let handle_retry_release v =
    if pending.(v) then begin
      pending.(v) <- false;
      if
        (not (Frontier.is_executed fr v))
        && not (Policy.Robust.pooled robust v)
      then begin
        Policy.Robust.notify robust v;
        trace_eligible ();
        wake ()
      end
    end
  in
  Span.leave () (* sim.setup *);
  (* schedule each client's fate, then hand out the initial work: every
     crash/disconnect/rejoin comes from the plan's churn stream, one
     pending event per client at a time *)
  let churn = Array.init cfg.n_clients (fun c -> Plan.Churn.create plan ~client:c) in
  let schedule_churn c =
    match Plan.Churn.next churn.(c) with
    | None -> ()
    | Some { Plan.Churn.time; kind } ->
      Heap.push events time
        (match kind with
        | Plan.Churn.Crash -> Ev_crash c
        | Plan.Churn.Disconnect downtime -> Ev_disconnect (c, downtime)
        | Plan.Churn.Rejoin -> Ev_rejoin c)
  in
  for c = 0 to cfg.n_clients - 1 do
    schedule_churn c
  done;
  for c = 0 to cfg.n_clients - 1 do
    allocate c
  done;
  let deadline = rc.Recovery.deadline in
  while !abort = None && !completed < n do
    Span.enter "sim.ev.pop";
    let popped = Heap.pop events in
    Span.leave ();
    match popped with
    | None ->
      (* no event can ever re-pool the remaining work: clean abort *)
      abort := Some No_progress
    | Some (t, ev) ->
      if t > deadline then begin
        eligible_integral :=
          !eligible_integral
          +. (float_of_int (Policy.Robust.size robust) *. (deadline -. !now));
        now := deadline;
        abort := Some Deadline
      end
      else begin
        eligible_integral :=
          !eligible_integral
          +. (float_of_int (Policy.Robust.size robust) *. (t -. !now));
        now := t;
        (match ev with
        | Ev_complete id ->
          Span.enter "sim.ev.complete";
          handle_complete id
        | Ev_timeout id ->
          Span.enter "sim.ev.timeout";
          handle_timeout id
        | Ev_spec id ->
          Span.enter "sim.ev.spec";
          handle_spec id
        | Ev_crash c ->
          Span.enter "sim.ev.crash";
          handle_crash c;
          schedule_churn c
        | Ev_disconnect (c, _downtime) ->
          Span.enter "sim.ev.disconnect";
          handle_disconnect c;
          schedule_churn c
        | Ev_rejoin c ->
          Span.enter "sim.ev.rejoin";
          handle_rejoin c;
          schedule_churn c
        | Ev_retry v ->
          Span.enter "sim.ev.retry";
          handle_retry_release v);
        Span.leave ()
      end
  done;
  Span.enter "sim.finalize";
  (* close stall periods that were still open when the run ended *)
  for c = 0 to cfg.n_clients - 1 do
    if not (Float.is_nan stalled_since.(c)) then end_stall c
  done;
  let unfinished = ref [] in
  for v = n - 1 downto 0 do
    if not (Frontier.is_executed fr v) then unfinished := v :: !unfinished
  done;
  let makespan = !now in
  let busy_time = Array.fold_left ( +. ) 0.0 busy in
  let result =
    {
      makespan;
      busy_time;
      (* makespan = 0 only for the empty dag (or all-zero work): report
         well-defined zeros rather than dividing by it *)
      utilization =
        (if makespan > 0.0 then
           busy_time /. (float_of_int cfg.n_clients *. makespan)
         else 0.0);
      stalls = !stalls;
      stall_time = !stall_time;
      failures = !failures;
      comm_total = !comm_total;
      mean_eligible =
        (if makespan > 0.0 then !eligible_integral /. makespan else 0.0);
      allocation_order = List.rev !allocation_order;
      completion_order = List.rev !completion_order;
      outcome =
        (match !abort with None -> Finished | Some reason -> Aborted reason);
      unfinished = !unfinished;
      timeouts = !timeouts;
      retries = !retries;
      lost = !lost;
      speculations = !speculations;
      cancelled = !cancelled;
      crashes = !crashes;
      disconnects = !disconnects;
    }
  in
  Span.enter "sim.obs_export";
  (match metrics with
  | None -> ()
  | Some m ->
    Metrics.set (Metrics.gauge m "sim.makespan") result.makespan;
    Metrics.set (Metrics.gauge m "sim.utilization") result.utilization;
    Metrics.set (Metrics.gauge m "sim.mean_eligible") result.mean_eligible;
    Metrics.set
      (Metrics.gauge m "sim.unfinished")
      (float_of_int (List.length result.unfinished));
    Array.iteri
      (fun i b ->
        Metrics.set
          (Metrics.gauge m (Printf.sprintf "sim.client%d.busy_fraction" i))
          (if makespan > 0.0 then b /. makespan else 0.0))
      busy);
  Span.leave () (* sim.obs_export *);
  (match sink with None -> () | Some _ -> Frontier.set_observer fr None);
  Span.leave () (* sim.finalize *);
  result

let pp_outcome ppf = function
  | Finished -> Format.pp_print_string ppf "finished"
  | Aborted (Retry_budget v) ->
    Format.fprintf ppf "aborted (retry budget exhausted on task %d)" v
  | Aborted Deadline -> Format.pp_print_string ppf "aborted (deadline)"
  | Aborted No_progress -> Format.pp_print_string ppf "aborted (no progress)"

let pp_result ppf r =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf
    "makespan      %.3f@,utilization   %.1f%%@,stalls        %d@,\
     stall time    %.3f@,failures      %d@,comm time     %.3f@,\
     mean eligible %.2f"
    r.makespan (100.0 *. r.utilization) r.stalls r.stall_time r.failures
    r.comm_total r.mean_eligible;
  if
    r.timeouts > 0 || r.retries > 0 || r.lost > 0 || r.speculations > 0
    || r.cancelled > 0 || r.crashes > 0 || r.disconnects > 0
  then
    Format.fprintf ppf
      "@,timeouts      %d@,retries       %d@,lost          %d@,\
       speculations  %d@,cancelled     %d@,crashes       %d@,\
       disconnects   %d"
      r.timeouts r.retries r.lost r.speculations r.cancelled r.crashes
      r.disconnects;
  (match r.outcome with
  | Finished -> ()
  | Aborted _ ->
    Format.fprintf ppf "@,outcome       %a@,unfinished    %d task(s)"
      pp_outcome r.outcome
      (List.length r.unfinished));
  Format.pp_close_box ppf ()
