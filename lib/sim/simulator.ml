module Dag = Ic_dag.Dag
module Frontier = Ic_dag.Frontier
module Policy = Ic_heuristics.Policy
module Heap = Ic_heuristics.Heap
module Trace = Ic_obs.Trace
module Metrics = Ic_obs.Metrics

type config = {
  n_clients : int;
  speed : int -> float;
  jitter : float;
  failure_probability : float;
  comm_time : float;
  seed : int;
}

let config ?(n_clients = 4) ?(speed = fun _ -> 1.0) ?(jitter = 0.25)
    ?(failure_probability = 0.0) ?(comm_time = 0.0) ?(seed = 0x5EED) () =
  if n_clients < 1 then invalid_arg "Simulator.config: need a client";
  if failure_probability < 0.0 || failure_probability >= 1.0 then
    invalid_arg "Simulator.config: failure probability must be in [0, 1)";
  if comm_time < 0.0 then invalid_arg "Simulator.config: negative comm time";
  { n_clients; speed; jitter; failure_probability; comm_time; seed }

type result = {
  makespan : float;
  busy_time : float;
  utilization : float;
  stalls : int;
  stall_time : float;
  failures : int;
  comm_total : float;
  mean_eligible : float;
  allocation_order : int list;
  completion_order : int list;
}

(* The registered instruments when a metrics registry is supplied, resolved
   once up front so the hot loop pays a single option branch per site. *)
type meters = {
  m_allocated : Metrics.counter;
  m_completed : Metrics.counter;
  m_failed : Metrics.counter;
  m_stalls : Metrics.counter;
  h_latency : Metrics.histogram;
  h_queue_depth : Metrics.histogram;
  h_stall : Metrics.histogram;
}

let latency_buckets = [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]
let queue_buckets = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
let stall_buckets = [| 0.125; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 |]

let meters_of m =
  {
    m_allocated = Metrics.counter m "sim.tasks_allocated";
    m_completed = Metrics.counter m "sim.tasks_completed";
    m_failed = Metrics.counter m "sim.tasks_failed";
    m_stalls = Metrics.counter m "sim.stalls";
    h_latency = Metrics.histogram m "sim.task_latency" ~buckets:latency_buckets;
    h_queue_depth = Metrics.histogram m "sim.queue_depth" ~buckets:queue_buckets;
    h_stall = Metrics.histogram m "sim.stall_duration" ~buckets:stall_buckets;
  }

let run ?sink ?metrics cfg policy ~workload g =
  let n = Dag.n_nodes g in
  let work = workload g in
  let rng = Random.State.make [| cfg.seed |] in
  let inst = Policy.instantiate policy g in
  let fr = Frontier.create g in
  let now = ref 0.0 in
  let meters = match metrics with None -> None | Some m -> Some (meters_of m) in
  (* frontier push/pop events are stamped with the simulated clock *)
  (match sink with
  | None -> ()
  | Some tr ->
    Frontier.set_observer fr
      (Some
         {
           Frontier.on_push = (fun v -> Trace.frontier_push tr ~time:!now ~node:v);
           on_pop = (fun v -> Trace.frontier_pop tr ~time:!now ~node:v);
         }));
  let pool_size = ref 0 in
  let notify v =
    Policy.notify inst v;
    incr pool_size
  in
  Frontier.iter notify fr;
  (match sink with
  | None -> ()
  | Some tr ->
    (* the initial sources are eligible before anything executes *)
    Frontier.iter (fun v -> Trace.frontier_push tr ~time:0.0 ~node:v) fr;
    Trace.eligible_count tr ~time:0.0 ~count:!pool_size);
  let events : (float, int * int) Heap.t = Heap.create () in
  (* metrics *)
  let busy = Array.make cfg.n_clients 0.0 in
  let alloc_time = Array.make cfg.n_clients 0.0 in
  let stalls = ref 0 in
  let stall_time = ref 0.0 in
  let stalled_since = Array.make cfg.n_clients nan in
  let stalled = Queue.create () in
  let eligible_integral = ref 0.0 in
  let allocated = ref 0 in
  let completed = ref 0 in
  let failures = ref 0 in
  let comm_total = ref 0.0 in
  let computed_by = Array.make n (-1) in
  let allocation_order = ref [] in
  let completion_order = ref [] in
  let end_stall c =
    let d = !now -. stalled_since.(c) in
    stall_time := !stall_time +. d;
    stalled_since.(c) <- nan;
    (match sink with
    | None -> ()
    | Some tr -> Trace.client_resume tr ~time:!now ~client:c);
    match meters with None -> () | Some mt -> Metrics.observe mt.h_stall d
  in
  let allocate client =
    match Policy.select inst with
    | Some v ->
      (match meters with
      | None -> ()
      | Some mt ->
        Metrics.incr mt.m_allocated;
        (* the depth the server chose from, before removing [v] *)
        Metrics.observe mt.h_queue_depth (float_of_int !pool_size));
      decr pool_size;
      incr allocated;
      allocation_order := v :: !allocation_order;
      alloc_time.(client) <- !now;
      let noise = 1.0 +. (cfg.jitter *. Random.State.float rng 1.0) in
      (* parents computed elsewhere must ship their results over the
         Internet; a source's input comes from the server (one transfer) *)
      let transfers =
        if cfg.comm_time = 0.0 then 0
        else if Dag.is_source g v then 1
        else
          Dag.fold_pred g v 0 (fun acc p ->
              if computed_by.(p) = client then acc else acc + 1)
      in
      let comm = cfg.comm_time *. float_of_int transfers in
      comm_total := !comm_total +. comm;
      let duration = (work v /. cfg.speed client *. noise) +. comm in
      busy.(client) <- busy.(client) +. duration;
      (match sink with
      | None -> ()
      | Some tr ->
        Trace.task_alloc tr ~time:!now ~task:v ~client;
        Trace.task_start tr ~time:(!now +. comm) ~task:v ~client;
        Trace.eligible_count tr ~time:!now ~count:!pool_size);
      Heap.push events (!now +. duration) (client, v)
    | None ->
      if !allocated < n then begin
        (* a genuine gridlock event: work remains but none is eligible *)
        incr stalls;
        (match meters with None -> () | Some mt -> Metrics.incr mt.m_stalls);
        if Float.is_nan stalled_since.(client) then begin
          stalled_since.(client) <- !now;
          match sink with
          | None -> ()
          | Some tr -> Trace.client_stall tr ~time:!now ~client
        end;
        Queue.add client stalled
      end
      (* otherwise the computation is draining; the client simply retires *)
  in
  for client = 0 to cfg.n_clients - 1 do
    allocate client
  done;
  while !completed < n do
    match Heap.pop events with
    | None -> assert false (* tasks outstanding but no events pending *)
    | Some (t, (client, v)) ->
      eligible_integral :=
        !eligible_integral +. (float_of_int !pool_size *. (t -. !now));
      now := t;
      if
        cfg.failure_probability > 0.0
        && Random.State.float rng 1.0 < cfg.failure_probability
      then begin
        (* the client vanished with the task: put it back in the pool *)
        incr failures;
        decr allocated;
        (match sink with
        | None -> ()
        | Some tr -> Trace.task_fail tr ~time:t ~task:v ~client);
        (match meters with None -> () | Some mt -> Metrics.incr mt.m_failed);
        notify v;
        match sink with
        | None -> ()
        | Some tr -> Trace.eligible_count tr ~time:t ~count:!pool_size
      end
      else begin
        incr completed;
        computed_by.(v) <- client;
        completion_order := v :: !completion_order;
        (match sink with
        | None -> ()
        | Some tr -> Trace.task_complete tr ~time:t ~task:v ~client);
        (match meters with
        | None -> ()
        | Some mt ->
          Metrics.incr mt.m_completed;
          Metrics.observe mt.h_latency (t -. alloc_time.(client)));
        Frontier.execute fr ~on_promote:notify v;
        match sink with
        | None -> ()
        | Some tr -> Trace.eligible_count tr ~time:t ~count:!pool_size
      end;
      (* serve clients that were stalled first, then the freed client *)
      let waiters = Queue.length stalled in
      for _ = 1 to waiters do
        let c = Queue.pop stalled in
        if !pool_size > 0 then begin
          end_stall c;
          allocate c
        end
        else begin
          (* still nothing for this client *)
          if !allocated >= n then end_stall c else Queue.add c stalled
        end
      done;
      allocate client
  done;
  let makespan = !now in
  let busy_time = Array.fold_left ( +. ) 0.0 busy in
  let result =
    {
      makespan;
      busy_time;
      (* makespan = 0 only for the empty dag (or all-zero work): report
         well-defined zeros rather than dividing by it *)
      utilization =
        (if makespan > 0.0 then
           busy_time /. (float_of_int cfg.n_clients *. makespan)
         else 0.0);
      stalls = !stalls;
      stall_time = !stall_time;
      failures = !failures;
      comm_total = !comm_total;
      mean_eligible =
        (if makespan > 0.0 then !eligible_integral /. makespan else 0.0);
      allocation_order = List.rev !allocation_order;
      completion_order = List.rev !completion_order;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Metrics.set (Metrics.gauge m "sim.makespan") result.makespan;
    Metrics.set (Metrics.gauge m "sim.utilization") result.utilization;
    Metrics.set (Metrics.gauge m "sim.mean_eligible") result.mean_eligible;
    Array.iteri
      (fun i b ->
        Metrics.set
          (Metrics.gauge m (Printf.sprintf "sim.client%d.busy_fraction" i))
          (if makespan > 0.0 then b /. makespan else 0.0))
      busy);
  (match sink with None -> () | Some _ -> Frontier.set_observer fr None);
  result

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>makespan      %.3f@,utilization   %.1f%%@,stalls        %d@,\
     stall time    %.3f@,failures      %d@,comm time     %.3f@,\
     mean eligible %.2f@]"
    r.makespan (100.0 *. r.utilization) r.stalls r.stall_time r.failures
    r.comm_total r.mean_eligible
