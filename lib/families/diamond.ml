module Compose = Ic_core.Compose
module Linear = Ic_core.Linear

type t = {
  compose : Compose.t;
  out_schedule : Ic_dag.Schedule.t;
  in_schedule : Ic_dag.Schedule.t;
}

let make out_tree in_tree =
  Ic_prof.Span.time "families.diamond" @@ fun () ->
  if not (Out_tree.is_out_tree out_tree) then Error "first argument is not an out-tree"
  else if not (In_tree.is_in_tree in_tree) then Error "second argument is not an in-tree"
  else
    Result.map
      (fun compose ->
        {
          compose;
          out_schedule = Out_tree.schedule out_tree;
          in_schedule = In_tree.schedule in_tree;
        })
      (Compose.full_merge (Compose.of_dag out_tree) (Compose.of_dag in_tree))

let make_exn out_tree in_tree =
  match make out_tree in_tree with
  | Ok d -> d
  | Error msg -> invalid_arg ("Diamond.make_exn: " ^ msg)

let symmetric shape =
  let out_tree = Out_tree.dag_of_shape shape in
  make_exn out_tree (Ic_dag.Dag.dual out_tree)

let complete ~arity ~depth = symmetric (Out_tree.complete ~arity ~depth)

let dag d = Compose.dag d.compose
let schedule d = Linear.schedule_exn d.compose [ d.out_schedule; d.in_schedule ]
