module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Compose = Ic_core.Compose

let node k j = (k * (k + 1) / 2) + j

let out_mesh levels =
  if levels < 0 then invalid_arg "Mesh.out_mesh: negative depth";
  Ic_prof.Span.time "families.mesh" @@ fun () ->
  let n = (levels + 1) * (levels + 2) / 2 in
  let b = Dag.Builder.create ~n ~hint:(levels * (levels + 1)) () in
  for k = 0 to levels - 1 do
    for j = 0 to k do
      Dag.Builder.add_arc b (node k j) (node (k + 1) j);
      Dag.Builder.add_arc b (node k j) (node (k + 1) (j + 1))
    done
  done;
  Dag.Builder.build_exn b

let in_mesh levels = Dag.dual (out_mesh levels)

let out_schedule levels =
  let order = ref [] in
  for k = levels - 1 downto 0 do
    for j = k downto 0 do
      order := node k j :: !order
    done
  done;
  Schedule.of_nonsink_order_exn (out_mesh levels) !order

let in_schedule levels =
  Ic_dag.Duality.dual_schedule (out_mesh levels) (out_schedule levels)

let w_decomposition levels =
  if levels < 1 then invalid_arg "Mesh.w_decomposition: need at least one level";
  let blocks = List.init levels (fun k -> Ic_blocks.W_dag.dag (k + 1)) in
  let compose =
    match Compose.chain_full (List.map Compose.of_dag blocks) with
    | Ok c -> c
    | Error msg -> invalid_arg ("Mesh.w_decomposition: " ^ msg)
  in
  let schedules = List.init levels (fun k -> Ic_blocks.W_dag.schedule (k + 1)) in
  (compose, schedules)
