module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Profile = Ic_dag.Profile

type shape = Leaf | Node of shape list

let complete ~arity ~depth =
  if arity < 1 then invalid_arg "Out_tree.complete: arity < 1";
  if depth < 0 then invalid_arg "Out_tree.complete: negative depth";
  let rec go d = if d = 0 then Leaf else Node (List.init arity (fun _ -> go (d - 1))) in
  go depth

let random rng ~max_internal ~arity =
  if arity < 1 then invalid_arg "Out_tree.random: arity < 1";
  (* grow by expanding a uniformly random leaf *)
  let rec expand shape target =
    (* [target] indexes leaves left to right; returns the new shape and
       either the remaining index (Error) or the result (Ok) *)
    match shape with
    | Leaf ->
      if target = 0 then Ok (Node (List.init arity (fun _ -> Leaf))) else Error 1
    | Node children ->
      let rec over acc skipped = function
        | [] -> Error skipped
        | c :: rest -> (
          match expand c (target - skipped) with
          | Ok c' -> Ok (Node (List.rev_append acc (c' :: rest)))
          | Error k -> over (c :: acc) (skipped + k) rest)
      in
      over [] 0 children
  in
  let rec n_leaves = function
    | Leaf -> 1
    | Node cs -> List.fold_left (fun acc c -> acc + n_leaves c) 0 cs
  in
  let rec go shape k =
    if k = 0 then shape
    else
      let leaves = n_leaves shape in
      match expand shape (Random.State.int rng leaves) with
      | Ok shape' -> go shape' (k - 1)
      | Error _ -> assert false
  in
  go Leaf max_internal

(* shapes can be as deep as the dag is large, so all traversals here use an
   explicit stack rather than recursion *)
let count_nodes ~leaves_only shape =
  let count = ref 0 in
  let stack = Stack.create () in
  Stack.push shape stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | Leaf -> incr count
    | Node cs ->
      if not leaves_only then incr count;
      List.iter (fun c -> Stack.push c stack) cs
  done;
  !count

let n_nodes = count_nodes ~leaves_only:false
let n_leaves = count_nodes ~leaves_only:true

let dag_of_shape shape =
  let n = n_nodes shape in
  let b = Dag.Builder.create ~n ~hint:(n - 1) () in
  (* ids in DFS pre-order, children left to right: push children reversed so
     the leftmost subtree is numbered first *)
  let next = ref 0 in
  let stack = Stack.create () in
  Stack.push (-1, shape) stack;
  while not (Stack.is_empty stack) do
    let parent, s = Stack.pop stack in
    let id = !next in
    incr next;
    if parent >= 0 then Dag.Builder.add_arc b parent id;
    match s with
    | Leaf -> ()
    | Node children ->
      List.iter (fun c -> Stack.push (id, c) stack) (List.rev children)
  done;
  Dag.Builder.build_exn b

let dag ~arity ~depth = dag_of_shape (complete ~arity ~depth)

let is_out_tree g =
  let n = Dag.n_nodes g in
  n > 0
  && Dag.is_connected g
  && List.length (Dag.sources g) = 1
  && List.for_all (fun v -> Dag.in_degree g v <= 1) (List.init n Fun.id)

let schedule g =
  if not (is_out_tree g) then invalid_arg "Out_tree.schedule: not an out-tree";
  (* breadth-first from the root, nonsinks only *)
  let root = List.hd (Dag.sources g) in
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not (Dag.is_sink g v) then begin
      order := v :: !order;
      Dag.iter_succ g v (fun w -> Queue.add w queue)
    end
  done;
  Schedule.of_nonsink_order_exn g (List.rev !order)

let schedules_all_optimal g =
  let bfs = schedule g in
  let dfs =
    (* depth-first nonsink order, leftmost subtree first *)
    let soff = Dag.succ_offsets g and sdat = Dag.succ_targets g in
    let order = ref [] in
    let stack = Stack.create () in
    Stack.push (List.hd (Dag.sources g)) stack;
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      if not (Dag.is_sink g v) then begin
        order := v :: !order;
        for i = Ic_dag.Slab.get soff (v + 1) - 1 downto Ic_dag.Slab.get soff v do
          Stack.push (Ic_dag.Slab.get sdat i) stack
        done
      end
    done;
    Schedule.of_nonsink_order_exn g (List.rev !order)
  in
  let rng = Random.State.make [| 0x1C0DE |] in
  let rand = Ic_dag.Gen.random_nonsinks_first_schedule rng g in
  let p = Profile.run g bfs in
  p = Profile.run g dfs && p = Profile.run g rand
