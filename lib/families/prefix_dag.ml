module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Compose = Ic_core.Compose

let levels n =
  if n < 1 then invalid_arg "Prefix_dag.levels: n >= 1";
  let rec go p acc = if acc >= n then p else go (p + 1) (acc * 2) in
  go 0 1

let node ~n j i = (j * n) + i

let dag n =
  let p = levels n in
  Ic_prof.Span.time "families.prefix" @@ fun () ->
  let b = Dag.Builder.create ~n:((p + 1) * n) ~hint:(2 * p * n) () in
  for j = 0 to p - 1 do
    let stride = 1 lsl j in
    for i = 0 to n - 1 do
      Dag.Builder.add_arc b (node ~n j i) (node ~n (j + 1) i);
      if i + stride < n then
        Dag.Builder.add_arc b (node ~n j i) (node ~n (j + 1) (i + stride))
    done
  done;
  Dag.Builder.build_exn b

(* columns of boundary [j] grouped by residue mod 2^j; each group is one
   N-dag whose anchor is the group's smallest column *)
let iter_boundary_groups n f =
  let p = levels n in
  for j = 0 to p - 1 do
    let stride = 1 lsl j in
    for residue = 0 to stride - 1 do
      let columns = ref [] in
      let i = ref residue in
      while !i < n do
        columns := !i :: !columns;
        i := !i + stride
      done;
      f j (List.rev !columns)
    done
  done

let schedule n =
  let order = ref [] in
  iter_boundary_groups n (fun j columns ->
      List.iter (fun i -> order := node ~n j i :: !order) columns);
  Schedule.of_nonsink_order_exn (dag n) (List.rev !order)

type decomposition = {
  compose : Compose.t;
  schedules : Schedule.t list;
  pos : int array array;
}

let n_decomposition n =
  if n < 2 then invalid_arg "Prefix_dag.n_decomposition: n >= 2";
  let pos = Array.make_matrix (levels n + 1) n (-1) in
  let composite = ref None in
  let schedules = ref [] in
  iter_boundary_groups n (fun j columns ->
      let s = List.length columns in
      let block = Ic_blocks.N_dag.dag s in
      schedules := Ic_blocks.N_dag.schedule s :: !schedules;
      let c2 = Compose.of_dag block in
      let base =
        match !composite with
        | None ->
          composite := Some c2;
          0
        | Some c1 ->
          let pairs =
            if j = 0 then []
            else List.mapi (fun k i -> (pos.(j).(i), k)) columns
          in
          let n_before = Dag.n_nodes (Compose.dag c1) in
          composite := Some (Compose.compose_exn c1 c2 ~pairs);
          n_before
      in
      (* appended composite ids: unmerged nodes ascending. For j = 0 the
         block's sources (0..s-1) then sinks (s..2s-1); otherwise only the
         sinks. *)
      if j = 0 then begin
        List.iteri (fun k i -> pos.(0).(i) <- base + k) columns;
        List.iteri (fun k i -> pos.(1).(i) <- base + s + k) columns
      end
      else List.iteri (fun k i -> pos.(j + 1).(i) <- base + k) columns);
  let composite = Option.get !composite in
  { compose = composite; schedules = List.rev !schedules; pos }

let combines n =
  let p = levels n in
  let acc = ref [] in
  for j = p - 1 downto 0 do
    let stride = 1 lsl j in
    for i = n - 1 downto stride do
      acc := (node ~n (j + 1) i, node ~n j (i - stride), node ~n j i) :: !acc
    done
  done;
  !acc
