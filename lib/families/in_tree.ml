module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

let of_out_tree g =
  if not (Out_tree.is_out_tree g) then
    invalid_arg "In_tree.of_out_tree: not an out-tree";
  Dag.dual g

let dag_of_shape shape = of_out_tree (Out_tree.dag_of_shape shape)
let dag ~arity ~depth = dag_of_shape (Out_tree.complete ~arity ~depth)

let is_in_tree g = Out_tree.is_out_tree (Dag.dual g)

let schedule g =
  if not (is_in_tree g) then invalid_arg "In_tree.schedule: not an in-tree";
  let order = ref [] in
  let poff = Dag.pred_offsets g and pdat = Dag.pred_sources g in
  (* internal node = non-source; its Λ-sources are its dag-parents. Each
     internal parent's run is emitted before the node's own run (post-order
     on Λ blocks); an explicit two-phase stack keeps the depth independent
     of the tree height. *)
  let stack = Stack.create () in
  Stack.push (`Visit (List.hd (Dag.sinks g))) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Emit u -> Dag.iter_pred g u (fun p -> order := p :: !order)
    | `Visit u ->
      Stack.push (`Emit u) stack;
      (* reversed, so the leftmost internal parent's run comes first *)
      for i = Ic_dag.Slab.get poff (u + 1) - 1 downto Ic_dag.Slab.get poff u do
        let p = Ic_dag.Slab.get pdat i in
        if not (Dag.is_source g p) then Stack.push (`Visit p) stack
      done
  done;
  Schedule.of_nonsink_order_exn g (List.rev !order)

let lambda_runs_consecutive g s =
  let n = Dag.n_nodes g in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) (Schedule.order s)
  ;
  let ok = ref true in
  for u = 0 to n - 1 do
    if Dag.in_degree g u > 1 then begin
      let ps = Dag.fold_pred g u [] (fun acc p -> pos.(p) :: acc) in
      let ps = Array.of_list ps in
      Array.sort compare ps;
      for i = 0 to Array.length ps - 2 do
        if ps.(i + 1) <> ps.(i) + 1 then ok := false
      done
    end
  done;
  !ok
