module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Compose = Ic_core.Compose

let node ~d l r = (l lsl d) + r

let dag d =
  if d < 1 then invalid_arg "Butterfly_net.dag: need dimension >= 1";
  Ic_prof.Span.time "families.butterfly" @@ fun () ->
  let rows = 1 lsl d in
  let b = Dag.Builder.create ~n:((d + 1) * rows) ~hint:(2 * d * rows) () in
  for l = 0 to d - 1 do
    for r = 0 to rows - 1 do
      Dag.Builder.add_arc b (node ~d l r) (node ~d (l + 1) r);
      Dag.Builder.add_arc b (node ~d l r) (node ~d (l + 1) (r lxor (1 lsl l)))
    done
  done;
  Dag.Builder.build_exn b

(* the two sources of the B-copy at level [l], pair-base [r] (bit l clear)
   are rows [r] and [r + 2^l] of level [l] *)
let iter_blocks d f =
  let rows = 1 lsl d in
  for l = 0 to d - 1 do
    for r = 0 to rows - 1 do
      if r land (1 lsl l) = 0 then f l r (r lor (1 lsl l))
    done
  done

let schedule d =
  let order = ref [] in
  iter_blocks d (fun l r r' ->
      order := node ~d l r' :: node ~d l r :: !order);
  Schedule.of_nonsink_order_exn (dag d) (List.rev !order)

let pairs_consecutive d s =
  let g = dag d in
  let pos = Array.make (Dag.n_nodes g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) (Schedule.order s);
  let ok = ref true in
  iter_blocks d (fun l r r' ->
      let p = pos.(node ~d l r) and p' = pos.(node ~d l r') in
      if abs (p - p') <> 1 then ok := false);
  !ok

let block_decomposition d =
  if d < 1 then invalid_arg "Butterfly_net.block_decomposition: dimension >= 1";
  let rows = 1 lsl d in
  let pos = Array.make_matrix (d + 1) rows (-1) in
  let block = Ic_blocks.Butterfly_block.dag () in
  let composite = ref None in
  let n_blocks = ref 0 in
  iter_blocks d (fun l r r' ->
      incr n_blocks;
      let c2 = Compose.of_dag block in
      let base =
        match !composite with
        | None ->
          composite := Some c2;
          0
        | Some c1 ->
          let pairs =
            if l = 0 then []
            else [ (pos.(l).(r), 0); (pos.(l).(r'), 1) ]
          in
          let n_before = Dag.n_nodes (Compose.dag c1) in
          composite := Some (Compose.compose_exn c1 c2 ~pairs);
          n_before
      in
      (* newly appended composite ids: unmerged nodes of the block ascending *)
      if l = 0 then begin
        pos.(0).(r) <- base;
        pos.(0).(r') <- base + 1;
        pos.(1).(r) <- base + 2;
        pos.(1).(r') <- base + 3
      end
      else begin
        pos.(l + 1).(r) <- base;
        pos.(l + 1).(r') <- base + 1
      end);
  let composite = Option.get !composite in
  let schedules =
    List.init !n_blocks (fun _ -> Ic_blocks.Butterfly_block.schedule ())
  in
  (composite, schedules)
