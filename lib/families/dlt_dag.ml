module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule
module Compose = Ic_core.Compose
module Linear = Ic_core.Linear

type t = {
  compose : Compose.t;
  schedules : Schedule.t list;
  n_inputs : int;
  prefix_pos : int array array option;
  generator_dag : Dag.t;
  generator_embed : int array;
  tree_dag : Dag.t;
  tree_embed : int array;
}

let dag t = Compose.dag t.compose
let schedule t = Linear.schedule_exn t.compose t.schedules

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc m = if m <= 1 then acc else go (acc + 1) (m / 2) in
  go 0 n

let last_embed compose =
  match List.rev (Compose.components compose) with
  | (_, embed) :: _ -> embed
  | [] -> assert false

let l_dag n =
  if not (is_power_of_two n) || n < 2 then
    invalid_arg "Dlt_dag.l_dag: n must be a power of two >= 2";
  let { Prefix_dag.compose = prefix; schedules = prefix_schedules; pos } =
    Prefix_dag.n_decomposition n
  in
  let in_tree = In_tree.dag ~arity:2 ~depth:(log2 n) in
  let compose =
    match Compose.full_merge prefix (Compose.of_dag in_tree) with
    | Ok c -> c
    | Error msg -> invalid_arg ("Dlt_dag.l_dag: " ^ msg)
  in
  (* the prefix composite is component 1..k of [compose] and keeps its node
     ids, so [pos] doubles as an embedding of the directly-built P_n *)
  let generator_dag = Prefix_dag.dag n in
  let generator_embed =
    Array.init
      (Dag.n_nodes generator_dag)
      (fun v -> pos.(v / n).(v mod n))
  in
  {
    compose;
    schedules = prefix_schedules @ [ In_tree.schedule in_tree ];
    n_inputs = n;
    prefix_pos = Some pos;
    generator_dag;
    generator_embed;
    tree_dag = in_tree;
    tree_embed = last_embed compose;
  }

let ternary_tree leaves =
  if leaves < 3 || leaves mod 2 = 0 then
    invalid_arg "Dlt_dag.ternary_tree: leaf count must be odd and >= 3";
  let internal = (leaves - 1) / 2 in
  let b = Dag.Builder.create ~n:(1 + (3 * internal)) ~hint:(3 * internal) () in
  let next = ref 1 in
  let queue = Queue.create () in
  Queue.add 0 queue;
  for _ = 1 to internal do
    let v = Queue.pop queue in
    for _ = 1 to 3 do
      Dag.Builder.add_arc b v !next;
      Queue.add !next queue;
      incr next
    done
  done;
  Dag.Builder.build_exn b

let l_prime_dag n =
  if not (is_power_of_two n) || n < 4 then
    invalid_arg "Dlt_dag.l_prime_dag: n must be a power of two >= 4";
  let tree = ternary_tree (n - 1) in
  let in_tree = In_tree.dag ~arity:2 ~depth:(log2 n) in
  let leaves = Dag.sinks tree in
  let sources = Dag.sources in_tree in
  let free_source, merged_sources =
    match sources with
    | s :: rest -> (s, rest)
    | [] -> assert false
  in
  ignore free_source;
  let pairs = List.combine leaves merged_sources in
  let compose =
    match Compose.compose (Compose.of_dag tree) (Compose.of_dag in_tree) ~pairs with
    | Ok c -> c
    | Error msg -> invalid_arg ("Dlt_dag.l_prime_dag: " ^ msg)
  in
  {
    compose;
    schedules = [ Out_tree.schedule tree; In_tree.schedule in_tree ];
    n_inputs = n;
    prefix_pos = None;
    generator_dag = tree;
    generator_embed = Array.init (Dag.n_nodes tree) Fun.id;
    tree_dag = in_tree;
    tree_embed = last_embed compose;
  }
