type t = {
  crash_rate : float;
  disconnect_rate : float;
  mean_downtime : float;
  straggler_probability : float;
  straggler_factor : float;
  loss_probability : float;
  fail_probability : float;
  seed : int;
}

let check_rate name r =
  if (not (Float.is_finite r)) || r < 0.0 then
    invalid_arg (Printf.sprintf "Fault.Plan.make: %s must be finite and >= 0" name)

let check_probability name p =
  if (not (Float.is_finite p)) || p < 0.0 || p >= 1.0 then
    invalid_arg (Printf.sprintf "Fault.Plan.make: %s must be in [0, 1)" name)

let make ?(crash_rate = 0.0) ?(disconnect_rate = 0.0) ?(mean_downtime = 1.0)
    ?(straggler_probability = 0.0) ?(straggler_factor = 4.0)
    ?(loss_probability = 0.0) ?(fail_probability = 0.0) ?(seed = 0xFA17) () =
  check_rate "crash_rate" crash_rate;
  check_rate "disconnect_rate" disconnect_rate;
  if (not (Float.is_finite mean_downtime)) || mean_downtime <= 0.0 then
    invalid_arg "Fault.Plan.make: mean_downtime must be finite and positive";
  check_probability "straggler_probability" straggler_probability;
  if (not (Float.is_finite straggler_factor)) || straggler_factor < 1.0 then
    invalid_arg "Fault.Plan.make: straggler_factor must be finite and >= 1";
  check_probability "loss_probability" loss_probability;
  check_probability "fail_probability" fail_probability;
  {
    crash_rate;
    disconnect_rate;
    mean_downtime;
    straggler_probability;
    straggler_factor;
    loss_probability;
    fail_probability;
    seed;
  }

let none = make ()
let of_failure_probability ?seed q = make ?seed ~fail_probability:q ()

let with_fail_probability t q =
  check_probability "fail_probability" q;
  { t with fail_probability = q }

let is_none t =
  t.crash_rate = 0.0 && t.disconnect_rate = 0.0
  && t.straggler_probability = 0.0 && t.loss_probability = 0.0
  && t.fail_probability = 0.0

(* Every decision draws from its own RNG state keyed by (seed, stream tag,
   coordinates), so sampling is independent of the order the simulator asks
   in — the same (task, attempt) always meets the same fate. *)
let stream t tag a b = Random.State.make [| t.seed; tag; a; b |]

(* inverse-CDF exponential with the given rate; u < 1 so this is finite *)
let exp_sample rate u = -.Float.log1p (-.u) /. rate

let crash_time t ~client =
  if t.crash_rate <= 0.0 then infinity
  else
    let rng = stream t 0x3C client 0 in
    exp_sample t.crash_rate (Random.State.float rng 1.0)

let disconnect t ~client ~k =
  if t.disconnect_rate <= 0.0 then None
  else
    let rng = stream t 0xD1 client k in
    let gap = exp_sample t.disconnect_rate (Random.State.float rng 1.0) in
    let downtime =
      t.mean_downtime *. (0.5 +. Random.State.float rng 1.0)
    in
    Some (gap, downtime)

module Churn = struct
  type kind = Crash | Disconnect of float | Rejoin
  type event = { time : float; kind : kind }

  (* [Up]: available since [avail_t], episode [k] next; [Down]: offline,
     rejoining at the carried time; [Exhausted]: crashed, or no further
     fault can fire *)
  type phase = Up | Down of float | Exhausted

  type cursor = {
    plan : t;
    client : int;
    crash_t : float;
    mutable k : int;
    mutable avail_t : float;
    mutable phase : phase;
  }

  let create plan ~client =
    {
      plan;
      client;
      crash_t = crash_time plan ~client;
      k = 0;
      avail_t = 0.0;
      phase = Up;
    }

  let crash c =
    c.phase <- Exhausted;
    Some { time = c.crash_t; kind = Crash }

  let next c =
    match c.phase with
    | Exhausted -> None
    | Down rejoin_t ->
      if c.crash_t <= rejoin_t then crash c
      else begin
        c.phase <- Up;
        c.avail_t <- rejoin_t;
        c.k <- c.k + 1;
        Some { time = rejoin_t; kind = Rejoin }
      end
    | Up -> (
      match disconnect c.plan ~client:c.client ~k:c.k with
      | None ->
        if Float.is_finite c.crash_t then crash c
        else begin
          c.phase <- Exhausted;
          None
        end
      | Some (gap, downtime) ->
        let t = c.avail_t +. gap in
        if c.crash_t <= t then crash c
        else begin
          c.phase <- Down (t +. downtime);
          Some { time = t; kind = Disconnect downtime }
        end)

  let events plan ~client ~horizon =
    let c = create plan ~client in
    let rec go acc =
      match next c with
      | Some e when e.time <= horizon -> go (e :: acc)
      | _ -> List.rev acc
    in
    go []
end

module Wire = struct
  type t = {
    drop : float;
    duplicate : float;
    reorder : float;
    truncate : float;
    corrupt : float;
    delay_mean : float;
    seed : int;
  }

  let check name p =
    if (not (Float.is_finite p)) || p < 0.0 || p >= 1.0 then
      invalid_arg (Printf.sprintf "Fault.Plan.Wire.make: %s must be in [0, 1)" name)

  let make ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(truncate = 0.0)
      ?(corrupt = 0.0) ?(delay_mean = 0.0) ?(seed = 0xC4A0) () =
    check "drop" drop;
    check "duplicate" duplicate;
    check "reorder" reorder;
    check "truncate" truncate;
    check "corrupt" corrupt;
    if (not (Float.is_finite delay_mean)) || delay_mean < 0.0 then
      invalid_arg "Fault.Plan.Wire.make: delay_mean must be finite and >= 0";
    { drop; duplicate; reorder; truncate; corrupt; delay_mean; seed }

  let none = make ()

  let is_none t =
    t.drop = 0.0 && t.duplicate = 0.0 && t.reorder = 0.0 && t.truncate = 0.0
    && t.corrupt = 0.0 && t.delay_mean = 0.0

  type action = Deliver | Drop | Duplicate | Reorder | Truncate | Corrupt
  type decision = { action : action; delay : float; cut : float; flip : int }

  let deliver = { action = Deliver; delay = 0.0; cut = 1.0; flip = 0 }

  (* One RNG state per frame, keyed by (seed, tag, direction, frame), and a
     fixed draw order inside it: a frame meets the same fate no matter how
     many frames the other direction has carried, and turning one knob up
     does not re-roll the others. Destructive actions take precedence over
     merely unfriendly ones. *)
  let decision t ~dir ~frame =
    if is_none t then deliver
    else begin
      let rng = Random.State.make [| t.seed; 0x31; dir; frame |] in
      let u_drop = Random.State.float rng 1.0 in
      let u_trunc = Random.State.float rng 1.0 in
      let u_corrupt = Random.State.float rng 1.0 in
      let u_dup = Random.State.float rng 1.0 in
      let u_reorder = Random.State.float rng 1.0 in
      let cut = Random.State.float rng 1.0 in
      let flip = Random.State.int rng 0x3FFFFFFF in
      let delay =
        if t.delay_mean <= 0.0 then 0.0
        else t.delay_mean *. -.Float.log1p (-.Random.State.float rng 1.0)
      in
      let action =
        if u_drop < t.drop then Drop
        else if u_trunc < t.truncate then Truncate
        else if u_corrupt < t.corrupt then Corrupt
        else if u_dup < t.duplicate then Duplicate
        else if u_reorder < t.reorder then Reorder
        else Deliver
      in
      { action; delay; cut; flip }
    end
end

type attempt_outcome = { slowdown : float; lost : bool; failed : bool }

let attempt t ~task ~attempt =
  if
    t.straggler_probability = 0.0 && t.loss_probability = 0.0
    && t.fail_probability = 0.0
  then { slowdown = 1.0; lost = false; failed = false }
  else
    let rng = stream t 0xA7 task attempt in
    (* fixed draw order keeps each coordinate's fate stable *)
    let u_straggle = Random.State.float rng 1.0 in
    let u_lost = Random.State.float rng 1.0 in
    let u_fail = Random.State.float rng 1.0 in
    let slowdown =
      if u_straggle < t.straggler_probability then t.straggler_factor else 1.0
    in
    let lost = u_lost < t.loss_probability in
    let failed = (not lost) && u_fail < t.fail_probability in
    { slowdown; lost; failed }
