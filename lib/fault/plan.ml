type t = {
  crash_rate : float;
  disconnect_rate : float;
  mean_downtime : float;
  straggler_probability : float;
  straggler_factor : float;
  loss_probability : float;
  fail_probability : float;
  seed : int;
}

let check_rate name r =
  if (not (Float.is_finite r)) || r < 0.0 then
    invalid_arg (Printf.sprintf "Fault.Plan.make: %s must be finite and >= 0" name)

let check_probability name p =
  if (not (Float.is_finite p)) || p < 0.0 || p >= 1.0 then
    invalid_arg (Printf.sprintf "Fault.Plan.make: %s must be in [0, 1)" name)

let make ?(crash_rate = 0.0) ?(disconnect_rate = 0.0) ?(mean_downtime = 1.0)
    ?(straggler_probability = 0.0) ?(straggler_factor = 4.0)
    ?(loss_probability = 0.0) ?(fail_probability = 0.0) ?(seed = 0xFA17) () =
  check_rate "crash_rate" crash_rate;
  check_rate "disconnect_rate" disconnect_rate;
  if (not (Float.is_finite mean_downtime)) || mean_downtime <= 0.0 then
    invalid_arg "Fault.Plan.make: mean_downtime must be finite and positive";
  check_probability "straggler_probability" straggler_probability;
  if (not (Float.is_finite straggler_factor)) || straggler_factor < 1.0 then
    invalid_arg "Fault.Plan.make: straggler_factor must be finite and >= 1";
  check_probability "loss_probability" loss_probability;
  check_probability "fail_probability" fail_probability;
  {
    crash_rate;
    disconnect_rate;
    mean_downtime;
    straggler_probability;
    straggler_factor;
    loss_probability;
    fail_probability;
    seed;
  }

let none = make ()
let of_failure_probability ?seed q = make ?seed ~fail_probability:q ()

let with_fail_probability t q =
  check_probability "fail_probability" q;
  { t with fail_probability = q }

let is_none t =
  t.crash_rate = 0.0 && t.disconnect_rate = 0.0
  && t.straggler_probability = 0.0 && t.loss_probability = 0.0
  && t.fail_probability = 0.0

(* Every decision draws from its own RNG state keyed by (seed, stream tag,
   coordinates), so sampling is independent of the order the simulator asks
   in — the same (task, attempt) always meets the same fate. *)
let stream t tag a b = Random.State.make [| t.seed; tag; a; b |]

(* inverse-CDF exponential with the given rate; u < 1 so this is finite *)
let exp_sample rate u = -.Float.log1p (-.u) /. rate

let crash_time t ~client =
  if t.crash_rate <= 0.0 then infinity
  else
    let rng = stream t 0x3C client 0 in
    exp_sample t.crash_rate (Random.State.float rng 1.0)

let disconnect t ~client ~k =
  if t.disconnect_rate <= 0.0 then None
  else
    let rng = stream t 0xD1 client k in
    let gap = exp_sample t.disconnect_rate (Random.State.float rng 1.0) in
    let downtime =
      t.mean_downtime *. (0.5 +. Random.State.float rng 1.0)
    in
    Some (gap, downtime)

type attempt_outcome = { slowdown : float; lost : bool; failed : bool }

let attempt t ~task ~attempt =
  if
    t.straggler_probability = 0.0 && t.loss_probability = 0.0
    && t.fail_probability = 0.0
  then { slowdown = 1.0; lost = false; failed = false }
  else
    let rng = stream t 0xA7 task attempt in
    (* fixed draw order keeps each coordinate's fate stable *)
    let u_straggle = Random.State.float rng 1.0 in
    let u_lost = Random.State.float rng 1.0 in
    let u_fail = Random.State.float rng 1.0 in
    let slowdown =
      if u_straggle < t.straggler_probability then t.straggler_factor else 1.0
    in
    let lost = u_lost < t.loss_probability in
    let failed = (not lost) && u_fail < t.fail_probability in
    { slowdown; lost; failed }
