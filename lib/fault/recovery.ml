type t = {
  timeout_factor : float;
  detection_latency : float;
  max_retries : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  backoff_jitter : float;
  speculation_factor : float;
  max_replicas : int;
  deadline : float;
  seed : int;
}

let check_nonneg name v =
  if Float.is_nan v || v < 0.0 then
    invalid_arg
      (Printf.sprintf "Fault.Recovery.make: %s must be non-negative" name)

let make ?(timeout_factor = infinity) ?(detection_latency = 0.0)
    ?(max_retries = max_int) ?(backoff_base = 0.0) ?(backoff_factor = 2.0)
    ?(backoff_max = infinity) ?(backoff_jitter = 0.0)
    ?(speculation_factor = infinity) ?(max_replicas = 2)
    ?(deadline = infinity) ?(seed = 0x5EC0) () =
  if Float.is_nan timeout_factor || timeout_factor <= 0.0 then
    invalid_arg "Fault.Recovery.make: timeout_factor must be positive";
  if (not (Float.is_finite detection_latency)) || detection_latency < 0.0 then
    invalid_arg
      "Fault.Recovery.make: detection_latency must be finite and non-negative";
  if max_retries < 0 then
    invalid_arg "Fault.Recovery.make: max_retries must be non-negative";
  check_nonneg "backoff_base" backoff_base;
  if Float.is_nan backoff_factor || backoff_factor < 1.0 then
    invalid_arg "Fault.Recovery.make: backoff_factor must be >= 1";
  check_nonneg "backoff_max" backoff_max;
  if Float.is_nan backoff_jitter || backoff_jitter < 0.0 || backoff_jitter > 1.0
  then invalid_arg "Fault.Recovery.make: backoff_jitter must be in [0, 1]";
  if Float.is_nan speculation_factor || speculation_factor <= 0.0 then
    invalid_arg "Fault.Recovery.make: speculation_factor must be positive";
  if max_replicas < 1 then
    invalid_arg "Fault.Recovery.make: max_replicas must be >= 1";
  if Float.is_nan deadline || deadline <= 0.0 then
    invalid_arg "Fault.Recovery.make: deadline must be positive";
  {
    timeout_factor;
    detection_latency;
    max_retries;
    backoff_base;
    backoff_factor;
    backoff_max;
    backoff_jitter;
    speculation_factor;
    max_replicas;
    deadline;
    seed;
  }

let default = make ()
let timeouts_enabled t = Float.is_finite t.timeout_factor
let speculation_enabled t = Float.is_finite t.speculation_factor

let timeout_after t ~expected =
  if timeouts_enabled t then t.detection_latency +. (t.timeout_factor *. expected)
  else infinity

let speculate_after t ~expected =
  if speculation_enabled t then t.speculation_factor *. expected else infinity

let backoff t ~task ~retry =
  if t.backoff_base <= 0.0 then 0.0
  else
    let raw = t.backoff_base *. (t.backoff_factor ** float_of_int retry) in
    let d = Float.min t.backoff_max raw in
    if t.backoff_jitter = 0.0 then d
    else
      let rng = Random.State.make [| t.seed; 0xB0; task; retry |] in
      d *. (1.0 +. (t.backoff_jitter *. Random.State.float rng 1.0))
