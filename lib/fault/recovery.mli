(** Recovery policies: what the server does about faults.

    A recovery policy is pure configuration for the simulator's
    server-side reaction to the faults a {!Plan} injects — liveness
    timeouts, bounded retries with backoff, speculative re-execution,
    and the abort conditions of graceful degradation. Like plans, the
    only randomness (backoff jitter) is a deterministic hash of
    [(seed, task, retry)], so recovery decisions are byte-reproducible. *)

type t = private {
  timeout_factor : float;
      (** an attempt is presumed lost once it has been out for
          [detection_latency + timeout_factor * expected_duration];
          [infinity] disables liveness timeouts *)
  detection_latency : float;
      (** fixed extra delay before the server notices a timeout — models
          heartbeat granularity; finite, non-negative *)
  max_retries : int;
      (** per-task retry budget; exceeding it aborts the run with a
          partial result. [max_int] = unbounded (the historical
          retry-forever behaviour) *)
  backoff_base : float;  (** delay before the first retry; >= 0 *)
  backoff_factor : float;
      (** multiplicative growth of the delay per retry; >= 1 *)
  backoff_max : float;  (** cap on the backoff delay; >= 0 *)
  backoff_jitter : float;
      (** relative jitter on the backoff delay, in [0, 1]: the delay is
          multiplied by a seeded uniform draw from [1, 1 + jitter] *)
  speculation_factor : float;
      (** a second replica of a task is launched once its oldest live
          attempt has been out for [speculation_factor * expected];
          [infinity] disables speculation *)
  max_replicas : int;
      (** cap on simultaneously live attempts per task; >= 1 *)
  deadline : float;
      (** wall-clock (simulated) deadline: the run aborts with a partial
          result when the clock passes it; [infinity] = none *)
  seed : int;  (** jitter seed *)
}

val default : t
(** Mirrors the simulator's historical behaviour: no timeouts, unbounded
    immediate retries (no backoff), no speculation, no deadline. *)

val make :
  ?timeout_factor:float ->
  ?detection_latency:float ->
  ?max_retries:int ->
  ?backoff_base:float ->
  ?backoff_factor:float ->
  ?backoff_max:float ->
  ?backoff_jitter:float ->
  ?speculation_factor:float ->
  ?max_replicas:int ->
  ?deadline:float ->
  ?seed:int ->
  unit ->
  t
(** Validates every knob (see the field docs); defaults are
    {!default}'s values with [seed 0x5EC0]. Raises [Invalid_argument]
    on out-of-range values. *)

val timeouts_enabled : t -> bool
val speculation_enabled : t -> bool

val timeout_after : t -> expected:float -> float
(** Delay after allocation at which the liveness timeout for an attempt
    with the given expected duration fires; [infinity] when disabled. *)

val speculate_after : t -> expected:float -> float
(** Delay after allocation at which a straggling attempt becomes a
    candidate for speculative re-execution; [infinity] when disabled. *)

val backoff : t -> task:int -> retry:int -> float
(** Backoff delay before the [retry]-th re-run of [task]
    (first retry has [retry = 0]); deterministic in
    [(seed, task, retry)]. *)
