(** Fault plans: seeded, deterministic fault injectors for the IC
    simulator.

    A plan describes the unreliable-client regime the paper's reference
    [14] is about — clients that crash permanently, disconnect and later
    rejoin, straggle (run an episode much slower than their nominal
    speed), or silently lose an in-flight result. The plan itself is pure
    data; every sampling function is a deterministic hash of
    [(seed, decision coordinates)], so the injected faults do not depend
    on the order the simulator happens to ask in, and identically seeded
    runs are byte-reproducible.

    The library is dependency-free (stdlib only), like [Ic_obs]. *)

type t = private {
  crash_rate : float;
      (** permanent-crash rate per client per unit of simulated time
          (exponential inter-arrival); [0] = clients never crash *)
  disconnect_rate : float;
      (** transient-disconnect rate per client per unit of available
          time; [0] = never *)
  mean_downtime : float;
      (** mean length of an offline episode (downtime is sampled
          uniformly in [0.5, 1.5] times this mean) *)
  straggler_probability : float;
      (** chance that a given attempt straggles (runs [straggler_factor]
          times slower); in [0, 1) *)
  straggler_factor : float;  (** slowdown multiplier; at least 1 *)
  loss_probability : float;
      (** chance that an attempt's result is silently lost in transit:
          the client moves on, the server only finds out through a
          liveness timeout; in [0, 1) *)
  fail_probability : float;
      (** chance that an attempt ends in a {e reported} failure — the
          legacy end-of-task coin flip, observed by the server the moment
          the attempt ends; in [0, 1) *)
  seed : int;
}

val none : t
(** No faults at all; the default. *)

val make :
  ?crash_rate:float ->
  ?disconnect_rate:float ->
  ?mean_downtime:float ->
  ?straggler_probability:float ->
  ?straggler_factor:float ->
  ?loss_probability:float ->
  ?fail_probability:float ->
  ?seed:int ->
  unit ->
  t
(** Validates every knob: rates finite and non-negative, probabilities in
    [0, 1), [straggler_factor >= 1], [mean_downtime > 0]. Defaults are
    all-zero (= {!none}) with [seed 0xFA17]. *)

val of_failure_probability : ?seed:int -> float -> t
(** The compat constructor for the simulator's historical single
    end-of-task coin flip: [make ~fail_probability:q ()]. *)

val with_fail_probability : t -> float -> t
(** Override the reported-failure probability (used to fold the legacy
    [Simulator.config.failure_probability] field into a plan). *)

val is_none : t -> bool
(** No fault of any kind can ever fire under this plan. *)

(** {1 Deterministic samplers}

    All samplers are pure functions of the plan and their coordinates. *)

val crash_time : t -> client:int -> float
(** The simulated time at which [client] crashes permanently;
    [infinity] when it never does. *)

val disconnect : t -> client:int -> k:int -> (float * float) option
(** [(gap, downtime)] of the [k]-th offline episode of [client]: the
    episode starts [gap] time units after the client last became
    available and lasts [downtime]. [None] when disconnects are
    disabled. *)

(** {1 Churn stream}

    The availability timeline of one client, folded into a single
    time-ordered event stream: transient disconnect/rejoin episodes cut
    short by the permanent crash, all drawn from the same deterministic
    samplers above. This is {e the} churn model — the simulator's event
    loop and [Ic_served]'s load harness both consume it, so a plan means
    the same fate for client [c] whether the client is simulated
    in-process or hammering a socket. *)
module Churn : sig
  type kind =
    | Crash  (** permanent; the stream ends after this event *)
    | Disconnect of float
        (** went offline; the payload is the episode's downtime, so a
            consumer knows the outage length without waiting for the
            matching [Rejoin] *)
    | Rejoin  (** back online *)

  type event = { time : float; kind : kind }

  type cursor
  (** A mutable position in one client's stream. *)

  val create : t -> client:int -> cursor

  val next : cursor -> event option
  (** The next event, times strictly increasing: alternating
      [Disconnect]/[Rejoin] pairs, then at most one [Crash] (which
      pre-empts any episode it interrupts), then [None] forever.
      Identically seeded cursors replay identical streams. *)

  val events : t -> client:int -> horizon:float -> event list
  (** Every event at or before [horizon], eagerly. *)
end

(** {1 Wire chaos}

    A seeded frame-mangling plan for a message transport: each frame,
    identified by its (direction, index) coordinates, is independently
    dropped, duplicated, reordered past its successor, truncated,
    bit-flipped or delayed. Like every other sampler here the decision is
    a pure hash of [(seed, 0x31, dir, frame)], so a chaos run is
    byte-reproducible and a frame's fate does not depend on traffic in
    the other direction. [Ic_served]'s [Chaos] mangler consumes this to
    exercise the wire [Reader]'s error paths and the server's
    duplicate/stale handling deterministically. *)
module Wire : sig
  type t = private {
    drop : float;  (** chance a frame vanishes; in [0, 1) *)
    duplicate : float;  (** chance a frame arrives twice *)
    reorder : float;
        (** chance a frame is held back and delivered after its
            successor *)
    truncate : float;
        (** chance a frame loses its tail (desyncing the byte stream) *)
    corrupt : float;  (** chance a single bit of the frame is flipped *)
    delay_mean : float;
        (** mean extra delivery latency (exponential); 0 = none *)
    seed : int;
  }

  val none : t

  val make :
    ?drop:float ->
    ?duplicate:float ->
    ?reorder:float ->
    ?truncate:float ->
    ?corrupt:float ->
    ?delay_mean:float ->
    ?seed:int ->
    unit ->
    t
  (** Probabilities must be in [0, 1), [delay_mean] finite and
      non-negative; raises [Invalid_argument] otherwise. Defaults are
      all-zero with seed [0xC4A0]. *)

  val is_none : t -> bool

  type action = Deliver | Drop | Duplicate | Reorder | Truncate | Corrupt

  type decision = {
    action : action;
    delay : float;  (** extra delivery latency, 0 when [delay_mean] is 0 *)
    cut : float;
        (** for [Truncate]: fraction of the frame to keep, in [0, 1) *)
    flip : int;  (** for [Corrupt]: raw bit-position material *)
  }

  val decision : t -> dir:int -> frame:int -> decision
  (** The fate of the [frame]-th frame sent in direction [dir].
      Destructive actions win ties: drop > truncate > corrupt >
      duplicate > reorder. [delay] applies to whatever is delivered. *)
end

type attempt_outcome = {
  slowdown : float;  (** execution-time multiplier; 1 when not straggling *)
  lost : bool;  (** result silently lost (server unaware until timeout) *)
  failed : bool;  (** reported failure at the end of the attempt *)
}

val attempt : t -> task:int -> attempt:int -> attempt_outcome
(** The fate of the [attempt]-th attempt at [task]. [lost] and [failed]
    are mutually exclusive ([lost] wins). *)
