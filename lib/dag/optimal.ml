type analysis = {
  e_opt : int array;
  n_ideals : int;
  admits : bool;
  witness : Schedule.t option;
}

exception Too_large of int

(* Both passes are depth-first searches over the lattice of ideals, driven
   by one Frontier with execute/restore as the step/undo pair: the eligible
   set and its count are maintained incrementally instead of being
   re-derived from a bitmask at every state. Native-int bitmasks survive
   only as hash keys that deduplicate ideals (an ideal's eligibility count
   depends on the set alone, so each set is explored once). *)

let analyze ?(max_ideals = 2_000_000) g =
  Ic_prof.Span.time "optimal.analyze" @@ fun () ->
  let n = Dag.n_nodes g in
  if n > 61 then Error (`Too_large n)
  else begin
    let fr = Frontier.create g in
    try
      (* Pass 1: E_opt per level = max eligibility over ideals of each
         size, visiting every distinct ideal exactly once. *)
      let e_opt = Array.make (n + 1) min_int in
      let n_ideals = ref 0 in
      let seen = Hashtbl.create 1024 in
      let rec explore mask t =
        incr n_ideals;
        if !n_ideals > max_ideals then raise (Too_large !n_ideals);
        let e = Frontier.count fr in
        if e > e_opt.(t) then e_opt.(t) <- e;
        Array.iter
          (fun v ->
            let mask' = mask lor (1 lsl v) in
            if not (Hashtbl.mem seen mask') then begin
              Hashtbl.replace seen mask' ();
              let snap = Frontier.snapshot fr in
              Frontier.execute fr v;
              explore mask' (t + 1);
              Frontier.restore fr snap
            end)
          (Frontier.members fr)
      in
      Hashtbl.replace seen 0 ();
      Ic_prof.Span.time "optimal.explore" (fun () -> explore 0 0);
      (* Pass 2: which pointwise-optimal ideals are reachable through a
         chain of pointwise-optimal ideals? [chain] keeps a back-pointer
         (previous ideal, executed node) per survivor for the witness. *)
      let chain = Hashtbl.create 256 in
      let dead = Hashtbl.create 256 in
      let rec forward mask t =
        Array.iter
          (fun v ->
            let mask' = mask lor (1 lsl v) in
            if not (Hashtbl.mem chain mask' || Hashtbl.mem dead mask') then begin
              let snap = Frontier.snapshot fr in
              Frontier.execute fr v;
              if Frontier.count fr = e_opt.(t + 1) then begin
                Hashtbl.replace chain mask' (mask, v);
                forward mask' (t + 1)
              end
              else Hashtbl.replace dead mask' ();
              Frontier.restore fr snap
            end)
          (Frontier.members fr)
      in
      Ic_prof.Span.time "optimal.forward" (fun () -> forward 0 0);
      let full = (1 lsl n) - 1 in
      let admits = n = 0 || Hashtbl.mem chain full in
      let witness =
        Ic_prof.Span.time "optimal.witness" @@ fun () ->
        if not admits then None
        else begin
          let order = Array.make n (-1) in
          let s = ref full in
          (try
             for t = n downto 1 do
               let prev, v = Hashtbl.find chain !s in
               order.(t - 1) <- v;
               s := prev
             done
           with Not_found -> assert false);
          Some (Schedule.of_array_exn g order)
        end
      in
      Ok { e_opt; n_ideals = !n_ideals; admits; witness }
    with Too_large k -> Error (`Too_large k)
  end

let e_opt ?max_ideals g =
  Result.map (fun a -> a.e_opt) (analyze ?max_ideals g)

let is_ic_optimal ?max_ideals g s =
  Result.map
    (fun opt -> Profile.run g s = opt)
    (e_opt ?max_ideals g)

let admits_ic_optimal ?max_ideals g =
  Result.map (fun a -> a.admits) (analyze ?max_ideals g)
