(** Incremental eligibility tracking: the engine behind every ELIGIBLE-set
    computation in this library.

    A frontier is a mutable view of a partial execution of a dag: which nodes
    have been executed, how many parents each unexecuted node still waits
    for, and — maintained incrementally — the set of ELIGIBLE nodes (all
    parents executed, itself unexecuted). Executing a node costs
    [O(out-degree)]; the eligibility count and membership queries are
    [O(1)]. The profile machinery, the brute-force optimality verifier, the
    batched schedulers, the heuristic policies, the simulator and the value
    engine all drive their eligibility bookkeeping through this module
    rather than rebuilding remaining-parent counts by hand.

    Frontiers also support cheap {!snapshot}/{!restore} (undo to an earlier
    point of the same execution), which turns backtracking searches over
    ideals into [execute]/[restore] pairs instead of from-scratch
    re-derivations. *)

type t

(** {1 Construction} *)

val create : Dag.t -> t
(** The frontier of the empty execution: nothing executed, the sources
    eligible. [O(n)]. *)

val of_set : Dag.t -> executed:bool array -> t
(** The frontier after executing an arbitrary node set (which need not be an
    ideal: a node with unexecuted parents is simply not eligible, executed
    or not). [O(n + m)]. Raises [Invalid_argument] on a length mismatch.
    Restoring such a frontier below its creation point is not possible. *)

(** {1 Queries} *)

val dag : t -> Dag.t

val count : t -> int
(** Number of currently eligible nodes. [O(1)]. *)

val executed_count : t -> int
(** Number of executed nodes. [O(1)]. *)

val is_eligible : t -> int -> bool
(** [O(1)]. False for out-of-range nodes. *)

val is_executed : t -> int -> bool
(** [O(1)]. False for out-of-range nodes. *)

val members : t -> int array
(** The eligible nodes in ascending node order, as a fresh array.
    [O(k log k)] for [k] eligible nodes. *)

val to_list : t -> int list
(** {!members} as a list. *)

val iter : (int -> unit) -> t -> unit
(** Apply to each eligible node in ascending node order. The callback must
    not mutate the frontier. *)

val choose : t -> int option
(** Some eligible node (unspecified which), or [None] when none is.
    [O(1)]. *)

(** {1 Execution} *)

val execute : ?on_promote:(int -> unit) -> t -> int -> unit
(** [execute t v] marks the eligible node [v] executed and promotes every
    child whose last missing parent was [v]. [on_promote] is called once per
    newly eligible child, in ascending child order. [O(out-degree v)].
    Raises [Invalid_argument] if [v] is out of range or not eligible. *)

(** {1 Undo} *)

type snapshot
(** A point in the execution history of one frontier. *)

val snapshot : t -> snapshot
(** [O(1)]. *)

val restore : t -> snapshot -> unit
(** Undo every execution performed since the snapshot was taken, restoring
    counts, membership and remaining-parent state. [O(sum of out-degrees of
    the undone nodes)]. A snapshot is invalidated by restoring past it;
    restoring a stale snapshot (or one from another frontier) raises
    [Invalid_argument]. *)

(** {1 Bulk replay} *)

val profile : Dag.t -> order:int array -> int array
(** [profile g ~order] is the eligibility count after each prefix of the
    execution order (length [n + 1]), computed in one pass with none of the
    per-node membership upkeep — the hot path behind [Profile.run]. The
    order must be a schedule of [g]; entries are range-checked but
    dependence violations are the caller's responsibility (a validated
    [Schedule.t] cannot violate them). *)

val profile_raw : Dag.t -> order:int array -> int array
(** {!profile} without its [Ic_prof] span — byte-for-byte the replay loop
    that {!profile} runs. Exists so the bench harness can measure the
    disabled-path instrumentation overhead against a genuinely
    un-instrumented body in the same process; everyone else should call
    {!profile}. *)

(** {2 Replay scratch tiers}

    The replay pass sizes its remaining-parents scratch to the dag's
    maximum in-degree: 1 byte/node up to 255 ([packed8]), an off-heap
    uint16 bigarray up to 65535 ([packed16]), a plain int array beyond
    ([unpacked]). The choice used to be silent; these counters make it
    observable. *)

type scratch_tier = Packed8 | Packed16 | Unpacked
(** The remaining-parents representation a dag's maximum in-degree calls
    for: 1 byte/node up to 255, 2 off-heap bytes/node up to 65535, a
    plain int array beyond. *)

val scratch_tier : Dag.t -> scratch_tier
(** The tier {!profile} would pick for this dag — also the packing a
    parallel runtime can use for its shared remaining-counts, since the
    tier bound is exactly the largest value any count can take. [O(n)]
    (scans the predecessor offsets). *)

val fill_remaining : Dag.t -> (int -> int -> unit) -> unit
(** [fill_remaining g f] calls [f v (in-degree of v)] for every node [v]
    in ascending order — the initialization loop every remaining-parents
    scratch (sequential or atomic) starts from, without materializing an
    intermediate int array. *)

type scratch_counts = { packed8 : int; packed16 : int; unpacked : int }

val scratch_counts : unit -> scratch_counts
(** Process-wide count of {!profile}/{!profile_raw} runs per scratch
    tier. *)

val record_scratch_metrics : Ic_obs.Metrics.t -> unit
(** Publish the scratch-tier counters to a metrics registry as the
    counters [frontier.profile.scratch_packed8] / [..._packed16] /
    [..._unpacked]. Idempotent: each call raises the registry counters to
    the current totals, so repeated calls never double-count. *)

(** {1 Observability} *)

type observer = {
  on_push : int -> unit;  (** a node just became eligible *)
  on_pop : int -> unit;  (** a node was just executed *)
}
(** A structured-event hook for the tracing layer ({!Ic_obs.Trace}): the
    simulator and the value engine install an observer that stamps push
    and pop events with their own notion of time. *)

val set_observer : t -> observer option -> unit
(** Install (or with [None] remove) the frontier's observer. The observer
    fires on {!execute} only — one [on_pop] for the executed node, then
    one [on_push] per promoted child, interleaved with [on_promote] —
    never on {!restore} or the bulk {!profile} pass, which stay
    callback-free. With no observer installed the execute path pays one
    branch, preserving the zero-instrumentation overhead contract. *)

type stats = {
  executes : int;  (** total {!execute} calls that succeeded *)
  promotions : int;  (** nodes that became eligible through {!execute} *)
  restores : int;  (** total {!restore} calls *)
}

val stats : t -> stats
(** Per-frontier operation counters, for bench harnesses and debugging. *)
