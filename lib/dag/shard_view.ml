type t = {
  dag : Dag.t;
  n_shards : int;
  block : int;  (* nodes per shard: shard of v = v / block *)
  remaining : int Atomic.t array;
  done_count : int Atomic.t;
}

let create ?(n_shards = 1) g =
  let n = Dag.n_nodes g in
  let n_shards = max 1 (min n_shards (max 1 n)) in
  let block = if n = 0 then 1 else ((n - 1) / n_shards) + 1 in
  let remaining = Array.init n (fun _ -> Atomic.make 0) in
  Frontier.fill_remaining g (fun v d -> Atomic.set remaining.(v) d);
  { dag = g; n_shards; block; remaining; done_count = Atomic.make 0 }

let dag t = t.dag
let n_nodes t = Dag.n_nodes t.dag
let n_shards t = t.n_shards

let shard_of t v =
  if v < 0 || v >= n_nodes t then invalid_arg "Shard_view.shard_of: out of range";
  v / t.block

let shard_size t s =
  if s < 0 || s >= t.n_shards then
    invalid_arg "Shard_view.shard_size: out of range";
  let n = n_nodes t in
  let lo = s * t.block in
  let hi = min n ((s + 1) * t.block) in
  max 0 (hi - lo)

let iter_initial t f =
  Frontier.fill_remaining t.dag (fun v d ->
      if d = 0 then f ~shard:(v / t.block) v)

let complete t v ~ready =
  if v < 0 || v >= n_nodes t then invalid_arg "Shard_view.complete: out of range";
  let off = Dag.succ_offsets t.dag and dat = Dag.succ_targets t.dag in
  for i = Slab.unsafe_get off v to Slab.unsafe_get off (v + 1) - 1 do
    let s = Slab.unsafe_get dat i in
    (* exactly one decrement observes old value 1, so [ready] fires once *)
    if Atomic.fetch_and_add t.remaining.(s) (-1) = 1 then
      ready ~shard:(s / t.block) s
  done;
  ignore (Atomic.fetch_and_add t.done_count 1)

let completed t = Atomic.get t.done_count
let is_complete t = completed t = n_nodes t
