let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Dag.n_nodes g));
  for v = 0 to Dag.n_nodes g - 1 do
    let l = Dag.label g v in
    if l <> string_of_int v then
      Buffer.add_string buf (Printf.sprintf "label %d %s\n" v l)
  done;
  Dag.iter_arcs g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "arc %d %d\n" u v));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let strip line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let n = ref None in
  let arcs = ref [] in
  let labels = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno raw ->
      if !error = None then
        let line = strip raw in
        if line <> "" then
          let fail msg =
            error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg)
          in
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "nodes"; k ] -> (
            match int_of_string_opt k with
            | Some k when !n = None -> n := Some k
            | Some _ -> fail "duplicate nodes declaration"
            | None -> fail "bad node count")
          | [ "arc"; u; v ] -> (
            match (int_of_string_opt u, int_of_string_opt v) with
            | Some u, Some v -> arcs := (u, v) :: !arcs
            | _ -> fail "bad arc endpoints")
          | "label" :: v :: rest when rest <> [] -> (
            match int_of_string_opt v with
            | Some v -> labels := (v, String.concat " " rest) :: !labels
            | None -> fail "bad label node id")
          | _ -> fail (Printf.sprintf "unrecognized line %S" line))
    lines;
  match (!error, !n) with
  | Some msg, _ -> Error msg
  | None, None -> Error "missing 'nodes N' declaration"
  | None, Some n ->
    if List.exists (fun (v, _) -> v < 0 || v >= n) !labels then
      Error "label node id out of range"
    else begin
      let label_array =
        if !labels = [] then None
        else begin
          let a = Array.init n string_of_int in
          List.iter (fun (v, l) -> a.(v) <- l) !labels;
          Some a
        end
      in
      Dag.make ?labels:label_array ~n ~arcs:(List.rev !arcs) ()
    end

let schedule_to_string s =
  Schedule.order s |> Array.to_list |> List.map string_of_int
  |> String.concat " "

let schedule_of_string g text =
  let parts =
    String.split_on_char ' ' (String.trim text) |> List.filter (( <> ) "")
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match int_of_string_opt x with
      | Some v -> parse (v :: acc) rest
      | None -> Error (Printf.sprintf "bad node id %S" x))
  in
  Result.bind (parse [] parts) (Schedule.of_order g)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let save_file path g =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string g)) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
