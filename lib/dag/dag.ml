(* CSR-native dags: both adjacency directions live in flat off/dat int
   arrays, built once at construction. There is no array-of-arrays layout
   and no lazily bolted-on cache — every traversal in the library walks
   these four arrays.

   Invariants (established by [Builder.build], preserved by every
   constructor):
     - [soff] and [poff] have length [n + 1] with [soff.(0) = poff.(0) = 0]
       and [soff.(n) = poff.(n) = m];
     - children of [v] are [sdat.(soff.(v)) .. sdat.(soff.(v+1) - 1)],
       strictly ascending; parents likewise in [pdat]/[poff];
     - the two directions describe the same arc set, which is self-loop
       free, duplicate free, and acyclic;
     - [n_sources] counts the parentless nodes. *)

type t = {
  n : int;
  soff : int array;
  sdat : int array;
  poff : int array;
  pdat : int array;
  labels : string array option;
  n_sources : int;
}

let n_nodes g = g.n
let n_arcs g = Array.length g.sdat
let n_sources g = g.n_sources

let out_degree g v = g.soff.(v + 1) - g.soff.(v)
let in_degree g v = g.poff.(v + 1) - g.poff.(v)

let succ g v = Array.sub g.sdat g.soff.(v) (out_degree g v)
let pred g v = Array.sub g.pdat g.poff.(v) (in_degree g v)

let succ_offsets g = g.soff
let succ_targets g = g.sdat
let pred_offsets g = g.poff
let pred_sources g = g.pdat

let iter_succ g v f =
  for i = g.soff.(v) to g.soff.(v + 1) - 1 do
    f (Array.unsafe_get g.sdat i)
  done

let iter_pred g v f =
  for i = g.poff.(v) to g.poff.(v + 1) - 1 do
    f (Array.unsafe_get g.pdat i)
  done

let fold_succ g v init f =
  let acc = ref init in
  for i = g.soff.(v) to g.soff.(v + 1) - 1 do
    acc := f !acc (Array.unsafe_get g.sdat i)
  done;
  !acc

let fold_pred g v init f =
  let acc = ref init in
  for i = g.poff.(v) to g.poff.(v + 1) - 1 do
    acc := f !acc (Array.unsafe_get g.pdat i)
  done;
  !acc

let in_degrees g =
  Array.init g.n (fun v -> g.poff.(v + 1) - g.poff.(v))

let has_arc g u v =
  (* child rows are sorted, so binary search *)
  let dat = g.sdat in
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if dat.(mid) = v then true
      else if dat.(mid) < v then go (mid + 1) hi
      else go lo mid
  in
  go g.soff.(u) g.soff.(u + 1)

let iter_arcs g f =
  for u = 0 to g.n - 1 do
    for i = g.soff.(u) to g.soff.(u + 1) - 1 do
      f u (Array.unsafe_get g.sdat i)
    done
  done

let fold_arcs g init f =
  let acc = ref init in
  iter_arcs g (fun u v -> acc := f !acc u v);
  !acc

(* compatibility wrapper over {!iter_arcs}; prefer the iterators *)
let arcs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for i = g.soff.(u + 1) - 1 downto g.soff.(u) do
      acc := (u, g.sdat.(i)) :: !acc
    done
  done;
  !acc

let label g v =
  match g.labels with
  | Some ls -> ls.(v)
  | None -> string_of_int v

let has_labels g = Option.is_some g.labels

let find_label g s =
  match g.labels with
  | None -> (try Some (int_of_string s) with _ -> None)
  | Some ls ->
    let rec go i = if i >= g.n then None else if ls.(i) = s then Some i else go (i + 1) in
    go 0

let is_source g v = in_degree g v = 0
let is_sink g v = out_degree g v = 0

let filter_nodes g p =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if p v then acc := v :: !acc
  done;
  !acc

let sources g = filter_nodes g (is_source g)
let sinks g = filter_nodes g (is_sink g)
let nonsinks g = filter_nodes g (fun v -> not (is_sink g v))
let nonsources g = filter_nodes g (fun v -> not (is_source g v))

let count_nodes g p =
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if p v then incr c
  done;
  !c

let n_nonsinks g = count_nodes g (fun v -> not (is_sink g v))
let n_nonsources g = count_nodes g (fun v -> not (is_source g v))

(* Kahn's algorithm over CSR; returns None when a cycle prevents
   completion. [indeg] is consumed. *)
let topological_order_csr ~n ~soff ~sdat ~indeg =
  let order = Array.make n (-1) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    for i = soff.(v) to soff.(v + 1) - 1 do
      let w = Array.unsafe_get sdat i in
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then Queue.add w queue
    done
  done;
  if !k = n then Some order else None

module Builder = struct
  type dag = t

  type nonrec t = {
    n : int;
    labels : string array option;
    mutable us : int array;
    mutable vs : int array;
    mutable m : int;
  }

  let create ?labels ~n ?(hint = 16) () =
    let hint = max 1 hint in
    { n; labels; us = Array.make hint 0; vs = Array.make hint 0; m = 0 }

  let n_pending b = b.m

  let add_arc b u v =
    if b.m = Array.length b.us then begin
      let cap = 2 * b.m in
      let us = Array.make cap 0 and vs = Array.make cap 0 in
      Array.blit b.us 0 us 0 b.m;
      Array.blit b.vs 0 vs 0 b.m;
      b.us <- us;
      b.vs <- vs
    end;
    Array.unsafe_set b.us b.m u;
    Array.unsafe_set b.vs b.m v;
    b.m <- b.m + 1

  (* Build both CSR directions in O(n + m) with three scatter passes and no
     per-node intermediate arrays:
       1. stable counting sort of the arc buffer by target;
       2. stable counting sort of that by source — rows of [sdat] come out
          sorted by target, i.e. the arcs in (source, target) lexicographic
          order;
       3. a scatter of the lex-ordered arcs by target fills sorted [pdat]
          rows (for a fixed target, sources arrive ascending).
     Duplicates are adjacent after pass 2; acyclicity is Kahn's algorithm
     over the finished successor CSR. *)
  let build b =
    Ic_prof.Span.time "dag.build" @@ fun () ->
    let n = b.n and m = b.m in
    if n < 0 then Error "negative node count"
    else
      match b.labels with
      | Some ls when Array.length ls <> n ->
        Error
          (Printf.sprintf "labels length %d does not match node count %d"
             (Array.length ls) n)
      | _ ->
        let us = b.us and vs = b.vs in
        let bad_endpoint = ref (-1) and self_loop = ref (-1) in
        Ic_prof.Span.time "dag.build.validate" (fun () ->
            for i = m - 1 downto 0 do
              let u = us.(i) and v = vs.(i) in
              if u < 0 || u >= n || v < 0 || v >= n then bad_endpoint := i
              else if u = v then self_loop := i
            done);
        if !bad_endpoint >= 0 then
          let i = !bad_endpoint in
          Error
            (Printf.sprintf "arc (%d -> %d) out of range [0, %d)" us.(i)
               vs.(i) n)
        else if !self_loop >= 0 then
          Error (Printf.sprintf "self-loop on node %d" us.(!self_loop))
        else begin
          let soff = Array.make (n + 1) 0 in
          let poff = Array.make (n + 1) 0 in
          for i = 0 to m - 1 do
            soff.(us.(i) + 1) <- soff.(us.(i) + 1) + 1;
            poff.(vs.(i) + 1) <- poff.(vs.(i) + 1) + 1
          done;
          for v = 0 to n - 1 do
            soff.(v + 1) <- soff.(v + 1) + soff.(v);
            poff.(v + 1) <- poff.(v + 1) + poff.(v)
          done;
          let u1 = Array.make m 0 and v1 = Array.make m 0 in
          let fill = Array.make n 0 in
          let sdat = Array.make m 0 in
          Ic_prof.Span.time "dag.build.sort" (fun () ->
              (* pass 1: arcs stably sorted by target *)
              Array.blit poff 0 fill 0 n;
              for i = 0 to m - 1 do
                let v = Array.unsafe_get vs i in
                let p = Array.unsafe_get fill v in
                Array.unsafe_set fill v (p + 1);
                Array.unsafe_set u1 p (Array.unsafe_get us i);
                Array.unsafe_set v1 p v
              done;
              (* pass 2: stably re-sorted by source — [sdat] rows ascending *)
              Array.blit soff 0 fill 0 n;
              for i = 0 to m - 1 do
                let u = Array.unsafe_get u1 i in
                let p = Array.unsafe_get fill u in
                Array.unsafe_set fill u (p + 1);
                Array.unsafe_set sdat p (Array.unsafe_get v1 i)
              done);
          (* duplicates are now adjacent within a row *)
          let dup = ref (-1) in
          for u = n - 1 downto 0 do
            for i = soff.(u + 1) - 1 downto soff.(u) + 1 do
              if sdat.(i) = sdat.(i - 1) then dup := i
            done
          done;
          if !dup >= 0 then begin
            let i = !dup in
            (* recover the source of arc slot [i] by binary search on soff *)
            let rec owner lo hi =
              if hi - lo <= 1 then lo
              else
                let mid = (lo + hi) / 2 in
                if soff.(mid) <= i then owner mid hi else owner lo mid
            in
            Error
              (Printf.sprintf "duplicate arc (%d -> %d)" (owner 0 n) sdat.(i))
          end
          else begin
            (* pass 3: scatter the lex-ordered arcs by target *)
            let pdat = Array.make m 0 in
            Ic_prof.Span.time "dag.build.scatter" (fun () ->
                Array.blit poff 0 fill 0 n;
                for u = 0 to n - 1 do
                  for i = soff.(u) to soff.(u + 1) - 1 do
                    let v = Array.unsafe_get sdat i in
                    let p = Array.unsafe_get fill v in
                    Array.unsafe_set fill v (p + 1);
                    Array.unsafe_set pdat p u
                  done
                done);
            let indeg = Array.init n (fun v -> poff.(v + 1) - poff.(v)) in
            match
              Ic_prof.Span.time "dag.build.acyclic" (fun () ->
                  topological_order_csr ~n ~soff ~sdat ~indeg)
            with
            | None -> Error "graph has a cycle"
            | Some _ ->
              let n_sources = ref 0 in
              for v = 0 to n - 1 do
                if poff.(v + 1) = poff.(v) then incr n_sources
              done;
              Ok
                {
                  n;
                  soff;
                  sdat;
                  poff;
                  pdat;
                  labels = b.labels;
                  n_sources = !n_sources;
                }
          end
        end

  let build_exn b =
    match build b with
    | Ok g -> g
    | Error msg -> invalid_arg ("Dag.Builder.build_exn: " ^ msg)
end

let make ?labels ~n ~arcs () =
  let b = Builder.create ?labels ~n ~hint:(List.length arcs) () in
  List.iter (fun (u, v) -> Builder.add_arc b u v) arcs;
  Builder.build b

let make_exn ?labels ~n ~arcs () =
  match make ?labels ~n ~arcs () with
  | Ok g -> g
  | Error msg -> invalid_arg ("Dag.make_exn: " ^ msg)

let empty n =
  if n < 0 then invalid_arg "Dag.empty: negative node count";
  {
    n;
    soff = Array.make (n + 1) 0;
    sdat = [||];
    poff = Array.make (n + 1) 0;
    pdat = [||];
    labels = None;
    n_sources = n;
  }

let sum g1 g2 =
  let shift = g1.n and mshift = n_arcs g1 in
  let n = g1.n + g2.n in
  let cat_off o1 o2 =
    Array.init (n + 1) (fun v ->
        if v <= g1.n then o1.(v) else o2.(v - g1.n) + mshift)
  in
  let cat_dat d1 d2 =
    Array.append d1 (Array.map (fun v -> v + shift) d2)
  in
  let labels =
    match (g1.labels, g2.labels) with
    | None, None -> None
    | _ ->
      let l1 = match g1.labels with Some l -> l | None -> Array.init g1.n string_of_int in
      let l2 = match g2.labels with Some l -> l | None -> Array.init g2.n string_of_int in
      Some (Array.append l1 l2)
  in
  {
    n;
    soff = cat_off g1.soff g2.soff;
    sdat = cat_dat g1.sdat g2.sdat;
    poff = cat_off g1.poff g2.poff;
    pdat = cat_dat g1.pdat g2.pdat;
    labels;
    n_sources = g1.n_sources + g2.n_sources;
  }

let dual g =
  let n_sources = count_nodes g (is_sink g) in
  {
    g with
    soff = g.poff;
    sdat = g.pdat;
    poff = g.soff;
    pdat = g.sdat;
    n_sources;
  }

let relabel g labels =
  if Array.length labels <> g.n then invalid_arg "Dag.relabel: length mismatch";
  { g with labels = Some (Array.copy labels) }

let topological_order g =
  match
    topological_order_csr ~n:g.n ~soff:g.soff ~sdat:g.sdat
      ~indeg:(in_degrees g)
  with
  | Some order -> order
  | None -> assert false (* acyclicity is a construction invariant *)

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let stack = Stack.create () in
    Stack.push 0 stack;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      let visit w =
        if not seen.(w) then begin
          seen.(w) <- true;
          incr count;
          Stack.push w stack
        end
      in
      iter_succ g v visit;
      iter_pred g v visit
    done;
    !count = g.n
  end

let depth g =
  let order = topological_order g in
  let d = Array.make g.n 0 in
  Array.iter
    (fun v ->
      iter_succ g v (fun w -> if d.(v) + 1 > d.(w) then d.(w) <- d.(v) + 1))
    order;
  d

let height g =
  let order = topological_order g in
  let h = Array.make g.n 0 in
  for i = g.n - 1 downto 0 do
    let v = order.(i) in
    iter_succ g v (fun w -> if h.(w) + 1 > h.(v) then h.(v) <- h.(w) + 1)
  done;
  h

let longest_path g =
  if g.n = 0 then 0 else Array.fold_left max 0 (depth g)

let map_nodes g ~perm =
  if Array.length perm <> g.n then invalid_arg "Dag.map_nodes: length mismatch";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= g.n || seen.(p) then invalid_arg "Dag.map_nodes: not a permutation";
      seen.(p) <- true)
    perm;
  let labels =
    Option.map
      (fun ls ->
        let out = Array.make g.n "" in
        Array.iteri (fun v l -> out.(perm.(v)) <- l) ls;
        out)
      g.labels
  in
  let b = Builder.create ?labels ~n:g.n ~hint:(n_arcs g) () in
  iter_arcs g (fun u v -> Builder.add_arc b perm.(u) perm.(v));
  Builder.build_exn b

let quotient g ~cluster_of ~n_clusters =
  if Array.length cluster_of <> g.n then Error "cluster_of length mismatch"
  else if Array.exists (fun c -> c < 0 || c >= n_clusters) cluster_of then
    Error "cluster id out of range"
  else begin
    let tbl = Hashtbl.create (n_arcs g) in
    let b = Builder.create ~n:n_clusters ~hint:(n_arcs g) () in
    iter_arcs g (fun u v ->
        let cu = cluster_of.(u) and cv = cluster_of.(v) in
        if cu <> cv && not (Hashtbl.mem tbl (cu, cv)) then begin
          Hashtbl.add tbl (cu, cv) ();
          Builder.add_arc b cu cv
        end);
    match Builder.build b with
    | Ok q -> Ok q
    | Error msg -> Error ("quotient is not a dag: " ^ msg)
  end

let induced g ~keep =
  if Array.length keep <> g.n then invalid_arg "Dag.induced: length mismatch";
  let remap = Array.make g.n (-1) in
  let k = ref 0 in
  for v = 0 to g.n - 1 do
    if keep.(v) then begin
      remap.(v) <- !k;
      incr k
    end
  done;
  let labels =
    Option.map
      (fun ls ->
        let out = Array.make !k "" in
        Array.iteri (fun v l -> if keep.(v) then out.(remap.(v)) <- l) ls;
        out)
      g.labels
  in
  let b = Builder.create ?labels ~n:!k ~hint:(n_arcs g) () in
  iter_arcs g (fun u v ->
      if keep.(u) && keep.(v) then Builder.add_arc b remap.(u) remap.(v));
  (Builder.build_exn b, remap)

let equal g1 g2 =
  g1.n = g2.n && g1.soff = g2.soff && g1.sdat = g2.sdat

let pp ppf g =
  Format.fprintf ppf "@[<v>dag with %d nodes, %d arcs@," g.n (n_arcs g);
  iter_arcs g (fun u v ->
      Format.fprintf ppf "  %s -> %s@," (label g u) (label g v));
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph G {\n  rankdir=BT;\n";
  for v = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label g v))
  done;
  iter_arcs g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
