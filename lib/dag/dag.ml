type csr = {
  off : int array;
  dat : int array;
  indeg : int array;
  n_sources : int;
}

type t = {
  n : int;
  succ : int array array;
  pred : int array array;
  labels : string array option;
  mutable csr_cache : csr option;
      (* flattened successor adjacency, built lazily; adjacency-derived
         only, so any constructor that changes arcs must reset it *)
}

let n_nodes g = g.n

let n_arcs g =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 g.succ

let succ g v = g.succ.(v)
let pred g v = g.pred.(v)
let succ_arrays g = g.succ
let pred_arrays g = g.pred

let csr g =
  match g.csr_cache with
  | Some c -> c
  | None ->
    let n = g.n in
    let off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      off.(v + 1) <- off.(v) + Array.length g.succ.(v)
    done;
    let dat = Array.make (max 1 off.(n)) 0 in
    for v = 0 to n - 1 do
      let a = g.succ.(v) and base = off.(v) in
      Array.iteri (fun i w -> dat.(base + i) <- w) a
    done;
    let indeg = Array.make n 0 in
    let n_sources = ref 0 in
    for v = 0 to n - 1 do
      let d = Array.length g.pred.(v) in
      indeg.(v) <- d;
      if d = 0 then incr n_sources
    done;
    let c = { off; dat; indeg; n_sources = !n_sources } in
    g.csr_cache <- Some c;
    c
let out_degree g v = Array.length g.succ.(v)
let in_degree g v = Array.length g.pred.(v)

let has_arc g u v =
  (* children arrays are sorted, so binary search *)
  let a = g.succ.(u) in
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length a)

let arcs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let children = g.succ.(u) in
    for i = Array.length children - 1 downto 0 do
      acc := (u, children.(i)) :: !acc
    done
  done;
  !acc

let label g v =
  match g.labels with
  | Some ls -> ls.(v)
  | None -> string_of_int v

let has_labels g = Option.is_some g.labels

let find_label g s =
  match g.labels with
  | None -> (try Some (int_of_string s) with _ -> None)
  | Some ls ->
    let rec go i = if i >= g.n then None else if ls.(i) = s then Some i else go (i + 1) in
    go 0

let is_source g v = in_degree g v = 0
let is_sink g v = out_degree g v = 0

let filter_nodes g p =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if p v then acc := v :: !acc
  done;
  !acc

let sources g = filter_nodes g (is_source g)
let sinks g = filter_nodes g (is_sink g)
let nonsinks g = filter_nodes g (fun v -> not (is_sink g v))
let nonsources g = filter_nodes g (fun v -> not (is_source g v))

let count_nodes g p =
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if p v then incr c
  done;
  !c

let n_nonsinks g = count_nodes g (fun v -> not (is_sink g v))
let n_nonsources g = count_nodes g (fun v -> not (is_source g v))

(* Kahn's algorithm; returns None when a cycle prevents completion. *)
let topological_order_opt ~n ~succ ~indeg0 =
  let indeg = Array.copy indeg0 in
  let order = Array.make n (-1) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    Array.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succ.(v)
  done;
  if !k = n then Some order else None

let build_adjacency n arcs =
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      out_count.(u) <- out_count.(u) + 1;
      in_count.(v) <- in_count.(v) + 1)
    arcs;
  let succ = Array.init n (fun v -> Array.make out_count.(v) 0) in
  let pred = Array.init n (fun v -> Array.make in_count.(v) 0) in
  let oi = Array.make n 0 and ii = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      succ.(u).(oi.(u)) <- v;
      oi.(u) <- oi.(u) + 1;
      pred.(v).(ii.(v)) <- u;
      ii.(v) <- ii.(v) + 1)
    arcs;
  Array.iter (fun a -> Array.sort compare a) succ;
  Array.iter (fun a -> Array.sort compare a) pred;
  (succ, pred)

let make ?labels ~n ~arcs () =
  if n < 0 then Error "negative node count"
  else
    match labels with
    | Some ls when Array.length ls <> n ->
      Error
        (Printf.sprintf "labels length %d does not match node count %d"
           (Array.length ls) n)
    | _ ->
      let bad_endpoint =
        List.find_opt (fun (u, v) -> u < 0 || u >= n || v < 0 || v >= n) arcs
      in
      let self_loop = List.find_opt (fun (u, v) -> u = v) arcs in
      (match (bad_endpoint, self_loop) with
      | Some (u, v), _ ->
        Error (Printf.sprintf "arc (%d -> %d) out of range [0, %d)" u v n)
      | _, Some (u, _) -> Error (Printf.sprintf "self-loop on node %d" u)
      | None, None ->
        let tbl = Hashtbl.create (List.length arcs) in
        let dup =
          List.find_opt
            (fun arc ->
              if Hashtbl.mem tbl arc then true
              else begin
                Hashtbl.add tbl arc ();
                false
              end)
            arcs
        in
        (match dup with
        | Some (u, v) -> Error (Printf.sprintf "duplicate arc (%d -> %d)" u v)
        | None ->
          let succ, pred = build_adjacency n arcs in
          let indeg = Array.init n (fun v -> Array.length pred.(v)) in
          (match topological_order_opt ~n ~succ ~indeg0:indeg with
          | None -> Error "graph has a cycle"
          | Some _ -> Ok { n; succ; pred; labels; csr_cache = None })))

let make_exn ?labels ~n ~arcs () =
  match make ?labels ~n ~arcs () with
  | Ok g -> g
  | Error msg -> invalid_arg ("Dag.make_exn: " ^ msg)

let empty n =
  if n < 0 then invalid_arg "Dag.empty: negative node count";
  { n; succ = Array.make n [||]; pred = Array.make n [||]; labels = None;
    csr_cache = None }

let sum g1 g2 =
  let shift = g1.n in
  let shift_adj a = Array.map (fun arr -> Array.map (fun v -> v + shift) arr) a in
  let labels =
    match (g1.labels, g2.labels) with
    | None, None -> None
    | _ ->
      let l1 = match g1.labels with Some l -> l | None -> Array.init g1.n string_of_int in
      let l2 = match g2.labels with Some l -> l | None -> Array.init g2.n string_of_int in
      Some (Array.append l1 l2)
  in
  {
    n = g1.n + g2.n;
    succ = Array.append g1.succ (shift_adj g2.succ);
    pred = Array.append g1.pred (shift_adj g2.pred);
    labels;
    csr_cache = None;
  }

let dual g = { g with succ = g.pred; pred = g.succ; csr_cache = None }

let relabel g labels =
  if Array.length labels <> g.n then invalid_arg "Dag.relabel: length mismatch";
  { g with labels = Some (Array.copy labels) }

let topological_order g =
  let indeg = Array.init g.n (fun v -> in_degree g v) in
  match topological_order_opt ~n:g.n ~succ:g.succ ~indeg0:indeg with
  | Some order -> order
  | None -> assert false (* acyclicity is a construction invariant *)

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let stack = Stack.create () in
    Stack.push 0 stack;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      let visit w =
        if not seen.(w) then begin
          seen.(w) <- true;
          incr count;
          Stack.push w stack
        end
      in
      Array.iter visit g.succ.(v);
      Array.iter visit g.pred.(v)
    done;
    !count = g.n
  end

let depth g =
  let order = topological_order g in
  let d = Array.make g.n 0 in
  Array.iter
    (fun v ->
      Array.iter (fun w -> if d.(v) + 1 > d.(w) then d.(w) <- d.(v) + 1) g.succ.(v))
    order;
  d

let height g =
  let order = topological_order g in
  let h = Array.make g.n 0 in
  for i = g.n - 1 downto 0 do
    let v = order.(i) in
    Array.iter (fun w -> if h.(w) + 1 > h.(v) then h.(v) <- h.(w) + 1) g.succ.(v)
  done;
  h

let longest_path g =
  if g.n = 0 then 0 else Array.fold_left max 0 (depth g)

let map_nodes g ~perm =
  if Array.length perm <> g.n then invalid_arg "Dag.map_nodes: length mismatch";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= g.n || seen.(p) then invalid_arg "Dag.map_nodes: not a permutation";
      seen.(p) <- true)
    perm;
  let arcs = List.map (fun (u, v) -> (perm.(u), perm.(v))) (arcs g) in
  let labels =
    Option.map
      (fun ls ->
        let out = Array.make g.n "" in
        Array.iteri (fun v l -> out.(perm.(v)) <- l) ls;
        out)
      g.labels
  in
  make_exn ?labels ~n:g.n ~arcs ()

let quotient g ~cluster_of ~n_clusters =
  if Array.length cluster_of <> g.n then Error "cluster_of length mismatch"
  else if Array.exists (fun c -> c < 0 || c >= n_clusters) cluster_of then
    Error "cluster id out of range"
  else begin
    let tbl = Hashtbl.create (n_arcs g) in
    List.iter
      (fun (u, v) ->
        let cu = cluster_of.(u) and cv = cluster_of.(v) in
        if cu <> cv then Hashtbl.replace tbl (cu, cv) ())
      (arcs g);
    let arcs = Hashtbl.fold (fun arc () acc -> arc :: acc) tbl [] in
    match make ~n:n_clusters ~arcs () with
    | Ok q -> Ok q
    | Error msg -> Error ("quotient is not a dag: " ^ msg)
  end

let induced g ~keep =
  if Array.length keep <> g.n then invalid_arg "Dag.induced: length mismatch";
  let remap = Array.make g.n (-1) in
  let k = ref 0 in
  for v = 0 to g.n - 1 do
    if keep.(v) then begin
      remap.(v) <- !k;
      incr k
    end
  done;
  let arcs =
    List.filter_map
      (fun (u, v) ->
        if keep.(u) && keep.(v) then Some (remap.(u), remap.(v)) else None)
      (arcs g)
  in
  let labels =
    Option.map
      (fun ls ->
        let out = Array.make !k "" in
        Array.iteri (fun v l -> if keep.(v) then out.(remap.(v)) <- l) ls;
        out)
      g.labels
  in
  (make_exn ?labels ~n:!k ~arcs (), remap)

let equal g1 g2 =
  g1.n = g2.n
  && Array.for_all2 (fun a b -> a = b) g1.succ g2.succ

let pp ppf g =
  Format.fprintf ppf "@[<v>dag with %d nodes, %d arcs@," g.n (n_arcs g);
  List.iter
    (fun (u, v) -> Format.fprintf ppf "  %s -> %s@," (label g u) (label g v))
    (arcs g);
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph G {\n  rankdir=BT;\n";
  for v = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label g v))
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    (arcs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
